// Reproduces Figure 6: scalar threads on the vector lanes. Eight VLT
// scalar threads running on the lanes of the V4-CMT machine versus four
// scalar threads on the CMT (the same two 2-way-threaded scalar units
// without the vector unit). Bars are performance relative to the CMT.
#include <cstdio>

#include "bench_util.hpp"

using namespace vlt;
using machine::MachineConfig;
using workloads::Variant;

int main() {
  campaign::SweepSpec spec;
  for (const std::string& app : workloads::scalar_thread_apps()) {
    spec.add(MachineConfig::cmt(), app, Variant::su_threads(4));
    spec.add(MachineConfig::v4_cmt(), app, Variant::lane_threads(8));
  }
  campaign::RunSet results = bench::run(spec);

  std::printf("\n=== Figure 6: 8 VLT scalar threads on the lanes vs 4 "
              "threads on the CMT ===\n%-10s %12s %12s %20s\n", "app",
              "CMT cycles", "VLT cycles", "VLT perf rel. to CMT");
  for (const std::string& app : workloads::scalar_thread_apps()) {
    Cycle cmt = results.cycles(app, "CMT", "su-4t");
    Cycle vl = results.cycles(app, "V4-CMT", "vlt-8lane");
    std::printf("%-10s %12llu %12llu %19.2fx\n", app.c_str(),
                static_cast<unsigned long long>(cmt),
                static_cast<unsigned long long>(vl), bench::speedup(cmt, vl));
  }
  std::printf("\nPaper: radix and ocean ~2x in favour of VLT; barnes roughly "
              "equal (in-order lanes lose\nper-thread what the extra thread "
              "count gains). See EXPERIMENTS.md for the measured deltas.\n");
  return 0;
}
