// Reproduces Figure 6: scalar threads on the vector lanes. Eight VLT
// scalar threads running on the lanes of the V4-CMT machine versus four
// scalar threads on the CMT (the same two 2-way-threaded scalar units
// without the vector unit). Bars are performance relative to the CMT.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace vlt;
using bench::results;
using machine::MachineConfig;
using workloads::Variant;

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& app : vlt::workloads::scalar_thread_apps()) {
    benchmark::RegisterBenchmark(
        ("fig6/" + app + "/CMT-4threads").c_str(),
        [app](benchmark::State& s) {
          auto w = vlt::workloads::make_workload(app);
          bench::run_and_record(s, MachineConfig::cmt(), *w,
                                Variant::su_threads(4));
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark(
        ("fig6/" + app + "/VLT-8lanes").c_str(),
        [app](benchmark::State& s) {
          auto w = vlt::workloads::make_workload(app);
          bench::run_and_record(s, MachineConfig::v4_cmt(), *w,
                                Variant::lane_threads(8));
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Figure 6: 8 VLT scalar threads on the lanes vs 4 "
              "threads on the CMT ===\n%-10s %12s %12s %20s\n", "app",
              "CMT cycles", "VLT cycles", "VLT perf rel. to CMT");
  for (const std::string& app : vlt::workloads::scalar_thread_apps()) {
    vlt::Cycle cmt = results()[bench::key(app, "CMT", "su-4t")];
    vlt::Cycle vl = results()[bench::key(app, "V4-CMT", "vlt-8lane")];
    std::printf("%-10s %12llu %12llu %19.2fx\n", app.c_str(),
                static_cast<unsigned long long>(cmt),
                static_cast<unsigned long long>(vl), bench::speedup(cmt, vl));
  }
  std::printf("\nPaper: radix and ocean ~2x in favour of VLT; barnes roughly "
              "equal (in-order lanes lose\nper-thread what the extra thread "
              "count gains). See EXPERIMENTS.md for the measured deltas.\n");
  return 0;
}
