// Reproduces Figure 5: the scalar-unit design space for vector threads.
// Speedup over the base vector processor for every SU organization:
// multiplexed (SMT), replicated (CMP), heterogeneous (-h), and hybrid
// (CMT). The paper's findings: V2-SMT ~ V2-CMP; V4-SMT trails because a
// single 4-way SU cannot feed 4 threads; V4-CMT matches V4-CMP at a
// fraction of the area; V4-CMP-h trails all other 4-thread points.
#include <cstdio>

#include "bench_util.hpp"

using namespace vlt;
using machine::MachineConfig;
using workloads::Variant;

namespace {

struct Point {
  const char* config;
  unsigned threads;
};
const Point kPoints[] = {{"base", 1},     {"V2-SMT", 2}, {"V2-CMP", 2},
                         {"V4-SMT", 4},   {"V4-CMT", 4}, {"V4-CMP", 4},
                         {"V4-CMP-h", 4}};

}  // namespace

int main() {
  campaign::SweepSpec spec;
  for (const std::string& app : workloads::vector_thread_apps())
    for (const Point& pt : kPoints)
      spec.add(MachineConfig::by_name(pt.config), app,
               pt.threads == 1 ? Variant::base()
                               : Variant::vector_threads(pt.threads));
  campaign::RunSet results = bench::run(spec);

  std::printf("\n=== Figure 5: VLT speedup over base, per SU organization "
              "===\n%-10s", "app");
  for (std::size_t i = 1; i < std::size(kPoints); ++i)
    std::printf(" %9s", kPoints[i].config);
  std::printf("\n");
  for (const std::string& app : workloads::vector_thread_apps()) {
    Cycle base = results.cycles(app, "base", "base");
    std::printf("%-10s", app.c_str());
    for (std::size_t i = 1; i < std::size(kPoints); ++i) {
      Cycle c = results.cycles(
          app, kPoints[i].config,
          Variant::vector_threads(kPoints[i].threads).to_string());
      std::printf(" %9.2f", bench::speedup(base, c));
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape: V2-SMT ~ V2-CMP; V4-SMT < V4-CMT ~ V4-CMP; "
              "V4-CMP-h trails the other\n4-thread configurations.\n");
  return 0;
}
