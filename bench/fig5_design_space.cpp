// Reproduces Figure 5: the scalar-unit design space for vector threads.
// Speedup over the base vector processor for every SU organization:
// multiplexed (SMT), replicated (CMP), heterogeneous (-h), and hybrid
// (CMT). The paper's findings: V2-SMT ~ V2-CMP; V4-SMT trails because a
// single 4-way SU cannot feed 4 threads; V4-CMT matches V4-CMP at a
// fraction of the area; V4-CMP-h trails all other 4-thread points.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace vlt;
using bench::results;
using machine::MachineConfig;
using workloads::Variant;

struct Point {
  const char* config;
  unsigned threads;
};
const Point kPoints[] = {{"base", 1},     {"V2-SMT", 2}, {"V2-CMP", 2},
                         {"V4-SMT", 4},   {"V4-CMT", 4}, {"V4-CMP", 4},
                         {"V4-CMP-h", 4}};

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& app : vlt::workloads::vector_thread_apps())
    for (const Point& pt : kPoints) {
      std::string cfg = pt.config;
      unsigned n = pt.threads;
      benchmark::RegisterBenchmark(
          ("fig5/" + app + "/" + cfg).c_str(),
          [app, cfg, n](benchmark::State& s) {
            auto w = vlt::workloads::make_workload(app);
            Variant v = n == 1 ? Variant::base() : Variant::vector_threads(n);
            bench::run_and_record(s, MachineConfig::by_name(cfg), *w, v);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Figure 5: VLT speedup over base, per SU organization "
              "===\n%-10s", "app");
  for (std::size_t i = 1; i < std::size(kPoints); ++i)
    std::printf(" %9s", kPoints[i].config);
  std::printf("\n");
  for (const std::string& app : vlt::workloads::vector_thread_apps()) {
    vlt::Cycle base = results()[bench::key(app, "base", "base")];
    std::printf("%-10s", app.c_str());
    for (std::size_t i = 1; i < std::size(kPoints); ++i) {
      std::string variant =
          "vlt-" + std::to_string(kPoints[i].threads) + "vt";
      vlt::Cycle c = results()[bench::key(app, kPoints[i].config, variant)];
      std::printf(" %9.2f", bench::speedup(base, c));
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape: V2-SMT ~ V2-CMP; V4-SMT < V4-CMT ~ V4-CMP; "
              "V4-CMP-h trails the other\n4-thread configurations.\n");
  return 0;
}
