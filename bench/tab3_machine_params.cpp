// Reproduces Table 3: the parameters of the simulated base vector
// processor. Builds the machine and prints its parameters — a closed-form
// check against the paper's numbers, no simulation involved.
#include <cstdio>

#include "machine/machine_config.hpp"
#include "machine/processor.hpp"

using vlt::machine::MachineConfig;

int main() {
  MachineConfig c = MachineConfig::base();
  vlt::machine::Processor proc(c);  // must construct cleanly

  const auto& su = c.sus[0];
  std::printf("\n=== Table 3: base vector processor parameters ===\n");
  std::printf("Scalar Unit      superscalar out-of-order processor\n");
  std::printf("                 %u-way instruction fetch/issue/retire\n",
              su.width);
  std::printf("                 %u-entry instruction window and ROB\n",
              su.rob_size);
  std::printf("                 %u arithmetic units, %u memory ports\n",
              su.arith_units, su.mem_ports);
  std::printf("                 %zu-KByte, %u-way associative, L1 caches\n",
              su.l1_size / 1024, su.l1_ways);
  std::printf("Vector Control   %u-way issue, %u-entry VIQ\n",
              c.vu.issue_width, c.vu.viq_size);
  std::printf("                 %u-entry vector instruction window\n",
              c.vu.window_size);
  std::printf("Vector Lane      %u arithmetic units, %u memory ports\n",
              c.vu.arith_fus, c.vu.mem_ports);
  std::printf("  (x%u replicas) %u physical vector registers "
              "(%u elements/lane)\n",
              c.vu.lanes, 64u, vlt::kMaxVectorLength / c.vu.lanes);
  std::printf("Memory System    %zu-MByte L2 cache\n",
              c.l2.size_bytes / (1024 * 1024));
  std::printf("                 %u-way associative, %u-way banked\n",
              c.l2.ways, c.l2.banks);
  std::printf("                 %u cycles hit, %u cycles miss penalty\n",
              c.l2.hit_latency, c.l2.miss_latency);
  return 0;
}
