// Reproduces Figure 3: VLT speedup over the base vector processor for the
// short/medium-vector applications, with 2 vector threads (V2-CMP) and
// 4 vector threads (V4-CMP) — the fully replicated scalar units that give
// VLT's maximum performance potential.
#include <cstdio>

#include "bench_util.hpp"

using namespace vlt;
using machine::MachineConfig;
using workloads::Variant;

int main() {
  campaign::SweepSpec spec;
  spec.add_grid({MachineConfig::base()}, workloads::vector_thread_apps(),
                {Variant::base()});
  spec.add_grid({MachineConfig::v2_cmp()}, workloads::vector_thread_apps(),
                {Variant::vector_threads(2)});
  spec.add_grid({MachineConfig::v4_cmp()}, workloads::vector_thread_apps(),
                {Variant::vector_threads(4)});
  campaign::RunSet results = bench::run(spec);

  std::printf("\n=== Figure 3: VLT speedup over the base vector processor "
              "===\n%-10s %14s %14s\n", "app", "VLT-2 (V2-CMP)",
              "VLT-4 (V4-CMP)");
  for (const std::string& app : workloads::vector_thread_apps()) {
    Cycle base = results.cycles(app, "base", "base");
    Cycle v2 = results.cycles(app, "V2-CMP", "vlt-2vt");
    Cycle v4 = results.cycles(app, "V4-CMP", "vlt-4vt");
    std::printf("%-10s %14.2f %14.2f\n", app.c_str(),
                bench::speedup(base, v2), bench::speedup(base, v4));
  }
  std::printf("\nPaper: 2 threads 1.14-2.15, 4 threads 1.40-2.3.\n");
  return 0;
}
