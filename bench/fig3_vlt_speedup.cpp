// Reproduces Figure 3: VLT speedup over the base vector processor for the
// short/medium-vector applications, with 2 vector threads (V2-CMP) and
// 4 vector threads (V4-CMP) — the fully replicated scalar units that give
// VLT's maximum performance potential.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace vlt;
using bench::results;
using machine::MachineConfig;
using workloads::Variant;

struct Point {
  const char* config;
  unsigned threads;
};
const Point kPoints[] = {{"base", 1}, {"V2-CMP", 2}, {"V4-CMP", 4}};

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& app : vlt::workloads::vector_thread_apps())
    for (const Point& pt : kPoints) {
      std::string cfg = pt.config;
      unsigned n = pt.threads;
      benchmark::RegisterBenchmark(
          ("fig3/" + app + "/" + cfg).c_str(),
          [app, cfg, n](benchmark::State& s) {
            auto w = vlt::workloads::make_workload(app);
            Variant v = n == 1 ? Variant::base() : Variant::vector_threads(n);
            bench::run_and_record(s, MachineConfig::by_name(cfg), *w, v);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Figure 3: VLT speedup over the base vector processor "
              "===\n%-10s %14s %14s\n", "app", "VLT-2 (V2-CMP)",
              "VLT-4 (V4-CMP)");
  for (const std::string& app : vlt::workloads::vector_thread_apps()) {
    vlt::Cycle base = results()[bench::key(app, "base", "base")];
    vlt::Cycle v2 = results()[bench::key(app, "V2-CMP", "vlt-2vt")];
    vlt::Cycle v4 = results()[bench::key(app, "V4-CMP", "vlt-4vt")];
    std::printf("%-10s %14.2f %14.2f\n", app.c_str(),
                bench::speedup(base, v2), bench::speedup(base, v4));
  }
  std::printf("\nPaper: 2 threads 1.14-2.15, 4 threads 1.40-2.3.\n");
  return 0;
}
