// Reproduces Table 4: characteristics of the applications studied, as
// measured on the base vector processor — % vectorization (in operations),
// average vector length, the most common vector lengths, and the fraction
// of execution time VLT could accelerate ("% Opportunity").
#include <cstdio>

#include "bench_util.hpp"

using namespace vlt;
using machine::MachineConfig;
using machine::RunResult;
using workloads::Variant;

int main() {
  campaign::SweepSpec spec;
  spec.add_grid({MachineConfig::base()}, workloads::workload_names(),
                {Variant::base()});
  campaign::RunSet results = bench::run(spec);

  std::printf("\n=== Table 4: application characteristics on the base "
              "machine ===\n%-10s %8s %8s %-16s %8s\n", "app", "%Vect",
              "AvgVL", "Common VLs", "%Opp");
  for (const std::string& app : workloads::workload_names()) {
    const RunResult& r = results.at({app, "base", "base"});
    std::string common;
    for (std::uint64_t vl : r.vl_hist.top_keys(3)) {
      if (!common.empty()) common += ", ";
      common += std::to_string(vl);
    }
    if (common.empty()) common = "-";
    bool vlt_app = r.opportunity_cycles > 0;
    std::printf("%-10s %7.1f%% %8.1f %-16s %7s\n", app.c_str(),
                r.pct_vectorization(), r.avg_vl(), common.c_str(),
                vlt_app ? (std::to_string(static_cast<int>(
                               r.pct_opportunity() + 0.5)))
                              .c_str()
                        : "-");
  }
  std::printf("\nPaper values: mxm 96/64; sage 94/63.8; mpenc 76/11.2 "
              "(8,16,64) 78%%; trfd 73/22.7 (4,20,30,35) 99%%;\nmultprec "
              "71/25.2 (23,24,64) 81%%; bt 46/7.0 (5,10,12) 70%%; radix "
              "6/62.3 90%%; ocean -/96%%; barnes -/98%%.\n");
  return 0;
}
