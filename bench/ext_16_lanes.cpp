// Extension beyond the paper's evaluation, following its own pointer
// (§6: "A base processor with 16 vector lanes would increase the
// usefulness of VLT for low-DLP applications"): a 16-lane machine, lane
// scaling to 16, and VLT with up to 8 vector threads (2 lanes each,
// MAXVL 8) driven by four 2-way-SMT scalar units.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace vlt;
using machine::MachineConfig;
using workloads::Variant;

/// 16-lane machine with enough SMT slots for 8 vector threads.
MachineConfig sixteen_lane_v8() {
  MachineConfig c = MachineConfig::base(16);
  c.name = "V8-CMT-16L";
  su::SuParams smt2;
  smt2.smt_contexts = 2;
  c.sus = {smt2, smt2, smt2, smt2};
  c.max_vector_threads = 8;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& app : vlt::workloads::vector_thread_apps()) {
    for (unsigned lanes : {8u, 16u})
      benchmark::RegisterBenchmark(
          ("ext16/" + app + "/base" + std::to_string(lanes)).c_str(),
          [app, lanes](benchmark::State& s) {
            auto w = vlt::workloads::make_workload(app);
            bench::run_and_record(s, MachineConfig::base(lanes), *w,
                                  Variant::base());
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    for (unsigned threads : {4u, 8u}) {
      // 8 threads on 16 lanes give MAXVL 8: only apps whose kernels
      // strip-mine below that can use it. mpenc's 16-wide SAD rows and
      // bt's 12-wide line ops need at least 4-thread partitions — the
      // paper's own rule that the thread count must match the phase's DLP
      // (S3.1).
      if (threads == 8 && (app == "mpenc" || app == "bt")) continue;
      benchmark::RegisterBenchmark(
          ("ext16/" + app + "/vlt" + std::to_string(threads)).c_str(),
          [app, threads](benchmark::State& s) {
            auto w = vlt::workloads::make_workload(app);
            bench::run_and_record(s, sixteen_lane_v8(), *w,
                                  Variant::vector_threads(threads));
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Extension: VLT on a 16-lane machine (speedup over the "
              "16-lane base) ===\n%-10s %12s %12s %12s\n", "app",
              "16L vs 8L", "VLT-4 (16L)", "VLT-8 (16L)");
  for (const std::string& app : vlt::workloads::vector_thread_apps()) {
    Cycle b8 = bench::results()[bench::key(app, "base", "base")];
    Cycle b16 =
        bench::results()[bench::key(app, "base-16lane", "base")];
    Cycle v4 = bench::results()[bench::key(app, "V8-CMT-16L", "vlt-4vt")];
    Cycle v8 = bench::results()[bench::key(app, "V8-CMT-16L", "vlt-8vt")];
    if (v8 != 0)
      std::printf("%-10s %12.2f %12.2f %12.2f\n", app.c_str(),
                  bench::speedup(b8, b16), bench::speedup(b16, v4),
                  bench::speedup(b16, v8));
    else
      std::printf("%-10s %12.2f %12.2f %12s\n", app.c_str(),
                  bench::speedup(b8, b16), bench::speedup(b16, v4),
                  "n/a (DLP)");
  }
  std::printf("\nThe paper's §6 expectation: a single thread cannot use 16 "
              "lanes for these codes\n(first column ~1.0), so the VLT "
              "speedups grow relative to the 8-lane machine.\n");
  return 0;
}
