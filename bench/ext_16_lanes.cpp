// Extension beyond the paper's evaluation, following its own pointer
// (§6: "A base processor with 16 vector lanes would increase the
// usefulness of VLT for low-DLP applications"): a 16-lane machine, lane
// scaling to 16, and VLT with up to 8 vector threads (2 lanes each,
// MAXVL 8) driven by four 2-way-SMT scalar units.
#include <cstdio>

#include "bench_util.hpp"

using namespace vlt;
using machine::MachineConfig;
using workloads::Variant;

namespace {

/// 16-lane machine with enough SMT slots for 8 vector threads.
MachineConfig sixteen_lane_v8() {
  MachineConfig c = MachineConfig::base(16);
  c.name = "V8-CMT-16L";
  su::SuParams smt2;
  smt2.smt_contexts = 2;
  c.sus = {smt2, smt2, smt2, smt2};
  c.max_vector_threads = 8;
  return c;
}

bool has_dlp_for_8_threads(const std::string& app) {
  // 8 threads on 16 lanes give MAXVL 8: only apps whose kernels
  // strip-mine below that can use it. mpenc's 16-wide SAD rows and
  // bt's 12-wide line ops need at least 4-thread partitions — the
  // paper's own rule that the thread count must match the phase's DLP
  // (S3.1).
  return app != "mpenc" && app != "bt";
}

}  // namespace

int main() {
  campaign::SweepSpec spec;
  for (const std::string& app : workloads::vector_thread_apps()) {
    for (unsigned lanes : {8u, 16u})
      spec.add(MachineConfig::base(lanes), app, Variant::base());
    for (unsigned threads : {4u, 8u}) {
      if (threads == 8 && !has_dlp_for_8_threads(app)) continue;
      spec.add(sixteen_lane_v8(), app, Variant::vector_threads(threads));
    }
  }
  campaign::RunSet results = bench::run(spec);

  std::printf("\n=== Extension: VLT on a 16-lane machine (speedup over the "
              "16-lane base) ===\n%-10s %12s %12s %12s\n", "app",
              "16L vs 8L", "VLT-4 (16L)", "VLT-8 (16L)");
  for (const std::string& app : workloads::vector_thread_apps()) {
    Cycle b8 = results.cycles(app, "base", "base");
    Cycle b16 = results.cycles(app, "base-16lane", "base");
    Cycle v4 = results.cycles(app, "V8-CMT-16L", "vlt-4vt");
    if (has_dlp_for_8_threads(app)) {
      Cycle v8 = results.cycles(app, "V8-CMT-16L", "vlt-8vt");
      std::printf("%-10s %12.2f %12.2f %12.2f\n", app.c_str(),
                  bench::speedup(b8, b16), bench::speedup(b16, v4),
                  bench::speedup(b16, v8));
    } else {
      std::printf("%-10s %12.2f %12.2f %12s\n", app.c_str(),
                  bench::speedup(b8, b16), bench::speedup(b16, v4),
                  "n/a (DLP)");
    }
  }
  std::printf("\nThe paper's §6 expectation: a single thread cannot use 16 "
              "lanes for these codes\n(first column ~1.0), so the VLT "
              "speedups grow relative to the 8-lane machine.\n");
  return 0;
}
