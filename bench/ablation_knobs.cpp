// Ablations over the design choices DESIGN.md calls out:
//
//  1. Vector chaining on/off (dependent ops wait for full completion).
//  2. L2 bank count (1 / 4 / 16 / 32) under a strided-heavy workload.
//  3. Lane-core load-decoupling depth (4 / 8 / 24) under lane threads.
//  4. The memory-bus width behind the L2.
//
// Each ablation quantifies how much of the headline result rests on the
// corresponding mechanism. Tweaked configs get distinguishing names so
// every cell has a unique RunKey (and its own result-cache identity).
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "workloads/all_workloads.hpp"

using namespace vlt;
using machine::MachineConfig;
using workloads::Variant;

int main() {
  campaign::SweepSpec spec;

  // 1. chaining on/off for the vector-thread apps (base machine).
  for (const std::string& app : workloads::vector_thread_apps())
    for (bool chain : {true, false}) {
      MachineConfig cfg = MachineConfig::base();
      cfg.vu.chaining = chain;
      cfg.name = chain ? "base-chain" : "base-nochain";
      spec.add(cfg, app, Variant::base());
    }

  // 2. L2 banks under trfd (strided row loads) and mxm (streaming).
  for (const std::string& app : {std::string("trfd"), std::string("mxm")})
    for (unsigned banks : {1u, 4u, 16u, 32u}) {
      MachineConfig cfg = MachineConfig::base();
      cfg.l2.banks = banks;
      cfg.name = "base-l2b" + std::to_string(banks);
      spec.add(cfg, app, Variant::base());
    }

  // 3. lane-core load-queue depth under lane threads (ocean, small grid).
  for (unsigned depth : {4u, 8u, 24u}) {
    MachineConfig cfg = MachineConfig::v4_cmt();
    cfg.lane_core.max_outstanding = depth;
    cfg.name = "V4-CMT-lq" + std::to_string(depth);
    spec.add(cfg,
             [] { return std::make_unique<workloads::OceanWorkload>(64, 4); },
             Variant::lane_threads(8));
  }

  // 4. memory-bus width behind the L2 (cycles per 64B line) under mxm.
  for (unsigned cpl : {1u, 2u, 4u, 8u}) {
    MachineConfig cfg = MachineConfig::base();
    cfg.mem_cycles_per_line = cpl;
    cfg.name = "base-membus" + std::to_string(cpl);
    spec.add(cfg, "mxm", Variant::base());
  }

  campaign::RunSet r = bench::run(spec);

  std::printf("\n=== Ablation 1: vector chaining (slowdown when disabled) "
              "===\n");
  for (const std::string& app : workloads::vector_thread_apps())
    std::printf("%-10s chaining-off/on cycle ratio: %.2f\n", app.c_str(),
                bench::speedup(r.cycles(app, "base-nochain", "base"),
                               r.cycles(app, "base-chain", "base")));

  std::printf("\n=== Ablation 2: L2 bank count (speedup vs 1 bank) ===\n");
  for (const std::string& app : {std::string("trfd"), std::string("mxm")}) {
    std::printf("%-10s", app.c_str());
    for (unsigned banks : {1u, 4u, 16u, 32u})
      std::printf("  %u banks: %.2f", banks,
                  bench::speedup(r.cycles(app, "base-l2b1", "base"),
                                 r.cycles(app,
                                          "base-l2b" + std::to_string(banks),
                                          "base")));
    std::printf("\n");
  }

  std::printf("\n=== Ablation 3: lane load-decoupling depth (ocean, 8 lane "
              "threads; speedup vs depth 4) ===\n");
  std::string ocean = workloads::OceanWorkload(64, 4).name();
  for (unsigned depth : {4u, 8u, 24u})
    std::printf("depth %2u: %.2f\n", depth,
                bench::speedup(r.cycles(ocean, "V4-CMT-lq4", "vlt-8lane"),
                               r.cycles(ocean,
                                        "V4-CMT-lq" + std::to_string(depth),
                                        "vlt-8lane")));

  std::printf("\n=== Ablation 4: memory-bus occupancy per line (mxm; "
              "slowdown vs 1 cycle/line) ===\n");
  for (unsigned cpl : {1u, 2u, 4u, 8u})
    std::printf("%u cycles/line: %.2f\n", cpl,
                bench::speedup(r.cycles("mxm",
                                        "base-membus" + std::to_string(cpl),
                                        "base"),
                               r.cycles("mxm", "base-membus1", "base")));
  return 0;
}
