// Ablations over the design choices DESIGN.md calls out:
//
//  1. Vector chaining on/off (dependent ops wait for full completion).
//  2. L2 bank count (1 / 4 / 16 / 32) under a strided-heavy workload.
//  3. Lane-core load-decoupling depth (4 / 8 / 24) under lane threads.
//  4. The memory-bus width behind the L2.
//
// Each ablation quantifies how much of the headline result rests on the
// corresponding mechanism.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "workloads/all_workloads.hpp"

namespace {

using namespace vlt;
using machine::MachineConfig;
using workloads::Variant;

std::map<std::string, Cycle>& cycles_by_key() { return bench::results(); }

void record(benchmark::State& state, const std::string& key,
            const MachineConfig& cfg, const workloads::Workload& w,
            Variant v) {
  machine::RunResult r;
  for (auto _ : state) r = machine::Simulator(cfg).run(w, v);
  if (!r.verified) {
    state.SkipWithError(r.verify_error.c_str());
    return;
  }
  state.counters["cycles"] = static_cast<double>(r.cycles);
  cycles_by_key()[key] = r.cycles;
}

}  // namespace

int main(int argc, char** argv) {
  // 1. chaining on/off for the vector-thread apps (base machine).
  for (const std::string& app : vlt::workloads::vector_thread_apps())
    for (bool chain : {true, false}) {
      std::string key = "chain/" + app + (chain ? "/on" : "/off");
      benchmark::RegisterBenchmark(
          key.c_str(),
          [app, chain, key](benchmark::State& s) {
            MachineConfig cfg = MachineConfig::base();
            cfg.vu.chaining = chain;
            auto w = vlt::workloads::make_workload(app);
            record(s, key, cfg, *w, Variant::base());
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }

  // 2. L2 banks under trfd (strided row loads) and mxm (streaming).
  for (const std::string& app : {std::string("trfd"), std::string("mxm")})
    for (unsigned banks : {1u, 4u, 16u, 32u}) {
      std::string key = "banks/" + app + "/" + std::to_string(banks);
      benchmark::RegisterBenchmark(
          key.c_str(),
          [app, banks, key](benchmark::State& s) {
            MachineConfig cfg = MachineConfig::base();
            cfg.l2.banks = banks;
            auto w = vlt::workloads::make_workload(app);
            record(s, key, cfg, *w, Variant::base());
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }

  // 3. lane-core load-queue depth under lane threads (ocean).
  for (unsigned depth : {4u, 8u, 24u}) {
    std::string key = "laneq/ocean/" + std::to_string(depth);
    benchmark::RegisterBenchmark(
        key.c_str(),
        [depth, key](benchmark::State& s) {
          MachineConfig cfg = MachineConfig::v4_cmt();
          cfg.lane_core.max_outstanding = depth;
          vlt::workloads::OceanWorkload ocean(64, 4);
          record(s, key, cfg, ocean, Variant::lane_threads(8));
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }

  // 4. memory-bus width behind the L2 (cycles per 64B line) under mxm.
  for (unsigned cpl : {1u, 2u, 4u, 8u}) {
    std::string key = "membus/mxm/" + std::to_string(cpl);
    benchmark::RegisterBenchmark(
        key.c_str(),
        [cpl, key](benchmark::State& s) {
          MachineConfig cfg = MachineConfig::base();
          cfg.mem_cycles_per_line = cpl;
          auto w = vlt::workloads::make_workload("mxm");
          record(s, key, cfg, *w, Variant::base());
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  auto& r = cycles_by_key();
  std::printf("\n=== Ablation 1: vector chaining (slowdown when disabled) "
              "===\n");
  for (const std::string& app : vlt::workloads::vector_thread_apps())
    std::printf("%-10s chaining-off/on cycle ratio: %.2f\n", app.c_str(),
                bench::speedup(r["chain/" + app + "/off"],
                               r["chain/" + app + "/on"]));

  std::printf("\n=== Ablation 2: L2 bank count (speedup vs 1 bank) ===\n");
  for (const std::string& app : {std::string("trfd"), std::string("mxm")}) {
    std::printf("%-10s", app.c_str());
    for (unsigned banks : {1u, 4u, 16u, 32u})
      std::printf("  %u banks: %.2f", banks,
                  bench::speedup(r["banks/" + app + "/1"],
                                 r["banks/" + app + "/" +
                                   std::to_string(banks)]));
    std::printf("\n");
  }

  std::printf("\n=== Ablation 3: lane load-decoupling depth (ocean, 8 lane "
              "threads; speedup vs depth 4) ===\n");
  for (unsigned depth : {4u, 8u, 24u})
    std::printf("depth %2u: %.2f\n", depth,
                bench::speedup(r["laneq/ocean/4"],
                               r["laneq/ocean/" + std::to_string(depth)]));

  std::printf("\n=== Ablation 4: memory-bus occupancy per line (mxm; "
              "slowdown vs 1 cycle/line) ===\n");
  for (unsigned cpl : {1u, 2u, 4u, 8u})
    std::printf("%u cycles/line: %.2f\n", cpl,
                bench::speedup(r["membus/mxm/" + std::to_string(cpl)],
                               r["membus/mxm/1"]));
  return 0;
}
