// Shared helpers for the paper-reproduction benches. Each bench binary
// regenerates one table or figure: it declares its grid as a campaign
// SweepSpec, runs it on the parallel campaign engine (thread count from
// VLTSWEEP_THREADS, result cache from VLTSWEEP_CACHE), and prints the
// paper-style rows from the typed RunSet.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "campaign/campaign.hpp"
#include "common/log.hpp"

namespace vlt::bench {

/// Runs the spec on the campaign engine with per-cell progress on stderr.
/// Aborts (vlt::fatal) if any cell fails — a bench must never report
/// numbers from a functionally wrong run, and it has no use for a
/// partial result set, so the typed errors stop here.
inline campaign::RunSet run(const campaign::SweepSpec& spec) {
  campaign::CampaignOptions opts;
  if (const char* t = std::getenv("VLTSWEEP_THREADS"))
    opts.threads = static_cast<unsigned>(std::strtoul(t, nullptr, 10));
  if (const char* c = std::getenv("VLTSWEEP_CACHE")) opts.cache_dir = c;
  opts.progress = [](std::size_t done, std::size_t total,
                     const campaign::RunKey& key, bool hit) {
    std::fprintf(stderr, "[%3zu/%zu] %-44s %s\n", done, total,
                 key.to_string().c_str(), hit ? "(cached)" : "");
  };
  try {
    campaign::RunSet set = campaign::Campaign(opts).run(spec);
    for (const machine::RunResult& r : set.results())
      VLT_CHECK(r.ok(), r.workload + "/" + r.config + "/" + r.variant +
                            " failed [" +
                            machine::run_status_name(r.status) +
                            "]: " + r.error);
    return set;
  } catch (const vlt::SimError& e) {
    vlt::fatal(e.file(), e.line(), e.message());
  }
}

inline double speedup(Cycle baseline, Cycle current) {
  return current == 0 ? 0.0
                      : static_cast<double>(baseline) /
                            static_cast<double>(current);
}

}  // namespace vlt::bench
