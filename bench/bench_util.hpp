// Shared helpers for the paper-reproduction benches. Each bench binary
// regenerates one table or figure: it runs the required simulations inside
// google-benchmark (one iteration per configuration — these are whole-
// program simulations, not microbenchmarks) and prints the paper-style
// rows at the end.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "machine/simulator.hpp"
#include "workloads/workload.hpp"

namespace vlt::bench {

/// Cycle counts collected by the registered benchmarks, keyed by
/// "workload/config/variant", consumed by the final report printer.
inline std::map<std::string, Cycle>& results() {
  static std::map<std::string, Cycle> r;
  return r;
}

inline std::string key(const std::string& workload, const std::string& config,
                       const std::string& variant) {
  return workload + "/" + config + "/" + variant;
}

/// Runs one simulation, records its cycle count, and reports it as the
/// benchmark's "cycles" counter. Aborts if verification fails — a bench
/// must never report numbers from a functionally wrong run.
inline void run_and_record(benchmark::State& state,
                           const machine::MachineConfig& config,
                           const workloads::Workload& workload,
                           const workloads::Variant& variant) {
  machine::RunResult result;
  for (auto _ : state) {
    result = machine::Simulator(config).run(workload, variant);
  }
  if (!result.verified) {
    state.SkipWithError(("verification failed: " + result.verify_error).c_str());
    return;
  }
  state.counters["cycles"] = static_cast<double>(result.cycles);
  results()[key(workload.name(), config.name, variant.to_string())] =
      result.cycles;
}

inline double speedup(Cycle baseline, Cycle current) {
  return current == 0 ? 0.0
                      : static_cast<double>(baseline) /
                            static_cast<double>(current);
}

}  // namespace vlt::bench
