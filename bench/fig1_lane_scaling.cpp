// Reproduces Figure 1: speedup of the base vector processor as the lane
// count scales 1 -> 8, for all nine applications. Long-vector codes (mxm,
// sage) scale well; short-vector codes flatten; scalar codes are flat.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"

namespace {

using namespace vlt;
using bench::results;
using machine::MachineConfig;
using workloads::Variant;

const unsigned kLaneCounts[] = {1, 2, 4, 8};

void BM_LaneScaling(benchmark::State& state, const std::string& app,
                    unsigned lanes) {
  auto w = workloads::make_workload(app);
  bench::run_and_record(state, MachineConfig::base(lanes), *w,
                        Variant::base());
}

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& app : vlt::workloads::workload_names())
    for (unsigned lanes : kLaneCounts)
      benchmark::RegisterBenchmark(
          ("fig1/" + app + "/lanes:" + std::to_string(lanes)).c_str(),
          [app, lanes](benchmark::State& s) { BM_LaneScaling(s, app, lanes); })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Figure 1: speedup vs vector lanes (relative to 1 lane) "
              "===\n%-10s %8s %8s %8s %8s\n", "app", "1", "2", "4", "8");
  for (const std::string& app : vlt::workloads::workload_names()) {
    std::printf("%-10s", app.c_str());
    vlt::Cycle one = results()[bench::key(
        app, MachineConfig::base(1).name, "base")];
    for (unsigned lanes : kLaneCounts) {
      vlt::Cycle c = results()[bench::key(
          app, MachineConfig::base(lanes).name, "base")];
      std::printf(" %8.2f", bench::speedup(one, c));
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape: mxm/sage scale to ~6-7x at 8 lanes; mpenc/"
              "trfd/multprec/bt saturate early;\nradix/ocean/barnes are flat "
              "at 1.0 (scalar code cannot use lanes).\n");
  return 0;
}
