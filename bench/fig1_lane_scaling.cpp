// Reproduces Figure 1: speedup of the base vector processor as the lane
// count scales 1 -> 8, for all nine applications. Long-vector codes (mxm,
// sage) scale well; short-vector codes flatten; scalar codes are flat.
#include <cstdio>

#include "bench_util.hpp"

using namespace vlt;
using machine::MachineConfig;
using workloads::Variant;

namespace {
const unsigned kLaneCounts[] = {1, 2, 4, 8};
}

int main() {
  campaign::SweepSpec spec;
  for (const std::string& app : workloads::workload_names())
    for (unsigned lanes : kLaneCounts)
      spec.add(MachineConfig::base(lanes), app, Variant::base());
  campaign::RunSet results = bench::run(spec);

  std::printf("\n=== Figure 1: speedup vs vector lanes (relative to 1 lane) "
              "===\n%-10s %8s %8s %8s %8s\n", "app", "1", "2", "4", "8");
  for (const std::string& app : workloads::workload_names()) {
    std::printf("%-10s", app.c_str());
    Cycle one = results.cycles(app, MachineConfig::base(1).name, "base");
    for (unsigned lanes : kLaneCounts) {
      Cycle c = results.cycles(app, MachineConfig::base(lanes).name, "base");
      std::printf(" %8.2f", bench::speedup(one, c));
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape: mxm/sage scale to ~6-7x at 8 lanes; mpenc/"
              "trfd/multprec/bt saturate early;\nradix/ocean/barnes are flat "
              "at 1.0 (scalar code cannot use lanes).\n");
  return 0;
}
