// Reproduces Table 1 (component area breakdown) and Table 2 (% area
// increase of VLT configurations over the base vector processor).
//
// These are closed-form model evaluations, so the "benchmark" measures the
// (trivial) model cost and the value is in the printed tables.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "machine/area_model.hpp"

namespace {

using vlt::machine::AreaModel;
using vlt::machine::MachineConfig;

void BM_AreaModel(benchmark::State& state) {
  AreaModel model;
  double sum = 0;
  for (auto _ : state) {
    for (const std::string& name : MachineConfig::preset_names())
      sum += model.config_area(MachineConfig::by_name(name));
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_AreaModel);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  AreaModel model;
  std::printf("\n=== Table 1: area breakdown for vector processor components "
              "===\n%s\n", model.table1().c_str());
  std::printf("=== Table 2: %% area increase over the base vector processor "
              "===\n%s\n", model.table2().c_str());
  std::printf("Note: V4-CMP reproduces the 37%% of the paper's text (S4.2); "
              "the paper's own Table 2 lists 26.9%%,\nwhich is inconsistent "
              "with its Table 1 component areas. See EXPERIMENTS.md.\n");
  return 0;
}
