// Reproduces Table 1 (component area breakdown) and Table 2 (% area
// increase of VLT configurations over the base vector processor).
//
// These are closed-form model evaluations — no simulation, so no campaign:
// the value is in the printed tables.
#include <cstdio>

#include "machine/area_model.hpp"

using vlt::machine::AreaModel;

int main() {
  AreaModel model;
  std::printf("\n=== Table 1: area breakdown for vector processor components "
              "===\n%s\n", model.table1().c_str());
  std::printf("=== Table 2: %% area increase over the base vector processor "
              "===\n%s\n", model.table2().c_str());
  std::printf("Note: V4-CMP reproduces the 37%% of the paper's text (S4.2); "
              "the paper's own Table 2 lists 26.9%%,\nwhich is inconsistent "
              "with its Table 1 component areas. See EXPERIMENTS.md.\n");
  return 0;
}
