// Reproduces Figure 4: normalized utilization of the 24 arithmetic lane
// datapaths (busy / partly idle / stalled / all idle) for base and VLT
// executions, normalized to the base run's total so a shorter bar means a
// faster execution.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.hpp"

namespace {

using namespace vlt;
using machine::MachineConfig;
using machine::RunResult;
using workloads::Variant;

std::map<std::string, RunResult>& full_results() {
  static std::map<std::string, RunResult> r;
  return r;
}

void run_point(benchmark::State& state, const std::string& app,
               const std::string& cfg, unsigned threads) {
  auto w = vlt::workloads::make_workload(app);
  Variant v = threads == 1 ? Variant::base() : Variant::vector_threads(threads);
  RunResult res;
  for (auto _ : state)
    res = machine::Simulator(MachineConfig::by_name(cfg)).run(*w, v);
  if (!res.verified) {
    state.SkipWithError(res.verify_error.c_str());
    return;
  }
  state.counters["cycles"] = static_cast<double>(res.cycles);
  full_results()[app + "/" + cfg] = res;
}

struct Point {
  const char* config;
  unsigned threads;
  const char* label;
};
const Point kPoints[] = {{"base", 1, "base"},
                         {"V2-CMP", 2, "VLT-2"},
                         {"V4-CMP", 4, "VLT-4"}};

}  // namespace

int main(int argc, char** argv) {
  for (const std::string& app : vlt::workloads::vector_thread_apps())
    for (const Point& pt : kPoints) {
      std::string cfg = pt.config;
      unsigned n = pt.threads;
      benchmark::RegisterBenchmark(("fig4/" + app + "/" + cfg).c_str(),
                                   [app, cfg, n](benchmark::State& s) {
                                     run_point(s, app, cfg, n);
                                   })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Figure 4: arithmetic-datapath utilization, normalized "
              "to the base run (%%) ===\n%-10s %-6s %8s %12s %9s %10s %8s\n",
              "app", "run", "busy", "partly-idle", "stalled", "all-idle",
              "total");
  for (const std::string& app : vlt::workloads::vector_thread_apps()) {
    double base_total = static_cast<double>(
        full_results()[app + "/base"].util.total());
    for (const Point& pt : kPoints) {
      const auto& u = full_results()[app + "/" + pt.config].util;
      auto pct = [&](std::uint64_t v) {
        return base_total == 0 ? 0.0 : 100.0 * static_cast<double>(v) /
                                           base_total;
      };
      std::printf("%-10s %-6s %7.1f%% %11.1f%% %8.1f%% %9.1f%% %7.1f%%\n",
                  app.c_str(), pt.label, pct(u.busy), pct(u.partly_idle),
                  pct(u.stalled), pct(u.all_idle), pct(u.total()));
    }
  }
  std::printf("\nPaper shape: VLT compresses execution (smaller total bar), "
              "converting stall/idle lane-cycles\ninto busy ones; busy "
              "lane-cycles (real element work) stay constant.\n");
  return 0;
}
