// Reproduces Figure 4: normalized utilization of the 24 arithmetic lane
// datapaths (busy / partly idle / stalled / all idle) for base and VLT
// executions, normalized to the base run's total so a shorter bar means a
// faster execution.
#include <cstdio>

#include "bench_util.hpp"

using namespace vlt;
using machine::MachineConfig;
using workloads::Variant;

namespace {

struct Point {
  const char* config;
  unsigned threads;
  const char* label;
};
const Point kPoints[] = {{"base", 1, "base"},
                         {"V2-CMP", 2, "VLT-2"},
                         {"V4-CMP", 4, "VLT-4"}};

}  // namespace

int main() {
  campaign::SweepSpec spec;
  for (const std::string& app : workloads::vector_thread_apps())
    for (const Point& pt : kPoints)
      spec.add(MachineConfig::by_name(pt.config), app,
               pt.threads == 1 ? Variant::base()
                               : Variant::vector_threads(pt.threads));
  campaign::RunSet results = bench::run(spec);

  std::printf("\n=== Figure 4: arithmetic-datapath utilization, normalized "
              "to the base run (%%) ===\n%-10s %-6s %8s %12s %9s %10s %8s\n",
              "app", "run", "busy", "partly-idle", "stalled", "all-idle",
              "total");
  for (const std::string& app : workloads::vector_thread_apps()) {
    double base_total = static_cast<double>(
        results.at({app, "base", "base"}).util.total());
    for (const Point& pt : kPoints) {
      std::string variant =
          pt.threads == 1 ? "base"
                          : Variant::vector_threads(pt.threads).to_string();
      const auto& u = results.at({app, pt.config, variant}).util;
      auto pct = [&](std::uint64_t v) {
        return base_total == 0 ? 0.0 : 100.0 * static_cast<double>(v) /
                                           base_total;
      };
      std::printf("%-10s %-6s %7.1f%% %11.1f%% %8.1f%% %9.1f%% %7.1f%%\n",
                  app.c_str(), pt.label, pct(u.busy), pct(u.partly_idle),
                  pct(u.stalled), pct(u.all_idle), pct(u.total()));
    }
  }
  std::printf("\nPaper shape: VLT compresses execution (smaller total bar), "
              "converting stall/idle lane-cycles\ninto busy ones; busy "
              "lane-cycles (real element work) stay constant.\n");
  return 0;
}
