# Empty dependencies file for fig6_scalar_threads.
# This may be replaced when dependencies are built.
