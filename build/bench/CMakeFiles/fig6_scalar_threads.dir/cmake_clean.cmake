file(REMOVE_RECURSE
  "CMakeFiles/fig6_scalar_threads.dir/fig6_scalar_threads.cpp.o"
  "CMakeFiles/fig6_scalar_threads.dir/fig6_scalar_threads.cpp.o.d"
  "fig6_scalar_threads"
  "fig6_scalar_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_scalar_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
