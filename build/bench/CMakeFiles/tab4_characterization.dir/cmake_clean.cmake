file(REMOVE_RECURSE
  "CMakeFiles/tab4_characterization.dir/tab4_characterization.cpp.o"
  "CMakeFiles/tab4_characterization.dir/tab4_characterization.cpp.o.d"
  "tab4_characterization"
  "tab4_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
