# Empty compiler generated dependencies file for tab4_characterization.
# This may be replaced when dependencies are built.
