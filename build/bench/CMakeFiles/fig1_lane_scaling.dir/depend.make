# Empty dependencies file for fig1_lane_scaling.
# This may be replaced when dependencies are built.
