file(REMOVE_RECURSE
  "CMakeFiles/fig1_lane_scaling.dir/fig1_lane_scaling.cpp.o"
  "CMakeFiles/fig1_lane_scaling.dir/fig1_lane_scaling.cpp.o.d"
  "fig1_lane_scaling"
  "fig1_lane_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_lane_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
