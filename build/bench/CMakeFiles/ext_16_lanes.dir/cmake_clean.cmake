file(REMOVE_RECURSE
  "CMakeFiles/ext_16_lanes.dir/ext_16_lanes.cpp.o"
  "CMakeFiles/ext_16_lanes.dir/ext_16_lanes.cpp.o.d"
  "ext_16_lanes"
  "ext_16_lanes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_16_lanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
