# Empty compiler generated dependencies file for ext_16_lanes.
# This may be replaced when dependencies are built.
