# Empty compiler generated dependencies file for fig4_datapath_utilization.
# This may be replaced when dependencies are built.
