file(REMOVE_RECURSE
  "CMakeFiles/fig4_datapath_utilization.dir/fig4_datapath_utilization.cpp.o"
  "CMakeFiles/fig4_datapath_utilization.dir/fig4_datapath_utilization.cpp.o.d"
  "fig4_datapath_utilization"
  "fig4_datapath_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_datapath_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
