# Empty compiler generated dependencies file for tab3_machine_params.
# This may be replaced when dependencies are built.
