file(REMOVE_RECURSE
  "CMakeFiles/tab3_machine_params.dir/tab3_machine_params.cpp.o"
  "CMakeFiles/tab3_machine_params.dir/tab3_machine_params.cpp.o.d"
  "tab3_machine_params"
  "tab3_machine_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_machine_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
