file(REMOVE_RECURSE
  "CMakeFiles/tab1_tab2_area.dir/tab1_tab2_area.cpp.o"
  "CMakeFiles/tab1_tab2_area.dir/tab1_tab2_area.cpp.o.d"
  "tab1_tab2_area"
  "tab1_tab2_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_tab2_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
