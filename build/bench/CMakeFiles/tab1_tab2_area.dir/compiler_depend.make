# Empty compiler generated dependencies file for tab1_tab2_area.
# This may be replaced when dependencies are built.
