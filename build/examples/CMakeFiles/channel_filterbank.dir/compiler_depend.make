# Empty compiler generated dependencies file for channel_filterbank.
# This may be replaced when dependencies are built.
