file(REMOVE_RECURSE
  "CMakeFiles/channel_filterbank.dir/channel_filterbank.cpp.o"
  "CMakeFiles/channel_filterbank.dir/channel_filterbank.cpp.o.d"
  "channel_filterbank"
  "channel_filterbank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_filterbank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
