file(REMOVE_RECURSE
  "CMakeFiles/vlt_tests.dir/test_area.cpp.o"
  "CMakeFiles/vlt_tests.dir/test_area.cpp.o.d"
  "CMakeFiles/vlt_tests.dir/test_func.cpp.o"
  "CMakeFiles/vlt_tests.dir/test_func.cpp.o.d"
  "CMakeFiles/vlt_tests.dir/test_integration.cpp.o"
  "CMakeFiles/vlt_tests.dir/test_integration.cpp.o.d"
  "CMakeFiles/vlt_tests.dir/test_isa.cpp.o"
  "CMakeFiles/vlt_tests.dir/test_isa.cpp.o.d"
  "CMakeFiles/vlt_tests.dir/test_lanecore.cpp.o"
  "CMakeFiles/vlt_tests.dir/test_lanecore.cpp.o.d"
  "CMakeFiles/vlt_tests.dir/test_machine.cpp.o"
  "CMakeFiles/vlt_tests.dir/test_machine.cpp.o.d"
  "CMakeFiles/vlt_tests.dir/test_mem.cpp.o"
  "CMakeFiles/vlt_tests.dir/test_mem.cpp.o.d"
  "CMakeFiles/vlt_tests.dir/test_properties.cpp.o"
  "CMakeFiles/vlt_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/vlt_tests.dir/test_su.cpp.o"
  "CMakeFiles/vlt_tests.dir/test_su.cpp.o.d"
  "CMakeFiles/vlt_tests.dir/test_vu.cpp.o"
  "CMakeFiles/vlt_tests.dir/test_vu.cpp.o.d"
  "CMakeFiles/vlt_tests.dir/test_workloads.cpp.o"
  "CMakeFiles/vlt_tests.dir/test_workloads.cpp.o.d"
  "vlt_tests"
  "vlt_tests.pdb"
  "vlt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
