# Empty dependencies file for vlt_tests.
# This may be replaced when dependencies are built.
