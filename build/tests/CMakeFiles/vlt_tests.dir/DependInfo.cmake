
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_area.cpp" "tests/CMakeFiles/vlt_tests.dir/test_area.cpp.o" "gcc" "tests/CMakeFiles/vlt_tests.dir/test_area.cpp.o.d"
  "/root/repo/tests/test_func.cpp" "tests/CMakeFiles/vlt_tests.dir/test_func.cpp.o" "gcc" "tests/CMakeFiles/vlt_tests.dir/test_func.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/vlt_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/vlt_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/vlt_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/vlt_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_lanecore.cpp" "tests/CMakeFiles/vlt_tests.dir/test_lanecore.cpp.o" "gcc" "tests/CMakeFiles/vlt_tests.dir/test_lanecore.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/vlt_tests.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/vlt_tests.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_mem.cpp" "tests/CMakeFiles/vlt_tests.dir/test_mem.cpp.o" "gcc" "tests/CMakeFiles/vlt_tests.dir/test_mem.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/vlt_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/vlt_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_su.cpp" "tests/CMakeFiles/vlt_tests.dir/test_su.cpp.o" "gcc" "tests/CMakeFiles/vlt_tests.dir/test_su.cpp.o.d"
  "/root/repo/tests/test_vu.cpp" "tests/CMakeFiles/vlt_tests.dir/test_vu.cpp.o" "gcc" "tests/CMakeFiles/vlt_tests.dir/test_vu.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/vlt_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/vlt_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vltsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
