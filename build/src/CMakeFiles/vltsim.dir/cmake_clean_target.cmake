file(REMOVE_RECURSE
  "libvltsim.a"
)
