# Empty compiler generated dependencies file for vltsim.
# This may be replaced when dependencies are built.
