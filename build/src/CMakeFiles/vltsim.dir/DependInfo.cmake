
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/vltsim.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/common/log.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/vltsim.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/common/stats.cpp.o.d"
  "/root/repo/src/func/arch_state.cpp" "src/CMakeFiles/vltsim.dir/func/arch_state.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/func/arch_state.cpp.o.d"
  "/root/repo/src/func/executor.cpp" "src/CMakeFiles/vltsim.dir/func/executor.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/func/executor.cpp.o.d"
  "/root/repo/src/func/memory.cpp" "src/CMakeFiles/vltsim.dir/func/memory.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/func/memory.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/vltsim.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/opcode.cpp" "src/CMakeFiles/vltsim.dir/isa/opcode.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/isa/opcode.cpp.o.d"
  "/root/repo/src/isa/program.cpp" "src/CMakeFiles/vltsim.dir/isa/program.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/isa/program.cpp.o.d"
  "/root/repo/src/lanecore/lane_core.cpp" "src/CMakeFiles/vltsim.dir/lanecore/lane_core.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/lanecore/lane_core.cpp.o.d"
  "/root/repo/src/machine/area_model.cpp" "src/CMakeFiles/vltsim.dir/machine/area_model.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/machine/area_model.cpp.o.d"
  "/root/repo/src/machine/machine_config.cpp" "src/CMakeFiles/vltsim.dir/machine/machine_config.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/machine/machine_config.cpp.o.d"
  "/root/repo/src/machine/processor.cpp" "src/CMakeFiles/vltsim.dir/machine/processor.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/machine/processor.cpp.o.d"
  "/root/repo/src/machine/simulator.cpp" "src/CMakeFiles/vltsim.dir/machine/simulator.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/machine/simulator.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/vltsim.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/l2_cache.cpp" "src/CMakeFiles/vltsim.dir/mem/l2_cache.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/mem/l2_cache.cpp.o.d"
  "/root/repo/src/su/branch_pred.cpp" "src/CMakeFiles/vltsim.dir/su/branch_pred.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/su/branch_pred.cpp.o.d"
  "/root/repo/src/su/scalar_core.cpp" "src/CMakeFiles/vltsim.dir/su/scalar_core.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/su/scalar_core.cpp.o.d"
  "/root/repo/src/vltctl/barrier.cpp" "src/CMakeFiles/vltsim.dir/vltctl/barrier.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/vltctl/barrier.cpp.o.d"
  "/root/repo/src/vltctl/partition.cpp" "src/CMakeFiles/vltsim.dir/vltctl/partition.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/vltctl/partition.cpp.o.d"
  "/root/repo/src/vu/vector_unit.cpp" "src/CMakeFiles/vltsim.dir/vu/vector_unit.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/vu/vector_unit.cpp.o.d"
  "/root/repo/src/workloads/barnes.cpp" "src/CMakeFiles/vltsim.dir/workloads/barnes.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/workloads/barnes.cpp.o.d"
  "/root/repo/src/workloads/bt.cpp" "src/CMakeFiles/vltsim.dir/workloads/bt.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/workloads/bt.cpp.o.d"
  "/root/repo/src/workloads/mpenc.cpp" "src/CMakeFiles/vltsim.dir/workloads/mpenc.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/workloads/mpenc.cpp.o.d"
  "/root/repo/src/workloads/multprec.cpp" "src/CMakeFiles/vltsim.dir/workloads/multprec.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/workloads/multprec.cpp.o.d"
  "/root/repo/src/workloads/mxm.cpp" "src/CMakeFiles/vltsim.dir/workloads/mxm.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/workloads/mxm.cpp.o.d"
  "/root/repo/src/workloads/ocean.cpp" "src/CMakeFiles/vltsim.dir/workloads/ocean.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/workloads/ocean.cpp.o.d"
  "/root/repo/src/workloads/radix.cpp" "src/CMakeFiles/vltsim.dir/workloads/radix.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/workloads/radix.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/vltsim.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/sage.cpp" "src/CMakeFiles/vltsim.dir/workloads/sage.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/workloads/sage.cpp.o.d"
  "/root/repo/src/workloads/trfd.cpp" "src/CMakeFiles/vltsim.dir/workloads/trfd.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/workloads/trfd.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/CMakeFiles/vltsim.dir/workloads/workload.cpp.o" "gcc" "src/CMakeFiles/vltsim.dir/workloads/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
