# Empty compiler generated dependencies file for vltsim_run.
# This may be replaced when dependencies are built.
