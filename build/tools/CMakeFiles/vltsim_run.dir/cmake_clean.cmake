file(REMOVE_RECURSE
  "CMakeFiles/vltsim_run.dir/vltsim_run.cpp.o"
  "CMakeFiles/vltsim_run.dir/vltsim_run.cpp.o.d"
  "vltsim_run"
  "vltsim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vltsim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
