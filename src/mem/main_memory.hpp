// Main-memory channel: fixed access latency plus a shared line-transfer
// bus that bounds sustainable bandwidth (one line per `cycles_per_line`).
#pragma once

#include "ckpt/checkpoint.hpp"
#include "common/types.hpp"

namespace vlt::mem {

struct MainMemoryParams {
  unsigned latency = 90;         // cycles from request to line available
  unsigned cycles_per_line = 4;  // bus occupancy per 64-byte line
};

class MainMemory : public ckpt::Checkpointable {
 public:
  explicit MainMemory(const MainMemoryParams& p) : params_(p) {}

  /// Schedules a line fetch no earlier than `earliest`; returns the cycle
  /// the line is available.
  Cycle request_line(Cycle earliest) {
    Cycle start = earliest > bus_free_ ? earliest : bus_free_;
    bus_free_ = start + params_.cycles_per_line;
    ++requests_;
    return start + params_.latency;
  }

  std::uint64_t requests() const { return requests_; }

  /// Checkpointing (docs/CKPT.md). The request count is not a registry
  /// instrument, so it rides in the snapshot explicitly.
  void save_state(ckpt::Writer& w) const override {
    w.u64("bus_free", bus_free_);
    w.u64("requests", requests_);
  }
  void restore_state(ckpt::Reader& r) override {
    bus_free_ = r.u64("bus_free");
    requests_ = r.u64("requests");
  }

 private:
  MainMemoryParams params_;
  Cycle bus_free_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace vlt::mem
