// Multi-banked L2 cache (Table 3: 4 MB, 4-way, 16 banks, 10-cycle hit,
// 100-cycle miss). Banks are interleaved by line address; each bank accepts
// one access per `bank_occupancy` cycles, so strided and indexed vector
// streams see realistic conflicts. Outstanding misses to the same line are
// merged (MSHR behaviour).
#pragma once

#include <string>
#include <unordered_map>

#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/main_memory.hpp"
#include "stats/trace.hpp"

namespace vlt::mem {

struct L2Params {
  std::size_t size_bytes = 4 * 1024 * 1024;
  unsigned ways = 4;
  unsigned banks = 16;
  unsigned hit_latency = 10;
  unsigned miss_latency = 100;  // total latency of a miss (Table 3)
  unsigned bank_occupancy = 1;  // cycles a bank is busy per access
};

class L2Cache : public ckpt::Checkpointable {
 public:
  L2Cache(const L2Params& p, MainMemory& memory);

  /// Performs one line-granularity access; returns the cycle the data is
  /// available (loads) or accepted (stores).
  Cycle access(Addr addr, bool is_write, Cycle now);

  /// Earliest cycle the bank owning `addr` could accept a new access; used
  /// by the vector LSU to throttle address generation.
  Cycle bank_free(Addr addr) const {
    return bank_free_[(addr / kLineBytes) % bank_free_.size()];
  }

  std::uint64_t hits() const { return tags_.hits(); }
  std::uint64_t misses() const { return tags_.misses(); }
  std::uint64_t accesses() const { return tags_.hits() + tags_.misses(); }

  /// Attaches an audit sink to the tag array and enables timing checks on
  /// every access (no completion before the hit latency; completion times
  /// never precede the request). Pass nullptr to detach.
  void set_audit(audit::AuditSink* sink);

  /// Registers the tag-array instruments under `prefix` ("l2.hits", ...).
  void register_stats(stats::Registry& registry, const std::string& prefix) {
    tags_.register_stats(registry, prefix);
  }

  /// Attaches the structured-event trace buffer; misses record a kL2Miss
  /// with the owning bank as the lane. Pass nullptr to detach.
  void set_trace(stats::TraceBuffer* trace) { trace_ = trace; }

  /// Checkpointing (docs/CKPT.md): tag array, per-bank busy times, and
  /// outstanding fills (serialized line-sorted for determinism). The
  /// prune heuristic counter restarts at zero — pruning only drops fills
  /// already in the past, so the restart is timing-neutral.
  void save_state(ckpt::Writer& w) const override;
  void restore_state(ckpt::Reader& r) override;

 private:
  void prune_pending(Cycle now);

  L2Params params_;
  Cache tags_;
  MainMemory* memory_;
  std::vector<Cycle> bank_free_;
  std::unordered_map<Addr, Cycle> pending_fills_;  // line index -> fill time
  std::uint64_t accesses_since_prune_ = 0;
  audit::AuditSink* audit_ = nullptr;
  stats::TraceBuffer* trace_ = nullptr;
};

}  // namespace vlt::mem
