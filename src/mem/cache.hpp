// Generic set-associative tag array with LRU replacement. This is a pure
// timing structure: data contents live in func::FuncMemory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "common/types.hpp"
#include "stats/stats.hpp"

namespace vlt::audit {
class AuditSink;
}

namespace vlt::mem {

class Cache : public ckpt::Checkpointable {
 public:
  struct Result {
    bool hit = false;
    bool writeback = false;  // a dirty victim was evicted
    Addr victim_addr = 0;    // line address of the victim
  };

  /// `size_bytes` and `ways` must describe at least one set.
  Cache(std::size_t size_bytes, unsigned ways,
        unsigned line_bytes = kLineBytes);

  /// Looks up `addr`, allocating the line on a miss (write-allocate).
  Result access(Addr addr, bool is_write);

  /// Tag check without any state change.
  bool probe(Addr addr) const;

  /// Drops a line if present (used for explicit invalidations in tests).
  void invalidate(Addr addr);
  void invalidate_all();

  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t misses() const { return misses_.value(); }
  std::uint64_t accesses() const { return accesses_.value(); }
  std::uint64_t writebacks() const { return writebacks_.value(); }
  std::uint64_t valid_lines() const {
    return static_cast<std::uint64_t>(valid_lines_.value());
  }
  unsigned num_sets() const { return num_sets_; }
  unsigned ways() const { return ways_; }

  /// Attaches an audit sink checking counter conservation on every access:
  /// hits + misses == accesses, writebacks never exceed misses, and the
  /// valid-line population never exceeds the tag array capacity. `name`
  /// labels violations (e.g. "l1d", "l2") and is copied, so callers may
  /// pass temporaries. Pass nullptr to detach.
  void set_audit(audit::AuditSink* sink, std::string name) {
    audit_ = sink;
    audit_name_ = std::move(name);
  }

  /// Registers "<prefix>.hits" / ".misses" / ".accesses" / ".writebacks"
  /// counters and the ".valid_lines" gauge, plus the conservation
  /// invariant under the same prefix (evaluated at end of run through
  /// Registry::check_invariants).
  void register_stats(stats::Registry& registry, const std::string& prefix);

  /// Checkpointing (docs/CKPT.md): tag array + LRU clock. The hit/miss
  /// counters are registry-restored; the valid-line gauge is recomputed
  /// here so the tag array and its occupancy can never disagree.
  void save_state(ckpt::Writer& w) const override;
  void restore_state(ckpt::Reader& r) override;

 private:
  struct Line {
    Addr tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
    bool dirty = false;
  };

  void check_counters() const;
  /// Diagnostic when the hit/miss/writeback/occupancy counters fail to
  /// reconcile; nullopt when conservation holds. Shared by the per-access
  /// audit check and the registry invariant.
  std::optional<std::string> conservation_violation() const;

  std::size_t set_index(Addr addr) const {
    return (addr / line_bytes_) % num_sets_;
  }
  Addr tag_of(Addr addr) const { return addr / line_bytes_ / num_sets_; }
  Addr line_addr(Addr tag, std::size_t set) const {
    return (tag * num_sets_ + set) * line_bytes_;
  }

  unsigned line_bytes_;
  unsigned ways_;
  unsigned num_sets_;
  std::vector<Line> lines_;  // num_sets_ * ways_, set-major
  std::uint64_t use_clock_ = 0;
  stats::Counter hits_;
  stats::Counter misses_;
  stats::Counter accesses_;
  stats::Counter writebacks_;
  stats::Gauge valid_lines_;
  audit::AuditSink* audit_ = nullptr;
  std::string audit_name_ = "cache";
};

}  // namespace vlt::mem
