// Generic set-associative tag array with LRU replacement. This is a pure
// timing structure: data contents live in func::FuncMemory.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace vlt::mem {

class Cache {
 public:
  struct Result {
    bool hit = false;
    bool writeback = false;  // a dirty victim was evicted
    Addr victim_addr = 0;    // line address of the victim
  };

  /// `size_bytes` and `ways` must describe at least one set.
  Cache(std::size_t size_bytes, unsigned ways,
        unsigned line_bytes = kLineBytes);

  /// Looks up `addr`, allocating the line on a miss (write-allocate).
  Result access(Addr addr, bool is_write);

  /// Tag check without any state change.
  bool probe(Addr addr) const;

  /// Drops a line if present (used for explicit invalidations in tests).
  void invalidate(Addr addr);
  void invalidate_all();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  unsigned num_sets() const { return num_sets_; }
  unsigned ways() const { return ways_; }

 private:
  struct Line {
    Addr tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::size_t set_index(Addr addr) const {
    return (addr / line_bytes_) % num_sets_;
  }
  Addr tag_of(Addr addr) const { return addr / line_bytes_ / num_sets_; }
  Addr line_addr(Addr tag, std::size_t set) const {
    return (tag * num_sets_ + set) * line_bytes_;
  }

  unsigned line_bytes_;
  unsigned ways_;
  unsigned num_sets_;
  std::vector<Line> lines_;  // num_sets_ * ways_, set-major
  std::uint64_t use_clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace vlt::mem
