#include "mem/l2_cache.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "audit/sink.hpp"
#include "common/log.hpp"

namespace vlt::mem {

namespace {

// Observational timing check shared by all completion paths: a completion
// can never precede the request or undercut the hit latency.
void check_timing(audit::AuditSink* audit, const L2Params& p, Cycle start,
                  Cycle done, Cycle now) {
  if (audit == nullptr) return;
  audit->expect(done >= start + p.hit_latency, audit::Check::kCacheTiming,
                "l2", now,
                "completion at cycle " + std::to_string(done) +
                    " undercuts the hit latency (start " +
                    std::to_string(start) + ", hit latency " +
                    std::to_string(p.hit_latency) + ")");
  audit->expect(start >= now, audit::Check::kCacheTiming, "l2", now,
                "bank accepted an access at cycle " + std::to_string(start) +
                    ", before it was requested");
}

}  // namespace

L2Cache::L2Cache(const L2Params& p, MainMemory& memory)
    : params_(p),
      tags_(p.size_bytes, p.ways),
      memory_(&memory),
      bank_free_(p.banks, 0) {}

Cycle L2Cache::access(Addr addr, bool is_write, Cycle now) {
  Addr line = addr / kLineBytes;
  std::size_t bank = line % bank_free_.size();

  Cycle start = now > bank_free_[bank] ? now : bank_free_[bank];
  bank_free_[bank] = start + params_.bank_occupancy;

  if (++accesses_since_prune_ >= 65536) prune_pending(now);

  // Merge with an outstanding fill of the same line. The merged request
  // still traverses the bank pipe, so it can never beat the hit latency.
  auto it = pending_fills_.find(line);
  if (it != pending_fills_.end()) {
    if (it->second > start) {
      tags_.access(addr, is_write);  // keep LRU/dirty state coherent
      Cycle done = std::max(it->second, start + params_.hit_latency);
      check_timing(audit_, params_, start, done, now);
      return done;
    }
    pending_fills_.erase(it);
  }

  Cache::Result r = tags_.access(addr, is_write);
  if (r.hit) {
    check_timing(audit_, params_, start, start + params_.hit_latency, now);
    return start + params_.hit_latency;
  }

  // Miss: fetch the line from main memory; a dirty victim writeback uses
  // the memory bus as well (request_line models the occupancy). The machine
  // config sets the memory latency to miss_latency - hit_latency, so an
  // uncontended miss completes at start + miss_latency (Table 3: 100).
  if (trace_ != nullptr)
    trace_->record(stats::TraceEvent::Kind::kL2Miss, now,
                   static_cast<std::uint32_t>(bank), addr);
  if (r.writeback) (void)memory_->request_line(start);
  Cycle fill = memory_->request_line(start);
  Cycle done = fill + params_.hit_latency;
  pending_fills_[line] = done;
  check_timing(audit_, params_, start, done, now);
  return done;
}

void L2Cache::set_audit(audit::AuditSink* sink) {
  audit_ = sink;
  tags_.set_audit(sink, "l2");
}

void L2Cache::save_state(ckpt::Writer& w) const {
  w.push("tags");
  tags_.save_state(w);
  w.pop();
  w.blob64("bank_free", bank_free_.data(), bank_free_.size());
  std::vector<std::pair<Addr, Cycle>> fills(pending_fills_.begin(),
                                            pending_fills_.end());
  std::sort(fills.begin(), fills.end());
  std::vector<std::uint64_t> flat;
  flat.reserve(fills.size() * 2);
  for (const auto& [line, fill] : fills) {
    flat.push_back(line);
    flat.push_back(fill);
  }
  w.blob64("pending_fills", flat.data(), flat.size());
}

void L2Cache::restore_state(ckpt::Reader& r) {
  r.push("tags");
  tags_.restore_state(r);
  r.pop();
  r.blob64("bank_free", bank_free_.data(), bank_free_.size());
  std::vector<std::uint64_t> flat = r.blob64("pending_fills");
  VLT_CHECK(flat.size() % 2 == 0, "pending-fill table must hold pairs");
  pending_fills_.clear();
  for (std::size_t i = 0; i < flat.size(); i += 2)
    pending_fills_[flat[i]] = flat[i + 1];
  accesses_since_prune_ = 0;
}

void L2Cache::prune_pending(Cycle now) {
  accesses_since_prune_ = 0;
  for (auto it = pending_fills_.begin(); it != pending_fills_.end();) {
    if (it->second <= now)
      it = pending_fills_.erase(it);
    else
      ++it;
  }
}

}  // namespace vlt::mem
