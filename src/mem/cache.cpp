#include "mem/cache.hpp"

#include <string>

#include "audit/sink.hpp"
#include "common/log.hpp"

namespace vlt::mem {

Cache::Cache(std::size_t size_bytes, unsigned ways, unsigned line_bytes)
    : line_bytes_(line_bytes), ways_(ways) {
  VLT_CHECK(ways >= 1, "cache needs at least one way");
  std::size_t num_lines = size_bytes / line_bytes;
  VLT_CHECK(num_lines >= ways, "cache smaller than one set");
  num_sets_ = static_cast<unsigned>(num_lines / ways);
  lines_.resize(static_cast<std::size_t>(num_sets_) * ways_);
}

Cache::Result Cache::access(Addr addr, bool is_write) {
  Result res;
  std::size_t set = set_index(addr);
  Addr tag = tag_of(addr);
  Line* base = &lines_[set * ways_];
  ++use_clock_;
  accesses_.inc();

  Line* victim = &base[0];
  for (unsigned w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.last_use = use_clock_;
      line.dirty |= is_write;
      hits_.inc();
      res.hit = true;
      check_counters();
      return res;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.last_use < victim->last_use) {
      victim = &line;
    }
  }

  misses_.inc();
  if (victim->valid && victim->dirty) {
    res.writeback = true;
    res.victim_addr = line_addr(victim->tag, set);
    writebacks_.inc();
  }
  if (!victim->valid) valid_lines_.inc();
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;
  victim->last_use = use_clock_;
  check_counters();
  return res;
}

std::optional<std::string> Cache::conservation_violation() const {
  if (hits() + misses() != accesses())
    return "hits (" + std::to_string(hits()) + ") + misses (" +
           std::to_string(misses()) + ") do not reconcile with accesses (" +
           std::to_string(accesses()) + ")";
  if (writebacks() > misses())
    return "writebacks (" + std::to_string(writebacks()) +
           ") exceed misses (" + std::to_string(misses()) + ")";
  if (valid_lines() > lines_.size())
    return "valid-line population (" + std::to_string(valid_lines()) +
           ") exceeds the tag array capacity (" +
           std::to_string(lines_.size()) + ")";
  return std::nullopt;
}

void Cache::check_counters() const {
  if (audit_ == nullptr) return;
  if (std::optional<std::string> violation = conservation_violation())
    audit_->report(audit::Violation{audit::Check::kCacheCounters, audit_name_,
                                    use_clock_, *violation});
}

void Cache::register_stats(stats::Registry& registry,
                           const std::string& prefix) {
  registry.add_counter(prefix + ".hits", &hits_);
  registry.add_counter(prefix + ".misses", &misses_);
  registry.add_counter(prefix + ".accesses", &accesses_);
  registry.add_counter(prefix + ".writebacks", &writebacks_);
  registry.add_gauge(prefix + ".valid_lines", &valid_lines_);
  registry.add_invariant(prefix, audit::Check::kCacheCounters,
                         [this] { return conservation_violation(); });
}

void Cache::save_state(ckpt::Writer& w) const {
  std::vector<std::uint64_t> tags(lines_.size());
  std::vector<std::uint64_t> last_use(lines_.size());
  std::vector<std::uint8_t> flags(lines_.size());
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    tags[i] = lines_[i].tag;
    last_use[i] = lines_[i].last_use;
    flags[i] = static_cast<std::uint8_t>((lines_[i].valid ? 1 : 0) |
                                         (lines_[i].dirty ? 2 : 0));
  }
  w.u64("num_lines", lines_.size());
  w.blob64("tags", tags.data(), tags.size());
  w.blob64("last_use", last_use.data(), last_use.size());
  w.blob8("flags", flags.data(), flags.size());
  w.u64("use_clock", use_clock_);
}

void Cache::restore_state(ckpt::Reader& r) {
  VLT_CHECK(r.u64("num_lines") == lines_.size(),
            "checkpoint tag array size does not match this cache");
  std::vector<std::uint64_t> tags(lines_.size());
  std::vector<std::uint64_t> last_use(lines_.size());
  std::vector<std::uint8_t> flags(lines_.size());
  r.blob64("tags", tags.data(), tags.size());
  r.blob64("last_use", last_use.data(), last_use.size());
  r.blob8("flags", flags.data(), flags.size());
  std::int64_t valid = 0;
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    lines_[i].tag = tags[i];
    lines_[i].last_use = last_use[i];
    lines_[i].valid = (flags[i] & 1) != 0;
    lines_[i].dirty = (flags[i] & 2) != 0;
    if (lines_[i].valid) ++valid;
  }
  use_clock_ = r.u64("use_clock");
  valid_lines_.set(valid);
}

bool Cache::probe(Addr addr) const {
  std::size_t set = set_index(addr);
  Addr tag = tag_of(addr);
  const Line* base = &lines_[set * ways_];
  for (unsigned w = 0; w < ways_; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

void Cache::invalidate(Addr addr) {
  std::size_t set = set_index(addr);
  Addr tag = tag_of(addr);
  Line* base = &lines_[set * ways_];
  for (unsigned w = 0; w < ways_; ++w)
    if (base[w].valid && base[w].tag == tag) {
      base[w].valid = false;
      valid_lines_.dec();
    }
}

void Cache::invalidate_all() {
  for (Line& l : lines_) l.valid = false;
  valid_lines_.set(0);
}

}  // namespace vlt::mem
