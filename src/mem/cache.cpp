#include "mem/cache.hpp"

#include "common/log.hpp"

namespace vlt::mem {

Cache::Cache(std::size_t size_bytes, unsigned ways, unsigned line_bytes)
    : line_bytes_(line_bytes), ways_(ways) {
  VLT_CHECK(ways >= 1, "cache needs at least one way");
  std::size_t num_lines = size_bytes / line_bytes;
  VLT_CHECK(num_lines >= ways, "cache smaller than one set");
  num_sets_ = static_cast<unsigned>(num_lines / ways);
  lines_.resize(static_cast<std::size_t>(num_sets_) * ways_);
}

Cache::Result Cache::access(Addr addr, bool is_write) {
  Result res;
  std::size_t set = set_index(addr);
  Addr tag = tag_of(addr);
  Line* base = &lines_[set * ways_];
  ++use_clock_;

  Line* victim = &base[0];
  for (unsigned w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.last_use = use_clock_;
      line.dirty |= is_write;
      ++hits_;
      res.hit = true;
      return res;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.last_use < victim->last_use) {
      victim = &line;
    }
  }

  ++misses_;
  if (victim->valid && victim->dirty) {
    res.writeback = true;
    res.victim_addr = line_addr(victim->tag, set);
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = is_write;
  victim->last_use = use_clock_;
  return res;
}

bool Cache::probe(Addr addr) const {
  std::size_t set = set_index(addr);
  Addr tag = tag_of(addr);
  const Line* base = &lines_[set * ways_];
  for (unsigned w = 0; w < ways_; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

void Cache::invalidate(Addr addr) {
  std::size_t set = set_index(addr);
  Addr tag = tag_of(addr);
  Line* base = &lines_[set * ways_];
  for (unsigned w = 0; w < ways_; ++w)
    if (base[w].valid && base[w].tag == tag) base[w].valid = false;
}

void Cache::invalidate_all() {
  for (Line& l : lines_) l.valid = false;
}

}  // namespace vlt::mem
