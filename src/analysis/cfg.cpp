#include "analysis/cfg.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace vlt::analysis {

namespace {

/// Resolved control targets of the instruction at `pc`: the fallthrough
/// and/or branch target slot, with range checking against `size`.
struct Targets {
  bool fallthrough = false;
  bool has_branch = false;
  std::int64_t branch = 0;
  bool indirect = false;  // jr: statically unknown target
  bool terminates = false;  // halt
};

Targets targets_of(const isa::Instruction& inst, std::uint64_t pc) {
  Targets t;
  const std::int64_t next = static_cast<std::int64_t>(pc) + 1;
  switch (inst.op) {
    case isa::Opcode::kHalt:
      t.terminates = true;
      return t;
    case isa::Opcode::kJump:
    case isa::Opcode::kJal:
      // jal links pc+1 but transfers unconditionally.
      t.has_branch = true;
      t.branch = next + inst.imm;
      return t;
    case isa::Opcode::kJr:
      t.indirect = true;
      return t;
    case isa::Opcode::kBeq:
    case isa::Opcode::kBne:
    case isa::Opcode::kBlt:
    case isa::Opcode::kBge:
      t.fallthrough = true;
      t.has_branch = true;
      t.branch = next + inst.imm;
      return t;
    default:
      t.fallthrough = true;
      return t;
  }
}

}  // namespace

std::size_t Cfg::block_of(std::uint64_t pc) const {
  VLT_CHECK(pc < pc_to_block_.size(), "pc out of range in block_of");
  return pc_to_block_[pc];
}

bool Cfg::dominates(std::size_t a, std::size_t b) const {
  // Walk b's dominator chain to the entry; the chain is acyclic.
  while (true) {
    if (a == b) return true;
    if (b == 0) return false;
    std::size_t up = idom[b];
    if (up == b) return false;  // unreachable block: self-rooted
    b = up;
  }
}

bool Cfg::in_loop(const Edge& e, std::uint64_t pc) const {
  for (std::size_t i = 0; i < back_edges.size(); ++i) {
    if (back_edges[i].from != e.from || back_edges[i].to != e.to) continue;
    const std::vector<std::size_t>& blocks = loop_blocks_[i];
    return std::binary_search(blocks.begin(), blocks.end(), block_of(pc));
  }
  return false;
}

Cfg build_cfg(const isa::Program& prog) {
  VLT_CHECK(!prog.empty(), "cannot build a CFG for an empty program");
  const std::uint64_t n = prog.size();
  Cfg cfg;
  cfg.program = &prog;

  // --- leaders: entry, every branch target, every post-branch slot ---
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (std::uint64_t pc = 0; pc < n; ++pc) {
    Targets t = targets_of(prog.code()[pc], pc);
    if (t.has_branch) {
      if (t.branch >= 0 && t.branch < static_cast<std::int64_t>(n))
        leader[static_cast<std::uint64_t>(t.branch)] = true;
      else
        cfg.bad_branch_pcs.push_back(pc);
    }
    const bool ends_block =
        t.has_branch || t.terminates || t.indirect || !t.fallthrough;
    if (ends_block && pc + 1 < n) leader[pc + 1] = true;
  }

  // --- blocks and the pc -> block map ---
  cfg.pc_to_block_.assign(n, 0);
  for (std::uint64_t pc = 0; pc < n; ++pc) {
    if (leader[pc]) {
      BasicBlock b;
      b.begin = pc;
      cfg.blocks.push_back(b);
    }
    cfg.pc_to_block_[pc] = cfg.blocks.size() - 1;
    cfg.blocks.back().end = pc + 1;
  }

  // --- edges ---
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    BasicBlock& b = cfg.blocks[i];
    const std::uint64_t last = b.end - 1;
    Targets t = targets_of(prog.code()[last], last);
    auto add_edge = [&](std::uint64_t to_pc) {
      std::size_t to = cfg.pc_to_block_[to_pc];
      b.succs.push_back(to);
      cfg.blocks[to].preds.push_back(i);
    };
    if (t.fallthrough) {
      if (b.end < n)
        add_edge(b.end);
      else
        b.falls_off_end = true;
    }
    if (t.has_branch && t.branch >= 0 &&
        t.branch < static_cast<std::int64_t>(n))
      add_edge(static_cast<std::uint64_t>(t.branch));
    // An indirect jump (jr) may land at any linked return point: every
    // slot following a jal. The workloads never use jr, but a synthesized
    // program might — keep the graph conservatively connected.
    if (t.indirect) {
      for (std::uint64_t pc = 0; pc + 1 < n; ++pc)
        if (prog.code()[pc].op == isa::Opcode::kJal) add_edge(pc + 1);
    }
  }

  // --- dominators (iterative forward dataflow on reverse postorder) ---
  const std::size_t nb = cfg.blocks.size();
  std::vector<std::size_t> rpo;
  {
    std::vector<int> state(nb, 0);  // 0 unvisited, 1 in stack, 2 done
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    stack.emplace_back(0, 0);
    state[0] = 1;
    while (!stack.empty()) {
      auto& [blk, next] = stack.back();
      if (next < cfg.blocks[blk].succs.size()) {
        std::size_t s = cfg.blocks[blk].succs[next++];
        if (state[s] == 0) {
          state[s] = 1;
          stack.emplace_back(s, 0);
        }
      } else {
        state[blk] = 2;
        rpo.push_back(blk);
        stack.pop_back();
      }
    }
    std::reverse(rpo.begin(), rpo.end());
  }
  std::vector<std::size_t> rpo_index(nb, ~std::size_t{0});
  for (std::size_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  cfg.idom.assign(nb, ~std::size_t{0});
  cfg.idom[0] = 0;
  auto intersect = [&](std::size_t a, std::size_t b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = cfg.idom[a];
      while (rpo_index[b] > rpo_index[a]) b = cfg.idom[b];
    }
    return a;
  };
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t b : rpo) {
      if (b == 0) continue;
      std::size_t new_idom = ~std::size_t{0};
      for (std::size_t p : cfg.blocks[b].preds) {
        if (cfg.idom[p] == ~std::size_t{0}) continue;  // not yet processed
        new_idom = new_idom == ~std::size_t{0} ? p : intersect(p, new_idom);
      }
      if (new_idom != ~std::size_t{0} && cfg.idom[b] != new_idom) {
        cfg.idom[b] = new_idom;
        changed = true;
      }
    }
  }
  // Unreachable blocks self-root so dominates() terminates on them.
  for (std::size_t b = 0; b < nb; ++b)
    if (cfg.idom[b] == ~std::size_t{0}) cfg.idom[b] = b;

  // --- back edges and natural loops ---
  cfg.loop_depth.assign(nb, 0);
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t s : cfg.blocks[b].succs) {
      if (rpo_index[b] == ~std::size_t{0}) continue;  // unreachable
      if (!cfg.dominates(s, b)) continue;
      cfg.back_edges.push_back({b, s});
      // Natural loop of b -> s: s plus everything reaching b without
      // passing through s.
      std::vector<bool> in(nb, false);
      in[s] = true;
      std::vector<std::size_t> work;
      if (!in[b]) {
        in[b] = true;
        work.push_back(b);
      }
      while (!work.empty()) {
        std::size_t x = work.back();
        work.pop_back();
        for (std::size_t p : cfg.blocks[x].preds)
          if (!in[p]) {
            in[p] = true;
            work.push_back(p);
          }
      }
      std::vector<std::size_t> members;
      for (std::size_t x = 0; x < nb; ++x)
        if (in[x]) {
          members.push_back(x);
          ++cfg.loop_depth[x];
        }
      cfg.loop_blocks_.push_back(std::move(members));
    }
  }
  return cfg;
}

}  // namespace vlt::analysis
