// Generic forward dataflow engine over analysis::Cfg.
//
// A Domain supplies the abstract state and its operations:
//
//   struct Domain {
//     struct State { ... };
//     State boundary() const;                  // entry-block in-state
//     State top() const;                       // pre-join identity
//     void transfer(State& s, const isa::Instruction& inst,
//                   std::uint64_t pc) const;   // one instruction, in place
//     // Joins `from` into `into`; `back_edge` is true when the value
//     // flows along a loop back edge (domains use this to widen
//     // loop-varying facts instead of reporting divergence).
//     void join(State& into, const State& from, bool back_edge) const;
//     bool equal(const State& a, const State& b) const;
//   };
//
// solve() iterates a worklist in reverse-postorder-ish block order until
// the block in-states reach a fixed point, then returns them. Callers
// replay transfer() over a block's instructions to observe the state at
// any pc (see checks.cpp). Termination is the domain's responsibility:
// joins must be monotone on a finite-height lattice.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "analysis/cfg.hpp"

namespace vlt::analysis {

template <typename Domain>
struct DataflowResult {
  /// Fixed-point state at entry to each block (index = block id).
  /// Unreachable blocks keep the domain's top() value.
  std::vector<typename Domain::State> block_in;
};

template <typename Domain>
DataflowResult<Domain> solve(const Cfg& cfg, const Domain& dom) {
  const std::size_t nb = cfg.blocks.size();
  DataflowResult<Domain> res;
  res.block_in.assign(nb, dom.top());
  res.block_in[0] = dom.boundary();

  std::vector<bool> back(nb * nb, false);
  for (const Cfg::Edge& e : cfg.back_edges) back[e.from * nb + e.to] = true;

  std::deque<std::size_t> work;
  std::vector<bool> queued(nb, false);
  work.push_back(0);
  queued[0] = true;

  while (!work.empty()) {
    const std::size_t b = work.front();
    work.pop_front();
    queued[b] = false;

    typename Domain::State out = res.block_in[b];
    const BasicBlock& blk = cfg.blocks[b];
    for (std::uint64_t pc = blk.begin; pc < blk.end; ++pc)
      dom.transfer(out, cfg.program->code()[pc], pc);

    for (std::size_t s : blk.succs) {
      typename Domain::State merged = res.block_in[s];
      dom.join(merged, out, back[b * nb + s]);
      if (!dom.equal(merged, res.block_in[s])) {
        res.block_in[s] = std::move(merged);
        if (!queued[s]) {
          work.push_back(s);
          queued[s] = true;
        }
      }
    }
  }
  return res;
}

}  // namespace vlt::analysis
