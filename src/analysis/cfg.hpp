// Control-flow graph over vlt::isa::Program.
//
// Basic blocks are maximal straight-line runs of instruction slots; edges
// follow the branch semantics of the ISA (imm is a signed slot offset from
// pc+1). The graph also computes dominators, back edges, and natural-loop
// membership — the structural facts every dataflow check in this directory
// keys on (docs/LINT.md).
//
// Programs come out of ProgramBuilder with all labels resolved, so a
// malformed graph (branch target outside the text, execution falling off
// the end) is itself a lint finding; build_cfg() records such defects
// instead of throwing, and the structural check surfaces them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace vlt::analysis {

/// One basic block: instruction slots [begin, end) of the program.
struct BasicBlock {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;  // exclusive
  std::vector<std::size_t> succs;
  std::vector<std::size_t> preds;
  /// True when the block ends by running past the last instruction slot
  /// (no halt / jump / taken branch) — a structural defect.
  bool falls_off_end = false;
};

struct Cfg {
  const isa::Program* program = nullptr;
  std::vector<BasicBlock> blocks;  // blocks[0] is the entry block

  /// Immediate dominator per block (idom[0] == 0). Unreachable blocks
  /// dominate only themselves.
  std::vector<std::size_t> idom;

  /// Edges (from-block, to-block) where `to` dominates `from` — the back
  /// edges of natural loops.
  struct Edge {
    std::size_t from;
    std::size_t to;
  };
  std::vector<Edge> back_edges;

  /// loop_depth[b] > 0 iff block b belongs to at least one natural loop.
  std::vector<unsigned> loop_depth;

  /// PCs of branch instructions whose resolved target lies outside
  /// [0, program size) — structural defects kept out of the edge set.
  std::vector<std::uint64_t> bad_branch_pcs;

  std::size_t block_of(std::uint64_t pc) const;  // pc must be in range
  bool dominates(std::size_t a, std::size_t b) const;

  /// True when `pc` lies inside the natural loop of back edge `e`.
  bool in_loop(const Edge& e, std::uint64_t pc) const;

 private:
  friend Cfg build_cfg(const isa::Program& prog);
  std::vector<std::size_t> pc_to_block_;
  /// Per back edge, the sorted block ids of its natural loop.
  std::vector<std::vector<std::size_t>> loop_blocks_;
};

/// Builds the CFG, dominator tree, and loop structure for `prog`.
/// `prog` must be non-empty.
Cfg build_cfg(const isa::Program& prog);

}  // namespace vlt::analysis
