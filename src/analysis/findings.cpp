#include "analysis/findings.hpp"

namespace vlt::analysis {

const char* severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

Json Finding::to_json() const {
  Json j = Json::object();
  j.set("check", check);
  j.set("severity", severity_name(severity));
  j.set("workload", workload);
  j.set("phase", phase);
  if (thread >= 0) j.set("thread", thread);
  j.set("program", program);
  if (pc >= 0) j.set("pc", static_cast<std::int64_t>(pc));
  j.set("message", message);
  return j;
}

std::string Finding::to_string() const {
  std::string site = workload.empty() ? std::string("<isa>") : workload;
  if (!phase.empty()) site += "/" + phase;
  if (!program.empty()) site += "/" + program;
  if (pc >= 0) site += "@" + std::to_string(pc);
  return check + "(" + severity_name(severity) + ") " + site + ": " + message;
}

bool Suppression::parse(const std::string& text, Suppression& out) {
  std::size_t at = text.find('@');
  out.check = text.substr(0, at);
  out.workload = at == std::string::npos ? "" : text.substr(at + 1);
  return !out.check.empty();
}

bool Suppression::matches(const Finding& f) const {
  if (check != "*" && check != f.check) return false;
  return workload.empty() || workload == f.workload;
}

std::vector<Finding> apply_suppressions(std::vector<Finding> findings,
                                        const std::vector<Suppression>& sup,
                                        std::size_t* suppressed) {
  if (suppressed != nullptr) *suppressed = 0;
  if (sup.empty()) return findings;
  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& f : findings) {
    bool drop = false;
    for (const Suppression& s : sup) drop = drop || s.matches(f);
    if (drop) {
      if (suppressed != nullptr) ++*suppressed;
    } else {
      kept.push_back(std::move(f));
    }
  }
  return kept;
}

Json findings_to_json(const std::vector<Finding>& findings) {
  Json arr = Json::array();
  for (const Finding& f : findings) arr.push_back(f.to_json());
  Json j = Json::object();
  j.set("findings", std::move(arr));
  j.set("count", static_cast<std::uint64_t>(findings.size()));
  return j;
}

}  // namespace vlt::analysis
