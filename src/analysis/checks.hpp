// vltlint check suite: static analysis over phase-structured programs.
//
// analyze() runs every program-level check against one workload build (a
// machine::ParallelProgram) and returns findings; check_isa_tables() (in
// table_checks.cpp) covers the opcode-metadata closure absorbed from the
// old tools/isa_lint. docs/LINT.md documents each check, the finding JSON
// schema, and the suppression mechanism.
//
// Program-level checks (stable ids):
//
//   structure       CFG / phase-shape malformations: branch targets outside
//                   the text, execution falling off the end, serial phases
//                   with more than one program, empty programs, vector
//                   instructions in scalar-thread (lane/SU) phases
//   regfile         register indices outside the architectural files, and
//                   writes to s0 (conventional zero, kernel_util.hpp)
//   def-before-use  scalar / vector / mask registers read before any write
//                   on some path (hardware zeroes them, so this simulates —
//                   but almost always means a missing initialization)
//   vl-discipline   vector instructions reachable with VL never set; strip-
//                   mine loops that decrement their trip counter by a VL
//                   set outside the loop (stale VL overruns the tail); and
//                   straight-line setvl of a known constant above MVL whose
//                   silent clamp the program never re-checks
//   barrier         barriers or halts reachable with a path-dependent
//                   barrier count (barrier under divergent control flow),
//                   and threadlets of one phase whose provable barrier
//                   counts disagree (unbalanced barrier: deadlock)
//   race            cross-threadlet write-write / read-write overlap: a
//                   stride/interval analysis of effective addresses flags
//                   accesses from different threadlets of one phase that
//                   provably touch the same bytes in the same barrier epoch
//
// The analyses are conservative in the quiet direction: a fact that cannot
// be proven (loop-varying address, data-dependent barrier count) produces
// no finding. The acceptance bar is zero findings on well-formed programs,
// so every reported finding is actionable.
#pragma once

#include <string>
#include <vector>

#include "analysis/findings.hpp"
#include "common/types.hpp"
#include "machine/phase.hpp"

namespace vlt::analysis {

struct AnalysisOptions {
  /// Architectural MVL of the undivided vector unit. Vector-thread phases
  /// analyze each threadlet against mvl / nthreads, mirroring
  /// VectorUnit::max_vl_per_ctx().
  unsigned machine_mvl = kMaxVectorLength;
  /// When non-empty, only checks named here run (ids listed above).
  std::vector<std::string> only;
};

/// Name + one-line description of one check, for `vltlint --list-checks`.
struct CheckInfo {
  const char* name;
  const char* description;
};

/// Every check id the analyzer knows, program-level first, then the
/// opcode-metadata closure checks.
std::vector<CheckInfo> check_infos();

/// Runs all (or opts.only) program-level checks over one workload build.
std::vector<Finding> analyze(const machine::ParallelProgram& prog,
                             const AnalysisOptions& opts = {});

/// Opcode-metadata closure: table completeness/consistency ("isa-table"),
/// disassembler coverage ("isa-disasm"), and executor semantics coverage
/// ("isa-exec"). Absorbs tools/isa_lint, which is now a thin wrapper.
std::vector<Finding> check_isa_tables();

}  // namespace vlt::analysis
