#include "analysis/checks.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <set>

#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "isa/disasm.hpp"
#include "isa/rvv/rvv.hpp"

namespace vlt::analysis {

namespace {

using isa::Instruction;
using isa::Opcode;

// ---------------------------------------------------------------------------
// Abstract domain: constant propagation + initialization + VL + barriers.
// ---------------------------------------------------------------------------

/// Abstract scalar value: a known 64-bit constant or top.
struct Value {
  bool known = false;
  std::int64_t v = 0;

  friend bool operator==(const Value& a, const Value& b) {
    return a.known == b.known && (!a.known || a.v == b.v);
  }
};
Value vconst(std::int64_t v) { return {true, v}; }
Value vtop() { return {}; }
Value vjoin(const Value& a, const Value& b) {
  return (a.known && b.known && a.v == b.v) ? a : vtop();
}

/// Three-state "has been written" fact.
enum class Tri : std::uint8_t { kNo, kMaybe, kYes };
Tri tjoin(Tri a, Tri b) { return a == b ? a : Tri::kMaybe; }

/// Barriers executed since threadlet entry, along the paths reaching a
/// point. kUnknown: loop-varying (benign). kConflict: two acyclic paths
/// disagree — a barrier-divergence defect.
struct BarCount {
  enum Kind : std::uint8_t { kKnown, kUnknown, kConflict } kind = kKnown;
  std::uint32_t n = 0;

  friend bool operator==(const BarCount& a, const BarCount& b) {
    return a.kind == b.kind && (a.kind != kKnown || a.n == b.n);
  }
};
BarCount bjoin(const BarCount& a, const BarCount& b, bool back_edge) {
  if (a.kind == BarCount::kConflict || b.kind == BarCount::kConflict)
    return {BarCount::kConflict, 0};
  if (a.kind == BarCount::kKnown && b.kind == BarCount::kKnown && a.n == b.n)
    return a;
  // Differing counts: along a back edge this is an ordinary barrier-in-loop
  // (count grows per iteration); on a forward join it means divergent
  // control flow executed different numbers of barriers.
  if (a.kind == BarCount::kUnknown || b.kind == BarCount::kUnknown ||
      back_edge)
    return {BarCount::kUnknown, 0};
  return {BarCount::kConflict, 0};
}

struct RegState {
  Tri init = Tri::kNo;
  Value val = vconst(0);  // hardware zeroes the file at phase start
  /// PC of the setvl/setvlmax whose result this register still holds
  /// (propagated through mov), or -1. Joins of distinct sites go to -2.
  std::int32_t vl_def = -1;

  friend bool operator==(const RegState& a, const RegState& b) {
    return a.init == b.init && a.val == b.val && a.vl_def == b.vl_def;
  }
};

struct AbsState {
  bool reachable = false;
  std::array<RegState, kNumScalarRegs> sreg;
  std::array<Tri, kNumVectorRegs> vreg{};
  Tri mask = Tri::kNo;
  Tri vl_set = Tri::kNo;
  Value vl_val = vconst(0);
  BarCount bar;

  friend bool operator==(const AbsState& a, const AbsState& b) {
    return a.reachable == b.reachable && a.sreg == b.sreg &&
           a.vreg == b.vreg && a.mask == b.mask && a.vl_set == b.vl_set &&
           a.vl_val == b.vl_val && a.bar == b.bar;
  }
};

class AbsDomain {
 public:
  using State = AbsState;

  AbsDomain(unsigned tid, unsigned nthreads, unsigned mvl)
      : tid_(tid), nthreads_(nthreads), mvl_(mvl) {}

  State top() const { return State{}; }

  State boundary() const {
    State s;
    s.reachable = true;
    // s0 is the conventional zero register (kernel_util.hpp): reading it
    // without a write is idiomatic, so it enters pre-initialized.
    s.sreg[0].init = Tri::kYes;
    return s;
  }

  void transfer(State& s, const Instruction& inst, std::uint64_t pc) const {
    if (!s.reachable) return;
    const auto sval = [&](RegIdx r) {
      return r < kNumScalarRegs ? s.sreg[r].val : vtop();
    };
    const auto set_scalar = [&](RegIdx r, Value v,
                                std::int32_t vl_def = -1) {
      if (r >= kNumScalarRegs) return;
      s.sreg[r].init = Tri::kYes;
      s.sreg[r].val = v;
      s.sreg[r].vl_def = vl_def;
    };

    const Value a = sval(inst.rs1);
    const Value b = sval(inst.rs2);
    const std::int64_t imm = inst.imm;
    const auto fold2 = [&](auto op) {
      return (a.known && b.known) ? vconst(op(a.v, b.v)) : vtop();
    };
    const auto fold1i = [&](auto op) {
      return a.known ? vconst(op(a.v, imm)) : vtop();
    };

    switch (inst.op) {
      case Opcode::kLi:
        set_scalar(inst.rd, vconst(imm));
        return;
      case Opcode::kLiHi: {
        const Value old = sval(inst.rd);
        set_scalar(inst.rd,
                   old.known
                       ? vconst(static_cast<std::int64_t>(
                             static_cast<std::uint64_t>(old.v) |
                             (static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(inst.imm))
                              << 32)))
                       : vtop());
        return;
      }
      case Opcode::kMov:
        set_scalar(inst.rd, a,
                   inst.rs1 < kNumScalarRegs ? s.sreg[inst.rs1].vl_def : -2);
        return;
      case Opcode::kAdd:
        set_scalar(inst.rd, fold2([](std::int64_t x, std::int64_t y) {
          return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) +
                                           static_cast<std::uint64_t>(y));
        }));
        return;
      case Opcode::kAddi:
        set_scalar(inst.rd, fold1i([](std::int64_t x, std::int64_t i) {
          return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) +
                                           static_cast<std::uint64_t>(i));
        }));
        return;
      case Opcode::kSub:
        set_scalar(inst.rd, inst.rs1 == inst.rs2
                                ? vconst(0)
                                : fold2([](std::int64_t x, std::int64_t y) {
                                    return static_cast<std::int64_t>(
                                        static_cast<std::uint64_t>(x) -
                                        static_cast<std::uint64_t>(y));
                                  }));
        return;
      case Opcode::kMul:
        set_scalar(inst.rd, fold2([](std::int64_t x, std::int64_t y) {
          return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) *
                                           static_cast<std::uint64_t>(y));
        }));
        return;
      case Opcode::kDiv:
        set_scalar(inst.rd, (a.known && b.known && b.v != 0 &&
                             !(a.v == INT64_MIN && b.v == -1))
                                ? vconst(a.v / b.v)
                                : vtop());
        return;
      case Opcode::kRem:
        set_scalar(inst.rd, (a.known && b.known && b.v != 0 &&
                             !(a.v == INT64_MIN && b.v == -1))
                                ? vconst(a.v % b.v)
                                : vtop());
        return;
      case Opcode::kAnd:
        set_scalar(inst.rd, fold2([](std::int64_t x, std::int64_t y) {
          return x & y;
        }));
        return;
      case Opcode::kAndi:
        set_scalar(inst.rd, fold1i([](std::int64_t x, std::int64_t i) {
          return x & i;
        }));
        return;
      case Opcode::kOr:
        set_scalar(inst.rd, fold2([](std::int64_t x, std::int64_t y) {
          return x | y;
        }));
        return;
      case Opcode::kOri:
        set_scalar(inst.rd, fold1i([](std::int64_t x, std::int64_t i) {
          return x | i;
        }));
        return;
      case Opcode::kXor:
        // xor r, a, a is the idiomatic zeroing sequence: constant 0 even
        // when a's value is unknown.
        set_scalar(inst.rd, inst.rs1 == inst.rs2
                                ? vconst(0)
                                : fold2([](std::int64_t x, std::int64_t y) {
                                    return x ^ y;
                                  }));
        return;
      case Opcode::kXori:
        set_scalar(inst.rd, fold1i([](std::int64_t x, std::int64_t i) {
          return x ^ i;
        }));
        return;
      case Opcode::kSll:
        set_scalar(inst.rd, fold2([](std::int64_t x, std::int64_t y) {
          return static_cast<std::int64_t>(static_cast<std::uint64_t>(x)
                                           << (y & 63));
        }));
        return;
      case Opcode::kSlli:
        set_scalar(inst.rd, fold1i([](std::int64_t x, std::int64_t i) {
          return static_cast<std::int64_t>(static_cast<std::uint64_t>(x)
                                           << (i & 63));
        }));
        return;
      case Opcode::kSrl:
        set_scalar(inst.rd, fold2([](std::int64_t x, std::int64_t y) {
          return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) >>
                                           (y & 63));
        }));
        return;
      case Opcode::kSrli:
        set_scalar(inst.rd, fold1i([](std::int64_t x, std::int64_t i) {
          return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) >>
                                           (i & 63));
        }));
        return;
      case Opcode::kSra:
        set_scalar(inst.rd, fold2([](std::int64_t x, std::int64_t y) {
          return x >> (y & 63);
        }));
        return;
      case Opcode::kSlt:
        set_scalar(inst.rd, fold2([](std::int64_t x, std::int64_t y) {
          return std::int64_t{x < y};
        }));
        return;
      case Opcode::kSlti:
        set_scalar(inst.rd, fold1i([](std::int64_t x, std::int64_t i) {
          return std::int64_t{x < i};
        }));
        return;
      case Opcode::kSeq:
        set_scalar(inst.rd, fold2([](std::int64_t x, std::int64_t y) {
          return std::int64_t{x == y};
        }));
        return;
      case Opcode::kTid:
        set_scalar(inst.rd, vconst(tid_));
        return;
      case Opcode::kNthreads:
        set_scalar(inst.rd, vconst(nthreads_));
        return;
      case Opcode::kJal:
        set_scalar(inst.rd, vconst(static_cast<std::int64_t>(pc) + 1));
        return;
      case Opcode::kBarrier:
        if (s.bar.kind == BarCount::kKnown) ++s.bar.n;
        return;
      case Opcode::kSetvl: {
        Value vl = vtop();
        if (a.known)
          vl = vconst(a.v <= 0 ? 0
                                : std::min<std::int64_t>(a.v, mvl_));
        s.vl_set = Tri::kYes;
        s.vl_val = vl;
        set_scalar(inst.rd, vl, static_cast<std::int32_t>(pc));
        return;
      }
      case Opcode::kSetvlMax:
        s.vl_set = Tri::kYes;
        s.vl_val = vconst(mvl_);
        set_scalar(inst.rd, s.vl_val, static_cast<std::int32_t>(pc));
        return;
      case Opcode::kVsetvli: {
        // RVV 1.0: VL <- min(AVL, VLMAX(vtype)). AVL comes from rs1 when
        // rs1 != x0, is VLMAX itself when rs1 == x0 and rd != x0, and
        // keeps the current VL when both are x0. An unsupported vtype is
        // vill: VL becomes 0 (and rd, when written, 0).
        const std::int64_t vm = static_cast<std::int64_t>(
            isa::rvv::vlmax(mvl_, static_cast<std::uint32_t>(inst.imm)));
        Value vl = vtop();
        if (vm == 0) {
          vl = vconst(0);
        } else if (inst.rs1 != 0) {
          // AVL is unsigned: a known negative register value is a huge
          // AVL, which the hardware clamps to VLMAX.
          if (a.known) vl = vconst(a.v < 0 ? vm : std::min(a.v, vm));
        } else if (inst.rd != 0) {
          vl = vconst(vm);
        } else if (s.vl_val.known && s.vl_val.v >= 0) {
          vl = vconst(std::min(s.vl_val.v, vm));  // keep vl, re-clamped
        }
        s.vl_set = Tri::kYes;
        s.vl_val = vl;
        if (inst.rd != 0)
          set_scalar(inst.rd, vl, static_cast<std::int32_t>(pc));
        return;
      }
      default:
        break;
    }

    // Generic scalar destination (fp ops, loads, reductions): value top.
    RegIdx sd;
    if (isa::scalar_dst_reg(inst, sd)) set_scalar(sd, vtop());
    RegIdx vd;
    if (isa::vector_dst_reg(inst, vd) && vd < kNumVectorRegs)
      s.vreg[vd] = Tri::kYes;
    if (isa::writes_mask(inst)) s.mask = Tri::kYes;
  }

  void join(State& into, const State& from, bool back_edge) const {
    if (!from.reachable) return;
    if (!into.reachable) {
      into = from;
      return;
    }
    for (unsigned r = 0; r < kNumScalarRegs; ++r) {
      RegState& d = into.sreg[r];
      const RegState& o = from.sreg[r];
      d.init = tjoin(d.init, o.init);
      d.val = vjoin(d.val, o.val);
      if (d.vl_def != o.vl_def) d.vl_def = -2;
    }
    for (unsigned r = 0; r < kNumVectorRegs; ++r)
      into.vreg[r] = tjoin(into.vreg[r], from.vreg[r]);
    into.mask = tjoin(into.mask, from.mask);
    into.vl_set = tjoin(into.vl_set, from.vl_set);
    into.vl_val = vjoin(into.vl_val, from.vl_val);
    into.bar = bjoin(into.bar, from.bar, back_edge);
  }

  bool equal(const State& a, const State& b) const { return a == b; }

 private:
  unsigned tid_;
  unsigned nthreads_;
  unsigned mvl_;
};

// ---------------------------------------------------------------------------
// Memory-access footprints for the race check.
// ---------------------------------------------------------------------------

/// One static access site with a resolved footprint: `count` elements of
/// 8 bytes starting at `lo`, consecutive starts `stride` bytes apart
/// (stride == 8: one contiguous run). exact == false: unknown footprint,
/// excluded from race reporting.
struct Access {
  std::uint64_t pc = 0;
  bool write = false;
  bool exact = false;
  Addr lo = 0;
  std::uint64_t stride = 8;
  std::uint64_t count = 0;
  BarCount epoch;

  Addr hi() const {  // exclusive upper byte bound
    if (count == 0) return lo;
    return lo + stride * (count - 1) + 8;
  }
};

bool footprints_overlap(const Access& a, const Access& b) {
  if (a.count == 0 || b.count == 0) return false;
  if (a.hi() <= b.lo || b.hi() <= a.lo) return false;
  if (a.stride <= 8 && b.stride <= 8) return true;  // two contiguous runs
  // At least one sparse strided set; VL caps counts at 64 elements, so
  // direct enumeration is cheap and exact.
  for (std::uint64_t i = 0; i < a.count; ++i) {
    const Addr alo = a.lo + a.stride * i;
    for (std::uint64_t j = 0; j < b.count; ++j) {
      const Addr blo = b.lo + b.stride * j;
      if (alo < blo + 8 && blo < alo + 8) return true;
    }
  }
  return false;
}

/// Everything the cross-threadlet checks need from one threadlet.
struct ThreadSummary {
  std::string program;
  std::vector<Access> accesses;
  /// Join of the barrier counts at every reachable halt.
  BarCount exit_bar;
  bool has_reachable_halt = false;
};

// ---------------------------------------------------------------------------
// Per-threadlet analysis.
// ---------------------------------------------------------------------------

struct CheckFilter {
  const AnalysisOptions* opts;
  bool on(const char* name) const {
    if (opts->only.empty()) return true;
    return std::find(opts->only.begin(), opts->only.end(), name) !=
           opts->only.end();
  }
};

class ProgramAnalysis {
 public:
  ProgramAnalysis(const machine::ParallelProgram& par,
                  const machine::Phase& phase, unsigned tid,
                  const AnalysisOptions& opts, unsigned phase_mvl,
                  std::vector<Finding>& out)
      : par_(par),
        phase_(phase),
        prog_(phase.programs[tid]),
        tid_(tid),
        opts_(opts),
        filter_{&opts},
        mvl_(phase_mvl),
        out_(out) {}

  ThreadSummary run();

 private:
  Finding finding(const char* check, Severity sev, std::int64_t pc,
                  std::string msg) const {
    Finding f;
    f.check = check;
    f.severity = sev;
    f.workload = par_.name;
    f.phase = phase_.label;
    f.thread = static_cast<int>(tid_);
    f.program = prog_.name();
    f.pc = pc;
    f.message = std::move(msg);
    return f;
  }
  void emit(const char* check, Severity sev, std::int64_t pc,
            std::string msg) {
    if (filter_.on(check)) out_.push_back(finding(check, sev, pc, std::move(msg)));
  }

  void structural_checks(const Cfg& cfg);
  void visit(const AbsState& st, const Instruction& inst, std::uint64_t pc,
             bool scalar_phase, ThreadSummary& sum);
  Access footprint_of(const AbsState& st, const Instruction& inst,
                      std::uint64_t pc) const;
  void summarize_strip_mine_loops(
      const Cfg& cfg, const DataflowResult<AbsDomain>& fp,
      const AbsDomain& dom, ThreadSummary& sum);

  const machine::ParallelProgram& par_;
  const machine::Phase& phase_;
  const isa::Program& prog_;
  unsigned tid_;
  const AnalysisOptions& opts_;
  CheckFilter filter_;
  unsigned mvl_;
  std::vector<Finding>& out_;
  /// Set by visit() when a setvl requests a known constant above MVL; the
  /// replay loop turns it into a finding only outside loops (strip-mines
  /// legitimately request the full remaining count and rely on the clamp).
  bool pending_setvl_clamp_ = false;
};

void ProgramAnalysis::structural_checks(const Cfg& cfg) {
  for (std::uint64_t pc : cfg.bad_branch_pcs)
    emit("structure", Severity::kError, static_cast<std::int64_t>(pc),
         "branch target outside the program: " +
             isa::disassemble(prog_.code()[pc]));
  std::vector<bool> reachable(cfg.blocks.size(), false);
  {
    std::vector<std::size_t> work{0};
    reachable[0] = true;
    while (!work.empty()) {
      std::size_t b = work.back();
      work.pop_back();
      for (std::size_t s : cfg.blocks[b].succs)
        if (!reachable[s]) {
          reachable[s] = true;
          work.push_back(s);
        }
    }
  }
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
    if (reachable[b] && cfg.blocks[b].falls_off_end)
      emit("structure", Severity::kError,
           static_cast<std::int64_t>(cfg.blocks[b].end - 1),
           "execution can run past the last instruction slot (missing "
           "halt or jump)");
}

Access ProgramAnalysis::footprint_of(const AbsState& st,
                                     const Instruction& inst,
                                     std::uint64_t pc) const {
  Access acc;
  acc.pc = pc;
  acc.write = isa::is_store(inst.op);
  acc.epoch = st.bar;
  const auto val = [&](RegIdx r) {
    return r < kNumScalarRegs ? st.sreg[r].val : vtop();
  };
  const Value base = val(inst.rs1);
  switch (inst.op) {
    case Opcode::kLoad:
    case Opcode::kStore:
      if (base.known) {
        acc.exact = true;
        acc.lo = static_cast<Addr>(base.v + inst.imm);
        acc.stride = 8;
        acc.count = 1;
      }
      return acc;
    case Opcode::kVload:
    case Opcode::kVstore:
    case Opcode::kVle:
    case Opcode::kVse:
      if (base.known && st.vl_val.known && st.vl_val.v >= 0) {
        acc.exact = true;
        acc.lo = static_cast<Addr>(base.v + inst.imm);
        acc.stride = 8;
        acc.count = static_cast<std::uint64_t>(st.vl_val.v);
      }
      return acc;
    case Opcode::kVloads:
    case Opcode::kVstores: {
      const Value stride = val(inst.rs2);
      if (base.known && stride.known && stride.v > 0 && st.vl_val.known &&
          st.vl_val.v >= 0) {
        acc.exact = true;
        acc.lo = static_cast<Addr>(base.v);
        acc.stride = static_cast<std::uint64_t>(stride.v);
        acc.count = static_cast<std::uint64_t>(st.vl_val.v);
      }
      return acc;
    }
    default:
      // Gather/scatter offsets are vector data: statically unknown.
      return acc;
  }
}

void ProgramAnalysis::visit(const AbsState& st, const Instruction& inst,
                            std::uint64_t pc, bool scalar_phase,
                            ThreadSummary& sum) {
  if (!st.reachable) return;
  const std::int64_t ipc = static_cast<std::int64_t>(pc);
  const std::string dis = isa::disassemble(inst);

  // --- regfile: bounds and the s0 convention ---
  const isa::RegList sreads = isa::scalar_src_regs(inst);
  for (unsigned i = 0; i < sreads.n; ++i)
    if (sreads.r[i] >= kNumScalarRegs)
      emit("regfile", Severity::kError, ipc,
           "scalar source s" + std::to_string(sreads.r[i]) +
               " outside the " + std::to_string(kNumScalarRegs) +
               "-register file: " + dis);
  const isa::RegList vreads = isa::vector_src_regs(inst);
  for (unsigned i = 0; i < vreads.n; ++i)
    if (vreads.r[i] >= kNumVectorRegs)
      emit("regfile", Severity::kError, ipc,
           "vector source v" + std::to_string(vreads.r[i]) +
               " outside the " + std::to_string(kNumVectorRegs) +
               "-register file: " + dis);
  RegIdx sd;
  if (isa::scalar_dst_reg(inst, sd)) {
    if (sd >= kNumScalarRegs)
      emit("regfile", Severity::kError, ipc,
           "scalar destination s" + std::to_string(sd) +
               " outside the register file: " + dis);
    else if (sd == 0)
      emit("regfile", Severity::kError, ipc,
           "writes s0, the conventional zero register: " + dis);
  }
  RegIdx vd;
  if (isa::vector_dst_reg(inst, vd) && vd >= kNumVectorRegs)
    emit("regfile", Severity::kError, ipc,
         "vector destination v" + std::to_string(vd) +
             " outside the register file: " + dis);

  // --- def-before-use ---
  // xor/sub r, a, a zero a register regardless of its value: a def, not a
  // use. rs1 == rs2 also dedupes the read list (one finding per register).
  const bool zeroing_idiom =
      (inst.op == Opcode::kXor || inst.op == Opcode::kSub) &&
      inst.rs1 == inst.rs2;
  for (unsigned i = 0; i < sreads.n && !zeroing_idiom; ++i) {
    const RegIdx r = sreads.r[i];
    if (r == 0 || r >= kNumScalarRegs) continue;
    bool dup = false;
    for (unsigned j = 0; j < i; ++j) dup = dup || sreads.r[j] == r;
    if (dup) continue;
    if (st.sreg[r].init == Tri::kNo)
      emit("def-before-use", Severity::kError, ipc,
           "s" + std::to_string(r) + " read before any write: " + dis);
    else if (st.sreg[r].init == Tri::kMaybe)
      emit("def-before-use", Severity::kWarning, ipc,
           "s" + std::to_string(r) +
               " read before a write on some paths: " + dis);
  }
  for (unsigned i = 0; i < vreads.n; ++i) {
    const RegIdx r = vreads.r[i];
    if (r >= kNumVectorRegs) continue;
    bool dup = false;
    for (unsigned j = 0; j < i; ++j) dup = dup || vreads.r[j] == r;
    if (dup) continue;
    if (st.vreg[r] == Tri::kNo)
      emit("def-before-use", Severity::kError, ipc,
           "v" + std::to_string(r) + " read before any write: " + dis);
    else if (st.vreg[r] == Tri::kMaybe)
      emit("def-before-use", Severity::kWarning, ipc,
           "v" + std::to_string(r) +
               " read before a write on some paths: " + dis);
  }
  if (isa::reads_mask(inst)) {
    if (st.mask == Tri::kNo)
      emit("def-before-use", Severity::kError, ipc,
           "mask read before any compare wrote it: " + dis);
    else if (st.mask == Tri::kMaybe)
      emit("def-before-use", Severity::kWarning, ipc,
           "mask read before a compare on some paths: " + dis);
  }

  // --- vl-discipline ---
  if (isa::is_vector(inst.op) && !scalar_phase) {
    if (st.vl_set == Tri::kNo)
      emit("vl-discipline", Severity::kError, ipc,
           "vector instruction before any setvl (VL is 0): " + dis);
    else if (st.vl_set == Tri::kMaybe)
      emit("vl-discipline", Severity::kWarning, ipc,
           "vector instruction with VL unset on some paths: " + dis);
  }
  if (inst.op == Opcode::kSetvl && inst.rs1 < kNumScalarRegs) {
    const Value req = st.sreg[inst.rs1].val;
    if (req.known && req.v > static_cast<std::int64_t>(mvl_))
      // Reported by the caller only outside loops (strip-mines legitimately
      // request the full remaining count); see run().
      pending_setvl_clamp_ = true;
  }
  if (inst.op == Opcode::kVsetvli && inst.rs1 != 0 &&
      inst.rs1 < kNumScalarRegs) {
    // Same silent-clamp heuristic under RVV semantics: the request clamps
    // to VLMAX(vtype), not the raw partition MVL. The rs1 == x0 form is
    // exempt — requesting VLMAX is the architectural idiom, not a bug.
    const std::int64_t vm = static_cast<std::int64_t>(
        isa::rvv::vlmax(mvl_, static_cast<std::uint32_t>(inst.imm)));
    const Value req = st.sreg[inst.rs1].val;
    if (vm > 0 && req.known && req.v > vm) pending_setvl_clamp_ = true;
  }

  // --- barrier divergence ---
  if ((inst.op == Opcode::kBarrier || inst.op == Opcode::kHalt) &&
      st.bar.kind == BarCount::kConflict)
    emit("barrier", Severity::kError, ipc,
         std::string(inst.op == Opcode::kBarrier ? "barrier" : "halt") +
             " reached with a path-dependent barrier count (barrier under "
             "divergent control flow)");
  if (inst.op == Opcode::kHalt) {
    if (!sum.has_reachable_halt) {
      sum.exit_bar = st.bar;
      sum.has_reachable_halt = true;
    } else {
      sum.exit_bar = bjoin(sum.exit_bar, st.bar, /*back_edge=*/false);
    }
  }

  // --- record memory accesses for the race check ---
  if (isa::is_mem(inst.op)) sum.accesses.push_back(footprint_of(st, inst, pc));
}

// Recognizes kernel_util.hpp-style strip-mine loops and recovers exact
// whole-loop footprints for their unit-stride accesses:
//
//   loop: beq C, rZ, done        (loop header)
//         setvl V, C             (the only setvl in the loop)
//         ... vload/vstore via P ...
//         sub C, C, V
//         slli T, V, 3
//         add P, P, T            (per bumped pointer)
//         jump loop
//
// With the counter's and pointers' loop-entry values known, an in-loop
// unit-stride access through bumped pointer P covers exactly
// [P0+off, P0+off + 8*C0). The pass also reports the stale-VL defect: a
// `sub C, C, V` whose V was set by a setvl *outside* the loop.
void ProgramAnalysis::summarize_strip_mine_loops(
    const Cfg& cfg, const DataflowResult<AbsDomain>& fp, const AbsDomain& dom,
    ThreadSummary& sum) {
  for (const Cfg::Edge& edge : cfg.back_edges) {
    // Gather the loop's instructions.
    std::vector<std::uint64_t> pcs;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      if (!cfg.in_loop(edge, cfg.blocks[b].begin)) continue;
      for (std::uint64_t pc = cfg.blocks[b].begin; pc < cfg.blocks[b].end;
           ++pc)
        pcs.push_back(pc);
    }
    const auto in_loop_pc = [&](std::int64_t pc) {
      return pc >= 0 && cfg.in_loop(edge, static_cast<std::uint64_t>(pc));
    };

    // Per-pc states inside the loop (fixed-point replay).
    std::map<std::uint64_t, AbsState> at;
    bool has_vector = false;
    bool has_barrier = false;
    std::vector<std::uint64_t> setvl_pcs;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      if (!cfg.in_loop(edge, cfg.blocks[b].begin)) continue;
      AbsState st = fp.block_in[b];
      for (std::uint64_t pc = cfg.blocks[b].begin; pc < cfg.blocks[b].end;
           ++pc) {
        at.emplace(pc, st);
        const Instruction& inst = prog_.code()[pc];
        if (isa::is_vector(inst.op)) has_vector = true;
        if (inst.op == Opcode::kBarrier) has_barrier = true;
        if (inst.op == Opcode::kSetvl || inst.op == Opcode::kSetvlMax ||
            inst.op == Opcode::kVsetvli)
          setvl_pcs.push_back(pc);
        dom.transfer(st, inst, pc);
      }
    }

    // Stale-VL: the strip-mine decrement uses a VL set outside the loop.
    std::int64_t counter = -1;  // register decremented by the VL
    std::uint64_t setvl_pc = 0;
    bool pattern = false;
    for (std::uint64_t pc : pcs) {
      const Instruction& inst = prog_.code()[pc];
      if (inst.op != Opcode::kSub || inst.rd != inst.rs1 ||
          inst.rs2 >= kNumScalarRegs)
        continue;
      const AbsState& st = at.at(pc);
      if (!st.reachable) continue;
      const std::int32_t def = st.sreg[inst.rs2].vl_def;
      if (def < 0) continue;
      if (!in_loop_pc(def)) {
        if (has_vector)
          emit("vl-discipline", Severity::kError,
               static_cast<std::int64_t>(pc),
               "strip-mine loop decrements its counter by a VL set outside "
               "the loop (stale VL: the tail iteration overruns): " +
                   isa::disassemble(inst));
        continue;
      }
      // The in-loop set-VL may be either frontend's clamping form: VLT
      // setvl or RVV vsetvli (whose AVL is the same counter; its clamp to
      // VLMAX plays MAXVL's role).
      const Instruction& sv = prog_.code()[setvl_pcs.empty() ? 0
                                                             : setvl_pcs[0]];
      if (setvl_pcs.size() == 1 && static_cast<std::uint64_t>(def) ==
                                        setvl_pcs[0] &&
          (sv.op == Opcode::kSetvl || sv.op == Opcode::kVsetvli) &&
          sv.rs1 == inst.rd) {
        pattern = true;
        counter = inst.rd;
        setvl_pc = setvl_pcs[0];
      }
    }
    if (!pattern || has_barrier) continue;

    // Loop-entry values: join the out-states of the header's forward
    // (non-back-edge) predecessors.
    const std::size_t header = edge.to;
    AbsState entry;
    for (std::size_t p : cfg.blocks[header].preds) {
      bool is_back = false;
      for (const Cfg::Edge& be : cfg.back_edges)
        is_back = is_back || (be.from == p && be.to == header);
      if (is_back) continue;
      AbsState st = fp.block_in[p];
      for (std::uint64_t pc = cfg.blocks[p].begin; pc < cfg.blocks[p].end;
           ++pc)
        dom.transfer(st, prog_.code()[pc], pc);
      dom.join(entry, st, /*back_edge=*/false);
    }
    if (!entry.reachable) continue;
    const Value c0 = entry.sreg[counter].val;
    if (!c0.known || c0.v < 0 || entry.bar.kind != BarCount::kKnown) continue;

    // Bumped pointers: add P, P, T where T = slli T', V, 3 with V holding
    // the in-loop setvl result. Any other in-loop write to P disqualifies.
    std::set<RegIdx> bumped;
    std::set<RegIdx> vl_shifted;  // registers holding 8*VL inside the loop
    for (std::uint64_t pc : pcs) {
      const Instruction& inst = prog_.code()[pc];
      if (inst.op == Opcode::kSlli && inst.imm == 3 &&
          inst.rs1 < kNumScalarRegs) {
        const AbsState& st = at.at(pc);
        if (st.reachable &&
            st.sreg[inst.rs1].vl_def ==
                static_cast<std::int32_t>(setvl_pc))
          vl_shifted.insert(inst.rd);
      }
      if (inst.op == Opcode::kAdd && inst.rd == inst.rs1 &&
          vl_shifted.count(inst.rs2) > 0)
        bumped.insert(inst.rd);
    }
    for (std::uint64_t pc : pcs) {
      const Instruction& inst = prog_.code()[pc];
      RegIdx sd;
      if (!isa::scalar_dst_reg(inst, sd)) continue;
      if (bumped.count(sd) == 0) continue;
      const bool is_bump = inst.op == Opcode::kAdd && inst.rd == inst.rs1 &&
                           vl_shifted.count(inst.rs2) > 0;
      if (!is_bump) bumped.erase(sd);
    }

    // Upgrade in-loop unit-stride accesses through bumped pointers with
    // known entry addresses to exact whole-loop footprints.
    for (Access& acc : sum.accesses) {
      if (!in_loop_pc(static_cast<std::int64_t>(acc.pc)) || acc.exact)
        continue;
      const Instruction& inst = prog_.code()[acc.pc];
      if (inst.op != Opcode::kVload && inst.op != Opcode::kVstore &&
          inst.op != Opcode::kVle && inst.op != Opcode::kVse)
        continue;
      if (bumped.count(inst.rs1) == 0) continue;
      const Value p0 = entry.sreg[inst.rs1].val;
      if (!p0.known) continue;
      acc.exact = true;
      acc.lo = static_cast<Addr>(p0.v + inst.imm);
      acc.stride = 8;
      acc.count = static_cast<std::uint64_t>(c0.v);
      acc.epoch = entry.bar;
    }
  }
}

ThreadSummary ProgramAnalysis::run() {
  ThreadSummary sum;
  sum.program = prog_.name();
  if (prog_.empty()) {
    emit("structure", Severity::kError, -1, "empty program");
    return sum;
  }

  const Cfg cfg = build_cfg(prog_);
  structural_checks(cfg);

  const bool scalar_phase =
      phase_.mode == machine::PhaseMode::kLaneThreads ||
      phase_.mode == machine::PhaseMode::kSuThreads;
  if (scalar_phase) {
    for (std::uint64_t pc = 0; pc < prog_.size(); ++pc)
      if (isa::is_vector(prog_.code()[pc].op))
        emit("structure", Severity::kError, static_cast<std::int64_t>(pc),
             "vector instruction in a scalar-thread phase (lane cores "
             "have no vector datapath): " +
                 isa::disassemble(prog_.code()[pc]));
  }

  AbsDomain dom(tid_, phase_.nthreads(), mvl_);
  DataflowResult<AbsDomain> fp = solve(cfg, dom);

  // Replay each block once from its fixed-point in-state, emitting the
  // per-instruction findings and recording memory accesses.
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    AbsState st = fp.block_in[b];
    for (std::uint64_t pc = cfg.blocks[b].begin; pc < cfg.blocks[b].end;
         ++pc) {
      const Instruction& inst = prog_.code()[pc];
      pending_setvl_clamp_ = false;
      visit(st, inst, pc, scalar_phase, sum);
      if (pending_setvl_clamp_ && cfg.loop_depth[b] == 0)
        emit("vl-discipline", Severity::kWarning,
             static_cast<std::int64_t>(pc),
             "setvl requests a known constant above MVL " +
                 std::to_string(mvl_) +
                 "; the hardware clamp is silent and no strip-mine loop "
                 "re-checks the remainder: " +
                 isa::disassemble(inst));
      dom.transfer(st, inst, pc);
    }
  }

  summarize_strip_mine_loops(cfg, fp, dom, sum);
  return sum;
}

}  // namespace

// ---------------------------------------------------------------------------
// Cross-threadlet checks and the phase driver.
// ---------------------------------------------------------------------------

namespace {

void cross_thread_checks(const machine::ParallelProgram& par,
                         const machine::Phase& phase,
                         const std::vector<ThreadSummary>& threads,
                         const CheckFilter& filter,
                         std::vector<Finding>& out) {
  if (threads.size() < 2) return;

  // --- unbalanced barriers: provable per-threadlet totals must agree ---
  if (filter.on("barrier")) {
    bool all_known = true;
    for (const ThreadSummary& t : threads)
      all_known = all_known && t.has_reachable_halt &&
                  t.exit_bar.kind == BarCount::kKnown;
    if (all_known) {
      for (std::size_t t = 1; t < threads.size(); ++t) {
        if (threads[t].exit_bar.n == threads[0].exit_bar.n) continue;
        Finding f;
        f.check = "barrier";
        f.severity = Severity::kError;
        f.workload = par.name;
        f.phase = phase.label;
        f.thread = static_cast<int>(t);
        f.program = threads[t].program;
        f.message = "unbalanced barriers: threadlet executes " +
                    std::to_string(threads[t].exit_bar.n) +
                    " barrier(s) but threadlet 0 (" + threads[0].program +
                    ") executes " + std::to_string(threads[0].exit_bar.n) +
                    " — the phase deadlocks";
        out.push_back(std::move(f));
      }
    }
  }

  // --- cross-threadlet races: proven same-epoch overlapping footprints ---
  if (!filter.on("race")) return;
  for (std::size_t a = 0; a < threads.size(); ++a) {
    for (std::size_t b = a + 1; b < threads.size(); ++b) {
      for (const Access& wa : threads[a].accesses) {
        if (!wa.exact || wa.epoch.kind != BarCount::kKnown) continue;
        for (const Access& ab : threads[b].accesses) {
          if (!ab.exact || ab.epoch.kind != BarCount::kKnown) continue;
          if (!wa.write && !ab.write) continue;  // read-read never races
          if (wa.epoch.n != ab.epoch.n) continue;  // barrier-separated
          if (!footprints_overlap(wa, ab)) continue;
          Finding f;
          f.check = "race";
          f.severity = Severity::kError;
          f.workload = par.name;
          f.phase = phase.label;
          f.thread = static_cast<int>(a);
          f.program = threads[a].program;
          f.pc = static_cast<std::int64_t>(wa.pc);
          f.message =
              std::string(wa.write && ab.write ? "write-write"
                                               : "read-write") +
              " overlap with threadlet " + std::to_string(b) + " (" +
              threads[b].program + " pc " + std::to_string(ab.pc) +
              ") in barrier epoch " + std::to_string(wa.epoch.n) +
              ": bytes [" + std::to_string(wa.lo) + ", " +
              std::to_string(wa.hi()) + ") vs [" + std::to_string(ab.lo) +
              ", " + std::to_string(ab.hi()) + ")";
          out.push_back(std::move(f));
        }
      }
    }
  }
}

}  // namespace

std::vector<CheckInfo> check_infos() {
  return {
      {"structure",
       "CFG and phase-shape malformations (bad branch targets, fall-off-"
       "end, serial phases with several programs, vector ops in scalar-"
       "thread phases)"},
      {"regfile",
       "register indices outside the architectural files; writes to the "
       "conventional zero register s0"},
      {"def-before-use",
       "scalar/vector/mask registers read before any write reaches them"},
      {"vl-discipline",
       "vector ops with VL never set; strip-mine loops decrementing by a "
       "stale VL; silent setvl clamps above MVL"},
      {"barrier",
       "barriers under divergent control flow; threadlets of a phase with "
       "provably unequal barrier counts"},
      {"race",
       "cross-threadlet write-write / read-write footprint overlap within "
       "one barrier epoch (stride/interval effective-address analysis)"},
      {"isa-table",
       "opcode table closure: every opcode has a complete, consistent "
       "OpInfo entry"},
      {"isa-disasm", "disassembler renders every opcode's mnemonic"},
      {"isa-exec",
       "executor has functional semantics for every opcode and accounts "
       "every vector element"},
  };
}

std::vector<Finding> analyze(const machine::ParallelProgram& prog,
                             const AnalysisOptions& opts) {
  std::vector<Finding> out;
  CheckFilter filter{&opts};

  for (const machine::Phase& phase : prog.phases) {
    if (phase.programs.empty()) {
      if (filter.on("structure")) {
        Finding f;
        f.check = "structure";
        f.severity = Severity::kError;
        f.workload = prog.name;
        f.phase = phase.label;
        f.message = "phase has no programs";
        out.push_back(std::move(f));
      }
      continue;
    }
    if (phase.mode == machine::PhaseMode::kSerial &&
        phase.programs.size() != 1 && filter.on("structure")) {
      Finding f;
      f.check = "structure";
      f.severity = Severity::kError;
      f.workload = prog.name;
      f.phase = phase.label;
      f.message = "serial phase must have exactly one program, has " +
                  std::to_string(phase.programs.size());
      out.push_back(std::move(f));
    }

    unsigned phase_mvl = opts.machine_mvl;
    if (phase.mode == machine::PhaseMode::kVectorThreads &&
        phase.nthreads() > 0)
      phase_mvl = std::max(1u, opts.machine_mvl / phase.nthreads());

    std::vector<ThreadSummary> threads;
    threads.reserve(phase.programs.size());
    for (unsigned t = 0; t < phase.nthreads(); ++t) {
      ProgramAnalysis pa(prog, phase, t, opts, phase_mvl, out);
      threads.push_back(pa.run());
    }
    cross_thread_checks(prog, phase, threads, filter, out);
  }
  return out;
}

}  // namespace vlt::analysis
