// Opcode-metadata closure checks (absorbed from the old tools/isa_lint).
//
// One global pass plus two per-frontend passes: the shared OpInfo table
// must be complete and internally consistent and every opcode must be
// claimed by at least one ISA frontend ("isa-table"); each frontend must
// render every opcode it owns ("isa-disasm"); and the executor must have
// functional semantics for every opcode of every frontend, executed under
// that frontend's ExecContext, accounting every vector element
// ("isa-exec"). The table is a positional aggregate — deleting an entry
// shifts the initializers and value-initializes the tail, which the first
// pass catches as a missing name.
#include <set>
#include <string>

#include "analysis/checks.hpp"
#include "common/error.hpp"
#include "func/arch_state.hpp"
#include "func/executor.hpp"
#include "func/memory.hpp"
#include "isa/isa.hpp"
#include "isa/opcode.hpp"

namespace vlt::analysis {

namespace {

Finding table_finding(const char* check, std::string msg) {
  Finding f;
  f.check = check;
  f.severity = Severity::kError;
  f.message = std::move(msg);
  return f;
}

constexpr isa::IsaId kAllIsas[] = {isa::IsaId::kVlt, isa::IsaId::kRvv};

}  // namespace

std::vector<Finding> check_isa_tables() {
  using isa::Opcode;
  std::vector<Finding> out;
  const auto fail = [&out](const char* check, std::string msg) {
    out.push_back(table_finding(check, std::move(msg)));
  };

  // --- isa-table: every opcode has a complete, consistent OpInfo entry
  // and belongs to at least one frontend ---
  std::set<std::string> names;
  for (std::size_t i = 0; i < isa::kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    const isa::OpInfo& info = isa::op_info(op);
    if (info.name == nullptr || info.name[0] == '\0') {
      fail("isa-table",
           "opcode " + std::to_string(i) +
               " has no table entry (name missing) — was an initializer "
               "removed from kTable?");
      continue;
    }
    if (info.latency == 0)
      fail("isa-table", std::string(info.name) + ": latency entry is zero");
    if (!names.insert(info.name).second)
      fail("isa-table",
           std::string(info.name) + ": duplicate mnemonic in the table");

    const bool vec_kind = info.kind == isa::OpKind::kVecArith ||
                          info.kind == isa::OpKind::kVecRed ||
                          info.kind == isa::OpKind::kVecMem;
    const bool vec_fu = info.fu == isa::FuClass::kVAlu0 ||
                        info.fu == isa::FuClass::kVAlu1 ||
                        info.fu == isa::FuClass::kVAlu2 ||
                        info.fu == isa::FuClass::kVMem;
    if (vec_kind != vec_fu)
      fail("isa-table",
           std::string(info.name) +
               ": vector kind and functional-unit class disagree");
    if (info.kind == isa::OpKind::kVecMem && info.fu != isa::FuClass::kVMem)
      fail("isa-table",
           std::string(info.name) + ": vector memory op not on the vLSU");

    bool claimed = false;
    for (isa::IsaId id : kAllIsas)
      if (isa::frontend(id).has_opcode(op)) claimed = true;
    if (!claimed)
      fail("isa-table",
           std::string(info.name) + ": opcode belongs to no ISA frontend");
  }

  // --- isa-disasm: every frontend renders each opcode it owns ---
  for (isa::IsaId id : kAllIsas) {
    const isa::IsaFrontend& fe = isa::frontend(id);
    for (Opcode op : fe.opcodes()) {
      const isa::OpInfo& info = isa::op_info(op);
      if (info.name == nullptr) continue;  // already reported above
      isa::Instruction inst;
      inst.op = op;
      std::string text = fe.disasm(inst);
      if (text.empty() || text.find(info.name) == std::string::npos)
        fail("isa-disasm",
             std::string(fe.name()) + ": " + info.name +
                 ": disassembly does not render the mnemonic (got '" + text +
                 "')");
    }
  }

  // --- isa-exec: every opcode of every frontend has functional semantics,
  // executed under that frontend's context ---
  // Execute each opcode once from a zeroed state. A missing switch case
  // falls through to the executor's invalid-opcode SimError, reported as a
  // finding rather than a crash. Vector semantics must account for every
  // element (res.elems == VL).
  func::FuncMemory mem;
  func::Executor exec(mem);
  std::vector<Addr> addrs;
  const unsigned kVl = 4;
  for (isa::IsaId id : kAllIsas) {
    const isa::IsaFrontend& fe = isa::frontend(id);
    for (Opcode op : fe.opcodes()) {
      const isa::OpInfo& info = isa::op_info(op);
      if (info.name == nullptr) continue;
      func::ArchState st;
      st.set_vl(kVl);
      st.set_pc(8);
      func::ExecContext ctx{/*tid=*/0, /*nthreads=*/1, /*max_vl=*/kVl, id};
      isa::Instruction inst;
      inst.op = op;
      func::ExecResult res;
      try {
        res = exec.execute(inst, st, ctx, addrs);
      } catch (const SimError& e) {
        fail("isa-exec", std::string(fe.name()) + ": " + info.name +
                             ": executor has no semantics (" + e.message() +
                             ")");
        continue;
      }

      const bool vec = isa::is_vector(op);
      if (vec && res.elems != kVl)
        fail("isa-exec", std::string(fe.name()) + ": " + info.name +
                             ": executor accounted " +
                             std::to_string(res.elems) + " elements for VL " +
                             std::to_string(kVl));
      if (!vec && res.elems != 0)
        fail("isa-exec", std::string(fe.name()) + ": " + info.name +
                             ": scalar op reported " +
                             std::to_string(res.elems) + " vector elements");
      if (isa::is_mem(op) && vec && addrs.size() != kVl)
        fail("isa-exec", std::string(fe.name()) + ": " + info.name +
                             ": vector memory op produced " +
                             std::to_string(addrs.size()) +
                             " addresses for VL " + std::to_string(kVl));
      if (op == Opcode::kHalt && !res.halted)
        fail("isa-exec", "halt: executor did not halt");
      if (res.next_pc == 8 && op != Opcode::kJr)
        fail("isa-exec", std::string(fe.name()) + ": " + info.name +
                             ": executor did not advance the pc");
    }
  }

  return out;
}

}  // namespace vlt::analysis
