// Opcode-metadata closure checks (absorbed from the old tools/isa_lint).
//
// Three passes over every opcode: the OpInfo table must be complete and
// internally consistent ("isa-table"), the disassembler must render every
// mnemonic ("isa-disasm"), and the executor must have functional semantics
// that account every vector element ("isa-exec"). The table is a positional
// aggregate — deleting an entry shifts the initializers and value-
// initializes the tail, which the first pass catches as a missing name.
#include <set>
#include <string>

#include "analysis/checks.hpp"
#include "common/error.hpp"
#include "func/arch_state.hpp"
#include "func/executor.hpp"
#include "func/memory.hpp"
#include "isa/disasm.hpp"
#include "isa/opcode.hpp"

namespace vlt::analysis {

namespace {

Finding table_finding(const char* check, std::string msg) {
  Finding f;
  f.check = check;
  f.severity = Severity::kError;
  f.message = std::move(msg);
  return f;
}

}  // namespace

std::vector<Finding> check_isa_tables() {
  using isa::Opcode;
  std::vector<Finding> out;
  const auto fail = [&out](const char* check, std::string msg) {
    out.push_back(table_finding(check, std::move(msg)));
  };

  // --- isa-table: every opcode has a complete, consistent OpInfo entry ---
  std::set<std::string> names;
  for (std::size_t i = 0; i < isa::kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    const isa::OpInfo& info = isa::op_info(op);
    if (info.name == nullptr || info.name[0] == '\0') {
      fail("isa-table",
           "opcode " + std::to_string(i) +
               " has no table entry (name missing) — was an initializer "
               "removed from kTable?");
      continue;
    }
    if (info.latency == 0)
      fail("isa-table", std::string(info.name) + ": latency entry is zero");
    if (!names.insert(info.name).second)
      fail("isa-table",
           std::string(info.name) + ": duplicate mnemonic in the table");

    const bool vec_kind = info.kind == isa::OpKind::kVecArith ||
                          info.kind == isa::OpKind::kVecRed ||
                          info.kind == isa::OpKind::kVecMem;
    const bool vec_fu = info.fu == isa::FuClass::kVAlu0 ||
                        info.fu == isa::FuClass::kVAlu1 ||
                        info.fu == isa::FuClass::kVAlu2 ||
                        info.fu == isa::FuClass::kVMem;
    if (vec_kind != vec_fu)
      fail("isa-table",
           std::string(info.name) +
               ": vector kind and functional-unit class disagree");
    if (info.kind == isa::OpKind::kVecMem && info.fu != isa::FuClass::kVMem)
      fail("isa-table",
           std::string(info.name) + ": vector memory op not on the vLSU");
  }

  // --- isa-disasm: every opcode renders its mnemonic ---
  for (std::size_t i = 0; i < isa::kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    const isa::OpInfo& info = isa::op_info(op);
    if (info.name == nullptr) continue;  // already reported above
    isa::Instruction inst;
    inst.op = op;
    std::string text = isa::disassemble(inst);
    if (text.empty() || text.find(info.name) == std::string::npos)
      fail("isa-disasm",
           std::string(info.name) +
               ": disassembly does not render the mnemonic (got '" + text +
               "')");
  }

  // --- isa-exec: every opcode has functional semantics ---
  // Execute each opcode once from a zeroed state. A missing switch case
  // falls through to the executor's invalid-opcode SimError, reported as a
  // finding rather than a crash. Vector semantics must account for every
  // element (res.elems == VL).
  func::FuncMemory mem;
  func::Executor exec(mem);
  std::vector<Addr> addrs;
  const unsigned kVl = 4;
  for (std::size_t i = 0; i < isa::kNumOpcodes; ++i) {
    const Opcode op = static_cast<Opcode>(i);
    const isa::OpInfo& info = isa::op_info(op);
    if (info.name == nullptr) continue;
    func::ArchState st;
    st.set_vl(kVl);
    st.set_pc(8);
    func::ExecContext ctx{/*tid=*/0, /*nthreads=*/1, /*max_vl=*/kVl};
    isa::Instruction inst;
    inst.op = op;
    func::ExecResult res;
    try {
      res = exec.execute(inst, st, ctx, addrs);
    } catch (const SimError& e) {
      fail("isa-exec", std::string(info.name) +
                           ": executor has no semantics (" + e.message() +
                           ")");
      continue;
    }

    const bool vec = isa::is_vector(op);
    if (vec && res.elems != kVl)
      fail("isa-exec", std::string(info.name) + ": executor accounted " +
                           std::to_string(res.elems) + " elements for VL " +
                           std::to_string(kVl));
    if (!vec && res.elems != 0)
      fail("isa-exec", std::string(info.name) + ": scalar op reported " +
                           std::to_string(res.elems) + " vector elements");
    if (isa::is_mem(op) && vec && addrs.size() != kVl)
      fail("isa-exec", std::string(info.name) +
                           ": vector memory op produced " +
                           std::to_string(addrs.size()) +
                           " addresses for VL " + std::to_string(kVl));
    if (op == Opcode::kHalt && !res.halted)
      fail("isa-exec", "halt: executor did not halt");
    if (res.next_pc == 8 && op != Opcode::kJr)
      fail("isa-exec",
           std::string(info.name) + ": executor did not advance the pc");
  }

  return out;
}

}  // namespace vlt::analysis
