// Lint findings: the structured result of every vltlint check.
//
// A finding pins one defect to a (workload, phase, threadlet, pc) site and
// names the check that produced it, so suppressions can target exactly one
// check class — or one check on one program — without silencing the rest.
// The JSON shape is documented in docs/LINT.md and is the contract for the
// CI lint artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace vlt::analysis {

enum class Severity : std::uint8_t {
  kError,    // the program is malformed; simulating it is meaningless
  kWarning,  // suspicious shape that simulates but likely not as intended
};

const char* severity_name(Severity s);

struct Finding {
  std::string check;     // stable check id, e.g. "def-before-use"
  Severity severity = Severity::kError;
  std::string workload;  // workload / ParallelProgram name ("" for table checks)
  std::string phase;     // phase label ("" when not program-scoped)
  int thread = -1;       // threadlet index within the phase (-1: n/a)
  std::string program;   // isa::Program name ("" when not program-scoped)
  std::int64_t pc = -1;  // instruction slot (-1: whole-program finding)
  std::string message;

  /// Deterministic object: {check, severity, workload, phase, thread,
  /// program, pc, message}; thread/pc omitted when unset.
  Json to_json() const;

  /// One-line human rendering: "check(severity) workload/phase/program@pc: msg".
  std::string to_string() const;
};

/// A suppression entry: a check id, optionally scoped to one workload with
/// "check@workload" (e.g. "barrier@fault.barrier"). "*" matches any check.
struct Suppression {
  std::string check;
  std::string workload;  // empty: any workload

  /// Parses "check" or "check@workload"; returns false on an empty check.
  static bool parse(const std::string& text, Suppression& out);
  bool matches(const Finding& f) const;
};

/// Drops findings matched by any suppression; returns the kept findings
/// and (optionally) counts the dropped ones.
std::vector<Finding> apply_suppressions(std::vector<Finding> findings,
                                        const std::vector<Suppression>& sup,
                                        std::size_t* suppressed = nullptr);

/// Deterministic JSON report: {"findings": [...], "count": N}.
Json findings_to_json(const std::vector<Finding>& findings);

}  // namespace vlt::analysis
