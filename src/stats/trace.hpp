// Opt-in structured event trace (vltsim_run --trace out.json).
//
// Units record fixed-size structured events — vector dispatch, VIQ ->
// window handoff, barrier arrive/release, L2 miss — into a bounded ring
// buffer: when full, the oldest events are overwritten, so tracing a long
// run keeps the tail (the interesting end state) at a fixed memory cost.
// The buffer exports Chrome trace_event JSON (load in chrome://tracing or
// https://ui.perfetto.dev) with the simulated cycle as the microsecond
// timestamp. Tracing is observational: a null buffer pointer (the
// default) keeps every record site a single predictable branch, and the
// recorded events are engine-invariant (each marks a unit state change,
// which both engines perform at identical cycles).
#pragma once

#include <cstdint>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"

namespace vlt::stats {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kVecDispatch,     // SU handed a vector instruction to a VIQ slice
    kViqHandoff,      // VIQ -> window rename
    kBarrierArrive,   // a thread arrived at the barrier
    kBarrierRelease,  // a full generation's release was scheduled
    kL2Miss,          // L2 tag miss (line fetched from main memory)
  };

  Kind kind = Kind::kVecDispatch;
  Cycle cycle = 0;        // simulated cycle of the event
  std::uint32_t unit = 0;  // kind-specific lane: vctx, thread, or bank
  std::uint64_t a = 0;     // kind-specific payload (VL, generation, address)
};

const char* trace_event_name(TraceEvent::Kind kind);
const char* trace_event_category(TraceEvent::Kind kind);

class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1 << 16);

  void record(TraceEvent::Kind kind, Cycle cycle, std::uint32_t unit,
              std::uint64_t a = 0);

  /// Events currently retained (<= capacity).
  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Total events ever recorded; recorded() - size() were overwritten.
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return recorded_ - ring_.size(); }

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const;

  /// Chrome trace_event export: {"traceEvents": [...], "displayTimeUnit":
  /// "ns", "vltDropped": N}. Each event is an instant ("ph": "i") with
  /// the simulated cycle as "ts", the unit index as "tid", and the
  /// payload under "args". Deterministic bytes via vlt::Json.
  Json to_chrome_json() const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // overwrite cursor once the ring is full
  std::uint64_t recorded_ = 0;
};

}  // namespace vlt::stats
