// Unified metrics layer (vltstat): typed instruments owned by the units
// that update them, registered by name into a per-machine stats::Registry.
//
// Design rules:
//  - Hot paths touch only the instrument (an inlined integer add); the
//    registry is consulted at registration and snapshot time only, so the
//    layer is cheap enough for the vltperf CI floor (docs/PERF.md).
//  - Names are hierarchical, dot-separated, lower_snake_case leaves:
//    "<unit><index>.<structure>.<metric>" — e.g. "su0.l1d.misses",
//    "lane3.icache.hits", "vu.datapath.busy", "barrier.arrivals". The
//    index dimension is part of the name, so per-context and per-lane
//    series need no side tables (docs/METRICS.md).
//  - Every instrument is either kStable (engine-invariant: identical
//    under the per-cycle oracle and the event-driven skip engine, and
//    therefore part of the serialized RunResult snapshot) or kDiagnostic
//    (tick-frequency tallies that depend on which cycles were executed;
//    in-process only, excluded from snapshots the same way
//    RunResult::wall_ms is).
//  - Conservation invariants (hits + misses == accesses, ...) register
//    alongside the instruments and are evaluated through the audit layer,
//    so the checks stay observational and opt-in (docs/CHECKS.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "audit/sink.hpp"
#include "common/json.hpp"
#include "common/types.hpp"

namespace vlt::stats {

/// Monotonic event counter (cache hits, committed instructions, ...).
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level that can move both ways (valid-line population).
class Gauge {
 public:
  void inc(std::int64_t by = 1) { value_ += by; }
  void dec(std::int64_t by = 1) { value_ -= by; }
  void set(std::int64_t v) { value_ = v; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Integer-keyed weighted histogram used for vector-length
/// characterization (Table 4). The single histogram type in the tree.
class Histogram {
 public:
  void add(std::uint64_t key, std::uint64_t weight = 1) {
    counts_[key] += weight;
    total_weight_ += weight;
    weighted_sum_ += key * weight;
  }

  std::uint64_t total_weight() const { return total_weight_; }
  std::uint64_t weighted_sum() const { return weighted_sum_; }

  double mean() const {
    return total_weight_ == 0
               ? 0.0
               : static_cast<double>(weighted_sum_) /
                     static_cast<double>(total_weight_);
  }

  /// Keys sorted by descending weight (ties: ascending key); at most `n`.
  std::vector<std::uint64_t> top_keys(std::size_t n) const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> items(counts_.begin(),
                                                               counts_.end());
    std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < items.size() && i < n; ++i)
      keys.push_back(items[i].first);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  const std::map<std::uint64_t, std::uint64_t>& counts() const {
    return counts_;
  }

  void clear() {
    counts_.clear();
    total_weight_ = 0;
    weighted_sum_ = 0;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_weight_ = 0;
  std::uint64_t weighted_sum_ = 0;
};

/// Whether an instrument's value belongs to the run's deterministic,
/// engine-invariant measurement surface.
enum class Stability : std::uint8_t {
  kStable,      // identical under both engines; serialized into snapshots
  kDiagnostic,  // depends on which cycles executed; in-process only
};

/// Point-in-time copy of every stable, non-zero instrument, name-sorted so
/// equal machine states serialize to equal bytes (the property the golden
/// diffs, the result cache, and --resume all lean on).
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, Histogram>> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Value of a counter by name; 0 when absent (zero-valued counters are
  /// omitted from snapshots, so absence and zero are the same thing).
  std::uint64_t counter(const std::string& name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {key:
  /// weight}}}; empty sections are omitted. Deterministic bytes.
  Json to_json() const;
  static Snapshot from_json(const Json& j);
};

/// Name -> instrument directory for one machine instance. Does not own the
/// instruments: units keep them as members (hot-path updates never touch
/// the registry) and register pointers at construction; the registry must
/// not outlive the units (both live in machine::Processor).
class Registry {
 public:
  void add_counter(const std::string& name, const Counter* c,
                   Stability stability = Stability::kStable);
  void add_gauge(const std::string& name, const Gauge* g,
                 Stability stability = Stability::kStable);
  void add_histogram(const std::string& name, const Histogram* h,
                     Stability stability = Stability::kStable);

  /// Registers a conservation invariant evaluated by check_invariants():
  /// `fn` returns a diagnostic when the invariant is violated, nullopt
  /// when it holds. `component` labels the violation ("l1d", "vu", ...).
  void add_invariant(const std::string& component, audit::Check check,
                     std::function<std::optional<std::string>()> fn);

  /// Evaluates every registered invariant, reporting violations into
  /// `sink` stamped with cycle `now`. Observational: called by the
  /// simulator at end of run when audit mode is on.
  void check_invariants(audit::AuditSink& sink, Cycle now) const;

  /// Stable instruments only; zero-valued counters/gauges and empty
  /// histograms are omitted (absence == zero, and golden files stay
  /// readable). Deterministic: entries are name-sorted.
  Snapshot snapshot() const;

  /// Checkpoint restore (docs/CKPT.md): writes `snap` back into the
  /// registered stable instruments, so Figure-4 accounting survives a
  /// restore. Every snapshot name must be registered (a snapshot from a
  /// different machine shape is snapshot corruption, kIo); instruments
  /// absent from the snapshot were zero when it was taken and must be
  /// zero now — restore targets a freshly constructed machine.
  void restore(const Snapshot& snap);

  /// Raw lookups for tests and tools; include diagnostic instruments.
  /// Return 0 / nullptr when the name is not registered.
  std::uint64_t counter_value(const std::string& name) const;
  std::int64_t gauge_value(const std::string& name) const;
  const Histogram* histogram(const std::string& name) const;

  std::size_t num_instruments() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  template <typename T>
  struct Entry {
    const T* instrument = nullptr;
    Stability stability = Stability::kStable;
  };
  struct Invariant {
    std::string component;
    audit::Check check;
    std::function<std::optional<std::string>()> fn;
  };

  void check_new_name(const std::string& name) const;

  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
  std::vector<Invariant> invariants_;
};

}  // namespace vlt::stats
