// Figure-4 datapath-cycle classification, shared by both engines.
//
// Every arithmetic-datapath lane-cycle of a run lands in exactly one of
// four buckets (paper Figure 4): busy (an element operation executed),
// partly idle (a chime slot wasted because VL < lanes x duration),
// stalled (the FU sat idle while work waited in the VIQ/window), or all
// idle (no vector instruction in flight at all). The per-cycle oracle
// ticks the classifier every cycle (account_cycle); the event-driven skip
// engine feeds it the same spans in closed form (account_span). With an
// audit sink attached, account_span replays each span through the
// per-cycle classifier and reports a violation if the two paths ever
// disagree — the agreement check behind the engines' byte-identical
// utilization split (docs/PERF.md, docs/CHECKS.md).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "stats/stats.hpp"

namespace vlt::audit {
class AuditSink;
}

namespace vlt::stats {

/// Figure-4 utilization split. All counts are lane-cycles summed over the
/// arithmetic datapaths of all lanes.
struct DatapathUtilization {
  std::uint64_t busy = 0;         // element operations executed
  std::uint64_t partly_idle = 0;  // slots wasted because VL < a full chime
  std::uint64_t stalled = 0;      // FU idle while work waits (deps/issue bw)
  std::uint64_t all_idle = 0;     // no vector instruction in flight at all

  DatapathUtilization operator-(const DatapathUtilization& o) const {
    return {busy - o.busy, partly_idle - o.partly_idle, stalled - o.stalled,
            all_idle - o.all_idle};
  }
  std::uint64_t total() const {
    return busy + partly_idle + stalled + all_idle;
  }
};

class CycleAccountant {
 public:
  /// One issued instruction: `elems` element operations occupying a chime
  /// rectangle of `slots` lane-cycles (duration x assigned lanes). The
  /// rectangle splits into busy element slots and partly-idle waste.
  void on_issue(std::uint64_t elems, std::uint64_t slots) {
    busy_.inc(elems);
    partly_idle_.inc(slots - elems);
  }

  /// Per-cycle classification of one context's arithmetic FUs at `now`
  /// (the oracle path): an FU with fu_free[f] <= now sat idle this cycle,
  /// charged as stalled lane-cycles when work was waiting in the VIQ or
  /// window, all-idle otherwise. `weight` is the lanes assigned to the
  /// context. Busy cycles are not counted here — they were charged at
  /// issue by on_issue().
  void account_cycle(Cycle now, const Cycle* fu_free, unsigned nfus,
                     bool work_waiting, unsigned weight) {
    for (unsigned f = 0; f < nfus; ++f)
      if (fu_free[f] <= now) (work_waiting ? stalled_ : all_idle_).inc(weight);
  }

  /// Closed-form classification of the span [from, to) (the skip-engine
  /// path): equivalent to calling account_cycle on every cycle of the
  /// span, valid only when no issue, rename, or dispatch lands inside it
  /// (so fu_free and work_waiting are constant across the span — the
  /// skip engine's no-op-tick proof). With an audit sink attached the
  /// span is replayed per-cycle and any disagreement is reported.
  void account_span(Cycle from, Cycle to, const Cycle* fu_free, unsigned nfus,
                    bool work_waiting, unsigned weight);

  DatapathUtilization utilization() const {
    return {busy_.value(), partly_idle_.value(), stalled_.value(),
            all_idle_.value()};
  }

  /// Attaches the audit sink enabling the span-vs-cycle agreement check.
  /// Pass nullptr to detach. Observational only.
  void set_audit(audit::AuditSink* sink) { audit_ = sink; }

  /// Registers the four buckets as "<prefix>.busy" etc. All stable: both
  /// engines charge identical totals (enforced by the agreement check and
  /// the equivalence suite).
  void register_stats(Registry& registry, const std::string& prefix);

 private:
  Counter busy_;
  Counter partly_idle_;
  Counter stalled_;
  Counter all_idle_;
  audit::AuditSink* audit_ = nullptr;
};

}  // namespace vlt::stats
