#include "stats/trace.hpp"

#include "common/log.hpp"

namespace vlt::stats {

const char* trace_event_name(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kVecDispatch: return "vec_dispatch";
    case TraceEvent::Kind::kViqHandoff: return "viq_handoff";
    case TraceEvent::Kind::kBarrierArrive: return "barrier_arrive";
    case TraceEvent::Kind::kBarrierRelease: return "barrier_release";
    case TraceEvent::Kind::kL2Miss: return "l2_miss";
  }
  return "unknown";
}

const char* trace_event_category(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kVecDispatch:
    case TraceEvent::Kind::kViqHandoff:
      return "vu";
    case TraceEvent::Kind::kBarrierArrive:
    case TraceEvent::Kind::kBarrierRelease:
      return "barrier";
    case TraceEvent::Kind::kL2Miss:
      return "mem";
  }
  return "unknown";
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  VLT_CHECK(capacity >= 1, "trace buffer needs capacity for one event");
  ring_.reserve(capacity_);
}

void TraceBuffer::record(TraceEvent::Kind kind, Cycle cycle,
                         std::uint32_t unit, std::uint64_t a) {
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back({kind, cycle, unit, a});
    return;
  }
  ring_[head_] = {kind, cycle, unit, a};
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

Json TraceBuffer::to_chrome_json() const {
  Json root = Json::object();
  Json events_json = Json::array();
  for (const TraceEvent& e : events()) {
    Json ev = Json::object();
    ev.set("name", trace_event_name(e.kind));
    ev.set("cat", trace_event_category(e.kind));
    ev.set("ph", "i");  // instant event
    ev.set("s", "t");   // thread-scoped
    ev.set("ts", e.cycle);
    ev.set("pid", 0u);
    ev.set("tid", e.unit);
    Json args = Json::object();
    switch (e.kind) {
      case TraceEvent::Kind::kVecDispatch:
      case TraceEvent::Kind::kViqHandoff:
        args.set("vl", e.a);
        break;
      case TraceEvent::Kind::kBarrierArrive:
      case TraceEvent::Kind::kBarrierRelease:
        args.set("generation", e.a);
        break;
      case TraceEvent::Kind::kL2Miss:
        args.set("addr", e.a);
        break;
    }
    ev.set("args", std::move(args));
    events_json.push_back(std::move(ev));
  }
  root.set("traceEvents", std::move(events_json));
  root.set("displayTimeUnit", "ns");
  root.set("vltDropped", dropped());
  return root;
}

void TraceBuffer::clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

}  // namespace vlt::stats
