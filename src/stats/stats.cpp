#include "stats/stats.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace vlt::stats {

std::uint64_t Snapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

Json Snapshot::to_json() const {
  Json j = Json::object();
  if (!counters.empty()) {
    Json c = Json::object();
    for (const auto& [name, value] : counters) c.set(name, value);
    j.set("counters", std::move(c));
  }
  if (!gauges.empty()) {
    Json g = Json::object();
    for (const auto& [name, value] : gauges) g.set(name, value);
    j.set("gauges", std::move(g));
  }
  if (!histograms.empty()) {
    Json h = Json::object();
    for (const auto& [name, hist] : histograms) {
      Json buckets = Json::object();
      for (const auto& [key, weight] : hist.counts())  // std::map: ascending
        buckets.set(std::to_string(key), weight);
      h.set(name, std::move(buckets));
    }
    j.set("histograms", std::move(h));
  }
  return j;
}

Snapshot Snapshot::from_json(const Json& j) {
  Snapshot s;
  if (!j.is_object()) return s;
  if (const Json* c = j.find("counters"); c != nullptr)
    for (const auto& [name, value] : c->members())
      s.counters.emplace_back(name, value.as_uint());
  if (const Json* g = j.find("gauges"); g != nullptr)
    for (const auto& [name, value] : g->members())
      s.gauges.emplace_back(name, value.as_int());
  if (const Json* h = j.find("histograms"); h != nullptr)
    for (const auto& [name, buckets] : h->members()) {
      Histogram hist;
      for (const auto& [key, weight] : buckets.members())
        hist.add(std::strtoull(key.c_str(), nullptr, 10), weight.as_uint());
      s.histograms.emplace_back(name, std::move(hist));
    }
  return s;
}

void Registry::check_new_name(const std::string& name) const {
  VLT_CHECK(!name.empty(), "instrument registered without a name");
  VLT_CHECK(counters_.find(name) == counters_.end() &&
                gauges_.find(name) == gauges_.end() &&
                histograms_.find(name) == histograms_.end(),
            "duplicate instrument name '" + name + "'");
}

void Registry::add_counter(const std::string& name, const Counter* c,
                           Stability stability) {
  check_new_name(name);
  VLT_CHECK(c != nullptr, "null counter registered as '" + name + "'");
  counters_[name] = {c, stability};
}

void Registry::add_gauge(const std::string& name, const Gauge* g,
                         Stability stability) {
  check_new_name(name);
  VLT_CHECK(g != nullptr, "null gauge registered as '" + name + "'");
  gauges_[name] = {g, stability};
}

void Registry::add_histogram(const std::string& name, const Histogram* h,
                             Stability stability) {
  check_new_name(name);
  VLT_CHECK(h != nullptr, "null histogram registered as '" + name + "'");
  histograms_[name] = {h, stability};
}

void Registry::add_invariant(const std::string& component, audit::Check check,
                             std::function<std::optional<std::string>()> fn) {
  VLT_CHECK(fn != nullptr, "null invariant registered for " + component);
  invariants_.push_back({component, check, std::move(fn)});
}

void Registry::check_invariants(audit::AuditSink& sink, Cycle now) const {
  for (const Invariant& inv : invariants_)
    if (std::optional<std::string> violation = inv.fn())
      sink.report(
          audit::Violation{inv.check, inv.component, now, *violation});
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  for (const auto& [name, entry] : counters_)  // std::map: name-sorted
    if (entry.stability == Stability::kStable && entry.instrument->value() != 0)
      s.counters.emplace_back(name, entry.instrument->value());
  for (const auto& [name, entry] : gauges_)
    if (entry.stability == Stability::kStable && entry.instrument->value() != 0)
      s.gauges.emplace_back(name, entry.instrument->value());
  for (const auto& [name, entry] : histograms_)
    if (entry.stability == Stability::kStable &&
        entry.instrument->total_weight() != 0)
      s.histograms.emplace_back(name, *entry.instrument);
  return s;
}

void Registry::restore(const Snapshot& snap) {
  // The registry holds const pointers because units own the hot-path
  // updates; restore is the one sanctioned writer-from-outside, so it
  // casts the constness away rather than widening every registration
  // site's contract.
  for (const auto& [name, value] : snap.counters) {
    auto it = counters_.find(name);
    if (it == counters_.end() || it->second.stability != Stability::kStable)
      VLT_FAIL(ErrorKind::kIo,
               "checkpoint stats name '" + name +
                   "' is not a stable counter of this machine");
    Counter* c = const_cast<Counter*>(it->second.instrument);
    VLT_CHECK(c->value() <= value,
              "stats restore would move counter '" + name + "' backwards");
    c->inc(value - c->value());
  }
  for (const auto& [name, value] : snap.gauges) {
    auto it = gauges_.find(name);
    if (it == gauges_.end() || it->second.stability != Stability::kStable)
      VLT_FAIL(ErrorKind::kIo,
               "checkpoint stats name '" + name +
                   "' is not a stable gauge of this machine");
    const_cast<Gauge*>(it->second.instrument)->set(value);
  }
  for (const auto& [name, hist] : snap.histograms) {
    auto it = histograms_.find(name);
    if (it == histograms_.end() || it->second.stability != Stability::kStable)
      VLT_FAIL(ErrorKind::kIo,
               "checkpoint stats name '" + name +
                   "' is not a stable histogram of this machine");
    Histogram* h = const_cast<Histogram*>(it->second.instrument);
    h->clear();
    for (const auto& [key, weight] : hist.counts()) h->add(key, weight);
  }
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second.instrument->value() : 0;
}

std::int64_t Registry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.instrument->value() : 0;
}

const Histogram* Registry::histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.instrument : nullptr;
}

}  // namespace vlt::stats
