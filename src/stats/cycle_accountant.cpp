#include "stats/cycle_accountant.hpp"

#include <algorithm>

#include "audit/sink.hpp"

namespace vlt::stats {

void CycleAccountant::account_span(Cycle from, Cycle to, const Cycle* fu_free,
                                   unsigned nfus, bool work_waiting,
                                   unsigned weight) {
  // An FU counts as idle at cycle t exactly when fu_free <= t, so across
  // a state-change-free span its idle cycles are the tail [max(from,
  // fu_free), to).
  std::uint64_t idle_cycles = 0;
  for (unsigned f = 0; f < nfus; ++f) {
    Cycle idle_from = std::max(from, fu_free[f]);
    if (idle_from < to) idle_cycles += to - idle_from;
  }
  (work_waiting ? stalled_ : all_idle_).inc(idle_cycles * weight);

  if (audit_ != nullptr) {
    // Agreement check: the closed form must match a per-cycle replay of
    // the same span through the oracle classifier.
    std::uint64_t replayed = 0;
    for (Cycle t = from; t < to; ++t)
      for (unsigned f = 0; f < nfus; ++f)
        if (fu_free[f] <= t) ++replayed;
    audit_->expect(replayed == idle_cycles, audit::Check::kCycleAccounting,
                   "cycle-accountant", to,
                   "closed-form span [" + std::to_string(from) + ", " +
                       std::to_string(to) + ") classified " +
                       std::to_string(idle_cycles) +
                       " idle lane-cycles; the per-cycle replay found " +
                       std::to_string(replayed));
  }
}

void CycleAccountant::register_stats(Registry& registry,
                                     const std::string& prefix) {
  registry.add_counter(prefix + ".busy", &busy_);
  registry.add_counter(prefix + ".partly_idle", &partly_idle_);
  registry.add_counter(prefix + ".stalled", &stalled_);
  registry.add_counter(prefix + ".all_idle", &all_idle_);
}

}  // namespace vlt::stats
