// Out-of-order superscalar scalar unit (SU) with optional SMT.
//
// Matches the paper's Table 3 SU: wide fetch/issue/retire, register
// renaming, a unified 64-entry instruction window / ROB, 4 arithmetic
// units, 2 memory ports, and 16 KB 2-way L1 caches. The SU fetches both
// scalar and vector instructions; vector instructions occupy a ROB slot
// for precise exceptions and are handed to the vector unit once their
// scalar operands are ready (paper §2). A 2-way SU halves the window and
// functional units but keeps the caches (paper §6).
//
// Timing methodology: instructions are functionally executed in program
// order at fetch (there is no wrong-path fetch), and out-of-order timing
// is modeled with producer links, functional-unit occupancy, and in-order
// commit. A direction misprediction blocks fetch until the branch resolves
// plus a redirect penalty.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "func/executor.hpp"
#include "isa/program.hpp"
#include "mem/cache.hpp"
#include "mem/l2_cache.hpp"
#include "su/branch_pred.hpp"
#include "vltctl/barrier.hpp"
#include "vu/vector_unit.hpp"

namespace vlt::audit {
class Auditor;
class AuditSink;
class Lockstep;
}  // namespace vlt::audit

namespace vlt::su {

struct SuParams {
  unsigned width = 4;        // fetch/dispatch/issue/commit width
  unsigned rob_size = 64;    // instruction window and ROB (Table 3)
  unsigned arith_units = 4;  // shared int/fp datapaths (Table 3)
  unsigned mem_ports = 2;    // L1 data ports (Table 3)
  unsigned smt_contexts = 1;
  unsigned fetch_queue = 16;        // per context
  std::size_t l1_size = 16 * 1024;  // each of L1I / L1D (Table 3)
  unsigned l1_ways = 2;
  unsigned l1_data_latency = 2;
  unsigned redirect_penalty = 3;  // front-end refill after branch resolve
  unsigned bpred_bits = 12;
  bool l1_prefetch = false;  // the Alpha-class SUs of the era lack one
  unsigned store_buffer = 16;  // outstanding store misses before stalling
  unsigned vec_handoff_rate = 2;  // vector insts accepted by the VCL/cycle

  /// The paper's 2-way SU: identical caches, half the resources (§6).
  static SuParams two_way() {
    SuParams p;
    p.width = 2;
    p.rob_size = 32;
    p.arith_units = 2;
    p.mem_ports = 1;
    return p;
  }
};

/// Work a hardware context runs: a program plus its thread identity.
struct ThreadAssignment {
  const isa::Program* program = nullptr;
  ThreadId tid = 0;
  unsigned nthreads = 1;
  unsigned max_vl = kMaxVectorLength;
  unsigned vctx = 0;  // vector-unit partition this thread drives
};

class ScalarCore {
 public:
  ScalarCore(const SuParams& p, func::FuncMemory& memory, mem::L2Cache& l2,
             vltctl::BarrierController& barrier, vu::VectorUnit* vu,
             audit::Auditor* auditor = nullptr);

  /// Binds `work` to SMT context `ctx` and resets its pipeline state.
  void start_context(unsigned ctx, const ThreadAssignment& work, Cycle now);

  /// Releases all contexts (between phases).
  void clear_contexts();

  void tick(Cycle now);

  bool context_done(unsigned ctx) const;
  bool all_done() const;
  unsigned num_contexts() const { return static_cast<unsigned>(ctxs_.size()); }
  bool context_active(unsigned ctx) const { return ctxs_[ctx].active; }

  const func::ArchState& arch_state(unsigned ctx) const {
    return ctxs_[ctx].arch;
  }

  // --- statistics ---
  std::uint64_t committed_scalar() const { return committed_scalar_; }
  std::uint64_t committed_vector() const { return committed_vector_; }
  const BranchPredictor& predictor() const { return bpred_; }
  const mem::Cache& l1d() const { return l1d_; }
  const mem::Cache& l1i() const { return l1i_; }
  const StatSet& stats() const { return stats_; }

 private:
  struct RobEntry {
    isa::Instruction inst;
    std::uint64_t pc = 0;
    std::uint64_t seq = 0;
    // Producer seq numbers within the same context (scalar registers),
    // plus an optional older-store memory dependence.
    std::array<std::uint64_t, 3> src_seq{};
    unsigned nsrc = 0;
    std::uint64_t store_dep_seq = 0;
    Cycle complete_at = kNeverReady;
    enum class St : std::uint8_t {
      kWaiting,     // in window, not yet issued
      kIssued,      // executing; completes at complete_at
      kDone,        // result available
      kVecWait,     // vector op waiting for scalar operands / VIQ space
      kVecFlight,   // handed to the vector unit
    } state = St::kWaiting;
    bool is_load = false;
    bool is_store = false;
    bool is_barrier = false;
    bool is_membar = false;
    bool is_halt = false;
    bool is_vector = false;
    bool vec_scalar_dst = false;  // reduction: VU fills complete_at
    bool mispredicted = false;
    Addr mem_addr = 0;
    std::vector<Addr> vaddrs;
    unsigned vl = 0;
    bool barrier_arrived = false;
    std::uint64_t barrier_gen = 0;
  };

  struct FetchedInst {
    isa::Instruction inst;
    std::uint64_t pc = 0;
    std::vector<Addr> addrs;
    unsigned vl = 0;  // VL captured at functional execution
    bool mispredicted = false;
  };

  struct CtxState {
    bool active = false;
    bool done = false;
    ThreadAssignment work;
    func::ArchState arch;
    func::ExecContext ectx;

    std::deque<FetchedInst> fq;
    std::uint64_t fetch_pc = 0;
    bool fetch_halted = false;     // stop after HALT/BARRIER fetched
    bool fetch_after_barrier = false;
    Cycle fetch_stall_until = 0;   // I-miss or branch redirect
    std::uint64_t redirect_seq = 0;  // unresolved mispredicted branch
    Addr cur_fetch_line = ~Addr{0};

    std::deque<RobEntry> rob;
    std::uint64_t next_seq = 1;
    std::uint64_t head_seq = 1;
    std::array<std::uint64_t, kNumScalarRegs> rename{};  // reg -> seq
  };

  void do_fetch(Cycle now);
  void do_dispatch(Cycle now);
  void do_issue(Cycle now);
  void do_commit(Cycle now);

  void fetch_context(CtxState& c, unsigned budget, Cycle now);
  bool operand_ready(const CtxState& c, std::uint64_t seq, Cycle now) const;
  RobEntry* find_entry(CtxState& c, std::uint64_t seq);
  const RobEntry* find_entry(const CtxState& c, std::uint64_t seq) const;

  SuParams params_;
  func::Executor executor_;
  mem::L2Cache* l2_;
  vltctl::BarrierController* barrier_;
  vu::VectorUnit* vu_;
  audit::AuditSink* audit_ = nullptr;
  audit::Lockstep* lockstep_ = nullptr;

  mem::Cache l1i_;
  mem::Cache l1d_;
  BranchPredictor bpred_;
  std::vector<CtxState> ctxs_;
  unsigned rr_ = 0;  // SMT round-robin rotation

  std::uint64_t committed_scalar_ = 0;
  std::uint64_t committed_vector_ = 0;
  StatSet stats_;
  std::vector<Addr> addr_scratch_;
  std::deque<Cycle> store_buffer_;  // completion times of in-flight stores
};

}  // namespace vlt::su
