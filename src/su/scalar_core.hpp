// Out-of-order superscalar scalar unit (SU) with optional SMT.
//
// Matches the paper's Table 3 SU: wide fetch/issue/retire, register
// renaming, a unified 64-entry instruction window / ROB, 4 arithmetic
// units, 2 memory ports, and 16 KB 2-way L1 caches. The SU fetches both
// scalar and vector instructions; vector instructions occupy a ROB slot
// for precise exceptions and are handed to the vector unit once their
// scalar operands are ready (paper §2). A 2-way SU halves the window and
// functional units but keeps the caches (paper §6).
//
// Timing methodology: instructions are functionally executed in program
// order at fetch (there is no wrong-path fetch), and out-of-order timing
// is modeled with producer links, functional-unit occupancy, and in-order
// commit. A direction misprediction blocks fetch until the branch resolves
// plus a redirect penalty.
#pragma once

#include <atomic>
#include <deque>
#include <optional>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "common/types.hpp"
#include "func/executor.hpp"
#include "isa/program.hpp"
#include "mem/cache.hpp"
#include "mem/l2_cache.hpp"
#include "su/branch_pred.hpp"
#include "vltctl/barrier.hpp"
#include "vu/vector_unit.hpp"

namespace vlt::audit {
class Auditor;
class AuditSink;
class Lockstep;
}  // namespace vlt::audit

namespace vlt::su {

struct SuParams {
  unsigned width = 4;        // fetch/dispatch/issue/commit width
  unsigned rob_size = 64;    // instruction window and ROB (Table 3)
  unsigned arith_units = 4;  // shared int/fp datapaths (Table 3)
  unsigned mem_ports = 2;    // L1 data ports (Table 3)
  unsigned smt_contexts = 1;
  unsigned fetch_queue = 16;        // per context
  std::size_t l1_size = 16 * 1024;  // each of L1I / L1D (Table 3)
  unsigned l1_ways = 2;
  unsigned l1_data_latency = 2;
  unsigned redirect_penalty = 3;  // front-end refill after branch resolve
  unsigned bpred_bits = 12;
  bool l1_prefetch = false;  // the Alpha-class SUs of the era lack one
  unsigned store_buffer = 16;  // outstanding store misses before stalling
  unsigned vec_handoff_rate = 2;  // vector insts accepted by the VCL/cycle

  /// The paper's 2-way SU: identical caches, half the resources (§6).
  static SuParams two_way() {
    SuParams p;
    p.width = 2;
    p.rob_size = 32;
    p.arith_units = 2;
    p.mem_ports = 1;
    return p;
  }
};

/// Completion gate for partition-parallel ticking (MachineConfig::
/// host_threads). When several scalar units tick the same cycle on
/// separate host threads, each unit spin-waits — before its first
/// operation on a structure shared across units (the L2, the barrier
/// controller) — until every lower-index unit's tick for this cycle has
/// completed. Shared-structure operations therefore interleave in exactly
/// the serial tick order (unit 0, unit 1, ...), which is what makes the
/// parallel engine's results bit-identical to the serial one; everything
/// not behind the gate touches only per-unit or per-partition state.
struct TickGate {
  const std::atomic<std::uint8_t>* done = nullptr;  // per-unit tick-complete
  std::size_t self = 0;                             // this unit's index
  mutable bool passed = false;  // lower units stay complete once seen

  void wait() const {
    if (passed) return;
    for (std::size_t j = 0; j < self; ++j)
      while (done[j].load(std::memory_order_acquire) == 0) {
      }
    passed = true;
  }
};

/// Work a hardware context runs: a program plus its thread identity.
struct ThreadAssignment {
  const isa::Program* program = nullptr;
  ThreadId tid = 0;
  unsigned nthreads = 1;
  unsigned max_vl = kMaxVectorLength;
  unsigned vctx = 0;  // vector-unit partition this thread drives
};

class ScalarCore : public ckpt::Checkpointable {
 public:
  ScalarCore(const SuParams& p, func::FuncMemory& memory, mem::L2Cache& l2,
             vltctl::BarrierController& barrier, vu::VectorUnit* vu,
             audit::Auditor* auditor = nullptr);

  /// Binds `work` to SMT context `ctx` and resets its pipeline state.
  void start_context(unsigned ctx, const ThreadAssignment& work, Cycle now);

  /// Releases all contexts (between phases).
  void clear_contexts();

  void tick(Cycle now);

  /// Arms (or with nullptr disarms) the shared-structure completion gate
  /// for a partition-parallel tick. Serial ticking leaves it disarmed and
  /// pays only a null check per shared-structure operation.
  void set_tick_gate(const TickGate* gate) { gate_ = gate; }

  bool context_done(unsigned ctx) const;
  bool all_done() const;
  unsigned num_contexts() const { return static_cast<unsigned>(ctxs_.size()); }
  bool context_active(unsigned ctx) const { return ctxs_[ctx].active; }

  /// Contexts that are active and have not committed their HALT yet.
  /// O(1): maintained at start/clear/commit so the processor's phase loop
  /// can keep a running active-unit count instead of scanning.
  unsigned undone_contexts() const { return undone_; }

  /// Event-driven skip-ahead hook (docs/PERF.md): earliest cycle > now at
  /// which tick() could change state — a fetch stall expiring, a ROB
  /// entry's producers completing, a committable head, the store buffer
  /// draining for a barrier/membar, a known barrier release. Entries
  /// whose producers have not issued (complete_at == kNeverReady)
  /// contribute nothing: the producer's issue is itself an event, after
  /// which the processor recomputes. kNeverReady when the core cannot
  /// make progress without external input.
  ///
  /// `vec_blocked` (optional) accumulates, as a bitmask, the vctxs of
  /// ready vector instructions blocked only by a full VIQ slice. That
  /// handoff can succeed in the same cycle as the rename that vacates a
  /// slot (the vector unit ticks first), so the caller must tick this
  /// core in the same cycle as any vector-unit tick after which one of
  /// those slices has space — a wake-after-rename would land one cycle
  /// late and change reported timing. While the slices stay full a
  /// retry cannot succeed (scalar units only add VIQ entries).
  Cycle next_event(Cycle now, std::uint32_t* vec_blocked = nullptr) const;

  /// Sum of the vector unit's mutation counts over the partitions this
  /// core's active contexts drive. Vector-unit state this core reads
  /// (scalar_done completion cells, membar drain times, VIQ space for
  /// handoffs) is per-partition and moves only at rename or issue, so a
  /// cached next_event survives as long as this sum does (docs/PERF.md).
  /// 0 without a vector unit.
  std::uint64_t vu_watch_count() const {
    if (vu_ == nullptr) return 0;
    std::uint64_t n = 0;
    for (const CtxState& c : ctxs_)
      if (c.active) n += vu_->ctx_mutations(c.work.vctx);
    return n;
  }

  /// Replays the per-cycle SMT round-robin rotation for `cycles` skipped
  /// ticks; everything else about a skipped tick is a proven no-op.
  void skip_cycles(std::uint64_t cycles);

  /// One batched stretch of the event-driven engine (docs/PERF.md).
  struct BatchResult {
    Cycle stopped_at = 0;     // first cycle not covered by the batch
    std::uint64_t ticks = 0;  // ticks actually executed
    std::uint64_t scans = 0;  // next_event scans performed
    Cycle next_ev = 0;        // final scan's result (have_next only)
    std::uint32_t vec_blocked = 0;
    bool have_next = false;   // batch ended on its own scan: next_ev and
                              // vec_blocked are valid bounds at stopped_at
  };

  /// Ticks this core from `now` up to (but excluding) `until` without
  /// returning to the processor loop, stopping early at the first tick
  /// that touches shared state (a barrier arrival, a vector-unit
  /// dispatch, a context halting — all of which bump the corresponding
  /// mutation counters) so every other unit's cached next_event stays
  /// provably valid throughout. Empty ticks jump via skip_cycles to this
  /// core's own next event exactly as the outer loop would, so the
  /// executed-tick sequence — and therefore all timing and kStable
  /// statistics — is identical to the unbatched engine; only the
  /// per-cycle loop overhead (foreign-unit due checks, cache refreshes,
  /// event minimization) is elided. Caller guarantees no other unit has
  /// an event before `until` and that this core's bookkeeping is caught
  /// up through `now`.
  BatchResult tick_to(Cycle now, Cycle until);

  /// Monotonic count of pipeline actions (fetched, dispatched, issued,
  /// committed instructions; barrier arrivals). If a tick moved this, the
  /// core changed state at that cycle and `now + 1` is already a correct
  /// lower bound for its next event — the event-driven loop uses that to
  /// defer the full next_event() scan until a tick comes up empty
  /// (docs/PERF.md).
  std::uint64_t progress_count() const { return progress_; }

  const func::ArchState& arch_state(unsigned ctx) const {
    return ctxs_[ctx].arch;
  }

  // --- statistics ---
  std::uint64_t committed_scalar() const { return committed_scalar_.value(); }
  std::uint64_t committed_vector() const { return committed_vector_.value(); }
  const BranchPredictor& predictor() const { return bpred_; }
  const mem::Cache& l1d() const { return l1d_; }
  const mem::Cache& l1i() const { return l1i_; }

  /// Registers this core's instruments under `prefix` (e.g. "su0"): the
  /// L1 caches ("<prefix>.l1i.*" / ".l1d.*"), the branch predictor
  /// ("<prefix>.bpred.*"), commit counters, redirects, barrier arrivals,
  /// and prefetches. L1 demand misses are derivable (cache misses minus
  /// prefetches), so they carry no separate instrument.
  void register_stats(stats::Registry& registry, const std::string& prefix);

  /// Checkpointing (docs/CKPT.md): the L1 caches, the branch predictor,
  /// the SMT rotation, the store buffer, and every context's full
  /// front-end and window state (fetch queue, ROB, rename table, issue
  /// bookkeeping). Program pointers are rebound through
  /// Reader::program_ref; the commit/redirect counters are
  /// registry-restored; progress_ and the address pools are host-side
  /// and stay out of snapshots.
  void save_state(ckpt::Writer& w) const override;
  void restore_state(ckpt::Reader& r) override;

  /// Resolve the vector unit's scalar_done completion-cell pointers
  /// (which alias &RobEntry::complete_at) to and from stable (ctx, seq)
  /// coordinates, so the orchestrator can serialize them as references.
  bool locate_completion_cell(const Cycle* p, unsigned* ctx,
                              std::uint64_t* seq) const;
  Cycle* completion_cell(unsigned ctx, std::uint64_t seq);

 private:
  struct RobEntry {
    isa::Instruction inst;
    std::uint64_t pc = 0;
    std::uint64_t seq = 0;
    // Producer seq numbers within the same context (scalar registers),
    // plus an optional older-store memory dependence.
    std::array<std::uint64_t, 3> src_seq{};
    unsigned nsrc = 0;
    std::uint64_t store_dep_seq = 0;
    Cycle complete_at = kNeverReady;
    enum class St : std::uint8_t {
      kWaiting,     // in window, not yet issued
      kIssued,      // executing; completes at complete_at
      kDone,        // result available
      kVecWait,     // vector op waiting for scalar operands / VIQ space
      kVecFlight,   // handed to the vector unit
    } state = St::kWaiting;
    bool is_load = false;
    bool is_store = false;
    bool is_barrier = false;
    bool is_membar = false;
    bool is_halt = false;
    bool is_vector = false;
    bool vec_scalar_dst = false;  // reduction: VU fills complete_at
    bool mispredicted = false;
    Addr mem_addr = 0;
    std::vector<Addr> vaddrs;
    unsigned vl = 0;
    bool barrier_arrived = false;
    std::uint64_t barrier_gen = 0;
  };

  struct FetchedInst {
    isa::Instruction inst;
    std::uint64_t pc = 0;
    std::vector<Addr> addrs;
    unsigned vl = 0;  // VL captured at functional execution
    bool mispredicted = false;
  };

  struct CtxState {
    bool active = false;
    bool done = false;
    ThreadAssignment work;
    func::ArchState arch;
    func::ExecContext ectx;

    std::deque<FetchedInst> fq;
    std::uint64_t fetch_pc = 0;
    bool fetch_halted = false;     // stop after HALT/BARRIER fetched
    bool fetch_after_barrier = false;
    Cycle fetch_stall_until = 0;   // I-miss or branch redirect
    std::uint64_t redirect_seq = 0;  // unresolved mispredicted branch
    Addr cur_fetch_line = ~Addr{0};

    std::deque<RobEntry> rob;
    /// Entries still in kWaiting/kVecWait. Issue and event scans walk the
    /// ROB only until they have seen this many pending entries — the tail
    /// beyond the last pending one is all issued/done and can't act.
    unsigned unissued = 0;
    /// Seqs of the unissued entries, in age order — the dense-path issue
    /// walk iterates this instead of the whole ROB, so a window parked
    /// behind a long-latency head costs O(unissued) per cycle instead of
    /// O(rob). Appended at dispatch, compacted in place at issue;
    /// pending.size() == unissued always.
    std::vector<std::uint64_t> pending;
    /// (address, seq) of in-flight scalar stores, youngest last — the
    /// store-to-load dependence check scans this instead of the whole ROB.
    /// Entries older than head_seq are committed and pruned lazily.
    std::vector<std::pair<Addr, std::uint64_t>> inflight_stores;
    std::uint64_t next_seq = 1;
    std::uint64_t head_seq = 1;
    std::array<std::uint64_t, kNumScalarRegs> rename{};  // reg -> seq
  };

  void do_fetch(Cycle now);
  void do_dispatch(Cycle now);
  void do_issue(Cycle now);
  void do_commit(Cycle now);

  void fetch_context(CtxState& c, unsigned budget, Cycle now);
  bool operand_ready(const CtxState& c, std::uint64_t seq, Cycle now) const;
  /// Cycle all of `e`'s producers (and store dependence) are complete, or
  /// kNeverReady while any producer has not issued yet.
  Cycle ready_time(const CtxState& c, const RobEntry& e) const;
  RobEntry* find_entry(CtxState& c, std::uint64_t seq);
  const RobEntry* find_entry(const CtxState& c, std::uint64_t seq) const;

  SuParams params_;
  func::Executor executor_;
  mem::L2Cache* l2_;
  vltctl::BarrierController* barrier_;
  vu::VectorUnit* vu_;
  audit::AuditSink* audit_ = nullptr;
  audit::Lockstep* lockstep_ = nullptr;
  const TickGate* gate_ = nullptr;

  mem::Cache l1i_;
  mem::Cache l1d_;
  BranchPredictor bpred_;
  std::vector<CtxState> ctxs_;
  unsigned rr_ = 0;  // SMT round-robin rotation
  unsigned undone_ = 0;  // active contexts that have not committed HALT

  stats::Counter committed_scalar_;
  stats::Counter committed_vector_;
  stats::Counter redirects_;
  stats::Counter barriers_;
  stats::Counter l1d_prefetches_;
  std::uint64_t progress_ = 0;  // see progress_count()
  std::vector<Addr> addr_scratch_;
  /// Recycled FetchedInst address buffers: dispatch returns the buffers of
  /// non-vector instructions here and fetch reuses their capacity, so the
  /// fetch->dispatch path stops allocating in steady state.
  static constexpr std::size_t kAddrPoolCap = 8;
  std::vector<std::vector<Addr>> addr_pool_;
  std::deque<Cycle> store_buffer_;  // completion times of in-flight stores
};

}  // namespace vlt::su
