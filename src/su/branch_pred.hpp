// Gshare direction predictor with 2-bit saturating counters. Targets are
// assumed BTB/RAS-predicted (the standard simplification for this class of
// simulator); only conditional-direction mispredictions charge a redirect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "common/log.hpp"
#include "common/types.hpp"
#include "stats/stats.hpp"

namespace vlt::su {

class BranchPredictor : public ckpt::Checkpointable {
 public:
  explicit BranchPredictor(unsigned index_bits = 12);

  bool predict(Addr pc) const;
  void update(Addr pc, bool taken);

  std::uint64_t lookups() const { return lookups_.value(); }
  std::uint64_t mispredictions() const { return mispredicts_.value(); }

  /// Convenience: predict, update, and report correctness in one step
  /// (the functional outcome is known at fetch in this simulator).
  bool predict_and_update(Addr pc, bool taken) {
    lookups_.inc();
    bool correct = predict(pc) == taken;
    if (!correct) mispredicts_.inc();
    update(pc, taken);
    return correct;
  }

  /// Registers "<prefix>.lookups" and "<prefix>.mispredicts".
  void register_stats(stats::Registry& registry, const std::string& prefix) {
    registry.add_counter(prefix + ".lookups", &lookups_);
    registry.add_counter(prefix + ".mispredicts", &mispredicts_);
  }

  /// Checkpointing (docs/CKPT.md): counter table + global history. The
  /// lookup/mispredict counters are registry-restored.
  void save_state(ckpt::Writer& w) const override {
    w.blob8("table", table_.data(), table_.size());
    w.u64("history", history_);
  }
  void restore_state(ckpt::Reader& r) override {
    r.blob8("table", table_.data(), table_.size());
    history_ = r.u64("history");
  }

 private:
  std::size_t index(Addr pc) const {
    return (pc ^ history_) & mask_;
  }

  std::vector<std::uint8_t> table_;  // 2-bit counters
  std::uint64_t mask_;
  std::uint64_t history_ = 0;
  stats::Counter lookups_;
  stats::Counter mispredicts_;
};

}  // namespace vlt::su
