#include "su/scalar_core.hpp"

#include <algorithm>
#include <string>

#include "audit/auditor.hpp"
#include "common/log.hpp"

namespace vlt::su {

using isa::Instruction;
using isa::Opcode;

namespace {
/// Sentinel for "a mispredicted branch sits in the fetch queue but has no
/// ROB seq yet"; dispatch replaces it with the real sequence number.
constexpr std::uint64_t kPendingRedirect = ~std::uint64_t{0};
}  // namespace

ScalarCore::ScalarCore(const SuParams& p, func::FuncMemory& memory,
                       mem::L2Cache& l2, vltctl::BarrierController& barrier,
                       vu::VectorUnit* vu, audit::Auditor* auditor)
    : params_(p),
      executor_(memory),
      l2_(&l2),
      barrier_(&barrier),
      vu_(vu),
      l1i_(p.l1_size, p.l1_ways),
      l1d_(p.l1_size, p.l1_ways),
      bpred_(p.bpred_bits),
      ctxs_(p.smt_contexts) {
  if (auditor != nullptr) {
    audit_ = auditor->invariant_sink();
    lockstep_ = auditor->lockstep();
    l1i_.set_audit(audit_, "l1i");
    l1d_.set_audit(audit_, "l1d");
  }
}

void ScalarCore::start_context(unsigned ctx, const ThreadAssignment& work,
                               Cycle now) {
  VLT_CHECK(ctx < ctxs_.size(), "SMT context out of range");
  VLT_CHECK(work.program != nullptr && !work.program->empty(),
            "context started without a program");
  CtxState& c = ctxs_[ctx];
  if (c.active && !c.done) --undone_;
  c = CtxState{};
  c.active = true;
  c.work = work;
  c.ectx = func::ExecContext{work.tid, work.nthreads, work.max_vl,
                             work.program->isa()};
  c.fetch_stall_until = now;
  ++undone_;
}

void ScalarCore::clear_contexts() {
  for (CtxState& c : ctxs_) {
    VLT_CHECK(!c.active || c.done, "clearing a context that is still running");
    c = CtxState{};
  }
  undone_ = 0;
}

bool ScalarCore::context_done(unsigned ctx) const {
  const CtxState& c = ctxs_[ctx];
  return !c.active || c.done;
}

bool ScalarCore::all_done() const {
  for (unsigned i = 0; i < ctxs_.size(); ++i)
    if (!context_done(i)) return false;
  return true;
}

ScalarCore::RobEntry* ScalarCore::find_entry(CtxState& c, std::uint64_t seq) {
  if (seq < c.head_seq || seq >= c.next_seq) return nullptr;
  return &c.rob[seq - c.head_seq];
}

const ScalarCore::RobEntry* ScalarCore::find_entry(const CtxState& c,
                                                   std::uint64_t seq) const {
  if (seq < c.head_seq || seq >= c.next_seq) return nullptr;
  return &c.rob[seq - c.head_seq];
}

bool ScalarCore::operand_ready(const CtxState& c, std::uint64_t seq,
                               Cycle now) const {
  if (seq < c.head_seq) return true;  // producer already committed
  const RobEntry* e = find_entry(c, seq);
  VLT_CHECK(e != nullptr, "dangling producer link");
  return e->complete_at <= now;
}

void ScalarCore::tick(Cycle now) {
  do_commit(now);
  do_issue(now);
  do_dispatch(now);
  do_fetch(now);
  rr_ = (rr_ + 1) % std::max<unsigned>(1, params_.smt_contexts);

  if (audit_ != nullptr) {
    const unsigned n = static_cast<unsigned>(ctxs_.size());
    const unsigned rob_cap = std::max(4u, params_.rob_size / std::max(1u, n));
    for (unsigned i = 0; i < n; ++i) {
      audit_->expect(ctxs_[i].rob.size() <= rob_cap,
                     audit::Check::kQueueBounds, "su", now,
                     "ROB of context " + std::to_string(i) + " holds " +
                         std::to_string(ctxs_[i].rob.size()) +
                         " entries, capacity " + std::to_string(rob_cap));
      audit_->expect(ctxs_[i].fq.size() <= params_.fetch_queue,
                     audit::Check::kQueueBounds, "su", now,
                     "fetch queue of context " + std::to_string(i) +
                         " holds " + std::to_string(ctxs_[i].fq.size()) +
                         " entries, capacity " +
                         std::to_string(params_.fetch_queue));
    }
    audit_->expect(store_buffer_.size() <= params_.store_buffer,
                   audit::Check::kQueueBounds, "su", now,
                   "store buffer holds " +
                       std::to_string(store_buffer_.size()) +
                       " entries, capacity " +
                       std::to_string(params_.store_buffer));
  }
}

// ---------------------------------------------------------------- fetch ---

void ScalarCore::do_fetch(Cycle now) {
  unsigned budget = params_.width;
  const unsigned n = static_cast<unsigned>(ctxs_.size());
  for (unsigned k = 0; k < n && budget > 0; ++k) {
    CtxState& c = ctxs_[(rr_ + k) % n];
    if (!c.active || c.done || c.fetch_halted || c.fetch_after_barrier)
      continue;
    if (c.redirect_seq != 0) continue;  // unresolved misprediction
    if (now < c.fetch_stall_until) continue;
    fetch_context(c, budget, now);
  }
}

void ScalarCore::fetch_context(CtxState& c, unsigned budget, Cycle now) {
  const isa::Program& prog = *c.work.program;
  while (budget > 0 && c.fq.size() < params_.fetch_queue) {
    VLT_CHECK(c.fetch_pc < prog.size(),
              "fetch ran past the end of " + prog.name());

    // I-cache, line granularity. A miss stalls fetch until the fill.
    Addr iaddr = prog.inst_addr(c.fetch_pc);
    Addr line = iaddr / kLineBytes;
    if (line != c.cur_fetch_line) {
      c.cur_fetch_line = line;
      if (!l1i_.access(iaddr, false).hit) {
        if (gate_ != nullptr) gate_->wait();  // L2 is shared across units
        c.fetch_stall_until = l2_->access(iaddr, false, now + 1);
        return;
      }
    }

    const Instruction& inst = prog.at(c.fetch_pc);
    c.arch.set_pc(c.fetch_pc);
    func::ExecResult res = executor_.execute(inst, c.arch, c.ectx,
                                             addr_scratch_);
    if (lockstep_ != nullptr)
      lockstep_->on_execute(c.work.tid, inst, c.fetch_pc, res, addr_scratch_,
                            c.arch, now);

    FetchedInst fi;
    fi.inst = inst;
    fi.pc = c.fetch_pc;
    // Take the executed addresses without copying, and leave a recycled
    // buffer (capacity intact) as the next scratch so steady-state fetch
    // of scalar memory instructions allocates nothing.
    fi.addrs.swap(addr_scratch_);
    if (!addr_pool_.empty()) {
      addr_scratch_ = std::move(addr_pool_.back());
      addr_pool_.pop_back();
    }
    fi.vl = res.elems;

    // Direction prediction for conditional branches; unconditional jumps
    // are assumed BTB/RAS-predicted.
    bool conditional = inst.op == Opcode::kBeq || inst.op == Opcode::kBne ||
                       inst.op == Opcode::kBlt || inst.op == Opcode::kBge;
    if (conditional)
      fi.mispredicted = !bpred_.predict_and_update(iaddr, res.branch_taken);

    c.fq.push_back(std::move(fi));
    ++progress_;
    --budget;
    c.fetch_pc = res.next_pc;

    if (res.halted) {
      c.fetch_halted = true;
      return;
    }
    if (res.is_barrier) {
      // Memory consistency of the execute-at-fetch model: no instruction
      // beyond a barrier may execute before the barrier releases.
      c.fetch_after_barrier = true;
      return;
    }
    if (fi.mispredicted) {
      c.redirect_seq = kPendingRedirect;
      return;
    }
    if (res.branch_taken) return;  // taken branches end the fetch group
  }
}

// ------------------------------------------------------------- dispatch ---

void ScalarCore::do_dispatch(Cycle now) {
  (void)now;
  unsigned budget = params_.width;
  const unsigned n = static_cast<unsigned>(ctxs_.size());
  const unsigned rob_cap = std::max(4u, params_.rob_size / std::max(1u, n));
  for (unsigned k = 0; k < n && budget > 0; ++k) {
    CtxState& c = ctxs_[(rr_ + k) % n];
    if (!c.active || c.done) continue;
    // Drop committed stores from the dependence list (amortized O(1):
    // each store is pushed and erased once).
    if (!c.inflight_stores.empty() &&
        c.inflight_stores.front().second < c.head_seq) {
      auto it = c.inflight_stores.begin();
      while (it != c.inflight_stores.end() && it->second < c.head_seq) ++it;
      c.inflight_stores.erase(c.inflight_stores.begin(), it);
    }
    while (budget > 0 && !c.fq.empty() && c.rob.size() < rob_cap) {
      FetchedInst& fi = c.fq.front();
      RobEntry e;
      e.inst = fi.inst;
      e.pc = fi.pc;
      e.seq = c.next_seq;
      e.vl = fi.vl;
      e.mispredicted = fi.mispredicted;

      const Instruction& inst = fi.inst;
      e.is_vector = isa::is_vector(inst.op);
      e.is_load = !e.is_vector && isa::is_load(inst.op);
      e.is_store = !e.is_vector && isa::is_store(inst.op);
      e.is_barrier = inst.op == Opcode::kBarrier;
      e.is_membar = inst.op == Opcode::kMembar;
      e.is_halt = inst.op == Opcode::kHalt;
      if (!fi.addrs.empty()) e.mem_addr = fi.addrs[0];
      if (e.is_vector) {
        e.state = RobEntry::St::kVecWait;
        e.vaddrs = std::move(fi.addrs);
      }

      // Rename: link scalar source registers to in-flight producers.
      isa::RegList srcs = isa::scalar_src_regs(inst);
      for (unsigned i = 0; i < srcs.n; ++i) {
        std::uint64_t p = c.rename[srcs.r[i]];
        if (p >= c.head_seq && p != 0) e.src_seq[e.nsrc++] = p;
      }
      // Memory dependence: a load waits on the youngest older store to the
      // same address (store-to-load forwarding through the store buffer).
      if (e.is_load) {
        for (auto it = c.inflight_stores.rbegin();
             it != c.inflight_stores.rend(); ++it) {
          if (it->second < c.head_seq) break;  // everything older committed
          if (it->first == e.mem_addr) {
            e.store_dep_seq = it->second;
            break;
          }
        }
      }
      RegIdx rd;
      if (isa::scalar_dst_reg(inst, rd)) {
        c.rename[rd] = e.seq;
        if (e.is_vector) e.vec_scalar_dst = true;
      }

      if (e.mispredicted) c.redirect_seq = e.seq;
      if (e.is_store) c.inflight_stores.emplace_back(e.mem_addr, e.seq);

      c.pending.push_back(e.seq);
      c.rob.push_back(std::move(e));
      ++progress_;
      ++c.unissued;
      ++c.next_seq;
      // Non-vector address buffers die here; keep a few for fetch to reuse.
      if (fi.addrs.capacity() != 0 && addr_pool_.size() < kAddrPoolCap) {
        fi.addrs.clear();
        addr_pool_.push_back(std::move(fi.addrs));
      }
      c.fq.pop_front();
      --budget;
    }
  }
}

// ---------------------------------------------------------------- issue ---

void ScalarCore::do_issue(Cycle now) {
  unsigned arith_avail = params_.arith_units;
  unsigned mem_avail = params_.mem_ports;
  unsigned budget = params_.width;
  unsigned vec_handoff = params_.vec_handoff_rate;

  // The walk covers only the unissued entries (c.pending, age order) —
  // a window parked behind a long-latency head does not re-scan the
  // issued tail every cycle. Entries that stay unissued are compacted
  // back in place; entries that issue are dropped from the list.
  const unsigned n = static_cast<unsigned>(ctxs_.size());
  for (unsigned k = 0; k < n; ++k) {
    CtxState& c = ctxs_[(rr_ + k) % n];
    if (!c.active) continue;
    auto& pend = c.pending;
    const std::size_t np = pend.size();
    std::size_t w = 0;
    std::size_t r = 0;
    for (; r < np; ++r) {
      if (budget == 0) break;
      const std::uint64_t seq = pend[r];
      RobEntry& e = c.rob[seq - c.head_seq];

      if (e.state == RobEntry::St::kVecWait) {
        if (vec_handoff == 0) {
          pend[w++] = seq;
          continue;
        }
        // A full VIQ slice rejects the dispatch regardless of operands;
        // skip building one just to have try_dispatch bounce it.
        if (vu_ != nullptr && vu_->viq_full(c.work.vctx)) {
          pend[w++] = seq;
          continue;
        }
        bool ready = true;
        for (unsigned i = 0; i < e.nsrc; ++i)
          ready &= operand_ready(c, e.src_seq[i], now);
        if (!ready) {
          pend[w++] = seq;
          continue;
        }
        VLT_CHECK(vu_ != nullptr,
                  "vector instruction on a machine without a vector unit");
        vu::VecDispatch d;
        d.inst = e.inst;
        d.vl = e.vl;
        d.addrs = std::move(e.vaddrs);
        d.vctx = c.work.vctx;
        d.scalar_done = e.vec_scalar_dst ? &e.complete_at : nullptr;
        if (vu_->try_dispatch(std::move(d), now)) {
          e.state = RobEntry::St::kVecFlight;
          ++progress_;
          --c.unissued;
          if (!e.vec_scalar_dst) e.complete_at = now + 1;
          --vec_handoff;
          --budget;
        } else {
          e.vaddrs = std::move(d.addrs);  // VIQ full; retry next cycle
          pend[w++] = seq;
        }
        continue;
      }

      // Barriers and membars resolve only at the head of the ROB, when all
      // older work (including vector stores) has drained.
      if (e.is_barrier) {
        if (e.seq != c.head_seq) {
          pend[w++] = seq;
          continue;
        }
        while (!store_buffer_.empty() && store_buffer_.front() <= now)
          store_buffer_.pop_front();
        if (!store_buffer_.empty()) {  // stores must be visible
          pend[w++] = seq;
          continue;
        }
        // The barrier is shared across units, and a same-cycle arrival
        // from a lower-index unit can set the release time this poll must
        // observe.
        if (gate_ != nullptr) gate_->wait();
        if (!e.barrier_arrived) {
          e.barrier_gen = barrier_->arrive(now);
          e.barrier_arrived = true;
          ++progress_;
        }
        Cycle rel = barrier_->release_time(e.barrier_gen);
        if (rel == kNeverReady) {
          pend[w++] = seq;
          continue;
        }
        e.state = RobEntry::St::kIssued;
        ++progress_;
        --c.unissued;
        e.complete_at = std::max(rel, now);
        continue;  // does not consume an execution slot
      }
      if (e.is_membar) {
        if (e.seq != c.head_seq ||
            (vu_ != nullptr && !vu_->ctx_quiesced(c.work.vctx, now))) {
          pend[w++] = seq;
          continue;
        }
        while (!store_buffer_.empty() && store_buffer_.front() <= now)
          store_buffer_.pop_front();
        if (!store_buffer_.empty()) {  // drain buffered stores
          pend[w++] = seq;
          continue;
        }
        e.state = RobEntry::St::kIssued;
        ++progress_;
        --c.unissued;
        e.complete_at = now + 1;
        continue;
      }

      bool ready = true;
      for (unsigned i = 0; i < e.nsrc; ++i)
        ready &= operand_ready(c, e.src_seq[i], now);
      if (ready && e.store_dep_seq != 0)
        ready &= operand_ready(c, e.store_dep_seq, now);
      if (!ready) {
        pend[w++] = seq;
        continue;
      }

      const isa::OpInfo& info = isa::op_info(e.inst.op);
      bool needs_mem = e.is_load || e.is_store;
      if (needs_mem) {
        if (mem_avail == 0) {
          pend[w++] = seq;
          continue;
        }
      } else if (info.fu != isa::FuClass::kNone) {
        if (arith_avail == 0) {
          pend[w++] = seq;
          continue;
        }
      }

      if (e.is_load) {
        --mem_avail;
        mem::Cache::Result r = l1d_.access(e.mem_addr, false);
        if (r.hit) {
          e.complete_at = now + 1 + params_.l1_data_latency;
        } else {
          if (gate_ != nullptr) gate_->wait();  // L2 is shared across units
          if (r.writeback) (void)l2_->access(r.victim_addr, true, now + 1);
          e.complete_at = l2_->access(e.mem_addr, false, now + 1) +
                          params_.l1_data_latency;
          // Next-line prefetch: without it, streaming scalar loops pay the
          // full memory latency once per line, which no real SU of this
          // class would.
          if (params_.l1_prefetch) {
            Addr next = (e.mem_addr / kLineBytes + 1) * kLineBytes;
            if (!l1d_.probe(next)) {
              mem::Cache::Result pr = l1d_.access(next, false);
              if (pr.writeback)
                (void)l2_->access(pr.victim_addr, true, now + 1);
              (void)l2_->access(next, false, now + 1);
              l1d_prefetches_.inc();
            }
          }
        }
      } else if (e.is_store) {
        // Finite store buffer: a full buffer of outstanding store misses
        // stalls further stores (scattered writes throttle here).
        while (!store_buffer_.empty() && store_buffer_.front() <= now)
          store_buffer_.pop_front();
        if (store_buffer_.size() >= params_.store_buffer) {
          pend[w++] = seq;
          continue;
        }
        --mem_avail;
        mem::Cache::Result r = l1d_.access(e.mem_addr, true);
        Cycle drained = now + 2;
        if (!r.hit) {
          if (gate_ != nullptr) gate_->wait();  // L2 is shared across units
          if (r.writeback) (void)l2_->access(r.victim_addr, true, now + 1);
          drained = l2_->access(e.mem_addr, false, now + 1);  // line fill
        }
        store_buffer_.push_back(drained);
        e.complete_at = now + 1;  // retires through the store buffer
      } else {
        if (info.fu != isa::FuClass::kNone) --arith_avail;
        e.complete_at = now + info.latency;
      }
      e.state = RobEntry::St::kIssued;
      ++progress_;
      --c.unissued;
      --budget;

      // A resolved misprediction restarts fetch after the redirect penalty.
      if (e.mispredicted) {
        c.fetch_stall_until =
            std::max(c.fetch_stall_until,
                     e.complete_at + params_.redirect_penalty);
        c.redirect_seq = 0;
        redirects_.inc();
      }
    }
    if (r < np) {
      // Issue width exhausted mid-walk: everything not yet visited stays
      // pending, in order.
      while (r < np) pend[w++] = pend[r++];
      pend.resize(w);
      return;
    }
    pend.resize(w);
  }
}

// --------------------------------------------------------------- commit ---

void ScalarCore::do_commit(Cycle now) {
  unsigned budget = params_.width;
  const unsigned n = static_cast<unsigned>(ctxs_.size());
  for (unsigned k = 0; k < n && budget > 0; ++k) {
    CtxState& c = ctxs_[(rr_ + k) % n];
    if (!c.active || c.done) continue;
    while (budget > 0 && !c.rob.empty()) {
      RobEntry& e = c.rob.front();
      bool committable = false;
      switch (e.state) {
        case RobEntry::St::kDone:
          committable = true;
          break;
        case RobEntry::St::kIssued:
          committable = e.complete_at <= now;
          break;
        case RobEntry::St::kVecFlight:
          committable = e.complete_at <= now;
          break;
        default:
          break;
      }
      if (!committable) break;

      if (e.is_vector)
        committed_vector_.inc();
      else
        committed_scalar_.inc();
      if (e.is_barrier) {
        c.fetch_after_barrier = false;
        barriers_.inc();
      }
      if (e.is_halt) {
        c.done = true;
        --undone_;
      }

      c.rob.pop_front();
      ++c.head_seq;
      ++progress_;
      --budget;
      if (c.done) break;
    }
  }
}

// ----------------------------------------------------------- skip-ahead ---

Cycle ScalarCore::ready_time(const CtxState& c, const RobEntry& e) const {
  Cycle t = 0;
  auto dep = [&](std::uint64_t seq) -> bool {
    if (seq < c.head_seq) return true;  // producer already committed
    const RobEntry* p = find_entry(c, seq);
    if (p == nullptr || p->complete_at == kNeverReady) return false;
    t = std::max(t, p->complete_at);
    return true;
  };
  for (unsigned i = 0; i < e.nsrc; ++i)
    if (!dep(e.src_seq[i])) return kNeverReady;
  if (e.store_dep_seq != 0 && !dep(e.store_dep_seq)) return kNeverReady;
  return t;
}

Cycle ScalarCore::next_event(Cycle now, std::uint32_t* vec_blocked) const {
  Cycle ev = kNeverReady;
  auto consider = [&ev](Cycle t) {
    if (t < ev) ev = t;
  };
  const unsigned n = static_cast<unsigned>(ctxs_.size());
  const unsigned rob_cap = std::max(4u, params_.rob_size / std::max(1u, n));

  // The store buffer drains front-first: one slot frees when the front
  // entry becomes visible, and the whole buffer is empty once the latest
  // entry is (barrier/membar drain condition).
  Cycle sb_front = store_buffer_.empty() ? 0 : store_buffer_.front();
  Cycle sb_empty = 0;
  for (Cycle t : store_buffer_) sb_empty = std::max(sb_empty, t);

  for (const CtxState& c : ctxs_) {
    if (!c.active || c.done) continue;

    // Fetch: eligible as soon as any stall expires (I-miss, redirect
    // penalty). Gated states (halt, post-barrier, unresolved mispredict,
    // full fetch queue) are woken by the commit/dispatch events below.
    if (!c.fetch_halted && !c.fetch_after_barrier && c.redirect_seq == 0 &&
        c.fq.size() < params_.fetch_queue)
      consider(std::max(now + 1, c.fetch_stall_until));

    if (!c.fq.empty() && c.rob.size() < rob_cap) consider(now + 1);

    // Scan bounded by the pending count: the tail beyond the last
    // kWaiting/kVecWait entry is all issued/done, and (below) non-head
    // issued entries contribute no candidates anyway.
    unsigned pending = c.unissued;
    for (const RobEntry& e : c.rob) {
      if (pending == 0 && e.seq != c.head_seq) break;
      if (ev <= now + 1) return now + 1;
      switch (e.state) {
        case RobEntry::St::kDone:
          if (e.seq == c.head_seq) consider(now + 1);
          break;
        case RobEntry::St::kIssued:
        case RobEntry::St::kVecFlight:
          // Only the head needs a completion event. A non-head entry's
          // completion enables exactly two things: dependants, whose own
          // ready_time candidates below carry the same cycle, and the
          // in-order commit, which only the head can start. (If older
          // entries commit first, the recompute after that tick sees
          // this entry as the new head.)
          if (e.seq != c.head_seq) break;
          if (e.complete_at == kNeverReady) break;  // VU fills this in
          if (e.complete_at > now)
            consider(e.complete_at);  // wakes the commit
          else
            consider(now + 1);  // committable head (commit width ran out)
          break;
        case RobEntry::St::kWaiting: {
          --pending;
          if (e.is_barrier || e.is_membar) {
            if (e.seq != c.head_seq) break;  // woken by the head's commit
            if (e.is_barrier && e.barrier_arrived) {
              Cycle rel = barrier_->release_time(e.barrier_gen);
              // kNeverReady: the releasing arrival happens inside another
              // core's executed tick, which forces a recompute.
              //
              // Wake at rel - 1, not rel: the per-cycle engine promotes a
              // waiting barrier to issued (complete_at = rel) on its first
              // poll after the release is scheduled, so the commit lands
              // exactly on rel. A core that stays parked until rel would
              // spend its rel tick on the promotion and commit one cycle
              // late — the extra wake-up tick buys the promotion back.
              if (rel != kNeverReady)
                consider(std::max(now + 1, rel - 1));
              break;
            }
            Cycle t = std::max(now + 1, sb_empty);
            if (e.is_membar && vu_ != nullptr) {
              Cycle q = vu_->ctx_drain_time(c.work.vctx);
              if (q == kNeverReady) break;  // woken by vector-unit issues
              t = std::max(t, q);
            }
            consider(t);
            break;
          }
          Cycle ready = ready_time(c, e);
          if (ready == kNeverReady) break;
          if (e.is_store && ready <= now &&
              store_buffer_.size() >= params_.store_buffer)
            consider(std::max(now + 1, sb_front));
          else
            consider(std::max(now + 1, ready));
          break;
        }
        case RobEntry::St::kVecWait: {
          --pending;
          Cycle ready = ready_time(c, e);
          if (ready == kNeverReady) break;
          // A ready vector op blocked only by a full VIQ slice cannot
          // move until the VCL renames a slot free, so it contributes no
          // per-cycle retry; the vec_blocked flag makes the caller tick
          // this core alongside the vector unit instead (the handoff can
          // succeed in the same cycle as the vacating rename). With
          // space (or a future ready time) the handoff is a real event.
          if (ready <= now && vu_ != nullptr && vu_->viq_full(c.work.vctx)) {
            if (vec_blocked != nullptr)
              *vec_blocked |= 1u << (c.work.vctx & 31u);
            break;
          }
          consider(std::max(now + 1, ready));
          break;
        }
      }
    }
  }
  return ev;
}

void ScalarCore::skip_cycles(std::uint64_t cycles) {
  const unsigned n = std::max<unsigned>(1, params_.smt_contexts);
  rr_ = static_cast<unsigned>((rr_ + cycles) % n);
}

ScalarCore::BatchResult ScalarCore::tick_to(Cycle now, Cycle until) {
  BatchResult r;
  r.stopped_at = now;
  // Baselines for the shared structures this core can move. Any change is
  // attributable to this batch's own ticks (nothing else runs), and the
  // batch stops at the cycle after it so the processor can refresh the
  // other units' caches, exactly as its per-cycle loop would.
  const std::uint64_t bar0 = barrier_->mutation_count();
  const std::uint64_t vu0 = vu_ != nullptr ? vu_->mutation_count() : 0;
  const unsigned undone0 = undone_;
  Cycle c = now;
  for (;;) {
    const std::uint64_t prog = progress_;
    tick(c);
    ++r.ticks;
    if (barrier_->mutation_count() != bar0 || undone_ != undone0 ||
        (vu_ != nullptr && vu_->mutation_count() != vu0)) {
      r.stopped_at = c + 1;
      return r;
    }
    if (c + 1 >= until) {
      r.stopped_at = until;
      return r;
    }
    // Dense-streak shortcut: a tick that performed pipeline work makes
    // c + 1 a correct lower bound without an event scan (progress_count).
    if (progress_ != prog) {
      ++c;
      continue;
    }
    std::uint32_t blocked = 0;
    const Cycle ev = next_event(c, &blocked);
    ++r.scans;
    if (ev >= until) {
      skip_cycles(until - (c + 1));
      r.stopped_at = until;
      r.next_ev = ev;
      r.vec_blocked = blocked;
      r.have_next = true;
      return r;
    }
    skip_cycles(ev - (c + 1));
    c = ev;
  }
}

void ScalarCore::register_stats(stats::Registry& registry,
                                const std::string& prefix) {
  l1i_.register_stats(registry, prefix + ".l1i");
  l1d_.register_stats(registry, prefix + ".l1d");
  bpred_.register_stats(registry, prefix + ".bpred");
  registry.add_counter(prefix + ".commit_scalar", &committed_scalar_);
  registry.add_counter(prefix + ".commit_vector", &committed_vector_);
  registry.add_counter(prefix + ".redirects", &redirects_);
  registry.add_counter(prefix + ".barriers", &barriers_);
  registry.add_counter(prefix + ".l1d_prefetches", &l1d_prefetches_);
}

// --- checkpointing (docs/CKPT.md) ---

using ckpt::inst_word0;
using ckpt::inst_word1;
using ckpt::unpack_inst;

void ScalarCore::save_state(ckpt::Writer& w) const {
  w.u64("rr", rr_);
  w.u64("undone", undone_);
  std::vector<std::uint64_t> sbuf(store_buffer_.begin(), store_buffer_.end());
  w.blob64("store_buffer", sbuf.data(), sbuf.size());
  w.push("l1i");
  l1i_.save_state(w);
  w.pop();
  w.push("l1d");
  l1d_.save_state(w);
  w.pop();
  w.push("bpred");
  bpred_.save_state(w);
  w.pop();
  w.u64("num_ctxs", ctxs_.size());
  for (std::size_t i = 0; i < ctxs_.size(); ++i) {
    const CtxState& c = ctxs_[i];
    w.push("ctx" + std::to_string(i));
    w.boolean("active", c.active);
    w.boolean("done", c.done);
    w.u64("tid", c.work.tid);
    w.u64("nthreads", c.work.nthreads);
    w.u64("max_vl", c.work.max_vl);
    w.u64("vctx", c.work.vctx);
    if (c.active) {
      w.push("arch");
      c.arch.save_state(w);
      w.pop();
      Json fq = Json::array();
      for (const FetchedInst& f : c.fq) {
        std::vector<std::uint64_t> rec = {inst_word0(f.inst),
                                          inst_word1(f.inst),
                                          f.pc,
                                          f.vl,
                                          f.mispredicted ? 1u : 0u,
                                          f.addrs.size()};
        rec.insert(rec.end(), f.addrs.begin(), f.addrs.end());
        fq.push_back(ckpt::blob64_json(rec));
      }
      w.set("fq", std::move(fq));
      w.u64("fetch_pc", c.fetch_pc);
      w.boolean("fetch_halted", c.fetch_halted);
      w.boolean("fetch_after_barrier", c.fetch_after_barrier);
      w.u64("fetch_stall_until", c.fetch_stall_until);
      w.u64("redirect_seq", c.redirect_seq);
      w.u64("cur_fetch_line", c.cur_fetch_line);
      Json rob = Json::array();
      for (const RobEntry& e : c.rob) {
        std::uint64_t flags =
            (e.is_load ? 1u : 0u) | (e.is_store ? 1u << 1 : 0u) |
            (e.is_barrier ? 1u << 2 : 0u) | (e.is_membar ? 1u << 3 : 0u) |
            (e.is_halt ? 1u << 4 : 0u) | (e.is_vector ? 1u << 5 : 0u) |
            (e.vec_scalar_dst ? 1u << 6 : 0u) |
            (e.mispredicted ? 1u << 7 : 0u) |
            (e.barrier_arrived ? 1u << 8 : 0u);
        std::vector<std::uint64_t> rec = {inst_word0(e.inst),
                                          inst_word1(e.inst),
                                          e.pc,
                                          e.seq,
                                          e.src_seq[0],
                                          e.src_seq[1],
                                          e.src_seq[2],
                                          e.nsrc,
                                          e.store_dep_seq,
                                          e.complete_at,
                                          static_cast<std::uint64_t>(e.state),
                                          flags,
                                          e.mem_addr,
                                          e.vl,
                                          e.barrier_gen,
                                          e.vaddrs.size()};
        rec.insert(rec.end(), e.vaddrs.begin(), e.vaddrs.end());
        rob.push_back(ckpt::blob64_json(rec));
      }
      w.set("rob", std::move(rob));
      w.u64("unissued", c.unissued);
      w.blob64("pending", c.pending.data(), c.pending.size());
      std::vector<std::uint64_t> stores;
      stores.reserve(c.inflight_stores.size() * 2);
      for (const auto& [addr, seq] : c.inflight_stores) {
        stores.push_back(addr);
        stores.push_back(seq);
      }
      w.blob64("inflight_stores", stores.data(), stores.size());
      w.u64("next_seq", c.next_seq);
      w.u64("head_seq", c.head_seq);
      w.blob64("rename", c.rename.data(), c.rename.size());
    }
    w.pop();
  }
}

void ScalarCore::restore_state(ckpt::Reader& r) {
  rr_ = static_cast<unsigned>(r.u64("rr"));
  undone_ = static_cast<unsigned>(r.u64("undone"));
  std::vector<std::uint64_t> sbuf = r.blob64("store_buffer");
  store_buffer_.assign(sbuf.begin(), sbuf.end());
  r.push("l1i");
  l1i_.restore_state(r);
  r.pop();
  r.push("l1d");
  l1d_.restore_state(r);
  r.pop();
  r.push("bpred");
  bpred_.restore_state(r);
  r.pop();
  VLT_CHECK(r.u64("num_ctxs") == ctxs_.size(),
            "checkpoint SMT context count does not match this machine");
  for (std::size_t i = 0; i < ctxs_.size(); ++i) {
    CtxState& c = ctxs_[i];
    c = CtxState{};
    r.push("ctx" + std::to_string(i));
    c.active = r.boolean("active");
    c.done = r.boolean("done");
    c.work.tid = static_cast<ThreadId>(r.u64("tid"));
    c.work.nthreads = static_cast<unsigned>(r.u64("nthreads"));
    c.work.max_vl = static_cast<unsigned>(r.u64("max_vl"));
    c.work.vctx = static_cast<unsigned>(r.u64("vctx"));
    if (c.active) {
      c.work.program = r.program_ref(c.work.tid);
      VLT_CHECK(c.work.program != nullptr && !c.work.program->empty(),
                "checkpoint restore could not rebind a context's program");
      c.ectx = func::ExecContext{c.work.tid, c.work.nthreads, c.work.max_vl,
                                 c.work.program->isa()};
      r.push("arch");
      c.arch.restore_state(r);
      r.pop();
      for (const Json& jf : r.get("fq").items()) {
        std::vector<std::uint64_t> rec = ckpt::blob64_words(jf, "fq");
        if (rec.size() < 6 || rec.size() != 6 + rec[5])
          VLT_FAIL(ErrorKind::kIo, "checkpoint fetch-queue record malformed");
        FetchedInst f;
        f.inst = unpack_inst(rec[0], rec[1]);
        f.pc = rec[2];
        f.vl = static_cast<unsigned>(rec[3]);
        f.mispredicted = rec[4] != 0;
        f.addrs.assign(rec.begin() + 6, rec.end());
        c.fq.push_back(std::move(f));
      }
      c.fetch_pc = r.u64("fetch_pc");
      c.fetch_halted = r.boolean("fetch_halted");
      c.fetch_after_barrier = r.boolean("fetch_after_barrier");
      c.fetch_stall_until = r.u64("fetch_stall_until");
      c.redirect_seq = r.u64("redirect_seq");
      c.cur_fetch_line = r.u64("cur_fetch_line");
      for (const Json& je : r.get("rob").items()) {
        std::vector<std::uint64_t> rec = ckpt::blob64_words(je, "rob");
        if (rec.size() < 16 || rec.size() != 16 + rec[15])
          VLT_FAIL(ErrorKind::kIo, "checkpoint ROB record malformed");
        RobEntry e;
        e.inst = unpack_inst(rec[0], rec[1]);
        e.pc = rec[2];
        e.seq = rec[3];
        e.src_seq = {rec[4], rec[5], rec[6]};
        e.nsrc = static_cast<unsigned>(rec[7]);
        e.store_dep_seq = rec[8];
        e.complete_at = rec[9];
        VLT_CHECK(rec[10] <= static_cast<std::uint64_t>(RobEntry::St::kVecFlight),
                  "checkpoint ROB entry state out of range");
        e.state = static_cast<RobEntry::St>(rec[10]);
        std::uint64_t flags = rec[11];
        e.is_load = (flags & 1u) != 0;
        e.is_store = (flags & (1u << 1)) != 0;
        e.is_barrier = (flags & (1u << 2)) != 0;
        e.is_membar = (flags & (1u << 3)) != 0;
        e.is_halt = (flags & (1u << 4)) != 0;
        e.is_vector = (flags & (1u << 5)) != 0;
        e.vec_scalar_dst = (flags & (1u << 6)) != 0;
        e.mispredicted = (flags & (1u << 7)) != 0;
        e.barrier_arrived = (flags & (1u << 8)) != 0;
        e.mem_addr = rec[12];
        e.vl = static_cast<unsigned>(rec[13]);
        e.barrier_gen = rec[14];
        e.vaddrs.assign(rec.begin() + 16, rec.end());
        c.rob.push_back(std::move(e));
      }
      c.unissued = static_cast<unsigned>(r.u64("unissued"));
      c.pending = r.blob64("pending");
      std::vector<std::uint64_t> stores = r.blob64("inflight_stores");
      VLT_CHECK(stores.size() % 2 == 0,
                "checkpoint inflight-store table must hold pairs");
      for (std::size_t k = 0; k < stores.size(); k += 2)
        c.inflight_stores.emplace_back(stores[k], stores[k + 1]);
      c.next_seq = r.u64("next_seq");
      c.head_seq = r.u64("head_seq");
      r.blob64("rename", c.rename.data(), c.rename.size());
      VLT_CHECK(c.rob.size() == c.next_seq - c.head_seq,
                "checkpoint ROB occupancy disagrees with its seq window");
      VLT_CHECK(c.pending.size() == c.unissued,
                "checkpoint pending list disagrees with unissued count");
    }
    r.pop();
  }
}

bool ScalarCore::locate_completion_cell(const Cycle* p, unsigned* ctx,
                                        std::uint64_t* seq) const {
  for (std::size_t i = 0; i < ctxs_.size(); ++i)
    for (const RobEntry& e : ctxs_[i].rob)
      if (&e.complete_at == p) {
        *ctx = static_cast<unsigned>(i);
        *seq = e.seq;
        return true;
      }
  return false;
}

Cycle* ScalarCore::completion_cell(unsigned ctx, std::uint64_t seq) {
  VLT_CHECK(ctx < ctxs_.size(), "completion-cell context out of range");
  RobEntry* e = find_entry(ctxs_[ctx], seq);
  VLT_CHECK(e != nullptr, "completion-cell seq not in the ROB");
  return &e->complete_at;
}

}  // namespace vlt::su
