#include "su/branch_pred.hpp"

namespace vlt::su {

BranchPredictor::BranchPredictor(unsigned index_bits)
    : table_(std::size_t{1} << index_bits, 2),  // weakly taken
      mask_((std::uint64_t{1} << index_bits) - 1) {}

bool BranchPredictor::predict(Addr pc) const {
  return table_[index(pc)] >= 2;
}

void BranchPredictor::update(Addr pc, bool taken) {
  std::uint8_t& ctr = table_[index(pc)];
  if (taken && ctr < 3) ++ctr;
  if (!taken && ctr > 0) --ctr;
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask_;
}

}  // namespace vlt::su
