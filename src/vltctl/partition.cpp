#include "vltctl/partition.hpp"

#include "common/log.hpp"

namespace vlt::vltctl {

LanePartition make_partition(unsigned lanes, unsigned nthreads) {
  VLT_CHECK(nthreads >= 1 && lanes >= 1, "empty partition");
  VLT_CHECK(lanes % nthreads == 0,
            "thread count must divide the lane count evenly");
  LanePartition p;
  p.nthreads = nthreads;
  p.lanes_per_thread = lanes / nthreads;
  // The per-lane register file stores kMaxVectorLength / lanes elements of
  // each architectural register; a thread owning lanes_per_thread lanes can
  // hold vectors of that many elements per register without new storage.
  p.max_vl_per_thread = kMaxVectorLength / nthreads;
  // Conservation: the partition must cover every lane exactly once and the
  // register file must not grow — per-thread VL times the thread count may
  // not exceed the architectural maximum.
  VLT_CHECK(p.lanes_per_thread * p.nthreads == lanes,
            "lane partition does not cover the lane array exactly");
  VLT_CHECK(p.max_vl_per_thread * p.nthreads <= kMaxVectorLength,
            "partition max VL exceeds the register file capacity");
  return p;
}

std::vector<LanePartition> supported_partitions(unsigned lanes) {
  std::vector<LanePartition> out;
  for (unsigned n = 1; n <= lanes; ++n)
    if (lanes % n == 0) out.push_back(make_partition(lanes, n));
  return out;
}

std::vector<unsigned> lane_elements(unsigned lane, unsigned lanes,
                                    unsigned vl) {
  std::vector<unsigned> out;
  for (unsigned e = lane; e < vl; e += lanes) out.push_back(e);
  return out;
}

}  // namespace vlt::vltctl
