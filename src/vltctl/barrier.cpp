#include "vltctl/barrier.hpp"

#include "audit/sink.hpp"
#include "common/log.hpp"

namespace vlt::vltctl {

void BarrierController::begin_phase(unsigned nthreads,
                                    unsigned release_latency) {
  for (const Gen& g : gens_)
    VLT_CHECK(g.arrivals == 0 || g.arrivals == nthreads_,
              "phase ended with a half-full barrier generation");
  base_gen_ += gens_.size();
  gens_.clear();
  first_open_ = 0;
  first_live_ = 0;
  ++mutations_;
  nthreads_ = nthreads;
  release_latency_ = release_latency;
  phase_open_ = true;
}

std::uint64_t BarrierController::arrive(Cycle now) {
  VLT_CHECK(phase_open_, "barrier arrival before begin_phase");
  ++mutations_;
  // Find the first generation this caller has not filled yet: arrivals are
  // one-per-thread-per-generation, so the first non-released generation
  // with capacity is the right one. Full generations never change, so the
  // scan starts at the cursor, not at the beginning of the phase.
  while (first_open_ < gens_.size() &&
         gens_[first_open_].arrivals >= nthreads_)
    ++first_open_;
  for (std::size_t i = first_open_; i < gens_.size(); ++i) {
    Gen& g = gens_[i];
    if (g.arrivals < nthreads_) {
      ++g.arrivals;
      arrivals_.inc();
      if (trace_ != nullptr)
        trace_->record(stats::TraceEvent::Kind::kBarrierArrive, now, 0,
                       base_gen_ + i);
      if (now > g.last_arrival) g.last_arrival = now;
      if (g.arrivals == nthreads_) {
        g.release = g.last_arrival + release_latency_;
        generations_.inc();
        if (trace_ != nullptr)
          trace_->record(stats::TraceEvent::Kind::kBarrierRelease, g.release,
                         0, base_gen_ + i);
      }
      if (audit_ != nullptr) {
        audit_->expect(g.arrivals <= nthreads_, audit::Check::kBarrierProtocol,
                       "barrier", now,
                       "generation " + std::to_string(base_gen_ + i) +
                           " overfilled: " + std::to_string(g.arrivals) +
                           " arrivals for " + std::to_string(nthreads_) +
                           " threads");
        audit_->expect(g.release == kNeverReady || g.release >= g.last_arrival,
                       audit::Check::kBarrierProtocol, "barrier", now,
                       "release precedes the last arrival in generation " +
                           std::to_string(base_gen_ + i));
        audit_->expect(now >= g.first_arrival,
                       audit::Check::kBarrierProtocol, "barrier", now,
                       "arrival times not monotone within generation " +
                           std::to_string(base_gen_ + i));
      }
      return base_gen_ + i;
    }
  }
  gens_.push_back(Gen{1, now, now, nthreads_ == 1 ? now + release_latency_
                                                  : kNeverReady});
  arrivals_.inc();
  const std::uint64_t gen = base_gen_ + gens_.size() - 1;
  if (trace_ != nullptr)
    trace_->record(stats::TraceEvent::Kind::kBarrierArrive, now, 0, gen);
  if (nthreads_ == 1) {
    // A one-thread barrier fills on arrival: release scheduled immediately.
    generations_.inc();
    if (trace_ != nullptr)
      trace_->record(stats::TraceEvent::Kind::kBarrierRelease,
                     gens_.back().release, 0, gen);
  }
  return gen;
}

Cycle BarrierController::release_time(std::uint64_t generation) const {
  VLT_CHECK(generation >= base_gen_, "barrier generation from an old phase");
  std::size_t idx = generation - base_gen_;
  VLT_CHECK(idx < gens_.size(), "unknown barrier generation");
  return gens_[idx].release;
}

Cycle BarrierController::next_event(Cycle now) const {
  // A generation already released at or before `now` can never be a
  // future event again (release times are final and `now` is monotonic
  // across calls), so drop it from all later scans. The cursor stops at
  // the first pending generation, whose release may still be scheduled.
  while (first_live_ < gens_.size() &&
         gens_[first_live_].release != kNeverReady &&
         gens_[first_live_].release <= now)
    ++first_live_;
  Cycle ev = kNeverReady;
  for (std::size_t i = first_live_; i < gens_.size(); ++i) {
    const Gen& g = gens_[i];
    if (g.release != kNeverReady && g.release > now && g.release < ev)
      ev = g.release;
  }
  return ev;
}

std::uint64_t BarrierController::generations_completed() const {
  std::uint64_t n = 0;
  for (const Gen& g : gens_)
    if (g.arrivals == nthreads_) ++n;
  return n;
}

void BarrierController::register_stats(stats::Registry& registry,
                                       const std::string& prefix) {
  registry.add_counter(prefix + ".arrivals", &arrivals_);
  registry.add_counter(prefix + ".generations", &generations_);
}

void BarrierController::save_state(ckpt::Writer& w) const {
  w.u64("nthreads", nthreads_);
  w.u64("release_latency", release_latency_);
  w.boolean("phase_open", phase_open_);
  w.u64("base_gen", base_gen_);
  std::vector<std::uint64_t> flat;
  flat.reserve(gens_.size() * 4);
  for (const Gen& g : gens_) {
    flat.push_back(g.arrivals);
    flat.push_back(g.first_arrival);
    flat.push_back(g.last_arrival);
    flat.push_back(g.release);
  }
  w.blob64("gens", flat.data(), flat.size());
}

void BarrierController::restore_state(ckpt::Reader& r) {
  nthreads_ = static_cast<unsigned>(r.u64("nthreads"));
  release_latency_ = static_cast<unsigned>(r.u64("release_latency"));
  phase_open_ = r.boolean("phase_open");
  base_gen_ = r.u64("base_gen");
  std::vector<std::uint64_t> flat = r.blob64("gens");
  VLT_CHECK(flat.size() % 4 == 0, "barrier generation table must hold quads");
  gens_.clear();
  for (std::size_t i = 0; i < flat.size(); i += 4)
    gens_.push_back(Gen{static_cast<unsigned>(flat[i]), flat[i + 1],
                        flat[i + 2], flat[i + 3]});
  first_open_ = 0;
  first_live_ = 0;
  mutations_ = 0;
}

BarrierController::PendingGen BarrierController::oldest_pending() const {
  for (std::size_t i = 0; i < gens_.size(); ++i) {
    const Gen& g = gens_[i];
    if (g.arrivals > 0 && g.arrivals < nthreads_)
      return {true, base_gen_ + i, g.arrivals, nthreads_, g.first_arrival};
  }
  return {};
}

}  // namespace vlt::vltctl
