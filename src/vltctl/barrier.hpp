// Generation-counted barrier used by SPMD phases (radix, ocean, …).
//
// A core "arrives" when its barrier instruction reaches the head of the
// reorder buffer / scoreboard (all older work complete) and learns the
// release cycle once every thread of the phase has arrived. The release
// charge models the cost of the memory-based barrier the paper's thread
// library would use.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace vlt::vltctl {

class BarrierController {
 public:
  /// Starts a new phase with `nthreads` participants; `release_latency`
  /// is charged from the last arrival to the release.
  void begin_phase(unsigned nthreads, unsigned release_latency);

  /// Registers an arrival at cycle `now`; returns the generation index the
  /// caller should poll with release_time().
  std::uint64_t arrive(Cycle now);

  /// Release cycle of `generation`, or kNeverReady while threads are still
  /// missing.
  Cycle release_time(std::uint64_t generation) const;

  std::uint64_t generations_completed() const;

 private:
  struct Gen {
    unsigned arrivals = 0;
    Cycle last_arrival = 0;
    Cycle release = kNeverReady;
  };

  unsigned nthreads_ = 1;
  unsigned release_latency_ = 0;
  std::uint64_t base_gen_ = 0;  // generations retired in earlier phases
  std::vector<Gen> gens_;
};

}  // namespace vlt::vltctl
