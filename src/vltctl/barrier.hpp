// Generation-counted barrier used by SPMD phases (radix, ocean, …).
//
// A core "arrives" when its barrier instruction reaches the head of the
// reorder buffer / scoreboard (all older work complete) and learns the
// release cycle once every thread of the phase has arrived. The release
// charge models the cost of the memory-based barrier the paper's thread
// library would use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "common/types.hpp"
#include "stats/stats.hpp"
#include "stats/trace.hpp"

namespace vlt::audit {
class AuditSink;
}

namespace vlt::vltctl {

class BarrierController : public ckpt::Checkpointable {
 public:
  /// Starts a new phase with `nthreads` participants; `release_latency`
  /// is charged from the last arrival to the release.
  void begin_phase(unsigned nthreads, unsigned release_latency);

  /// Registers an arrival at cycle `now`; returns the generation index the
  /// caller should poll with release_time(). It is a fatal protocol error
  /// to arrive before any begin_phase.
  std::uint64_t arrive(Cycle now);

  /// Release cycle of `generation`, or kNeverReady while threads are still
  /// missing.
  Cycle release_time(std::uint64_t generation) const;

  std::uint64_t generations_completed() const;

  /// Event-driven skip-ahead hook (docs/PERF.md): earliest scheduled
  /// release strictly after `now`, or kNeverReady when no full generation
  /// has a pending release. A half-full generation contributes nothing —
  /// the arrival that completes it happens inside an executed core tick,
  /// after which the processor recomputes all events. Called once per
  /// executed tick, so it scans from a cursor past generations whose
  /// release is already in the past (`now` is monotonic) instead of the
  /// whole phase history.
  Cycle next_event(Cycle now) const;

  /// Monotonic count of state changes (arrivals, release scheduling,
  /// phase resets). The event-driven phase loop (docs/PERF.md) compares
  /// snapshots of this to decide whether cached per-unit next_event
  /// values that read barrier state are still valid.
  std::uint64_t mutation_count() const { return mutations_; }

  /// Attaches an audit sink for barrier-protocol invariant checks
  /// (arrival counts never exceed the participant count, releases never
  /// precede the last arrival). Pass nullptr to detach.
  void set_audit(audit::AuditSink* sink) { audit_ = sink; }

  /// Attaches the structured-event trace buffer: every arrival records
  /// kBarrierArrive at its cycle; a generation filling up records
  /// kBarrierRelease stamped at the scheduled release cycle. Both carry
  /// the generation index. Pass nullptr to detach.
  void set_trace(stats::TraceBuffer* trace) { trace_ = trace; }

  /// Registers "barrier.arrivals" (total arrivals across the run) and
  /// "barrier.generations" (generations that filled and scheduled a
  /// release) under `prefix`.
  void register_stats(stats::Registry& registry, const std::string& prefix);

  std::uint64_t arrivals() const { return arrivals_.value(); }

  /// Oldest generation that has at least one arrival but is not yet full —
  /// the watchdog's candidate for a deadlocked barrier.
  struct PendingGen {
    bool valid = false;
    std::uint64_t generation = 0;
    unsigned arrivals = 0;
    unsigned expected = 0;
    Cycle first_arrival = 0;
  };
  PendingGen oldest_pending() const;

  /// Checkpointing (docs/CKPT.md): epoch bookkeeping plus the full
  /// generation table of the current phase (arrival masks are implicit —
  /// arrivals are one-per-thread-per-generation, so counts plus times
  /// reconstruct the state exactly). Scan cursors and the mutation
  /// counter restart at zero: both are monotonic accelerators whose
  /// absolute values no caller observes across a restore.
  void save_state(ckpt::Writer& w) const override;
  void restore_state(ckpt::Reader& r) override;

 private:
  struct Gen {
    unsigned arrivals = 0;
    Cycle first_arrival = 0;
    Cycle last_arrival = 0;
    Cycle release = kNeverReady;
  };

  unsigned nthreads_ = 1;
  unsigned release_latency_ = 0;
  bool phase_open_ = false;
  std::uint64_t base_gen_ = 0;  // generations retired in earlier phases
  std::vector<Gen> gens_;
  /// Index of the oldest generation still accepting arrivals. Earlier
  /// generations are full and never change, so arrive() starts its scan
  /// here instead of walking the whole phase history every time.
  std::size_t first_open_ = 0;
  /// next_event() scan cursor: generations below it have released at or
  /// before the last queried `now`, so they can never be a future event
  /// again. mutable because advancing it is invisible to callers.
  mutable std::size_t first_live_ = 0;
  std::uint64_t mutations_ = 0;
  stats::Counter arrivals_;
  stats::Counter generations_;
  audit::AuditSink* audit_ = nullptr;
  stats::TraceBuffer* trace_ = nullptr;
};

}  // namespace vlt::vltctl
