// Lane-partitioning policy (paper §3.1): the number of lanes assigned to
// each thread matches its data-level parallelism — 2 threads x 4 lanes,
// 4 threads x 2 lanes, or 8 scalar threads x 1 lane on the 8-lane machine.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace vlt::vltctl {

struct LanePartition {
  unsigned nthreads = 1;
  unsigned lanes_per_thread = 8;
  unsigned max_vl_per_thread = kMaxVectorLength;
};

/// Valid partition for `nthreads` vector threads over `lanes` lanes.
/// Requires nthreads to divide the lane count evenly (paper §3.1).
LanePartition make_partition(unsigned lanes, unsigned nthreads);

/// All partitionings supported by an n-lane machine (1..n threads).
std::vector<LanePartition> supported_partitions(unsigned lanes);

/// First element of each vector register held by `lane` under a
/// round-robin element distribution (paper §2); used by tests to check
/// the register-file reuse argument of §3.2.
std::vector<unsigned> lane_elements(unsigned lane, unsigned lanes,
                                    unsigned vl);

}  // namespace vlt::vltctl
