// Vector unit: vector control logic (VCL) plus the lane datapaths.
//
// The VCL implements out-of-order issue of vector instructions (paper §2,
// citing Espasa's out-of-order vector architectures): a vector instruction
// queue (VIQ), register renaming, a vector instruction window, and 2-way
// issue onto the vector functional units. Execution follows the chime
// model: an instruction occupies its functional unit for
// ceil(VL / lanes_assigned) cycles; arithmetic chaining lets a dependent
// start `latency` cycles after its producer starts.
//
// Under VLT the unit is partitioned into `num_contexts` thread partitions
// (paper §3.2): each vector-thread context owns lanes/num_contexts lanes,
// a VIQ/window slice, and its own per-lane functional units, while the
// multiplexed VCL shares instruction issue bandwidth round-robin — the
// "multiplexed VCL with statically partitioned resources" the paper found
// to perform as well as a replicated one at negligible area cost.
#pragma once

#include <algorithm>
#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "common/types.hpp"
#include "isa/opcode.hpp"
#include "mem/l2_cache.hpp"
#include "stats/cycle_accountant.hpp"
#include "stats/trace.hpp"

namespace vlt::audit {
class AuditSink;
}

namespace vlt::vu {

struct VuParams {
  unsigned lanes = 8;
  unsigned issue_width = 2;   // VCL instruction issue rate (Table 3)
  unsigned viq_size = 32;     // vector instruction queue (Table 3)
  unsigned window_size = 32;  // vector instruction window (Table 3)
  unsigned arith_fus = 3;     // arithmetic datapaths per lane (Table 3)
  unsigned mem_ports = 2;     // memory ports per lane (Table 3)
  unsigned scalar_xfer_latency = 3;  // vector->scalar result forwarding
  bool chaining = true;  // dependent vector ops start after `latency` cycles
                         // instead of waiting for full completion (ablation)
};

/// A vector instruction handed over by a scalar unit. Scalar operands are
/// guaranteed ready; element addresses were produced by the functional
/// executor at fetch.
struct VecDispatch {
  isa::Instruction inst;
  unsigned vl = 0;
  std::vector<Addr> addrs;       // one per (unmasked) element for memory ops
  unsigned vctx = 0;             // vector-thread partition
  Cycle* scalar_done = nullptr;  // completion cell for reductions (SU ROB)
};

/// Figure-4 utilization split, now owned by the shared classifier in
/// stats::CycleAccountant; the alias keeps the historical vu:: spelling.
using DatapathUtilization = stats::DatapathUtilization;

class VectorUnit : public ckpt::Checkpointable {
 public:
  VectorUnit(const VuParams& p, mem::L2Cache& l2);

  /// Reconfigures the lane partitioning (phase change). All contexts must
  /// be quiesced.
  void configure_contexts(unsigned num_contexts, Cycle now);

  /// Accepts a vector instruction into vctx's VIQ slice; false when full.
  bool try_dispatch(VecDispatch&& d, Cycle now);

  /// Advances the VCL by one cycle: VIQ -> window renaming and issue.
  void tick(Cycle now);

  /// True when the context has no instruction in flight at or after `now`.
  bool ctx_quiesced(unsigned vctx, Cycle now) const;

  /// Event-driven skip-ahead hook (docs/PERF.md): earliest cycle > now at
  /// which tick() could change state — queued VIQ work with window space
  /// (renaming), or a window entry becoming issueable (functional unit
  /// free and all source operands chained/complete). An entry whose
  /// producer has not issued yet contributes nothing: the producer's own
  /// issue happens inside an executed tick, after which the processor
  /// recomputes all events. kNeverReady when nothing can happen without
  /// external input.
  Cycle next_event(Cycle now) const;

  /// Cycle by which every context is quiesced assuming no new dispatches:
  /// the max outstanding completion, or kNeverReady while any VIQ/window
  /// slice still holds un-issued instructions. Lets the processor jump
  /// straight to the end-of-phase drain point.
  Cycle drain_time() const;

  /// Same, for a single context (membar resolution in the scalar unit).
  Cycle ctx_drain_time(unsigned vctx) const;

  /// Brings the per-cycle tick bookkeeping (Figure-4 stalled/all-idle
  /// accounting, VCL round-robin rotation) current through cycle `to`
  /// (exclusive), replaying any unticked span in closed form. tick() and
  /// try_dispatch() self-account — a dispatch closes the pending span
  /// before the VIQ push changes how its cycles classify — so the
  /// event-driven phase loop only calls this once, at the end of a
  /// phase, to cover trailing cycles where the unit was never due.
  void account_to(Cycle to) {
    if (accounted_to_ < to) {
      skip_cycles(accounted_to_, to);
      accounted_to_ = to;
    }
  }

  unsigned lanes() const { return params_.lanes; }
  unsigned lanes_per_ctx() const { return params_.lanes / active_contexts_; }
  unsigned max_vl_per_ctx() const {
    return kMaxVectorLength / active_contexts_;
  }
  unsigned num_contexts() const { return active_contexts_; }

  /// Attaches an audit sink for per-issue occupancy and element-accounting
  /// invariant checks, plus the cycle-accountant span agreement check.
  /// Pass nullptr to detach. Observational only.
  void set_audit(audit::AuditSink* sink) {
    audit_ = sink;
    acct_.set_audit(sink);
  }

  /// Attaches the structured-event trace buffer: accepted dispatches
  /// record kVecDispatch, VIQ -> window renames record kViqHandoff, both
  /// with the partition as the lane. Pass nullptr to detach.
  void set_trace(stats::TraceBuffer* trace) { trace_ = trace; }

  /// Registers this unit's instruments: the Figure-4 buckets under
  /// "vu.datapath.*", the VL histogram as "vu.vl", and the issue/element
  /// counters ("vu.insts_issued", "vu.element_ops").
  void register_stats(stats::Registry& registry);

  /// Monotonic count of state changes visible outside the unit: accepted
  /// dispatches, VIQ→window renames, and issues (which write scalar_done
  /// completion cells in SU ROBs and move outstanding/drain times). The
  /// event-driven phase loop (docs/PERF.md) compares snapshots of this to
  /// decide whether cached per-unit next_event values are still valid.
  std::uint64_t mutation_count() const { return mutations_; }

  /// Concurrent-dispatch mode for partition-parallel ticking
  /// (MachineConfig::host_threads): while on, try_dispatch touches only
  /// the caller's partition — the shared mutation-count bump is staged
  /// per partition instead — so scalar units driving distinct partitions
  /// may dispatch from separate host threads. The caller must have closed
  /// the accounting span through the dispatch cycle (account_to) first,
  /// and must fold_staged_dispatches() before the next mutation_count()
  /// read. Dispatch-count totals are order-independent, so the folded
  /// state is identical to serial dispatch order.
  void set_concurrent_dispatch(bool on) { concurrent_dispatch_ = on; }
  void fold_staged_dispatches() {
    for (Ctx& c : ctxs_) {
      mutations_ += c.staged_dispatches;
      c.staged_dispatches = 0;
    }
  }

  /// State changes of one partition (renames and issues). Everything a
  /// scalar unit reads from the vector unit is per-vctx — the scalar_done
  /// cell of a reduction it dispatched, the drain time its membar waits
  /// on, VIQ space for its next handoff — and all of it moves only at
  /// rename or issue, so a scalar unit's cached next_event needs
  /// revalidation only when the counts of the partitions its contexts
  /// drive move. Activity in other threads' partitions cannot affect it,
  /// which is what lets VLT configurations keep scalar units parked while
  /// the shared vector unit is busy.
  std::uint64_t ctx_mutations(unsigned vctx) const {
    return vctx < ctxs_.size() ? ctxs_[vctx].mutations : 0;
  }

  /// True when vctx's VIQ slice has no room for another dispatch. A ready
  /// vector instruction blocked only by this is woken by the rename that
  /// vacates a slot (a ctx_mutations() bump), not by per-cycle retries.
  bool viq_full(unsigned vctx) const {
    return vctx < ctxs_.size() &&
           ctxs_[vctx].viq.size() >=
               std::max(1u, params_.viq_size / active_contexts_);
  }

  /// Checkpointing (docs/CKPT.md): partitioning, per-partition VIQ and
  /// window contents, the rename-table timing graph (distinct OpTiming
  /// records serialized once, in deterministic first-seen order, so
  /// aliasing — including the all-regs-share-one-ready-record state after
  /// configure_contexts — survives the round trip), functional-unit
  /// occupancy, and the accounting watermark. scalar_done completion
  /// cells serialize through Writer::cycle_ref as (su, ctx, seq)
  /// references. The mutation counters restart at zero — the engine
  /// re-snapshots them at loop entry — and the Figure-4 buckets are
  /// registry-restored.
  void save_state(ckpt::Writer& w) const override;
  void restore_state(ckpt::Reader& r) override;

  // --- statistics ---
  DatapathUtilization utilization() const { return acct_.utilization(); }
  const stats::Histogram& vl_histogram() const { return vl_hist_; }
  std::uint64_t instructions_issued() const { return insts_issued_.value(); }
  std::uint64_t element_ops() const { return elem_ops_.value(); }

 private:
  /// Timing of one renamed vector result. Filled in at issue; consumers
  /// renamed against it wait until the values become concrete.
  struct OpTiming {
    Cycle chain_ready = kNeverReady;  // earliest a chained consumer starts
    Cycle complete = kNeverReady;     // full result availability
    bool from_mem = false;            // loads disable chaining
  };
  using TimingRef = std::shared_ptr<OpTiming>;

  struct WinEntry {
    VecDispatch op;
    std::array<TimingRef, 4> srcs{};  // vector/mask producers (snapshot)
    unsigned nsrc = 0;
    TimingRef out;  // destination record (vector reg or mask), may be null
  };

  struct Ctx {
    std::deque<VecDispatch> viq;
    std::deque<WinEntry> window;
    std::vector<TimingRef> vreg;  // rename table, kNumVectorRegs entries
    TimingRef mask;
    std::vector<Cycle> fu_free;  // arith_fus entries, then mem_ports
    Cycle outstanding_until = 0;
    std::uint64_t mutations = 0;  // ctx_mutations(): renames + issues
    std::uint64_t staged_dispatches = 0;  // concurrent-mode mutations_ bumps
  };

  /// Raw closed-form replay of [from, to): equivalent to ticking every
  /// cycle in the span given that none of those ticks renames or issues
  /// anything, and that no dispatch lands mid-span. Callers manage
  /// accounted_to_.
  void skip_cycles(Cycle from, Cycle to);
  void rename_into_window(unsigned vctx, Cycle now);
  bool entry_ready(const WinEntry& e, Cycle now) const;
  bool try_issue(Ctx& c, WinEntry& e, Cycle now, unsigned lanes_assigned);
  Cycle memory_op_completion(const VecDispatch& op, Cycle start,
                             unsigned lanes_assigned, bool is_store);

  VuParams params_;
  mem::L2Cache* l2_;
  std::vector<Ctx> ctxs_;
  unsigned active_contexts_ = 1;

  stats::CycleAccountant acct_;  // Figure-4 buckets, shared classifier
  stats::Histogram vl_hist_;
  stats::Counter insts_issued_;
  stats::Counter elem_ops_;
  std::uint64_t mutations_ = 0;
  bool concurrent_dispatch_ = false;
  unsigned rr_ctx_ = 0;
  Cycle accounted_to_ = 0;  // bookkeeping applied for cycles before this
  audit::AuditSink* audit_ = nullptr;
  stats::TraceBuffer* trace_ = nullptr;
};

}  // namespace vlt::vu
