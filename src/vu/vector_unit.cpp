#include "vu/vector_unit.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "audit/sink.hpp"
#include "common/log.hpp"

namespace vlt::vu {

using isa::FuClass;
using isa::Instruction;
using isa::Opcode;

namespace {

unsigned chime(unsigned vl, unsigned lanes) {
  return vl == 0 ? 1 : (vl + lanes - 1) / lanes;
}

}  // namespace

VectorUnit::VectorUnit(const VuParams& p, mem::L2Cache& l2)
    : params_(p), l2_(&l2) {
  VLT_CHECK(params_.lanes >= 1, "vector unit needs at least one lane");
  configure_contexts(1, 0);
}

void VectorUnit::configure_contexts(unsigned num_contexts, Cycle now) {
  VLT_CHECK(num_contexts >= 1 && params_.lanes % num_contexts == 0,
            "lanes must divide evenly across vector threads");
  for (unsigned i = 0; i < ctxs_.size(); ++i)
    VLT_CHECK(ctx_quiesced(i, now),
              "reconfiguring the vector unit while busy");
  active_contexts_ = num_contexts;
  ctxs_.assign(num_contexts, Ctx{});
  auto ready = std::make_shared<OpTiming>(OpTiming{0, 0, false});
  for (Ctx& c : ctxs_) {
    c.vreg.assign(kNumVectorRegs, ready);
    c.mask = ready;
    c.fu_free.assign(params_.arith_fus + params_.mem_ports, now);
    c.outstanding_until = now;
  }
  rr_ctx_ = 0;
  // Bookkeeping starts fresh at the phase boundary: the cycles between
  // phases (thread-switch overhead) are never ticked by either engine.
  accounted_to_ = now;
}

bool VectorUnit::try_dispatch(VecDispatch&& d, Cycle now) {
  VLT_CHECK(d.vctx < ctxs_.size(), "vector context out of range");
  Ctx& c = ctxs_[d.vctx];
  unsigned viq_cap = std::max(1u, params_.viq_size / active_contexts_);
  if (c.viq.size() >= viq_cap) return false;
  // Close out any unticked bookkeeping span before the push: scalar units
  // dispatch after this unit's tick slot in the cycle, so cycle `now` (and
  // everything before it) classifies by the pre-dispatch VIQ occupancy.
  account_to(now + 1);
  if (c.outstanding_until < now) c.outstanding_until = now;
  if (trace_ != nullptr)
    trace_->record(stats::TraceEvent::Kind::kVecDispatch, now, d.vctx, d.vl);
  c.viq.push_back(std::move(d));
  if (concurrent_dispatch_)
    ++c.staged_dispatches;
  else
    ++mutations_;
  return true;
}

void VectorUnit::rename_into_window(unsigned vctx, Cycle now) {
  Ctx& c = ctxs_[vctx];
  unsigned win_cap = std::max(1u, params_.window_size / active_contexts_);
  unsigned moved = 0;
  while (!c.viq.empty() && c.window.size() < win_cap &&
         moved < params_.issue_width) {
    WinEntry e;
    e.op = std::move(c.viq.front());
    c.viq.pop_front();
    ++moved;

    const Instruction& inst = e.op.inst;
    isa::RegList vsrc = isa::vector_src_regs(inst);
    for (unsigned i = 0; i < vsrc.n; ++i) e.srcs[e.nsrc++] = c.vreg[vsrc.r[i]];
    if (isa::reads_mask(inst)) e.srcs[e.nsrc++] = c.mask;

    RegIdx vd;
    if (isa::vector_dst_reg(inst, vd)) {
      e.out = std::make_shared<OpTiming>();
      c.vreg[vd] = e.out;
    } else if (isa::writes_mask(inst)) {
      e.out = std::make_shared<OpTiming>();
      c.mask = e.out;
    }
    if (trace_ != nullptr)
      trace_->record(stats::TraceEvent::Kind::kViqHandoff, now, vctx,
                     e.op.vl);
    c.window.push_back(std::move(e));
  }
  if (moved > 0) {
    ++mutations_;
    ++c.mutations;
  }
}

bool VectorUnit::entry_ready(const WinEntry& e, Cycle now) const {
  for (unsigned i = 0; i < e.nsrc; ++i) {
    const OpTiming& t = *e.srcs[i];
    Cycle gate = t.from_mem ? t.complete : t.chain_ready;
    if (gate > now) return false;
  }
  return true;
}

Cycle VectorUnit::memory_op_completion(const VecDispatch& op, Cycle start,
                                       unsigned lanes_assigned,
                                       bool is_store) {
  // Unit-stride accesses coalesce into line-granularity requests; strided
  // and indexed accesses are element-granular and feel bank conflicts.
  const bool unit_stride =
      op.inst.op == Opcode::kVload || op.inst.op == Opcode::kVstore ||
      op.inst.op == Opcode::kVle || op.inst.op == Opcode::kVse;
  Cycle latest = start;
  if (unit_stride) {
    Addr prev_line = ~Addr{0};
    unsigned line_idx = 0;
    for (Addr a : op.addrs) {
      Addr line = a / kLineBytes;
      if (line == prev_line) continue;
      prev_line = line;
      Cycle t = l2_->access(a, is_store, start + line_idx);
      ++line_idx;
      latest = std::max(latest, t);
    }
  } else {
    for (std::size_t i = 0; i < op.addrs.size(); ++i) {
      Cycle t = l2_->access(op.addrs[i], is_store,
                            start + i / std::max(1u, lanes_assigned));
      latest = std::max(latest, t);
    }
  }
  return latest + 2;  // lane return path
}

bool VectorUnit::try_issue(Ctx& c, WinEntry& e, Cycle now,
                           unsigned lanes_assigned) {
  const Instruction& inst = e.op.inst;
  const isa::OpInfo& info = isa::op_info(inst.op);

  unsigned fu;
  switch (info.fu) {
    case FuClass::kVAlu0: fu = 0; break;
    case FuClass::kVAlu1: fu = 1; break;
    case FuClass::kVAlu2: fu = 2; break;
    case FuClass::kVMem: {
      // Pick the earlier-free of the two vLSU ports.
      unsigned p0 = params_.arith_fus;
      fu = p0;
      for (unsigned p = p0; p < p0 + params_.mem_ports; ++p)
        if (c.fu_free[p] < c.fu_free[fu]) fu = p;
      break;
    }
    default:
      VLT_CHECK(false, "non-vector opcode in vector window");
      return false;
  }
  if (c.fu_free[fu] > now) return false;
  if (!entry_ready(e, now)) return false;

  const Cycle start = now;
  const unsigned dur = chime(e.op.vl, lanes_assigned);
  c.fu_free[fu] = start + dur;

  if (audit_ != nullptr) {
    // Lane occupancy: the chime rectangle (dur cycles × assigned lanes)
    // must cover every element exactly once, and a partition may never be
    // handed more lanes than the machine has.
    audit_->expect(lanes_assigned * active_contexts_ == params_.lanes,
                   audit::Check::kLaneOccupancy, "vu", now,
                   std::to_string(lanes_assigned) + " lanes x " +
                       std::to_string(active_contexts_) +
                       " contexts does not cover the " +
                       std::to_string(params_.lanes) + "-lane array");
    audit_->expect(static_cast<std::uint64_t>(dur) * lanes_assigned >=
                       e.op.vl,
                   audit::Check::kLaneOccupancy, "vu", now,
                   "chime of " + std::to_string(dur) + " cycles on " +
                       std::to_string(lanes_assigned) +
                       " lanes cannot hold VL " + std::to_string(e.op.vl));
    audit_->expect(e.op.vl <= kMaxVectorLength / active_contexts_,
                   audit::Check::kElementAccounting, "vu", now,
                   "issued VL " + std::to_string(e.op.vl) +
                       " above the partition maximum " +
                       std::to_string(kMaxVectorLength / active_contexts_));
  }

  Cycle complete;
  bool from_mem = false;
  if (info.fu == FuClass::kVMem) {
    bool st = isa::is_store(inst.op);
    complete = memory_op_completion(e.op, start, lanes_assigned, st);
    from_mem = !st;
  } else {
    complete = start + info.latency + dur - 1;
  }

  if (e.out) {
    e.out->chain_ready =
        params_.chaining ? start + info.latency : complete;
    e.out->complete = complete;
    e.out->from_mem = from_mem;
  }
  if (e.op.scalar_done)
    *e.op.scalar_done = complete + params_.scalar_xfer_latency;

  c.outstanding_until = std::max(c.outstanding_until, complete);

  // Figure 4 accounting: arithmetic datapaths only.
  if (fu < params_.arith_fus)
    acct_.on_issue(e.op.vl,
                   static_cast<std::uint64_t>(dur) * lanes_assigned);
  vl_hist_.add(e.op.vl);
  elem_ops_.inc(e.op.vl);
  insts_issued_.inc();
  ++mutations_;
  ++c.mutations;
  // Debug issue trace, enabled with VLT_TRACE=1 in the environment.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only, env never mutated
  static const bool trace = std::getenv("VLT_TRACE") != nullptr;
  if (trace && insts_issued_.value() < 200)
    std::fprintf(stderr,
                 "[vu] t=%llu issue %s vl=%u fu=%u dur=%u complete=%llu\n",
                 static_cast<unsigned long long>(now),
                 isa::op_info(inst.op).name, e.op.vl, fu, dur,
                 static_cast<unsigned long long>(complete));
  return true;
}

void VectorUnit::tick(Cycle now) {
  // Replay the bookkeeping of any cycles the event-driven loop proved to
  // be no-op ticks and jumped over; under the cycle-by-cycle engine the
  // span is always empty. Must precede the renames below, which change
  // how idle cycles classify.
  if (accounted_to_ < now) skip_cycles(accounted_to_, now);
  accounted_to_ = now + 1;
  for (unsigned i = 0; i < ctxs_.size(); ++i) rename_into_window(i, now);

  if (audit_ != nullptr) {
    // Queue bounds: each partition's VIQ/window slice must respect its
    // statically partitioned capacity.
    const unsigned viq_cap = std::max(1u, params_.viq_size / active_contexts_);
    const unsigned win_cap =
        std::max(1u, params_.window_size / active_contexts_);
    for (std::size_t i = 0; i < ctxs_.size(); ++i) {
      audit_->expect(ctxs_[i].viq.size() <= viq_cap,
                     audit::Check::kQueueBounds, "vu", now,
                     "VIQ slice " + std::to_string(i) + " holds " +
                         std::to_string(ctxs_[i].viq.size()) +
                         " entries, capacity " + std::to_string(viq_cap));
      audit_->expect(ctxs_[i].window.size() <= win_cap,
                     audit::Check::kQueueBounds, "vu", now,
                     "window slice " + std::to_string(i) + " holds " +
                         std::to_string(ctxs_[i].window.size()) +
                         " entries, capacity " + std::to_string(win_cap));
    }
  }

  // Each thread partition keeps the full per-stream issue rate: the lane
  // groups have independent control paths, and the multiplexed VCL's
  // renaming/window slices are statically partitioned. This reproduces the
  // paper's finding (§3.2) that a multiplexed VCL performs as fast as a
  // replicated one.
  const unsigned n = active_contexts_;
  for (unsigned k = 0; k < n; ++k) {
    Ctx& c = ctxs_[(rr_ctx_ + k) % n];
    unsigned budget = params_.issue_width;
    // Out-of-order issue from the window (renaming removed WAW/WAR).
    for (auto it = c.window.begin(); it != c.window.end() && budget > 0;) {
      if (try_issue(c, *it, now, params_.lanes / n)) {
        --budget;
        it = c.window.erase(it);
      } else {
        ++it;
      }
    }
  }
  rr_ctx_ = n ? (rr_ctx_ + 1) % n : 0;

  // Figure 4 stall/idle accounting for arithmetic datapaths (the
  // per-cycle oracle path of the shared classifier).
  const unsigned lanes_assigned = params_.lanes / n;
  for (Ctx& c : ctxs_) {
    bool work_waiting = !c.viq.empty() || !c.window.empty();
    acct_.account_cycle(now, c.fu_free.data(), params_.arith_fus,
                        work_waiting, lanes_assigned);
  }
}

Cycle VectorUnit::next_event(Cycle now) const {
  Cycle ev = kNeverReady;
  const unsigned win_cap = std::max(1u, params_.window_size / active_contexts_);
  for (const Ctx& c : ctxs_) {
    // Renaming moves VIQ entries into the window on the very next tick.
    if (!c.viq.empty() && c.window.size() < win_cap) return now + 1;
    for (const WinEntry& e : c.window) {
      const isa::OpInfo& info = isa::op_info(e.op.inst.op);
      Cycle fu_free;
      if (info.fu == FuClass::kVMem) {
        // Earliest-free of the vLSU ports, mirroring try_issue's pick.
        unsigned p0 = params_.arith_fus;
        fu_free = c.fu_free[p0];
        for (unsigned p = p0; p < p0 + params_.mem_ports; ++p)
          fu_free = std::min(fu_free, c.fu_free[p]);
      } else {
        unsigned fu = 0;
        switch (info.fu) {
          case FuClass::kVAlu0: fu = 0; break;
          case FuClass::kVAlu1: fu = 1; break;
          case FuClass::kVAlu2: fu = 2; break;
          default: break;
        }
        fu_free = c.fu_free[fu];
      }
      Cycle t = std::max(now + 1, fu_free);
      bool unknown = false;
      for (unsigned i = 0; i < e.nsrc; ++i) {
        const OpTiming& s = *e.srcs[i];
        Cycle gate = s.from_mem ? s.complete : s.chain_ready;
        if (gate == kNeverReady) {  // producer still waiting to issue
          unknown = true;
          break;
        }
        t = std::max(t, gate);
      }
      if (!unknown && t < ev) ev = t;
      if (ev <= now + 1) return now + 1;
    }
  }
  return ev;
}

Cycle VectorUnit::drain_time() const {
  Cycle t = 0;
  for (const Ctx& c : ctxs_) {
    if (!c.viq.empty() || !c.window.empty()) return kNeverReady;
    t = std::max(t, c.outstanding_until);
  }
  return t;
}

Cycle VectorUnit::ctx_drain_time(unsigned vctx) const {
  if (vctx >= ctxs_.size()) return 0;
  const Ctx& c = ctxs_[vctx];
  if (!c.viq.empty() || !c.window.empty()) return kNeverReady;
  return c.outstanding_until;
}

void VectorUnit::skip_cycles(Cycle from, Cycle to) {
  // Equivalent to calling tick() on every cycle in [from, to) given that
  // none of those ticks renames or issues anything: only the Figure-4
  // stall/idle tally and the round-robin pointer move. work_waiting
  // cannot change inside the span (no renames, issues, or dispatches), so
  // the shared classifier's closed-form span path applies.
  const unsigned n = active_contexts_;
  const unsigned lanes_assigned = params_.lanes / n;
  for (const Ctx& c : ctxs_) {
    const bool work_waiting = !c.viq.empty() || !c.window.empty();
    acct_.account_span(from, to, c.fu_free.data(), params_.arith_fus,
                       work_waiting, lanes_assigned);
  }
  rr_ctx_ = n ? static_cast<unsigned>((rr_ctx_ + (to - from)) % n) : 0;
}

void VectorUnit::register_stats(stats::Registry& registry) {
  acct_.register_stats(registry, "vu.datapath");
  registry.add_histogram("vu.vl", &vl_hist_);
  registry.add_counter("vu.insts_issued", &insts_issued_);
  registry.add_counter("vu.element_ops", &elem_ops_);
}

bool VectorUnit::ctx_quiesced(unsigned vctx, Cycle now) const {
  if (vctx >= ctxs_.size()) return true;
  const Ctx& c = ctxs_[vctx];
  return c.viq.empty() && c.window.empty() && c.outstanding_until <= now;
}

// --- checkpointing (docs/CKPT.md) ---

namespace {

Json dispatch_blob(const VecDispatch& d) {
  std::vector<std::uint64_t> rec = {ckpt::inst_word0(d.inst),
                                    ckpt::inst_word1(d.inst), d.vl, d.vctx,
                                    d.addrs.size()};
  rec.insert(rec.end(), d.addrs.begin(), d.addrs.end());
  return ckpt::blob64_json(rec);
}

VecDispatch parse_dispatch(const Json& j) {
  std::vector<std::uint64_t> rec = ckpt::blob64_words(j, "dispatch");
  if (rec.size() < 5 || rec.size() != 5 + rec[4])
    VLT_FAIL(ErrorKind::kIo, "checkpoint vector-dispatch record malformed");
  VecDispatch d;
  d.inst = ckpt::unpack_inst(rec[0], rec[1]);
  d.vl = static_cast<unsigned>(rec[2]);
  d.vctx = static_cast<unsigned>(rec[3]);
  d.addrs.assign(rec.begin() + 5, rec.end());
  return d;
}

const Json& member(const Json& j, const char* key) {
  const Json* v = j.find(key);
  if (v == nullptr)
    VLT_FAIL(ErrorKind::kIo,
             "checkpoint vector record missing '" + std::string(key) + "'");
  return *v;
}

}  // namespace

void VectorUnit::save_state(ckpt::Writer& w) const {
  w.u64("active_contexts", active_contexts_);
  w.u64("rr_ctx", rr_ctx_);
  w.u64("accounted_to", accounted_to_);
  for (std::size_t i = 0; i < ctxs_.size(); ++i) {
    const Ctx& c = ctxs_[i];
    w.push("ctx" + std::to_string(i));

    // Assign timing-record IDs in deterministic first-seen order (vreg
    // table, mask, then window sources/outputs) so aliasing serializes
    // identically for identical machine state.
    std::vector<const OpTiming*> order;
    std::unordered_map<const OpTiming*, std::uint64_t> ids;
    auto ref_id = [&](const TimingRef& t) -> std::uint64_t {
      if (t == nullptr) return kNeverReady;
      auto [it, fresh] = ids.emplace(t.get(), order.size());
      if (fresh) order.push_back(t.get());
      return it->second;
    };

    std::vector<std::uint64_t> vreg_ids;
    vreg_ids.reserve(c.vreg.size());
    for (const TimingRef& t : c.vreg) vreg_ids.push_back(ref_id(t));
    std::uint64_t mask_id = ref_id(c.mask);

    Json window = Json::array();
    for (const WinEntry& e : c.window) {
      Json je = Json::object();
      je.set("op", dispatch_blob(e.op));
      std::string sd;
      if (e.op.scalar_done != nullptr) {
        VLT_CHECK(w.cycle_ref != nullptr,
                  "checkpoint writer has no completion-cell resolver");
        sd = w.cycle_ref(e.op.scalar_done);
      }
      je.set("sd", std::move(sd));
      std::vector<std::uint64_t> src_ids;
      for (unsigned s = 0; s < e.nsrc; ++s) src_ids.push_back(ref_id(e.srcs[s]));
      je.set("srcs", ckpt::blob64_json(src_ids));
      je.set("out", ref_id(e.out));
      window.push_back(std::move(je));
    }
    w.set("window", std::move(window));

    Json viq = Json::array();
    for (const VecDispatch& d : c.viq) {
      Json jd = Json::object();
      jd.set("op", dispatch_blob(d));
      std::string sd;
      if (d.scalar_done != nullptr) {
        VLT_CHECK(w.cycle_ref != nullptr,
                  "checkpoint writer has no completion-cell resolver");
        sd = w.cycle_ref(d.scalar_done);
      }
      jd.set("sd", std::move(sd));
      viq.push_back(std::move(jd));
    }
    w.set("viq", std::move(viq));

    std::vector<std::uint64_t> timings;
    timings.reserve(order.size() * 3);
    for (const OpTiming* t : order) {
      timings.push_back(t->chain_ready);
      timings.push_back(t->complete);
      timings.push_back(t->from_mem ? 1 : 0);
    }
    w.blob64("timings", timings.data(), timings.size());
    w.blob64("vreg", vreg_ids.data(), vreg_ids.size());
    w.u64("mask", mask_id);
    w.blob64("fu_free", c.fu_free.data(), c.fu_free.size());
    w.u64("outstanding_until", c.outstanding_until);
    w.pop();
  }
}

void VectorUnit::restore_state(ckpt::Reader& r) {
  active_contexts_ = static_cast<unsigned>(r.u64("active_contexts"));
  VLT_CHECK(active_contexts_ >= 1 && params_.lanes % active_contexts_ == 0,
            "checkpoint vector partitioning does not match this machine");
  rr_ctx_ = static_cast<unsigned>(r.u64("rr_ctx"));
  accounted_to_ = r.u64("accounted_to");
  ctxs_.assign(active_contexts_, Ctx{});
  for (std::size_t i = 0; i < ctxs_.size(); ++i) {
    Ctx& c = ctxs_[i];
    r.push("ctx" + std::to_string(i));

    std::vector<std::uint64_t> flat = r.blob64("timings");
    VLT_CHECK(flat.size() % 3 == 0,
              "checkpoint timing table must hold triples");
    std::vector<TimingRef> recs;
    recs.reserve(flat.size() / 3);
    for (std::size_t k = 0; k < flat.size(); k += 3)
      recs.push_back(std::make_shared<OpTiming>(
          OpTiming{flat[k], flat[k + 1], flat[k + 2] != 0}));
    auto by_id = [&](std::uint64_t id) -> TimingRef {
      if (id == kNeverReady) return nullptr;
      VLT_CHECK(id < recs.size(), "checkpoint timing reference out of range");
      return recs[id];
    };

    std::vector<std::uint64_t> vreg_ids(kNumVectorRegs);
    r.blob64("vreg", vreg_ids.data(), vreg_ids.size());
    c.vreg.clear();
    c.vreg.reserve(kNumVectorRegs);
    for (std::uint64_t id : vreg_ids) c.vreg.push_back(by_id(id));
    c.mask = by_id(r.u64("mask"));

    for (const Json& je : r.get("window").items()) {
      WinEntry e;
      e.op = parse_dispatch(member(je, "op"));
      const std::string& sd = member(je, "sd").as_string();
      if (!sd.empty()) {
        VLT_CHECK(r.cycle_ref != nullptr,
                  "checkpoint reader has no completion-cell resolver");
        e.op.scalar_done = r.cycle_ref(sd);
      }
      std::vector<std::uint64_t> src_ids =
          ckpt::blob64_words(member(je, "srcs"), "srcs");
      VLT_CHECK(src_ids.size() <= e.srcs.size(),
                "checkpoint window entry has too many sources");
      e.nsrc = static_cast<unsigned>(src_ids.size());
      for (unsigned s = 0; s < e.nsrc; ++s) e.srcs[s] = by_id(src_ids[s]);
      e.out = by_id(member(je, "out").as_uint());
      c.window.push_back(std::move(e));
    }

    for (const Json& jd : r.get("viq").items()) {
      VecDispatch d = parse_dispatch(member(jd, "op"));
      const std::string& sd = member(jd, "sd").as_string();
      if (!sd.empty()) {
        VLT_CHECK(r.cycle_ref != nullptr,
                  "checkpoint reader has no completion-cell resolver");
        d.scalar_done = r.cycle_ref(sd);
      }
      c.viq.push_back(std::move(d));
    }

    c.fu_free.assign(params_.arith_fus + params_.mem_ports, 0);
    r.blob64("fu_free", c.fu_free.data(), c.fu_free.size());
    c.outstanding_until = r.u64("outstanding_until");
    r.pop();
  }
  mutations_ = 0;
}

}  // namespace vlt::vu
