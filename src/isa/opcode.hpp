// The vltsim instruction set: a compact Cray X1-inspired ISA.
//
// Scalar registers are 64-bit and hold either an int64 or a double (the
// opcode decides the interpretation, collapsing the X1's A/S files into
// one). Vector registers hold up to kMaxVectorLength 64-bit elements; the
// active length is the architectural VL register, set by SETVL and clamped
// to the hardware maximum of the current lane partition (64 / #threads
// under VLT, per §3.2 of the paper).
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace vlt::isa {

enum class Opcode : std::uint8_t {
  // --- scalar integer ---
  kNop,
  kHalt,
  kLi,     // rd <- sext(imm)
  kLiHi,   // rd <- rd | (imm << 32)   (pair with kLi for 64-bit constants)
  kMov,    // rd <- rs1
  kAdd, kAddi, kSub, kMul, kDiv, kRem,
  kAnd, kAndi, kOr, kOri, kXor, kXori,
  kSll, kSlli, kSrl, kSrli, kSra,
  kSlt, kSlti, kSeq,
  // --- scalar floating point (double) ---
  kFadd, kFsub, kFmul, kFdiv, kFsqrt, kFabs, kFneg, kFmin, kFmax,
  kFcvtIF,  // rd <- double(int64(rs1))
  kFcvtFI,  // rd <- int64(trunc(double(rs1)))
  kFlt, kFle,  // rd <- fp compare as 0/1
  // --- scalar memory ---
  kLoad,   // rd <- mem64[rs1 + imm]
  kStore,  // mem64[rs1 + imm] <- rs2
  // --- control flow (imm is a signed instruction-slot offset from pc+1) ---
  kBeq, kBne, kBlt, kBge,
  kJump,
  kJal,    // rd <- pc + 1; pc <- pc + 1 + imm
  kJr,     // pc <- rs1
  // --- system / threading ---
  kTid,       // rd <- hardware thread index within the current phase
  kNthreads,  // rd <- number of threads in the current phase
  kBarrier,   // rendezvous of all threads in the phase
  kMembar,    // orders vector and scalar memory accesses
  kSetvl,     // vl <- min(rs1, MAXVL); rd <- vl
  kSetvlMax,  // vl <- MAXVL; rd <- vl
  // --- vector integer arithmetic (FU class VALU0 except mul) ---
  kVadd, kVsub, kVmul,
  kVand, kVor, kVxor, kVsll, kVsrl,
  kVmin, kVmax,
  kVabsdiff,  // vd[i] <- |v1[i] - v2[i]|   (motion-estimation SAD support)
  // --- vector floating point ---
  kVfadd, kVfsub, kVfmul, kVfdiv, kVfma,  // vfma: vd += v1 * v2
  kVfsqrt, kVfmin, kVfmax, kVfabs, kVfneg,
  // --- vector compares (write the mask register) and merge ---
  kVcmplt, kVcmpeq, kVfcmplt,
  kVmerge,  // vd[i] <- mask[i] ? v1[i] : v2[i]
  // --- vector misc ---
  kVmov,    // vd <- v1
  kVbcast,  // vd[i] <- s[rs1]
  kViota,   // vd[i] <- i
  // --- vector reductions (scalar destination) ---
  kVredsum, kVfredsum, kVredmin, kVredmax,
  // --- vector memory ---
  // Unit stride:    addr_i = s[rs1] + imm + 8*i
  // Strided:        addr_i = s[rs1] + s[rs2]*i        (stride in bytes)
  // Gather/scatter: addr_i = s[rs1] + v[rs2][i]       (byte offsets)
  // For all vector stores the data source is v[rd].
  kVload, kVstore, kVloads, kVstores, kVgather, kVscatter,
  // --- RVV frontend (isa/rvv/rvv.hpp; not part of the VLT ISA) ---
  kVsetvli,  // vl <- min(AVL, VLMAX(vtype=imm)); rd <- vl (RVV 1.0 rules)
  kVle,      // vle64.v: unit-stride load, addr_i = s[rs1] + imm + 8*i
  kVse,      // vse64.v: unit-stride store of v[rd]

  kNumOpcodes,
};

inline constexpr std::size_t kNumOpcodes =
    static_cast<std::size_t>(Opcode::kNumOpcodes);

/// Functional-unit classes. The vector unit has three arithmetic datapaths
/// per lane (paper §2): VALU0 add/logical/compare/merge, VALU1 multiply/FMA,
/// VALU2 divide/sqrt/reductions — an intentionally imbalanced mix, as §7.1
/// of the paper observes for real machines.
enum class FuClass : std::uint8_t {
  kNone,      // nop/halt/control handled by the front end
  kSIntAlu,   // scalar integer
  kSFpu,      // scalar floating point
  kSMem,      // scalar load/store port
  kBranch,    // branch resolution
  kVAlu0,     // vector add/logical/compare/merge
  kVAlu1,     // vector multiply / FMA
  kVAlu2,     // vector divide / sqrt / reductions
  kVMem,      // vector load/store port
};

enum class OpKind : std::uint8_t {
  kScalarAlu,
  kScalarMem,
  kBranch,
  kSystem,
  kVecArith,
  kVecRed,
  kVecMem,
};

/// Trait bits for OpInfo::traits.
inline constexpr std::uint8_t kTraitReadsRs1 = 1u << 0;
inline constexpr std::uint8_t kTraitReadsRs2 = 1u << 1;
inline constexpr std::uint8_t kTraitWritesRd = 1u << 2;
inline constexpr std::uint8_t kTraitIsLoad = 1u << 3;
inline constexpr std::uint8_t kTraitIsStore = 1u << 4;
inline constexpr std::uint8_t kTraitReadsRdAsSrc = 1u << 5;  // fma, vector stores
inline constexpr std::uint8_t kTraitWritesMask = 1u << 6;
inline constexpr std::uint8_t kTraitReadsMask = 1u << 7;     // vmerge

struct OpInfo {
  const char* name;
  FuClass fu;
  std::uint8_t latency;  // scalar execute latency / vector pipeline depth
  OpKind kind;
  std::uint8_t traits;
};

const OpInfo& op_info(Opcode op);

inline bool is_vector(Opcode op) {
  OpKind k = op_info(op).kind;
  return k == OpKind::kVecArith || k == OpKind::kVecRed ||
         k == OpKind::kVecMem;
}
inline bool is_branch(Opcode op) { return op_info(op).kind == OpKind::kBranch; }
inline bool is_mem(Opcode op) {
  return (op_info(op).traits & (kTraitIsLoad | kTraitIsStore)) != 0;
}
inline bool is_load(Opcode op) {
  return (op_info(op).traits & kTraitIsLoad) != 0;
}
inline bool is_store(Opcode op) {
  return (op_info(op).traits & kTraitIsStore) != 0;
}

/// Instruction flag bits.
inline constexpr std::uint8_t kFlagSrc2Scalar = 1u << 0;  // .vs operand form
inline constexpr std::uint8_t kFlagMasked = 1u << 1;      // write under mask

/// One decoded instruction. PCs index instruction slots; for I-cache
/// modeling a slot occupies 8 bytes at text_base + 8*pc.
struct Instruction {
  Opcode op = Opcode::kNop;
  RegIdx rd = 0;
  RegIdx rs1 = 0;
  RegIdx rs2 = 0;
  std::int32_t imm = 0;
  std::uint8_t flags = 0;

  bool src2_scalar() const { return (flags & kFlagSrc2Scalar) != 0; }
  bool masked() const { return (flags & kFlagMasked) != 0; }
};

/// Up-to-3-entry register list used for dependence analysis.
struct RegList {
  std::array<RegIdx, 3> r{};
  std::uint8_t n = 0;
  void push(RegIdx idx) { r[n++] = idx; }
};

/// Scalar registers read by `inst` (includes scalar bases/strides of vector
/// memory ops and scalar operands of .vs-form vector ops).
RegList scalar_src_regs(const Instruction& inst);

/// Returns true and sets `out` if `inst` writes a scalar register
/// (scalar ops, SETVL, vector reductions).
bool scalar_dst_reg(const Instruction& inst, RegIdx& out);

/// Vector registers read by `inst` (includes rd for FMA, vector stores and
/// masked partial writes).
RegList vector_src_regs(const Instruction& inst);

/// Returns true and sets `out` if `inst` writes a vector register.
bool vector_dst_reg(const Instruction& inst, RegIdx& out);

bool reads_mask(const Instruction& inst);
bool writes_mask(const Instruction& inst);

}  // namespace vlt::isa
