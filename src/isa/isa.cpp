#include "isa/isa.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "func/arch_state.hpp"
#include "func/executor.hpp"
#include "isa/disasm.hpp"
#include "isa/rvv/rvv.hpp"

namespace vlt::isa {

const char* isa_name(IsaId id) {
  switch (id) {
    case IsaId::kVlt: return "vlt";
    case IsaId::kRvv: return "rvv";
  }
  return "?";
}

std::optional<IsaId> isa_from_name(const std::string& name) {
  if (name == "vlt") return IsaId::kVlt;
  if (name == "rvv") return IsaId::kRvv;
  return std::nullopt;
}

std::vector<std::string> isa_names() { return {"vlt", "rvv"}; }

std::vector<Opcode> IsaFrontend::opcodes() const {
  std::vector<Opcode> out;
  for (std::size_t i = 0; i < kNumOpcodes; ++i) {
    auto op = static_cast<Opcode>(i);
    if (has_opcode(op)) out.push_back(op);
  }
  return out;
}

std::string IsaFrontend::disasm(const Instruction& inst) const {
  // The shared renderer derives everything from the opcode tables, which
  // already carry per-frontend mnemonics (vload vs vle64).
  return disassemble(inst);
}

namespace {

std::array<bool, kNumOpcodes> vlt_mask() {
  std::array<bool, kNumOpcodes> m;
  m.fill(true);
  // The RVV frontend opcodes are not part of the seed VLT ISA.
  for (Opcode op : {Opcode::kVsetvli, Opcode::kVle, Opcode::kVse})
    m[static_cast<std::size_t>(op)] = false;
  return m;
}

/// The seed Cray X1-flavored ISA: setvl clamps the (signed) request to
/// the partition's hardware maximum, setvlmax selects it directly.
class VltFrontend final : public IsaFrontend {
 public:
  VltFrontend() : IsaFrontend(vlt_mask()) {}

  IsaId id() const override { return IsaId::kVlt; }

  unsigned vlmax(unsigned max_vl, std::uint32_t /*vtype*/) const override {
    return max_vl;
  }

  void execute_setvl(const Instruction& inst, func::ArchState& st,
                     const func::ExecContext& ctx) const override {
    switch (inst.op) {
      case Opcode::kSetvl: {
        std::int64_t req = st.sreg_i(inst.rs1);
        unsigned new_vl =
            req <= 0 ? 0
                     : std::min<std::uint64_t>(
                           static_cast<std::uint64_t>(req), ctx.max_vl);
        st.set_vl(new_vl);
        st.set_sreg(inst.rd, new_vl);
        break;
      }
      case Opcode::kSetvlMax:
        st.set_vl(ctx.max_vl);
        st.set_sreg(inst.rd, ctx.max_vl);
        break;
      default:
        VLT_CHECK(false, "vlt frontend asked to execute a foreign set-VL op");
    }
  }
};

}  // namespace

const IsaFrontend& frontend(IsaId id) {
  static const VltFrontend vlt;
  switch (id) {
    case IsaId::kVlt: return vlt;
    case IsaId::kRvv: return rvv::rvv_frontend();
  }
  VLT_CHECK(false, "unknown IsaId");
  return vlt;  // unreachable
}

}  // namespace vlt::isa
