// Program container and the embedded assembler (ProgramBuilder).
//
// Workloads are written directly against ProgramBuilder — the moral
// equivalent of the compiler-generated Cray X1 assembly the paper's
// simulator executes. PCs index instruction slots; each slot occupies
// 8 bytes of the text segment for I-cache modeling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "isa/isa.hpp"
#include "isa/opcode.hpp"

namespace vlt::isa {

class Program {
 public:
  Program() = default;
  Program(std::string name, std::vector<Instruction> code, Addr text_base,
          IsaId isa = IsaId::kVlt)
      : name_(std::move(name)),
        code_(std::move(code)),
        text_base_(text_base),
        isa_(isa) {}

  const std::string& name() const { return name_; }
  /// The ISA frontend this program was assembled for.
  IsaId isa() const { return isa_; }
  const std::vector<Instruction>& code() const { return code_; }
  std::size_t size() const { return code_.size(); }
  bool empty() const { return code_.empty(); }

  const Instruction& at(std::uint64_t pc) const {
    VLT_CHECK(pc < code_.size(), "pc out of range in " + name_);
    return code_[pc];
  }

  /// Byte address of an instruction slot (for I-cache modeling).
  Addr inst_addr(std::uint64_t pc) const { return text_base_ + 8 * pc; }

 private:
  std::string name_;
  std::vector<Instruction> code_;
  Addr text_base_ = 0x10000000;
  IsaId isa_ = IsaId::kVlt;
};

/// Forward-referencable branch target.
class Label {
 public:
  Label() = default;

 private:
  friend class ProgramBuilder;
  explicit Label(std::size_t id) : id_(id), valid_(true) {}
  std::size_t id_ = 0;
  bool valid_ = false;
};

/// Tiny assembler with labels and 64-bit constant synthesis.
///
///   ProgramBuilder b("kernel");
///   auto loop = b.label();
///   b.li(r_i, 0);
///   b.bind(loop);
///   ...
///   b.addi(r_i, r_i, 1);
///   b.blt(r_i, r_n, loop);
///   b.halt();
///   Program p = b.build();
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name, Addr text_base = 0x10000000)
      : name_(std::move(name)), text_base_(text_base) {}

  // --- ISA frontend tag (stamped onto the built Program) ---
  void set_isa(IsaId isa) { isa_ = isa; }
  IsaId isa() const { return isa_; }

  // --- labels ---
  Label label();
  void bind(Label l);

  // --- raw emission ---
  void emit(Instruction inst);
  std::size_t pc() const { return code_.size(); }

  // --- scalar integer ---
  void nop() { emit({Opcode::kNop, 0, 0, 0, 0, 0}); }
  void halt() { emit({Opcode::kHalt, 0, 0, 0, 0, 0}); }
  void li(RegIdx rd, std::int64_t imm);    // synthesizes kLi [+ kLiHi]
  void li_f64(RegIdx rd, double value);    // bit pattern of a double
  void mov(RegIdx rd, RegIdx rs1) { emit({Opcode::kMov, rd, rs1, 0, 0, 0}); }
  void add(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kAdd, rd, a, b, 0, 0}); }
  void addi(RegIdx rd, RegIdx a, std::int32_t i) { emit({Opcode::kAddi, rd, a, 0, i, 0}); }
  void sub(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kSub, rd, a, b, 0, 0}); }
  void mul(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kMul, rd, a, b, 0, 0}); }
  void div(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kDiv, rd, a, b, 0, 0}); }
  void rem(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kRem, rd, a, b, 0, 0}); }
  void and_(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kAnd, rd, a, b, 0, 0}); }
  void andi(RegIdx rd, RegIdx a, std::int32_t i) { emit({Opcode::kAndi, rd, a, 0, i, 0}); }
  void or_(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kOr, rd, a, b, 0, 0}); }
  void ori(RegIdx rd, RegIdx a, std::int32_t i) { emit({Opcode::kOri, rd, a, 0, i, 0}); }
  void xor_(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kXor, rd, a, b, 0, 0}); }
  void xori(RegIdx rd, RegIdx a, std::int32_t i) { emit({Opcode::kXori, rd, a, 0, i, 0}); }
  void sll(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kSll, rd, a, b, 0, 0}); }
  void slli(RegIdx rd, RegIdx a, std::int32_t i) { emit({Opcode::kSlli, rd, a, 0, i, 0}); }
  void srl(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kSrl, rd, a, b, 0, 0}); }
  void srli(RegIdx rd, RegIdx a, std::int32_t i) { emit({Opcode::kSrli, rd, a, 0, i, 0}); }
  void sra(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kSra, rd, a, b, 0, 0}); }
  void slt(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kSlt, rd, a, b, 0, 0}); }
  void slti(RegIdx rd, RegIdx a, std::int32_t i) { emit({Opcode::kSlti, rd, a, 0, i, 0}); }
  void seq(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kSeq, rd, a, b, 0, 0}); }

  // --- scalar floating point ---
  void fadd(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kFadd, rd, a, b, 0, 0}); }
  void fsub(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kFsub, rd, a, b, 0, 0}); }
  void fmul(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kFmul, rd, a, b, 0, 0}); }
  void fdiv(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kFdiv, rd, a, b, 0, 0}); }
  void fsqrt(RegIdx rd, RegIdx a) { emit({Opcode::kFsqrt, rd, a, 0, 0, 0}); }
  void fabs_(RegIdx rd, RegIdx a) { emit({Opcode::kFabs, rd, a, 0, 0, 0}); }
  void fneg(RegIdx rd, RegIdx a) { emit({Opcode::kFneg, rd, a, 0, 0, 0}); }
  void fmin(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kFmin, rd, a, b, 0, 0}); }
  void fmax(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kFmax, rd, a, b, 0, 0}); }
  void fcvt_i_f(RegIdx rd, RegIdx a) { emit({Opcode::kFcvtIF, rd, a, 0, 0, 0}); }
  void fcvt_f_i(RegIdx rd, RegIdx a) { emit({Opcode::kFcvtFI, rd, a, 0, 0, 0}); }
  void flt(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kFlt, rd, a, b, 0, 0}); }
  void fle(RegIdx rd, RegIdx a, RegIdx b) { emit({Opcode::kFle, rd, a, b, 0, 0}); }

  // --- scalar memory ---
  void load(RegIdx rd, RegIdx base, std::int32_t off = 0) { emit({Opcode::kLoad, rd, base, 0, off, 0}); }
  void store(RegIdx base, RegIdx val, std::int32_t off = 0) { emit({Opcode::kStore, 0, base, val, off, 0}); }

  // --- control flow ---
  void beq(RegIdx a, RegIdx b, Label l) { emit_branch(Opcode::kBeq, a, b, l); }
  void bne(RegIdx a, RegIdx b, Label l) { emit_branch(Opcode::kBne, a, b, l); }
  void blt(RegIdx a, RegIdx b, Label l) { emit_branch(Opcode::kBlt, a, b, l); }
  void bge(RegIdx a, RegIdx b, Label l) { emit_branch(Opcode::kBge, a, b, l); }
  void jump(Label l) { emit_branch(Opcode::kJump, 0, 0, l); }
  void jal(RegIdx rd, Label l) { emit_branch(Opcode::kJal, 0, 0, l, rd); }
  void jr(RegIdx rs1) { emit({Opcode::kJr, 0, rs1, 0, 0, 0}); }

  // --- system / threading ---
  void tid(RegIdx rd) { emit({Opcode::kTid, rd, 0, 0, 0, 0}); }
  void nthreads(RegIdx rd) { emit({Opcode::kNthreads, rd, 0, 0, 0, 0}); }
  void barrier() { emit({Opcode::kBarrier, 0, 0, 0, 0, 0}); }
  void membar() { emit({Opcode::kMembar, 0, 0, 0, 0, 0}); }
  void setvl(RegIdx rd, RegIdx rs1) { emit({Opcode::kSetvl, rd, rs1, 0, 0, 0}); }
  void setvlmax(RegIdx rd) { emit({Opcode::kSetvlMax, rd, 0, 0, 0, 0}); }
  /// RVV frontend: vsetvli rd, rs1, vtypei (imm carries the vtype bits).
  void vsetvli(RegIdx rd, RegIdx rs1, std::uint32_t vtypei) {
    emit({Opcode::kVsetvli, rd, rs1, 0, static_cast<std::int32_t>(vtypei), 0});
  }

  // --- vector arithmetic; `vs` variants take a scalar rs2 operand ---
  void vadd(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVadd, vd, v1, v2, 0, fl}); }
  void vsub(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVsub, vd, v1, v2, 0, fl}); }
  void vmul(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVmul, vd, v1, v2, 0, fl}); }
  void vand(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVand, vd, v1, v2, 0, fl}); }
  void vor(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVor, vd, v1, v2, 0, fl}); }
  void vxor(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVxor, vd, v1, v2, 0, fl}); }
  void vsll(RegIdx vd, RegIdx v1, RegIdx s2) { emit({Opcode::kVsll, vd, v1, s2, 0, kFlagSrc2Scalar}); }
  void vsrl(RegIdx vd, RegIdx v1, RegIdx s2) { emit({Opcode::kVsrl, vd, v1, s2, 0, kFlagSrc2Scalar}); }
  void vmin(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVmin, vd, v1, v2, 0, fl}); }
  void vmax(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVmax, vd, v1, v2, 0, fl}); }
  void vabsdiff(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVabsdiff, vd, v1, v2, 0, fl}); }
  void vfadd(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVfadd, vd, v1, v2, 0, fl}); }
  void vfsub(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVfsub, vd, v1, v2, 0, fl}); }
  void vfmul(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVfmul, vd, v1, v2, 0, fl}); }
  void vfdiv(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVfdiv, vd, v1, v2, 0, fl}); }
  void vfma(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVfma, vd, v1, v2, 0, fl}); }
  void vfsqrt(RegIdx vd, RegIdx v1) { emit({Opcode::kVfsqrt, vd, v1, 0, 0, 0}); }
  void vfmin(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVfmin, vd, v1, v2, 0, fl}); }
  void vfmax(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVfmax, vd, v1, v2, 0, fl}); }
  void vfabs(RegIdx vd, RegIdx v1) { emit({Opcode::kVfabs, vd, v1, 0, 0, 0}); }
  void vfneg(RegIdx vd, RegIdx v1) { emit({Opcode::kVfneg, vd, v1, 0, 0, 0}); }
  void vcmplt(RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVcmplt, 0, v1, v2, 0, fl}); }
  void vcmpeq(RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVcmpeq, 0, v1, v2, 0, fl}); }
  void vfcmplt(RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVfcmplt, 0, v1, v2, 0, fl}); }
  void vmerge(RegIdx vd, RegIdx v1, RegIdx v2, std::uint8_t fl = 0) { emit({Opcode::kVmerge, vd, v1, v2, 0, fl}); }
  void vmov(RegIdx vd, RegIdx v1) { emit({Opcode::kVmov, vd, v1, 0, 0, 0}); }
  void vbcast(RegIdx vd, RegIdx s1) { emit({Opcode::kVbcast, vd, s1, 0, 0, 0}); }
  void viota(RegIdx vd) { emit({Opcode::kViota, vd, 0, 0, 0, 0}); }

  // --- vector reductions (scalar destination) ---
  void vredsum(RegIdx sd, RegIdx v1) { emit({Opcode::kVredsum, sd, v1, 0, 0, 0}); }
  void vfredsum(RegIdx sd, RegIdx v1) { emit({Opcode::kVfredsum, sd, v1, 0, 0, 0}); }
  void vredmin(RegIdx sd, RegIdx v1) { emit({Opcode::kVredmin, sd, v1, 0, 0, 0}); }
  void vredmax(RegIdx sd, RegIdx v1) { emit({Opcode::kVredmax, sd, v1, 0, 0, 0}); }

  // --- vector memory ---
  void vload(RegIdx vd, RegIdx base, std::int32_t off = 0, std::uint8_t fl = 0) { emit({Opcode::kVload, vd, base, 0, off, fl}); }
  void vstore(RegIdx vdata, RegIdx base, std::int32_t off = 0, std::uint8_t fl = 0) { emit({Opcode::kVstore, vdata, base, 0, off, fl}); }
  void vloads(RegIdx vd, RegIdx base, RegIdx stride) { emit({Opcode::kVloads, vd, base, stride, 0, 0}); }
  void vstores(RegIdx vdata, RegIdx base, RegIdx stride) { emit({Opcode::kVstores, vdata, base, stride, 0, 0}); }
  void vgather(RegIdx vd, RegIdx base, RegIdx voff) { emit({Opcode::kVgather, vd, base, voff, 0, 0}); }
  void vscatter(RegIdx vdata, RegIdx base, RegIdx voff) { emit({Opcode::kVscatter, vdata, base, voff, 0, 0}); }
  // RVV frontend unit-stride forms (vle64.v / vse64.v):
  void vle64(RegIdx vd, RegIdx base, std::int32_t off = 0, std::uint8_t fl = 0) { emit({Opcode::kVle, vd, base, 0, off, fl}); }
  void vse64(RegIdx vdata, RegIdx base, std::int32_t off = 0, std::uint8_t fl = 0) { emit({Opcode::kVse, vdata, base, 0, off, fl}); }

  /// Resolve all labels and produce the program. The builder may not be
  /// reused afterwards.
  Program build();

 private:
  void emit_branch(Opcode op, RegIdx a, RegIdx b, Label l, RegIdx rd = 0);

  struct Fixup {
    std::size_t inst_index;
    std::size_t label_id;
  };

  std::string name_;
  Addr text_base_;
  IsaId isa_ = IsaId::kVlt;
  std::vector<Instruction> code_;
  std::vector<std::int64_t> label_pos_;  // -1 until bound
  std::vector<Fixup> fixups_;
  bool built_ = false;
};

}  // namespace vlt::isa
