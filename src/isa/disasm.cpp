#include "isa/disasm.hpp"

#include <sstream>

namespace vlt::isa {

namespace {

void append_reg(std::ostringstream& os, bool vector_file, RegIdx r) {
  os << (vector_file ? 'v' : 's') << static_cast<unsigned>(r);
}

}  // namespace

std::string disassemble(const Instruction& inst) {
  const OpInfo& info = op_info(inst.op);
  std::ostringstream os;
  os << info.name;
  if (is_vector(inst.op) && inst.src2_scalar()) os << ".vs";

  const bool vec = is_vector(inst.op);
  bool first = true;
  auto sep = [&] {
    os << (first ? " " : ", ");
    first = false;
  };

  RegIdx sdst, vdst;
  if (vector_dst_reg(inst, vdst)) {
    sep();
    append_reg(os, true, vdst);
  } else if (scalar_dst_reg(inst, sdst)) {
    sep();
    append_reg(os, false, sdst);
  } else if (vec && is_store(inst.op)) {
    sep();
    append_reg(os, true, inst.rd);  // store data
  }

  if (info.traits & kTraitReadsRs1) {
    sep();
    // rs1 of vector memory ops and vbcast is a scalar base/operand.
    bool rs1_vector = vec && info.kind != OpKind::kVecMem &&
                      inst.op != Opcode::kVbcast;
    append_reg(os, rs1_vector, inst.rs1);
  }
  if (info.traits & kTraitReadsRs2) {
    sep();
    bool rs2_vector = vec && !inst.src2_scalar() &&
                      inst.op != Opcode::kVloads && inst.op != Opcode::kVstores;
    if (inst.op == Opcode::kVgather || inst.op == Opcode::kVscatter)
      rs2_vector = true;
    append_reg(os, rs2_vector, inst.rs2);
  }
  if (inst.imm != 0 || inst.op == Opcode::kLi || inst.op == Opcode::kLiHi ||
      is_branch(inst.op)) {
    sep();
    os << inst.imm;
  }
  if (inst.masked()) os << " (masked)";
  return os.str();
}

std::string disassemble(const Program& prog) {
  std::ostringstream os;
  for (std::size_t pc = 0; pc < prog.size(); ++pc)
    os << pc << ":\t" << disassemble(prog.code()[pc]) << "\n";
  return os.str();
}

}  // namespace vlt::isa
