// Disassembler for debugging and test diagnostics.
#pragma once

#include <string>

#include "isa/opcode.hpp"
#include "isa/program.hpp"

namespace vlt::isa {

/// One-line rendering, e.g. "vadd.vs v3, v1, s7 (masked)".
std::string disassemble(const Instruction& inst);

/// Whole-program listing with pc prefixes.
std::string disassemble(const Program& prog);

}  // namespace vlt::isa
