#include "isa/rvv/rvv.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "func/arch_state.hpp"
#include "func/executor.hpp"

namespace vlt::isa::rvv {

std::optional<Vtype> decode_vtype(std::uint32_t vtypei) {
  if ((vtypei & 0xFFFFFF00u) != 0) return std::nullopt;
  const unsigned vlmul = vtypei & 0x7u;
  const unsigned vsew = (vtypei >> 3) & 0x7u;
  if (vsew > 3) return std::nullopt;
  Vtype t;
  switch (vlmul) {
    case 0: t.lmul_num = 1; t.lmul_den = 1; break;
    case 1: t.lmul_num = 2; t.lmul_den = 1; break;
    case 2: t.lmul_num = 4; t.lmul_den = 1; break;
    case 3: t.lmul_num = 8; t.lmul_den = 1; break;
    case 5: t.lmul_num = 1; t.lmul_den = 8; break;
    case 6: t.lmul_num = 1; t.lmul_den = 4; break;
    case 7: t.lmul_num = 1; t.lmul_den = 2; break;
    default: return std::nullopt;  // vlmul == 4 is reserved
  }
  t.sew = 8u << vsew;
  t.ta = ((vtypei >> 6) & 1u) != 0;
  t.ma = ((vtypei >> 7) & 1u) != 0;
  t.bits = vtypei & 0xFFu;
  return t;
}

unsigned vlmax(unsigned max_vl, std::uint32_t vtypei) {
  std::optional<Vtype> t = decode_vtype(vtypei);
  if (!t) return 0;
  // One RVV element per 64-bit container element: only SEW=64 without
  // register grouping fits the register file. LMUL > 1 would need vreg
  // groups; smaller SEW would need sub-element packing. Both are vill
  // under this model.
  if (t->sew != 64 || t->lmul_num > 1) return 0;
  return max_vl * t->lmul_num / t->lmul_den;
}

std::uint64_t clamp_avl(std::uint64_t avl, unsigned vlmax) {
  return std::min<std::uint64_t>(avl, vlmax);
}

namespace {

std::array<bool, kNumOpcodes> rvv_mask() {
  std::array<bool, kNumOpcodes> m;
  m.fill(true);
  // The VLT set-VL family is not RVV; neither are the strided/indexed
  // vector memory ops (the supported RVV subset is unit-stride e64 only).
  for (Opcode op : {Opcode::kSetvl, Opcode::kSetvlMax, Opcode::kVload,
                    Opcode::kVstore, Opcode::kVloads, Opcode::kVstores,
                    Opcode::kVgather, Opcode::kVscatter})
    m[static_cast<std::size_t>(op)] = false;
  return m;
}

class RvvFrontend final : public IsaFrontend {
 public:
  RvvFrontend() : IsaFrontend(rvv_mask()) {}

  IsaId id() const override { return IsaId::kRvv; }

  unsigned vlmax(unsigned max_vl, std::uint32_t vtype) const override {
    return rvv::vlmax(max_vl, vtype);
  }

  void execute_setvl(const Instruction& inst, func::ArchState& st,
                     const func::ExecContext& ctx) const override {
    VLT_CHECK(inst.op == Opcode::kVsetvli,
              "rvv frontend asked to execute a non-vsetvli set-VL op");
    const auto vtypei = static_cast<std::uint32_t>(inst.imm);
    const unsigned vm = rvv::vlmax(ctx.max_vl, vtypei);
    if (vm == 0) {
      // Reserved or unsupported encoding: vill, vl=0, rd cleared.
      st.set_vtype(kVtypeVill);
      st.set_vl(0);
      if (inst.rd != 0) st.set_sreg(inst.rd, 0);
      return;
    }
    std::uint64_t avl;
    if (inst.rs1 != 0)
      avl = st.sreg(inst.rs1);  // unsigned per the spec
    else if (inst.rd != 0)
      avl = ~std::uint64_t{0};  // x0 source, non-x0 dest: request VLMAX
    else
      avl = st.vl();  // x0/x0: keep vl (re-clamped under the new vtype)
    const auto vl = static_cast<unsigned>(clamp_avl(avl, vm));
    st.set_vtype(vtypei & 0xFFu);
    st.set_vl(vl);
    if (inst.rd != 0) st.set_sreg(inst.rd, vl);
  }
};

}  // namespace

const IsaFrontend& rvv_frontend() {
  static const RvvFrontend fe;
  return fe;
}

}  // namespace vlt::isa::rvv
