// RISC-V Vector (RVV 1.0) frontend: vtype decode, VLMAX/LMUL rules, and
// the vsetvli AVL semantics, after the rv32emu decode slices referenced
// in SNIPPETS.md. See docs/ISA.md for the supported subset.
//
// Modeling note: the machine's vector registers hold kMaxVectorLength
// 64-bit elements, so this frontend maps one RVV element onto one 64-bit
// container element (effective VLEN = 64 * partition-max-VL bits). Only
// SEW=64 with LMUL <= 1 fits that model without register grouping; every
// other vtype encoding — including architecturally valid ones the model
// does not implement — sets vill, exactly as real hardware treats
// unsupported configurations.
#pragma once

#include <cstdint>
#include <optional>

#include "isa/isa.hpp"

namespace vlt::isa::rvv {

// vtype CSR layout (the vsetvli zimm11 immediate uses the low bits):
//   [2:0] vlmul   [5:3] vsew   [6] vta   [7] vma   [31] vill
inline constexpr std::uint32_t kVtypeVill = 0x80000000u;

/// e64m1 — the canonical configuration of this repo's RVV kernels (one
/// RVV element per 64-bit container element, no register grouping).
inline constexpr std::uint32_t kVtypeE64M1 = 0x18;  // vsew=3, vlmul=0

struct Vtype {
  unsigned sew = 8;       // element width in bits: 8 << vsew
  unsigned lmul_num = 1;  // LMUL = lmul_num / lmul_den
  unsigned lmul_den = 1;
  bool ta = false;
  bool ma = false;
  std::uint32_t bits = 0;  // the low-8-bit encoding, for the vtype CSR
};

/// Decodes a vtypei immediate. nullopt = reserved encoding (high bits
/// set, vsew > 3, or vlmul == 4) — architecturally vill.
std::optional<Vtype> decode_vtype(std::uint32_t vtypei);

/// VLMAX of a lane partition holding `max_vl` 64-bit container elements
/// under `vtypei`. Returns 0 (vill) for reserved encodings and for valid
/// encodings outside the supported subset (SEW != 64 or LMUL > 1);
/// otherwise max_vl * lmul_num / lmul_den.
unsigned vlmax(unsigned max_vl, std::uint32_t vtypei);

/// The vsetvli AVL rules (RVV 1.0 §6.2), given the raw operand fields and
/// resolved AVL source value: rs1 != x0 takes the (unsigned) register
/// value, rs1 == x0 with rd != x0 requests VLMAX, and rs1 == rd == x0
/// keeps the current vl. Returns min(avl, vlmax).
std::uint64_t clamp_avl(std::uint64_t avl, unsigned vlmax);

/// The RVV frontend singleton (registered under IsaId::kRvv).
const IsaFrontend& rvv_frontend();

}  // namespace vlt::isa::rvv
