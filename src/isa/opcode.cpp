#include "isa/opcode.hpp"

#include "common/log.hpp"

namespace vlt::isa {

namespace {

constexpr std::uint8_t kR1 = kTraitReadsRs1;
constexpr std::uint8_t kR2 = kTraitReadsRs2;
constexpr std::uint8_t kWD = kTraitWritesRd;
constexpr std::uint8_t kLD = kTraitIsLoad;
constexpr std::uint8_t kST = kTraitIsStore;
constexpr std::uint8_t kRD = kTraitReadsRdAsSrc;
constexpr std::uint8_t kWM = kTraitWritesMask;
constexpr std::uint8_t kRM = kTraitReadsMask;

using K = OpKind;
using F = FuClass;

const OpInfo kTable[kNumOpcodes] = {
    /* kNop      */ {"nop", F::kNone, 1, K::kScalarAlu, 0},
    /* kHalt     */ {"halt", F::kNone, 1, K::kSystem, 0},
    /* kLi       */ {"li", F::kSIntAlu, 1, K::kScalarAlu, kWD},
    /* kLiHi     */ {"lihi", F::kSIntAlu, 1, K::kScalarAlu, kWD | kRD},
    /* kMov      */ {"mov", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kWD},
    /* kAdd      */ {"add", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kAddi     */ {"addi", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kWD},
    /* kSub      */ {"sub", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kMul      */ {"mul", F::kSIntAlu, 4, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kDiv      */ {"div", F::kSIntAlu, 12, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kRem      */ {"rem", F::kSIntAlu, 12, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kAnd      */ {"and", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kAndi     */ {"andi", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kWD},
    /* kOr       */ {"or", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kOri      */ {"ori", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kWD},
    /* kXor      */ {"xor", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kXori     */ {"xori", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kWD},
    /* kSll      */ {"sll", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kSlli     */ {"slli", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kWD},
    /* kSrl      */ {"srl", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kSrli     */ {"srli", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kWD},
    /* kSra      */ {"sra", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kSlt      */ {"slt", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kSlti     */ {"slti", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kWD},
    /* kSeq      */ {"seq", F::kSIntAlu, 1, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kFadd     */ {"fadd", F::kSFpu, 4, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kFsub     */ {"fsub", F::kSFpu, 4, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kFmul     */ {"fmul", F::kSFpu, 4, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kFdiv     */ {"fdiv", F::kSFpu, 16, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kFsqrt    */ {"fsqrt", F::kSFpu, 20, K::kScalarAlu, kR1 | kWD},
    /* kFabs     */ {"fabs", F::kSFpu, 2, K::kScalarAlu, kR1 | kWD},
    /* kFneg     */ {"fneg", F::kSFpu, 2, K::kScalarAlu, kR1 | kWD},
    /* kFmin     */ {"fmin", F::kSFpu, 2, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kFmax     */ {"fmax", F::kSFpu, 2, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kFcvtIF   */ {"fcvt.i.f", F::kSFpu, 3, K::kScalarAlu, kR1 | kWD},
    /* kFcvtFI   */ {"fcvt.f.i", F::kSFpu, 3, K::kScalarAlu, kR1 | kWD},
    /* kFlt      */ {"flt", F::kSFpu, 2, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kFle      */ {"fle", F::kSFpu, 2, K::kScalarAlu, kR1 | kR2 | kWD},
    /* kLoad     */ {"load", F::kSMem, 1, K::kScalarMem, kR1 | kWD | kLD},
    /* kStore    */ {"store", F::kSMem, 1, K::kScalarMem, kR1 | kR2 | kST},
    /* kBeq      */ {"beq", F::kBranch, 1, K::kBranch, kR1 | kR2},
    /* kBne      */ {"bne", F::kBranch, 1, K::kBranch, kR1 | kR2},
    /* kBlt      */ {"blt", F::kBranch, 1, K::kBranch, kR1 | kR2},
    /* kBge      */ {"bge", F::kBranch, 1, K::kBranch, kR1 | kR2},
    /* kJump     */ {"jump", F::kBranch, 1, K::kBranch, 0},
    /* kJal      */ {"jal", F::kBranch, 1, K::kBranch, kWD},
    /* kJr       */ {"jr", F::kBranch, 1, K::kBranch, kR1},
    /* kTid      */ {"tid", F::kSIntAlu, 1, K::kSystem, kWD},
    /* kNthreads */ {"nthreads", F::kSIntAlu, 1, K::kSystem, kWD},
    /* kBarrier  */ {"barrier", F::kNone, 1, K::kSystem, 0},
    /* kMembar   */ {"membar", F::kNone, 1, K::kSystem, 0},
    /* kSetvl    */ {"setvl", F::kSIntAlu, 1, K::kSystem, kR1 | kWD},
    /* kSetvlMax */ {"setvlmax", F::kSIntAlu, 1, K::kSystem, kWD},
    /* kVadd     */ {"vadd", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWD},
    /* kVsub     */ {"vsub", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWD},
    /* kVmul     */ {"vmul", F::kVAlu1, 4, K::kVecArith, kR1 | kR2 | kWD},
    /* kVand     */ {"vand", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWD},
    /* kVor      */ {"vor", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWD},
    /* kVxor     */ {"vxor", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWD},
    /* kVsll     */ {"vsll", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWD},
    /* kVsrl     */ {"vsrl", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWD},
    /* kVmin     */ {"vmin", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWD},
    /* kVmax     */ {"vmax", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWD},
    /* kVabsdiff */ {"vabsdiff", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWD},
    /* kVfadd    */ {"vfadd", F::kVAlu0, 4, K::kVecArith, kR1 | kR2 | kWD},
    /* kVfsub    */ {"vfsub", F::kVAlu0, 4, K::kVecArith, kR1 | kR2 | kWD},
    /* kVfmul    */ {"vfmul", F::kVAlu1, 4, K::kVecArith, kR1 | kR2 | kWD},
    /* kVfdiv    */ {"vfdiv", F::kVAlu2, 8, K::kVecArith, kR1 | kR2 | kWD},
    /* kVfma     */ {"vfma", F::kVAlu1, 4, K::kVecArith, kR1 | kR2 | kWD | kRD},
    /* kVfsqrt   */ {"vfsqrt", F::kVAlu2, 12, K::kVecArith, kR1 | kWD},
    /* kVfmin    */ {"vfmin", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWD},
    /* kVfmax    */ {"vfmax", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWD},
    /* kVfabs    */ {"vfabs", F::kVAlu0, 2, K::kVecArith, kR1 | kWD},
    /* kVfneg    */ {"vfneg", F::kVAlu0, 2, K::kVecArith, kR1 | kWD},
    /* kVcmplt   */ {"vcmplt", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWM},
    /* kVcmpeq   */ {"vcmpeq", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWM},
    /* kVfcmplt  */ {"vfcmplt", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWM},
    /* kVmerge   */ {"vmerge", F::kVAlu0, 2, K::kVecArith, kR1 | kR2 | kWD | kRM},
    /* kVmov     */ {"vmov", F::kVAlu0, 2, K::kVecArith, kR1 | kWD},
    /* kVbcast   */ {"vbcast", F::kVAlu0, 2, K::kVecArith, kWD},
    /* kViota    */ {"viota", F::kVAlu0, 2, K::kVecArith, kWD},
    /* kVredsum  */ {"vredsum", F::kVAlu2, 6, K::kVecRed, kR1 | kWD},
    /* kVfredsum */ {"vfredsum", F::kVAlu2, 8, K::kVecRed, kR1 | kWD},
    /* kVredmin  */ {"vredmin", F::kVAlu2, 6, K::kVecRed, kR1 | kWD},
    /* kVredmax  */ {"vredmax", F::kVAlu2, 6, K::kVecRed, kR1 | kWD},
    /* kVload    */ {"vload", F::kVMem, 1, K::kVecMem, kR1 | kWD | kLD},
    /* kVstore   */ {"vstore", F::kVMem, 1, K::kVecMem, kR1 | kST | kRD},
    /* kVloads   */ {"vloads", F::kVMem, 1, K::kVecMem, kR1 | kR2 | kWD | kLD},
    /* kVstores  */ {"vstores", F::kVMem, 1, K::kVecMem, kR1 | kR2 | kST | kRD},
    /* kVgather  */ {"vgather", F::kVMem, 1, K::kVecMem, kR1 | kR2 | kWD | kLD},
    /* kVscatter */ {"vscatter", F::kVMem, 1, K::kVecMem, kR1 | kR2 | kST | kRD},
    /* kVsetvli  */ {"vsetvli", F::kSIntAlu, 1, K::kSystem, kR1 | kWD},
    /* kVle      */ {"vle64", F::kVMem, 1, K::kVecMem, kR1 | kWD | kLD},
    /* kVse      */ {"vse64", F::kVMem, 1, K::kVecMem, kR1 | kST | kRD},
};

}  // namespace

const OpInfo& op_info(Opcode op) {
  auto idx = static_cast<std::size_t>(op);
  VLT_CHECK(idx < kNumOpcodes, "invalid opcode");
  return kTable[idx];
}

RegList scalar_src_regs(const Instruction& inst) {
  const OpInfo& info = op_info(inst.op);
  RegList out;
  if (!is_vector(inst.op)) {
    if (info.traits & kTraitReadsRs1) out.push(inst.rs1);
    if (info.traits & kTraitReadsRs2) out.push(inst.rs2);
    if (info.traits & kTraitReadsRdAsSrc) out.push(inst.rd);  // kLiHi
    return out;
  }
  // Vector instructions read scalar registers in three places: memory base
  // addresses, strides, and .vs-form operands / broadcasts.
  switch (inst.op) {
    case Opcode::kVload:
    case Opcode::kVstore:
    case Opcode::kVle:
    case Opcode::kVse:
      out.push(inst.rs1);
      break;
    case Opcode::kVloads:
    case Opcode::kVstores:
      out.push(inst.rs1);
      out.push(inst.rs2);
      break;
    case Opcode::kVgather:
    case Opcode::kVscatter:
      out.push(inst.rs1);  // base is scalar, offsets (rs2) are a vector
      break;
    case Opcode::kVbcast:
      out.push(inst.rs1);
      break;
    default:
      if (inst.src2_scalar() && (info.traits & kTraitReadsRs2))
        out.push(inst.rs2);
      break;
  }
  return out;
}

bool scalar_dst_reg(const Instruction& inst, RegIdx& out) {
  const OpInfo& info = op_info(inst.op);
  if (!(info.traits & kTraitWritesRd)) return false;
  if (!is_vector(inst.op)) {
    out = inst.rd;
    return true;
  }
  if (info.kind == OpKind::kVecRed) {  // reductions write a scalar register
    out = inst.rd;
    return true;
  }
  return false;
}

RegList vector_src_regs(const Instruction& inst) {
  RegList out;
  if (!is_vector(inst.op)) return out;
  const OpInfo& info = op_info(inst.op);
  switch (inst.op) {
    case Opcode::kVload:
    case Opcode::kVloads:
    case Opcode::kVle:
      break;  // only scalar sources
    case Opcode::kVstore:
    case Opcode::kVstores:
    case Opcode::kVse:
      out.push(inst.rd);  // store data
      break;
    case Opcode::kVgather:
      out.push(inst.rs2);  // offsets
      break;
    case Opcode::kVscatter:
      out.push(inst.rs2);  // offsets
      out.push(inst.rd);   // store data
      break;
    case Opcode::kVbcast:
    case Opcode::kViota:
      break;
    default:
      if (info.traits & kTraitReadsRs1) out.push(inst.rs1);
      if ((info.traits & kTraitReadsRs2) && !inst.src2_scalar())
        out.push(inst.rs2);
      if (info.traits & kTraitReadsRdAsSrc) out.push(inst.rd);  // vfma
      break;
  }
  // A masked partial write reads the old destination contents.
  RegIdx vd;
  if (inst.masked() && vector_dst_reg(inst, vd)) {
    bool already = false;
    for (unsigned i = 0; i < out.n; ++i) already |= (out.r[i] == vd);
    if (!already) out.push(vd);
  }
  return out;
}

bool vector_dst_reg(const Instruction& inst, RegIdx& out) {
  if (!is_vector(inst.op)) return false;
  const OpInfo& info = op_info(inst.op);
  if (info.kind == OpKind::kVecRed) return false;
  if (!(info.traits & kTraitWritesRd)) return false;
  if (is_store(inst.op)) return false;
  out = inst.rd;
  return true;
}

bool reads_mask(const Instruction& inst) {
  return inst.masked() || (op_info(inst.op).traits & kTraitReadsMask) != 0;
}

bool writes_mask(const Instruction& inst) {
  return (op_info(inst.op).traits & kTraitWritesMask) != 0;
}

}  // namespace vlt::isa
