// Multi-ISA frontend layer (docs/ISA.md).
//
// The micro-op tables in opcode.hpp are shared infrastructure: every
// frontend lowers to the same Instruction/OpInfo rows, so the timing
// pipelines stay ISA-agnostic. What differs per ISA is the *architected*
// surface — which opcodes programs may contain, how the vector length is
// configured (setvl/setvlmax vs vsetvli/VLMAX/LMUL), and how instructions
// render in disassembly. IsaFrontend captures exactly that seam; Program,
// ExecContext, and MachineConfig carry an IsaId so the executor, the
// static checks, and the campaign cache all know which frontend governs a
// given instruction stream.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "isa/opcode.hpp"

namespace vlt {

/// Identity of an instruction-set frontend. Participates in
/// MachineConfig::fingerprint(), campaign RunKeys, and RunResult
/// serialization (schema vltsweep-v4; absent means kVlt).
enum class IsaId : std::uint8_t {
  kVlt,  // the Cray X1-inspired seed ISA (setvl/setvlmax)
  kRvv,  // RISC-V Vector subset (vsetvli/VLMAX/LMUL, unit-stride e64)
};

inline constexpr std::size_t kNumIsas = 2;

namespace func {
class ArchState;
struct ExecContext;
}  // namespace func

namespace isa {

// Re-exported so frontend code can spell the id isa::IsaId alongside the
// other isa:: types; vlt::IsaId is the canonical home (Program,
// MachineConfig, ExecContext name it unqualified).
using vlt::IsaId;

/// Canonical lowercase name ("vlt", "rvv") used by CLIs, RunKeys, and
/// serialization.
const char* isa_name(IsaId id);
/// Inverse of isa_name; nullopt on an unknown spelling.
std::optional<IsaId> isa_from_name(const std::string& name);
/// Every frontend name in IsaId order (usage text, sweep axes).
std::vector<std::string> isa_names();

/// One instruction-set frontend over the shared micro-op tables.
class IsaFrontend {
 public:
  virtual ~IsaFrontend() = default;

  virtual IsaId id() const = 0;
  const char* name() const { return isa_name(id()); }

  /// True when `op` belongs to this frontend's instruction set. O(1);
  /// the executor consults this on its set-VL dispatch path.
  bool has_opcode(Opcode op) const {
    return mask_[static_cast<std::size_t>(op)];
  }

  /// Every opcode of the frontend, in table order (closure checks).
  std::vector<Opcode> opcodes() const;

  /// Disassembles one instruction of this frontend.
  std::string disasm(const Instruction& inst) const;

  /// Hardware VLMAX of a lane partition holding `max_vl` 64-bit elements
  /// under the frontend's current VL configuration. `vtype` is the RVV
  /// vtype CSR; the VLT frontend ignores it. 0 means the configuration is
  /// unusable (RVV vill).
  virtual unsigned vlmax(unsigned max_vl, std::uint32_t vtype) const = 0;

  /// Executes one frontend-owned set-VL instruction (kSetvl/kSetvlMax for
  /// VLT, kVsetvli for RVV), updating vl/vtype and the rd register. The
  /// shared executor dispatches here and handles every other opcode
  /// itself; callers guarantee has_opcode(inst.op).
  virtual void execute_setvl(const Instruction& inst, func::ArchState& st,
                             const func::ExecContext& ctx) const = 0;

 protected:
  explicit IsaFrontend(const std::array<bool, kNumOpcodes>& mask)
      : mask_(mask) {}

 private:
  std::array<bool, kNumOpcodes> mask_;
};

/// Singleton frontend registry.
const IsaFrontend& frontend(IsaId id);

}  // namespace isa
}  // namespace vlt
