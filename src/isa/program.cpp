#include "isa/program.hpp"

#include <cstring>

namespace vlt::isa {

Label ProgramBuilder::label() {
  label_pos_.push_back(-1);
  return Label(label_pos_.size() - 1);
}

void ProgramBuilder::bind(Label l) {
  VLT_CHECK(l.valid_, "binding a default-constructed label");
  VLT_CHECK(label_pos_[l.id_] < 0, "label bound twice");
  label_pos_[l.id_] = static_cast<std::int64_t>(code_.size());
}

void ProgramBuilder::emit(Instruction inst) {
  VLT_CHECK(!built_, "emit after build()");
  code_.push_back(inst);
}

void ProgramBuilder::li(RegIdx rd, std::int64_t imm) {
  auto lo = static_cast<std::int32_t>(imm);
  emit({Opcode::kLi, rd, 0, 0, lo, 0});
  // kLi sign-extends; patch the upper half when it is not already implied.
  if (static_cast<std::int64_t>(lo) != imm) {
    if (lo < 0) {
      // Clear the ones the sign extension smeared into the upper half
      // before ORing the real bits in.
      emit({Opcode::kSlli, rd, rd, 0, 32, 0});
      emit({Opcode::kSrli, rd, rd, 0, 32, 0});
    }
    auto hi = static_cast<std::int32_t>(static_cast<std::uint64_t>(imm) >> 32);
    emit({Opcode::kLiHi, rd, 0, 0, hi, 0});
  }
}

void ProgramBuilder::li_f64(RegIdx rd, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  auto lo = static_cast<std::int32_t>(bits & 0xFFFFFFFFu);
  emit({Opcode::kLi, rd, 0, 0, lo, 0});
  std::uint64_t lo_ext = static_cast<std::uint64_t>(static_cast<std::int64_t>(lo));
  if (lo_ext != bits) {
    // kLiHi ORs the upper half in. When kLi sign-extended ones into the
    // upper half, clear them first via an explicit mask.
    if (lo < 0) {
      emit({Opcode::kSlli, rd, rd, 0, 32, 0});
      emit({Opcode::kSrli, rd, rd, 0, 32, 0});
    }
    auto hi = static_cast<std::int32_t>(bits >> 32);
    emit({Opcode::kLiHi, rd, 0, 0, hi, 0});
  }
}

void ProgramBuilder::emit_branch(Opcode op, RegIdx a, RegIdx b, Label l,
                                 RegIdx rd) {
  VLT_CHECK(l.valid_, "branch to default-constructed label");
  fixups_.push_back({code_.size(), l.id_});
  emit({op, rd, a, b, 0, 0});
}

Program ProgramBuilder::build() {
  VLT_CHECK(!built_, "build() called twice");
  built_ = true;
  for (const Fixup& f : fixups_) {
    std::int64_t target = label_pos_[f.label_id];
    VLT_CHECK(target >= 0, "unbound label in " + name_);
    // Taken branch: pc <- pc + 1 + imm.
    code_[f.inst_index].imm = static_cast<std::int32_t>(
        target - static_cast<std::int64_t>(f.inst_index) - 1);
  }
  return Program(std::move(name_), std::move(code_), text_base_, isa_);
}

}  // namespace vlt::isa
