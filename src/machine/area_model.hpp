// First-order area model (paper §4.2, Tables 1 and 2).
//
// Component areas are derived from Alpha die photos scaled to 0.10 µm
// CMOS; multithreading a scalar core costs 6% (2 contexts) or 10%
// (4 contexts) of its area, following the paper's assumptions.
#pragma once

#include <string>
#include <vector>

#include "machine/machine_config.hpp"

namespace vlt::machine {

struct ComponentAreas {
  double su_2way = 5.7;    // 2-way scalar unit + L1 caches (mm^2)
  double su_4way = 20.9;   // 4-way scalar unit + L1 caches
  double vcl_2way = 2.1;   // 2-way vector control logic
  double lane = 6.1;       // one vector lane
  double l2_4mb = 98.4;    // 4-MByte L2 cache
  double smt2_penalty = 0.06;
  double smt4_penalty = 0.10;
};

class AreaModel {
 public:
  explicit AreaModel(ComponentAreas areas = {}) : areas_(areas) {}

  /// Area of one scalar unit with the given issue width and SMT depth.
  double scalar_unit_area(unsigned width, unsigned smt_contexts) const;

  /// Total die area of a machine configuration.
  double config_area(const MachineConfig& config) const;

  /// Area of the Table 3 base vector processor (4-way SU, 8 lanes): 170.2.
  double base_area() const;

  /// Table 2: percent area increase of `config` over the base design.
  double pct_increase(const MachineConfig& config) const;

  const ComponentAreas& components() const { return areas_; }

  /// Renders Table 1 (component areas) as text.
  std::string table1() const;

  /// Renders Table 2 (area increase for the standard VLT configs) as text.
  std::string table2() const;

 private:
  ComponentAreas areas_;
};

}  // namespace vlt::machine
