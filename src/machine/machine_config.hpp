// Machine configurations: the base vector processor of Table 3 and the
// VLT design points of Table 2 / Figures 5-6.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "audit/sink.hpp"
#include "isa/isa.hpp"
#include "lanecore/lane_core.hpp"
#include "mem/l2_cache.hpp"
#include "mem/main_memory.hpp"
#include "su/scalar_core.hpp"
#include "vu/vector_unit.hpp"

namespace vlt::machine {

struct MachineConfig {
  std::string name;
  /// ISA frontend workloads are built for on this machine. Part of
  /// fingerprint(): two frontends emit different instruction streams for
  /// the same kernel, so results must never alias in the cache.
  IsaId isa = IsaId::kVlt;
  std::vector<su::SuParams> sus;  // one entry per scalar unit
  bool has_vector_unit = true;
  vu::VuParams vu;
  mem::L2Params l2;
  lanecore::LaneCoreParams lane_core;
  unsigned barrier_latency = 40;       // memory-based barrier cost
  unsigned phase_switch_overhead = 600;  // thread API + vreg save/restore
  unsigned max_vector_threads = 1;
  /// Memory-bus occupancy per 64-byte line. The X1-class machines the
  /// paper models stream one line per cycle into the L2.
  unsigned mem_cycles_per_line = 1;

  /// Per-run cycle budget: a run whose clock reaches this many cycles
  /// raises SimError(kTimeout) with a deadlock diagnostic (phase label,
  /// per-context PCs, barrier state). Campaigns override it per cell via
  /// CampaignOptions::cell_cycle_limit / vltsweep --cell-cycle-limit.
  /// Deliberately NOT part of fingerprint(): the budget bounds a run, it
  /// never changes the timing of a run that completes within it.
  Cycle cycle_limit = 2'000'000'000ull;

  /// Event-driven skip-ahead (docs/PERF.md): the phase loop jumps the
  /// clock straight to the next unit event instead of ticking every
  /// cycle. Provably timing-neutral — reported cycles and statistics are
  /// bit-identical either way (tests/test_skip_equivalence.cpp) — so,
  /// like cycle_limit, it is deliberately NOT part of fingerprint().
  /// The CLIs expose --no-skip to select the cycle-by-cycle loop as a
  /// cross-check oracle.
  bool event_skip = true;

  /// Host worker threads for the event-driven engine (docs/PERF.md):
  /// when > 1, scalar units whose partitions share no state — vector-
  /// thread phases, where each unit drives its own vector-unit partition
  /// and the units meet only at the barrier and the L2 — tick on separate
  /// host threads within a cycle, with shared-structure operations gated
  /// back into serial unit order. Timing-neutral like event_skip (results
  /// are bit-identical at any thread count, enforced by
  /// tests/test_skip_equivalence.cpp), so it is deliberately NOT part of
  /// fingerprint(). Ignored by the cycle-by-cycle oracle and whenever
  /// audit or tracing observes tick order.
  unsigned host_threads = 1;

  /// Audit mode (off by default): dynamic invariant checks and lockstep
  /// co-simulation. Observational only — enabling it never changes timing.
  audit::AuditConfig audit;

  /// Derived main-memory parameters: an uncontended L2 miss completes
  /// miss_latency cycles after it starts (Table 3: 100).
  mem::MainMemoryParams memory_params() const {
    mem::MainMemoryParams p;
    p.latency = l2.miss_latency - l2.hit_latency;
    p.cycles_per_line = mem_cycles_per_line;
    return p;
  }

  unsigned total_smt_slots() const {
    unsigned n = 0;
    for (const auto& s : sus) n += s.smt_contexts;
    return n;
  }

  /// (su index, smt context) for hardware thread `k`, interleaving across
  /// scalar units first so SMT slots fill last — thread 0 always lands on
  /// SU0 and V4-CMT maps two threads onto each of its two SUs.
  std::pair<unsigned, unsigned> thread_slot(unsigned k) const;

  // --- presets (paper notation, §4.2) ---
  static MachineConfig base(unsigned lanes = 8);  // Table 3
  static MachineConfig v2_smt();
  static MachineConfig v4_smt();
  static MachineConfig v2_cmp();
  static MachineConfig v2_cmp_h();
  static MachineConfig v4_cmp();
  static MachineConfig v4_cmp_h();
  static MachineConfig v4_cmt();
  static MachineConfig cmt();  // V4-CMT without the vector unit (§5)

  /// Aborts on an unknown name (used where a bad name is a programming
  /// error). CLIs that parse user input should use find() instead.
  static MachineConfig by_name(const std::string& name);
  /// Preset lookup with error reporting: nullopt for an unknown name.
  static std::optional<MachineConfig> find(const std::string& name);
  static std::vector<std::string> preset_names();

  /// Canonical serialization of every timing-relevant parameter. Two
  /// configs with equal fingerprints simulate identically; the campaign
  /// result cache keys on this, so custom (non-preset) configs and
  /// ablation tweaks invalidate cached cells automatically.
  std::string fingerprint() const;
};

}  // namespace vlt::machine
