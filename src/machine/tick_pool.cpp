#include "machine/tick_pool.hpp"

#include "common/log.hpp"

namespace vlt::machine {

SuTickPool::SuTickPool(unsigned nthreads) {
  VLT_CHECK(nthreads >= 1, "pool needs at least the calling thread");
  threads_.reserve(nthreads - 1);
  for (unsigned i = 0; i + 1 < nthreads; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

SuTickPool::~SuTickPool() {
  stop_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  epoch_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void SuTickPool::run(TaskFn fn, void* ctx, std::size_t ntasks) {
  fn_ = fn;
  ctx_ = ctx;
  ntasks_ = ntasks;
  errors_.assign(ntasks, nullptr);
  claim_.store(0, std::memory_order_relaxed);
  acked_.store(0, std::memory_order_relaxed);
  // The release bump publishes the batch fields above to every worker
  // (their epoch load is the matching acquire).
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) epoch_.notify_all();

  drain();
  // Every worker acknowledges the epoch after its drain() returns, so
  // once all have, no thread is still claiming or executing — only then
  // may the next run() reuse the batch fields. Tasks are single SU ticks
  // (sub-microsecond): spin rather than park.
  const std::size_t nworkers = threads_.size();
  while (acked_.load(std::memory_order_acquire) < nworkers) {
  }

  for (std::size_t i = 0; i < ntasks; ++i)
    if (errors_[i]) std::rethrow_exception(errors_[i]);
}

void SuTickPool::drain() {
  for (;;) {
    const std::size_t i = claim_.fetch_add(1, std::memory_order_acq_rel);
    if (i >= ntasks_) return;
    try {
      fn_(ctx_, i);
    } catch (...) {
      errors_[i] = std::current_exception();
    }
  }
}

void SuTickPool::worker_loop() {
  std::uint64_t seen = 0;  // epoch_ starts at 0; the first batch bumps it
  for (;;) {
    // Spin briefly — consecutive parallel cycles arrive back to back —
    // then park on the epoch word. The seq_cst fence pair with run()
    // (sleepers_ store / epoch_ load here vs epoch_ store / sleepers_
    // load there) rules out the both-sides-see-stale sleep/notify miss.
    int spin = 0;
    while (epoch_.load(std::memory_order_acquire) == seen) {
      if (++spin < 4096) continue;
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      if (epoch_.load(std::memory_order_seq_cst) == seen)
        epoch_.wait(seen, std::memory_order_acquire);
      sleepers_.fetch_sub(1, std::memory_order_release);
      spin = 0;
    }
    // The epoch advances at most one step past this worker's last ack
    // (run() waits for all acks before returning), so this load names
    // the batch just published.
    seen = epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_relaxed)) return;
    drain();
    acked_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace vlt::machine
