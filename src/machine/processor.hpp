// Top-level machine: scalar units, vector unit, lane cores, and the
// memory system, driven phase by phase.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "audit/auditor.hpp"
#include "ckpt/checkpoint.hpp"
#include "func/memory.hpp"
#include "lanecore/lane_core.hpp"
#include "machine/machine_config.hpp"
#include "machine/phase.hpp"
#include "machine/tick_pool.hpp"
#include "mem/l2_cache.hpp"
#include "mem/main_memory.hpp"
#include "stats/stats.hpp"
#include "stats/trace.hpp"
#include "su/scalar_core.hpp"
#include "vltctl/barrier.hpp"
#include "vu/vector_unit.hpp"

namespace vlt::machine {

class Processor {
 public:
  /// `auditor` (optional, not owned) attaches the audit layer: invariant
  /// sinks on every component plus lockstep thread registration.
  explicit Processor(const MachineConfig& config,
                     audit::Auditor* auditor = nullptr);

  /// Runs one phase to completion (all threads halted, vector unit
  /// quiesced). The clock is monotonic across phases so cache and branch
  /// predictor state carries over. Returns the cycle count of the phase.
  /// May not be used with an armed pause point — pause-aware drivers call
  /// start_phase / continue_phase directly.
  Cycle run_phase(const Phase& phase);

  /// Binds the phase's programs to hardware contexts and resets their
  /// pipeline state. First half of run_phase; restore skips it (contexts
  /// are rebuilt from the snapshot instead).
  void start_phase(const Phase& phase) { start_phase_contexts(phase); }

  /// Advances the current phase until it completes (true) or the armed
  /// pause point is reached (false). On pause both engines have flushed
  /// every lazy bookkeeping span through now(), so the machine state is
  /// engine-invariant and ready to serialize; calling continue_phase
  /// again resumes exactly where the engine stopped.
  bool continue_phase(const Phase& phase);

  /// Arms a pause point (docs/CKPT.md): continue_phase returns early at
  /// the first engine-visited cycle >= `at` (the event engine clamps its
  /// jumps so it lands exactly on `at` while the phase is still running,
  /// making both engines pause on the same cycle). kNeverReady disarms.
  void set_pause_at(Cycle at) { pause_at_ = at; }
  Cycle pause_at() const { return pause_at_; }
  bool paused() const { return paused_; }

  /// Checkpointing (docs/CKPT.md): writes every machine layer as its own
  /// section — "proc" (clock, lane commit carry), "mem", "mainmem",
  /// "l2", "barrier", "su<i>", "lane<i>", "vu", and "stats" (the full
  /// stable-instrument snapshot, so Figure-4 accounting survives
  /// restore). Installs the completion-cell resolver that names the
  /// vector unit's scalar_done pointers as (su, ctx, seq) references.
  /// The machine must be paused or between phases.
  void save_sections(ckpt::Writer& w) const;

  /// Inverse of save_sections, into a freshly constructed Processor of
  /// the same configuration. `program_ref` maps a hardware thread id to
  /// the current phase's deterministically rebuilt program. Scalar units
  /// restore before the vector unit so completion-cell references
  /// resolve; the stats snapshot restores last.
  void restore_sections(ckpt::Reader& r,
                        std::function<const isa::Program*(ThreadId)>
                            program_ref);

  /// Advances the clock without work (thread-switch overhead).
  void charge_overhead(Cycle cycles) { now_ += cycles; }

  Cycle now() const { return now_; }
  func::FuncMemory& memory() { return memory_; }
  const MachineConfig& config() const { return config_; }
  const vu::VectorUnit* vector_unit() const { return vu_.get(); }

  /// Loop iterations actually executed (host-side instrumentation). With
  /// event-driven skip-ahead (config.event_skip, docs/PERF.md) this is
  /// typically far below now(): the difference is cycles the simulator
  /// proved to be no-ops and jumped over.
  std::uint64_t ticks_executed() const { return ticks_.value(); }

  /// next_event scans performed by the event-driven engine (host-side
  /// instrumentation; always 0 under --no-skip, which never scans). Read
  /// together with ticks_executed() this separates the engine's two
  /// costs: cycles it had to execute and scans it paid to prove the rest
  /// skippable.
  std::uint64_t scans_executed() const { return scans_.value(); }

  /// The machine-wide metrics registry: every unit's instruments are
  /// registered at construction under hierarchical names ("su0.l1d.*",
  /// "vu.datapath.*", "barrier.*", "lane3.icache.*", "engine.*"). Owned
  /// here; snapshot it after a run for RunResult.
  stats::Registry& registry() { return registry_; }
  const stats::Registry& registry() const { return registry_; }

  /// Attaches the structured-event trace buffer to every traced unit
  /// (vector-unit dispatch/handoff, barrier arrive/release, L2 misses).
  /// Pass nullptr to detach.
  void set_trace(stats::TraceBuffer* trace);

  std::uint64_t committed_scalar() const;
  std::uint64_t committed_vector() const;
  const mem::L2Cache& l2() const { return l2_; }
  const su::ScalarCore& su(unsigned i) const { return *sus_[i]; }
  unsigned num_sus() const { return static_cast<unsigned>(sus_.size()); }
  const lanecore::LaneCore& lane(unsigned i) const { return *lanes_[i]; }
  unsigned num_lanes() const { return static_cast<unsigned>(lanes_.size()); }

 private:
  void start_phase_contexts(const Phase& phase);
  /// The event-driven engine (config.event_skip, the default): runs the
  /// phase landing only on event cycles, with O(1) completion tracking.
  void run_phase_events(const Phase& phase);
  /// The legacy cycle-by-cycle engine (--no-skip): ticks every cycle and
  /// rescans for completion. Timing oracle for run_phase_events.
  void run_phase_cycles(const Phase& phase);
  /// Full completion scan used by the legacy engine: every thread halted
  /// and (outside lane mode) every vector context quiesced.
  bool phase_complete(const Phase& phase) const;
  /// One due scalar unit's tick, run on the SuTickPool during a
  /// partition-parallel cycle (config.host_threads).
  struct ParTickCtx;
  static void par_tick_task(void* ctx, std::size_t k);
  /// Deadlock diagnostic for a run that exhausted config().cycle_limit:
  /// the stuck phase, every context's PC and state, and the oldest
  /// partially-full barrier generation.
  std::string timeout_diagnostic(const Phase& phase) const;

  /// Barrier-watchdog poll interval. The poll is armed on elapsed cycles
  /// since the previous poll (not `now_ % interval == 0`): skip-ahead
  /// lands on arbitrary cycles, and an exact-modulus poll could be jumped
  /// over forever.
  static constexpr Cycle kWatchdogInterval = 1024;

  MachineConfig config_;
  audit::Auditor* auditor_;
  func::FuncMemory memory_;
  mem::MainMemory main_memory_;
  mem::L2Cache l2_;
  vltctl::BarrierController barrier_;
  std::unique_ptr<vu::VectorUnit> vu_;
  std::vector<std::unique_ptr<su::ScalarCore>> sus_;
  std::vector<std::unique_ptr<lanecore::LaneCore>> lanes_;
  stats::Registry registry_;
  Cycle now_ = 0;
  Cycle last_watchdog_ = 0;
  Cycle pause_at_ = kNeverReady;  // armed pause point (set_pause_at)
  bool paused_ = false;           // last continue_phase stopped early
  // Host-side engine instrumentation: differs between the two engines by
  // design, hence kDiagnostic (never serialized).
  stats::Counter ticks_;
  stats::Counter scans_;
  std::uint64_t lane_committed_ = 0;
  // Partition-parallel ticking (config.host_threads > 1): worker pool,
  // per-unit tick-complete flags the TickGates spin on, and the per-cycle
  // due-unit list. Pool and flags are created on the first eligible
  // cycle; tracing forces the serial path (trace order is part of the
  // observable output), as does audit mode.
  std::unique_ptr<SuTickPool> tick_pool_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> tick_done_;
  std::vector<su::TickGate> gates_;
  std::vector<std::size_t> due_scratch_;
  bool trace_attached_ = false;
};

}  // namespace vlt::machine
