// Simulation driver: runs a workload variant on a machine configuration
// and collects the measurements behind every table and figure.
#pragma once

#include <optional>
#include <string>

#include "common/histogram.hpp"
#include "common/json.hpp"
#include "machine/machine_config.hpp"
#include "workloads/workload.hpp"

namespace vlt::machine {

struct PhaseTiming {
  std::string label;
  Cycle cycles = 0;
};

struct RunResult {
  std::string workload;
  std::string config;
  std::string variant;
  Cycle cycles = 0;
  std::vector<PhaseTiming> phase_cycles;
  Cycle opportunity_cycles = 0;  // spent in VLT-able phases
  std::uint64_t scalar_insts = 0;
  std::uint64_t vector_insts = 0;
  std::uint64_t element_ops = 0;
  vu::DatapathUtilization util;
  Histogram vl_hist;
  bool verified = false;
  std::string verify_error;

  /// Table 4 "% Vect": vector element operations over all operations.
  double pct_vectorization() const {
    std::uint64_t total = element_ops + scalar_insts;
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(element_ops) /
                            static_cast<double>(total);
  }
  /// Table 4 "Avg VL".
  double avg_vl() const { return vl_hist.mean(); }
  /// Table 4 "% Opportunity".
  double pct_opportunity() const {
    return cycles == 0 ? 0.0
                       : 100.0 * static_cast<double>(opportunity_cycles) /
                             static_cast<double>(cycles);
  }

  /// Stable JSON serialization — the schema behind `vltsweep`,
  /// `vltsim_run --json`, and the campaign result cache:
  ///
  ///   workload, config, variant   identifying strings
  ///   verified, verify_error      golden-check outcome
  ///   cycles                      total simulated cycles
  ///   phases                      [{label, cycles}] in execution order
  ///   opportunity_cycles          cycles in VLT-able phases
  ///   scalar_insts, vector_insts, element_ops
  ///   metrics                     {pct_vectorization, avg_vl,
  ///                                pct_opportunity}  (Table 4)
  ///   utilization                 {busy, partly_idle, stalled, all_idle}
  ///   vl_histogram                {"<VL>": count, ...} ascending VL
  ///
  /// Field order is fixed and numbers format deterministically, so equal
  /// results serialize to equal bytes.
  Json to_json() const;

  /// Inverse of to_json(); nullopt if `j` is not a RunResult object.
  /// Derived metrics are recomputed, not trusted from the input.
  static std::optional<RunResult> from_json(const Json& j);
};

class Simulator {
 public:
  explicit Simulator(MachineConfig config) : config_(std::move(config)) {}

  /// Overrides the audit sink (default: abort on the first violation).
  /// Tests pass an audit::RecordingSink to capture violations. Not owned;
  /// must outlive run().
  void set_audit_sink(audit::AuditSink* sink) { audit_sink_ = sink; }

  /// Builds a fresh (cold) machine, runs every phase of the workload
  /// variant, verifies the memory image, and returns the measurements.
  RunResult run(const workloads::Workload& workload,
                const workloads::Variant& variant) const;

 private:
  MachineConfig config_;
  audit::AuditSink* audit_sink_ = nullptr;
};

/// Convenience for benches: cycles of `workload` under (config, variant).
Cycle run_cycles(const MachineConfig& config,
                 const workloads::Workload& workload,
                 const workloads::Variant& variant);

}  // namespace vlt::machine
