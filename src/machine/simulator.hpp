// Simulation driver: runs a workload variant on a machine configuration
// and collects the measurements behind every table and figure.
#pragma once

#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"
#include "machine/machine_config.hpp"
#include "stats/stats.hpp"
#include "stats/trace.hpp"
#include "workloads/workload.hpp"

namespace vlt::machine {

struct PhaseTiming {
  std::string label;
  Cycle cycles = 0;
};

/// Typed outcome of one run (the vltguard taxonomy, see docs/ERRORS.md).
/// kOk is the only success; kSkipped marks cells a fail-fast campaign
/// never executed; the rest mirror vlt::ErrorKind.
enum class RunStatus : std::uint8_t {
  kOk,
  kWorkloadVerify,  // completed, but the golden check failed
  kInvariant,       // a simulator self-check threw mid-run
  kConfig,          // the cell could not even be constructed
  kTimeout,         // exceeded the cycle budget (possible deadlock)
  kIo,              // host filesystem failure
  kWorker,          // a sharded-campaign worker process died on this cell
  kSkipped,         // not executed (fail-fast stopped the campaign)
};

/// Stable names used in the JSON "status" field and CSV column: "ok",
/// "workload-verify", "invariant", "config", "timeout", "io", "worker",
/// "skipped".
const char* run_status_name(RunStatus s);
std::optional<RunStatus> run_status_from_name(const std::string& name);
RunStatus run_status_from_error(ErrorKind kind);

struct RunResult {
  std::string workload;
  std::string config;
  std::string variant;
  /// ISA frontend the workload was built for ("vlt"/"rvv"). Serialized
  /// only when not "vlt", so pre-v4 documents round-trip byte-identically.
  std::string isa = "vlt";
  Cycle cycles = 0;
  std::vector<PhaseTiming> phase_cycles;
  Cycle opportunity_cycles = 0;  // spent in VLT-able phases
  std::uint64_t scalar_insts = 0;
  std::uint64_t vector_insts = 0;
  std::uint64_t element_ops = 0;
  vu::DatapathUtilization util;
  stats::Histogram vl_hist;
  /// Full registry snapshot of the run's machine ("su0.l1d.misses",
  /// "vu.datapath.busy", …). Empty when parsed from a pre-v3 document.
  stats::Snapshot stats;
  RunStatus status = RunStatus::kOk;
  bool verified = false;
  /// Failure detail: the golden-check mismatch for kWorkloadVerify, the
  /// thrown SimError's file:line diagnostic for the error statuses.
  std::string error;
  /// Simulation attempts this result took (CampaignOptions::max_retries).
  unsigned attempts = 1;
  /// Host wall-clock milliseconds Simulator::run took (0 when unknown:
  /// parsed from JSON, replayed from a journal, or served from the result
  /// cache). Host-side measurement only — deliberately NOT serialized by
  /// to_json(), whose bytes must stay deterministic for the golden
  /// diffs, the content-addressed cache, and --resume byte-identity.
  /// vltsweep surfaces it behind the opt-in --wall flag; tools/vltperf
  /// is the measurement harness built on it (docs/PERF.md).
  double wall_ms = 0.0;
  /// Host-side engine instrumentation (Processor::ticks_executed /
  /// scans_executed): loop iterations the engine actually executed and
  /// next_event scans it paid to prove the remaining cycles skippable.
  /// Like wall_ms these differ between the two engines by design, so they
  /// are deliberately NOT serialized by to_json(); tools/vltperf reports
  /// them per cell (docs/PERF.md).
  std::uint64_t ticks_executed = 0;
  std::uint64_t scans = 0;

  bool ok() const { return status == RunStatus::kOk; }

  /// Table 4 "% Vect": vector element operations over all operations.
  double pct_vectorization() const {
    std::uint64_t total = element_ops + scalar_insts;
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(element_ops) /
                            static_cast<double>(total);
  }
  /// Table 4 "Avg VL".
  double avg_vl() const { return vl_hist.mean(); }
  /// Table 4 "% Opportunity".
  double pct_opportunity() const {
    return cycles == 0 ? 0.0
                       : 100.0 * static_cast<double>(opportunity_cycles) /
                             static_cast<double>(cycles);
  }

  /// Stable JSON serialization — the schema behind `vltsweep`,
  /// `vltsim_run --json`, and the campaign result cache:
  ///
  ///   workload, config, variant   identifying strings
  ///   isa                         ISA frontend (omitted when "vlt")
  ///   status                      typed outcome (run_status_name)
  ///   verified                    golden-check outcome
  ///   error                       failure detail (only when status != ok)
  ///   attempts                    simulation attempts (retry policy)
  ///   cycles                      total simulated cycles
  ///   phases                      [{label, cycles}] in execution order
  ///   opportunity_cycles          cycles in VLT-able phases
  ///   scalar_insts, vector_insts, element_ops
  ///   metrics                     {pct_vectorization, avg_vl,
  ///                                pct_opportunity}  (Table 4)
  ///   utilization                 {busy, partly_idle, stalled, all_idle}
  ///   vl_histogram                {"<VL>": count, ...} ascending VL
  ///   stats                       registry snapshot (docs/METRICS.md);
  ///                               omitted when empty, so documents parsed
  ///                               from older schemas round-trip unchanged
  ///
  /// Field order is fixed and numbers format deterministically, so equal
  /// results serialize to equal bytes.
  Json to_json() const;

  /// Inverse of to_json(); nullopt if `j` is not a RunResult object.
  /// Derived metrics are recomputed, not trusted from the input.
  static std::optional<RunResult> from_json(const Json& j);
};

/// Checkpoint scheduling for one run (docs/CKPT.md). Inert by default.
struct CheckpointOptions {
  /// One-shot: write at the first engine-visited cycle >= `at`.
  Cycle at = kNeverReady;
  /// Periodic: after each write, re-arm at written-cycle + `every`
  /// (0 = off). Composes with `at` (one-shot first, then periodic).
  Cycle every = 0;
  /// Snapshot file; every write is atomic (tmp + rename). Empty disables
  /// checkpointing entirely.
  std::string out_path;

  bool armed() const {
    return !out_path.empty() && (at != kNeverReady || every > 0);
  }
};

class Simulator {
 public:
  explicit Simulator(MachineConfig config) : config_(std::move(config)) {}

  /// Arms checkpoint writes during run(). Incompatible with audit mode —
  /// auditor/lockstep state is deliberately not serialized — which run()
  /// rejects as kConfig.
  void set_checkpoint(CheckpointOptions opts) { ckpt_ = std::move(opts); }

  /// Resumes run() from a digest-validated snapshot document (from
  /// ckpt::load_file) instead of cycle zero. The snapshot's identity —
  /// workload, variant, ISA frontend, config fingerprint — must match
  /// this run's (kConfig otherwise; callers with a fallback pre-check via
  /// checkpoint_matches). The resumed run's RunResult is byte-identical
  /// to the uninterrupted run's (docs/CKPT.md).
  void set_restore(Json snapshot) { restore_ = std::move(snapshot); }

  /// Overrides the audit sink (default: abort on the first violation).
  /// Tests pass an audit::RecordingSink to capture violations. Not owned;
  /// must outlive run().
  void set_audit_sink(audit::AuditSink* sink) { audit_sink_ = sink; }

  /// Attaches a structured-event trace buffer; the machine's traced units
  /// record into it during run(). Not owned; must outlive run(). Pass
  /// nullptr to detach. Tracing is observational: it never changes
  /// reported cycles.
  void set_trace(stats::TraceBuffer* trace) { trace_ = trace; }

  /// Builds a fresh (cold) machine, runs every phase of the workload
  /// variant, verifies the memory image, and returns the measurements.
  RunResult run(const workloads::Workload& workload,
                const workloads::Variant& variant) const;

 private:
  MachineConfig config_;
  audit::AuditSink* audit_sink_ = nullptr;
  stats::TraceBuffer* trace_ = nullptr;
  CheckpointOptions ckpt_;
  std::optional<Json> restore_;
};

/// True when digest-valid snapshot `doc` was taken by exactly this cell:
/// same workload name, variant, ISA frontend, and machine fingerprint.
/// `why` (optional) names the first mismatch. Campaign resume and shard
/// migration use this to fall back to a from-zero run instead of failing
/// the cell on a stale or foreign snapshot.
bool checkpoint_matches(const Json& doc, const std::string& workload,
                        const std::string& variant,
                        const MachineConfig& config, std::string* why);

/// Convenience for benches: cycles of `workload` under (config, variant).
/// Throws SimError(kWorkloadVerify) if the golden check fails.
Cycle run_cycles(const MachineConfig& config,
                 const workloads::Workload& workload,
                 const workloads::Variant& variant);

}  // namespace vlt::machine
