#include "machine/simulator.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>

#include "audit/auditor.hpp"
#include "common/log.hpp"
#include "machine/processor.hpp"

namespace vlt::machine {

const char* run_status_name(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kWorkloadVerify: return "workload-verify";
    case RunStatus::kInvariant: return "invariant";
    case RunStatus::kConfig: return "config";
    case RunStatus::kTimeout: return "timeout";
    case RunStatus::kIo: return "io";
    case RunStatus::kWorker: return "worker";
    case RunStatus::kSkipped: return "skipped";
  }
  return "unknown";
}

std::optional<RunStatus> run_status_from_name(const std::string& name) {
  for (RunStatus s :
       {RunStatus::kOk, RunStatus::kWorkloadVerify, RunStatus::kInvariant,
        RunStatus::kConfig, RunStatus::kTimeout, RunStatus::kIo,
        RunStatus::kWorker, RunStatus::kSkipped})
    if (name == run_status_name(s)) return s;
  return std::nullopt;
}

RunStatus run_status_from_error(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInvariant: return RunStatus::kInvariant;
    case ErrorKind::kConfig: return RunStatus::kConfig;
    case ErrorKind::kWorkloadVerify: return RunStatus::kWorkloadVerify;
    case ErrorKind::kTimeout: return RunStatus::kTimeout;
    case ErrorKind::kIo: return RunStatus::kIo;
    case ErrorKind::kWorker: return RunStatus::kWorker;
  }
  return RunStatus::kInvariant;
}

Json RunResult::to_json() const {
  Json j = Json::object();
  j.set("workload", workload);
  j.set("config", config);
  j.set("variant", variant);
  if (!isa.empty() && isa != "vlt") j.set("isa", isa);
  j.set("status", run_status_name(status));
  j.set("verified", verified);
  if (!ok()) j.set("error", error);
  j.set("attempts", static_cast<std::uint64_t>(attempts));
  j.set("cycles", cycles);
  Json phases = Json::array();
  for (const PhaseTiming& p : phase_cycles) {
    Json ph = Json::object();
    ph.set("label", p.label);
    ph.set("cycles", p.cycles);
    phases.push_back(std::move(ph));
  }
  j.set("phases", std::move(phases));
  j.set("opportunity_cycles", opportunity_cycles);
  j.set("scalar_insts", scalar_insts);
  j.set("vector_insts", vector_insts);
  j.set("element_ops", element_ops);
  Json metrics = Json::object();
  metrics.set("pct_vectorization", pct_vectorization());
  metrics.set("avg_vl", avg_vl());
  metrics.set("pct_opportunity", pct_opportunity());
  j.set("metrics", std::move(metrics));
  Json u = Json::object();
  u.set("busy", util.busy);
  u.set("partly_idle", util.partly_idle);
  u.set("stalled", util.stalled);
  u.set("all_idle", util.all_idle);
  j.set("utilization", std::move(u));
  Json hist = Json::object();
  for (const auto& [vl, count] : vl_hist.counts())  // std::map: ascending
    hist.set(std::to_string(vl), count);
  j.set("vl_histogram", std::move(hist));
  // Only when non-empty: pre-v3 documents carry no snapshot, and parsing
  // then re-serializing one must reproduce its bytes.
  if (!stats.empty()) j.set("stats", stats.to_json());
  return j;
}

std::optional<RunResult> RunResult::from_json(const Json& j) {
  if (!j.is_object() || j.find("workload") == nullptr ||
      j.find("cycles") == nullptr)
    return std::nullopt;
  RunResult r;
  auto str = [&j](const char* key) {
    const Json* v = j.find(key);
    return v != nullptr ? v->as_string() : std::string();
  };
  auto num = [&j](const char* key) {
    const Json* v = j.find(key);
    return v != nullptr ? v->as_uint() : 0;
  };
  r.workload = str("workload");
  r.config = str("config");
  r.variant = str("variant");
  r.isa = str("isa");
  if (r.isa.empty()) r.isa = "vlt";  // pre-v4 documents carry no isa field
  const Json* verified = j.find("verified");
  r.verified = verified != nullptr && verified->as_bool();
  if (const Json* status = j.find("status"); status != nullptr) {
    std::optional<RunStatus> parsed =
        run_status_from_name(status->as_string());
    if (!parsed) return std::nullopt;
    r.status = *parsed;
  } else {
    // Schema-v1 entries (e.g. an old result cache) carry only `verified`.
    r.status = r.verified ? RunStatus::kOk : RunStatus::kWorkloadVerify;
  }
  r.error = str("error");
  if (r.error.empty()) r.error = str("verify_error");  // schema v1
  const Json* attempts = j.find("attempts");
  r.attempts = attempts != nullptr
                   ? static_cast<unsigned>(attempts->as_uint(1))
                   : 1;
  r.cycles = num("cycles");
  if (const Json* phases = j.find("phases"); phases != nullptr)
    for (const Json& ph : phases->items()) {
      const Json* cycles = ph.find("cycles");
      r.phase_cycles.push_back(
          {ph.find("label") != nullptr ? ph.find("label")->as_string() : "",
           cycles != nullptr ? cycles->as_uint() : 0});
    }
  r.opportunity_cycles = num("opportunity_cycles");
  r.scalar_insts = num("scalar_insts");
  r.vector_insts = num("vector_insts");
  r.element_ops = num("element_ops");
  if (const Json* u = j.find("utilization"); u != nullptr) {
    auto field = [&u](const char* key) {
      const Json* v = u->find(key);
      return v != nullptr ? v->as_uint() : 0;
    };
    r.util.busy = field("busy");
    r.util.partly_idle = field("partly_idle");
    r.util.stalled = field("stalled");
    r.util.all_idle = field("all_idle");
  }
  if (const Json* hist = j.find("vl_histogram"); hist != nullptr)
    for (const auto& [key, count] : hist->members())
      r.vl_hist.add(std::strtoull(key.c_str(), nullptr, 10),
                    count.as_uint());
  if (const Json* stats = j.find("stats"); stats != nullptr)
    r.stats = stats::Snapshot::from_json(*stats);
  return r;
}

RunResult Simulator::run(const workloads::Workload& workload,
                         const workloads::Variant& variant) const {
  VLT_CHECK(workload.supports(variant.kind),
            workload.name() + " does not support variant " +
                variant.to_string());
  VLT_CHECK(workload.supports_isa(config_.isa),
            workload.name() + " has no port to the " +
                std::string(isa::isa_name(config_.isa)) + " ISA frontend");
  const auto wall_start = std::chrono::steady_clock::now();

  std::unique_ptr<audit::Auditor> auditor;
  if (config_.audit.enabled())
    auditor = std::make_unique<audit::Auditor>(config_.audit, audit_sink_);

  Processor proc(config_, auditor.get());
  if (trace_ != nullptr) proc.set_trace(trace_);
  workload.init_memory(proc.memory());
  if (auditor && auditor->lockstep() != nullptr)
    auditor->lockstep()->seed_memory(proc.memory());
  ParallelProgram prog = workload.build(variant, config_.isa);

  RunResult res;
  res.workload = workload.name();
  res.config = config_.name;
  res.variant = variant.to_string();
  res.isa = isa::isa_name(config_.isa);

  unsigned prev_threads = 1;
  for (const Phase& phase : prog.phases) {
    // Thread-management overhead at region boundaries (paper §3.3: saving
    // and restoring vector registers, thread API costs).
    if (phase.nthreads() != prev_threads) {
      proc.charge_overhead(config_.phase_switch_overhead);
      if (auditor) auditor->note_overhead(config_.phase_switch_overhead);
    }
    prev_threads = phase.nthreads();

    Cycle took = proc.run_phase(phase);
    res.phase_cycles.push_back({phase.label, took});
    if (phase.vlt_opportunity) res.opportunity_cycles += took;
    if (auditor) {
      const vu::VectorUnit* vu = proc.vector_unit();
      auditor->note_phase(phase.label, took,
                          vu != nullptr ? vu->element_ops() : 0);
    }
  }
  res.cycles = proc.now();  // includes thread-switch overhead

  res.scalar_insts = proc.committed_scalar();
  res.vector_insts = proc.committed_vector();
  if (const vu::VectorUnit* vu = proc.vector_unit()) {
    res.element_ops = vu->element_ops();
    res.util = vu->utilization();
    res.vl_hist = vu->vl_histogram();
  }

  res.stats = proc.registry().snapshot();
  res.ticks_executed = proc.ticks_executed();
  res.scans = proc.scans_executed();

  if (auditor) {
    // End-of-run conservation pass over every registered invariant
    // (cache hits+misses==accesses, span-vs-cycle accounting, …).
    proc.registry().check_invariants(*auditor->invariant_sink(), proc.now());
    auditor->finish_run(res.cycles, res.opportunity_cycles, res.element_ops,
                        res.vl_hist, proc.memory());
  }

  std::optional<std::string> err = workload.verify(proc.memory());
  res.verified = !err.has_value();
  if (err) {
    res.status = RunStatus::kWorkloadVerify;
    res.error = *err;
  }
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return res;
}

Cycle run_cycles(const MachineConfig& config,
                 const workloads::Workload& workload,
                 const workloads::Variant& variant) {
  RunResult r = Simulator(config).run(workload, variant);
  if (!r.verified)
    VLT_FAIL(ErrorKind::kWorkloadVerify,
             workload.name() + " failed verification on " + config.name +
                 ": " + r.error);
  return r.cycles;
}

}  // namespace vlt::machine
