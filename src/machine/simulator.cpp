#include "machine/simulator.hpp"

#include <memory>

#include "audit/auditor.hpp"
#include "common/log.hpp"
#include "machine/processor.hpp"

namespace vlt::machine {

RunResult Simulator::run(const workloads::Workload& workload,
                         const workloads::Variant& variant) const {
  VLT_CHECK(workload.supports(variant.kind),
            workload.name() + " does not support variant " +
                variant.to_string());

  std::unique_ptr<audit::Auditor> auditor;
  if (config_.audit.enabled())
    auditor = std::make_unique<audit::Auditor>(config_.audit, audit_sink_);

  Processor proc(config_, auditor.get());
  workload.init_memory(proc.memory());
  if (auditor && auditor->lockstep() != nullptr)
    auditor->lockstep()->seed_memory(proc.memory());
  ParallelProgram prog = workload.build(variant);

  RunResult res;
  res.workload = workload.name();
  res.config = config_.name;
  res.variant = variant.to_string();

  unsigned prev_threads = 1;
  for (const Phase& phase : prog.phases) {
    // Thread-management overhead at region boundaries (paper §3.3: saving
    // and restoring vector registers, thread API costs).
    if (phase.nthreads() != prev_threads) {
      proc.charge_overhead(config_.phase_switch_overhead);
      if (auditor) auditor->note_overhead(config_.phase_switch_overhead);
    }
    prev_threads = phase.nthreads();

    Cycle took = proc.run_phase(phase);
    res.phase_cycles.push_back({phase.label, took});
    if (phase.vlt_opportunity) res.opportunity_cycles += took;
    if (auditor) {
      const vu::VectorUnit* vu = proc.vector_unit();
      auditor->note_phase(phase.label, took,
                          vu != nullptr ? vu->element_ops() : 0);
    }
  }
  res.cycles = proc.now();  // includes thread-switch overhead

  res.scalar_insts = proc.committed_scalar();
  res.vector_insts = proc.committed_vector();
  if (const vu::VectorUnit* vu = proc.vector_unit()) {
    res.element_ops = vu->element_ops();
    res.util = vu->utilization();
    res.vl_hist = vu->vl_histogram();
  }

  if (auditor)
    auditor->finish_run(res.cycles, res.opportunity_cycles, res.element_ops,
                        res.vl_hist, proc.memory());

  std::optional<std::string> err = workload.verify(proc.memory());
  res.verified = !err.has_value();
  if (err) res.verify_error = *err;
  return res;
}

Cycle run_cycles(const MachineConfig& config,
                 const workloads::Workload& workload,
                 const workloads::Variant& variant) {
  RunResult r = Simulator(config).run(workload, variant);
  VLT_CHECK(r.verified, workload.name() + " failed verification on " +
                            config.name + ": " + r.verify_error);
  return r.cycles;
}

}  // namespace vlt::machine
