#include "machine/simulator.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>

#include "audit/auditor.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/log.hpp"
#include "machine/processor.hpp"

namespace vlt::machine {

const char* run_status_name(RunStatus s) {
  switch (s) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kWorkloadVerify: return "workload-verify";
    case RunStatus::kInvariant: return "invariant";
    case RunStatus::kConfig: return "config";
    case RunStatus::kTimeout: return "timeout";
    case RunStatus::kIo: return "io";
    case RunStatus::kWorker: return "worker";
    case RunStatus::kSkipped: return "skipped";
  }
  return "unknown";
}

std::optional<RunStatus> run_status_from_name(const std::string& name) {
  for (RunStatus s :
       {RunStatus::kOk, RunStatus::kWorkloadVerify, RunStatus::kInvariant,
        RunStatus::kConfig, RunStatus::kTimeout, RunStatus::kIo,
        RunStatus::kWorker, RunStatus::kSkipped})
    if (name == run_status_name(s)) return s;
  return std::nullopt;
}

RunStatus run_status_from_error(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInvariant: return RunStatus::kInvariant;
    case ErrorKind::kConfig: return RunStatus::kConfig;
    case ErrorKind::kWorkloadVerify: return RunStatus::kWorkloadVerify;
    case ErrorKind::kTimeout: return RunStatus::kTimeout;
    case ErrorKind::kIo: return RunStatus::kIo;
    case ErrorKind::kWorker: return RunStatus::kWorker;
  }
  return RunStatus::kInvariant;
}

Json RunResult::to_json() const {
  Json j = Json::object();
  j.set("workload", workload);
  j.set("config", config);
  j.set("variant", variant);
  if (!isa.empty() && isa != "vlt") j.set("isa", isa);
  j.set("status", run_status_name(status));
  j.set("verified", verified);
  if (!ok()) j.set("error", error);
  j.set("attempts", static_cast<std::uint64_t>(attempts));
  j.set("cycles", cycles);
  Json phases = Json::array();
  for (const PhaseTiming& p : phase_cycles) {
    Json ph = Json::object();
    ph.set("label", p.label);
    ph.set("cycles", p.cycles);
    phases.push_back(std::move(ph));
  }
  j.set("phases", std::move(phases));
  j.set("opportunity_cycles", opportunity_cycles);
  j.set("scalar_insts", scalar_insts);
  j.set("vector_insts", vector_insts);
  j.set("element_ops", element_ops);
  Json metrics = Json::object();
  metrics.set("pct_vectorization", pct_vectorization());
  metrics.set("avg_vl", avg_vl());
  metrics.set("pct_opportunity", pct_opportunity());
  j.set("metrics", std::move(metrics));
  Json u = Json::object();
  u.set("busy", util.busy);
  u.set("partly_idle", util.partly_idle);
  u.set("stalled", util.stalled);
  u.set("all_idle", util.all_idle);
  j.set("utilization", std::move(u));
  Json hist = Json::object();
  for (const auto& [vl, count] : vl_hist.counts())  // std::map: ascending
    hist.set(std::to_string(vl), count);
  j.set("vl_histogram", std::move(hist));
  // Only when non-empty: pre-v3 documents carry no snapshot, and parsing
  // then re-serializing one must reproduce its bytes.
  if (!stats.empty()) j.set("stats", stats.to_json());
  return j;
}

std::optional<RunResult> RunResult::from_json(const Json& j) {
  if (!j.is_object() || j.find("workload") == nullptr ||
      j.find("cycles") == nullptr)
    return std::nullopt;
  RunResult r;
  auto str = [&j](const char* key) {
    const Json* v = j.find(key);
    return v != nullptr ? v->as_string() : std::string();
  };
  auto num = [&j](const char* key) {
    const Json* v = j.find(key);
    return v != nullptr ? v->as_uint() : 0;
  };
  r.workload = str("workload");
  r.config = str("config");
  r.variant = str("variant");
  r.isa = str("isa");
  if (r.isa.empty()) r.isa = "vlt";  // pre-v4 documents carry no isa field
  const Json* verified = j.find("verified");
  r.verified = verified != nullptr && verified->as_bool();
  if (const Json* status = j.find("status"); status != nullptr) {
    std::optional<RunStatus> parsed =
        run_status_from_name(status->as_string());
    if (!parsed) return std::nullopt;
    r.status = *parsed;
  } else {
    // Schema-v1 entries (e.g. an old result cache) carry only `verified`.
    r.status = r.verified ? RunStatus::kOk : RunStatus::kWorkloadVerify;
  }
  r.error = str("error");
  if (r.error.empty()) r.error = str("verify_error");  // schema v1
  const Json* attempts = j.find("attempts");
  r.attempts = attempts != nullptr
                   ? static_cast<unsigned>(attempts->as_uint(1))
                   : 1;
  r.cycles = num("cycles");
  if (const Json* phases = j.find("phases"); phases != nullptr)
    for (const Json& ph : phases->items()) {
      const Json* cycles = ph.find("cycles");
      r.phase_cycles.push_back(
          {ph.find("label") != nullptr ? ph.find("label")->as_string() : "",
           cycles != nullptr ? cycles->as_uint() : 0});
    }
  r.opportunity_cycles = num("opportunity_cycles");
  r.scalar_insts = num("scalar_insts");
  r.vector_insts = num("vector_insts");
  r.element_ops = num("element_ops");
  if (const Json* u = j.find("utilization"); u != nullptr) {
    auto field = [&u](const char* key) {
      const Json* v = u->find(key);
      return v != nullptr ? v->as_uint() : 0;
    };
    r.util.busy = field("busy");
    r.util.partly_idle = field("partly_idle");
    r.util.stalled = field("stalled");
    r.util.all_idle = field("all_idle");
  }
  if (const Json* hist = j.find("vl_histogram"); hist != nullptr)
    for (const auto& [key, count] : hist->members())
      r.vl_hist.add(std::strtoull(key.c_str(), nullptr, 10),
                    count.as_uint());
  if (const Json* stats = j.find("stats"); stats != nullptr)
    r.stats = stats::Snapshot::from_json(*stats);
  return r;
}

namespace {

/// Serializes the machine (paused, or between phases) plus the "sim"
/// section carrying run identity and phase progress (docs/CKPT.md).
void write_snapshot(const std::string& path, const Processor& proc,
                    const workloads::Workload& workload,
                    const workloads::Variant& variant,
                    const MachineConfig& config, std::size_t phase_index,
                    Cycle phase_start,
                    const std::vector<PhaseTiming>& completed) {
  ckpt::Writer w;
  w.begin_section("sim");
  w.str("workload", workload.name());
  w.str("variant", variant.to_string());
  w.str("isa", isa::isa_name(config.isa));
  w.str("config_fingerprint", config.fingerprint());
  w.u64("phase_index", phase_index);
  w.u64("phase_start_cycle", phase_start);
  Json phases = Json::array();
  for (const PhaseTiming& p : completed) {
    Json ph = Json::object();
    ph.set("label", p.label);
    ph.set("cycles", p.cycles);
    phases.push_back(std::move(ph));
  }
  w.set("phases", std::move(phases));
  w.end_section();
  proc.save_sections(w);
  std::string err;
  if (!ckpt::save_file(path, w.finish(), &err))
    VLT_FAIL(ErrorKind::kIo, "checkpoint write failed: " + err);
}

}  // namespace

bool checkpoint_matches(const Json& doc, const std::string& workload,
                        const std::string& variant,
                        const MachineConfig& config, std::string* why) {
  const Json* sections = doc.find("sections");
  const Json* sim = nullptr;
  if (sections != nullptr)
    for (const Json& s : sections->items()) {
      const Json* n = s.find("name");
      if (n != nullptr && n->as_string() == "sim") {
        sim = s.find("body");
        break;
      }
    }
  if (sim == nullptr) {
    if (why != nullptr) *why = "snapshot has no sim section";
    return false;
  }
  auto match = [&](const char* key, const std::string& want) {
    const Json* v = sim->find(key);
    const bool is_str =
        v != nullptr && v->type() == Json::Type::kString;
    if (is_str && v->as_string() == want) return true;
    if (why != nullptr)
      *why = std::string(key) + " mismatch (snapshot has " +
             (is_str ? "'" + v->as_string() + "'" : std::string("none")) +
             ", this cell needs '" + want + "')";
    return false;
  };
  return match("workload", workload) && match("variant", variant) &&
         match("isa", isa::isa_name(config.isa)) &&
         match("config_fingerprint", config.fingerprint());
}

RunResult Simulator::run(const workloads::Workload& workload,
                         const workloads::Variant& variant) const {
  VLT_CHECK(workload.supports(variant.kind),
            workload.name() + " does not support variant " +
                variant.to_string());
  VLT_CHECK(workload.supports_isa(config_.isa),
            workload.name() + " has no port to the " +
                std::string(isa::isa_name(config_.isa)) + " ISA frontend");
  if ((ckpt_.armed() || restore_.has_value()) && config_.audit.enabled())
    VLT_FAIL(ErrorKind::kConfig,
             "checkpoint/restore is incompatible with audit mode: "
             "auditor and lockstep state is not serialized");
  const auto wall_start = std::chrono::steady_clock::now();

  std::unique_ptr<audit::Auditor> auditor;
  if (config_.audit.enabled())
    auditor = std::make_unique<audit::Auditor>(config_.audit, audit_sink_);

  Processor proc(config_, auditor.get());
  if (trace_ != nullptr) proc.set_trace(trace_);
  workload.init_memory(proc.memory());
  if (auditor && auditor->lockstep() != nullptr)
    auditor->lockstep()->seed_memory(proc.memory());
  ParallelProgram prog = workload.build(variant, config_.isa);

  RunResult res;
  res.workload = workload.name();
  res.config = config_.name;
  res.variant = variant.to_string();
  res.isa = isa::isa_name(config_.isa);

  // Restore (docs/CKPT.md): rebuild the machine from the snapshot and
  // resume the in-progress phase without re-binding its contexts. The
  // programs were rebuilt deterministically by workload.build above;
  // restore_sections re-points every context at them.
  std::size_t first_phase = 0;
  Cycle phase_start = 0;
  bool resumed_mid_phase = false;
  if (restore_.has_value()) {
    ckpt::Reader r(*restore_);
    r.enter_section("sim");
    auto expect = [&r](const char* key, const std::string& want) {
      const std::string& got = r.str(key);
      if (got != want)
        VLT_FAIL(ErrorKind::kConfig, "checkpoint " + std::string(key) +
                                         " '" + got +
                                         "' does not match this run's '" +
                                         want + "'");
    };
    expect("workload", workload.name());
    expect("variant", variant.to_string());
    expect("isa", isa::isa_name(config_.isa));
    expect("config_fingerprint", config_.fingerprint());
    first_phase = r.u64("phase_index");
    phase_start = r.u64("phase_start_cycle");
    for (const Json& ph : r.get("phases").items()) {
      const Json* label = ph.find("label");
      const Json* cycles = ph.find("cycles");
      if (label == nullptr || cycles == nullptr)
        VLT_FAIL(ErrorKind::kIo, "checkpoint phase record malformed");
      res.phase_cycles.push_back({label->as_string(), cycles->as_uint()});
    }
    r.exit_section();
    if (first_phase >= prog.phases.size() ||
        res.phase_cycles.size() != first_phase)
      VLT_FAIL(ErrorKind::kIo,
               "checkpoint phase progress does not fit this workload");
    const Phase& cur = prog.phases[first_phase];
    proc.restore_sections(r, [&cur](ThreadId tid) -> const isa::Program* {
      return tid < cur.programs.size() ? &cur.programs[tid] : nullptr;
    });
    for (std::size_t i = 0; i < first_phase; ++i)
      if (prog.phases[i].vlt_opportunity)
        res.opportunity_cycles += res.phase_cycles[i].cycles;
    resumed_mid_phase = true;
  }

  // Checkpoint scheduling: the one-shot target first, then the periodic
  // cadence anchored at each written cycle — which makes the cadence
  // restart-invariant (a restore at cycle C re-arms C + every, exactly
  // what the uninterrupted writer would have armed).
  Cycle next_ckpt = kNeverReady;
  if (!ckpt_.out_path.empty()) {
    if (ckpt_.at != kNeverReady)
      next_ckpt = ckpt_.at;
    else if (ckpt_.every > 0)
      next_ckpt = proc.now() + ckpt_.every;
  }

  unsigned prev_threads = 1;
  for (std::size_t pi = first_phase; pi < prog.phases.size(); ++pi) {
    const Phase& phase = prog.phases[pi];
    const bool resuming = resumed_mid_phase && pi == first_phase;
    if (!resuming) {
      // Thread-management overhead at region boundaries (paper §3.3:
      // saving and restoring vector registers, thread API costs).
      if (phase.nthreads() != prev_threads) {
        proc.charge_overhead(config_.phase_switch_overhead);
        if (auditor) auditor->note_overhead(config_.phase_switch_overhead);
      }
      phase_start = proc.now();
      proc.start_phase(phase);
    }
    prev_threads = phase.nthreads();

    for (;;) {
      proc.set_pause_at(next_ckpt);
      const bool done = proc.continue_phase(phase);
      if (done) break;
      write_snapshot(ckpt_.out_path, proc, workload, variant, config_, pi,
                     phase_start, res.phase_cycles);
      next_ckpt = ckpt_.every > 0 ? proc.now() + ckpt_.every : kNeverReady;
    }
    proc.set_pause_at(kNeverReady);

    const Cycle took = proc.now() - phase_start;
    res.phase_cycles.push_back({phase.label, took});
    if (phase.vlt_opportunity) res.opportunity_cycles += took;
    if (auditor) {
      const vu::VectorUnit* vu = proc.vector_unit();
      auditor->note_phase(phase.label, took,
                          vu != nullptr ? vu->element_ops() : 0);
    }
  }
  res.cycles = proc.now();  // includes thread-switch overhead

  res.scalar_insts = proc.committed_scalar();
  res.vector_insts = proc.committed_vector();
  if (const vu::VectorUnit* vu = proc.vector_unit()) {
    res.element_ops = vu->element_ops();
    res.util = vu->utilization();
    res.vl_hist = vu->vl_histogram();
  }

  res.stats = proc.registry().snapshot();
  res.ticks_executed = proc.ticks_executed();
  res.scans = proc.scans_executed();

  if (auditor) {
    // End-of-run conservation pass over every registered invariant
    // (cache hits+misses==accesses, span-vs-cycle accounting, …).
    proc.registry().check_invariants(*auditor->invariant_sink(), proc.now());
    auditor->finish_run(res.cycles, res.opportunity_cycles, res.element_ops,
                        res.vl_hist, proc.memory());
  }

  std::optional<std::string> err = workload.verify(proc.memory());
  res.verified = !err.has_value();
  if (err) {
    res.status = RunStatus::kWorkloadVerify;
    res.error = *err;
  }
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return res;
}

Cycle run_cycles(const MachineConfig& config,
                 const workloads::Workload& workload,
                 const workloads::Variant& variant) {
  RunResult r = Simulator(config).run(workload, variant);
  if (!r.verified)
    VLT_FAIL(ErrorKind::kWorkloadVerify,
             workload.name() + " failed verification on " + config.name +
                 ": " + r.error);
  return r.cycles;
}

}  // namespace vlt::machine
