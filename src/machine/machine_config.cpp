#include "machine/machine_config.hpp"

#include "common/log.hpp"

namespace vlt::machine {

std::pair<unsigned, unsigned> MachineConfig::thread_slot(unsigned k) const {
  VLT_CHECK(k < total_smt_slots(), "more threads than hardware contexts");
  unsigned nsus = static_cast<unsigned>(sus.size());
  unsigned su = k % nsus;
  unsigned ctx = k / nsus;
  VLT_CHECK(ctx < sus[su].smt_contexts,
            "thread mapping exceeded SMT slots (heterogeneous SMT depth)");
  return {su, ctx};
}

MachineConfig MachineConfig::base(unsigned lanes) {
  MachineConfig c;
  c.name = lanes == 8 ? "base" : "base-" + std::to_string(lanes) + "lane";
  c.sus = {su::SuParams{}};  // one 4-way SU
  c.vu.lanes = lanes;
  c.max_vector_threads = 1;
  return c;
}

MachineConfig MachineConfig::v2_smt() {
  MachineConfig c = base();
  c.name = "V2-SMT";
  c.sus[0].smt_contexts = 2;
  c.max_vector_threads = 2;
  return c;
}

MachineConfig MachineConfig::v4_smt() {
  MachineConfig c = base();
  c.name = "V4-SMT";
  c.sus[0].smt_contexts = 4;
  c.max_vector_threads = 4;
  return c;
}

MachineConfig MachineConfig::v2_cmp() {
  MachineConfig c = base();
  c.name = "V2-CMP";
  c.sus = {su::SuParams{}, su::SuParams{}};
  c.max_vector_threads = 2;
  return c;
}

MachineConfig MachineConfig::v2_cmp_h() {
  MachineConfig c = base();
  c.name = "V2-CMP-h";
  c.sus = {su::SuParams{}, su::SuParams::two_way()};
  c.max_vector_threads = 2;
  return c;
}

MachineConfig MachineConfig::v4_cmp() {
  MachineConfig c = base();
  c.name = "V4-CMP";
  c.sus = {su::SuParams{}, su::SuParams{}, su::SuParams{}, su::SuParams{}};
  c.max_vector_threads = 4;
  return c;
}

MachineConfig MachineConfig::v4_cmp_h() {
  MachineConfig c = base();
  c.name = "V4-CMP-h";
  c.sus = {su::SuParams{}, su::SuParams::two_way(), su::SuParams::two_way(),
           su::SuParams::two_way()};
  c.max_vector_threads = 4;
  return c;
}

MachineConfig MachineConfig::v4_cmt() {
  MachineConfig c = base();
  c.name = "V4-CMT";
  su::SuParams smt2;
  smt2.smt_contexts = 2;
  c.sus = {smt2, smt2};
  c.max_vector_threads = 4;
  return c;
}

MachineConfig MachineConfig::cmt() {
  MachineConfig c = v4_cmt();
  c.name = "CMT";
  c.has_vector_unit = false;
  c.max_vector_threads = 0;
  return c;
}

MachineConfig MachineConfig::by_name(const std::string& name) {
  if (name == "base") return base();
  if (name == "V2-SMT") return v2_smt();
  if (name == "V4-SMT") return v4_smt();
  if (name == "V2-CMP") return v2_cmp();
  if (name == "V2-CMP-h") return v2_cmp_h();
  if (name == "V4-CMP") return v4_cmp();
  if (name == "V4-CMP-h") return v4_cmp_h();
  if (name == "V4-CMT") return v4_cmt();
  if (name == "CMT") return cmt();
  VLT_CHECK(false, "unknown machine configuration: " + name);
  return base();
}

std::vector<std::string> MachineConfig::preset_names() {
  return {"base",     "V2-SMT",   "V4-SMT", "V2-CMP", "V2-CMP-h",
          "V4-CMP",   "V4-CMP-h", "V4-CMT", "CMT"};
}

}  // namespace vlt::machine
