#include "machine/machine_config.hpp"

#include "common/log.hpp"

namespace vlt::machine {

std::pair<unsigned, unsigned> MachineConfig::thread_slot(unsigned k) const {
  VLT_CHECK(k < total_smt_slots(), "more threads than hardware contexts");
  unsigned nsus = static_cast<unsigned>(sus.size());
  unsigned su = k % nsus;
  unsigned ctx = k / nsus;
  VLT_CHECK(ctx < sus[su].smt_contexts,
            "thread mapping exceeded SMT slots (heterogeneous SMT depth)");
  return {su, ctx};
}

MachineConfig MachineConfig::base(unsigned lanes) {
  MachineConfig c;
  c.name = lanes == 8 ? "base" : "base-" + std::to_string(lanes) + "lane";
  c.sus = {su::SuParams{}};  // one 4-way SU
  c.vu.lanes = lanes;
  c.max_vector_threads = 1;
  return c;
}

MachineConfig MachineConfig::v2_smt() {
  MachineConfig c = base();
  c.name = "V2-SMT";
  c.sus[0].smt_contexts = 2;
  c.max_vector_threads = 2;
  return c;
}

MachineConfig MachineConfig::v4_smt() {
  MachineConfig c = base();
  c.name = "V4-SMT";
  c.sus[0].smt_contexts = 4;
  c.max_vector_threads = 4;
  return c;
}

MachineConfig MachineConfig::v2_cmp() {
  MachineConfig c = base();
  c.name = "V2-CMP";
  c.sus = {su::SuParams{}, su::SuParams{}};
  c.max_vector_threads = 2;
  return c;
}

MachineConfig MachineConfig::v2_cmp_h() {
  MachineConfig c = base();
  c.name = "V2-CMP-h";
  c.sus = {su::SuParams{}, su::SuParams::two_way()};
  c.max_vector_threads = 2;
  return c;
}

MachineConfig MachineConfig::v4_cmp() {
  MachineConfig c = base();
  c.name = "V4-CMP";
  c.sus = {su::SuParams{}, su::SuParams{}, su::SuParams{}, su::SuParams{}};
  c.max_vector_threads = 4;
  return c;
}

MachineConfig MachineConfig::v4_cmp_h() {
  MachineConfig c = base();
  c.name = "V4-CMP-h";
  c.sus = {su::SuParams{}, su::SuParams::two_way(), su::SuParams::two_way(),
           su::SuParams::two_way()};
  c.max_vector_threads = 4;
  return c;
}

MachineConfig MachineConfig::v4_cmt() {
  MachineConfig c = base();
  c.name = "V4-CMT";
  su::SuParams smt2;
  smt2.smt_contexts = 2;
  c.sus = {smt2, smt2};
  c.max_vector_threads = 4;
  return c;
}

MachineConfig MachineConfig::cmt() {
  MachineConfig c = v4_cmt();
  c.name = "CMT";
  c.has_vector_unit = false;
  c.max_vector_threads = 0;
  return c;
}

std::optional<MachineConfig> MachineConfig::find(const std::string& name) {
  if (name == "base") return base();
  if (name == "V2-SMT") return v2_smt();
  if (name == "V4-SMT") return v4_smt();
  if (name == "V2-CMP") return v2_cmp();
  if (name == "V2-CMP-h") return v2_cmp_h();
  if (name == "V4-CMP") return v4_cmp();
  if (name == "V4-CMP-h") return v4_cmp_h();
  if (name == "V4-CMT") return v4_cmt();
  if (name == "CMT") return cmt();
  return std::nullopt;
}

MachineConfig MachineConfig::by_name(const std::string& name) {
  std::optional<MachineConfig> c = find(name);
  VLT_CHECK(c.has_value(), "unknown machine configuration: " + name);
  return *c;
}

std::string MachineConfig::fingerprint() const {
  std::string fp = "vltcfg2";  // bump when a new timing knob is added
  auto add = [&fp](std::uint64_t v) { fp += ":" + std::to_string(v); };
  add(static_cast<std::uint64_t>(isa));
  add(sus.size());
  for (const su::SuParams& s : sus) {
    add(s.width);
    add(s.rob_size);
    add(s.arith_units);
    add(s.mem_ports);
    add(s.smt_contexts);
    add(s.fetch_queue);
    add(s.l1_size);
    add(s.l1_ways);
    add(s.l1_data_latency);
    add(s.redirect_penalty);
    add(s.bpred_bits);
    add(s.l1_prefetch ? 1 : 0);
    add(s.store_buffer);
    add(s.vec_handoff_rate);
  }
  add(has_vector_unit ? 1 : 0);
  add(vu.lanes);
  add(vu.issue_width);
  add(vu.viq_size);
  add(vu.window_size);
  add(vu.arith_fus);
  add(vu.mem_ports);
  add(vu.scalar_xfer_latency);
  add(vu.chaining ? 1 : 0);
  add(l2.size_bytes);
  add(l2.ways);
  add(l2.banks);
  add(l2.hit_latency);
  add(l2.miss_latency);
  add(l2.bank_occupancy);
  add(lane_core.width);
  add(lane_core.arith_units);
  add(lane_core.mem_ports);
  add(lane_core.max_outstanding);
  add(lane_core.store_queue);
  add(lane_core.icache_size);
  add(lane_core.icache_ways);
  add(lane_core.imiss_forward_latency);
  add(lane_core.taken_branch_penalty);
  add(barrier_latency);
  add(phase_switch_overhead);
  add(max_vector_threads);
  add(mem_cycles_per_line);
  return fp;
}

std::vector<std::string> MachineConfig::preset_names() {
  return {"base",     "V2-SMT",   "V4-SMT", "V2-CMP", "V2-CMP-h",
          "V4-CMP",   "V4-CMP-h", "V4-CMT", "CMT"};
}

}  // namespace vlt::machine
