// Phase-structured parallel programs.
//
// The paper applies VLT selectively to low-DLP regions (§3.3): a program
// alternates between serial/high-DLP phases that run as a single thread on
// all lanes, and parallel regions that run as 2-4 vector threads or 8
// scalar threads. Thread switches happen at boundaries of large parallel
// regions where vector registers hold no live values.
#pragma once

#include <string>
#include <vector>

#include "isa/program.hpp"

namespace vlt::machine {

enum class PhaseMode {
  kSerial,         // one thread, all lanes (base vector execution)
  kVectorThreads,  // K vector threads, lanes/K lanes each (VLT §4)
  kLaneThreads,    // scalar threads on the vector lanes (VLT §5)
  kSuThreads,      // scalar threads on the scalar units (CMP/CMT baseline)
};

struct Phase {
  std::string label;
  PhaseMode mode = PhaseMode::kSerial;
  /// Counts toward Table 4's "% Opportunity" when true: the phase could be
  /// accelerated by VLT multithreading.
  bool vlt_opportunity = false;
  std::vector<isa::Program> programs;  // one per thread

  unsigned nthreads() const { return static_cast<unsigned>(programs.size()); }
};

struct ParallelProgram {
  std::string name;
  std::vector<Phase> phases;
};

}  // namespace vlt::machine
