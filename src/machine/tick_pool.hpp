// Host-thread pool for partition-parallel scalar-unit ticking
// (MachineConfig::host_threads). A deliberately tiny fork-join primitive:
// one task batch at a time, indices claimed in ascending order, the
// calling thread participates, and per-task exceptions are captured and
// rethrown lowest-index-first so a parallel cycle fails with the same
// diagnostic a serial one would.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

namespace vlt::machine {

class SuTickPool {
 public:
  using TaskFn = void (*)(void* ctx, std::size_t index);

  /// `nthreads` is the total participant count including the caller of
  /// run(); nthreads - 1 host threads are spawned and parked.
  explicit SuTickPool(unsigned nthreads);
  ~SuTickPool();

  SuTickPool(const SuTickPool&) = delete;
  SuTickPool& operator=(const SuTickPool&) = delete;

  /// Runs fn(ctx, i) for every i in [0, ntasks), each exactly once,
  /// across the workers plus the calling thread. Returns once all tasks
  /// have completed; if any threw, the exception of the lowest-index
  /// failing task is rethrown here.
  void run(TaskFn fn, void* ctx, std::size_t ntasks);

 private:
  void worker_loop();
  /// Claims and executes tasks of the current batch until none are left.
  void drain();

  // Batch description. Published by the epoch_ release bump, read by
  // workers only between their epoch acquire and their ack release —
  // run() waits for all acks before returning, so no worker can touch
  // these while the next batch is being set up.
  TaskFn fn_ = nullptr;
  void* ctx_ = nullptr;
  std::size_t ntasks_ = 0;
  std::vector<std::exception_ptr> errors_;

  std::atomic<std::size_t> claim_{0};
  std::atomic<std::size_t> acked_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<unsigned> sleepers_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

}  // namespace vlt::machine
