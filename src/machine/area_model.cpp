#include "machine/area_model.hpp"

#include <cstdio>

#include "common/log.hpp"

namespace vlt::machine {

double AreaModel::scalar_unit_area(unsigned width,
                                   unsigned smt_contexts) const {
  double base;
  switch (width) {
    case 2: base = areas_.su_2way; break;
    case 4: base = areas_.su_4way; break;
    default:
      VLT_CHECK(false, "area model covers 2-way and 4-way scalar units");
      return 0;
  }
  switch (smt_contexts) {
    case 1: return base;
    case 2: return base * (1.0 + areas_.smt2_penalty);
    case 4: return base * (1.0 + areas_.smt4_penalty);
    default:
      VLT_CHECK(false, "area model covers 1/2/4 SMT contexts");
      return 0;
  }
}

double AreaModel::config_area(const MachineConfig& config) const {
  double a = 0.0;
  for (const auto& su : config.sus)
    a += scalar_unit_area(su.width, su.smt_contexts);
  if (config.has_vector_unit) {
    a += areas_.vcl_2way;
    a += areas_.lane * config.vu.lanes;
  }
  a += areas_.l2_4mb;
  return a;
}

double AreaModel::base_area() const {
  return config_area(MachineConfig::base());
}

double AreaModel::pct_increase(const MachineConfig& config) const {
  return (config_area(config) / base_area() - 1.0) * 100.0;
}

std::string AreaModel::table1() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%-36s %8s\n"
                "%-36s %8.1f\n%-36s %8.1f\n%-36s %8.1f\n%-36s %8.1f\n"
                "%-36s %8.1f\n%-36s %8.1f\n",
                "Component", "mm^2",
                "2-way scalar unit + L1 caches", areas_.su_2way,
                "4-way scalar unit + L1 caches", areas_.su_4way,
                "2-way VCL", areas_.vcl_2way,
                "Vector lane", areas_.lane,
                "L2 cache (4MB)", areas_.l2_4mb,
                "Base vector processor", base_area());
  return buf;
}

std::string AreaModel::table2() const {
  std::string out = "Configuration    % Area Increase\n";
  for (const char* name :
       {"V2-SMT", "V4-SMT", "V2-CMP", "V2-CMP-h", "V4-CMP", "V4-CMP-h",
        "V4-CMT"}) {
    char buf[80];
    std::snprintf(buf, sizeof(buf), "%-16s %14.1f%%\n", name,
                  pct_increase(MachineConfig::by_name(name)));
    out += buf;
  }
  return out;
}

}  // namespace vlt::machine
