#include "machine/processor.hpp"

#include <cstdio>

#include "common/log.hpp"

namespace vlt::machine {

Processor::Processor(const MachineConfig& config, audit::Auditor* auditor)
    : config_(config),
      auditor_(auditor),
      main_memory_(config.memory_params()),
      l2_(config.l2, main_memory_) {
  audit::AuditSink* sink =
      auditor_ != nullptr ? auditor_->invariant_sink() : nullptr;
  barrier_.set_audit(sink);
  l2_.set_audit(sink);
  if (config_.has_vector_unit) {
    vu_ = std::make_unique<vu::VectorUnit>(config_.vu, l2_);
    vu_->set_audit(sink);
  }
  for (const su::SuParams& p : config_.sus)
    sus_.push_back(std::make_unique<su::ScalarCore>(p, memory_, l2_, barrier_,
                                                    vu_.get(), auditor_));
  if (config_.has_vector_unit) {
    for (unsigned i = 0; i < config_.vu.lanes; ++i)
      lanes_.push_back(std::make_unique<lanecore::LaneCore>(
          config_.lane_core, memory_, l2_, barrier_, auditor_));
  }
}

void Processor::start_phase_contexts(const Phase& phase) {
  const unsigned k = phase.nthreads();
  VLT_CHECK(k >= 1, "phase without threads");
  for (auto& su : sus_) su->clear_contexts();

  switch (phase.mode) {
    case PhaseMode::kSerial: {
      VLT_CHECK(k == 1, "serial phase must have exactly one program");
      if (vu_) vu_->configure_contexts(1, now_);
      barrier_.begin_phase(1, config_.barrier_latency);
      su::ThreadAssignment work;
      work.program = &phase.programs[0];
      work.tid = 0;
      work.nthreads = 1;
      work.max_vl = vu_ ? vu_->max_vl_per_ctx() : 0;
      work.vctx = 0;
      sus_[0]->start_context(0, work, now_);
      break;
    }
    case PhaseMode::kVectorThreads: {
      VLT_CHECK(vu_ != nullptr, "vector threads need a vector unit");
      VLT_CHECK(k >= 1 && k <= config_.max_vector_threads,
                "thread count exceeds the machine's VLT support");
      vu_->configure_contexts(k, now_);
      barrier_.begin_phase(k, config_.barrier_latency);
      for (unsigned t = 0; t < k; ++t) {
        auto [su, ctx] = config_.thread_slot(t);
        su::ThreadAssignment work;
        work.program = &phase.programs[t];
        work.tid = t;
        work.nthreads = k;
        work.max_vl = vu_->max_vl_per_ctx();
        work.vctx = t;
        sus_[su]->start_context(ctx, work, now_);
      }
      break;
    }
    case PhaseMode::kSuThreads: {
      VLT_CHECK(k <= config_.total_smt_slots(),
                "more threads than scalar-unit contexts");
      if (vu_) vu_->configure_contexts(1, now_);
      barrier_.begin_phase(k, config_.barrier_latency);
      for (unsigned t = 0; t < k; ++t) {
        auto [su, ctx] = config_.thread_slot(t);
        su::ThreadAssignment work;
        work.program = &phase.programs[t];
        work.tid = t;
        work.nthreads = k;
        work.max_vl = vu_ ? vu_->max_vl_per_ctx() : 0;
        work.vctx = 0;
        sus_[su]->start_context(ctx, work, now_);
      }
      break;
    }
    case PhaseMode::kLaneThreads: {
      VLT_CHECK(vu_ != nullptr, "lane threads need vector lanes");
      VLT_CHECK(k <= lanes_.size(), "more threads than lanes");
      VLT_CHECK(vu_->ctx_quiesced(0, now_), "vector unit busy at phase start");
      barrier_.begin_phase(k, config_.barrier_latency);
      for (unsigned t = 0; t < k; ++t)
        lanes_[t]->start(phase.programs[t], t, k, now_);
      break;
    }
  }

  if (auditor_ != nullptr && auditor_->lockstep() != nullptr) {
    const unsigned mvl =
        (phase.mode == PhaseMode::kLaneThreads || vu_ == nullptr)
            ? 0
            : vu_->max_vl_per_ctx();
    std::vector<audit::Lockstep::ThreadSpec> specs;
    for (unsigned t = 0; t < k; ++t)
      specs.push_back({&phase.programs[t], t, k, mvl});
    auditor_->lockstep()->begin_phase(specs);
  }
}

bool Processor::phase_complete(const Phase& phase) const {
  if (phase.mode == PhaseMode::kLaneThreads) {
    for (unsigned t = 0; t < phase.nthreads(); ++t)
      if (!lanes_[t]->done()) return false;
    return true;
  }
  for (const auto& su : sus_)
    if (!su->all_done()) return false;
  if (vu_) {
    for (unsigned c = 0; c < vu_->num_contexts(); ++c)
      if (!vu_->ctx_quiesced(c, now_)) return false;
  }
  return true;
}

Cycle Processor::run_phase(const Phase& phase) {
  start_phase_contexts(phase);
  const Cycle start = now_;
  const bool lane_mode = phase.mode == PhaseMode::kLaneThreads;
  std::uint64_t lane_committed_before = 0;
  if (lane_mode)
    for (const auto& lc : lanes_) lane_committed_before += lc->committed();

  while (!phase_complete(phase)) {
    // Per-run budget (now_ is monotonic across phases, so this bounds the
    // whole cell, not just one phase). kTimeout so campaigns can classify
    // and retry it separately from invariant failures.
    if (now_ >= config_.cycle_limit)
      VLT_FAIL(ErrorKind::kTimeout, timeout_diagnostic(phase));
    // The watchdog catches a stuck barrier long before the cycle budget
    // would; polled sparsely so audit mode stays cheap.
    if (auditor_ != nullptr && (now_ & 1023) == 0)
      auditor_->barrier_watchdog(barrier_, now_, phase.label);
    if (lane_mode) {
      for (unsigned t = 0; t < phase.nthreads(); ++t) lanes_[t]->tick(now_);
    } else {
      if (vu_) vu_->tick(now_);
      for (auto& su : sus_) su->tick(now_);
    }
    ++now_;
  }

  if (lane_mode) {
    std::uint64_t after = 0;
    for (const auto& lc : lanes_) after += lc->committed();
    lane_committed_ += after - lane_committed_before;
  }
  return now_ - start;
}

std::string Processor::timeout_diagnostic(const Phase& phase) const {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "run exceeded the %llu-cycle budget in phase '%s'"
                " (possible deadlock)",
                static_cast<unsigned long long>(config_.cycle_limit),
                phase.label.c_str());
  std::string msg = buf;

  if (phase.mode == PhaseMode::kLaneThreads) {
    for (unsigned t = 0; t < phase.nthreads() && t < lanes_.size(); ++t) {
      const lanecore::LaneCore& lc = *lanes_[t];
      std::snprintf(buf, sizeof(buf), "; lane%u: %s pc=%llu", t,
                    lc.done() ? "done" : (lc.active() ? "running" : "idle"),
                    static_cast<unsigned long long>(lc.arch_state().pc()));
      msg += buf;
    }
  } else {
    for (unsigned s = 0; s < sus_.size(); ++s) {
      const su::ScalarCore& su = *sus_[s];
      for (unsigned c = 0; c < su.num_contexts(); ++c) {
        if (!su.context_active(c)) continue;
        std::snprintf(
            buf, sizeof(buf), "; su%u.ctx%u: %s pc=%llu", s, c,
            su.context_done(c) ? "done" : "running",
            static_cast<unsigned long long>(su.arch_state(c).pc()));
        msg += buf;
      }
    }
  }

  vltctl::BarrierController::PendingGen pending = barrier_.oldest_pending();
  if (pending.valid) {
    std::snprintf(buf, sizeof(buf),
                  "; barrier: generation %llu stuck at %u/%u arrivals since "
                  "cycle %llu",
                  static_cast<unsigned long long>(pending.generation),
                  pending.arrivals, pending.expected,
                  static_cast<unsigned long long>(pending.first_arrival));
    msg += buf;
  } else {
    msg += "; barrier: no generation pending";
  }
  return msg;
}

std::uint64_t Processor::committed_scalar() const {
  std::uint64_t n = lane_committed_;
  for (const auto& su : sus_) n += su->committed_scalar();
  return n;
}

std::uint64_t Processor::committed_vector() const {
  std::uint64_t n = 0;
  for (const auto& su : sus_) n += su->committed_vector();
  return n;
}

}  // namespace vlt::machine
