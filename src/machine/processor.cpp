#include "machine/processor.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "common/log.hpp"

namespace vlt::machine {

Processor::Processor(const MachineConfig& config, audit::Auditor* auditor)
    : config_(config),
      auditor_(auditor),
      main_memory_(config.memory_params()),
      l2_(config.l2, main_memory_) {
  audit::AuditSink* sink =
      auditor_ != nullptr ? auditor_->invariant_sink() : nullptr;
  barrier_.set_audit(sink);
  l2_.set_audit(sink);
  if (config_.has_vector_unit) {
    vu_ = std::make_unique<vu::VectorUnit>(config_.vu, l2_);
    vu_->set_audit(sink);
  }
  for (const su::SuParams& p : config_.sus)
    sus_.push_back(std::make_unique<su::ScalarCore>(p, memory_, l2_, barrier_,
                                                    vu_.get(), auditor_));
  if (config_.has_vector_unit) {
    for (unsigned i = 0; i < config_.vu.lanes; ++i)
      lanes_.push_back(std::make_unique<lanecore::LaneCore>(
          config_.lane_core, memory_, l2_, barrier_, auditor_));
  }

  // All units constructed and at their final addresses: register every
  // instrument under its hierarchical name. Unit-owned counters live
  // behind unique_ptrs; l2_/barrier_/ticks_ are direct members, so the
  // registry pins this Processor in place (it is never moved).
  l2_.register_stats(registry_, "l2");
  barrier_.register_stats(registry_, "barrier");
  if (vu_) vu_->register_stats(registry_);
  for (std::size_t i = 0; i < sus_.size(); ++i)
    sus_[i]->register_stats(registry_, "su" + std::to_string(i));
  for (std::size_t i = 0; i < lanes_.size(); ++i)
    lanes_[i]->register_stats(registry_, "lane" + std::to_string(i));
  registry_.add_counter("engine.ticks", &ticks_,
                        stats::Stability::kDiagnostic);
  registry_.add_counter("engine.scans", &scans_,
                        stats::Stability::kDiagnostic);
}

void Processor::set_trace(stats::TraceBuffer* trace) {
  trace_attached_ = trace != nullptr;
  l2_.set_trace(trace);
  barrier_.set_trace(trace);
  if (vu_) vu_->set_trace(trace);
}

struct Processor::ParTickCtx {
  Processor* p;
  Cycle now;
  std::atomic<unsigned> undone_delta{0};
};

void Processor::par_tick_task(void* vctx, std::size_t k) {
  ParTickCtx& c = *static_cast<ParTickCtx*>(vctx);
  Processor& p = *c.p;
  const std::size_t i = p.due_scratch_[k];
  su::ScalarCore& su = *p.sus_[i];
  // The tick-complete flag must be set even if an invariant failure
  // throws out of tick(): higher-index units' gates spin on it.
  struct FlagGuard {
    std::atomic<std::uint8_t>& f;
    ~FlagGuard() { f.store(1, std::memory_order_release); }
  } guard{p.tick_done_[i]};
  const unsigned before = su.undone_contexts();
  su.tick(c.now);
  c.undone_delta.fetch_add(before - su.undone_contexts(),
                           std::memory_order_relaxed);
}

void Processor::start_phase_contexts(const Phase& phase) {
  const unsigned k = phase.nthreads();
  VLT_CHECK(k >= 1, "phase without threads");
  for (auto& su : sus_) su->clear_contexts();

  switch (phase.mode) {
    case PhaseMode::kSerial: {
      VLT_CHECK(k == 1, "serial phase must have exactly one program");
      if (vu_) vu_->configure_contexts(1, now_);
      barrier_.begin_phase(1, config_.barrier_latency);
      su::ThreadAssignment work;
      work.program = &phase.programs[0];
      work.tid = 0;
      work.nthreads = 1;
      work.max_vl = vu_ ? vu_->max_vl_per_ctx() : 0;
      work.vctx = 0;
      sus_[0]->start_context(0, work, now_);
      break;
    }
    case PhaseMode::kVectorThreads: {
      VLT_CHECK(vu_ != nullptr, "vector threads need a vector unit");
      VLT_CHECK(k >= 1 && k <= config_.max_vector_threads,
                "thread count exceeds the machine's VLT support");
      vu_->configure_contexts(k, now_);
      barrier_.begin_phase(k, config_.barrier_latency);
      for (unsigned t = 0; t < k; ++t) {
        auto [su, ctx] = config_.thread_slot(t);
        su::ThreadAssignment work;
        work.program = &phase.programs[t];
        work.tid = t;
        work.nthreads = k;
        work.max_vl = vu_->max_vl_per_ctx();
        work.vctx = t;
        sus_[su]->start_context(ctx, work, now_);
      }
      break;
    }
    case PhaseMode::kSuThreads: {
      VLT_CHECK(k <= config_.total_smt_slots(),
                "more threads than scalar-unit contexts");
      if (vu_) vu_->configure_contexts(1, now_);
      barrier_.begin_phase(k, config_.barrier_latency);
      for (unsigned t = 0; t < k; ++t) {
        auto [su, ctx] = config_.thread_slot(t);
        su::ThreadAssignment work;
        work.program = &phase.programs[t];
        work.tid = t;
        work.nthreads = k;
        work.max_vl = vu_ ? vu_->max_vl_per_ctx() : 0;
        work.vctx = 0;
        sus_[su]->start_context(ctx, work, now_);
      }
      break;
    }
    case PhaseMode::kLaneThreads: {
      VLT_CHECK(vu_ != nullptr, "lane threads need vector lanes");
      VLT_CHECK(k <= lanes_.size(), "more threads than lanes");
      VLT_CHECK(vu_->ctx_quiesced(0, now_), "vector unit busy at phase start");
      barrier_.begin_phase(k, config_.barrier_latency);
      for (unsigned t = 0; t < k; ++t)
        lanes_[t]->start(phase.programs[t], t, k, now_);
      break;
    }
  }

  if (auditor_ != nullptr && auditor_->lockstep() != nullptr) {
    const unsigned mvl =
        (phase.mode == PhaseMode::kLaneThreads || vu_ == nullptr)
            ? 0
            : vu_->max_vl_per_ctx();
    std::vector<audit::Lockstep::ThreadSpec> specs;
    for (unsigned t = 0; t < k; ++t)
      specs.push_back({&phase.programs[t], t, k, mvl});
    auditor_->lockstep()->begin_phase(specs);
  }
}

bool Processor::phase_complete(const Phase& phase) const {
  if (phase.mode == PhaseMode::kLaneThreads) {
    for (unsigned t = 0; t < phase.nthreads(); ++t)
      if (!lanes_[t]->done()) return false;
    return true;
  }
  for (const auto& su : sus_)
    if (!su->all_done()) return false;
  if (vu_) {
    for (unsigned c = 0; c < vu_->num_contexts(); ++c)
      if (!vu_->ctx_quiesced(c, now_)) return false;
  }
  return true;
}

Cycle Processor::run_phase(const Phase& phase) {
  VLT_CHECK(pause_at_ == kNeverReady,
            "run_phase with an armed pause point; use continue_phase");
  start_phase_contexts(phase);
  const Cycle start = now_;
  continue_phase(phase);
  return now_ - start;
}

bool Processor::continue_phase(const Phase& phase) {
  paused_ = false;
  const bool lane_mode = phase.mode == PhaseMode::kLaneThreads;
  // The lane commit carry is accumulated per stretch, not per phase:
  // committed() only grows, so summing deltas across pause splits equals
  // the whole-phase delta, and the carry is checkpoint-correct mid-phase.
  std::uint64_t lane_committed_before = 0;
  if (lane_mode)
    for (const auto& lc : lanes_) lane_committed_before += lc->committed();

  if (config_.event_skip)
    run_phase_events(phase);
  else
    run_phase_cycles(phase);

  if (lane_mode) {
    std::uint64_t after = 0;
    for (const auto& lc : lanes_) after += lc->committed();
    lane_committed_ += after - lane_committed_before;
  }
  return !paused_;
}

void Processor::run_phase_cycles(const Phase& phase) {
  // The legacy cycle-by-cycle engine (--no-skip): tick every unit on
  // every cycle and rediscover completion with a full scan. Kept intact
  // as the timing oracle run_phase_events is checked against
  // (tests/test_skip_equivalence.cpp, tools/vltperf) — both engines must
  // report byte-identical results.
  const bool lane_mode = phase.mode == PhaseMode::kLaneThreads;
  while (!phase_complete(phase)) {
    // Per-run budget (now_ is monotonic across phases, so this bounds the
    // whole cell, not just one phase). kTimeout so campaigns can classify
    // and retry it separately from invariant failures.
    if (now_ >= config_.cycle_limit)
      VLT_FAIL(ErrorKind::kTimeout, timeout_diagnostic(phase));
    // Pause point (after the budget check, so a timeout surfaces exactly
    // as it would uninterrupted). This engine has no lazy bookkeeping to
    // flush: every unit is ticked — and the vector unit self-accounted —
    // through now_ - 1 already.
    if (now_ >= pause_at_) {
      paused_ = true;
      return;
    }
    // The watchdog catches a stuck barrier long before the cycle budget
    // would; polled sparsely so audit mode stays cheap.
    if (auditor_ != nullptr && now_ - last_watchdog_ >= kWatchdogInterval) {
      last_watchdog_ = now_;
      auditor_->barrier_watchdog(barrier_, now_, phase.label);
    }
    ticks_.inc();
    if (lane_mode) {
      for (unsigned t = 0; t < phase.nthreads(); ++t) lanes_[t]->tick(now_);
    } else {
      if (vu_) vu_->tick(now_);
      for (auto& su : sus_) su->tick(now_);
    }
    ++now_;
  }
}

void Processor::run_phase_events(const Phase& phase) {
  const bool lane_mode = phase.mode == PhaseMode::kLaneThreads;
  // Partition-parallel ticking (config.host_threads): engaged only in
  // vector-threads phases, where due scalar units share no scalar state
  // (each hardware context drives its own vector-unit partition) and
  // every cross-unit touch — L2, barrier, on-demand functional-page
  // creation — is either gated into serial order (su::TickGate) or
  // guarded (func::FuncMemory::set_concurrent). Audit mode and tracing
  // observe tick order, so both force the serial path. On hosts with
  // fewer cores than requested threads every pool epoch degenerates into
  // a scheduler round-trip (thousandfold slowdown on a single-core box),
  // so the parallel path also requires the hardware to actually provide
  // a core per worker — host_threads is a cap, not a demand.
  const bool par_ok = phase.mode == PhaseMode::kVectorThreads &&
                      config_.host_threads > 1 && sus_.size() > 1 &&
                      std::thread::hardware_concurrency() >=
                          std::min<unsigned>(config_.host_threads,
                                             static_cast<unsigned>(
                                                 sus_.size())) &&
                      auditor_ == nullptr && !trace_attached_;

  // Running active-unit count, decremented as lanes/contexts finish, so
  // completion is O(1) per iteration instead of a full scan. The vector
  // unit (whose drain is a scheduled event, not a per-cycle discovery) is
  // checked only once the count hits zero.
  unsigned undone = 0;
  if (lane_mode) {
    for (unsigned t = 0; t < phase.nthreads(); ++t)
      if (!lanes_[t]->done()) ++undone;
  } else {
    for (const auto& su : sus_) undone += su->undone_contexts();
  }
  auto complete = [&]() {
    if (undone > 0) return false;
    if (lane_mode || !vu_) return true;
    for (unsigned c = 0; c < vu_->num_contexts(); ++c)
      if (!vu_->ctx_quiesced(c, now_)) return false;
    return true;
  };

  // Per-unit tick gating (docs/PERF.md): each unit carries a cached
  // next_event cycle and is ticked only when due (cached value <= now_).
  // A unit's own next_event is a lower bound on its next state change,
  // and cross-unit effects flow through exactly two shared structures —
  // the barrier and the vector unit — whose mutation counters invalidate
  // the caches of every unit that reads them. A skipped unit-tick is
  // thereby a proven no-op, so only its closed-form bookkeeping (SMT
  // round-robin rotation, Figure-4 idle/stall accounting) is replayed:
  // lazily for the scalar units (span length is all that matters) and
  // eagerly every iteration for the vector unit (its accounting
  // classifies idle cycles by VIQ/window occupancy, which this cycle's
  // scalar-unit ticks may change by dispatching — so the span must be
  // closed out before they run).
  const std::size_t nsu = sus_.size();
  const unsigned nlanes = lane_mode ? phase.nthreads() : 0;
  std::vector<Cycle> unit_next(lane_mode ? nlanes : nsu, now_);
  std::vector<Cycle> su_accounted(lane_mode ? 0 : nsu, now_);
  std::vector<std::uint64_t> su_vu_seen(lane_mode ? 0 : nsu, 0);
  // Per scalar unit, the vctxs (as a bitmask) of ready vector
  // instructions blocked only by a full VIQ slice. A blocked unit must
  // tick in the same cycle as the vector-unit tick whose rename vacates
  // a slot (the handoff succeeds that very cycle) — but VIQ occupancy
  // only ever grows after that tick, so while the slice stays full the
  // retry is a proven no-op and the unit can stay parked.
  std::vector<std::uint32_t> su_vec_blocked(lane_mode ? 0 : nsu, 0);
  // Progress snapshots for the dense-streak shortcut (see the refresh
  // stage below).
  std::vector<std::uint64_t> su_prog(lane_mode ? 0 : nsu, 0);
  std::vector<std::uint64_t> lane_prog(lane_mode ? nlanes : 0, 0);
  if (lane_mode)
    for (unsigned t = 0; t < nlanes; ++t) lane_prog[t] = lanes_[t]->committed();
  else
    for (std::size_t i = 0; i < nsu; ++i) su_prog[i] = sus_[i]->progress_count();
  Cycle vu_next = now_;
  std::uint64_t bar_seen = barrier_.mutation_count();
  std::uint64_t vu_seen = vu_ ? vu_->mutation_count() : 0;
  if (!lane_mode && vu_)
    for (std::size_t i = 0; i < nsu; ++i)
      su_vu_seen[i] = sus_[i]->vu_watch_count();

  while (!complete()) {
    // Per-run budget (now_ is monotonic across phases, so this bounds the
    // whole cell, not just one phase). kTimeout so campaigns can classify
    // and retry it separately from invariant failures.
    if (now_ >= config_.cycle_limit)
      VLT_FAIL(ErrorKind::kTimeout, timeout_diagnostic(phase));
    // Pause point (after the budget check, so a timeout surfaces exactly
    // as it would uninterrupted). The jump clamps below guarantee the
    // loop lands exactly on pause_at_, matching the per-cycle engine.
    // Flush the lazy bookkeeping spans — the same closeout the end of
    // the phase performs — so the serialized state is engine-invariant;
    // re-entry re-initializes the loop-local caches to "due at now_",
    // and the resulting extra no-op ticks are exactly the skipped ticks
    // the spans just replayed.
    if (now_ >= pause_at_) {
      if (!lane_mode) {
        if (vu_) vu_->account_to(now_);
        for (std::size_t i = 0; i < nsu; ++i)
          if (su_accounted[i] < now_)
            sus_[i]->skip_cycles(now_ - su_accounted[i]);
      }
      paused_ = true;
      return;
    }
    // The watchdog catches a stuck barrier long before the cycle budget
    // would; polled sparsely so audit mode stays cheap.
    if (auditor_ != nullptr && now_ - last_watchdog_ >= kWatchdogInterval) {
      last_watchdog_ = now_;
      auditor_->barrier_watchdog(barrier_, now_, phase.label);
    }
    ticks_.inc();
    if (lane_mode) {
      for (unsigned t = 0; t < nlanes; ++t) {
        if (unit_next[t] > now_) continue;
        lanecore::LaneCore& lc = *lanes_[t];
        const bool was_done = lc.done();
        lc.tick(now_);
        if (!was_done && lc.done()) --undone;
      }
    } else {
      bool vu_ticked = false;
      if (vu_ && vu_next <= now_) {
        vu_->tick(now_);
        vu_ticked = true;
      }
      // Single-due-core batching: when exactly one scalar unit is due and
      // the vector unit is parked, hand the whole stretch up to the next
      // foreign event to the core itself (ScalarCore::tick_to). The core
      // ticks and skips exactly as this loop would but without paying the
      // per-cycle foreign-unit checks, cache refreshes, and event
      // minimization; it returns control at the first tick that touches
      // shared state, after which the refresh stage below runs as usual.
      // Unpark VIQ-blocked units whose slice this cycle's vector-unit
      // tick vacated, then collect the units due this cycle.
      due_scratch_.clear();
      for (std::size_t i = 0; i < nsu; ++i) {
        if (unit_next[i] > now_) {
          std::uint32_t m = su_vec_blocked[i];
          if (!vu_ticked || m == 0) continue;
          bool freed = false;
          for (unsigned v = 0; m != 0; ++v, m >>= 1)
            if ((m & 1u) != 0 && !vu_->viq_full(v)) {
              freed = true;
              break;
            }
          if (!freed) continue;
          unit_next[i] = now_;  // VIQ slot vacated: hand off this cycle
        }
        due_scratch_.push_back(i);
      }
      const std::size_t due_n = due_scratch_.size();
      Cycle until = 0;
      if (!vu_ticked && undone > 0 && due_n == 1) {
        const std::size_t due_i = due_scratch_[0];
        until = vu_ ? vu_next : kNeverReady;
        for (std::size_t j = 0; j < nsu; ++j)
          if (j != due_i) until = std::min(until, unit_next[j]);
        until = std::min(until, barrier_.next_event(now_));
        // The batch observes the same watchdog and budget boundaries the
        // per-cycle path does (see the jump clamps below).
        if (auditor_ != nullptr)
          until = std::min(until, last_watchdog_ + kWatchdogInterval);
        until = std::min(until, config_.cycle_limit);
        until = std::min(until, pause_at_);
      }
      if (until > now_ + 1) {
        const std::size_t due_i = due_scratch_[0];
        su::ScalarCore& su = *sus_[due_i];
        if (su_accounted[due_i] < now_)
          su.skip_cycles(now_ - su_accounted[due_i]);
        const unsigned before = su.undone_contexts();
        const su::ScalarCore::BatchResult r = su.tick_to(now_, until);
        undone -= before - su.undone_contexts();
        ticks_.inc(r.ticks - 1);  // the loop header counted the first tick
        scans_.inc(r.scans);
        su_accounted[due_i] = r.stopped_at;
        now_ = r.stopped_at - 1;
        if (r.have_next) {
          // The batch ended on its own event scan, so its result is the
          // core's true next event — install it (with the VIQ-blocked
          // mask and a fresh progress snapshot) so the refresh stage
          // below does not re-tick the core at `until` just to rediscover
          // the same bound.
          unit_next[due_i] = r.next_ev;
          su_vec_blocked[due_i] = r.vec_blocked;
          su_prog[due_i] = su.progress_count();
        }
      } else if (par_ok && due_n >= 2) {
        // Partition-parallel cycle: the due units tick concurrently on
        // the host pool. Serial prologue: close the vector unit's
        // accounting span through now_ + 1 (exactly what the first
        // accepted dispatch would do — account_span is additive over
        // splits, so the eager close is byte-identical), stage dispatch
        // mutation counts per context, switch functional memory to
        // guarded mode, and arm the tick gates.
        if (!tick_pool_) {
          const unsigned n = std::min<unsigned>(config_.host_threads,
                                                static_cast<unsigned>(nsu));
          tick_pool_ = std::make_unique<SuTickPool>(n);
          tick_done_ = std::make_unique<std::atomic<std::uint8_t>[]>(nsu);
          gates_.resize(nsu);
          for (std::size_t i = 0; i < nsu; ++i) {
            gates_[i].done = tick_done_.get();
            gates_[i].self = i;
          }
        }
        vu_->account_to(now_ + 1);
        vu_->set_concurrent_dispatch(true);
        memory_.set_concurrent(true);
        for (std::size_t i = 0; i < nsu; ++i)
          tick_done_[i].store(1, std::memory_order_relaxed);
        for (std::size_t i : due_scratch_) {
          su::ScalarCore& su = *sus_[i];
          if (su_accounted[i] < now_) su.skip_cycles(now_ - su_accounted[i]);
          su_accounted[i] = now_ + 1;
          tick_done_[i].store(0, std::memory_order_relaxed);
          gates_[i].passed = false;
          su.set_tick_gate(&gates_[i]);
        }
        ParTickCtx ctx{this, now_};
        // Restore serial mode even when a task's invariant failure is
        // rethrown out of run().
        struct SectionGuard {
          Processor& p;
          ~SectionGuard() {
            p.memory_.set_concurrent(false);
            p.vu_->set_concurrent_dispatch(false);
            p.vu_->fold_staged_dispatches();
            for (std::size_t i : p.due_scratch_)
              p.sus_[i]->set_tick_gate(nullptr);
          }
        } section{*this};
        tick_pool_->run(&par_tick_task, &ctx, due_n);
        undone -= ctx.undone_delta.load(std::memory_order_relaxed);
      } else {
        for (std::size_t i : due_scratch_) {
          su::ScalarCore& su = *sus_[i];
          if (su_accounted[i] < now_) su.skip_cycles(now_ - su_accounted[i]);
          su_accounted[i] = now_ + 1;
          const unsigned before = su.undone_contexts();
          su.tick(now_);
          undone -= before - su.undone_contexts();
        }
      }
    }

    // Refresh stale caches. A cache is stale when its unit just ticked
    // (value <= now_) or when a structure it reads mutated: every unit
    // polls the barrier, and a scalar unit also reads vector-unit state —
    // but only the partitions its own contexts drive (scalar_done
    // completion cells the VU writes straight into its ROB, drain times
    // its membars wait on), all of which move only at issue. Issues into
    // other threads' partitions leave its cache valid, which is what lets
    // the VLT configurations skip scalar-unit work at all: under a shared
    // busy vector unit a whole-unit mutation count would invalidate every
    // scalar unit every cycle.
    const std::uint64_t bar_now = barrier_.mutation_count();
    const bool bar_changed = bar_now != bar_seen;
    bar_seen = bar_now;
    Cycle ev = kNeverReady;
    if (lane_mode) {
      for (unsigned t = 0; t < nlanes; ++t) {
        const bool due = unit_next[t] <= now_;
        if (due || bar_changed) {
          // Dense-streak shortcut (see the scalar-unit refresh below):
          // a lane that just committed work is due again at now_ + 1
          // without paying the event scan. Ticks that change state
          // without committing (a barrier arrival, a starting stall)
          // simply fall through to the scan, which is always correct.
          bool streak = false;
          if (due) {
            const std::uint64_t p = lanes_[t]->committed();
            streak = p != lane_prog[t];
            lane_prog[t] = p;
          }
          if (streak) {
            unit_next[t] = now_ + 1;
          } else {
            unit_next[t] = lanes_[t]->next_event(now_);
            scans_.inc();
          }
        }
        ev = std::min(ev, unit_next[t]);
      }
    } else {
      bool vu_changed = false;
      if (vu_) {
        const std::uint64_t vu_now = vu_->mutation_count();
        vu_changed = vu_now != vu_seen;
        vu_seen = vu_now;
      }
      for (std::size_t i = 0; i < nsu; ++i) {
        const bool due = unit_next[i] <= now_;
        bool refresh = due || bar_changed;
        if (vu_changed) {
          const std::uint64_t w = sus_[i]->vu_watch_count();
          if (w != su_vu_seen[i]) {
            su_vu_seen[i] = w;
            refresh = true;
          }
        }
        if (refresh) {
          // Dense-streak shortcut: a tick that performed pipeline work
          // changed state at now_, so now_ + 1 is already a correct
          // lower bound — defer the full event scan until a tick comes
          // up empty. Units doing real work every cycle thus pay the
          // same per-cycle cost as the legacy loop plus one counter
          // compare.
          bool streak = false;
          if (due) {
            const std::uint64_t p = sus_[i]->progress_count();
            streak = p != su_prog[i];
            su_prog[i] = p;
          }
          if (streak) {
            unit_next[i] = now_ + 1;
          } else {
            std::uint32_t blocked = 0;
            unit_next[i] = sus_[i]->next_event(now_, &blocked);
            scans_.inc();
            su_vec_blocked[i] = blocked;
          }
        }
        ev = std::min(ev, unit_next[i]);
      }
      if (vu_) {
        // Same shortcut for the vector unit: any mutation this cycle
        // (rename, issue, accepted dispatch) makes now_ + 1 a valid
        // bound; only a mutation-free due tick pays the event scan.
        if (vu_changed) {
          vu_next = now_ + 1;
        } else if (vu_next <= now_) {
          vu_next = vu_->next_event(now_);
          scans_.inc();
        }
        ev = std::min(ev, vu_next);
        // Phase completion is itself an event: once every context has
        // halted the loop still has to land exactly on the vector unit's
        // drain point, where ctx_quiesced flips and the phase ends.
        if (undone == 0) {
          const Cycle d = vu_->drain_time();
          if (d != kNeverReady) ev = std::min(ev, std::max(now_ + 1, d));
        }
      }
    }
    if (undone == 0 && (lane_mode || !vu_)) ev = now_ + 1;
    // Safety net: scheduled barrier releases are already implied by the
    // cores polling them, but a redundant event is harmless (the extra
    // iteration ticks nothing) while a missed one would change reported
    // cycles. Skipped when the loop is not jumping anyway — a barrier
    // event can never beat the now_ + 1 floor.
    if (ev > now_ + 1) ev = std::min(ev, barrier_.next_event(now_));

    Cycle next = now_ + 1;
    if (ev > next) {
      // Never jump past a watchdog poll or the cycle budget: both must
      // observe the same boundaries the cycle-by-cycle loop does. A
      // fully stuck machine (ev == kNeverReady) rides these clamps
      // straight to the watchdog / timeout diagnostic.
      if (auditor_ != nullptr)
        ev = std::min(ev, last_watchdog_ + kWatchdogInterval);
      ev = std::min(ev, config_.cycle_limit);
      // Land exactly on an armed pause point: the pause check at the
      // loop top must see the same cycle the per-cycle engine pauses at.
      ev = std::min(ev, pause_at_);
      if (ev > next) next = ev;
    }
    now_ = next;
  }

  // Close out the bookkeeping spans of units that were not due on the
  // final cycles: every unit must account exactly [phase start, now_)
  // ticks, as the cycle-by-cycle engine does.
  if (!lane_mode) {
    if (vu_) vu_->account_to(now_);
    for (std::size_t i = 0; i < nsu; ++i)
      if (su_accounted[i] < now_) sus_[i]->skip_cycles(now_ - su_accounted[i]);
  }
}

std::string Processor::timeout_diagnostic(const Phase& phase) const {
  // Built with std::string appends: a fixed snprintf buffer used to
  // truncate long phase labels and many-context dumps mid-diagnostic.
  std::string msg = "run exceeded the " +
                    std::to_string(config_.cycle_limit) +
                    "-cycle budget in phase '" + phase.label +
                    "' (possible deadlock)";

  if (phase.mode == PhaseMode::kLaneThreads) {
    for (unsigned t = 0; t < phase.nthreads() && t < lanes_.size(); ++t) {
      const lanecore::LaneCore& lc = *lanes_[t];
      msg += "; lane" + std::to_string(t) + ": ";
      msg += lc.done() ? "done" : (lc.active() ? "running" : "idle");
      msg += " pc=" + std::to_string(lc.arch_state().pc());
    }
  } else {
    for (unsigned s = 0; s < sus_.size(); ++s) {
      const su::ScalarCore& su = *sus_[s];
      for (unsigned c = 0; c < su.num_contexts(); ++c) {
        if (!su.context_active(c)) continue;
        msg += "; su" + std::to_string(s) + ".ctx" + std::to_string(c) +
               ": ";
        msg += su.context_done(c) ? "done" : "running";
        msg += " pc=" + std::to_string(su.arch_state(c).pc());
      }
    }
  }

  vltctl::BarrierController::PendingGen pending = barrier_.oldest_pending();
  if (pending.valid) {
    msg += "; barrier: generation " + std::to_string(pending.generation) +
           " stuck at " + std::to_string(pending.arrivals) + "/" +
           std::to_string(pending.expected) + " arrivals since cycle " +
           std::to_string(pending.first_arrival);
  } else {
    msg += "; barrier: no generation pending";
  }
  return msg;
}

// --- checkpointing (docs/CKPT.md) ---

void Processor::save_sections(ckpt::Writer& w) const {
  w.cycle_ref = [this](const Cycle* p) -> std::string {
    for (std::size_t i = 0; i < sus_.size(); ++i) {
      unsigned ctx = 0;
      std::uint64_t seq = 0;
      if (sus_[i]->locate_completion_cell(p, &ctx, &seq))
        return "su" + std::to_string(i) + ":" + std::to_string(ctx) + ":" +
               std::to_string(seq);
    }
    VLT_FAIL(ErrorKind::kInvariant,
             "a vector completion cell points into no scalar unit's ROB");
  };
  w.begin_section("proc");
  w.u64("now", now_);
  w.u64("lane_committed", lane_committed_);
  w.end_section();
  w.begin_section("mem");
  memory_.save_state(w);
  w.end_section();
  w.begin_section("mainmem");
  main_memory_.save_state(w);
  w.end_section();
  w.begin_section("l2");
  l2_.save_state(w);
  w.end_section();
  w.begin_section("barrier");
  barrier_.save_state(w);
  w.end_section();
  for (std::size_t i = 0; i < sus_.size(); ++i) {
    w.begin_section("su" + std::to_string(i));
    sus_[i]->save_state(w);
    w.end_section();
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    w.begin_section("lane" + std::to_string(i));
    lanes_[i]->save_state(w);
    w.end_section();
  }
  if (vu_) {
    w.begin_section("vu");
    vu_->save_state(w);
    w.end_section();
  }
  w.begin_section("stats");
  w.set("snapshot", registry_.snapshot().to_json());
  w.end_section();
}

void Processor::restore_sections(
    ckpt::Reader& r, std::function<const isa::Program*(ThreadId)> program_ref) {
  r.program_ref = std::move(program_ref);
  r.cycle_ref = [this](const std::string& s) -> Cycle* {
    unsigned su = 0;
    unsigned ctx = 0;
    unsigned long long seq = 0;
    if (std::sscanf(s.c_str(), "su%u:%u:%llu", &su, &ctx, &seq) != 3 ||
        su >= sus_.size())
      VLT_FAIL(ErrorKind::kIo,
               "checkpoint completion-cell reference '" + s +
                   "' is malformed or out of range");
    return sus_[su]->completion_cell(ctx, seq);
  };
  r.enter_section("proc");
  now_ = r.u64("now");
  lane_committed_ = r.u64("lane_committed");
  r.exit_section();
  last_watchdog_ = now_;
  r.enter_section("mem");
  memory_.restore_state(r);
  r.exit_section();
  r.enter_section("mainmem");
  main_memory_.restore_state(r);
  r.exit_section();
  r.enter_section("l2");
  l2_.restore_state(r);
  r.exit_section();
  r.enter_section("barrier");
  barrier_.restore_state(r);
  r.exit_section();
  // Scalar units before the vector unit: the (su, ctx, seq) references
  // in the VIQ/window resolve against restored ROBs.
  for (std::size_t i = 0; i < sus_.size(); ++i) {
    r.enter_section("su" + std::to_string(i));
    sus_[i]->restore_state(r);
    r.exit_section();
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    r.enter_section("lane" + std::to_string(i));
    lanes_[i]->restore_state(r);
    r.exit_section();
  }
  if (vu_) {
    r.enter_section("vu");
    vu_->restore_state(r);
    r.exit_section();
  }
  // Stats last: every instrument the units' restores recomputed (cache
  // valid-line gauges) is overwritten with the recorded snapshot, which
  // must agree — Registry::restore cross-checks counters monotonically.
  r.enter_section("stats");
  registry_.restore(stats::Snapshot::from_json(r.get("snapshot")));
  r.exit_section();
}

std::uint64_t Processor::committed_scalar() const {
  std::uint64_t n = lane_committed_;
  for (const auto& su : sus_) n += su->committed_scalar();
  return n;
}

std::uint64_t Processor::committed_vector() const {
  std::uint64_t n = 0;
  for (const auto& su : sus_) n += su->committed_vector();
  return n;
}

}  // namespace vlt::machine
