#include "func/memory.hpp"

#include <algorithm>
#include <sstream>

namespace vlt::func {

FuncMemory::Page& FuncMemory::page_for(Addr addr) {
  Addr key = addr / kPageBytes;
  auto& slot = pages_[key];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

const FuncMemory::Page* FuncMemory::find_page(Addr addr) const {
  auto it = pages_.find(addr / kPageBytes);
  return it == pages_.end() ? nullptr : it->second.get();
}

std::uint64_t FuncMemory::read64(Addr addr) const {
  VLT_CHECK((addr & 7) == 0, "unaligned 64-bit read");
  const Page* p = find_page(addr);
  return p ? (*p)[(addr % kPageBytes) / 8] : 0;
}

void FuncMemory::write64(Addr addr, std::uint64_t value) {
  VLT_CHECK((addr & 7) == 0, "unaligned 64-bit write");
  page_for(addr)[(addr % kPageBytes) / 8] = value;
}

void FuncMemory::write_block_f64(Addr addr, std::span<const double> values) {
  for (std::size_t i = 0; i < values.size(); ++i)
    write_f64(addr + 8 * i, values[i]);
}

void FuncMemory::write_block_i64(Addr addr,
                                 std::span<const std::int64_t> values) {
  for (std::size_t i = 0; i < values.size(); ++i)
    write_i64(addr + 8 * i, values[i]);
}

std::vector<double> FuncMemory::read_block_f64(Addr addr,
                                               std::size_t count) const {
  std::vector<double> out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = read_f64(addr + 8 * i);
  return out;
}

std::vector<std::int64_t> FuncMemory::read_block_i64(Addr addr,
                                                     std::size_t count) const {
  std::vector<std::int64_t> out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = read_i64(addr + 8 * i);
  return out;
}

void FuncMemory::copy_from(const FuncMemory& other) {
  pages_.clear();
  for (const auto& [key, page] : other.pages_)
    pages_[key] = std::make_unique<Page>(*page);
}

std::optional<std::string> FuncMemory::first_difference(
    const FuncMemory& other) const {
  // Walk the sorted union of page keys so the reported address is the
  // lowest differing one and the result is deterministic.
  std::vector<Addr> keys;
  keys.reserve(pages_.size() + other.pages_.size());
  for (const auto& [key, page] : pages_) keys.push_back(key);
  for (const auto& [key, page] : other.pages_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  static const Page kZeroPage{};
  for (Addr key : keys) {
    auto a_it = pages_.find(key);
    auto b_it = other.pages_.find(key);
    const Page& a = a_it == pages_.end() ? kZeroPage : *a_it->second;
    const Page& b = b_it == other.pages_.end() ? kZeroPage : *b_it->second;
    for (std::size_t w = 0; w < a.size(); ++w) {
      if (a[w] != b[w]) {
        std::ostringstream os;
        os << "word at 0x" << std::hex << (key * kPageBytes + w * 8)
           << ": 0x" << a[w] << " vs 0x" << b[w];
        return os.str();
      }
    }
  }
  return std::nullopt;
}

std::uint64_t FuncMemory::content_hash() const {
  std::vector<Addr> keys;
  keys.reserve(pages_.size());
  for (const auto& [key, page] : pages_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (Addr key : keys) {
    const Page& page = *pages_.at(key);
    bool all_zero = true;
    for (std::uint64_t w : page)
      if (w != 0) {
        all_zero = false;
        break;
      }
    if (all_zero) continue;  // hash like an untouched page
    mix(key);
    for (std::uint64_t w : page) mix(w);
  }
  return h;
}

}  // namespace vlt::func
