#include "func/memory.hpp"

#include <algorithm>
#include <sstream>

namespace vlt::func {

FuncMemory::Page& FuncMemory::page_for(Addr addr) {
  Addr key = addr / kPageBytes;
  auto& slot = pages_[key];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

const FuncMemory::Page* FuncMemory::find_page(Addr addr) const {
  auto it = pages_.find(addr / kPageBytes);
  return it == pages_.end() ? nullptr : it->second.get();
}

const FuncMemory::Page* FuncMemory::find_page_sync(Addr addr) const {
  if (!concurrent_) return find_page(addr);
  // Pages are stable once created (the map owns them through unique_ptr),
  // so the pointer stays valid after the lock drops; the lock only
  // protects the map structure against concurrent page creation.
  std::shared_lock lk(mu_);
  return find_page(addr);
}

FuncMemory::Page& FuncMemory::page_for_sync(Addr addr) {
  if (!concurrent_) return page_for(addr);
  {
    std::shared_lock lk(mu_);
    auto it = pages_.find(addr / kPageBytes);
    if (it != pages_.end()) return *it->second;
  }
  std::unique_lock lk(mu_);
  return page_for(addr);
}

std::uint64_t FuncMemory::read64(Addr addr) const {
  VLT_CHECK((addr & 7) == 0, "unaligned 64-bit read");
  const Page* p = find_page_sync(addr);
  return p ? (*p)[(addr % kPageBytes) / 8] : 0;
}

void FuncMemory::write64(Addr addr, std::uint64_t value) {
  VLT_CHECK((addr & 7) == 0, "unaligned 64-bit write");
  page_for_sync(addr)[(addr % kPageBytes) / 8] = value;
}

void FuncMemory::read_row(Addr addr, std::uint64_t* out,
                          std::size_t count) const {
  VLT_CHECK((addr & 7) == 0, "unaligned 64-bit read");
  while (count > 0) {
    const std::size_t word = (addr % kPageBytes) / 8;
    const std::size_t n = std::min(count, kPageBytes / 8 - word);
    const Page* p = find_page_sync(addr);
    if (p != nullptr)
      std::memcpy(out, p->data() + word, n * 8);
    else
      std::memset(out, 0, n * 8);  // absent pages read as zero
    addr += n * 8;
    out += n;
    count -= n;
  }
}

void FuncMemory::write_row(Addr addr, const std::uint64_t* values,
                           std::size_t count) {
  VLT_CHECK((addr & 7) == 0, "unaligned 64-bit write");
  while (count > 0) {
    const std::size_t word = (addr % kPageBytes) / 8;
    const std::size_t n = std::min(count, kPageBytes / 8 - word);
    std::memcpy(page_for_sync(addr).data() + word, values, n * 8);
    addr += n * 8;
    values += n;
    count -= n;
  }
}

void FuncMemory::write_block_f64(Addr addr, std::span<const double> values) {
  for (std::size_t i = 0; i < values.size(); ++i)
    write_f64(addr + 8 * i, values[i]);
}

void FuncMemory::write_block_i64(Addr addr,
                                 std::span<const std::int64_t> values) {
  for (std::size_t i = 0; i < values.size(); ++i)
    write_i64(addr + 8 * i, values[i]);
}

std::vector<double> FuncMemory::read_block_f64(Addr addr,
                                               std::size_t count) const {
  std::vector<double> out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = read_f64(addr + 8 * i);
  return out;
}

std::vector<std::int64_t> FuncMemory::read_block_i64(Addr addr,
                                                     std::size_t count) const {
  std::vector<std::int64_t> out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = read_i64(addr + 8 * i);
  return out;
}

void FuncMemory::copy_from(const FuncMemory& other) {
  pages_.clear();
  for (const auto& [key, page] : other.pages_)
    pages_[key] = std::make_unique<Page>(*page);
}

std::optional<std::string> FuncMemory::first_difference(
    const FuncMemory& other) const {
  // Walk the sorted union of page keys so the reported address is the
  // lowest differing one and the result is deterministic.
  std::vector<Addr> keys;
  keys.reserve(pages_.size() + other.pages_.size());
  for (const auto& [key, page] : pages_) keys.push_back(key);
  for (const auto& [key, page] : other.pages_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  static const Page kZeroPage{};
  for (Addr key : keys) {
    auto a_it = pages_.find(key);
    auto b_it = other.pages_.find(key);
    const Page& a = a_it == pages_.end() ? kZeroPage : *a_it->second;
    const Page& b = b_it == other.pages_.end() ? kZeroPage : *b_it->second;
    for (std::size_t w = 0; w < a.size(); ++w) {
      if (a[w] != b[w]) {
        std::ostringstream os;
        os << "word at 0x" << std::hex << (key * kPageBytes + w * 8)
           << ": 0x" << a[w] << " vs 0x" << b[w];
        return os.str();
      }
    }
  }
  return std::nullopt;
}

void FuncMemory::save_state(ckpt::Writer& w) const {
  std::vector<Addr> keys;
  keys.reserve(pages_.size());
  for (const auto& [key, page] : pages_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  Json pages = Json::array();
  for (Addr key : keys) pages.push_back(Json(key));
  w.set("page_keys", std::move(pages));
  w.push("pages");
  for (Addr key : keys) {
    const Page& page = *pages_.at(key);
    w.blob64(std::to_string(key), page.data(), page.size());
  }
  w.pop();
}

void FuncMemory::restore_state(ckpt::Reader& r) {
  pages_.clear();
  const Json& keys = r.get("page_keys");
  r.push("pages");
  for (const Json& k : keys.items()) {
    Addr key = k.as_uint();
    auto page = std::make_unique<Page>();
    r.blob64(std::to_string(key), page->data(), page->size());
    pages_[key] = std::move(page);
  }
  r.pop();
}

std::uint64_t FuncMemory::content_hash() const {
  std::vector<Addr> keys;
  keys.reserve(pages_.size());
  for (const auto& [key, page] : pages_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  for (Addr key : keys) {
    const Page& page = *pages_.at(key);
    bool all_zero = true;
    for (std::uint64_t w : page)
      if (w != 0) {
        all_zero = false;
        break;
      }
    if (all_zero) continue;  // hash like an untouched page
    mix(key);
    for (std::uint64_t w : page) mix(w);
  }
  return h;
}

}  // namespace vlt::func
