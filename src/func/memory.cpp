#include "func/memory.hpp"

namespace vlt::func {

FuncMemory::Page& FuncMemory::page_for(Addr addr) {
  Addr key = addr / kPageBytes;
  auto& slot = pages_[key];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  return *slot;
}

const FuncMemory::Page* FuncMemory::find_page(Addr addr) const {
  auto it = pages_.find(addr / kPageBytes);
  return it == pages_.end() ? nullptr : it->second.get();
}

std::uint64_t FuncMemory::read64(Addr addr) const {
  VLT_CHECK((addr & 7) == 0, "unaligned 64-bit read");
  const Page* p = find_page(addr);
  return p ? (*p)[(addr % kPageBytes) / 8] : 0;
}

void FuncMemory::write64(Addr addr, std::uint64_t value) {
  VLT_CHECK((addr & 7) == 0, "unaligned 64-bit write");
  page_for(addr)[(addr % kPageBytes) / 8] = value;
}

void FuncMemory::write_block_f64(Addr addr, std::span<const double> values) {
  for (std::size_t i = 0; i < values.size(); ++i)
    write_f64(addr + 8 * i, values[i]);
}

void FuncMemory::write_block_i64(Addr addr,
                                 std::span<const std::int64_t> values) {
  for (std::size_t i = 0; i < values.size(); ++i)
    write_i64(addr + 8 * i, values[i]);
}

std::vector<double> FuncMemory::read_block_f64(Addr addr,
                                               std::size_t count) const {
  std::vector<double> out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = read_f64(addr + 8 * i);
  return out;
}

std::vector<std::int64_t> FuncMemory::read_block_i64(Addr addr,
                                                     std::size_t count) const {
  std::vector<std::int64_t> out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = read_i64(addr + 8 * i);
  return out;
}

}  // namespace vlt::func
