// Architectural register state of one hardware context.
#pragma once

#include <array>
#include <bitset>
#include <cstring>

#include "ckpt/checkpoint.hpp"
#include "common/types.hpp"
#include "isa/rvv/rvv.hpp"

namespace vlt::func {

class ArchState : public ckpt::Checkpointable {
 public:
  ArchState() { reset(); }

  void reset();

  // --- scalar registers ---
  std::uint64_t sreg(RegIdx r) const { return sregs_[r]; }
  void set_sreg(RegIdx r, std::uint64_t v) { sregs_[r] = v; }

  std::int64_t sreg_i(RegIdx r) const {
    return static_cast<std::int64_t>(sregs_[r]);
  }
  void set_sreg_i(RegIdx r, std::int64_t v) {
    sregs_[r] = static_cast<std::uint64_t>(v);
  }

  double sreg_f(RegIdx r) const {
    double v;
    std::memcpy(&v, &sregs_[r], sizeof(v));
    return v;
  }
  void set_sreg_f(RegIdx r, double v) {
    std::memcpy(&sregs_[r], &v, sizeof(v));
  }

  // --- vector registers ---
  std::uint64_t velem(RegIdx r, unsigned i) const { return vregs_[r][i]; }
  void set_velem(RegIdx r, unsigned i, std::uint64_t v) { vregs_[r][i] = v; }

  std::int64_t velem_i(RegIdx r, unsigned i) const {
    return static_cast<std::int64_t>(vregs_[r][i]);
  }
  void set_velem_i(RegIdx r, unsigned i, std::int64_t v) {
    vregs_[r][i] = static_cast<std::uint64_t>(v);
  }

  double velem_f(RegIdx r, unsigned i) const {
    double v;
    std::memcpy(&v, &vregs_[r][i], sizeof(v));
    return v;
  }
  void set_velem_f(RegIdx r, unsigned i, double v) {
    std::memcpy(&vregs_[r][i], &v, sizeof(v));
  }

  /// Contiguous element row of one vector register. The functional
  /// executor's element loops run over these raw rows (structure-of-arrays
  /// layout) so the host compiler can autovectorize them.
  std::uint64_t* vreg_row(RegIdx r) { return vregs_[r].data(); }
  const std::uint64_t* vreg_row(RegIdx r) const { return vregs_[r].data(); }

  // --- vector length and mask ---
  unsigned vl() const { return vl_; }
  void set_vl(unsigned vl) { vl_ = vl; }

  // vtype CSR (RVV frontend only; the VLT ISA never reads or writes it).
  std::uint32_t vtype() const { return vtype_; }
  void set_vtype(std::uint32_t vtype) { vtype_ = vtype; }

  bool mask(unsigned i) const { return mask_[i]; }
  void set_mask(unsigned i, bool v) { mask_[i] = v; }
  const std::bitset<kMaxVectorLength>& mask_bits() const { return mask_; }

  // --- program counter (instruction-slot index) ---
  std::uint64_t pc() const { return pc_; }
  void set_pc(std::uint64_t pc) { pc_ = pc; }

  // --- checkpointing (docs/CKPT.md) ---
  void save_state(ckpt::Writer& w) const override;
  void restore_state(ckpt::Reader& r) override;

 private:
  std::array<std::uint64_t, kNumScalarRegs> sregs_;
  std::array<std::array<std::uint64_t, kMaxVectorLength>, kNumVectorRegs>
      vregs_;
  std::bitset<kMaxVectorLength> mask_;
  unsigned vl_ = 0;
  std::uint32_t vtype_ = isa::rvv::kVtypeE64M1;
  std::uint64_t pc_ = 0;
};

}  // namespace vlt::func
