#include "func/executor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hpp"

namespace vlt::func {

using isa::Instruction;
using isa::Opcode;

namespace {

double as_f64(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

ExecResult Executor::execute(const Instruction& inst, ArchState& st,
                             const ExecContext& ctx,
                             std::vector<Addr>& addr_out) {
  addr_out.clear();
  ExecResult res;
  res.next_pc = st.pc() + 1;

  auto s_i = [&](RegIdx r) { return st.sreg_i(r); };
  auto s_u = [&](RegIdx r) { return st.sreg(r); };
  auto s_f = [&](RegIdx r) { return st.sreg_f(r); };

  // Second vector-arithmetic operand: vector element or scalar (.vs form).
  auto src2_u = [&](const Instruction& in, unsigned i) -> std::uint64_t {
    return in.src2_scalar() ? st.sreg(in.rs2) : st.velem(in.rs2, i);
  };
  auto src2_i = [&](const Instruction& in, unsigned i) -> std::int64_t {
    return static_cast<std::int64_t>(src2_u(in, i));
  };
  auto src2_f = [&](const Instruction& in, unsigned i) -> double {
    return as_f64(src2_u(in, i));
  };

  // Element-wise vector op with mask support.
  const unsigned vl = st.vl();
  VLT_CHECK(!isa::is_vector(inst.op) || vl <= ctx.max_vl,
            "vector instruction with VL above the partition's max VL");
  auto for_each_elem = [&](auto&& body) {
    for (unsigned i = 0; i < vl; ++i) {
      if (inst.masked() && !st.mask(i)) continue;
      body(i);
    }
    res.elems = vl;
  };

  switch (inst.op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      res.halted = true;
      break;
    case Opcode::kLi:
      st.set_sreg_i(inst.rd, static_cast<std::int64_t>(inst.imm));
      break;
    case Opcode::kLiHi:
      st.set_sreg(inst.rd, st.sreg(inst.rd) |
                               (static_cast<std::uint64_t>(
                                    static_cast<std::uint32_t>(inst.imm))
                                << 32));
      break;
    case Opcode::kMov:
      st.set_sreg(inst.rd, s_u(inst.rs1));
      break;
    case Opcode::kAdd:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) + s_i(inst.rs2));
      break;
    case Opcode::kAddi:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) + inst.imm);
      break;
    case Opcode::kSub:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) - s_i(inst.rs2));
      break;
    case Opcode::kMul:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) * s_i(inst.rs2));
      break;
    case Opcode::kDiv:
      st.set_sreg_i(inst.rd,
                    s_i(inst.rs2) == 0 ? 0 : s_i(inst.rs1) / s_i(inst.rs2));
      break;
    case Opcode::kRem:
      st.set_sreg_i(inst.rd,
                    s_i(inst.rs2) == 0 ? 0 : s_i(inst.rs1) % s_i(inst.rs2));
      break;
    case Opcode::kAnd:
      st.set_sreg(inst.rd, s_u(inst.rs1) & s_u(inst.rs2));
      break;
    case Opcode::kAndi:
      st.set_sreg(inst.rd, s_u(inst.rs1) &
                               static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(inst.imm)));
      break;
    case Opcode::kOr:
      st.set_sreg(inst.rd, s_u(inst.rs1) | s_u(inst.rs2));
      break;
    case Opcode::kOri:
      st.set_sreg(inst.rd, s_u(inst.rs1) |
                               static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(inst.imm)));
      break;
    case Opcode::kXor:
      st.set_sreg(inst.rd, s_u(inst.rs1) ^ s_u(inst.rs2));
      break;
    case Opcode::kXori:
      st.set_sreg(inst.rd, s_u(inst.rs1) ^
                               static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(inst.imm)));
      break;
    case Opcode::kSll:
      st.set_sreg(inst.rd, s_u(inst.rs1) << (s_u(inst.rs2) & 63));
      break;
    case Opcode::kSlli:
      st.set_sreg(inst.rd, s_u(inst.rs1) << (inst.imm & 63));
      break;
    case Opcode::kSrl:
      st.set_sreg(inst.rd, s_u(inst.rs1) >> (s_u(inst.rs2) & 63));
      break;
    case Opcode::kSrli:
      st.set_sreg(inst.rd, s_u(inst.rs1) >> (inst.imm & 63));
      break;
    case Opcode::kSra:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) >> (s_u(inst.rs2) & 63));
      break;
    case Opcode::kSlt:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) < s_i(inst.rs2) ? 1 : 0);
      break;
    case Opcode::kSlti:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) < inst.imm ? 1 : 0);
      break;
    case Opcode::kSeq:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) == s_i(inst.rs2) ? 1 : 0);
      break;

    case Opcode::kFadd:
      st.set_sreg_f(inst.rd, s_f(inst.rs1) + s_f(inst.rs2));
      break;
    case Opcode::kFsub:
      st.set_sreg_f(inst.rd, s_f(inst.rs1) - s_f(inst.rs2));
      break;
    case Opcode::kFmul:
      st.set_sreg_f(inst.rd, s_f(inst.rs1) * s_f(inst.rs2));
      break;
    case Opcode::kFdiv:
      st.set_sreg_f(inst.rd, s_f(inst.rs1) / s_f(inst.rs2));
      break;
    case Opcode::kFsqrt:
      st.set_sreg_f(inst.rd, std::sqrt(s_f(inst.rs1)));
      break;
    case Opcode::kFabs:
      st.set_sreg_f(inst.rd, std::fabs(s_f(inst.rs1)));
      break;
    case Opcode::kFneg:
      st.set_sreg_f(inst.rd, -s_f(inst.rs1));
      break;
    case Opcode::kFmin:
      st.set_sreg_f(inst.rd, std::min(s_f(inst.rs1), s_f(inst.rs2)));
      break;
    case Opcode::kFmax:
      st.set_sreg_f(inst.rd, std::max(s_f(inst.rs1), s_f(inst.rs2)));
      break;
    case Opcode::kFcvtIF:
      st.set_sreg_f(inst.rd, static_cast<double>(s_i(inst.rs1)));
      break;
    case Opcode::kFcvtFI:
      st.set_sreg_i(inst.rd, static_cast<std::int64_t>(s_f(inst.rs1)));
      break;
    case Opcode::kFlt:
      st.set_sreg_i(inst.rd, s_f(inst.rs1) < s_f(inst.rs2) ? 1 : 0);
      break;
    case Opcode::kFle:
      st.set_sreg_i(inst.rd, s_f(inst.rs1) <= s_f(inst.rs2) ? 1 : 0);
      break;

    case Opcode::kLoad: {
      Addr a = static_cast<Addr>(s_i(inst.rs1) + inst.imm);
      addr_out.push_back(a);
      st.set_sreg(inst.rd, mem_->read64(a));
      break;
    }
    case Opcode::kStore: {
      Addr a = static_cast<Addr>(s_i(inst.rs1) + inst.imm);
      addr_out.push_back(a);
      mem_->write64(a, s_u(inst.rs2));
      break;
    }

    case Opcode::kBeq:
      res.branch_taken = s_i(inst.rs1) == s_i(inst.rs2);
      break;
    case Opcode::kBne:
      res.branch_taken = s_i(inst.rs1) != s_i(inst.rs2);
      break;
    case Opcode::kBlt:
      res.branch_taken = s_i(inst.rs1) < s_i(inst.rs2);
      break;
    case Opcode::kBge:
      res.branch_taken = s_i(inst.rs1) >= s_i(inst.rs2);
      break;
    case Opcode::kJump:
      res.branch_taken = true;
      break;
    case Opcode::kJal:
      st.set_sreg(inst.rd, st.pc() + 1);
      res.branch_taken = true;
      break;
    case Opcode::kJr:
      res.branch_taken = true;
      res.next_pc = s_u(inst.rs1);
      break;

    case Opcode::kTid:
      st.set_sreg(inst.rd, ctx.tid);
      break;
    case Opcode::kNthreads:
      st.set_sreg(inst.rd, ctx.nthreads);
      break;
    case Opcode::kBarrier:
      res.is_barrier = true;
      break;
    case Opcode::kMembar:
      break;  // ordering is a timing property; no functional effect
    case Opcode::kSetvl:
    case Opcode::kSetvlMax:
    case Opcode::kVsetvli: {
      // Set-VL semantics belong to the ISA frontend: the VLT clamp rules
      // and the RVV vsetvli/vtype rules differ, and a program must only
      // use its own frontend's set-VL family.
      const isa::IsaFrontend& fe = isa::frontend(ctx.isa);
      VLT_CHECK(fe.has_opcode(inst.op),
                "set-VL opcode is not part of the program's ISA frontend");
      fe.execute_setvl(inst, st, ctx);
      break;
    }

    // --- vector integer ---
    case Opcode::kVadd:
      for_each_elem([&](unsigned i) {
        st.set_velem_i(inst.rd, i, st.velem_i(inst.rs1, i) + src2_i(inst, i));
      });
      break;
    case Opcode::kVsub:
      for_each_elem([&](unsigned i) {
        st.set_velem_i(inst.rd, i, st.velem_i(inst.rs1, i) - src2_i(inst, i));
      });
      break;
    case Opcode::kVmul:
      for_each_elem([&](unsigned i) {
        st.set_velem_i(inst.rd, i, st.velem_i(inst.rs1, i) * src2_i(inst, i));
      });
      break;
    case Opcode::kVand:
      for_each_elem([&](unsigned i) {
        st.set_velem(inst.rd, i, st.velem(inst.rs1, i) & src2_u(inst, i));
      });
      break;
    case Opcode::kVor:
      for_each_elem([&](unsigned i) {
        st.set_velem(inst.rd, i, st.velem(inst.rs1, i) | src2_u(inst, i));
      });
      break;
    case Opcode::kVxor:
      for_each_elem([&](unsigned i) {
        st.set_velem(inst.rd, i, st.velem(inst.rs1, i) ^ src2_u(inst, i));
      });
      break;
    case Opcode::kVsll:
      for_each_elem([&](unsigned i) {
        st.set_velem(inst.rd, i, st.velem(inst.rs1, i)
                                     << (src2_u(inst, i) & 63));
      });
      break;
    case Opcode::kVsrl:
      for_each_elem([&](unsigned i) {
        st.set_velem(inst.rd, i, st.velem(inst.rs1, i) >> (src2_u(inst, i) & 63));
      });
      break;
    case Opcode::kVmin:
      for_each_elem([&](unsigned i) {
        st.set_velem_i(inst.rd, i,
                       std::min(st.velem_i(inst.rs1, i), src2_i(inst, i)));
      });
      break;
    case Opcode::kVmax:
      for_each_elem([&](unsigned i) {
        st.set_velem_i(inst.rd, i,
                       std::max(st.velem_i(inst.rs1, i), src2_i(inst, i)));
      });
      break;
    case Opcode::kVabsdiff:
      for_each_elem([&](unsigned i) {
        std::int64_t d = st.velem_i(inst.rs1, i) - src2_i(inst, i);
        st.set_velem_i(inst.rd, i, d < 0 ? -d : d);
      });
      break;

    // --- vector floating point ---
    case Opcode::kVfadd:
      for_each_elem([&](unsigned i) {
        st.set_velem_f(inst.rd, i, st.velem_f(inst.rs1, i) + src2_f(inst, i));
      });
      break;
    case Opcode::kVfsub:
      for_each_elem([&](unsigned i) {
        st.set_velem_f(inst.rd, i, st.velem_f(inst.rs1, i) - src2_f(inst, i));
      });
      break;
    case Opcode::kVfmul:
      for_each_elem([&](unsigned i) {
        st.set_velem_f(inst.rd, i, st.velem_f(inst.rs1, i) * src2_f(inst, i));
      });
      break;
    case Opcode::kVfdiv:
      for_each_elem([&](unsigned i) {
        st.set_velem_f(inst.rd, i, st.velem_f(inst.rs1, i) / src2_f(inst, i));
      });
      break;
    case Opcode::kVfma:
      for_each_elem([&](unsigned i) {
        st.set_velem_f(inst.rd, i,
                       st.velem_f(inst.rd, i) +
                           st.velem_f(inst.rs1, i) * src2_f(inst, i));
      });
      break;
    case Opcode::kVfsqrt:
      for_each_elem([&](unsigned i) {
        st.set_velem_f(inst.rd, i, std::sqrt(st.velem_f(inst.rs1, i)));
      });
      break;
    case Opcode::kVfmin:
      for_each_elem([&](unsigned i) {
        st.set_velem_f(inst.rd, i,
                       std::min(st.velem_f(inst.rs1, i), src2_f(inst, i)));
      });
      break;
    case Opcode::kVfmax:
      for_each_elem([&](unsigned i) {
        st.set_velem_f(inst.rd, i,
                       std::max(st.velem_f(inst.rs1, i), src2_f(inst, i)));
      });
      break;
    case Opcode::kVfabs:
      for_each_elem([&](unsigned i) {
        st.set_velem_f(inst.rd, i, std::fabs(st.velem_f(inst.rs1, i)));
      });
      break;
    case Opcode::kVfneg:
      for_each_elem([&](unsigned i) {
        st.set_velem_f(inst.rd, i, -st.velem_f(inst.rs1, i));
      });
      break;

    // --- compares and merge ---
    case Opcode::kVcmplt:
      for (unsigned i = 0; i < vl; ++i)
        st.set_mask(i, st.velem_i(inst.rs1, i) < src2_i(inst, i));
      res.elems = vl;
      break;
    case Opcode::kVcmpeq:
      for (unsigned i = 0; i < vl; ++i)
        st.set_mask(i, st.velem_i(inst.rs1, i) == src2_i(inst, i));
      res.elems = vl;
      break;
    case Opcode::kVfcmplt:
      for (unsigned i = 0; i < vl; ++i)
        st.set_mask(i, st.velem_f(inst.rs1, i) < src2_f(inst, i));
      res.elems = vl;
      break;
    case Opcode::kVmerge:
      for (unsigned i = 0; i < vl; ++i)
        st.set_velem(inst.rd, i,
                     st.mask(i) ? st.velem(inst.rs1, i) : src2_u(inst, i));
      res.elems = vl;
      break;

    // --- misc ---
    case Opcode::kVmov:
      for_each_elem([&](unsigned i) {
        st.set_velem(inst.rd, i, st.velem(inst.rs1, i));
      });
      break;
    case Opcode::kVbcast:
      for_each_elem([&](unsigned i) { st.set_velem(inst.rd, i, s_u(inst.rs1)); });
      break;
    case Opcode::kViota:
      for_each_elem([&](unsigned i) { st.set_velem(inst.rd, i, i); });
      break;

    // --- reductions ---
    case Opcode::kVredsum: {
      std::int64_t acc = 0;
      for (unsigned i = 0; i < vl; ++i) acc += st.velem_i(inst.rs1, i);
      st.set_sreg_i(inst.rd, acc);
      res.elems = vl;
      break;
    }
    case Opcode::kVfredsum: {
      double acc = 0.0;
      for (unsigned i = 0; i < vl; ++i) acc += st.velem_f(inst.rs1, i);
      st.set_sreg_f(inst.rd, acc);
      res.elems = vl;
      break;
    }
    case Opcode::kVredmin: {
      std::int64_t acc = std::numeric_limits<std::int64_t>::max();
      for (unsigned i = 0; i < vl; ++i)
        acc = std::min(acc, st.velem_i(inst.rs1, i));
      st.set_sreg_i(inst.rd, acc);
      res.elems = vl;
      break;
    }
    case Opcode::kVredmax: {
      std::int64_t acc = std::numeric_limits<std::int64_t>::min();
      for (unsigned i = 0; i < vl; ++i)
        acc = std::max(acc, st.velem_i(inst.rs1, i));
      st.set_sreg_i(inst.rd, acc);
      res.elems = vl;
      break;
    }

    // --- vector memory ---
    // kVle/kVse are the RVV unit-stride forms; same addressing as
    // kVload/kVstore, but each spelling is only legal under its own
    // frontend (checked below).
    case Opcode::kVle:
    case Opcode::kVload:
      VLT_CHECK(isa::frontend(ctx.isa).has_opcode(inst.op),
                "vector load opcode is not part of the program's ISA frontend");
      for (unsigned i = 0; i < vl; ++i) {
        if (inst.masked() && !st.mask(i)) continue;
        Addr a = static_cast<Addr>(s_i(inst.rs1) + inst.imm) + 8 * i;
        addr_out.push_back(a);
        st.set_velem(inst.rd, i, mem_->read64(a));
      }
      res.elems = vl;
      break;
    case Opcode::kVse:
    case Opcode::kVstore:
      VLT_CHECK(isa::frontend(ctx.isa).has_opcode(inst.op),
                "vector store opcode is not part of the program's ISA frontend");
      for (unsigned i = 0; i < vl; ++i) {
        if (inst.masked() && !st.mask(i)) continue;
        Addr a = static_cast<Addr>(s_i(inst.rs1) + inst.imm) + 8 * i;
        addr_out.push_back(a);
        mem_->write64(a, st.velem(inst.rd, i));
      }
      res.elems = vl;
      break;
    case Opcode::kVloads:
      for (unsigned i = 0; i < vl; ++i) {
        Addr a = static_cast<Addr>(s_i(inst.rs1) + s_i(inst.rs2) * i);
        addr_out.push_back(a);
        st.set_velem(inst.rd, i, mem_->read64(a));
      }
      res.elems = vl;
      break;
    case Opcode::kVstores:
      for (unsigned i = 0; i < vl; ++i) {
        Addr a = static_cast<Addr>(s_i(inst.rs1) + s_i(inst.rs2) * i);
        addr_out.push_back(a);
        mem_->write64(a, st.velem(inst.rd, i));
      }
      res.elems = vl;
      break;
    case Opcode::kVgather:
      for (unsigned i = 0; i < vl; ++i) {
        Addr a = static_cast<Addr>(s_i(inst.rs1) + st.velem_i(inst.rs2, i));
        addr_out.push_back(a);
        st.set_velem(inst.rd, i, mem_->read64(a));
      }
      res.elems = vl;
      break;
    case Opcode::kVscatter:
      for (unsigned i = 0; i < vl; ++i) {
        Addr a = static_cast<Addr>(s_i(inst.rs1) + st.velem_i(inst.rs2, i));
        addr_out.push_back(a);
        mem_->write64(a, st.velem(inst.rd, i));
      }
      res.elems = vl;
      break;

    case Opcode::kNumOpcodes:
      VLT_CHECK(false, "invalid opcode");
  }

  if (res.branch_taken && inst.op != Opcode::kJr)
    res.next_pc = st.pc() + 1 + inst.imm;
  return res;
}

}  // namespace vlt::func
