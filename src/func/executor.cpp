#include "func/executor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hpp"

namespace vlt::func {

using isa::Instruction;
using isa::Opcode;

namespace {

double as_f64(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t bits_of(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

ExecResult Executor::execute(const Instruction& inst, ArchState& st,
                             const ExecContext& ctx,
                             std::vector<Addr>& addr_out) {
  addr_out.clear();
  ExecResult res;
  res.next_pc = st.pc() + 1;

  auto s_i = [&](RegIdx r) { return st.sreg_i(r); };
  auto s_u = [&](RegIdx r) { return st.sreg(r); };
  auto s_f = [&](RegIdx r) { return st.sreg_f(r); };

  // Element-wise vector op with mask support.
  const unsigned vl = st.vl();
  VLT_CHECK(!isa::is_vector(inst.op) || vl <= ctx.max_vl,
            "vector instruction with VL above the partition's max VL");

  // Element loops run over contiguous register rows (structure-of-arrays
  // fast paths, docs/PERF.md): the unmasked forms see raw row pointers
  // with the mask test and .vs scalar-operand dispatch hoisted out, so
  // the host compiler autovectorizes them. Masked elements keep their old
  // value, so the masked forms guard each store. `op` sees raw 64-bit
  // lanes; the integer and FP wrappers bitcast inside, preserving the
  // exact per-element operation the reference per-element path performed.
  auto vbinop = [&](auto&& op) {
    std::uint64_t* d = st.vreg_row(inst.rd);
    const std::uint64_t* a = st.vreg_row(inst.rs1);
    if (inst.src2_scalar()) {
      const std::uint64_t s = st.sreg(inst.rs2);
      if (!inst.masked()) {
        for (unsigned i = 0; i < vl; ++i) d[i] = op(a[i], s);
      } else {
        for (unsigned i = 0; i < vl; ++i)
          if (st.mask(i)) d[i] = op(a[i], s);
      }
    } else {
      const std::uint64_t* b = st.vreg_row(inst.rs2);
      if (!inst.masked()) {
        for (unsigned i = 0; i < vl; ++i) d[i] = op(a[i], b[i]);
      } else {
        for (unsigned i = 0; i < vl; ++i)
          if (st.mask(i)) d[i] = op(a[i], b[i]);
      }
    }
    res.elems = vl;
  };
  auto vibin = [&](auto&& f) {
    vbinop([&f](std::uint64_t x, std::uint64_t y) {
      return static_cast<std::uint64_t>(f(static_cast<std::int64_t>(x),
                                          static_cast<std::int64_t>(y)));
    });
  };
  auto vfbin = [&](auto&& f) {
    vbinop([&f](std::uint64_t x, std::uint64_t y) {
      return bits_of(f(as_f64(x), as_f64(y)));
    });
  };
  auto vunop = [&](auto&& op) {
    std::uint64_t* d = st.vreg_row(inst.rd);
    const std::uint64_t* a = st.vreg_row(inst.rs1);
    if (!inst.masked()) {
      for (unsigned i = 0; i < vl; ++i) d[i] = op(a[i]);
    } else {
      for (unsigned i = 0; i < vl; ++i)
        if (st.mask(i)) d[i] = op(a[i]);
    }
    res.elems = vl;
  };

  switch (inst.op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      res.halted = true;
      break;
    case Opcode::kLi:
      st.set_sreg_i(inst.rd, static_cast<std::int64_t>(inst.imm));
      break;
    case Opcode::kLiHi:
      st.set_sreg(inst.rd, st.sreg(inst.rd) |
                               (static_cast<std::uint64_t>(
                                    static_cast<std::uint32_t>(inst.imm))
                                << 32));
      break;
    case Opcode::kMov:
      st.set_sreg(inst.rd, s_u(inst.rs1));
      break;
    case Opcode::kAdd:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) + s_i(inst.rs2));
      break;
    case Opcode::kAddi:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) + inst.imm);
      break;
    case Opcode::kSub:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) - s_i(inst.rs2));
      break;
    case Opcode::kMul:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) * s_i(inst.rs2));
      break;
    case Opcode::kDiv:
      st.set_sreg_i(inst.rd,
                    s_i(inst.rs2) == 0 ? 0 : s_i(inst.rs1) / s_i(inst.rs2));
      break;
    case Opcode::kRem:
      st.set_sreg_i(inst.rd,
                    s_i(inst.rs2) == 0 ? 0 : s_i(inst.rs1) % s_i(inst.rs2));
      break;
    case Opcode::kAnd:
      st.set_sreg(inst.rd, s_u(inst.rs1) & s_u(inst.rs2));
      break;
    case Opcode::kAndi:
      st.set_sreg(inst.rd, s_u(inst.rs1) &
                               static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(inst.imm)));
      break;
    case Opcode::kOr:
      st.set_sreg(inst.rd, s_u(inst.rs1) | s_u(inst.rs2));
      break;
    case Opcode::kOri:
      st.set_sreg(inst.rd, s_u(inst.rs1) |
                               static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(inst.imm)));
      break;
    case Opcode::kXor:
      st.set_sreg(inst.rd, s_u(inst.rs1) ^ s_u(inst.rs2));
      break;
    case Opcode::kXori:
      st.set_sreg(inst.rd, s_u(inst.rs1) ^
                               static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(inst.imm)));
      break;
    case Opcode::kSll:
      st.set_sreg(inst.rd, s_u(inst.rs1) << (s_u(inst.rs2) & 63));
      break;
    case Opcode::kSlli:
      st.set_sreg(inst.rd, s_u(inst.rs1) << (inst.imm & 63));
      break;
    case Opcode::kSrl:
      st.set_sreg(inst.rd, s_u(inst.rs1) >> (s_u(inst.rs2) & 63));
      break;
    case Opcode::kSrli:
      st.set_sreg(inst.rd, s_u(inst.rs1) >> (inst.imm & 63));
      break;
    case Opcode::kSra:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) >> (s_u(inst.rs2) & 63));
      break;
    case Opcode::kSlt:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) < s_i(inst.rs2) ? 1 : 0);
      break;
    case Opcode::kSlti:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) < inst.imm ? 1 : 0);
      break;
    case Opcode::kSeq:
      st.set_sreg_i(inst.rd, s_i(inst.rs1) == s_i(inst.rs2) ? 1 : 0);
      break;

    case Opcode::kFadd:
      st.set_sreg_f(inst.rd, s_f(inst.rs1) + s_f(inst.rs2));
      break;
    case Opcode::kFsub:
      st.set_sreg_f(inst.rd, s_f(inst.rs1) - s_f(inst.rs2));
      break;
    case Opcode::kFmul:
      st.set_sreg_f(inst.rd, s_f(inst.rs1) * s_f(inst.rs2));
      break;
    case Opcode::kFdiv:
      st.set_sreg_f(inst.rd, s_f(inst.rs1) / s_f(inst.rs2));
      break;
    case Opcode::kFsqrt:
      st.set_sreg_f(inst.rd, std::sqrt(s_f(inst.rs1)));
      break;
    case Opcode::kFabs:
      st.set_sreg_f(inst.rd, std::fabs(s_f(inst.rs1)));
      break;
    case Opcode::kFneg:
      st.set_sreg_f(inst.rd, -s_f(inst.rs1));
      break;
    case Opcode::kFmin:
      st.set_sreg_f(inst.rd, std::min(s_f(inst.rs1), s_f(inst.rs2)));
      break;
    case Opcode::kFmax:
      st.set_sreg_f(inst.rd, std::max(s_f(inst.rs1), s_f(inst.rs2)));
      break;
    case Opcode::kFcvtIF:
      st.set_sreg_f(inst.rd, static_cast<double>(s_i(inst.rs1)));
      break;
    case Opcode::kFcvtFI:
      st.set_sreg_i(inst.rd, static_cast<std::int64_t>(s_f(inst.rs1)));
      break;
    case Opcode::kFlt:
      st.set_sreg_i(inst.rd, s_f(inst.rs1) < s_f(inst.rs2) ? 1 : 0);
      break;
    case Opcode::kFle:
      st.set_sreg_i(inst.rd, s_f(inst.rs1) <= s_f(inst.rs2) ? 1 : 0);
      break;

    case Opcode::kLoad: {
      Addr a = static_cast<Addr>(s_i(inst.rs1) + inst.imm);
      addr_out.push_back(a);
      st.set_sreg(inst.rd, mem_->read64(a));
      break;
    }
    case Opcode::kStore: {
      Addr a = static_cast<Addr>(s_i(inst.rs1) + inst.imm);
      addr_out.push_back(a);
      mem_->write64(a, s_u(inst.rs2));
      break;
    }

    case Opcode::kBeq:
      res.branch_taken = s_i(inst.rs1) == s_i(inst.rs2);
      break;
    case Opcode::kBne:
      res.branch_taken = s_i(inst.rs1) != s_i(inst.rs2);
      break;
    case Opcode::kBlt:
      res.branch_taken = s_i(inst.rs1) < s_i(inst.rs2);
      break;
    case Opcode::kBge:
      res.branch_taken = s_i(inst.rs1) >= s_i(inst.rs2);
      break;
    case Opcode::kJump:
      res.branch_taken = true;
      break;
    case Opcode::kJal:
      st.set_sreg(inst.rd, st.pc() + 1);
      res.branch_taken = true;
      break;
    case Opcode::kJr:
      res.branch_taken = true;
      res.next_pc = s_u(inst.rs1);
      break;

    case Opcode::kTid:
      st.set_sreg(inst.rd, ctx.tid);
      break;
    case Opcode::kNthreads:
      st.set_sreg(inst.rd, ctx.nthreads);
      break;
    case Opcode::kBarrier:
      res.is_barrier = true;
      break;
    case Opcode::kMembar:
      break;  // ordering is a timing property; no functional effect
    case Opcode::kSetvl:
    case Opcode::kSetvlMax:
    case Opcode::kVsetvli: {
      // Set-VL semantics belong to the ISA frontend: the VLT clamp rules
      // and the RVV vsetvli/vtype rules differ, and a program must only
      // use its own frontend's set-VL family.
      const isa::IsaFrontend& fe = isa::frontend(ctx.isa);
      VLT_CHECK(fe.has_opcode(inst.op),
                "set-VL opcode is not part of the program's ISA frontend");
      fe.execute_setvl(inst, st, ctx);
      break;
    }

    // --- vector integer ---
    case Opcode::kVadd:
      vibin([](std::int64_t x, std::int64_t y) { return x + y; });
      break;
    case Opcode::kVsub:
      vibin([](std::int64_t x, std::int64_t y) { return x - y; });
      break;
    case Opcode::kVmul:
      vibin([](std::int64_t x, std::int64_t y) { return x * y; });
      break;
    case Opcode::kVand:
      vbinop([](std::uint64_t x, std::uint64_t y) { return x & y; });
      break;
    case Opcode::kVor:
      vbinop([](std::uint64_t x, std::uint64_t y) { return x | y; });
      break;
    case Opcode::kVxor:
      vbinop([](std::uint64_t x, std::uint64_t y) { return x ^ y; });
      break;
    case Opcode::kVsll:
      vbinop([](std::uint64_t x, std::uint64_t y) { return x << (y & 63); });
      break;
    case Opcode::kVsrl:
      vbinop([](std::uint64_t x, std::uint64_t y) { return x >> (y & 63); });
      break;
    case Opcode::kVmin:
      vibin([](std::int64_t x, std::int64_t y) { return std::min(x, y); });
      break;
    case Opcode::kVmax:
      vibin([](std::int64_t x, std::int64_t y) { return std::max(x, y); });
      break;
    case Opcode::kVabsdiff:
      vibin([](std::int64_t x, std::int64_t y) {
        std::int64_t d = x - y;
        return d < 0 ? -d : d;
      });
      break;

    // --- vector floating point ---
    case Opcode::kVfadd:
      vfbin([](double x, double y) { return x + y; });
      break;
    case Opcode::kVfsub:
      vfbin([](double x, double y) { return x - y; });
      break;
    case Opcode::kVfmul:
      vfbin([](double x, double y) { return x * y; });
      break;
    case Opcode::kVfdiv:
      vfbin([](double x, double y) { return x / y; });
      break;
    case Opcode::kVfma: {
      // Ternary: reads the destination row as the accumulator.
      std::uint64_t* d = st.vreg_row(inst.rd);
      const std::uint64_t* a = st.vreg_row(inst.rs1);
      if (inst.src2_scalar()) {
        const double s = as_f64(st.sreg(inst.rs2));
        if (!inst.masked()) {
          for (unsigned i = 0; i < vl; ++i)
            d[i] = bits_of(as_f64(d[i]) + as_f64(a[i]) * s);
        } else {
          for (unsigned i = 0; i < vl; ++i)
            if (st.mask(i)) d[i] = bits_of(as_f64(d[i]) + as_f64(a[i]) * s);
        }
      } else {
        const std::uint64_t* b = st.vreg_row(inst.rs2);
        if (!inst.masked()) {
          for (unsigned i = 0; i < vl; ++i)
            d[i] = bits_of(as_f64(d[i]) + as_f64(a[i]) * as_f64(b[i]));
        } else {
          for (unsigned i = 0; i < vl; ++i)
            if (st.mask(i))
              d[i] = bits_of(as_f64(d[i]) + as_f64(a[i]) * as_f64(b[i]));
        }
      }
      res.elems = vl;
      break;
    }
    case Opcode::kVfsqrt:
      vunop([](std::uint64_t x) { return bits_of(std::sqrt(as_f64(x))); });
      break;
    case Opcode::kVfmin:
      vfbin([](double x, double y) { return std::min(x, y); });
      break;
    case Opcode::kVfmax:
      vfbin([](double x, double y) { return std::max(x, y); });
      break;
    case Opcode::kVfabs:
      vunop([](std::uint64_t x) { return bits_of(std::fabs(as_f64(x))); });
      break;
    case Opcode::kVfneg:
      vunop([](std::uint64_t x) { return bits_of(-as_f64(x)); });
      break;

    // --- compares and merge ---
    case Opcode::kVcmplt: {
      const std::uint64_t* a = st.vreg_row(inst.rs1);
      if (inst.src2_scalar()) {
        const std::int64_t s = st.sreg_i(inst.rs2);
        for (unsigned i = 0; i < vl; ++i)
          st.set_mask(i, static_cast<std::int64_t>(a[i]) < s);
      } else {
        const std::uint64_t* b = st.vreg_row(inst.rs2);
        for (unsigned i = 0; i < vl; ++i)
          st.set_mask(i, static_cast<std::int64_t>(a[i]) <
                             static_cast<std::int64_t>(b[i]));
      }
      res.elems = vl;
      break;
    }
    case Opcode::kVcmpeq: {
      const std::uint64_t* a = st.vreg_row(inst.rs1);
      if (inst.src2_scalar()) {
        const std::uint64_t s = st.sreg(inst.rs2);
        for (unsigned i = 0; i < vl; ++i) st.set_mask(i, a[i] == s);
      } else {
        const std::uint64_t* b = st.vreg_row(inst.rs2);
        for (unsigned i = 0; i < vl; ++i) st.set_mask(i, a[i] == b[i]);
      }
      res.elems = vl;
      break;
    }
    case Opcode::kVfcmplt: {
      const std::uint64_t* a = st.vreg_row(inst.rs1);
      if (inst.src2_scalar()) {
        const double s = as_f64(st.sreg(inst.rs2));
        for (unsigned i = 0; i < vl; ++i) st.set_mask(i, as_f64(a[i]) < s);
      } else {
        const std::uint64_t* b = st.vreg_row(inst.rs2);
        for (unsigned i = 0; i < vl; ++i)
          st.set_mask(i, as_f64(a[i]) < as_f64(b[i]));
      }
      res.elems = vl;
      break;
    }
    case Opcode::kVmerge: {
      std::uint64_t* d = st.vreg_row(inst.rd);
      const std::uint64_t* a = st.vreg_row(inst.rs1);
      if (inst.src2_scalar()) {
        const std::uint64_t s = st.sreg(inst.rs2);
        for (unsigned i = 0; i < vl; ++i) d[i] = st.mask(i) ? a[i] : s;
      } else {
        const std::uint64_t* b = st.vreg_row(inst.rs2);
        for (unsigned i = 0; i < vl; ++i) d[i] = st.mask(i) ? a[i] : b[i];
      }
      res.elems = vl;
      break;
    }

    // --- misc ---
    case Opcode::kVmov:
      vunop([](std::uint64_t x) { return x; });
      break;
    case Opcode::kVbcast: {
      std::uint64_t* d = st.vreg_row(inst.rd);
      const std::uint64_t s = s_u(inst.rs1);
      if (!inst.masked()) {
        for (unsigned i = 0; i < vl; ++i) d[i] = s;
      } else {
        for (unsigned i = 0; i < vl; ++i)
          if (st.mask(i)) d[i] = s;
      }
      res.elems = vl;
      break;
    }
    case Opcode::kViota: {
      std::uint64_t* d = st.vreg_row(inst.rd);
      if (!inst.masked()) {
        for (unsigned i = 0; i < vl; ++i) d[i] = i;
      } else {
        for (unsigned i = 0; i < vl; ++i)
          if (st.mask(i)) d[i] = i;
      }
      res.elems = vl;
      break;
    }

    // --- reductions (element order is architectural: keep it sequential) ---
    case Opcode::kVredsum: {
      const std::uint64_t* a = st.vreg_row(inst.rs1);
      std::int64_t acc = 0;
      for (unsigned i = 0; i < vl; ++i)
        acc += static_cast<std::int64_t>(a[i]);
      st.set_sreg_i(inst.rd, acc);
      res.elems = vl;
      break;
    }
    case Opcode::kVfredsum: {
      const std::uint64_t* a = st.vreg_row(inst.rs1);
      double acc = 0.0;
      for (unsigned i = 0; i < vl; ++i) acc += as_f64(a[i]);
      st.set_sreg_f(inst.rd, acc);
      res.elems = vl;
      break;
    }
    case Opcode::kVredmin: {
      const std::uint64_t* a = st.vreg_row(inst.rs1);
      std::int64_t acc = std::numeric_limits<std::int64_t>::max();
      for (unsigned i = 0; i < vl; ++i)
        acc = std::min(acc, static_cast<std::int64_t>(a[i]));
      st.set_sreg_i(inst.rd, acc);
      res.elems = vl;
      break;
    }
    case Opcode::kVredmax: {
      const std::uint64_t* a = st.vreg_row(inst.rs1);
      std::int64_t acc = std::numeric_limits<std::int64_t>::min();
      for (unsigned i = 0; i < vl; ++i)
        acc = std::max(acc, static_cast<std::int64_t>(a[i]));
      st.set_sreg_i(inst.rd, acc);
      res.elems = vl;
      break;
    }

    // --- vector memory ---
    // kVle/kVse are the RVV unit-stride forms; same addressing as
    // kVload/kVstore, but each spelling is only legal under its own
    // frontend (checked below).
    case Opcode::kVle:
    case Opcode::kVload: {
      VLT_CHECK(isa::frontend(ctx.isa).has_opcode(inst.op),
                "vector load opcode is not part of the program's ISA frontend");
      const Addr base = static_cast<Addr>(s_i(inst.rs1) + inst.imm);
      std::uint64_t* d = st.vreg_row(inst.rd);
      if (!inst.masked()) {
        addr_out.resize(vl);
        for (unsigned i = 0; i < vl; ++i) addr_out[i] = base + 8 * i;
        mem_->read_row(base, d, vl);  // one page lookup per crossed page
      } else {
        for (unsigned i = 0; i < vl; ++i) {
          if (!st.mask(i)) continue;
          Addr a = base + 8 * i;
          addr_out.push_back(a);
          d[i] = mem_->read64(a);
        }
      }
      res.elems = vl;
      break;
    }
    case Opcode::kVse:
    case Opcode::kVstore: {
      VLT_CHECK(isa::frontend(ctx.isa).has_opcode(inst.op),
                "vector store opcode is not part of the program's ISA frontend");
      const Addr base = static_cast<Addr>(s_i(inst.rs1) + inst.imm);
      const std::uint64_t* d = st.vreg_row(inst.rd);
      if (!inst.masked()) {
        addr_out.resize(vl);
        for (unsigned i = 0; i < vl; ++i) addr_out[i] = base + 8 * i;
        mem_->write_row(base, d, vl);
      } else {
        for (unsigned i = 0; i < vl; ++i) {
          if (!st.mask(i)) continue;
          Addr a = base + 8 * i;
          addr_out.push_back(a);
          mem_->write64(a, d[i]);
        }
      }
      res.elems = vl;
      break;
    }
    case Opcode::kVloads: {
      const std::int64_t base = s_i(inst.rs1);
      const std::int64_t stride = s_i(inst.rs2);
      std::uint64_t* d = st.vreg_row(inst.rd);
      for (unsigned i = 0; i < vl; ++i) {
        Addr a = static_cast<Addr>(base + stride * i);
        addr_out.push_back(a);
        d[i] = mem_->read64(a);
      }
      res.elems = vl;
      break;
    }
    case Opcode::kVstores: {
      const std::int64_t base = s_i(inst.rs1);
      const std::int64_t stride = s_i(inst.rs2);
      const std::uint64_t* d = st.vreg_row(inst.rd);
      for (unsigned i = 0; i < vl; ++i) {
        Addr a = static_cast<Addr>(base + stride * i);
        addr_out.push_back(a);
        mem_->write64(a, d[i]);
      }
      res.elems = vl;
      break;
    }
    case Opcode::kVgather: {
      const std::int64_t base = s_i(inst.rs1);
      const std::uint64_t* idx = st.vreg_row(inst.rs2);
      std::uint64_t* d = st.vreg_row(inst.rd);
      for (unsigned i = 0; i < vl; ++i) {
        Addr a = static_cast<Addr>(base + static_cast<std::int64_t>(idx[i]));
        addr_out.push_back(a);
        d[i] = mem_->read64(a);
      }
      res.elems = vl;
      break;
    }
    case Opcode::kVscatter: {
      const std::int64_t base = s_i(inst.rs1);
      const std::uint64_t* idx = st.vreg_row(inst.rs2);
      const std::uint64_t* d = st.vreg_row(inst.rd);
      for (unsigned i = 0; i < vl; ++i) {
        Addr a = static_cast<Addr>(base + static_cast<std::int64_t>(idx[i]));
        addr_out.push_back(a);
        mem_->write64(a, d[i]);
      }
      res.elems = vl;
      break;
    }

    case Opcode::kNumOpcodes:
      VLT_CHECK(false, "invalid opcode");
  }

  if (res.branch_taken && inst.op != Opcode::kJr)
    res.next_pc = st.pc() + 1 + inst.imm;
  return res;
}

}  // namespace vlt::func
