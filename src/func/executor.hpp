// Instruction semantics. The timing pipelines call execute() exactly once
// per instruction, in program order per context ("execute at dispatch");
// the returned effective addresses feed the memory-timing models.
#pragma once

#include <vector>

#include "func/arch_state.hpp"
#include "func/memory.hpp"
#include "isa/isa.hpp"
#include "isa/opcode.hpp"

namespace vlt::func {

/// Per-context execution environment: thread identity, the hardware
/// maximum vector length of the lane partition the context owns, and the
/// ISA frontend the running program was built for.
struct ExecContext {
  ThreadId tid = 0;
  unsigned nthreads = 1;
  unsigned max_vl = kMaxVectorLength;
  IsaId isa = IsaId::kVlt;
};

struct ExecResult {
  std::uint64_t next_pc = 0;
  bool branch_taken = false;
  bool halted = false;
  bool is_barrier = false;
  /// Number of vector elements processed (VL at execution; 0 for scalars).
  unsigned elems = 0;
};

class Executor {
 public:
  explicit Executor(FuncMemory& mem) : mem_(&mem) {}

  /// Executes `inst` at `state.pc()`, updating registers and memory.
  /// Effective addresses of memory operations (one per element for vector
  /// memory ops) are appended to `addr_out`, which is cleared first.
  /// Does NOT advance state.pc(); the caller owns control flow.
  ExecResult execute(const isa::Instruction& inst, ArchState& state,
                     const ExecContext& ctx, std::vector<Addr>& addr_out);

 private:
  FuncMemory* mem_;
};

}  // namespace vlt::func
