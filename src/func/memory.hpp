// Sparse functional memory: the architectural contents of the simulated
// 64-bit flat address space, shared by all hardware contexts of a machine.
#pragma once

#include <array>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "common/log.hpp"
#include "common/types.hpp"

namespace vlt::func {

class FuncMemory : public ckpt::Checkpointable {
 public:
  static constexpr Addr kPageBytes = 4096;

  /// Concurrent-access mode for partition-parallel ticking
  /// (MachineConfig::host_threads): while on, the page map is guarded by
  /// a shared mutex — reads and writes to existing pages take it shared,
  /// only on-demand page creation takes it exclusively — so functional
  /// execution may run on several host threads at once. Callers guarantee
  /// word-level disjointness (threadlets touch disjoint footprints within
  /// a barrier epoch, vltlint's race gate); the lock only protects the
  /// map structure itself. Off (the default) every access is lock-free.
  void set_concurrent(bool on) { concurrent_ = on; }

  std::uint64_t read64(Addr addr) const;
  void write64(Addr addr, std::uint64_t value);

  double read_f64(Addr addr) const {
    std::uint64_t bits = read64(addr);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  void write_f64(Addr addr, double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    write64(addr, bits);
  }

  std::int64_t read_i64(Addr addr) const {
    return static_cast<std::int64_t>(read64(addr));
  }
  void write_i64(Addr addr, std::int64_t value) {
    write64(addr, static_cast<std::uint64_t>(value));
  }

  /// Contiguous 64-bit row transfer for the executor's unit-stride vector
  /// fast paths: one page lookup per crossed page instead of one per
  /// element. Semantically identical to `count` read64/write64 calls.
  void read_row(Addr addr, std::uint64_t* out, std::size_t count) const;
  void write_row(Addr addr, const std::uint64_t* values, std::size_t count);

  /// Bulk helpers for workload setup and golden verification.
  void write_block_f64(Addr addr, std::span<const double> values);
  void write_block_i64(Addr addr, std::span<const std::int64_t> values);
  std::vector<double> read_block_f64(Addr addr, std::size_t count) const;
  std::vector<std::int64_t> read_block_i64(Addr addr, std::size_t count) const;

  std::size_t allocated_pages() const { return pages_.size(); }

  /// Replaces this memory's contents with a deep copy of `other`.
  void copy_from(const FuncMemory& other);

  /// First 64-bit word where the two images differ, formatted for a
  /// diagnostic, or nullopt when identical. Absent pages compare as zero.
  std::optional<std::string> first_difference(const FuncMemory& other) const;

  /// Order-independent FNV-1a digest of the image contents (all-zero pages
  /// hash like absent ones). Used to fingerprint workload input data for
  /// the campaign result cache.
  std::uint64_t content_hash() const;

  /// Checkpointing (docs/CKPT.md): pages serialize sorted by address so
  /// the snapshot bytes are deterministic; restore replaces the entire
  /// image (the exact page set matters for byte-identity, so even
  /// all-zero pages round-trip).
  void save_state(ckpt::Writer& w) const override;
  void restore_state(ckpt::Reader& r) override;

 private:
  using Page = std::array<std::uint64_t, kPageBytes / 8>;

  Page& page_for(Addr addr);
  const Page* find_page(Addr addr) const;
  /// find_page under the shared lock in concurrent mode, plain otherwise.
  const Page* find_page_sync(Addr addr) const;
  /// page_for with shared-fast-path / exclusive-create in concurrent
  /// mode, plain otherwise.
  Page& page_for_sync(Addr addr);

  std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
  bool concurrent_ = false;
  mutable std::shared_mutex mu_;
};

/// Simple bump allocator over the simulated address space, used by
/// workloads to lay out their data segments deterministically.
class AddressAllocator {
 public:
  explicit AddressAllocator(Addr base = 0x1000) : next_(base) {}

  /// Returns an 64-byte (cache-line) aligned block of `count` 8-byte words.
  Addr alloc_words(std::size_t count) {
    Addr a = next_;
    next_ += count * 8;
    next_ = (next_ + kLineBytes - 1) & ~Addr{kLineBytes - 1};
    return a;
  }

 private:
  Addr next_;
};

}  // namespace vlt::func
