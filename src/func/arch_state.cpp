#include "func/arch_state.hpp"

#include <vector>

namespace vlt::func {

void ArchState::reset() {
  sregs_.fill(0);
  for (auto& v : vregs_) v.fill(0);
  mask_.reset();
  vl_ = 0;
  vtype_ = isa::rvv::kVtypeE64M1;
  pc_ = 0;
}

void ArchState::save_state(ckpt::Writer& w) const {
  w.blob64("sregs", sregs_.data(), sregs_.size());
  std::vector<std::uint64_t> rows;
  rows.reserve(kNumVectorRegs * kMaxVectorLength);
  for (const auto& row : vregs_)
    rows.insert(rows.end(), row.begin(), row.end());
  w.blob64("vregs", rows.data(), rows.size());
  static_assert(kMaxVectorLength <= 64, "mask serialized as one word");
  w.u64("mask", mask_.to_ullong());
  w.u64("vl", vl_);
  w.u64("vtype", vtype_);
  w.u64("pc", pc_);
}

void ArchState::restore_state(ckpt::Reader& r) {
  r.blob64("sregs", sregs_.data(), sregs_.size());
  std::vector<std::uint64_t> rows(kNumVectorRegs * kMaxVectorLength);
  r.blob64("vregs", rows.data(), rows.size());
  for (unsigned v = 0; v < kNumVectorRegs; ++v)
    std::memcpy(vregs_[v].data(), rows.data() + v * kMaxVectorLength,
                kMaxVectorLength * 8);
  mask_ = std::bitset<kMaxVectorLength>(r.u64("mask"));
  vl_ = static_cast<unsigned>(r.u64("vl"));
  vtype_ = static_cast<std::uint32_t>(r.u64("vtype"));
  pc_ = r.u64("pc");
}

}  // namespace vlt::func
