#include "func/arch_state.hpp"

namespace vlt::func {

void ArchState::reset() {
  sregs_.fill(0);
  for (auto& v : vregs_) v.fill(0);
  mask_.reset();
  vl_ = 0;
  vtype_ = isa::rvv::kVtypeE64M1;
  pc_ = 0;
}

}  // namespace vlt::func
