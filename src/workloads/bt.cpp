#include "workloads/bt.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "workloads/kernel_util.hpp"

namespace vlt::workloads {

using isa::ProgramBuilder;

BtWorkload::BtWorkload(unsigned lines, unsigned sweeps)
    : lines_(lines), sweeps_(sweeps) {
  func::AddressAllocator alloc;
  const std::size_t cells = std::size_t{lines_} * kCells;
  amat_ = alloc.alloc_words(cells * kB * kB);
  rhs_ = alloc.alloc_words(cells * kB);
  x_ = alloc.alloc_words(cells * kB);
  seed_ = alloc.alloc_words(cells);
  inv_ = alloc.alloc_words(cells);
  smooth_ = alloc.alloc_words(cells * kB);
  res_ = alloc.alloc_words(cells);

  Xorshift64 rng(0xB70ull);
  a_data_.resize(cells * kB * kB);
  rhs_data_.resize(cells * kB);
  x0_data_.resize(cells * kB);
  for (auto& v : a_data_)
    v = 0.5 + static_cast<double>(1 + rng.next_below(8)) * 0.125;
  for (auto& v : rhs_data_)
    v = (static_cast<double>(rng.next_below(9)) - 4.0) * 0.25;
  for (auto& v : x0_data_)
    v = (static_cast<double>(rng.next_below(7)) - 3.0) * 0.125;

  // --- golden model (exact mirror of the kernels' FP evaluation order) ---
  golden_seed_.resize(cells);
  golden_x_ = x0_data_;
  golden_smooth_.assign(cells * kB, 0.0);
  golden_res_.assign(cells, 0.0);
  std::vector<double> inv_g(cells, 0.0);

  for (std::size_t c = 0; c < cells; ++c) {
    const double* A = &a_data_[c * kB * kB];  // column-major: A[j*5+r]
    double sum = 0.0;
    for (unsigned j = 0; j < kB; ++j) sum += A[j * kB + j];
    if (sum < 0.0) sum = -sum;
    double seed = sum + 1.0;
    for (int r = 0; r < 3; ++r) seed = seed * 0.5 + 1.0;
    golden_seed_[c] = seed;
  }
  for (unsigned s = 0; s < sweeps_; ++s) {
    for (unsigned ln = 0; ln < lines_; ++ln) {
      for (unsigned cl = 0; cl < kCells; ++cl) {
        std::size_t c = std::size_t{ln} * kCells + cl;
        const double* A = &a_data_[c * kB * kB];
        double p = std::fabs(A[0]);
        for (unsigned j = 1; j < kB; ++j) {
          double t = std::fabs(A[j * kB + j]);
          if (p < t) p = t;
        }
        double inv = 1.0 / (p + golden_seed_[c]);
        inv_g[c] = inv;
        double acc[kB];
        for (unsigned r = 0; r < kB; ++r) acc[r] = rhs_data_[c * kB + r];
        for (unsigned j = 0; j < kB; ++j) {
          double xj = -golden_x_[c * kB + j];
          for (unsigned r = 0; r < kB; ++r) acc[r] += A[j * kB + r] * xj;
        }
        for (unsigned r = 0; r < kB; ++r)
          golden_x_[c * kB + r] = acc[r] * inv;
      }
      for (unsigned pr = 0; pr < kCells / 2; ++pr) {
        std::size_t base = (std::size_t{ln} * kCells + 2 * pr) * kB;
        for (unsigned k = 0; k < 2 * kB; ++k)
          golden_smooth_[base + k] = golden_x_[base + k] * 0.5;
      }
      for (unsigned cl = 0; cl < kCells; ++cl) {
        std::size_t c = std::size_t{ln} * kCells + cl;
        golden_res_[c] = inv_g[c] * inv_g[c];
      }
    }
  }
}

void BtWorkload::init_memory(func::FuncMemory& mem) const {
  mem.write_block_f64(amat_, a_data_);
  mem.write_block_f64(rhs_, rhs_data_);
  mem.write_block_f64(x_, x0_data_);
}

// Serial scalar setup: per-cell seed from the block diagonal (branchy
// abs, then a short dependent FP chain). No vector work at all.
isa::Program BtWorkload::setup_program() const {
  ProgramBuilder b("bt-setup");
  constexpr RegIdx c = 1, cEnd = 2, j = 3, jEnd = 4, scr = 5, aP = 16,
                   sum = 33, t = 34, seedP = 17, one = 48, half = 49;
  b.li_f64(one, 1.0);
  b.li_f64(half, 0.5);
  b.li(c, 0);
  b.li(cEnd, static_cast<std::int64_t>(lines_) * kCells);
  b.li(seedP, static_cast<std::int64_t>(seed_));
  auto top = b.label();
  auto done = b.label();
  b.bind(top);
  b.bge(c, cEnd, done);
  b.li(scr, kB * kB * 8);
  b.mul(aP, c, scr);
  b.li(scr, static_cast<std::int64_t>(amat_));
  b.add(aP, aP, scr);
  // sum of the diagonal A[j*5+j]
  b.li(j, 0);
  b.li(jEnd, kB);
  b.xor_(sum, sum, sum);  // 0.0 bits
  auto diag_top = b.label();
  b.bind(diag_top);
  b.li(scr, (kB + 1) * 8);
  b.mul(t, j, scr);
  b.add(t, t, aP);
  b.load(t, t);
  b.fadd(sum, sum, t);
  b.addi(j, j, 1);
  b.blt(j, jEnd, diag_top);
  // branchy absolute value
  b.xor_(t, t, t);
  b.flt(scr, sum, t);  // sum < 0.0 ?
  auto nonneg = b.label();
  b.beq(scr, rZ, nonneg);
  b.fneg(sum, sum);
  b.bind(nonneg);
  b.fadd(sum, sum, one);
  for (int r = 0; r < 3; ++r) {
    b.fmul(sum, sum, half);
    b.fadd(sum, sum, one);
  }
  b.store(seedP, sum);
  b.addi(seedP, seedP, 8);
  b.addi(c, c, 1);
  b.jump(top);
  b.bind(done);
  b.halt();
  return b.build();
}

// Per-thread sweeps over this thread's lines.
isa::Program BtWorkload::sweep_program(unsigned tid, unsigned nthreads) const {
  ProgramBuilder b("bt-sweep-t" + std::to_string(tid));
  auto range = chunk_of(lines_, tid, nthreads);
  constexpr RegIdx sw = 1, ln = 2, cl = 3, j = 4, scr = 5, n = 6, vl = 7,
                   lnEnd = 8, cellIdx = 9, aP = 16, rhsP = 17, xP = 18,
                   invP = 19, smP = 20, resP = 21, colP = 22, p = 33, t = 34,
                   inv = 35, xj = 36, one = 48, half = 49;

  b.li_f64(one, 1.0);
  b.li_f64(half, 0.5);
  b.li(sw, sweeps_);
  auto sweep_top = b.label();
  b.bind(sweep_top);
  b.li(ln, range.begin);
  b.li(lnEnd, range.end);
  auto line_top = b.label();
  auto line_done = b.label();
  b.bind(line_top);
  b.bge(ln, lnEnd, line_done);

  // Per-line base pointers; cells advance them incrementally.
  b.li(scr, kCells);
  b.mul(cellIdx, ln, scr);  // first cell index of the line
  b.li(scr, kB * kB * 8);
  b.mul(aP, cellIdx, scr);
  b.li(scr, static_cast<std::int64_t>(amat_));
  b.add(aP, aP, scr);
  b.li(scr, kB * 8);
  b.mul(rhsP, cellIdx, scr);
  b.li(scr, static_cast<std::int64_t>(rhs_));
  b.add(rhsP, rhsP, scr);
  b.li(scr, kB * 8);
  b.mul(xP, cellIdx, scr);
  b.li(scr, static_cast<std::int64_t>(x_));
  b.add(xP, xP, scr);
  b.slli(invP, cellIdx, 3);
  b.li(scr, static_cast<std::int64_t>(inv_));
  b.add(invP, invP, scr);
  constexpr RegIdx seedP = 10, diagP = 12;
  b.slli(seedP, cellIdx, 3);
  b.li(scr, static_cast<std::int64_t>(seed_));
  b.add(seedP, seedP, scr);

  b.li(cl, 0);
  auto cell_top = b.label();
  auto cell_done = b.label();
  b.bind(cell_top);
  b.li(scr, kCells);
  b.bge(cl, scr, cell_done);

  // pivot = max |A[j][j]| (branchy scalar glue, incremental diag pointer)
  b.load(p, aP);
  b.fabs_(p, p);
  b.addi(diagP, aP, (kB + 1) * 8);
  b.li(j, 1);
  {
    auto piv_top = b.label();
    auto piv_done = b.label();
    b.bind(piv_top);
    b.li(scr, kB);
    b.bge(j, scr, piv_done);
    b.load(t, diagP);
    b.fabs_(t, t);
    b.flt(scr, p, t);
    auto keep = b.label();
    b.beq(scr, rZ, keep);
    b.mov(p, t);
    b.bind(keep);
    b.addi(diagP, diagP, (kB + 1) * 8);
    b.addi(j, j, 1);
    b.jump(piv_top);
    b.bind(piv_done);
  }
  // inv = 1.0 / (p + seed[cell])
  b.load(t, seedP);
  b.fadd(p, p, t);
  b.fdiv(inv, one, p);
  b.store(invP, inv);

  // VL-5 block matvec: x = (rhs - A x) * inv
  b.li(n, kB);
  b.setvl(vl, n);
  b.vload(2, rhsP);  // acc
  b.li(j, 0);
  b.mov(colP, aP);
  {
    auto mv_top = b.label();
    b.bind(mv_top);
    b.slli(scr, j, 3);
    b.add(scr, scr, xP);
    b.load(xj, scr);
    b.fneg(xj, xj);
    b.vload(1, colP);  // column j of A
    b.vfma(2, 1, xj, isa::kFlagSrc2Scalar);
    b.addi(colP, colP, kB * 8);
    b.addi(j, j, 1);
    b.li(scr, kB);
    b.blt(j, scr, mv_top);
  }
  b.vfmul(2, 2, inv, isa::kFlagSrc2Scalar);
  b.vstore(2, xP);

  b.addi(aP, aP, kB * kB * 8);
  b.addi(rhsP, rhsP, kB * 8);
  b.addi(xP, xP, kB * 8);
  b.addi(invP, invP, 8);
  b.addi(seedP, seedP, 8);
  b.addi(cl, cl, 1);
  b.jump(cell_top);
  b.bind(cell_done);

  // VL-10 pairwise smoothing over the line's x values.
  b.li(scr, kCells * kB * 8);
  b.mul(xP, ln, scr);
  b.mul(smP, ln, scr);
  b.li(scr, static_cast<std::int64_t>(x_));
  b.add(xP, xP, scr);
  b.li(scr, static_cast<std::int64_t>(smooth_));
  b.add(smP, smP, scr);
  b.li(j, 0);
  {
    auto pair_top = b.label();
    b.bind(pair_top);
    b.li(n, 2 * kB);
    b.setvl(vl, n);
    b.vload(1, xP);
    b.vfmul(1, 1, half, isa::kFlagSrc2Scalar);
    b.vstore(1, smP);
    b.addi(xP, xP, 2 * kB * 8);
    b.addi(smP, smP, 2 * kB * 8);
    b.addi(j, j, 1);
    b.li(scr, kCells / 2);
    b.blt(j, scr, pair_top);
  }

  // VL-12 diagonal residual: res[line][:] = inv[line][:]^2.
  b.li(scr, kCells * 8);
  b.mul(invP, ln, scr);
  b.mul(resP, ln, scr);
  b.li(scr, static_cast<std::int64_t>(inv_));
  b.add(invP, invP, scr);
  b.li(scr, static_cast<std::int64_t>(res_));
  b.add(resP, resP, scr);
  b.li(n, kCells);
  b.setvl(vl, n);
  b.vload(1, invP);
  b.vfmul(2, 1, 1);
  b.vstore(2, resP);

  // Vector stores to x must be visible to the next sweep's scalar loads
  // (compiler-inserted scalar/vector ordering barrier, paper §2).
  b.membar();

  b.addi(ln, ln, 1);
  b.jump(line_top);
  b.bind(line_done);
  b.addi(sw, sw, -1);
  b.bne(sw, 0, sweep_top);
  b.halt();
  return b.build();
}

machine::ParallelProgram BtWorkload::build(const Variant& variant) const {
  unsigned nthreads =
      variant.kind == Variant::Kind::kBase ? 1 : variant.nthreads;
  VLT_CHECK(supports(variant.kind), "unsupported bt variant");

  machine::ParallelProgram prog;
  prog.name = name();

  machine::Phase setup;
  setup.label = "setup";
  setup.mode = machine::PhaseMode::kSerial;
  setup.vlt_opportunity = false;
  setup.programs.push_back(setup_program());
  prog.phases.push_back(std::move(setup));

  machine::Phase sweeps;
  sweeps.label = "line-sweeps";
  sweeps.mode = nthreads == 1 ? machine::PhaseMode::kSerial
                              : machine::PhaseMode::kVectorThreads;
  sweeps.vlt_opportunity = true;
  for (unsigned t = 0; t < nthreads; ++t)
    sweeps.programs.push_back(sweep_program(t, nthreads));
  prog.phases.push_back(std::move(sweeps));
  return prog;
}

std::optional<std::string> BtWorkload::verify(
    const func::FuncMemory& mem) const {
  auto seed = mem.read_block_f64(seed_, golden_seed_.size());
  for (std::size_t k = 0; k < golden_seed_.size(); ++k)
    if (seed[k] != golden_seed_[k])
      return "bt: seed[" + std::to_string(k) + "] mismatch";
  auto x = mem.read_block_f64(x_, golden_x_.size());
  for (std::size_t k = 0; k < golden_x_.size(); ++k)
    if (x[k] != golden_x_[k])
      return "bt: x[" + std::to_string(k) + "] mismatch";
  auto sm = mem.read_block_f64(smooth_, golden_smooth_.size());
  for (std::size_t k = 0; k < golden_smooth_.size(); ++k)
    if (sm[k] != golden_smooth_[k])
      return "bt: smooth[" + std::to_string(k) + "] mismatch";
  auto res = mem.read_block_f64(res_, golden_res_.size());
  for (std::size_t k = 0; k < golden_res_.size(); ++k)
    if (res[k] != golden_res_[k])
      return "bt: res[" + std::to_string(k) + "] mismatch";
  return std::nullopt;
}

}  // namespace vlt::workloads
