// mpenc: video-encoding stand-in (Table 4: 76% vectorized, avg VL 11.2,
// common VLs 8/16/64, 78% VLT opportunity).
//
// Per macroblock: motion-estimation SAD against full 16x16 candidates
// (VL 16) and 8x8 sub-block candidates (VL 8), a butterfly transform over
// row halves (VL 8), and a frame-buffer copy (VL 64); followed by a serial
// scalar entropy-coding pass (run-length transition counting), which is
// the non-vectorizable ~22% the paper cannot accelerate with VLT.
// VLT decomposition: macroblocks round-robin across 2-4 vector threads.
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace vlt::workloads {

class MpencWorkload : public Workload {
 public:
  MpencWorkload(unsigned macroblocks = 16, unsigned full_cands = 4,
                unsigned half_cands = 8);

  std::string name() const override { return "mpenc"; }
  void init_memory(func::FuncMemory& mem) const override;
  machine::ParallelProgram build(const Variant& variant) const override;
  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override;
  bool supports(Variant::Kind kind) const override {
    return kind == Variant::Kind::kBase ||
           kind == Variant::Kind::kVectorThreads;
  }

 private:
  static constexpr unsigned kMbWords = 256;  // 16x16 pixels
  static constexpr unsigned kRleWords = 224;  // entropy-coded words per MB

  isa::Program worker_program(unsigned tid, unsigned nthreads) const;
  isa::Program entropy_program() const;

  unsigned mbs_, full_cands_, half_cands_;
  Addr cur_, ref_, dct_, bitbuf_, sad_out_, cand_out_, rle_out_;
  std::vector<std::int64_t> cur_px_, ref_px_;
  std::vector<std::int64_t> golden_sad_, golden_cand_, golden_dct_,
      golden_rle_;
};

}  // namespace vlt::workloads
