// sage: hydrodynamics modeling stand-in (Table 4: 94% vectorized,
// avg VL 63.8). A sequence of 5-point stencil relaxation sweeps over a
// wide 2-D grid; rows are strip-mined at full hardware vector length with
// a short tail, matching the near-64 average vector length. Long vectors
// throughout, so no VLT opportunity.
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace vlt::workloads {

class SageWorkload : public Workload {
 public:
  SageWorkload(unsigned height = 24, unsigned width = 256,
               unsigned sweeps = 3);

  std::string name() const override { return "sage"; }
  void init_memory(func::FuncMemory& mem) const override;
  machine::ParallelProgram build(const Variant& variant) const override;
  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override;
  bool supports(Variant::Kind kind) const override {
    return kind == Variant::Kind::kBase;
  }

 private:
  unsigned h_, w_, sweeps_;
  Addr a_addr_, b_addr_;
  std::vector<double> init_, golden_;
};

}  // namespace vlt::workloads
