#include "workloads/multprec.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"
#include "workloads/kernel_util.hpp"

namespace vlt::workloads {

using isa::ProgramBuilder;

namespace {
constexpr std::int64_t kMask32 = (std::int64_t{1} << 32) - 1;
}

MultprecWorkload::MultprecWorkload(unsigned bignums) : count_(bignums) {
  func::AddressAllocator alloc;
  a_ = alloc.alloc_words(std::size_t{count_} * kLimbs);
  b_ = alloc.alloc_words(std::size_t{count_} * kLimbs);
  out_ = alloc.alloc_words(std::size_t{count_} * kLimbs);
  norm_out_ = alloc.alloc_words(std::size_t{count_} * kLimbs);
  checksum_out_ = alloc.alloc_words(1);

  Xorshift64 rng(0x3A11Bull);
  a_limbs_.resize(std::size_t{count_} * kLimbs);
  b_limbs_.resize(std::size_t{count_} * kLimbs);
  for (auto& v : a_limbs_) v = static_cast<std::int64_t>(rng.next() & kMask32);
  for (auto& v : b_limbs_) v = static_cast<std::int64_t>(rng.next() & kMask32);

  // Golden model mirroring the kernel's limb-combine rounds exactly.
  golden_out_.resize(a_limbs_.size());
  golden_norm_.resize(a_limbs_.size());
  for (unsigned i = 0; i < count_; ++i) {
    const std::int64_t* a = &a_limbs_[i * kLimbs];
    const std::int64_t* b = &b_limbs_[i * kLimbs];
    std::int64_t s[kLimbs];
    for (unsigned l = 0; l < kLimbs; ++l) {
      std::int64_t acc = a[l] + b[l];
      acc += a[l] * 3;
      acc += b[l] * 5;
      acc += a[l] ^ b[l];
      acc += std::max(a[l], b[l]);
      acc += std::min(a[l], b[l]);
      acc += a[l] & b[l];
      acc += a[l] << 1;
      acc += a[l] > b[l] ? a[l] - b[l] : b[l] - a[l];
      acc += a[l] | b[l];
      acc += a[l] >> 1;  // limbs are non-negative
      s[l] = acc;
    }
    for (unsigned l = 0; l < kLimbs - 1; ++l) s[l] += a[l + 1];  // VL-23 round
    // Serial carry propagation, base 2^32.
    std::int64_t carry = 0;
    for (unsigned l = 0; l < kLimbs; ++l) {
      std::int64_t w = s[l] + carry;
      carry = w >> 32;
      golden_out_[i * kLimbs + l] = w & kMask32;
    }
  }
  golden_checksum_ = 0;
  for (std::size_t k = 0; k < golden_out_.size(); ++k) {
    std::int64_t v = golden_out_[k];
    golden_norm_[k] = v + (v >> 16);
    golden_checksum_ += golden_norm_[k] ^ static_cast<std::int64_t>(k);
  }
}

void MultprecWorkload::init_memory(func::FuncMemory& mem) const {
  mem.write_block_i64(a_, a_limbs_);
  mem.write_block_i64(b_, b_limbs_);
}

isa::Program MultprecWorkload::worker_program(unsigned tid,
                                              unsigned nthreads) const {
  ProgramBuilder b("multprec-w" + std::to_string(tid));
  auto range = chunk_of(count_, tid, nthreads);
  constexpr RegIdx i = 1, iEnd = 2, n = 3, vl = 4, l = 5, lim = 6, aP = 16,
                   bP = 17, oP = 18, c3 = 48, c5 = 49, c1 = 50, carry = 33,
                   w = 34, mask = 51, scr = 7;

  b.li(c3, 3);
  b.li(c5, 5);
  b.li(c1, 1);
  b.li(mask, kMask32);
  b.li(i, range.begin);
  b.li(iEnd, range.end);
  b.li(aP, static_cast<std::int64_t>(a_ + 8 * kLimbs * range.begin));
  b.li(bP, static_cast<std::int64_t>(b_ + 8 * kLimbs * range.begin));
  b.li(oP, static_cast<std::int64_t>(out_ + 8 * kLimbs * range.begin));
  auto top = b.label();
  auto done = b.label();
  b.bind(top);
  b.bge(i, iEnd, done);

  // Vectorized limb-combine rounds (VL 24 on the base machine; the strip
  // loop clamps to the partition MAXVL under VLT).
  constexpr RegIdx aT = 20, bT = 21, oT = 22;
  b.mov(aT, aP);
  b.mov(bT, bP);
  b.mov(oT, oP);
  b.li(n, kLimbs);
  strip_mine(b, n, vl, scr, {aT, bT, oT}, [&] {
    b.vload(1, aT);
    b.vload(2, bT);
    b.vadd(3, 1, 2);
    b.vmul(4, 1, c3, isa::kFlagSrc2Scalar);
    b.vadd(3, 3, 4);
    b.vmul(4, 2, c5, isa::kFlagSrc2Scalar);
    b.vadd(3, 3, 4);
    b.vxor(4, 1, 2);
    b.vadd(3, 3, 4);
    b.vmax(4, 1, 2);
    b.vadd(3, 3, 4);
    b.vmin(4, 1, 2);
    b.vadd(3, 3, 4);
    b.vand(4, 1, 2);
    b.vadd(3, 3, 4);
    b.vsll(4, 1, c1);
    b.vadd(3, 3, 4);
    b.vabsdiff(4, 1, 2);
    b.vadd(3, 3, 4);
    b.vor(4, 1, 2);
    b.vadd(3, 3, 4);
    b.vsrl(4, 1, c1);
    b.vadd(3, 3, 4);
    b.vstore(3, oT);
  });
  b.membar();  // vector-vector ordering before re-reading s (paper §2)
  // Shifted VL-23 round: s[0..22] += a[1..23].
  b.mov(aT, aP);
  b.mov(oT, oP);
  b.li(n, kLimbs - 1);
  strip_mine(b, n, vl, scr, {aT, oT}, [&] {
    b.vload(3, oT);
    b.vload(5, aT, 8);
    b.vadd(3, 3, 5);
    b.vstore(3, oT);
  });
  b.membar();  // the scalar carry pass reads the vector stores below

  // Serial base-2^32 carry propagation (the non-vectorizable recurrence).
  b.li(carry, 0);
  b.li(l, 0);
  b.li(lim, kLimbs);
  auto carry_top = b.label();
  b.bind(carry_top);
  b.slli(scr, l, 3);
  b.add(scr, scr, oP);
  b.load(w, scr);
  b.add(w, w, carry);
  b.srli(carry, w, 32);  // limbs are non-negative, so logical shift works
  b.and_(w, w, mask);
  b.store(scr, w);
  b.addi(l, l, 1);
  b.blt(l, lim, carry_top);

  b.addi(aP, aP, kLimbs * 8);
  b.addi(bP, bP, kLimbs * 8);
  b.addi(oP, oP, kLimbs * 8);
  b.addi(i, i, 1);
  b.jump(top);
  b.bind(done);
  b.halt();
  return b.build();
}

isa::Program MultprecWorkload::normalize_program() const {
  ProgramBuilder b("multprec-normalize");
  constexpr RegIdx n = 1, vl = 2, scr = 3, inP = 16, outP = 17, sh = 48;
  b.li(sh, 16);
  b.li(inP, static_cast<std::int64_t>(out_));
  b.li(outP, static_cast<std::int64_t>(norm_out_));
  b.li(n, static_cast<std::int64_t>(count_) * kLimbs);
  strip_mine(b, n, vl, scr, {inP, outP}, [&] {
    b.vload(1, inP);
    b.vsrl(2, 1, sh);
    b.vadd(3, 1, 2);
    b.vstore(3, outP);
  });
  // Serial scalar checksum over the normalized limbs (the audit pass the
  // reference code runs single-threaded).
  b.membar();
  constexpr RegIdx ck = 33, w = 34, idx = 4, lim = 5;
  b.li(outP, static_cast<std::int64_t>(norm_out_));
  b.li(ck, 0);
  b.li(idx, 0);
  b.li(lim, static_cast<std::int64_t>(count_) * kLimbs);
  auto top = b.label();
  b.bind(top);
  b.load(w, outP);
  b.xor_(w, w, idx);
  b.add(ck, ck, w);
  b.addi(outP, outP, 8);
  b.addi(idx, idx, 1);
  b.blt(idx, lim, top);
  b.li(w, static_cast<std::int64_t>(checksum_out_));
  b.store(w, ck);
  b.halt();
  return b.build();
}

machine::ParallelProgram MultprecWorkload::build(const Variant& variant) const {
  unsigned nthreads =
      variant.kind == Variant::Kind::kBase ? 1 : variant.nthreads;
  VLT_CHECK(supports(variant.kind), "unsupported multprec variant");

  machine::ParallelProgram prog;
  prog.name = name();

  machine::Phase combine;
  combine.label = "limb-rounds+carry";
  combine.mode = nthreads == 1 ? machine::PhaseMode::kSerial
                               : machine::PhaseMode::kVectorThreads;
  combine.vlt_opportunity = true;
  for (unsigned t = 0; t < nthreads; ++t)
    combine.programs.push_back(worker_program(t, nthreads));
  prog.phases.push_back(std::move(combine));

  machine::Phase norm;
  norm.label = "normalize";
  norm.mode = machine::PhaseMode::kSerial;
  norm.vlt_opportunity = false;
  norm.programs.push_back(normalize_program());
  prog.phases.push_back(std::move(norm));
  return prog;
}

std::optional<std::string> MultprecWorkload::verify(
    const func::FuncMemory& mem) const {
  auto out = mem.read_block_i64(out_, golden_out_.size());
  for (std::size_t k = 0; k < golden_out_.size(); ++k)
    if (out[k] != golden_out_[k])
      return "multprec: out[" + std::to_string(k) + "] mismatch";
  auto norm = mem.read_block_i64(norm_out_, golden_norm_.size());
  for (std::size_t k = 0; k < golden_norm_.size(); ++k)
    if (norm[k] != golden_norm_[k])
      return "multprec: norm[" + std::to_string(k) + "] mismatch";
  if (mem.read_i64(checksum_out_) != golden_checksum_)
    return "multprec: checksum mismatch";
  return std::nullopt;
}

}  // namespace vlt::workloads
