#include "workloads/fault_injection.hpp"

#include "isa/program.hpp"

namespace vlt::workloads {

using isa::ProgramBuilder;

namespace {

isa::Program halt_program(const std::string& name) {
  ProgramBuilder b(name);
  b.halt();
  return b.build();
}

}  // namespace

// --- fault.verify ----------------------------------------------------------

void FaultVerifyWorkload::init_memory(func::FuncMemory&) const {}

machine::ParallelProgram FaultVerifyWorkload::build(const Variant&) const {
  machine::ParallelProgram prog;
  prog.name = name();
  machine::Phase phase;
  phase.label = "noop";
  phase.mode = machine::PhaseMode::kSerial;
  phase.programs.push_back(halt_program("fault-verify"));
  prog.phases.push_back(std::move(phase));
  return prog;
}

std::optional<std::string> FaultVerifyWorkload::verify(
    const func::FuncMemory&) const {
  return "injected verification failure (fault.verify always mismatches)";
}

bool FaultVerifyWorkload::supports(Variant::Kind kind) const {
  return kind == Variant::Kind::kBase;
}

// --- fault.invariant -------------------------------------------------------

void FaultInvariantWorkload::init_memory(func::FuncMemory&) const {}

machine::ParallelProgram FaultInvariantWorkload::build(const Variant&) const {
  machine::ParallelProgram prog;
  prog.name = name();
  // A serial phase must carry exactly one program; two trips the
  // processor's VLT_CHECK regardless of machine configuration.
  machine::Phase phase;
  phase.label = "malformed";
  phase.mode = machine::PhaseMode::kSerial;
  phase.programs.push_back(halt_program("fault-inv-0"));
  phase.programs.push_back(halt_program("fault-inv-1"));
  prog.phases.push_back(std::move(phase));
  return prog;
}

std::optional<std::string> FaultInvariantWorkload::verify(
    const func::FuncMemory&) const {
  return std::nullopt;  // unreachable: build() never survives run_phase
}

bool FaultInvariantWorkload::supports(Variant::Kind kind) const {
  return kind == Variant::Kind::kBase;
}

// --- fault.barrier ---------------------------------------------------------

void FaultBarrierWorkload::init_memory(func::FuncMemory&) const {}

machine::ParallelProgram FaultBarrierWorkload::build(
    const Variant& variant) const {
  unsigned nthreads = variant.nthreads;
  machine::ParallelProgram prog;
  prog.name = name();
  machine::Phase phase;
  phase.label = "stuck-barrier";
  phase.mode = variant.kind == Variant::Kind::kSuThreads
                   ? machine::PhaseMode::kSuThreads
                   : machine::PhaseMode::kLaneThreads;
  ProgramBuilder waiter("fault-barrier-waiter");
  waiter.barrier();
  waiter.halt();
  phase.programs.push_back(waiter.build());
  for (unsigned t = 1; t < nthreads; ++t)
    phase.programs.push_back(
        halt_program("fault-barrier-deserter" + std::to_string(t)));
  prog.phases.push_back(std::move(phase));
  return prog;
}

std::optional<std::string> FaultBarrierWorkload::verify(
    const func::FuncMemory&) const {
  // Only reachable with one thread, where the barrier releases instantly.
  return std::nullopt;
}

bool FaultBarrierWorkload::supports(Variant::Kind kind) const {
  return kind == Variant::Kind::kLaneThreads ||
         kind == Variant::Kind::kSuThreads;
}

std::vector<std::string> fault_workload_names() {
  return {"fault.verify", "fault.invariant", "fault.barrier"};
}

}  // namespace vlt::workloads
