// Shared conventions for workload kernels.
//
// Register allocation convention used by all workloads (scalar file):
//   s0        always zero by convention (workloads must not write it)
//   s1..s15   loop counters / induction variables
//   s16..s31  addresses and strides
//   s32..s47  scalar temporaries / accumulators
//   s48..s63  thread-private parameters (tid, nthreads, chunk bounds)
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.hpp"
#include "isa/program.hpp"
#include "isa/rvv/rvv.hpp"

namespace vlt::workloads {

// Named registers (see convention above).
inline constexpr RegIdx rZ = 0;  // conventional zero

// --- frontend-dispatching emitters ---
//
// Kernels ported to more than one ISA frontend emit their set-VL and
// unit-stride memory operations through these helpers, which pick the
// spelling matching the builder's ISA tag (ProgramBuilder::set_isa). For
// the seed VLT frontend they emit exactly the instructions the kernels
// always emitted, so VLT instruction streams stay byte-identical.

/// setvl rd, rs1 (VLT) / vsetvli rd, rs1, e64m1 (RVV — vsetvl's clamp to
/// VLMAX matches VLT's clamp to MAXVL; negative counts never reach the
/// RVV form because strip-mined counters are element counts >= 0).
inline void vec_setvl(isa::ProgramBuilder& b, RegIdx rd, RegIdx rs1) {
  if (b.isa() == IsaId::kRvv)
    b.vsetvli(rd, rs1, isa::rvv::kVtypeE64M1);
  else
    b.setvl(rd, rs1);
}

/// setvlmax rd (VLT) / vsetvli rd, x0, e64m1 (RVV: rs1 == x0 with a
/// non-x0 rd requests VLMAX per the AVL rules).
inline void vec_setvlmax(isa::ProgramBuilder& b, RegIdx rd) {
  if (b.isa() == IsaId::kRvv)
    b.vsetvli(rd, rZ, isa::rvv::kVtypeE64M1);
  else
    b.setvlmax(rd);
}

/// vload (VLT) / vle64.v (RVV) — identical unit-stride addressing.
inline void vec_load(isa::ProgramBuilder& b, RegIdx vd, RegIdx base,
                     std::int32_t off = 0, std::uint8_t fl = 0) {
  if (b.isa() == IsaId::kRvv)
    b.vle64(vd, base, off, fl);
  else
    b.vload(vd, base, off, fl);
}

/// vstore (VLT) / vse64.v (RVV).
inline void vec_store(isa::ProgramBuilder& b, RegIdx vdata, RegIdx base,
                      std::int32_t off = 0, std::uint8_t fl = 0) {
  if (b.isa() == IsaId::kRvv)
    b.vse64(vdata, base, off, fl);
  else
    b.vstore(vdata, base, off, fl);
}

/// Emits a strip-mined vector loop:
///
///   for (n = total; n > 0; n -= vl) { vl = setvl(n); body(); bump bases; }
///
/// `counter` holds the remaining element count (clobbered), `vl_reg`
/// receives the active VL each iteration, and each register in `bases`
/// advances by 8*vl bytes per iteration. The body must not clobber
/// `counter`, `vl_reg`, or `scratch`.
template <typename Body>
void strip_mine(isa::ProgramBuilder& b, RegIdx counter, RegIdx vl_reg,
                RegIdx scratch, std::initializer_list<RegIdx> bases,
                Body&& body) {
  auto loop = b.label();
  auto done = b.label();
  b.bind(loop);
  b.beq(counter, rZ, done);
  vec_setvl(b, vl_reg, counter);
  body();
  b.sub(counter, counter, vl_reg);
  b.slli(scratch, vl_reg, 3);  // vl * 8 bytes
  for (RegIdx base : bases) b.add(base, base, scratch);
  b.jump(loop);
  b.bind(done);
}

/// Emits a plain counted scalar loop: body() runs `count` times; `idx`
/// counts 0..count-1; `limit` holds the bound (both clobbered).
template <typename Body>
void counted_loop(isa::ProgramBuilder& b, RegIdx idx, RegIdx limit,
                  std::int64_t count, Body&& body) {
  b.li(idx, 0);
  b.li(limit, count);
  auto loop = b.label();
  auto done = b.label();
  b.bind(loop);
  b.bge(idx, limit, done);
  body();
  b.addi(idx, idx, 1);
  b.jump(loop);
  b.bind(done);
}

/// Computes this thread's [begin, end) slice of `total` items split as
/// evenly as possible across threads (host-side mirror of the kernels'
/// own chunking).
struct ChunkRange {
  std::int64_t begin;
  std::int64_t end;
};
inline ChunkRange chunk_of(std::int64_t total, unsigned tid,
                           unsigned nthreads) {
  std::int64_t per = total / nthreads;
  std::int64_t extra = total % nthreads;
  std::int64_t begin = per * tid + std::min<std::int64_t>(tid, extra);
  std::int64_t len = per + (tid < static_cast<unsigned>(extra) ? 1 : 0);
  return {begin, begin + len};
}

}  // namespace vlt::workloads
