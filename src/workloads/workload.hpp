// Workload interface: each of the paper's nine applications provides a
// memory image, phase-structured programs for every execution variant,
// and a golden check of the results.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "func/memory.hpp"
#include "isa/isa.hpp"
#include "machine/phase.hpp"

namespace vlt::workloads {

struct Variant {
  enum class Kind {
    kBase,           // single thread, all lanes (paper's base runs)
    kVectorThreads,  // VLT with `nthreads` vector threads (§4)
    kLaneThreads,    // VLT with `nthreads` scalar threads on lanes (§5)
    kSuThreads,      // `nthreads` scalar threads on the scalar units (CMT)
  };
  Kind kind = Kind::kBase;
  unsigned nthreads = 1;

  static Variant base() { return {Kind::kBase, 1}; }
  static Variant vector_threads(unsigned n) {
    return {Kind::kVectorThreads, n};
  }
  static Variant lane_threads(unsigned n) { return {Kind::kLaneThreads, n}; }
  static Variant su_threads(unsigned n) { return {Kind::kSuThreads, n}; }

  std::string to_string() const;

  /// Parses both the CLI shorthand ("base", "vlt4", "lanes8", "su2") and
  /// the canonical to_string() form ("vlt-4vt", "vlt-8lane", "su-2t").
  /// On failure returns nullopt and, when given, sets `error` to a message
  /// naming the accepted spellings. The single shared parser for every
  /// tool, bench, and example.
  static std::optional<Variant> parse(const std::string& text,
                                      std::string* error = nullptr);

  /// Human-readable summary of the accepted spellings, for usage text.
  static std::string spec_help();

  friend bool operator==(const Variant& a, const Variant& b) {
    return a.kind == b.kind && a.nthreads == b.nthreads;
  }
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Writes the input data segment into simulated memory.
  virtual void init_memory(func::FuncMemory& mem) const = 0;

  /// Builds the phase list for the requested variant. Serial phases are
  /// identical across variants; parallel phases are decomposed over
  /// `variant.nthreads` threads.
  virtual machine::ParallelProgram build(const Variant& variant) const = 0;

  /// Builds the phase list against a specific ISA frontend. The base
  /// implementation forwards kVlt to build(variant) and rejects every
  /// other frontend with SimError(kConfig); workloads with an RVV port
  /// override it (and supports_isa) instead of the single-arg build.
  virtual machine::ParallelProgram build(const Variant& variant,
                                         IsaId isa) const;

  /// ISA frontends this workload has kernels for. Matches build(variant,
  /// isa): the default is the seed VLT frontend only.
  virtual bool supports_isa(IsaId isa) const { return isa == IsaId::kVlt; }

  /// Checks the simulated memory image against a host-computed golden
  /// result; returns an error description on mismatch.
  virtual std::optional<std::string> verify(
      const func::FuncMemory& mem) const = 0;

  /// Variants the workload supports (e.g. scalar apps have no vector-thread
  /// decomposition).
  virtual bool supports(Variant::Kind kind) const = 0;
};

using WorkloadPtr = std::unique_ptr<Workload>;

/// Factory for the nine applications of Table 4. Sizes are the default
/// "paper" configurations used by the benches. Throws SimError(kConfig)
/// on an unknown name; CLIs validating user input use find_workload().
WorkloadPtr make_workload(const std::string& name);
/// Like make_workload, but returns nullptr for an unknown name. Also
/// resolves the fault-injection workloads (workloads/fault_injection.hpp),
/// which workload_names() deliberately omits.
WorkloadPtr find_workload(const std::string& name);
std::vector<std::string> workload_names();        // all nine
std::vector<std::string> vector_thread_apps();    // mpenc trfd multprec bt
std::vector<std::string> scalar_thread_apps();    // radix ocean barnes
std::vector<std::string> long_vector_apps();      // mxm sage

}  // namespace vlt::workloads
