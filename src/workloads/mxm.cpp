#include "workloads/mxm.hpp"

#include "common/log.hpp"
#include "workloads/kernel_util.hpp"

namespace vlt::workloads {

using isa::ProgramBuilder;

MxmWorkload::MxmWorkload(unsigned m, unsigned k) : m_(m), k_(k) {
  func::AddressAllocator alloc;
  a_addr_ = alloc.alloc_words(std::size_t{m_} * k_);
  b_addr_ = alloc.alloc_words(std::size_t{k_} * kN);
  c_addr_ = alloc.alloc_words(std::size_t{m_} * kN);

  a_.resize(std::size_t{m_} * k_);
  b_.resize(std::size_t{k_} * kN);
  for (unsigned i = 0; i < m_; ++i)
    for (unsigned j = 0; j < k_; ++j)
      a_[i * k_ + j] = static_cast<double>((i * 7 + j * 3) % 11) - 5.0;
  for (unsigned i = 0; i < k_; ++i)
    for (unsigned j = 0; j < kN; ++j)
      b_[i * kN + j] = static_cast<double>((i * 5 + j) % 13) - 6.0;

  // Golden result, accumulated in the same (k-ascending) order as the
  // kernel so the comparison is bit-exact.
  golden_c_.assign(std::size_t{m_} * kN, 0.0);
  for (unsigned i = 0; i < m_; ++i)
    for (unsigned p = 0; p < k_; ++p)
      for (unsigned j = 0; j < kN; ++j)
        golden_c_[i * kN + j] += a_[i * k_ + p] * b_[p * kN + j];
}

void MxmWorkload::init_memory(func::FuncMemory& mem) const {
  mem.write_block_f64(a_addr_, a_);
  mem.write_block_f64(b_addr_, b_);
}

machine::ParallelProgram MxmWorkload::build(const Variant& variant) const {
  return build(variant, IsaId::kVlt);
}

machine::ParallelProgram MxmWorkload::build(const Variant& variant,
                                            IsaId isa) const {
  VLT_CHECK(variant.kind == Variant::Kind::kBase,
            "mxm runs only as the base single-thread variant");

  ProgramBuilder b("mxm");
  b.set_isa(isa);
  // s1 = i, s2 = p, s16 = &A[i][p], s17 = &B[p][:], s18 = &C[i][:],
  // s33 = k bound, s32 = A element.
  constexpr RegIdx i = 1, p = 2, vl = 3, aP = 16, bP = 17, cP = 18,
                   aRow = 19, kB = 33, av = 32;
  vec_setvlmax(b, vl);
  b.li(aRow, static_cast<std::int64_t>(a_addr_));
  b.li(cP, static_cast<std::int64_t>(c_addr_));
  b.li(kB, k_);
  counted_loop(b, i, 40, m_, [&] {
    b.vbcast(2, rZ);  // v2 = C-row accumulator, zeroed
    b.mov(aP, aRow);
    b.li(bP, static_cast<std::int64_t>(b_addr_));
    b.li(p, 0);
    auto loop = b.label();
    b.bind(loop);
    b.load(av, aP);
    vec_load(b, 1, bP);      // v1 = B[p][:]
    b.vfma(2, 1, av, isa::kFlagSrc2Scalar);
    b.addi(aP, aP, 8);
    b.addi(bP, bP, kN * 8);
    b.addi(p, p, 1);
    b.blt(p, kB, loop);
    vec_store(b, 2, cP);
    b.addi(cP, cP, kN * 8);
    b.addi(aRow, aRow, static_cast<std::int32_t>(k_ * 8));
  });
  b.halt();

  machine::ParallelProgram prog;
  prog.name = name();
  machine::Phase phase;
  phase.label = "matmul";
  phase.mode = machine::PhaseMode::kSerial;
  phase.vlt_opportunity = false;  // long vectors: no VLT upside (Table 4)
  phase.programs.push_back(b.build());
  prog.phases.push_back(std::move(phase));
  return prog;
}

std::optional<std::string> MxmWorkload::verify(
    const func::FuncMemory& mem) const {
  std::vector<double> got = mem.read_block_f64(c_addr_, golden_c_.size());
  for (std::size_t i = 0; i < golden_c_.size(); ++i)
    if (got[i] != golden_c_[i])
      return "mxm: C[" + std::to_string(i) + "] = " + std::to_string(got[i]) +
             ", expected " + std::to_string(golden_c_[i]);
  return std::nullopt;
}

}  // namespace vlt::workloads
