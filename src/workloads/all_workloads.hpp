// Convenience umbrella header for the nine applications of Table 4.
#pragma once

#include "workloads/barnes.hpp"
#include "workloads/bt.hpp"
#include "workloads/mpenc.hpp"
#include "workloads/multprec.hpp"
#include "workloads/mxm.hpp"
#include "workloads/ocean.hpp"
#include "workloads/radix.hpp"
#include "workloads/sage.hpp"
#include "workloads/trfd.hpp"
