#include "workloads/trfd.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"
#include "workloads/kernel_util.hpp"

namespace vlt::workloads {

using isa::ProgramBuilder;

TrfdWorkload::TrfdWorkload(std::vector<unsigned> shell_sizes) {
  func::AddressAllocator alloc;
  Xorshift64 rng(0x7FD0ull);

  std::size_t t_total = 0, x_total = 0;
  for (unsigned s : shell_sizes) {
    Shell sh;
    sh.size = s;
    sh.t_mat = alloc.alloc_words(std::size_t{s} * s);
    sh.x_in = alloc.alloc_words(std::size_t{s} * s);
    sh.y_mid = alloc.alloc_words(std::size_t{s} * s);
    sh.z_out = alloc.alloc_words(std::size_t{s} * s);
    shells_.push_back(sh);
    t_total += std::size_t{s} * s;
    x_total += std::size_t{s} * s;
  }
  t_data_.resize(t_total);
  x_data_.resize(x_total);
  for (auto& v : t_data_) v = (static_cast<double>(rng.next_below(9)) - 4.0) * 0.125;
  for (auto& v : x_data_) v = (static_cast<double>(rng.next_below(11)) - 5.0) * 0.25;

  // Golden: z = T * (T * x), accumulated in ascending-b order per element
  // to match the kernel's FP evaluation order exactly.
  std::size_t off = 0;
  for (const Shell& sh : shells_) {
    unsigned s = sh.size;
    const double* T = &t_data_[off];
    const double* X = &x_data_[off];
    std::vector<double> y(std::size_t{s} * s, 0.0), z(std::size_t{s} * s, 0.0);
    for (unsigned a = 0; a < s; ++a)
      for (unsigned bq = 0; bq < s; ++bq)
        for (unsigned j = 0; j < s; ++j)
          y[a * s + j] += T[a * s + bq] * X[bq * s + j];
    for (unsigned a = 0; a < s; ++a)
      for (unsigned bq = 0; bq < s; ++bq)
        for (unsigned j = 0; j < s; ++j)
          z[a * s + j] += T[a * s + bq] * y[bq * s + j];
    golden_z_.push_back(std::move(z));
    off += std::size_t{s} * s;
  }
}

void TrfdWorkload::init_memory(func::FuncMemory& mem) const {
  std::size_t off = 0;
  for (const Shell& sh : shells_) {
    std::size_t n = std::size_t{sh.size} * sh.size;
    mem.write_block_f64(sh.t_mat, {t_data_.begin() + off, n});
    mem.write_block_f64(sh.x_in, {x_data_.begin() + off, n});
    off += n;
  }
}

// One transformation pass over every shell: out[a][:] = sum_b T[a][b]*in[b][:].
// The a-loop of each shell is split across threads; T addresses use
// multiply-based indexing, reproducing the scalar-heavy address arithmetic
// of the Fortran original (and the paper's 73% vectorization).
isa::Program TrfdWorkload::pass_program(unsigned tid, unsigned nthreads,
                                        unsigned pass, IsaId isa) const {
  ProgramBuilder b("trfd-p" + std::to_string(pass) + "-t" +
                   std::to_string(tid));
  b.set_isa(isa);
  constexpr RegIdx a = 1, bq = 2, n = 3, vl = 4, scr = 5, aEnd = 6, s = 7,
                   off = 8, tP = 16, inRow = 19, outPos = 20, tv = 33,
                   rowBytes = 9;

  for (std::size_t si = 0; si < shells_.size(); ++si) {
    const Shell& sh = shells_[si];
    Addr in = pass == 0 ? sh.x_in : sh.y_mid;
    Addr out = pass == 0 ? sh.y_mid : sh.z_out;
    auto range = chunk_of(sh.size, tid, nthreads);
    if (range.begin >= range.end) continue;

    b.li(s, sh.size);
    b.li(rowBytes, sh.size * 8);
    b.li(a, range.begin);
    b.li(aEnd, range.end);
    auto a_top = b.label();
    auto a_done = b.label();
    b.bind(a_top);
    b.bge(a, aEnd, a_done);
    // Strip-mine the row dimension (full row in one chunk on the base
    // machine; clamped to the partition MAXVL under VLT).
    b.li(off, 0);  // byte offset into the row
    b.li(n, sh.size);
    auto strip_top = b.label();
    auto strip_done = b.label();
    b.bind(strip_top);
    b.beq(n, rZ, strip_done);
    vec_setvl(b, vl, n);
    b.vbcast(2, rZ);  // accumulator row chunk
    b.li(bq, 0);
    auto b_top = b.label();
    b.bind(b_top);
    // t = T[a][bq] via computed (multiply-based) indexing.
    b.mul(scr, a, s);
    b.add(scr, scr, bq);
    b.slli(scr, scr, 3);
    b.li(tP, static_cast<std::int64_t>(sh.t_mat));
    b.add(tP, tP, scr);
    b.load(tv, tP);
    // in[bq][chunk]
    b.mul(inRow, bq, rowBytes);
    b.li(scr, static_cast<std::int64_t>(in));
    b.add(inRow, inRow, scr);
    b.add(inRow, inRow, off);
    vec_load(b, 1, inRow);
    b.vfma(2, 1, tv, isa::kFlagSrc2Scalar);
    b.addi(bq, bq, 1);
    b.blt(bq, s, b_top);
    // out[a][chunk]
    b.mul(outPos, a, rowBytes);
    b.li(scr, static_cast<std::int64_t>(out));
    b.add(outPos, outPos, scr);
    b.add(outPos, outPos, off);
    vec_store(b, 2, outPos);
    b.sub(n, n, vl);
    b.slli(scr, vl, 3);
    b.add(off, off, scr);
    b.jump(strip_top);
    b.bind(strip_done);
    b.addi(a, a, 1);
    b.jump(a_top);
    b.bind(a_done);
  }
  b.halt();
  return b.build();
}

machine::ParallelProgram TrfdWorkload::build(const Variant& variant) const {
  return build(variant, IsaId::kVlt);
}

machine::ParallelProgram TrfdWorkload::build(const Variant& variant,
                                             IsaId isa) const {
  unsigned nthreads =
      variant.kind == Variant::Kind::kBase ? 1 : variant.nthreads;
  VLT_CHECK(supports(variant.kind), "unsupported trfd variant");

  machine::ParallelProgram prog;
  prog.name = name();
  for (unsigned pass = 0; pass < 2; ++pass) {
    machine::Phase phase;
    phase.label = "transform-pass-" + std::to_string(pass);
    phase.mode = nthreads == 1 ? machine::PhaseMode::kSerial
                               : machine::PhaseMode::kVectorThreads;
    phase.vlt_opportunity = true;
    for (unsigned t = 0; t < nthreads; ++t)
      phase.programs.push_back(pass_program(t, nthreads, pass, isa));
    prog.phases.push_back(std::move(phase));
  }
  return prog;
}

std::optional<std::string> TrfdWorkload::verify(
    const func::FuncMemory& mem) const {
  for (std::size_t si = 0; si < shells_.size(); ++si) {
    const Shell& sh = shells_[si];
    auto got = mem.read_block_f64(sh.z_out, golden_z_[si].size());
    for (std::size_t k = 0; k < got.size(); ++k)
      if (got[k] != golden_z_[si][k])
        return "trfd: shell " + std::to_string(si) + " z[" +
               std::to_string(k) + "] mismatch";
  }
  return std::nullopt;
}

}  // namespace vlt::workloads
