#include "workloads/workload.hpp"

namespace vlt::workloads {

std::string Variant::to_string() const {
  switch (kind) {
    case Kind::kBase:
      return "base";
    case Kind::kVectorThreads:
      return "vlt-" + std::to_string(nthreads) + "vt";
    case Kind::kLaneThreads:
      return "vlt-" + std::to_string(nthreads) + "lane";
    case Kind::kSuThreads:
      return "su-" + std::to_string(nthreads) + "t";
  }
  return "?";
}

}  // namespace vlt::workloads
