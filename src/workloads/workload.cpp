#include "workloads/workload.hpp"

#include "common/log.hpp"

namespace vlt::workloads {

machine::ParallelProgram Workload::build(const Variant& variant,
                                         IsaId isa) const {
  if (isa == IsaId::kVlt) return build(variant);
  VLT_FAIL(ErrorKind::kConfig,
           name() + " has no port to the " +
               std::string(isa::isa_name(isa)) + " ISA frontend");
}

std::string Variant::to_string() const {
  switch (kind) {
    case Kind::kBase:
      return "base";
    case Kind::kVectorThreads:
      return "vlt-" + std::to_string(nthreads) + "vt";
    case Kind::kLaneThreads:
      return "vlt-" + std::to_string(nthreads) + "lane";
    case Kind::kSuThreads:
      return "su-" + std::to_string(nthreads) + "t";
  }
  return "?";
}

namespace {

/// Parses the decimal thread count following a variant prefix, optionally
/// requiring a trailing suffix ("vlt-4vt" style). Thread counts are kept
/// within the widest machine this repo models (16-lane, 8 threads = 64).
bool parse_count(const std::string& text, std::size_t prefix_len,
                 const char* suffix, unsigned& out) {
  std::size_t suffix_len = std::string(suffix).size();
  if (text.size() < suffix_len) return false;
  std::size_t end = text.size() - suffix_len;
  if (end <= prefix_len || text.compare(end, std::string::npos, suffix) != 0)
    return false;
  unsigned n = 0;
  for (std::size_t i = prefix_len; i < end; ++i) {
    char c = text[i];
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<unsigned>(c - '0');
    if (n > 64) return false;
  }
  if (n == 0) return false;
  out = n;
  return true;
}

}  // namespace

std::optional<Variant> Variant::parse(const std::string& text,
                                      std::string* error) {
  unsigned n = 0;
  if (text == "base") return base();
  if (parse_count(text, 3, "", n) && text.rfind("vlt", 0) == 0)
    return vector_threads(n);
  if (parse_count(text, 4, "vt", n) && text.rfind("vlt-", 0) == 0)
    return vector_threads(n);
  if (parse_count(text, 5, "", n) && text.rfind("lanes", 0) == 0)
    return lane_threads(n);
  if (parse_count(text, 4, "lane", n) && text.rfind("vlt-", 0) == 0)
    return lane_threads(n);
  if (parse_count(text, 2, "", n) && text.rfind("su", 0) == 0 &&
      text.rfind("su-", 0) != 0)
    return su_threads(n);
  if (parse_count(text, 3, "t", n) && text.rfind("su-", 0) == 0)
    return su_threads(n);
  if (error)
    *error = "unknown variant '" + text + "' (expected " + spec_help() + ")";
  return std::nullopt;
}

std::string Variant::spec_help() {
  return "base, vltN (N vector threads), lanesN (N scalar threads on the "
         "lanes), or suN (N scalar threads on the scalar units)";
}

}  // namespace vlt::workloads
