#include "workloads/stallmark.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"
#include "workloads/kernel_util.hpp"

namespace vlt::workloads {

using isa::ProgramBuilder;

StallmarkWorkload::StallmarkWorkload() {
  func::AddressAllocator alloc;
  data_ = alloc.alloc_words(kChainLines * kLineStrideWords);
  vdata_ = alloc.alloc_words(kVecWords);
  vout_ = alloc.alloc_words(kVecWords);
  out_ = alloc.alloc_words(kMaxThreads);

  Xorshift64 rng(0x57A11ull);
  vdata_words_.resize(kVecWords);
  // Small values so kRounds of accumulation stays far from 64-bit
  // overflow.
  for (auto& v : vdata_words_)
    v = static_cast<std::int64_t>(rng.next() & 0xFFFF);

  golden_vout_.resize(kVecWords);
  for (std::int64_t i = 0; i < kVecWords; ++i)
    golden_vout_[i] = kRounds * vdata_words_[i];

  // The chase checksum sums the word index loaded at every hop; every
  // round replays the same global hop space [0, kTotalHops) — hop k
  // sits at chain position k and loads node_word(k + 1) — regardless
  // of how threads split it, so the per-thread partial sums in out_
  // always total to this.
  golden_total_ = 0;
  for (std::int64_t k = 0; k < kTotalHops; ++k)
    golden_total_ += kRounds * node_word(k + 1);
}

std::int64_t StallmarkWorkload::skew_begin(unsigned tid, unsigned nthreads) {
  const std::int64_t total_weight =
      static_cast<std::int64_t>(nthreads) * (nthreads + 1) / 2;
  const std::int64_t weight_below =
      static_cast<std::int64_t>(tid) * (tid + 1) / 2;
  return kTotalHops * weight_below / total_weight;
}

void StallmarkWorkload::init_memory(func::FuncMemory& mem) const {
  // Each chain node holds the word index of its successor; only these
  // kChainLines words of the 64 MiB span are ever touched.
  for (std::int64_t k = 0; k < kChainLines; ++k)
    mem.write_i64(data_ + 8 * node_word(k), node_word(k + 1));
  mem.write_block_i64(vdata_, vdata_words_);
}

isa::Program StallmarkWorkload::worker_program(unsigned tid,
                                               unsigned nthreads) const {
  ProgramBuilder b("stallmark-w" + std::to_string(tid));
  constexpr RegIdx j = 1, jEnd = 2, round = 3, rounds = 4, nvec = 5, vl = 6,
                   scr = 7, dataP = 16, outP = 17, vinP = 18, voutP = 19,
                   addr = 20, acc = 33, idx = 34, tmp = 35;

  const std::int64_t k_begin = skew_begin(tid, nthreads);
  const std::int64_t k_end = skew_begin(tid + 1, nthreads);
  const auto vrange = chunk_of(kVecWords, tid, nthreads);

  b.li(acc, 0);
  b.li(round, 0);
  b.li(rounds, kRounds);
  b.li(dataP, static_cast<std::int64_t>(data_));
  auto round_top = b.label();
  b.bind(round_top);

  // Balanced vector slice: vout[i] += vdata[i], once per round.
  b.li(vinP, static_cast<std::int64_t>(vdata_ + 8 * vrange.begin));
  b.li(voutP, static_cast<std::int64_t>(vout_ + 8 * vrange.begin));
  b.li(nvec, vrange.end - vrange.begin);
  strip_mine(b, nvec, vl, scr, {vinP, voutP}, [&] {
    b.vload(1, voutP);
    b.vload(2, vinP);
    b.vadd(3, 1, 2);
    b.vstore(3, voutP);
  });
  b.membar();  // next round re-reads vout; barrier needs stores visible

  // Skewed chase: this thread's share of the round's global hops
  // [k_begin, k_end). Every hop loads the next hop's word index, so
  // the misses cannot overlap; the start index is an immediate because
  // the chase restarts at position 0 each round and the split points
  // are known at build time. What the core cannot shortcut is the
  // loads themselves — each address exists only inside the previous
  // line.
  auto hop_top = b.label();
  auto hop_done = b.label();
  b.li(idx, node_word(k_begin));
  b.li(j, 0);
  b.li(jEnd, k_end - k_begin);
  b.bind(hop_top);
  b.bge(j, jEnd, hop_done);
  b.slli(tmp, idx, 3);
  b.add(addr, tmp, dataP);
  b.load(idx, addr);  // idx <- node_word(pos + 1): the serializing hop
  b.add(acc, acc, idx);
  b.addi(j, j, 1);
  b.jump(hop_top);
  b.bind(hop_done);

  b.barrier();  // light threads idle here while the heavy ones chase
  b.addi(round, round, 1);
  b.blt(round, rounds, round_top);

  b.li(outP, static_cast<std::int64_t>(out_ + 8 * tid));
  b.store(outP, acc);
  b.halt();
  return b.build();
}

machine::ParallelProgram StallmarkWorkload::build(
    const Variant& variant) const {
  unsigned nthreads =
      variant.kind == Variant::Kind::kBase ? 1 : variant.nthreads;
  VLT_CHECK(supports(variant.kind), "unsupported stallmark variant");
  VLT_CHECK(nthreads <= kMaxThreads, "stallmark thread count too large");

  machine::ParallelProgram prog;
  prog.name = name();

  machine::Phase walk;
  walk.label = "stall-rounds";
  walk.mode = nthreads == 1 ? machine::PhaseMode::kSerial
                            : machine::PhaseMode::kVectorThreads;
  walk.vlt_opportunity = true;
  for (unsigned t = 0; t < nthreads; ++t)
    walk.programs.push_back(worker_program(t, nthreads));
  prog.phases.push_back(std::move(walk));
  return prog;
}

std::optional<std::string> StallmarkWorkload::verify(
    const func::FuncMemory& mem) const {
  auto vout = mem.read_block_i64(vout_, golden_vout_.size());
  for (std::size_t i = 0; i < golden_vout_.size(); ++i)
    if (vout[i] != golden_vout_[i])
      return "stallmark: vout[" + std::to_string(i) + "] mismatch";
  // Per-thread partial sums land in out_[tid]; unused slots read as zero,
  // so the total is the same for every thread split.
  std::int64_t total = 0;
  for (unsigned t = 0; t < kMaxThreads; ++t)
    total += mem.read_i64(out_ + 8 * t);
  if (total != golden_total_)
    return "stallmark: strided-walk checksum mismatch (" +
           std::to_string(total) + " vs " + std::to_string(golden_total_) +
           ")";
  return std::nullopt;
}

}  // namespace vlt::workloads
