// trfd: two-electron integral transformation stand-in (PERFECT club;
// Table 4: 73% vectorized, avg VL 22.7, common VLs 4/20/30/35, 99% VLT
// opportunity).
//
// The transformation processes orbital "shells" whose sizes follow the
// paper's common vector lengths; each shell applies a dense transform
// T * X twice (two passes), with heavy scalar index arithmetic between
// vector operations, as the Fortran original exhibits. The outer row loop
// of every shell is split across VLT threads; a barrier separates the two
// passes.
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace vlt::workloads {

class TrfdWorkload : public Workload {
 public:
  /// `shell_sizes` defaults to the paper's common-VL mix with mean ~22.7.
  explicit TrfdWorkload(std::vector<unsigned> shell_sizes = {
                            4, 4, 4, 20, 20, 20, 20, 20, 20, 20, 30, 35});

  std::string name() const override { return "trfd"; }
  void init_memory(func::FuncMemory& mem) const override;
  machine::ParallelProgram build(const Variant& variant) const override;
  machine::ParallelProgram build(const Variant& variant,
                                 IsaId isa) const override;
  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override;
  bool supports(Variant::Kind kind) const override {
    return kind == Variant::Kind::kBase ||
           kind == Variant::Kind::kVectorThreads;
  }
  bool supports_isa(IsaId /*isa*/) const override { return true; }

 private:
  isa::Program pass_program(unsigned tid, unsigned nthreads, unsigned pass,
                            IsaId isa) const;

  struct Shell {
    unsigned size;
    Addr t_mat;  // size x size transform coefficients
    Addr x_in;   // size x size data (pass 1 input)
    Addr y_mid;  // pass 1 output / pass 2 input
    Addr z_out;  // pass 2 output
  };

  std::vector<Shell> shells_;
  std::vector<double> t_data_, x_data_;
  std::vector<std::vector<double>> golden_z_;
};

}  // namespace vlt::workloads
