#include "workloads/sage.hpp"

#include "common/log.hpp"
#include "workloads/kernel_util.hpp"

namespace vlt::workloads {

using isa::ProgramBuilder;

SageWorkload::SageWorkload(unsigned height, unsigned width, unsigned sweeps)
    : h_(height), w_(width), sweeps_(sweeps) {
  VLT_CHECK(h_ >= 3 && w_ >= 3, "grid too small for a 5-point stencil");
  func::AddressAllocator alloc;
  a_addr_ = alloc.alloc_words(std::size_t{h_} * w_);
  b_addr_ = alloc.alloc_words(std::size_t{h_} * w_);

  init_.resize(std::size_t{h_} * w_);
  for (unsigned i = 0; i < h_; ++i)
    for (unsigned j = 0; j < w_; ++j)
      init_[i * w_ + j] = static_cast<double>((i * 13 + j * 7) % 17) * 0.25;

  // Golden: sweeps of out[i][j] = ((l+r) + (u+d)) * 0.25 on the interior,
  // ping-ponging between the two buffers, matching the kernel's FP order.
  std::vector<double> in = init_, out = init_;
  for (unsigned s = 0; s < sweeps_; ++s) {
    for (unsigned i = 1; i + 1 < h_; ++i)
      for (unsigned j = 1; j + 1 < w_; ++j) {
        double lr = in[i * w_ + j - 1] + in[i * w_ + j + 1];
        double ud = in[(i - 1) * w_ + j] + in[(i + 1) * w_ + j];
        out[i * w_ + j] = (lr + ud) * 0.25;
      }
    std::swap(in, out);
  }
  golden_ = in;  // result of the last sweep
}

void SageWorkload::init_memory(func::FuncMemory& mem) const {
  mem.write_block_f64(a_addr_, init_);
  mem.write_block_f64(b_addr_, init_);
}

machine::ParallelProgram SageWorkload::build(const Variant& variant) const {
  VLT_CHECK(variant.kind == Variant::Kind::kBase,
            "sage runs only as the base single-thread variant");

  ProgramBuilder b("sage");
  // s1=sweep, s2=i, s3=n, s4=vl, s5=scratch, s6=row bound,
  // s16=&in[i][1], s17=&out[i][1], s20=in base, s21=out base, s22=swap tmp,
  // s32=0.25.
  constexpr RegIdx sw = 1, i = 2, n = 3, vl = 4, scr = 5, hb = 6, inP = 16,
                   outP = 17, inB = 20, outB = 21, tmp = 22, quarter = 32;
  const std::int32_t row_bytes = static_cast<std::int32_t>(w_ * 8);

  b.li_f64(quarter, 0.25);
  b.li(inB, static_cast<std::int64_t>(a_addr_));
  b.li(outB, static_cast<std::int64_t>(b_addr_));
  b.li(sw, sweeps_);
  auto sweep_top = b.label();
  b.bind(sweep_top);
  b.li(i, 1);
  b.li(hb, h_ - 1);
  b.addi(inP, inB, row_bytes + 8);    // &in[1][1]
  b.addi(outP, outB, row_bytes + 8);  // &out[1][1]
  auto row_top = b.label();
  auto rows_done = b.label();
  b.bind(row_top);
  b.bge(i, hb, rows_done);
  b.li(n, w_ - 2);
  strip_mine(b, n, vl, scr, {inP, outP}, [&] {
    b.vload(1, inP, -8);          // left
    b.vload(2, inP, 8);           // right
    b.vfadd(1, 1, 2);             // l + r
    b.vload(2, inP, -row_bytes);  // up
    b.vload(3, inP, row_bytes);   // down
    b.vfadd(2, 2, 3);             // u + d
    b.vfadd(1, 1, 2);
    b.vfmul(1, 1, quarter, isa::kFlagSrc2Scalar);
    b.vstore(1, outP);
  });
  b.addi(inP, inP, 16);  // skip right border + next row's left border
  b.addi(outP, outP, 16);
  b.addi(i, i, 1);
  b.jump(row_top);
  b.bind(rows_done);
  // Swap buffers and iterate; in-flight stores must land before the next
  // sweep reads them.
  b.membar();
  b.mov(tmp, inB);
  b.mov(inB, outB);
  b.mov(outB, tmp);
  b.addi(sw, sw, -1);
  b.bne(sw, 0, sweep_top);
  b.halt();

  machine::ParallelProgram prog;
  prog.name = name();
  machine::Phase phase;
  phase.label = "stencil-sweeps";
  phase.mode = machine::PhaseMode::kSerial;
  phase.vlt_opportunity = false;
  phase.programs.push_back(b.build());
  prog.phases.push_back(std::move(phase));
  return prog;
}

std::optional<std::string> SageWorkload::verify(
    const func::FuncMemory& mem) const {
  // The final sweep's output lives in buffer A for even sweep counts,
  // buffer B for odd.
  Addr result = (sweeps_ % 2 == 0) ? a_addr_ : b_addr_;
  std::vector<double> got = mem.read_block_f64(result, golden_.size());
  for (std::size_t k = 0; k < golden_.size(); ++k)
    if (got[k] != golden_[k])
      return "sage: grid[" + std::to_string(k) + "] = " +
             std::to_string(got[k]) + ", expected " +
             std::to_string(golden_[k]);
  return std::nullopt;
}

}  // namespace vlt::workloads
