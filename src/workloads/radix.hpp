// radix: LSD radix sort (Table 4: 6% vectorized, avg VL 62.3, 90% VLT
// opportunity).
//
// A short vectorized key-preparation pass (VL 64 strips — radix's only
// vector content, ~6% of operations) followed by the classic SPMD sort:
// per-pass local histograms, a serial prefix scan on thread 0, and a
// stable permute, with barriers between steps. The sort loops are scalar
// with little ILP (load -> digit -> counter update chains), the code the
// paper runs as 8 scalar threads on the vector lanes (§5).
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace vlt::workloads {

class RadixWorkload : public Workload {
 public:
  explicit RadixWorkload(unsigned keys = 16384);

  std::string name() const override { return "radix"; }
  void init_memory(func::FuncMemory& mem) const override;
  machine::ParallelProgram build(const Variant& variant) const override;
  machine::ParallelProgram build(const Variant& variant,
                                 IsaId isa) const override;
  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override;
  bool supports(Variant::Kind kind) const override {
    return kind == Variant::Kind::kBase ||
           kind == Variant::Kind::kLaneThreads ||
           kind == Variant::Kind::kSuThreads;
  }
  bool supports_isa(IsaId /*isa*/) const override { return true; }

 private:
  static constexpr unsigned kRadix = 64;    // 6-bit digits
  static constexpr unsigned kPasses = 3;    // covers the 16-bit keys
  static constexpr unsigned kMaxThreads = 8;

  isa::Program init_program(bool vectorized, IsaId isa) const;
  isa::Program sort_program(unsigned tid, unsigned nthreads, IsaId isa) const;

  unsigned n_;
  Addr raw_, buf_a_, buf_b_, hist_, offs_, sums_, base_;
  std::vector<std::int64_t> raw_keys_;
  std::vector<std::int64_t> golden_sorted_;
};

}  // namespace vlt::workloads
