// mxm: dense matrix multiply (Table 4: 96% vectorized, VL 64 throughout).
//
// C[m][64] = A[m][k] * B[k][64]; the inner loop over columns of C is
// vectorized at full hardware vector length, so mxm scales almost linearly
// with lanes (Figure 1) and offers no VLT opportunity.
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace vlt::workloads {

class MxmWorkload : public Workload {
 public:
  explicit MxmWorkload(unsigned m = 48, unsigned k = 48);

  std::string name() const override { return "mxm"; }
  void init_memory(func::FuncMemory& mem) const override;
  machine::ParallelProgram build(const Variant& variant) const override;
  machine::ParallelProgram build(const Variant& variant,
                                 IsaId isa) const override;
  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override;
  bool supports(Variant::Kind kind) const override {
    return kind == Variant::Kind::kBase;
  }
  bool supports_isa(IsaId /*isa*/) const override { return true; }

 private:
  static constexpr unsigned kN = 64;  // C width = hardware max VL
  unsigned m_;
  unsigned k_;
  Addr a_addr_, b_addr_, c_addr_;
  std::vector<double> a_, b_, golden_c_;
};

}  // namespace vlt::workloads
