// barnes: Barnes-Hut galaxy simulation stand-in (SPLASH-2; Table 4: not
// vectorizable, 98% VLT opportunity).
//
// A host-built quadtree over random 2-D bodies; the simulated kernel runs
// the force-calculation tree walk (the dominant phase of barnes) with an
// explicit stack, dependent pointer chasing, and a long FP chain
// (sqrt/divide) per visited node. Top-of-tree nodes are revisited by
// every body, so the scalar unit's L1 keeps them close while lane cores
// pay the L2 latency on every access — together with the in-order stall
// on each chain, this is why barnes gains nothing from 8 lane threads
// versus the 2-core SMT CMP (paper §7.2, Figure 6).
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace vlt::workloads {

class BarnesWorkload : public Workload {
 public:
  explicit BarnesWorkload(unsigned bodies = 256);

  std::string name() const override { return "barnes"; }
  void init_memory(func::FuncMemory& mem) const override;
  machine::ParallelProgram build(const Variant& variant) const override;
  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override;
  bool supports(Variant::Kind kind) const override {
    return kind == Variant::Kind::kBase ||
           kind == Variant::Kind::kLaneThreads ||
           kind == Variant::Kind::kSuThreads;
  }

 private:
  static constexpr unsigned kNodeWords = 8;  // mass cx cy size2 c0..c3
  static constexpr unsigned kStackSlots = 192;
  static constexpr unsigned kMaxThreads = 8;

  struct Node {
    double mass = 0, cx = 0, cy = 0, size2 = 0;
    int child[4] = {-1, -1, -1, -1};
    int body = -1;
  };

  isa::Program walk_program(unsigned tid, unsigned nthreads) const;
  int insert(int node, double x, double y, double cx, double cy, double half,
             int body);
  void insert_child(int node, double x, double y, double cx, double cy,
                    double half, int body);
  void aggregate(int node);

  unsigned nb_;
  Addr nodes_, bx_, by_, fx_, fy_, stacks_;
  std::vector<Node> tree_;
  std::vector<double> pos_x_, pos_y_, mass_;
  std::vector<double> golden_fx_, golden_fy_;
};

}  // namespace vlt::workloads
