// bt: NAS block-tridiagonal stand-in (Table 4: 46% vectorized, avg VL 7.0,
// common VLs 5/10/12, 70% VLT opportunity).
//
// A grid of lines, each a chain of cells carrying a 5x5 block matrix and a
// 5-vector. Per sweep, every cell runs scalar pivot/scale glue (abs-max
// over the block diagonal, a reciprocal) followed by a VL-5 block
// matrix-vector update; cell pairs get a VL-10 smoothing pass and every
// line a VL-12 diagonal-residual op. A scalar serial setup phase computes
// per-cell seeds first (the ~30% VLT cannot touch). VLT decomposition:
// lines split across threads.
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace vlt::workloads {

class BtWorkload : public Workload {
 public:
  BtWorkload(unsigned lines = 16, unsigned sweeps = 2);

  std::string name() const override { return "bt"; }
  void init_memory(func::FuncMemory& mem) const override;
  machine::ParallelProgram build(const Variant& variant) const override;
  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override;
  bool supports(Variant::Kind kind) const override {
    return kind == Variant::Kind::kBase ||
           kind == Variant::Kind::kVectorThreads;
  }

 private:
  static constexpr unsigned kCells = 12;  // cells per line (-> VL 12)
  static constexpr unsigned kB = 5;       // block dimension (-> VL 5)

  isa::Program setup_program() const;
  isa::Program sweep_program(unsigned tid, unsigned nthreads) const;

  unsigned lines_, sweeps_;
  Addr amat_, rhs_, x_, seed_, inv_, smooth_, res_;
  std::vector<double> a_data_, rhs_data_, x0_data_;
  std::vector<double> golden_x_, golden_seed_, golden_smooth_, golden_res_;
};

}  // namespace vlt::workloads
