// multprec: multiprecision array arithmetic (Table 4: 71% vectorized,
// avg VL 25.2, common VLs 23/24/64, 81% VLT opportunity).
//
// A batch of base-2^32 bignums of 24 limbs. The parallel phase runs
// several vectorized limb-wise rounds per bignum (VL 24, plus a VL 23
// shifted round) followed by a serial scalar carry-propagation pass over
// the limbs — the classic non-vectorizable recurrence that holds the
// vectorization ratio at ~71%. A final serial normalization phase sweeps
// the flattened limb array at full vector length (VL 64).
// VLT decomposition: bignums split across threads.
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace vlt::workloads {

class MultprecWorkload : public Workload {
 public:
  explicit MultprecWorkload(unsigned bignums = 64);

  std::string name() const override { return "multprec"; }
  void init_memory(func::FuncMemory& mem) const override;
  machine::ParallelProgram build(const Variant& variant) const override;
  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override;
  bool supports(Variant::Kind kind) const override {
    return kind == Variant::Kind::kBase ||
           kind == Variant::Kind::kVectorThreads;
  }

 private:
  static constexpr unsigned kLimbs = 24;
  static constexpr std::int64_t kBase = std::int64_t{1} << 32;

  isa::Program worker_program(unsigned tid, unsigned nthreads) const;
  isa::Program normalize_program() const;

  unsigned count_;
  Addr a_, b_, out_, norm_out_, checksum_out_;
  std::vector<std::int64_t> a_limbs_, b_limbs_;
  std::vector<std::int64_t> golden_out_, golden_norm_;
  std::int64_t golden_checksum_ = 0;
};

}  // namespace vlt::workloads
