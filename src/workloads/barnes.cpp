#include "workloads/barnes.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "workloads/kernel_util.hpp"

namespace vlt::workloads {

using isa::ProgramBuilder;

namespace {
constexpr double kTheta2 = 1.0;    // opening criterion: size^2 >= theta^2*d^2
constexpr double kEps = 0.03125;   // softening, exact in binary
}

int BarnesWorkload::insert(int node, double x, double y, double cx, double cy,
                           double half, int body) {
  VLT_CHECK(half > 1e-12, "barnes: tree recursion too deep (duplicate body?)");
  bool has_children =
      tree_[node].child[0] >= 0 || tree_[node].child[1] >= 0 ||
      tree_[node].child[2] >= 0 || tree_[node].child[3] >= 0;
  if (!has_children && tree_[node].body < 0) {
    tree_[node].body = body;
    return node;
  }
  if (!has_children && tree_[node].body >= 0) {
    // Subdivide: push the resident body one level down first.
    int old = tree_[node].body;
    tree_[node].body = -1;
    insert_child(node, pos_x_[old], pos_y_[old], cx, cy, half, old);
  }
  insert_child(node, x, y, cx, cy, half, body);
  return node;
}

void BarnesWorkload::insert_child(int node, double x, double y, double cx,
                                  double cy, double half, int body) {
  int q = (x >= cx ? 1 : 0) + (y >= cy ? 2 : 0);
  double qx = cx + (x >= cx ? half / 2 : -half / 2);
  double qy = cy + (y >= cy ? half / 2 : -half / 2);
  if (tree_[node].child[q] < 0) {
    Node child;
    child.size2 = half * half;  // child region side = half
    tree_.push_back(child);
    tree_[node].child[q] = static_cast<int>(tree_.size()) - 1;
  }
  insert(tree_[node].child[q], x, y, qx, qy, half / 2, body);
}

void BarnesWorkload::aggregate(int node) {
  Node& n = tree_[node];
  if (n.body >= 0) {
    n.mass = mass_[n.body];
    n.cx = pos_x_[n.body];
    n.cy = pos_y_[n.body];
    return;
  }
  double m = 0, sx = 0, sy = 0;
  for (int q = 0; q < 4; ++q) {
    int c = n.child[q];
    if (c < 0) continue;
    aggregate(c);
    m += tree_[c].mass;
    sx += tree_[c].mass * tree_[c].cx;
    sy += tree_[c].mass * tree_[c].cy;
  }
  n.mass = m;
  n.cx = m > 0 ? sx / m : 0;
  n.cy = m > 0 ? sy / m : 0;
}

BarnesWorkload::BarnesWorkload(unsigned bodies) : nb_(bodies) {
  Xorshift64 rng(0xBA24E5ull);
  pos_x_.resize(nb_);
  pos_y_.resize(nb_);
  mass_.resize(nb_);
  for (unsigned i = 0; i < nb_; ++i) {
    pos_x_[i] = rng.next_double();
    pos_y_[i] = rng.next_double();
    mass_[i] = 1.0 + static_cast<double>(i % 4) * 0.25;
  }

  tree_.push_back(Node{});
  tree_[0].size2 = 1.0;  // root region side = 1
  for (unsigned i = 0; i < nb_; ++i)
    insert(0, pos_x_[i], pos_y_[i], 0.5, 0.5, 0.5, static_cast<int>(i));
  aggregate(0);

  func::AddressAllocator alloc;
  nodes_ = alloc.alloc_words(tree_.size() * kNodeWords);
  bx_ = alloc.alloc_words(nb_);
  by_ = alloc.alloc_words(nb_);
  fx_ = alloc.alloc_words(nb_);
  fy_ = alloc.alloc_words(nb_);
  stacks_ = alloc.alloc_words(std::size_t{kMaxThreads} * kStackSlots);

  // Golden: mirror the kernel's explicit-stack walk and FP order exactly.
  golden_fx_.assign(nb_, 0.0);
  golden_fy_.assign(nb_, 0.0);
  std::vector<int> stack;
  for (unsigned b = 0; b < nb_; ++b) {
    double fx = 0, fy = 0;
    stack.clear();
    stack.push_back(0);
    while (!stack.empty()) {
      int idx = stack.back();
      stack.pop_back();
      const Node& n = tree_[idx];
      double dx = n.cx - pos_x_[b];
      double dy = n.cy - pos_y_[b];
      double d2 = dx * dx + dy * dy;
      d2 = d2 + kEps;
      bool leaf = n.child[0] < 0 && n.child[1] < 0 && n.child[2] < 0 &&
                  n.child[3] < 0;
      bool accept = leaf || n.size2 < kTheta2 * d2;
      if (accept) {
        double den = d2 * std::sqrt(d2);
        double f = n.mass / den;
        fx = fx + f * dx;
        fy = fy + f * dy;
      } else {
        for (int q = 0; q < 4; ++q)  // pushed 0..3, popped 3..0
          if (n.child[q] >= 0) stack.push_back(n.child[q]);
      }
    }
    golden_fx_[b] = fx;
    golden_fy_[b] = fy;
  }
}

void BarnesWorkload::init_memory(func::FuncMemory& mem) const {
  for (std::size_t i = 0; i < tree_.size(); ++i) {
    Addr base = nodes_ + i * kNodeWords * 8;
    mem.write_f64(base, tree_[i].mass);
    mem.write_f64(base + 8, tree_[i].cx);
    mem.write_f64(base + 16, tree_[i].cy);
    mem.write_f64(base + 24, tree_[i].size2);
    for (int q = 0; q < 4; ++q)
      mem.write_i64(base + 32 + 8 * q,
                    tree_[i].child[q] < 0 ? 0 : tree_[i].child[q] + 1);
  }
  for (unsigned b = 0; b < nb_; ++b) {
    mem.write_f64(bx_ + 8 * b, pos_x_[b]);
    mem.write_f64(by_ + 8 * b, pos_y_[b]);
  }
}

isa::Program BarnesWorkload::walk_program(unsigned tid,
                                          unsigned nthreads) const {
  ProgramBuilder b("barnes-t" + std::to_string(tid));
  constexpr RegIdx bi = 1, nb = 2, step = 3, sp = 4, idx = 5, scr = 6,
                   stB = 16, ndP = 17, p = 18, bx = 33, by = 34, fx = 35,
                   fy = 36, m = 37, cxv = 38, cyv = 39, s2v = 40, dx = 41,
                   dy = 42, d2 = 43, t = 44, t2 = 45, c0 = 20, c1 = 21,
                   c2 = 22, c3 = 23, theta2 = 48, eps = 49, cc = 24;

  b.li_f64(theta2, kTheta2);
  b.li_f64(eps, kEps);
  b.li(stB, static_cast<std::int64_t>(stacks_ + 8 * kStackSlots * tid));
  b.li(bi, tid);
  b.li(nb, nb_);
  b.li(step, nthreads);
  auto body_top = b.label();
  auto body_done = b.label();
  b.bind(body_top);
  b.bge(bi, nb, body_done);

  b.slli(scr, bi, 3);
  b.li(p, static_cast<std::int64_t>(bx_));
  b.add(p, p, scr);
  b.load(bx, p);
  b.li(p, static_cast<std::int64_t>(by_));
  b.add(p, p, scr);
  b.load(by, p);
  b.xor_(fx, fx, fx);
  b.xor_(fy, fy, fy);
  // push root (index 0)
  b.store(stB, rZ);
  b.li(sp, 8);

  auto walk_top = b.label();
  auto walk_done = b.label();
  auto accumulate = b.label();
  auto next_node = b.label();
  b.bind(walk_top);
  b.beq(sp, rZ, walk_done);
  b.addi(sp, sp, -8);
  b.add(p, stB, sp);
  b.load(idx, p);
  b.slli(ndP, idx, 6);  // 8 words per node
  b.li(scr, static_cast<std::int64_t>(nodes_));
  b.add(ndP, ndP, scr);
  b.load(m, ndP, 0);
  b.load(cxv, ndP, 8);
  b.load(cyv, ndP, 16);
  b.load(s2v, ndP, 24);
  b.fsub(dx, cxv, bx);
  b.fsub(dy, cyv, by);
  b.fmul(t, dx, dx);
  b.fmul(t2, dy, dy);
  b.fadd(d2, t, t2);
  b.fadd(d2, d2, eps);
  b.load(c0, ndP, 32);
  b.load(c1, ndP, 40);
  b.load(c2, ndP, 48);
  b.load(c3, ndP, 56);
  b.or_(scr, c0, c1);
  b.or_(scr, scr, c2);
  b.or_(scr, scr, c3);
  b.beq(scr, rZ, accumulate);  // leaf
  b.fmul(t, theta2, d2);
  b.flt(scr, s2v, t);
  b.bne(scr, rZ, accumulate);  // far enough away: use the aggregate
  // open the node: push children (popped in reverse order)
  for (RegIdx c : {c0, c1, c2, c3}) {
    auto skip = b.label();
    b.beq(c, rZ, skip);
    b.addi(cc, c, -1);
    b.add(p, stB, sp);
    b.store(p, cc);
    b.addi(sp, sp, 8);
    b.bind(skip);
  }
  b.jump(walk_top);

  b.bind(accumulate);
  b.fsqrt(t, d2);
  b.fmul(t, d2, t);   // d2^(3/2)
  b.fdiv(t, m, t);    // f = m / d2^(3/2)
  b.fmul(t2, t, dx);
  b.fadd(fx, fx, t2);
  b.fmul(t2, t, dy);
  b.fadd(fy, fy, t2);
  b.jump(walk_top);
  b.bind(next_node);  // (unused label kept for structure)

  b.bind(walk_done);
  b.slli(scr, bi, 3);
  b.li(p, static_cast<std::int64_t>(fx_));
  b.add(p, p, scr);
  b.store(p, fx);
  b.li(p, static_cast<std::int64_t>(fy_));
  b.add(p, p, scr);
  b.store(p, fy);
  b.add(bi, bi, step);
  b.jump(body_top);
  b.bind(body_done);
  b.halt();
  return b.build();
}

machine::ParallelProgram BarnesWorkload::build(const Variant& variant) const {
  unsigned nthreads =
      variant.kind == Variant::Kind::kBase ? 1 : variant.nthreads;
  VLT_CHECK(supports(variant.kind), "unsupported barnes variant");

  machine::ParallelProgram prog;
  prog.name = name();
  machine::Phase walk;
  walk.label = "force-walk";
  walk.vlt_opportunity = true;
  switch (variant.kind) {
    case Variant::Kind::kBase:
      walk.mode = machine::PhaseMode::kSerial;
      break;
    case Variant::Kind::kLaneThreads:
      walk.mode = machine::PhaseMode::kLaneThreads;
      break;
    case Variant::Kind::kSuThreads:
      walk.mode = machine::PhaseMode::kSuThreads;
      break;
    default:
      VLT_CHECK(false, "unreachable");
  }
  for (unsigned t = 0; t < nthreads; ++t)
    walk.programs.push_back(walk_program(t, nthreads));
  prog.phases.push_back(std::move(walk));
  return prog;
}

std::optional<std::string> BarnesWorkload::verify(
    const func::FuncMemory& mem) const {
  auto fx = mem.read_block_f64(fx_, nb_);
  auto fy = mem.read_block_f64(fy_, nb_);
  for (unsigned b = 0; b < nb_; ++b) {
    if (fx[b] != golden_fx_[b])
      return "barnes: fx[" + std::to_string(b) + "] mismatch";
    if (fy[b] != golden_fy_[b])
      return "barnes: fy[" + std::to_string(b) + "] mismatch";
  }
  return std::nullopt;
}

}  // namespace vlt::workloads
