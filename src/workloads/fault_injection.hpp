// Deterministic fault-injection workloads for exercising the vltguard
// error paths under test (docs/ERRORS.md).
//
// Each injector reliably produces one failure class:
//
//   fault.verify     runs to completion, then fails the golden check
//                    (status workload-verify)
//   fault.invariant  builds a malformed phase that trips a VLT_CHECK in
//                    the processor (status invariant)
//   fault.barrier    thread 0 waits at a barrier the other threads never
//                    reach, so the run spins until the cycle budget —
//                    or the audit watchdog — fires (status timeout)
//
// They resolve through make_workload()/find_workload() like the real
// applications but are excluded from workload_names(), so an "all" grid
// never picks them up; tests and CLI runs name them explicitly.
#pragma once

#include "workloads/workload.hpp"

namespace vlt::workloads {

class FaultVerifyWorkload : public Workload {
 public:
  std::string name() const override { return "fault.verify"; }
  void init_memory(func::FuncMemory& mem) const override;
  machine::ParallelProgram build(const Variant& variant) const override;
  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override;
  bool supports(Variant::Kind kind) const override;
};

class FaultInvariantWorkload : public Workload {
 public:
  std::string name() const override { return "fault.invariant"; }
  void init_memory(func::FuncMemory& mem) const override;
  machine::ParallelProgram build(const Variant& variant) const override;
  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override;
  bool supports(Variant::Kind kind) const override;
};

class FaultBarrierWorkload : public Workload {
 public:
  std::string name() const override { return "fault.barrier"; }
  void init_memory(func::FuncMemory& mem) const override;
  machine::ParallelProgram build(const Variant& variant) const override;
  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override;
  bool supports(Variant::Kind kind) const override;
};

/// The injector names above, for harnesses that sweep every error path.
std::vector<std::string> fault_workload_names();

}  // namespace vlt::workloads
