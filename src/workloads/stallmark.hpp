// stallmark: synthetic idle-heavy stress workload for the skip engine
// (docs/PERF.md). Not one of the paper's nine applications, so
// workload_names() omits it (like the fault.* row); find_workload()
// resolves it for tests/test_skip_equivalence.cpp and the vltperf quick
// grid, where it pins the engine's best case: long serialized memory
// stalls (a pointer chase over cache lines spaced exactly one L2-set
// period apart, so every hop conflict-misses both L1D and the L2 and
// rides the full memory latency before the next address is even known)
// and tid-skewed barrier imbalance (thread t's per-round hop count
// grows with t, parking the light threads at each barrier). Most
// simulated cycles are therefore provably skippable, which is exactly
// where event-driven skip-ahead must beat per-cycle ticking by the
// most.
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace vlt::workloads {

class StallmarkWorkload : public Workload {
 public:
  StallmarkWorkload();

  std::string name() const override { return "stallmark"; }
  void init_memory(func::FuncMemory& mem) const override;
  machine::ParallelProgram build(const Variant& variant) const override;
  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override;
  bool supports(Variant::Kind kind) const override {
    return kind == Variant::Kind::kBase ||
           kind == Variant::Kind::kVectorThreads;
  }

 private:
  // The chase's lines sit one L2-set period apart (4 MiB / 4 ways =
  // 1 MiB), so all of them index the same L2 set (and, 1 MiB being a
  // multiple of the 8 KiB L1-set period, the same L1D set). With far
  // more lines than either structure has ways, every hop is a
  // conflict miss that pays the full miss latency, and the loaded
  // word is the next hop's index — no lookahead can overlap the
  // misses. Only one word per line is ever written, so the real
  // footprint is kChainLines pages despite the 64 MiB address span.
  static constexpr std::int64_t kLineStrideWords = 1 << 17;  // 1 MiB
  static constexpr std::int64_t kChainLines = 64;
  static constexpr std::int64_t kRounds = 12;
  // Chase hops per round across ALL threads; split tid-skewed (thread
  // t carries weight t+1), so the sum stored per thread is
  // variant-independent while every barrier sees imbalance.
  static constexpr std::int64_t kTotalHops = 120;
  static constexpr std::int64_t kVecWords = 512;
  static constexpr unsigned kMaxThreads = 8;

  /// First global hop index of thread `tid`'s skewed share (weights
  /// 1..nthreads, cumulative, scaled to kTotalHops).
  static std::int64_t skew_begin(unsigned tid, unsigned nthreads);

  /// Word index (relative to data_) of the chain node at chase
  /// position `pos` (mod kChainLines).
  static std::int64_t node_word(std::int64_t pos) {
    return (pos % kChainLines) * kLineStrideWords;
  }

  isa::Program worker_program(unsigned tid, unsigned nthreads) const;

  Addr data_, vdata_, vout_, out_;
  std::vector<std::int64_t> vdata_words_;
  std::vector<std::int64_t> golden_vout_;
  std::int64_t golden_total_ = 0;
};

}  // namespace vlt::workloads
