#include "common/log.hpp"
#include "workloads/barnes.hpp"
#include "workloads/fault_injection.hpp"
#include "workloads/bt.hpp"
#include "workloads/mpenc.hpp"
#include "workloads/multprec.hpp"
#include "workloads/mxm.hpp"
#include "workloads/ocean.hpp"
#include "workloads/radix.hpp"
#include "workloads/sage.hpp"
#include "workloads/stallmark.hpp"
#include "workloads/trfd.hpp"
#include "workloads/workload.hpp"

namespace vlt::workloads {

WorkloadPtr find_workload(const std::string& name) {
  if (name == "mxm") return std::make_unique<MxmWorkload>();
  if (name == "sage") return std::make_unique<SageWorkload>();
  if (name == "mpenc") return std::make_unique<MpencWorkload>();
  if (name == "trfd") return std::make_unique<TrfdWorkload>();
  if (name == "multprec") return std::make_unique<MultprecWorkload>();
  if (name == "bt") return std::make_unique<BtWorkload>();
  if (name == "radix") return std::make_unique<RadixWorkload>();
  if (name == "ocean") return std::make_unique<OceanWorkload>();
  if (name == "barnes") return std::make_unique<BarnesWorkload>();
  // Synthetic engine-stress row: resolvable by name, omitted from
  // workload_names() like the fault.* workloads (not a Table 4 app).
  if (name == "stallmark") return std::make_unique<StallmarkWorkload>();
  if (name == "fault.verify") return std::make_unique<FaultVerifyWorkload>();
  if (name == "fault.invariant")
    return std::make_unique<FaultInvariantWorkload>();
  if (name == "fault.barrier") return std::make_unique<FaultBarrierWorkload>();
  return nullptr;
}

WorkloadPtr make_workload(const std::string& name) {
  WorkloadPtr w = find_workload(name);
  if (w == nullptr) VLT_FAIL(ErrorKind::kConfig, "unknown workload: " + name);
  return w;
}

std::vector<std::string> workload_names() {
  return {"mxm",  "sage",  "mpenc", "trfd",  "multprec",
          "bt",   "radix", "ocean", "barnes"};
}

std::vector<std::string> vector_thread_apps() {
  return {"mpenc", "trfd", "multprec", "bt"};
}

std::vector<std::string> scalar_thread_apps() {
  return {"radix", "ocean", "barnes"};
}

std::vector<std::string> long_vector_apps() { return {"mxm", "sage"}; }

}  // namespace vlt::workloads
