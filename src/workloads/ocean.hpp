// ocean: eddy-current grid relaxation (SPLASH-2; Table 4: not
// vectorizable, 96% VLT opportunity).
//
// Two-buffer 9-point Jacobi relaxation on a square grid larger than the
// scalar unit's L1 cache; rows are partitioned across threads and a
// barrier separates sweeps. Nine loads per point with a shallow FP tree
// make the kernel memory-port bound — exactly the code that favours 8
// simple lane cores with 16 memory ports over 2 wide cores with 4
// (paper §5, Figure 6).
#pragma once

#include <vector>

#include "workloads/workload.hpp"

namespace vlt::workloads {

class OceanWorkload : public Workload {
 public:
  OceanWorkload(unsigned grid = 96, unsigned sweeps = 4);

  std::string name() const override { return "ocean"; }
  void init_memory(func::FuncMemory& mem) const override;
  machine::ParallelProgram build(const Variant& variant) const override;
  std::optional<std::string> verify(
      const func::FuncMemory& mem) const override;
  bool supports(Variant::Kind kind) const override {
    return kind == Variant::Kind::kBase ||
           kind == Variant::Kind::kLaneThreads ||
           kind == Variant::Kind::kSuThreads;
  }

 private:
  isa::Program worker_program(unsigned tid, unsigned nthreads) const;

  unsigned g_, sweeps_;
  unsigned stride_ = 0;  // padded row stride in words
  Addr grid_, grid_b_;
  std::vector<double> init_, golden_;
};

}  // namespace vlt::workloads
