#include "workloads/ocean.hpp"

#include "common/log.hpp"
#include "workloads/kernel_util.hpp"

namespace vlt::workloads {

using isa::ProgramBuilder;

namespace {
constexpr double kOmega = 1.25;
constexpr double kEighth = 0.125;
}

OceanWorkload::OceanWorkload(unsigned grid, unsigned sweeps)
    : g_(grid), sweeps_(sweeps) {
  VLT_CHECK(g_ >= 6 && (g_ - 2) % 2 == 0, "grid must leave an even interior");
  func::AddressAllocator alloc;
  // Rows are padded by one cache line so concurrent threads do not march
  // over identical L2 bank sequences (standard HPC array padding).
  stride_ = g_ + 8;
  grid_ = alloc.alloc_words(std::size_t{g_} * stride_);    // buffer A
  grid_b_ = alloc.alloc_words(std::size_t{g_} * stride_);  // buffer B

  init_.resize(std::size_t{g_} * g_);
  for (unsigned i = 0; i < g_; ++i)
    for (unsigned j = 0; j < g_; ++j)
      init_[i * g_ + j] = static_cast<double>((i * 31 + j * 17) % 23) * 0.125;

  // Golden: two-buffer 9-point Jacobi relaxation, FP order matching the
  // kernel exactly (pairwise neighbor sums, then omega correction).
  std::vector<double> in = init_, out = init_;
  for (unsigned s = 0; s < sweeps_; ++s) {
    for (unsigned i = 1; i + 1 < g_; ++i)
      for (unsigned j = 1; j + 1 < g_; ++j) {
        auto at = [&](unsigned r, unsigned c) { return in[r * g_ + c]; };
        double s1 = at(i, j - 1) + at(i, j + 1);
        double s2 = at(i - 1, j) + at(i + 1, j);
        double s3 = at(i - 1, j - 1) + at(i - 1, j + 1);
        double s4 = at(i + 1, j - 1) + at(i + 1, j + 1);
        double t1 = s1 + s2;
        double u1 = s3 + s4;
        double sum = t1 + u1;
        double avg = sum * kEighth;
        double x = at(i, j);
        double diff = avg - x;
        out[i * g_ + j] = x + diff * kOmega;
      }
    std::swap(in, out);
  }
  golden_ = in;
}

void OceanWorkload::init_memory(func::FuncMemory& mem) const {
  for (unsigned i = 0; i < g_; ++i)
    for (unsigned j = 0; j < g_; ++j) {
      mem.write_f64(grid_ + 8 * (std::size_t{i} * stride_ + j),
                    init_[i * g_ + j]);
      mem.write_f64(grid_b_ + 8 * (std::size_t{i} * stride_ + j),
                    init_[i * g_ + j]);
    }
}

// Row-partitioned SPMD Jacobi; barrier + buffer swap per sweep.
//
// The point loop is software-pipelined two stages deep: while one point
// pair's neighbor loads and pairwise sums fill the memory ports, the
// previous pair's dependent FP tail (avg, omega correction) executes —
// the schedule a Cray compiler would produce for an in-order 2-wide core,
// and the reason lane threads can exploit the lanes' memory ports
// (paper §5).
isa::Program OceanWorkload::worker_program(unsigned tid,
                                           unsigned nthreads) const {
  ProgramBuilder b("ocean-t" + std::to_string(tid));
  auto range = chunk_of(g_ - 2, tid, nthreads);
  const std::int64_t row0 = 1 + range.begin;
  const std::int64_t row_end = 1 + range.end;
  const std::int32_t rb = static_cast<std::int32_t>(stride_ * 8);
  const unsigned pairs = (g_ - 2) / 2;
  VLT_CHECK(pairs % 2 == 1, "software-pipelined loop needs an odd pair count");

  constexpr RegIdx sw = 1, i = 3, k = 4, kEnd = 5, scr = 6, iEnd = 7,
                   inB = 20, outB = 21, tmp = 22, pIn = 18, pOut = 19,
                   a1 = 26, a2 = 27, a3 = 28, a4 = 29, b1 = 30, b2 = 31,
                   b3 = 32, b4 = 33, t1 = 44, t2 = 45, t3 = 46, t4 = 47,
                   eighth = 48, omega = 49, c1 = 50, c2 = 51, c3 = 52,
                   c4 = 53, c5 = 54, c6 = 55, c7 = 56, c8 = 57;
  // Two banks of live state: {sum1, sum2, x1, x2} per in-flight pair.
  constexpr RegIdx bank[2][4] = {{34, 35, 36, 37}, {38, 39, 40, 41}};

  // The pair computation is split into schedulable pieces; the main loop
  // weaves the previous pair's dependent FP tail into the next pair's
  // load shadows (modulo scheduling by hand).
  auto s1_loads1 = [&](int bk) {  // axis neighbors + center values
    b.load(a1, pIn, -8);
    b.load(a2, pIn, 8);
    b.load(a3, pIn, -rb);
    b.load(a4, pIn, rb);
    b.load(b1, pIn, 0);
    b.load(b2, pIn, 16);
    b.load(b3, pIn, -rb + 8);
    b.load(b4, pIn, rb + 8);
    b.load(bank[bk][2], pIn, 0);
    b.load(bank[bk][3], pIn, 8);
  };
  auto s1_loads2a = [&] {  // diagonal neighbors, separate temp set
    b.load(c1, pIn, -rb - 8);
    b.load(c2, pIn, -rb + 8);
    b.load(c3, pIn, rb - 8);
    b.load(c4, pIn, rb + 8);
  };
  auto s1_loads2b = [&] {
    b.load(c5, pIn, -rb);
    b.load(c6, pIn, -rb + 16);
    b.load(c7, pIn, rb);
    b.load(c8, pIn, rb + 16);
    b.addi(pIn, pIn, 16);
  };
  auto s1_sums1 = [&] {  // reduce the axis batch
    b.fadd(t1, a1, a2);
    b.fadd(t2, b1, b2);
    b.fadd(t3, a3, a4);
    b.fadd(t4, b3, b4);
  };
  auto s1_sums2 = [&](int bk) {  // reduce diagonals, merge into {sum1, sum2}
    b.fadd(c1, c1, c2);
    b.fadd(c5, c5, c6);
    b.fadd(c3, c3, c4);
    b.fadd(c7, c7, c8);
    b.fadd(t1, t1, t3);
    b.fadd(t2, t2, t4);
    b.fadd(c1, c1, c3);
    b.fadd(c5, c5, c7);
    b.fadd(bank[bk][0], t1, c1);
    b.fadd(bank[bk][1], t2, c5);
  };
  auto s2_avg = [&](int bk) {
    b.fmul(bank[bk][0], bank[bk][0], eighth);
    b.fmul(bank[bk][1], bank[bk][1], eighth);
  };
  auto s2_sub = [&](int bk) {
    b.fsub(bank[bk][0], bank[bk][0], bank[bk][2]);
    b.fsub(bank[bk][1], bank[bk][1], bank[bk][3]);
  };
  auto s2_omega = [&](int bk) {
    b.fmul(bank[bk][0], bank[bk][0], omega);
    b.fmul(bank[bk][1], bank[bk][1], omega);
  };
  auto s2_store = [&](int bk) {
    b.fadd(bank[bk][0], bank[bk][2], bank[bk][0]);
    b.fadd(bank[bk][1], bank[bk][3], bank[bk][1]);
    b.store(pOut, bank[bk][0], 0);
    b.store(pOut, bank[bk][1], 8);
    b.addi(pOut, pOut, 16);
  };
  // One software-pipelined body: stage 1 of pair in `ld`, the dependent
  // tail of pair `tl` threaded between its load groups so each FP result
  // matures during someone else's issue slots.
  auto body = [&](int ld, int tl) {
    s1_loads1(ld);
    s2_avg(tl);
    s1_loads2a();
    s2_sub(tl);
    s1_loads2b();
    s2_omega(tl);
    s1_sums1();
    s2_store(tl);
    s1_sums2(ld);
  };

  b.li_f64(eighth, kEighth);
  b.li_f64(omega, kOmega);
  b.li(inB, static_cast<std::int64_t>(grid_));
  b.li(outB, static_cast<std::int64_t>(grid_b_));
  b.li(sw, sweeps_);
  auto sweep_top = b.label();
  b.bind(sweep_top);

  b.li(i, row0);
  b.li(iEnd, row_end);
  auto row_top = b.label();
  auto row_done = b.label();
  b.bind(row_top);
  b.bge(i, iEnd, row_done);
  b.li(scr, rb);
  b.mul(pIn, i, scr);
  b.addi(pIn, pIn, 8);
  b.add(pOut, pIn, outB);
  b.add(pIn, pIn, inB);
  // Prologue: pair 0 fully in flight.
  s1_loads1(0);
  s1_loads2a();
  s1_loads2b();
  s1_sums1();
  s1_sums2(0);
  b.li(k, 0);
  b.li(kEnd, (pairs - 1) / 2);
  auto pair_top = b.label();
  b.bind(pair_top);
  body(1, 0);
  body(0, 1);
  b.addi(k, k, 1);
  b.blt(k, kEnd, pair_top);
  // Epilogue: drain the last pair's tail.
  s2_avg(0);
  s2_sub(0);
  s2_omega(0);
  s2_store(0);
  b.addi(i, i, 1);
  b.jump(row_top);
  b.bind(row_done);

  b.barrier();  // all writes land before anyone reads the new buffer
  b.mov(tmp, inB);
  b.mov(inB, outB);
  b.mov(outB, tmp);
  b.addi(sw, sw, -1);
  b.bne(sw, 0, sweep_top);
  b.halt();
  return b.build();
}

machine::ParallelProgram OceanWorkload::build(const Variant& variant) const {
  unsigned nthreads =
      variant.kind == Variant::Kind::kBase ? 1 : variant.nthreads;
  VLT_CHECK(supports(variant.kind), "unsupported ocean variant");

  machine::ParallelProgram prog;
  prog.name = name();
  machine::Phase relax;
  relax.label = "jacobi-9pt";
  relax.vlt_opportunity = true;
  switch (variant.kind) {
    case Variant::Kind::kBase:
      relax.mode = machine::PhaseMode::kSerial;
      break;
    case Variant::Kind::kLaneThreads:
      relax.mode = machine::PhaseMode::kLaneThreads;
      break;
    case Variant::Kind::kSuThreads:
      relax.mode = machine::PhaseMode::kSuThreads;
      break;
    default:
      VLT_CHECK(false, "unreachable");
  }
  for (unsigned t = 0; t < nthreads; ++t)
    relax.programs.push_back(worker_program(t, nthreads));
  prog.phases.push_back(std::move(relax));
  return prog;
}

std::optional<std::string> OceanWorkload::verify(
    const func::FuncMemory& mem) const {
  // Even sweep count: the final state is back in buffer A.
  Addr result = (sweeps_ % 2 == 0) ? grid_ : grid_b_;
  for (unsigned i = 0; i < g_; ++i)
    for (unsigned j = 0; j < g_; ++j) {
      double got = mem.read_f64(result + 8 * (std::size_t{i} * stride_ + j));
      if (got != golden_[i * g_ + j])
        return "ocean: grid[" + std::to_string(i * g_ + j) + "] mismatch";
    }
  return std::nullopt;
}

}  // namespace vlt::workloads
