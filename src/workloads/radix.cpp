#include "workloads/radix.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "workloads/kernel_util.hpp"

namespace vlt::workloads {

using isa::ProgramBuilder;

RadixWorkload::RadixWorkload(unsigned keys) : n_(keys) {
  func::AddressAllocator alloc;
  raw_ = alloc.alloc_words(n_);
  buf_a_ = alloc.alloc_words(n_);
  buf_b_ = alloc.alloc_words(n_);
  hist_ = alloc.alloc_words(std::size_t{kMaxThreads} * 4 * kRadix);
  offs_ = alloc.alloc_words(std::size_t{kMaxThreads} * kRadix);
  sums_ = alloc.alloc_words(kRadix);
  base_ = alloc.alloc_words(kRadix);

  Xorshift64 rng(0x4Ad1Full);
  raw_keys_.resize(n_);
  for (auto& k : raw_keys_)
    k = static_cast<std::int64_t>(rng.next() & 0x3FFFFF);  // 22-bit raw

  golden_sorted_.resize(n_);
  for (unsigned i = 0; i < n_; ++i)
    golden_sorted_[i] = raw_keys_[i] & 0xFFFF;  // init pass masks to 16 bits
  std::stable_sort(golden_sorted_.begin(), golden_sorted_.end());
}

void RadixWorkload::init_memory(func::FuncMemory& mem) const {
  mem.write_block_i64(raw_, raw_keys_);
}

// Vectorized preparation: keys = raw & 0xFFFF at full vector length. This
// is radix's ~6% vector content (Table 4 lists avg VL 62.3 from exactly
// this kind of long-vector prologue). The CMT baseline has no vector unit,
// so the kSuThreads variant gets the scalar version the Cray compiler
// would emit for a scalar-only target.
isa::Program RadixWorkload::init_program(bool vectorized, IsaId isa) const {
  ProgramBuilder b("radix-init");
  b.set_isa(isa);
  constexpr RegIdx n = 1, vl = 2, scr = 3, inP = 16, outP = 17, mask = 48;
  b.li(mask, 0xFFFF);
  b.li(inP, static_cast<std::int64_t>(raw_));
  b.li(outP, static_cast<std::int64_t>(buf_a_));
  if (vectorized) {
    b.li(n, n_);
    strip_mine(b, n, vl, scr, {inP, outP}, [&] {
      vec_load(b, 1, inP);
      b.vand(2, 1, mask, isa::kFlagSrc2Scalar);
      vec_store(b, 2, outP);
    });
  } else {
    b.li(n, n_);
    auto top = b.label();
    b.bind(top);
    b.load(scr, inP);
    b.and_(scr, scr, mask);
    b.store(outP, scr);
    b.addi(inP, inP, 8);
    b.addi(outP, outP, 8);
    b.addi(n, n, -1);
    b.bne(n, rZ, top);
  }
  b.halt();
  return b.build();
}

// SPMD sort, per pass: sub-histogram counting -> intra-digit offsets
// (parallel over digit ranges) -> serial digit-base scan (thread 0,
// kRadix steps) -> stable permute, with barriers between steps.
//
// The streaming loops are software-pipelined four keys at a time, the way
// a scheduling compiler (or the SPLASH-2 authors) would write them for an
// in-order core. Counting uses one private sub-histogram per unroll slot,
// so the four counter updates never alias; the permute overlaps its four
// offset lookups only after an explicit digit-conflict test that falls
// back to a strictly ordered slow path (a handful of predictable branches
// per group).
isa::Program RadixWorkload::sort_program(unsigned tid, unsigned nthreads,
                                         IsaId isa) const {
  ProgramBuilder b("radix-sort-t" + std::to_string(tid));
  b.set_isa(isa);  // pure scalar code; the tag still must match the run
  auto range = chunk_of(n_, tid, nthreads);
  const unsigned dig_lo = kRadix * tid / nthreads;
  const unsigned dig_hi = kRadix * (tid + 1) / nthreads;
  const std::int32_t sub_bytes = kRadix * 8;  // one sub-histogram

  constexpr RegIdx pass = 1, i = 2, iEnd = 3, dv = 4, scr = 5, shift = 6,
                   t = 7, lim = 9, pairEnd = 11, inB = 16, outB = 17,
                   histP = 18, offsP = 19, p = 20, dA = 21, bA = 23,
                   baseB = 25, k = 33, o = 34, run = 35, bv = 30, d8 = 31;
  constexpr RegIdx kk[4] = {26, 27, 28, 29};
  constexpr RegIdx dd[4] = {10, 12, 13, 14};
  constexpr RegIdx aa[4] = {21, 22, 23, 24};
  constexpr RegIdx bb[4] = {35, 36, 37, 38};
  constexpr RegIdx oo[4] = {39, 40, 41, 42};
  constexpr RegIdx nn[4] = {43, 44, 45, 46};

  b.li(inB, static_cast<std::int64_t>(buf_a_));
  b.li(outB, static_cast<std::int64_t>(buf_b_));
  b.li(histP,
       static_cast<std::int64_t>(hist_ + 8 * std::size_t{kRadix} * 4 * tid));
  b.li(offsP, static_cast<std::int64_t>(offs_ + 8 * std::size_t{kRadix} * tid));
  b.li(baseB, static_cast<std::int64_t>(base_));
  b.li(pass, 0);
  b.li(shift, 0);
  auto pass_top = b.label();
  auto pass_done = b.label();
  b.bind(pass_top);
  b.li(scr, kPasses);
  b.bge(pass, scr, pass_done);

  // --- zero the four private sub-histograms ---
  b.mov(p, histP);
  b.li(t, 4 * kRadix / 8);
  {
    auto z_top = b.label();
    b.bind(z_top);
    for (int u = 0; u < 8; ++u) b.store(p, rZ, 8 * u);
    b.addi(p, p, 64);
    b.addi(t, t, -1);
    b.bne(t, rZ, z_top);
  }

  // --- counting, four keys per iteration into private sub-histograms ---
  b.li(i, range.begin);
  b.li(iEnd, range.end);
  b.addi(pairEnd, iEnd, -3);
  b.slli(p, i, 3);
  b.add(p, p, inB);
  {
    auto h_top = b.label();
    auto h_tail = b.label();
    auto h_done = b.label();
    // Software pipelining: group i+1's keys load while group i's counter
    // chains resolve; all four chains are scheduled op-major so the
    // 2-wide in-order core dual-issues them.
    for (int u = 0; u < 4; ++u) b.load(kk[u], p, 8 * u);  // prologue
    b.bind(h_top);
    b.bge(i, pairEnd, h_tail);
    for (int u = 0; u < 4; ++u) b.load(nn[u], p, 32 + 8 * u);  // next group
    for (int u = 0; u < 4; ++u) b.srl(dd[u], kk[u], shift);
    for (int u = 0; u < 4; ++u) b.andi(dd[u], dd[u], kRadix - 1);
    for (int u = 0; u < 4; ++u) b.slli(dd[u], dd[u], 3);
    for (int u = 0; u < 4; ++u) b.add(dd[u], dd[u], histP);
    for (int u = 1; u < 4; ++u) b.addi(dd[u], dd[u], u * sub_bytes);
    for (int u = 0; u < 4; ++u) b.load(oo[u], dd[u]);
    for (int u = 0; u < 4; ++u) b.addi(oo[u], oo[u], 1);
    for (int u = 0; u < 4; ++u) b.store(dd[u], oo[u]);
    for (int u = 0; u < 4; ++u) b.mov(kk[u], nn[u]);
    b.addi(p, p, 32);
    b.addi(i, i, 4);
    b.jump(h_top);
    b.bind(h_tail);
    b.bge(i, iEnd, h_done);
    b.load(k, p);
    b.srl(dv, k, shift);
    b.andi(dv, dv, kRadix - 1);
    b.slli(dv, dv, 3);
    b.add(dv, dv, histP);
    b.load(scr, dv);
    b.addi(scr, scr, 1);
    b.store(dv, scr);
    b.addi(p, p, 8);
    b.addi(i, i, 1);
    b.jump(h_tail);
    b.bind(h_done);
  }
  b.barrier();

  // --- intra-digit offsets + per-digit sums over this thread's digits:
  // offs[t][d] = sum over threads t' < t (all four subs) of counts ---
  {
    b.li(dv, dig_lo);
    b.li(lim, dig_hi);
    auto d_top = b.label();
    auto d_done = b.label();
    b.bind(d_top);
    b.bge(dv, lim, d_done);
    b.li(run, 0);
    b.slli(d8, dv, 3);
    b.li(dA, static_cast<std::int64_t>(hist_));
    b.add(dA, dA, d8);  // &hist[0][0][d]
    b.li(t, 0);
    auto t_top = b.label();
    b.bind(t_top);
    // Record the running count at each thread boundary, then add the
    // thread's four sub-counts.
    b.li(scr, kRadix * 8);
    b.mul(scr, t, scr);  // t * kRadix * 8
    b.li(bA, static_cast<std::int64_t>(offs_));
    b.add(bA, bA, scr);
    b.add(bA, bA, d8);
    b.store(bA, run);
    for (int u = 0; u < 4; ++u) {
      b.load(scr, dA, u * sub_bytes);
      b.add(run, run, scr);
    }
    b.addi(dA, dA, 4 * sub_bytes);
    b.addi(t, t, 1);
    b.li(scr, nthreads);
    b.blt(t, scr, t_top);
    b.li(dA, static_cast<std::int64_t>(sums_));
    b.add(dA, dA, d8);
    b.store(dA, run);
    b.addi(dv, dv, 1);
    b.jump(d_top);
    b.bind(d_done);
  }
  b.barrier();

  // --- serial digit-base scan (thread 0, kRadix iterations) ---
  if (tid == 0) {
    b.li(run, 0);
    b.li(dv, 0);
    b.li(p, static_cast<std::int64_t>(sums_));
    b.li(dA, static_cast<std::int64_t>(base_));
    auto s_top = b.label();
    b.bind(s_top);
    b.load(scr, p);
    b.store(dA, run);
    b.add(run, run, scr);
    b.addi(p, p, 8);
    b.addi(dA, dA, 8);
    b.addi(dv, dv, 1);
    b.li(lim, kRadix);
    b.blt(dv, lim, s_top);
  }
  b.barrier();

  // --- stable permute, four keys per iteration;
  // destination = base[digit] + offs[tid][digit]++ ---
  b.li(i, range.begin);
  b.slli(p, i, 3);
  b.add(p, p, inB);
  {
    auto m_top = b.label();
    auto m_tail = b.label();
    auto m_done = b.label();
    auto m_slow = b.label();
    auto m_next = b.label();
    for (int u = 0; u < 4; ++u) b.load(kk[u], p, 8 * u);  // prologue
    b.bind(m_top);
    b.bge(i, pairEnd, m_tail);
    for (int u = 0; u < 4; ++u) b.load(nn[u], p, 32 + 8 * u);  // next group
    for (int u = 0; u < 4; ++u) b.srl(dd[u], kk[u], shift);
    for (int u = 0; u < 4; ++u) b.andi(dd[u], dd[u], kRadix - 1);
    // Digit-conflict test: any equal pair forces the ordered slow path.
    for (int x = 0; x < 4; ++x)
      for (int y = x + 1; y < 4; ++y) b.beq(dd[x], dd[y], m_slow);
    // Fast path: all four offset chains overlap (op-major schedule).
    for (int u = 0; u < 4; ++u) b.slli(dd[u], dd[u], 3);
    for (int u = 0; u < 4; ++u) b.add(aa[u], dd[u], offsP);
    for (int u = 0; u < 4; ++u) b.add(bb[u], dd[u], baseB);
    for (int u = 0; u < 4; ++u) b.load(oo[u], aa[u]);
    for (int u = 0; u < 4; ++u) b.addi(dd[u], oo[u], 1);
    for (int u = 0; u < 4; ++u) b.store(aa[u], dd[u]);
    for (int u = 0; u < 4; ++u) b.load(bb[u], bb[u]);  // base[digit]
    for (int u = 0; u < 4; ++u) b.add(oo[u], oo[u], bb[u]);
    for (int u = 0; u < 4; ++u) b.slli(oo[u], oo[u], 3);
    for (int u = 0; u < 4; ++u) b.add(oo[u], oo[u], outB);
    for (int u = 0; u < 4; ++u) b.store(oo[u], kk[u]);
    for (int u = 0; u < 4; ++u) b.mov(kk[u], nn[u]);
    b.jump(m_next);
    // Slow path: strictly ordered read-modify-writes.
    b.bind(m_slow);
    for (int u = 0; u < 4; ++u) {
      b.slli(scr, dd[u], 3);
      b.add(dA, scr, offsP);
      b.add(bA, scr, baseB);
      b.load(o, dA);
      b.addi(scr, o, 1);
      b.store(dA, scr);
      b.load(bv, bA);
      b.add(o, o, bv);
      b.slli(o, o, 3);
      b.add(o, o, outB);
      b.store(o, kk[u]);
    }
    for (int u = 0; u < 4; ++u) b.mov(kk[u], nn[u]);
    b.bind(m_next);
    b.addi(p, p, 32);
    b.addi(i, i, 4);
    b.jump(m_top);
    b.bind(m_tail);
    b.bge(i, iEnd, m_done);
    b.load(k, p);
    b.srl(dv, k, shift);
    b.andi(dv, dv, kRadix - 1);
    b.slli(d8, dv, 3);
    b.add(dA, d8, offsP);
    b.add(bA, d8, baseB);
    b.load(o, dA);
    b.addi(scr, o, 1);
    b.store(dA, scr);
    b.load(bv, bA);
    b.add(o, o, bv);
    b.slli(o, o, 3);
    b.add(o, o, outB);
    b.store(o, k);
    b.addi(p, p, 8);
    b.addi(i, i, 1);
    b.jump(m_tail);
    b.bind(m_done);
  }
  b.barrier();

  // swap in/out buffers, next digit
  b.mov(scr, inB);
  b.mov(inB, outB);
  b.mov(outB, scr);
  b.addi(shift, shift, 6);
  b.addi(pass, pass, 1);
  b.jump(pass_top);
  b.bind(pass_done);
  b.halt();
  return b.build();
}

machine::ParallelProgram RadixWorkload::build(const Variant& variant) const {
  return build(variant, IsaId::kVlt);
}

machine::ParallelProgram RadixWorkload::build(const Variant& variant,
                                              IsaId isa) const {
  unsigned nthreads =
      variant.kind == Variant::Kind::kBase ? 1 : variant.nthreads;
  VLT_CHECK(supports(variant.kind), "unsupported radix variant");
  VLT_CHECK(nthreads <= kMaxThreads, "radix supports at most 8 threads");

  machine::ParallelProgram prog;
  prog.name = name();

  machine::Phase init;
  init.label = "key-prep";
  init.mode = machine::PhaseMode::kSerial;
  init.vlt_opportunity = false;
  init.programs.push_back(
      init_program(variant.kind != Variant::Kind::kSuThreads, isa));
  prog.phases.push_back(std::move(init));

  machine::Phase sort;
  sort.label = "sort";
  sort.vlt_opportunity = true;
  switch (variant.kind) {
    case Variant::Kind::kBase:
      sort.mode = machine::PhaseMode::kSerial;
      break;
    case Variant::Kind::kLaneThreads:
      sort.mode = machine::PhaseMode::kLaneThreads;
      break;
    case Variant::Kind::kSuThreads:
      sort.mode = machine::PhaseMode::kSuThreads;
      break;
    default:
      VLT_CHECK(false, "unreachable");
  }
  for (unsigned t = 0; t < nthreads; ++t)
    sort.programs.push_back(sort_program(t, nthreads, isa));
  prog.phases.push_back(std::move(sort));
  return prog;
}

std::optional<std::string> RadixWorkload::verify(
    const func::FuncMemory& mem) const {
  // Odd pass count: the final sorted array lands in buf_b_.
  auto got = mem.read_block_i64(kPasses % 2 ? buf_b_ : buf_a_, n_);
  for (unsigned i = 0; i < n_; ++i)
    if (got[i] != golden_sorted_[i])
      return "radix: keys[" + std::to_string(i) + "] = " +
             std::to_string(got[i]) + ", expected " +
             std::to_string(golden_sorted_[i]);
  return std::nullopt;
}

}  // namespace vlt::workloads
