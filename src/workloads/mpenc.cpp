#include "workloads/mpenc.hpp"

#include <limits>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "workloads/kernel_util.hpp"

namespace vlt::workloads {

using isa::ProgramBuilder;

MpencWorkload::MpencWorkload(unsigned macroblocks, unsigned full_cands,
                             unsigned half_cands)
    : mbs_(macroblocks), full_cands_(full_cands), half_cands_(half_cands) {
  const unsigned cands = full_cands_ + half_cands_;
  func::AddressAllocator alloc;
  cur_ = alloc.alloc_words(std::size_t{mbs_} * kMbWords);
  ref_ = alloc.alloc_words(std::size_t{mbs_} * cands * kMbWords);
  dct_ = alloc.alloc_words(std::size_t{mbs_} * kMbWords);
  bitbuf_ = alloc.alloc_words(std::size_t{mbs_} * kMbWords);
  sad_out_ = alloc.alloc_words(2 * mbs_);  // full-SAD best, then half best
  cand_out_ = alloc.alloc_words(2 * mbs_);
  rle_out_ = alloc.alloc_words(mbs_);

  Xorshift64 rng(0xEC0DEull);
  cur_px_.resize(std::size_t{mbs_} * kMbWords);
  ref_px_.resize(std::size_t{mbs_} * cands * kMbWords);
  for (auto& p : cur_px_) p = static_cast<std::int64_t>(rng.next_below(256));
  for (auto& p : ref_px_) p = static_cast<std::int64_t>(rng.next_below(256));

  // --- golden model ---
  golden_sad_.assign(2 * mbs_, 0);
  golden_cand_.assign(2 * mbs_, 0);
  golden_dct_.resize(std::size_t{mbs_} * kMbWords);
  golden_rle_.assign(mbs_, 0);
  for (unsigned mb = 0; mb < mbs_; ++mb) {
    const std::int64_t* cur = &cur_px_[mb * kMbWords];
    // Full 16x16 SAD over the first full_cands_ candidates.
    std::int64_t best = std::numeric_limits<std::int64_t>::max(), bc = 0;
    for (unsigned c = 0; c < full_cands_; ++c) {
      const std::int64_t* ref = &ref_px_[(mb * cands + c) * kMbWords];
      std::int64_t sad = 0;
      for (unsigned k = 0; k < 256; ++k) sad += std::abs(cur[k] - ref[k]);
      if (sad < best) {
        best = sad;
        bc = c;
      }
    }
    golden_sad_[mb] = best;
    golden_cand_[mb] = bc;
    // 8x8 top-left sub-block SAD over the remaining candidates.
    best = std::numeric_limits<std::int64_t>::max();
    bc = 0;
    for (unsigned c = full_cands_; c < cands; ++c) {
      const std::int64_t* ref = &ref_px_[(mb * cands + c) * kMbWords];
      std::int64_t sad = 0;
      for (unsigned r = 0; r < 8; ++r)
        for (unsigned j = 0; j < 8; ++j)
          sad += std::abs(cur[16 * r + j] - ref[16 * r + j]);
      if (sad < best) {
        best = sad;
        bc = c;
      }
    }
    golden_sad_[mbs_ + mb] = best;
    golden_cand_[mbs_ + mb] = bc;
    // Butterfly transform: per row, halves a/b -> (a+b, a-b).
    for (unsigned r = 0; r < 16; ++r)
      for (unsigned j = 0; j < 8; ++j) {
        std::int64_t a = cur[16 * r + j], b = cur[16 * r + 8 + j];
        golden_dct_[mb * kMbWords + 16 * r + j] = a + b;
        golden_dct_[mb * kMbWords + 16 * r + 8 + j] = a - b;
      }
    // Entropy stand-in: transitions between adjacent words in the copied
    // bitstream prefix.
    std::int64_t transitions = 0;
    for (unsigned k = 1; k < kRleWords; ++k)
      if (golden_dct_[mb * kMbWords + k] != golden_dct_[mb * kMbWords + k - 1])
        ++transitions;
    golden_rle_[mb] = transitions;
  }
}

void MpencWorkload::init_memory(func::FuncMemory& mem) const {
  mem.write_block_i64(cur_, cur_px_);
  mem.write_block_i64(ref_, ref_px_);
}

// Worker: motion estimation + transform + copy for this thread's MBs.
isa::Program MpencWorkload::worker_program(unsigned tid,
                                           unsigned nthreads) const {
  ProgramBuilder b("mpenc-w" + std::to_string(tid));
  const unsigned cands = full_cands_ + half_cands_;
  constexpr RegIdx mb = 1, cand = 2, row = 3, vl = 4, n = 5, scr = 6,
                   curP = 16, refP = 17, dctP = 18, bitP = 19,
                   rowCur = 20, rowRef = 21, outP = 22, acc = 33, t = 34,
                   best = 35, bestC = 36, big = 37, mbLim = 8, step = 9;

  b.li(mb, tid);
  b.li(mbLim, mbs_);
  b.li(step, nthreads);
  auto mb_top = b.label();
  auto mb_done = b.label();
  b.bind(mb_top);
  b.bge(mb, mbLim, mb_done);

  // Pointers for this macroblock (computed addressing, as the compiler
  // would emit for strided frame buffers).
  b.li(scr, kMbWords * 8);
  b.mul(curP, mb, scr);
  b.li(t, static_cast<std::int64_t>(cur_));
  b.add(curP, curP, t);
  b.li(scr, cands * kMbWords * 8);
  b.mul(refP, mb, scr);
  b.li(t, static_cast<std::int64_t>(ref_));
  b.add(refP, refP, t);
  b.li(scr, kMbWords * 8);
  b.mul(dctP, mb, scr);
  b.li(t, static_cast<std::int64_t>(dct_));
  b.add(dctP, dctP, t);
  b.mul(bitP, mb, scr);
  b.li(t, static_cast<std::int64_t>(bitbuf_));
  b.add(bitP, bitP, t);

  // ---- full 16x16 SAD over candidates [0, full_cands_) ----
  b.li(best, std::numeric_limits<std::int32_t>::max());
  b.li(bestC, 0);
  b.li(cand, 0);
  {
    auto cand_top = b.label();
    auto cand_done = b.label();
    b.bind(cand_top);
    b.li(big, full_cands_);
    b.bge(cand, big, cand_done);
    b.li(n, 16);
    b.setvl(vl, n);  // VL 16
    b.li(acc, 0);
    b.mov(rowCur, curP);
    b.mov(rowRef, refP);
    b.li(row, 0);
    auto row_top = b.label();
    b.bind(row_top);
    b.vload(1, rowCur);
    b.vload(2, rowRef);
    b.vabsdiff(3, 1, 2);
    b.vredsum(t, 3);
    b.add(acc, acc, t);
    b.addi(rowCur, rowCur, 16 * 8);
    b.addi(rowRef, rowRef, 16 * 8);
    b.addi(row, row, 1);
    b.li(scr, 16);
    b.blt(row, scr, row_top);
    // best-candidate selection (data-dependent branch)
    auto not_better = b.label();
    b.bge(acc, best, not_better);
    b.mov(best, acc);
    b.mov(bestC, cand);
    b.bind(not_better);
    b.addi(refP, refP, kMbWords * 8);
    b.addi(cand, cand, 1);
    b.jump(cand_top);
    b.bind(cand_done);
  }
  b.slli(scr, mb, 3);
  b.li(t, static_cast<std::int64_t>(sad_out_));
  b.add(t, t, scr);
  b.store(t, best);
  b.li(t, static_cast<std::int64_t>(cand_out_));
  b.add(t, t, scr);
  b.store(t, bestC);

  // ---- 8x8 sub-block SAD over candidates [full_cands_, cands) ----
  b.li(best, std::numeric_limits<std::int32_t>::max());
  b.li(bestC, 0);
  b.li(cand, full_cands_);
  {
    auto cand_top = b.label();
    auto cand_done = b.label();
    b.bind(cand_top);
    b.li(big, cands);
    b.bge(cand, big, cand_done);
    b.li(n, 8);
    b.setvl(vl, n);  // VL 8
    b.li(acc, 0);
    b.mov(rowCur, curP);
    b.mov(rowRef, refP);
    b.li(row, 0);
    auto row_top = b.label();
    b.bind(row_top);
    b.vload(1, rowCur);
    b.vload(2, rowRef);
    b.vabsdiff(3, 1, 2);
    b.vredsum(t, 3);
    b.add(acc, acc, t);
    b.addi(rowCur, rowCur, 16 * 8);
    b.addi(rowRef, rowRef, 16 * 8);
    b.addi(row, row, 1);
    b.li(scr, 8);
    b.blt(row, scr, row_top);
    auto not_better = b.label();
    b.bge(acc, best, not_better);
    b.mov(best, acc);
    b.mov(bestC, cand);
    b.bind(not_better);
    b.addi(refP, refP, kMbWords * 8);
    b.addi(cand, cand, 1);
    b.jump(cand_top);
    b.bind(cand_done);
  }
  b.slli(scr, mb, 3);
  b.li(t, static_cast<std::int64_t>(sad_out_ + 8 * mbs_));
  b.add(t, t, scr);
  b.store(t, best);
  b.li(t, static_cast<std::int64_t>(cand_out_ + 8 * mbs_));
  b.add(t, t, scr);
  b.store(t, bestC);

  // ---- butterfly transform (VL 8 halves per 16-pixel row) ----
  b.li(n, 8);
  b.setvl(vl, n);
  b.mov(rowCur, curP);
  b.mov(outP, dctP);
  b.li(row, 0);
  {
    auto row_top = b.label();
    b.bind(row_top);
    b.vload(1, rowCur);       // a = row[0..8)
    b.vload(2, rowCur, 64);   // b = row[8..16)
    b.vadd(3, 1, 2);
    b.vsub(1, 1, 2);
    b.vstore(3, outP);
    b.vstore(1, outP, 64);
    b.addi(rowCur, rowCur, 16 * 8);
    b.addi(outP, outP, 16 * 8);
    b.addi(row, row, 1);
    b.li(scr, 16);
    b.blt(row, scr, row_top);
  }

  // ---- bitstream copy (VL 64 strips; clamped under VLT partitions) ----
  b.membar();  // transform stores must be visible to the copy loads
  b.li(n, kMbWords);
  b.mov(rowCur, dctP);
  b.mov(outP, bitP);
  strip_mine(b, n, vl, scr, {rowCur, outP}, [&] {
    b.vload(1, rowCur);
    b.vstore(1, outP);
  });

  b.add(mb, mb, step);
  b.jump(mb_top);
  b.bind(mb_done);
  b.halt();
  return b.build();
}

// Serial entropy coding: count value transitions in each MB's bitstream
// prefix (scalar, branchy, non-vectorizable).
isa::Program MpencWorkload::entropy_program() const {
  ProgramBuilder b("mpenc-entropy");
  constexpr RegIdx mb = 1, k = 2, cnt = 3, prev = 33, cur = 34, p = 16,
                   o = 17, lim = 4, scr = 5;
  b.li(mb, 0);
  auto mb_top = b.label();
  auto mb_done = b.label();
  b.bind(mb_top);
  b.li(lim, mbs_);
  b.bge(mb, lim, mb_done);
  b.li(scr, kMbWords * 8);
  b.mul(p, mb, scr);
  b.li(scr, static_cast<std::int64_t>(bitbuf_));
  b.add(p, p, scr);
  b.li(cnt, 0);
  b.load(prev, p);
  b.li(k, 1);
  auto w_top = b.label();
  auto w_done = b.label();
  b.bind(w_top);
  b.li(lim, kRleWords);
  b.bge(k, lim, w_done);
  b.addi(p, p, 8);
  b.load(cur, p);
  auto same = b.label();
  b.beq(cur, prev, same);
  b.addi(cnt, cnt, 1);
  b.bind(same);
  b.mov(prev, cur);
  b.addi(k, k, 1);
  b.jump(w_top);
  b.bind(w_done);
  b.slli(scr, mb, 3);
  b.li(o, static_cast<std::int64_t>(rle_out_));
  b.add(o, o, scr);
  b.store(o, cnt);
  b.addi(mb, mb, 1);
  b.jump(mb_top);
  b.bind(mb_done);
  b.halt();
  return b.build();
}

machine::ParallelProgram MpencWorkload::build(const Variant& variant) const {
  unsigned nthreads =
      variant.kind == Variant::Kind::kBase ? 1 : variant.nthreads;
  VLT_CHECK(supports(variant.kind), "unsupported mpenc variant");

  machine::ParallelProgram prog;
  prog.name = name();

  machine::Phase encode;
  encode.label = "motion+transform+copy";
  encode.mode = nthreads == 1 ? machine::PhaseMode::kSerial
                              : machine::PhaseMode::kVectorThreads;
  encode.vlt_opportunity = true;
  for (unsigned t = 0; t < nthreads; ++t)
    encode.programs.push_back(worker_program(t, nthreads));
  prog.phases.push_back(std::move(encode));

  machine::Phase entropy;
  entropy.label = "entropy";
  entropy.mode = machine::PhaseMode::kSerial;
  entropy.vlt_opportunity = false;
  entropy.programs.push_back(entropy_program());
  prog.phases.push_back(std::move(entropy));
  return prog;
}

std::optional<std::string> MpencWorkload::verify(
    const func::FuncMemory& mem) const {
  auto sad = mem.read_block_i64(sad_out_, 2 * mbs_);
  auto cand = mem.read_block_i64(cand_out_, 2 * mbs_);
  for (unsigned i = 0; i < 2 * mbs_; ++i) {
    if (sad[i] != golden_sad_[i])
      return "mpenc: sad[" + std::to_string(i) + "] mismatch";
    if (cand[i] != golden_cand_[i])
      return "mpenc: cand[" + std::to_string(i) + "] mismatch";
  }
  auto dct = mem.read_block_i64(dct_, golden_dct_.size());
  for (std::size_t i = 0; i < golden_dct_.size(); ++i)
    if (dct[i] != golden_dct_[i])
      return "mpenc: dct[" + std::to_string(i) + "] mismatch";
  auto bits = mem.read_block_i64(bitbuf_, golden_dct_.size());
  for (std::size_t i = 0; i < golden_dct_.size(); ++i)
    if (bits[i] != golden_dct_[i])
      return "mpenc: bitbuf[" + std::to_string(i) + "] mismatch";
  auto rle = mem.read_block_i64(rle_out_, mbs_);
  for (unsigned i = 0; i < mbs_; ++i)
    if (rle[i] != golden_rle_[i])
      return "mpenc: rle[" + std::to_string(i) + "] mismatch";
  return std::nullopt;
}

}  // namespace vlt::workloads
