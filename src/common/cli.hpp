// Shared command-line validation helpers for the vlt tool family.
//
// Every tool that takes a host-parallelism knob (--host-threads,
// --threads, --workers) validates it through parse_count so the
// rejection behavior is identical everywhere: a malformed or
// out-of-range value prints one diagnostic line to stderr and the tool
// exits 2 (usage error), never a silently clamped or truncated count.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

namespace vlt::cli {

/// Hard ceiling for host thread counts accepted by any tool. Far above
/// any sane machine; exists so a typo like "--threads 1e9" cannot turn
/// into a fork bomb.
inline constexpr unsigned long kMaxHostThreads = 1024;

/// Parses a strictly-decimal count in [min, max]. On failure prints
///   <tool>: <flag> expects an integer in [min,max], got '<v>'
/// to stderr and returns nullopt; the caller exits 2. Accepts no sign,
/// no whitespace, no trailing junk — "8." and "8e0" are rejected, not
/// truncated (vltperf historically accepted them via strtod).
inline std::optional<unsigned> parse_count(const char* tool,
                                           const std::string& flag,
                                           const char* v, unsigned long min,
                                           unsigned long max) {
  char* end = nullptr;
  unsigned long n = std::strtoul(v, &end, 10);
  if (*v == '\0' || *v == '-' || *v == '+' || end == v || *end != '\0' ||
      n < min || n > max) {
    std::fprintf(stderr, "%s: %s expects an integer in [%lu,%lu], got '%s'\n",
                 tool, flag.c_str(), min, max, v);
    return std::nullopt;
  }
  return static_cast<unsigned>(n);
}

/// parse_count specialized for host thread counts: [1, kMaxHostThreads].
inline std::optional<unsigned> parse_thread_count(const char* tool,
                                                  const std::string& flag,
                                                  const char* v) {
  return parse_count(tool, flag, v, 1, kMaxHostThreads);
}

}  // namespace vlt::cli
