// Streaming FNV-1a digest and its canonical 16-hex rendering.
//
// One digest implementation serves every layer that fingerprints
// content: the campaign result cache keys cells with it, sweep journals
// and the vltshard hello handshake render it through digest_hex(), and
// the vltckpt snapshot format digests every section with it
// (docs/CKPT.md). Keeping the mixing rules in one place is what makes
// those digests comparable across layers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace vlt {

/// Streaming FNV-1a over 64-bit words and length-delimited strings.
class Digest {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 1099511628211ull;
    }
  }
  void mix(const std::string& s) {
    for (char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 1099511628211ull;
    }
    mix(s.size());  // length-delimit so "ab","c" != "a","bc"
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;
};

/// Canonical zero-padded lowercase 16-hex rendering used by journal
/// headers, the shard handshake, and checkpoint section digests.
inline std::string digest_hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace vlt
