#include "common/error.hpp"

namespace vlt {

const char* error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInvariant: return "invariant";
    case ErrorKind::kConfig: return "config";
    case ErrorKind::kWorkloadVerify: return "workload-verify";
    case ErrorKind::kTimeout: return "timeout";
    case ErrorKind::kIo: return "io";
    case ErrorKind::kWorker: return "worker";
  }
  return "unknown";
}

SimError::SimError(ErrorKind kind, const char* file, int line, std::string msg)
    : std::runtime_error(std::string(file) + ":" + std::to_string(line) +
                         ": " + msg),
      kind_(kind),
      file_(file),
      line_(line),
      msg_(std::move(msg)) {}

}  // namespace vlt
