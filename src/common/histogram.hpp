// Integer-keyed histogram used for vector-length characterization (Table 4).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

namespace vlt {

class Histogram {
 public:
  void add(std::uint64_t key, std::uint64_t weight = 1) {
    counts_[key] += weight;
    total_weight_ += weight;
    weighted_sum_ += key * weight;
  }

  std::uint64_t total_weight() const { return total_weight_; }
  std::uint64_t weighted_sum() const { return weighted_sum_; }

  double mean() const {
    return total_weight_ == 0
               ? 0.0
               : static_cast<double>(weighted_sum_) /
                     static_cast<double>(total_weight_);
  }

  /// Keys sorted by descending weight (ties: ascending key); at most `n`.
  std::vector<std::uint64_t> top_keys(std::size_t n) const {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> items(counts_.begin(),
                                                               counts_.end());
    std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < items.size() && i < n; ++i)
      keys.push_back(items[i].first);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  const std::map<std::uint64_t, std::uint64_t>& counts() const {
    return counts_;
  }

  void clear() {
    counts_.clear();
    total_weight_ = 0;
    weighted_sum_ = 0;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_weight_ = 0;
  std::uint64_t weighted_sum_ = 0;
};

}  // namespace vlt
