// Fundamental type aliases shared by every vltsim module.
#pragma once

#include <cstdint>
#include <cstddef>

namespace vlt {

/// Simulated clock cycle. The whole machine runs off a single clock domain,
/// as in the Cray X1 model the paper simulates.
using Cycle = std::uint64_t;

/// Byte address in the simulated 64-bit flat address space.
using Addr = std::uint64_t;

/// Architectural or physical register index.
using RegIdx = std::uint8_t;

/// Hardware thread (context) identifier.
using ThreadId = std::uint32_t;

/// Raw 64-bit register value. Scalar registers hold either an int64 or a
/// double; vector elements are 64-bit as in the Cray X1 ISA.
using Bits = std::uint64_t;

inline constexpr Cycle kNeverReady = ~Cycle{0};

/// Maximum hardware vector length of the base machine (Cray X1: 64
/// elements per vector register).
inline constexpr unsigned kMaxVectorLength = 64;

/// Number of architectural vector registers (Cray X1: 32).
inline constexpr unsigned kNumVectorRegs = 32;

/// Number of architectural scalar registers (A+S files collapsed into one).
inline constexpr unsigned kNumScalarRegs = 64;

/// Cache line size used throughout the memory hierarchy.
inline constexpr unsigned kLineBytes = 64;

}  // namespace vlt
