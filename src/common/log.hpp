// Lightweight assertion and diagnostics helpers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace vlt {

[[noreturn]] void fatal(const char* file, int line, const std::string& msg);

/// Simulator invariant check: always on (simulation bugs silently corrupt
/// results, so these are not compiled out in release builds).
#define VLT_CHECK(cond, msg)                                      \
  do {                                                            \
    if (!(cond)) ::vlt::fatal(__FILE__, __LINE__, (msg));         \
  } while (0)

}  // namespace vlt
