// Lightweight assertion and diagnostics helpers.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/error.hpp"

namespace vlt {

/// Prints "vltsim fatal: file:line: msg" and aborts. The last-resort exit
/// used by run_or_die-style helpers whose callers must never see numbers
/// from a broken run; recoverable paths throw SimError instead.
[[noreturn]] void fatal(const char* file, int line, const std::string& msg);

/// Raises a typed SimError from the current source location.
#define VLT_FAIL(kind, msg) \
  throw ::vlt::SimError((kind), __FILE__, __LINE__, (msg))

/// Simulator invariant check: always on (simulation bugs silently corrupt
/// results, so these are not compiled out in release builds). Throws
/// SimError(kInvariant); the campaign engine isolates the failure to the
/// sweep cell that raised it, and the CLI tools' top-level handlers print
/// the classic file:line fatal diagnostic for standalone runs.
#define VLT_CHECK(cond, msg)                                      \
  do {                                                            \
    if (!(cond)) VLT_FAIL(::vlt::ErrorKind::kInvariant, (msg));   \
  } while (0)

}  // namespace vlt
