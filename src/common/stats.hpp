// Named-counter set used by pipeline components for bookkeeping that tests
// and the characterization bench (Table 4) introspect.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

namespace vlt {

class StatSet {
 public:
  // string_view + transparent comparator: counter names are almost always
  // string literals, and heterogeneous lookup avoids materialising a
  // std::string per call on the hot path.
  void inc(std::string_view name, std::uint64_t v = 1);
  std::uint64_t get(std::string_view name) const;
  void merge(const StatSet& other);
  void clear() { counters_.clear(); }
  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

}  // namespace vlt
