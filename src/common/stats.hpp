// Named-counter set used by pipeline components for bookkeeping that tests
// and the characterization bench (Table 4) introspect.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace vlt {

class StatSet {
 public:
  void inc(const std::string& name, std::uint64_t v = 1) { counters_[name] += v; }
  std::uint64_t get(const std::string& name) const;
  void merge(const StatSet& other);
  void clear() { counters_.clear(); }
  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace vlt
