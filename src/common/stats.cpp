#include "common/stats.hpp"

#include <sstream>

namespace vlt {

std::uint64_t StatSet::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void StatSet::merge(const StatSet& other) {
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
}

std::string StatSet::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters_) os << k << " = " << v << "\n";
  return os.str();
}

}  // namespace vlt
