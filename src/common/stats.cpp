#include "common/stats.hpp"

#include <sstream>

namespace vlt {

void StatSet::inc(std::string_view name, std::uint64_t v) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    counters_.emplace(std::string(name), v);
  else
    it->second += v;
}

std::uint64_t StatSet::get(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void StatSet::merge(const StatSet& other) {
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
}

std::string StatSet::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters_) os << k << " = " << v << "\n";
  return os.str();
}

}  // namespace vlt
