#include "common/log.hpp"

namespace vlt {

void fatal(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "vltsim fatal: %s:%d: %s\n", file, line, msg.c_str());
  std::abort();
}

}  // namespace vlt
