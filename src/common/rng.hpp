// Deterministic xorshift RNG. Workload data and layouts must be identical
// across runs and machine configurations, so we never use std::random_device
// or unseeded engines.
#pragma once

#include <cstdint>

namespace vlt {

class Xorshift64 {
 public:
  explicit Xorshift64(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
      : state_(seed ? seed : 1) {}

  std::uint64_t next() {
    std::uint64_t x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x;
  }

  /// Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    return bound ? next() % bound : 0;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace vlt
