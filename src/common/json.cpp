#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace vlt {

namespace {

const std::string kEmptyString;
const Json kNullJson;

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

}  // namespace

void Json::set(const std::string& key, Json v) {
  type_ = Type::kObject;
  for (auto& [k, existing] : keys_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  keys_.emplace_back(key, std::move(v));
}

bool Json::as_bool(bool dflt) const {
  return type_ == Type::kBool ? bool_ : dflt;
}

std::int64_t Json::as_int(std::int64_t dflt) const {
  switch (type_) {
    case Type::kInt: return int_;
    case Type::kUint: return static_cast<std::int64_t>(uint_);
    case Type::kDouble: return static_cast<std::int64_t>(double_);
    default: return dflt;
  }
}

std::uint64_t Json::as_uint(std::uint64_t dflt) const {
  switch (type_) {
    case Type::kInt: return static_cast<std::uint64_t>(int_);
    case Type::kUint: return uint_;
    case Type::kDouble: return static_cast<std::uint64_t>(double_);
    default: return dflt;
  }
}

double Json::as_double(double dflt) const {
  switch (type_) {
    case Type::kInt: return static_cast<double>(int_);
    case Type::kUint: return static_cast<double>(uint_);
    case Type::kDouble: return double_;
    default: return dflt;
  }
}

const std::string& Json::as_string() const {
  return type_ == Type::kString ? string_ : kEmptyString;
}

const Json& Json::at(std::size_t i) const {
  return i < items_.size() ? items_[i] : kNullJson;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : keys_)
    if (k == key) return &v;
  return nullptr;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kUint: out += std::to_string(uint_); break;
    case Type::kDouble: append_double(out, double_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        append_escaped(out, keys_[i].first);
        out += indent < 0 ? ":" : ": ";
        keys_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!keys_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<Json> parse(std::string* error) {
    std::optional<Json> v = parse_value();
    skip_ws();
    if (v && pos_ != text_.size()) {
      fail("trailing characters after document");
      v.reset();
    }
    if (!v && error) *error = error_ + " at offset " + std::to_string(pos_);
    return v;
  }

 private:
  void fail(const std::string& msg) {
    if (error_.empty()) error_ = msg;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      std::optional<std::string> s = parse_string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (literal("null")) return Json();
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    return parse_number();
  }

  std::optional<Json> parse_object() {
    ++pos_;  // '{'
    Json obj = Json::object();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<Json> v = parse_value();
      if (!v) return std::nullopt;
      obj.set(*key, std::move(*v));
      if (consume(',')) continue;
      if (consume('}')) return obj;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<Json> parse_array() {
    ++pos_;  // '['
    Json arr = Json::array();
    if (consume(']')) return arr;
    while (true) {
      std::optional<Json> v = parse_value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      if (consume(',')) continue;
      if (consume(']')) return arr;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return std::nullopt;
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = static_cast<unsigned>(
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          // Campaign artifacts are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> parse_number() {
    std::size_t start = pos_;
    bool is_float = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_float = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      fail("expected value");
      return std::nullopt;
    }
    std::string tok = text_.substr(start, pos_ - start);
    if (is_float) return Json(std::strtod(tok.c_str(), nullptr));
    if (tok[0] == '-')
      return Json(static_cast<std::int64_t>(
          std::strtoll(tok.c_str(), nullptr, 10)));
    return Json(static_cast<std::uint64_t>(
        std::strtoull(tok.c_str(), nullptr, 10)));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> Json::parse(const std::string& text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace vlt
