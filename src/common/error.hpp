// Typed simulator errors (the vltguard taxonomy).
//
// Every recoverable failure the simulator can raise is a SimError carrying
// one of five kinds. VLT_CHECK (common/log.hpp) throws kInvariant; other
// layers throw the kind that matches the fault:
//
//   kInvariant       a simulator self-check failed (state corruption,
//                    protocol violation, audit finding) — a bug, not input
//   kConfig          bad input: unknown workload/config, mismatched journal
//   kWorkloadVerify  the run completed but the golden check failed
//   kTimeout         a run exceeded its cycle budget (possible deadlock)
//   kIo              the host filesystem failed underneath us
//   kWorker          a sharded-campaign worker process failed (crash,
//                    signal, protocol violation, heartbeat loss)
//
// The campaign engine catches SimError per sweep cell and turns it into a
// failed RunResult, so one bad cell never discards a thousand good ones;
// the CLI tools install a top-level handler that prints the classic
// "vltsim fatal: file:line: msg" diagnostic for standalone runs. See
// docs/ERRORS.md.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace vlt {

enum class ErrorKind : std::uint8_t {
  kInvariant,
  kConfig,
  kWorkloadVerify,
  kTimeout,
  kIo,
  kWorker,
};

/// Stable lowercase name used in JSON/CSV statuses and diagnostics:
/// "invariant", "config", "workload-verify", "timeout", "io", "worker".
const char* error_kind_name(ErrorKind kind);

class SimError : public std::runtime_error {
 public:
  /// `file`/`line` locate the throw site (VLT_CHECK passes __FILE__ /
  /// __LINE__); what() formats as "file:line: msg".
  SimError(ErrorKind kind, const char* file, int line, std::string msg);

  ErrorKind kind() const { return kind_; }
  const char* file() const { return file_; }
  int line() const { return line_; }
  /// The bare diagnostic, without the file:line prefix of what().
  const std::string& message() const { return msg_; }

 private:
  ErrorKind kind_;
  const char* file_;
  int line_;
  std::string msg_;
};

}  // namespace vlt
