// Minimal JSON value: build, serialize, parse. Object members keep their
// insertion order and numbers print through a fixed format, so a Json tree
// always serializes to the same bytes — the property the campaign result
// cache and the committed sweep goldens rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace vlt {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(std::int64_t v) : type_(Type::kInt), int_(v) {}
  Json(std::uint64_t v) : type_(Type::kUint), uint_(v) {}
  Json(int v) : type_(Type::kInt), int_(v) {}
  Json(unsigned v) : type_(Type::kUint), uint_(v) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  // --- builders ---
  void push_back(Json v) { items_.push_back(std::move(v)); }
  /// Adds (or replaces) an object member, preserving first-set order.
  void set(const std::string& key, Json v);

  // --- accessors (loose: wrong-type access returns a default) ---
  bool as_bool(bool dflt = false) const;
  std::int64_t as_int(std::int64_t dflt = 0) const;
  std::uint64_t as_uint(std::uint64_t dflt = 0) const;
  double as_double(double dflt = 0.0) const;
  const std::string& as_string() const;

  std::size_t size() const { return items_.size(); }
  const Json& at(std::size_t i) const;
  /// Object member lookup; returns nullptr when absent or not an object.
  const Json* find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return keys_;
  }
  const std::vector<Json>& items() const { return items_; }

  /// Serializes deterministically. indent < 0: compact single line.
  std::string dump(int indent = -1) const;

  /// Strict parse of a complete JSON document; nullopt on any error
  /// (`error`, if given, receives a position-annotated description).
  static std::optional<Json> parse(const std::string& text,
                                   std::string* error = nullptr);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                           // array elements
  std::vector<std::pair<std::string, Json>> keys_;    // object members
};

}  // namespace vlt
