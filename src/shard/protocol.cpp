#include "shard/protocol.hpp"

#include <cstdio>

#include "common/digest.hpp"

namespace vlt::shard {

const char* worker_fault_name(WorkerFault fault) {
  switch (fault) {
    case WorkerFault::kExit: return "exit";
    case WorkerFault::kSignal: return "signal";
    case WorkerFault::kProtocol: return "protocol";
    case WorkerFault::kHeartbeat: return "heartbeat";
    case WorkerFault::kSpawn: return "spawn";
  }
  return "unknown";
}

std::string spec_hex(std::uint64_t spec) { return digest_hex(spec); }

std::string hello_line(int worker, std::int64_t pid, std::uint64_t spec,
                       std::size_t cells) {
  Json j = Json::object();
  j.set("type", "hello");
  j.set("worker", static_cast<std::int64_t>(worker));
  j.set("pid", pid);
  j.set("spec", spec_hex(spec));
  j.set("cells", static_cast<std::uint64_t>(cells));
  return j.dump();
}

std::string heartbeat_line(int worker) {
  Json j = Json::object();
  j.set("type", "hb");
  j.set("worker", static_cast<std::int64_t>(worker));
  return j.dump();
}

std::string result_line(std::size_t cell, bool cached,
                        const machine::RunResult& result) {
  Json j = Json::object();
  j.set("type", "result");
  j.set("cell", static_cast<std::uint64_t>(cell));
  j.set("cached", cached);
  j.set("result", result.to_json());
  return j.dump();
}

std::string run_line(std::size_t cell, const std::string& ckpt) {
  Json j = Json::object();
  j.set("type", "run");
  j.set("cell", static_cast<std::uint64_t>(cell));
  if (!ckpt.empty()) j.set("ckpt", ckpt);
  return j.dump();
}

std::string exit_line() {
  Json j = Json::object();
  j.set("type", "exit");
  return j.dump();
}

std::optional<Message> parse_message(const std::string& line) {
  std::optional<Json> j = Json::parse(line);
  if (!j || !j->is_object()) return std::nullopt;
  const Json* type = j->find("type");
  if (type == nullptr) return std::nullopt;
  Message m;
  const std::string& t = type->as_string();
  if (t == "hello") {
    m.type = Message::Type::kHello;
    const Json* worker = j->find("worker");
    const Json* pid = j->find("pid");
    const Json* spec = j->find("spec");
    const Json* cells = j->find("cells");
    if (worker == nullptr || pid == nullptr || spec == nullptr ||
        cells == nullptr)
      return std::nullopt;
    m.worker = static_cast<int>(worker->as_int());
    m.pid = pid->as_int();
    m.spec = spec->as_string();
    m.cells = cells->as_uint();
  } else if (t == "hb") {
    m.type = Message::Type::kHeartbeat;
    const Json* worker = j->find("worker");
    if (worker == nullptr) return std::nullopt;
    m.worker = static_cast<int>(worker->as_int());
  } else if (t == "result") {
    m.type = Message::Type::kResult;
    const Json* cell = j->find("cell");
    const Json* cached = j->find("cached");
    const Json* result = j->find("result");
    if (cell == nullptr || cached == nullptr || result == nullptr)
      return std::nullopt;
    m.cell = static_cast<std::size_t>(cell->as_uint());
    m.cached = cached->as_bool();
    m.result = machine::RunResult::from_json(*result);
    if (!m.result) return std::nullopt;
  } else if (t == "run") {
    m.type = Message::Type::kRun;
    const Json* cell = j->find("cell");
    if (cell == nullptr) return std::nullopt;
    m.cell = static_cast<std::size_t>(cell->as_uint());
    if (const Json* ckpt = j->find("ckpt")) m.ckpt = ckpt->as_string();
  } else if (t == "exit") {
    m.type = Message::Type::kExit;
  } else {
    return std::nullopt;
  }
  return m;
}

}  // namespace vlt::shard
