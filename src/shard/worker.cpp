#include "shard/worker.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/journal.hpp"
#include "shard/protocol.hpp"

namespace vlt::shard {

namespace {

/// One fault hook's targets: worker ids and/or cell-key substrings.
struct FaultSpec {
  std::vector<int> ids;
  std::vector<std::string> cell_substrings;

  bool matches_worker(int id) const {
    for (int i : ids)
      if (i == id) return true;
    return false;
  }
  bool matches_cell(const std::string& key) const {
    for (const std::string& s : cell_substrings)
      if (key.find(s) != std::string::npos) return true;
    return false;
  }
  bool empty() const { return ids.empty() && cell_substrings.empty(); }
};

FaultSpec parse_fault(const char* env) {
  FaultSpec spec;
  if (env == nullptr) return spec;
  std::string s = env;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    std::string tok = s.substr(start, comma - start);
    start = comma + 1;
    if (tok.empty()) continue;
    if (tok.rfind("cell:", 0) == 0) {
      spec.cell_substrings.push_back(tok.substr(5));
    } else {
      spec.ids.push_back(static_cast<int>(std::strtol(tok.c_str(),
                                                      nullptr, 10)));
    }
  }
  return spec;
}

/// Serialized line writer: the heartbeat thread and the main loop share
/// stdout, and a protocol line must never interleave with another.
class LineWriter {
 public:
  void send(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }

 private:
  std::mutex mu_;
};

}  // namespace

int run_worker(const campaign::SweepSpec& spec,
               const WorkerOptions& options) {
  const std::vector<campaign::Cell>& cells = spec.cells();
  std::uint64_t digest = campaign::spec_digest(spec);

  campaign::Journal journal;
  if (!options.journal_path.empty())
    journal.open(options.journal_path, digest, cells.size(), {},
                 options.worker_id);

  std::optional<campaign::ResultCache> cache;
  if (!options.cell.cache_dir.empty()) cache.emplace(options.cell.cache_dir);

  // Deterministic fault hooks (docs/SHARD.md). Read once, before any
  // thread exists.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  FaultSpec kill_fault = parse_fault(std::getenv("VLTSHARD_KILL_WORKER"));
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  FaultSpec hang_fault = parse_fault(std::getenv("VLTSHARD_HANG_WORKER"));
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  FaultSpec corrupt_fault = parse_fault(std::getenv("VLTSHARD_CORRUPT_LINE"));
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  FaultSpec ckpt_kill_fault =
      parse_fault(std::getenv("VLTSHARD_KILL_AFTER_CKPT"));

  LineWriter out;
  out.send(hello_line(options.worker_id, static_cast<std::int64_t>(getpid()),
                      digest, cells.size()));

  // Heartbeats keep flowing while the main thread simulates, so the
  // coordinator can tell a long cell from a hung worker.
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::atomic<bool> hb_paused{false};
  std::thread heartbeat([&] {
    std::unique_lock<std::mutex> lock(hb_mu);
    while (true) {
      if (hb_cv.wait_for(lock, std::chrono::milliseconds(options.heartbeat_ms),
                         [&] { return hb_stop; }))
        return;
      if (!hb_paused.load(std::memory_order_relaxed))
        out.send(heartbeat_line(options.worker_id));
    }
  });
  auto stop_heartbeat = [&] {
    {
      std::lock_guard<std::mutex> lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
  };

  bool first_command = true;
  bool corrupted_once = false;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::optional<Message> msg = parse_message(line);
    if (!msg) {
      // A coordinator that garbles its side is not something a worker
      // can recover from; exiting nonzero classifies as kExit upstream.
      std::fprintf(stderr, "vltsweep worker %d: unparseable command\n",
                   options.worker_id);
      stop_heartbeat();
      return 3;
    }
    if (msg->type == Message::Type::kExit) break;
    if (msg->type != Message::Type::kRun) continue;
    if (msg->cell >= cells.size()) {
      std::fprintf(stderr, "vltsweep worker %d: cell %zu out of range\n",
                   options.worker_id, msg->cell);
      stop_heartbeat();
      return 3;
    }
    const campaign::Cell& cell = cells[msg->cell];
    std::string key = cell.key().to_string();

    bool id_hook = first_command;
    first_command = false;
    if ((id_hook && kill_fault.matches_worker(options.worker_id)) ||
        kill_fault.matches_cell(key)) {
      // Mid-cell crash: the cell is assigned, no result exists anywhere.
      std::raise(SIGKILL);
    }
    if ((id_hook && hang_fault.matches_worker(options.worker_id)) ||
        hang_fault.matches_cell(key)) {
      // Go silent: no heartbeats, no result. The coordinator's liveness
      // timeout must SIGKILL us.
      hb_paused.store(true, std::memory_order_relaxed);
      while (true) std::this_thread::sleep_for(std::chrono::seconds(3600));
    }

    if (!msg->ckpt.empty() &&
        ((id_hook && ckpt_kill_fault.matches_worker(options.worker_id)) ||
         ckpt_kill_fault.matches_cell(key))) {
      // Migration drill: die only after at least one snapshot exists,
      // so the replacement worker provably resumes mid-run rather than
      // from cycle zero. A watcher thread SIGKILLs us the instant the
      // snapshot file appears.
      std::thread([path = msg->ckpt] {
        while (!std::ifstream(path).good())
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        std::raise(SIGKILL);
      }).detach();
    }

    bool hit = false;
    // Checkpoint handoff (docs/CKPT.md): the coordinator names the
    // cell's snapshot file in the run command; execute_cell resumes
    // from a dead predecessor's snapshot when one is there, and writes
    // our own every checkpoint_every cycles for whoever succeeds us.
    campaign::CellCheckpoint ckpt;
    if (!msg->ckpt.empty() && options.cell.checkpoint_every > 0) {
      ckpt.every = options.cell.checkpoint_every;
      ckpt.path = msg->ckpt;
    }
    machine::RunResult result =
        campaign::execute_cell(cell, options.cell,
                               cache ? &*cache : nullptr, &hit,
                               ckpt.armed() ? &ckpt : nullptr);
    // Journal before reporting: a crash between the two loses the stdout
    // line but never the result — the merge finds it in the journal.
    journal.append(msg->cell, cell.key(), result);

    if (!corrupted_once && (corrupt_fault.matches_worker(options.worker_id) ||
                            corrupt_fault.matches_cell(key))) {
      corrupted_once = true;
      out.send("{\"type\":\"result\",\"cell\":" +
               std::to_string(msg->cell) + ",\"result\":{torn");
      continue;  // the coordinator will classify, kill, and reassign
    }
    out.send(result_line(msg->cell, hit, result));
  }

  stop_heartbeat();
  return 0;
}

}  // namespace vlt::shard
