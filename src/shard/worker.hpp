// Worker half of the vltshard protocol: the loop behind `vltsweep
// --worker`. A worker resolves the same grid as its coordinator (the
// hello handshake proves it via the spec digest), then executes cells
// one at a time as the coordinator assigns them, journaling each result
// to its own spec-digest-guarded shard journal *before* reporting it on
// stdout — so a worker (or coordinator) killed between the two loses
// nothing: the journal survives and the merge picks it up.
//
// A heartbeat thread emits liveness lines while the main thread
// simulates, so the coordinator can tell a long cell from a hung worker.
//
// Deterministic fault hooks for the crash-recovery tests (each matches a
// comma list of worker ids, or `cell:<substring>` of a cell key):
//   VLTSHARD_KILL_WORKER     SIGKILL mid-cell (on receipt of the run
//                            command, before any result exists)
//   VLTSHARD_HANG_WORKER     go silent mid-cell: stop heartbeating and
//                            never answer (exercises heartbeat loss)
//   VLTSHARD_CORRUPT_LINE    journal the result, then write a torn
//                            protocol line instead of the real one
//                            (exercises protocol-violation handling)
//   VLTSHARD_KILL_AFTER_CKPT SIGKILL the instant the cell's first
//                            mid-run snapshot lands on disk (exercises
//                            checkpoint handoff: the replacement must
//                            resume mid-run, docs/CKPT.md)
#pragma once

#include <string>

#include "campaign/campaign.hpp"

namespace vlt::shard {

struct WorkerOptions {
  int worker_id = 0;
  unsigned heartbeat_ms = 250;
  /// Shard journal path (the coordinator passes an explicit
  /// `<base>.w<id>.jsonl`); empty disables journaling.
  std::string journal_path;
  /// Per-cell execution policy: cache_dir/force/cell_cycle_limit/
  /// max_retries are honored exactly as in an in-process campaign.
  campaign::CampaignOptions cell;
};

/// Runs the worker loop over stdin/stdout until an exit command or EOF
/// (a dead coordinator closes the pipe; the worker finishes its current
/// cell, journals it, and exits so its journal is whole for --resume).
/// Returns the process exit code.
int run_worker(const campaign::SweepSpec& spec, const WorkerOptions& options);

}  // namespace vlt::shard
