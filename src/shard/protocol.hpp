// vltshard wire protocol: line-delimited JSON between the coordinator
// and its worker processes (`vltsweep --worker`), one message per line,
// flushed per line so a SIGKILL at any instant tears at most one line.
//
// Worker -> coordinator (stdout):
//   {"type":"hello","worker":K,"pid":P,"spec":"<16-hex>","cells":N}
//   {"type":"hb","worker":K}
//   {"type":"result","cell":I,"cached":B,"result":{RunResult...}}
//
// Coordinator -> worker (stdin):
//   {"type":"run","cell":I}
//   {"type":"run","cell":I,"ckpt":"<path>"}
//   {"type":"exit"}
//
// The optional `ckpt` field is the cell's mid-run snapshot file
// (docs/CKPT.md): the worker writes periodic checkpoints there while
// simulating, and — when a previous lease holder died mid-cell — the
// replacement worker finds the dead worker's last snapshot at the same
// path and resumes the simulation from it instead of cycle zero. A
// missing, truncated, or foreign snapshot falls back to a from-zero
// run; either way the result bytes are identical.
//
// The hello handshake carries the worker's independently computed spec
// digest; the coordinator refuses to assign cells to a worker that
// resolved a different grid (a mismatched binary or environment would
// otherwise corrupt the merged report). Anything unparseable — garbage
// bytes, a torn line, an out-of-protocol message — is a protocol
// violation: the coordinator classifies it as a kWorker fault, kills the
// worker, and reassigns its in-flight cell (docs/SHARD.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "machine/simulator.hpp"

namespace vlt::shard {

/// How a worker process failed, for SimError(kWorker) classification and
/// the shard.* supervision counters.
enum class WorkerFault : std::uint8_t {
  kExit,       // exited with a non-zero status of its own accord
  kSignal,     // killed by a signal (crash, OOM, injected SIGKILL)
  kProtocol,   // wrote bytes that do not parse as a protocol message
  kHeartbeat,  // stopped producing output past the liveness timeout
  kSpawn,      // could not be spawned (fork/exec failure)
};

/// Stable names: "exit", "signal", "protocol", "heartbeat", "spawn".
const char* worker_fault_name(WorkerFault fault);

/// One parsed protocol message. Fields beyond `type` are meaningful only
/// for the message types that carry them.
struct Message {
  enum class Type : std::uint8_t { kHello, kHeartbeat, kResult, kRun, kExit };
  Type type = Type::kHeartbeat;
  int worker = -1;            // hello, hb
  std::int64_t pid = -1;      // hello
  std::string spec;           // hello: 16-hex spec digest
  std::uint64_t cells = 0;    // hello
  std::size_t cell = 0;       // run, result
  std::string ckpt;           // run: mid-run snapshot path ("" = none)
  bool cached = false;        // result: served from the result cache
  std::optional<machine::RunResult> result;  // result
};

/// Formatters. Every line is a complete compact JSON document with no
/// embedded newline; the caller appends '\n' and writes atomically.
std::string hello_line(int worker, std::int64_t pid, std::uint64_t spec,
                       std::size_t cells);
std::string heartbeat_line(int worker);
std::string result_line(std::size_t cell, bool cached,
                        const machine::RunResult& result);
std::string run_line(std::size_t cell, const std::string& ckpt = "");
std::string exit_line();

/// Strict parse of one protocol line; nullopt on anything malformed
/// (the coordinator treats that as WorkerFault::kProtocol).
std::optional<Message> parse_message(const std::string& line);

/// Formats `spec` the way journal headers and hello messages do.
std::string spec_hex(std::uint64_t spec);

}  // namespace vlt::shard
