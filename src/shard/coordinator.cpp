#include "shard/coordinator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <thread>

#include "campaign/journal.hpp"
#include "common/log.hpp"
#include "isa/isa.hpp"

namespace vlt::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// Spawned worker ids (and thus shard-journal names) are bounded so a
/// resume can enumerate every possible journal and a crash loop cannot
/// mint files forever; hitting the cap degrades to in-process fallback.
constexpr int kMaxWorkerIds = 1024;

/// One worker-process seat. Seats persist across respawns (a crashed
/// worker's replacement occupies the same seat with a fresh id), so the
/// seat carries the respawn backoff state.
struct Slot {
  bool alive = false;
  int id = -1;
  pid_t pid = -1;
  int in = -1;   // coordinator -> worker stdin
  int out = -1;  // worker stdout -> coordinator (nonblocking)
  std::string buf;
  std::string journal_path;
  Clock::time_point last_seen;
  std::ptrdiff_t cell = -1;  // in-flight cell (the lease), -1 = idle
  bool hello_ok = false;
  unsigned crashes_in_row = 0;
  Clock::time_point respawn_at = Clock::time_point::min();
};

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

/// Kills every remaining worker on scope exit, so a thrown SimError (a
/// worker that resolved a different sweep) never leaks processes.
struct ScopeKill {
  std::function<void()> fn;
  ~ScopeKill() { fn(); }
};

}  // namespace

ShardCoordinator::ShardCoordinator(ShardOptions options)
    : options_(std::move(options)) {
  registry_.add_counter("shard.workers_spawned", &workers_spawned_);
  registry_.add_counter("shard.worker_crashes", &worker_crashes_);
  registry_.add_counter("shard.steals", &steals_);
  registry_.add_counter("shard.reassignments", &reassignments_);
  registry_.add_counter("shard.heartbeat_losses", &heartbeat_losses_);
  registry_.add_counter("shard.retries", &retries_);
  registry_.add_counter("shard.quarantines", &quarantines_);
  registry_.add_counter("shard.fallback_cells", &fallback_cells_);
  registry_.add_counter("shard.journal_duplicates", &journal_duplicates_);
  if (!options_.cell.cache_dir.empty()) {
    cache_.emplace(options_.cell.cache_dir);
    registry_.add_counter("cache.quarantined", cache_->quarantined_counter());
  }
}

campaign::RunSet ShardCoordinator::run(const campaign::SweepSpec& spec) {
  const std::vector<campaign::Cell>& cells = spec.cells();
  campaign::RunSet set;
  set.results_.resize(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    bool inserted = set.index_.emplace(cells[i].key(), i).second;
    VLT_CHECK(inserted,
              "duplicate sweep cell " + cells[i].key().to_string());
  }
  if (cells.empty()) return set;

  std::uint64_t digest = campaign::spec_digest(spec);
  // A worker dying mid-write must surface as EPIPE on our next write (or
  // EOF on its pipe), never as a fatal SIGPIPE to the coordinator.
  std::signal(SIGPIPE, SIG_IGN);
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const bool spawn_fail_hook = std::getenv("VLTSHARD_SPAWN_FAIL") != nullptr;

  const bool journaling = !options_.journal_base.empty();
  const std::string merged_path = options_.journal_base + ".merged.jsonl";
  auto shard_path = [&](int id) {
    return options_.journal_base + ".w" + std::to_string(id) + ".jsonl";
  };

  std::vector<bool> recorded(cells.size(), false);
  std::vector<unsigned> crash_count(cells.size(), 0);
  std::vector<std::string> last_fault(cells.size());
  std::size_t done = 0;
  std::size_t hits = 0;
  std::size_t resumed_count = 0;

  auto record = [&](std::size_t i, machine::RunResult r, bool hit,
                    const std::string& how) {
    if (recorded[i]) return;
    recorded[i] = true;
    set.results_[i] = std::move(r);
    if (hit) ++hits;
    ++done;
    if (options_.progress)
      options_.progress(done, cells.size(), cells[i].key(), how);
  };

  int next_worker_id = 0;

  // Resume: union whatever the previous coordinator's shard journals (and
  // its merged journal, if it got that far) hold, then continue with
  // fresh worker ids so no surviving journal is ever truncated.
  if (journaling) {
    if (options_.resume) {
      std::vector<std::string> paths;
      for (int id = 0; id < kMaxWorkerIds; ++id) {
        std::string p = shard_path(id);
        if (file_exists(p)) {
          paths.push_back(p);
          next_worker_id = id + 1;
        }
      }
      if (file_exists(merged_path)) paths.push_back(merged_path);
      std::size_t dups = 0;
      std::map<std::size_t, machine::RunResult> resumed =
          campaign::Journal::merge(paths, digest, cells.size(), &dups);
      journal_duplicates_.inc(dups);
      for (auto& [i, r] : resumed) {
        record(i, std::move(r), true, "resumed");
        ++resumed_count;
      }
    } else {
      for (int id = 0; id < kMaxWorkerIds; ++id)
        std::remove(shard_path(id).c_str());
      std::remove(merged_path.c_str());
    }
  }

  // Work-stealing queues: one contiguous spec-order block of the
  // remaining cells per seat. A seat drains its own block front-to-back
  // and steals from the back of the fullest other block when empty, so
  // two workers only ever collide on a cell through an explicit
  // reassignment, never through scheduling.
  std::vector<std::size_t> remaining;
  for (std::size_t i = 0; i < cells.size(); ++i)
    if (!recorded[i]) remaining.push_back(i);

  std::size_t nslots = std::max(1u, options_.workers);
  nslots = std::min(nslots, std::max<std::size_t>(1, remaining.size()));
  std::vector<std::deque<std::size_t>> queues(nslots);
  {
    std::size_t per = remaining.size() / nslots;
    std::size_t extra = remaining.size() % nslots;
    std::size_t pos = 0;
    for (std::size_t s = 0; s < nslots; ++s) {
      std::size_t count = per + (s < extra ? 1 : 0);
      for (std::size_t k = 0; k < count; ++k)
        queues[s].push_back(remaining[pos++]);
    }
  }

  auto take_work = [&](std::size_t s) -> std::ptrdiff_t {
    if (!queues[s].empty()) {
      std::size_t c = queues[s].front();
      queues[s].pop_front();
      return static_cast<std::ptrdiff_t>(c);
    }
    std::size_t best = s;
    std::size_t best_len = 0;
    for (std::size_t t = 0; t < nslots; ++t)
      if (t != s && queues[t].size() > best_len) {
        best = t;
        best_len = queues[t].size();
      }
    if (best_len == 0) return -1;
    std::size_t c = queues[best].back();
    queues[best].pop_back();
    steals_.inc();
    return static_cast<std::ptrdiff_t>(c);
  };

  std::vector<Slot> slots(nslots);
  std::size_t alive = 0;
  unsigned consecutive_spawn_failures = 0;

  auto kill_slot = [&](std::size_t s) {
    Slot& sl = slots[s];
    if (sl.in >= 0) close(sl.in);
    if (sl.out >= 0) close(sl.out);
    sl.in = sl.out = -1;
    if (sl.pid > 0) {
      kill(sl.pid, SIGKILL);
      while (waitpid(sl.pid, nullptr, 0) < 0 && errno == EINTR) {
      }
      sl.pid = -1;
    }
    if (sl.alive) {
      sl.alive = false;
      --alive;
    }
  };
  ScopeKill guard{[&] {
    for (std::size_t s = 0; s < nslots; ++s) kill_slot(s);
  }};

  auto spawn = [&](std::size_t s) -> bool {
    if (spawn_fail_hook || next_worker_id >= kMaxWorkerIds) {
      ++consecutive_spawn_failures;
      return false;
    }
    int to_child[2];
    int from_child[2];
    if (pipe2(to_child, O_CLOEXEC) != 0) {
      ++consecutive_spawn_failures;
      return false;
    }
    if (pipe2(from_child, O_CLOEXEC) != 0) {
      close(to_child[0]);
      close(to_child[1]);
      ++consecutive_spawn_failures;
      return false;
    }
    int id = next_worker_id++;
    std::string jpath = journaling ? shard_path(id) : std::string();

    std::vector<std::string> args;
    args.push_back(options_.worker_binary);
    args.insert(args.end(), options_.worker_args.begin(),
                options_.worker_args.end());
    args.push_back("--worker");
    args.push_back("--worker-id");
    args.push_back(std::to_string(id));
    args.push_back("--heartbeat-ms");
    args.push_back(std::to_string(options_.heartbeat_ms));
    if (!jpath.empty()) {
      args.push_back("--journal");
      args.push_back(jpath);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    pid_t pid = fork();
    if (pid < 0) {
      close(to_child[0]);
      close(to_child[1]);
      close(from_child[0]);
      close(from_child[1]);
      ++consecutive_spawn_failures;
      return false;
    }
    if (pid == 0) {
      // Child: pipes onto stdin/stdout, exec the worker. Every other
      // pipe fd in this process is O_CLOEXEC, so siblings cannot hold a
      // dead worker's pipe open and mask its EOF.
      dup2(to_child[0], STDIN_FILENO);
      dup2(from_child[1], STDOUT_FILENO);
      execv(argv[0], argv.data());
      _exit(127);  // exec failed; the parent classifies 127 as kSpawn
    }
    close(to_child[0]);
    close(from_child[1]);
    fcntl(from_child[0], F_SETFL, O_NONBLOCK);

    Slot& sl = slots[s];
    sl.alive = true;
    sl.id = id;
    sl.pid = pid;
    sl.in = to_child[1];
    sl.out = from_child[0];
    sl.buf.clear();
    sl.journal_path = jpath;
    sl.last_seen = Clock::now();
    sl.cell = -1;
    sl.hello_ok = false;
    ++alive;
    workers_spawned_.inc();
    return true;
  };

  auto send_line = [&](Slot& sl, const std::string& line) {
    std::string l = line + "\n";
    // A failed write means the worker died; the read side will see EOF
    // and classify, so the error is deliberately dropped here.
    ssize_t n = write(sl.in, l.data(), l.size());
    (void)n;
  };

  // Mid-cell checkpoint handoff (docs/CKPT.md): one snapshot file per
  // spec slot, named in the run command. The lease rule makes this
  // race-free — a cell's previous worker is SIGKILLed before the cell
  // is reassigned, so at most one live worker ever touches the file,
  // and the replacement resumes from the dead worker's last snapshot.
  auto ckpt_path = [&](std::size_t c) -> std::string {
    if (!journaling || options_.cell.checkpoint_every == 0) return "";
    return options_.journal_base + ".cell" + std::to_string(c) + ".ckpt";
  };

  auto assign = [&](std::size_t s) {
    Slot& sl = slots[s];
    if (!sl.alive || !sl.hello_ok || sl.cell >= 0) return;
    std::ptrdiff_t c = take_work(s);
    if (c < 0) return;  // idle until drain
    sl.cell = c;
    send_line(sl, run_line(static_cast<std::size_t>(c),
                           ckpt_path(static_cast<std::size_t>(c))));
  };

  // A dead worker may have journaled results its stdout never carried
  // (the worker journals before reporting); absorb them so a crash after
  // the journal write costs nothing. The journal itself can be torn
  // arbitrarily by the kill — an unreadable one is simply empty here.
  auto absorb_journal = [&](const std::string& path, int id) {
    if (path.empty()) return;
    std::map<std::size_t, machine::RunResult> m;
    try {
      m = campaign::Journal::load(path, digest, cells.size());
    } catch (const vlt::SimError&) {
      return;  // header torn mid-write by the kill
    }
    for (auto& [i, r] : m) {
      // Already-recorded cells are almost always this worker's own
      // stdout-reported results (journal line and protocol line are one
      // record, not a duplicate); only merge() counts true
      // cross-journal duplicates.
      if (recorded[i]) continue;
      record(i, std::move(r), false, "w" + std::to_string(id));
    }
  };

  auto fault = [&](std::size_t s, WorkerFault f, const std::string& detail) {
    Slot& sl = slots[s];
    worker_crashes_.inc();
    if (f == WorkerFault::kHeartbeat) heartbeat_losses_.inc();
    // A worker that died before completing the hello handshake (the
    // classic case: exec failure, exit 127) holds no cell, so nothing
    // would ever quarantine — it must count toward the all-seats-failing
    // fallback trigger or a bad binary respawns forever.
    if (!sl.hello_ok) ++consecutive_spawn_failures;
    std::ptrdiff_t c = sl.cell;
    sl.cell = -1;
    int wid = sl.id;
    std::string jpath = sl.journal_path;
    kill_slot(s);  // the lease rule: dead before any reassignment
    if (!options_.quiet)
      std::fprintf(stderr, "vltshard: worker %d fault [%s]: %s\n", wid,
                   worker_fault_name(f), detail.c_str());
    absorb_journal(jpath, wid);
    if (c >= 0 && !recorded[static_cast<std::size_t>(c)]) {
      std::size_t ci = static_cast<std::size_t>(c);
      last_fault[ci] =
          std::string(worker_fault_name(f)) + " fault: " + detail;
      ++crash_count[ci];
      if (crash_count[ci] > options_.worker_retries) {
        // Poison cell: it has crashed a worker once per allowed attempt.
        const campaign::Cell& cell = cells[ci];
        machine::RunResult r;
        r.workload = cell.workload;
        r.config = cell.config.name;
        r.variant = cell.variant.to_string();
        r.isa = isa::isa_name(cell.config.isa);
        r.status = machine::RunStatus::kWorker;
        r.verified = false;
        r.attempts = 0;  // no simulation ever completed for this cell
        r.error = "quarantined after " + std::to_string(crash_count[ci]) +
                  " worker crashes; last " + last_fault[ci];
        quarantines_.inc();
        record(ci, std::move(r), false, "quarantined");
      } else {
        retries_.inc();
        reassignments_.inc();
        queues[s].push_front(ci);
      }
    }
    // Exponential respawn backoff per seat, so a crash-looping cell
    // cannot fork-bomb the host.
    ++sl.crashes_in_row;
    unsigned shift = std::min(sl.crashes_in_row - 1, 5u);
    unsigned delay =
        std::min(options_.backoff_ms << shift, 2000u);
    sl.respawn_at = Clock::now() + std::chrono::milliseconds(delay);
  };

  auto on_death = [&](std::size_t s) {
    Slot& sl = slots[s];
    int st = 0;
    while (waitpid(sl.pid, &st, 0) < 0 && errno == EINTR) {
    }
    sl.pid = -1;
    if (WIFSIGNALED(st)) {
      fault(s, WorkerFault::kSignal,
            "killed by signal " + std::to_string(WTERMSIG(st)));
    } else {
      int code = WIFEXITED(st) ? WEXITSTATUS(st) : -1;
      if (code == 127)
        fault(s, WorkerFault::kSpawn,
              "exec of " + options_.worker_binary + " failed (exit 127)");
      else
        fault(s, WorkerFault::kExit,
              "exited prematurely with status " + std::to_string(code));
    }
  };

  // Returns false when the slot faulted and its buffer must be dropped.
  auto handle_line = [&](std::size_t s, const std::string& line) -> bool {
    Slot& sl = slots[s];
    std::optional<Message> msg = parse_message(line);
    if (!msg) {
      fault(s, WorkerFault::kProtocol,
            "unparseable line: " + line.substr(0, 80));
      return false;
    }
    sl.last_seen = Clock::now();
    switch (msg->type) {
      case Message::Type::kHello:
        if (msg->spec != spec_hex(digest) || msg->cells != cells.size())
          VLT_FAIL(ErrorKind::kConfig,
                   "worker " + std::to_string(sl.id) +
                       " resolved a different sweep (worker spec " +
                       msg->spec + ", coordinator spec " + spec_hex(digest) +
                       "): the worker binary or its grid flags do not match "
                       "this coordinator");
        sl.hello_ok = true;
        consecutive_spawn_failures = 0;
        assign(s);
        return true;
      case Message::Type::kHeartbeat:
        return true;
      case Message::Type::kResult: {
        if (sl.cell < 0 ||
            msg->cell != static_cast<std::size_t>(sl.cell)) {
          fault(s, WorkerFault::kProtocol,
                "result for cell " + std::to_string(msg->cell) +
                    " it holds no lease on");
          return false;
        }
        sl.cell = -1;
        sl.crashes_in_row = 0;
        record(msg->cell, std::move(*msg->result), msg->cached,
               msg->cached ? "cached" : "w" + std::to_string(sl.id));
        assign(s);
        return true;
      }
      case Message::Type::kRun:
      case Message::Type::kExit:
        fault(s, WorkerFault::kProtocol,
              "coordinator-only message from worker: " + line.substr(0, 80));
        return false;
    }
    return true;
  };

  auto read_slot = [&](std::size_t s) {
    Slot& sl = slots[s];
    char buf[4096];
    while (sl.alive) {
      ssize_t n = read(sl.out, buf, sizeof(buf));
      if (n > 0) {
        sl.buf.append(buf, static_cast<std::size_t>(n));
        std::size_t nl;
        while (sl.alive && (nl = sl.buf.find('\n')) != std::string::npos) {
          std::string line = sl.buf.substr(0, nl);
          sl.buf.erase(0, nl + 1);
          if (!handle_line(s, line)) return;
        }
        continue;
      }
      if (n == 0) {  // EOF: the worker died
        on_death(s);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      on_death(s);
      return;
    }
  };

  auto fallback_run = [&] {
    if (!options_.quiet)
      std::fprintf(stderr,
                   "vltshard: no workers could be spawned; degrading to "
                   "in-process execution\n");
    campaign::Journal journal;
    if (journaling && next_worker_id < kMaxWorkerIds) {
      int id = next_worker_id++;
      journal.open(shard_path(id), digest, cells.size(), {}, id);
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (recorded[i]) continue;
      bool hit = false;
      campaign::CellCheckpoint ckpt{options_.cell.checkpoint_every,
                                    ckpt_path(i)};
      machine::RunResult r = campaign::execute_cell(
          cells[i], options_.cell, cache_ ? &*cache_ : nullptr, &hit,
          ckpt.armed() ? &ckpt : nullptr);
      journal.append(i, cells[i].key(), r);
      fallback_cells_.inc();
      record(i, std::move(r), hit, "fallback");
    }
    for (std::deque<std::size_t>& q : queues) q.clear();
  };

  // A resume that already covers every cell needs no workers at all.
  if (done < cells.size())
    for (std::size_t s = 0; s < nslots; ++s) spawn(s);

  while (done < cells.size()) {
    Clock::time_point now = Clock::now();

    // Respawn seats whose backoff has elapsed, while unassigned work
    // remains for them to take.
    std::size_t queued = 0;
    for (const std::deque<std::size_t>& q : queues) queued += q.size();
    if (queued != 0)
      for (std::size_t s = 0; s < nslots; ++s)
        if (!slots[s].alive && now >= slots[s].respawn_at) spawn(s);

    if (alive == 0) {
      if (consecutive_spawn_failures >= nslots) {
        // Every seat just failed to spawn: processes are not available
        // at all. Graceful degradation, not a dead campaign.
        fallback_run();
        break;
      }
      // Workers exist only between respawn backoffs right now; wait.
      poll(nullptr, 0, 20);
      continue;
    }

    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_slot;
    for (std::size_t s = 0; s < nslots; ++s)
      if (slots[s].alive) {
        fds.push_back({slots[s].out, POLLIN, 0});
        fd_slot.push_back(s);
      }
    int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
    if (rc < 0 && errno != EINTR) break;  // poll itself broken; drain below
    now = Clock::now();

    for (std::size_t k = 0; k < fds.size(); ++k)
      if (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) {
        std::size_t s = fd_slot[k];
        if (slots[s].alive) read_slot(s);
      }

    // Liveness: a worker silent past the timeout — hello never arrived,
    // or heartbeats stopped — is lost. SIGKILL (the lease rule) and
    // reassign.
    for (std::size_t s = 0; s < nslots; ++s) {
      Slot& sl = slots[s];
      if (!sl.alive) continue;
      auto silent = std::chrono::duration_cast<std::chrono::milliseconds>(
                        now - sl.last_seen)
                        .count();
      if (silent > static_cast<long long>(options_.worker_timeout_ms))
        fault(s, WorkerFault::kHeartbeat,
              "no output for " + std::to_string(silent) + "ms (timeout " +
                  std::to_string(options_.worker_timeout_ms) + "ms)");
    }

    // Re-enqueued or stolen work may now fit an idle worker.
    for (std::size_t s = 0; s < nslots; ++s) assign(s);
  }

  // Graceful drain: ask workers to exit, give them a grace period, then
  // enforce it.
  for (std::size_t s = 0; s < nslots; ++s)
    if (slots[s].alive) {
      send_line(slots[s], exit_line());
      close(slots[s].in);
      slots[s].in = -1;
    }
  Clock::time_point deadline = Clock::now() + std::chrono::seconds(2);
  while (alive > 0 && Clock::now() < deadline) {
    for (std::size_t s = 0; s < nslots; ++s) {
      Slot& sl = slots[s];
      if (!sl.alive) continue;
      int st = 0;
      pid_t r = waitpid(sl.pid, &st, WNOHANG);
      if (r == sl.pid || (r < 0 && errno != EINTR)) {
        sl.pid = -1;
        kill_slot(s);
      }
    }
    if (alive > 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (std::size_t s = 0; s < nslots; ++s) kill_slot(s);

  // Workers delete a cell's snapshot when the cell completes; sweep the
  // stragglers (quarantined cells, workers killed between snapshot and
  // result) so no stale snapshot survives into an unrelated later run.
  if (journaling && options_.cell.checkpoint_every > 0)
    for (std::size_t i = 0; i < cells.size(); ++i)
      std::remove(ckpt_path(i).c_str());

  // The merged journal: the whole sweep in spec order, so a later
  // --resume (or an auditor) needs only this one file.
  if (journaling) {
    std::map<std::size_t, machine::RunResult> all;
    for (std::size_t i = 0; i < cells.size(); ++i) all[i] = set.results_[i];
    campaign::Journal merged;
    merged.open(merged_path, digest, cells.size(), all);
  }

  set.cache_hits_ = hits;
  set.resumed_ = resumed_count;
  return set;
}

}  // namespace vlt::shard
