// vltshard coordinator: shards a SweepSpec across a pool of supervised
// worker *processes* and merges their journals into one deterministic,
// spec-order RunSet — byte-identical to a serial vltsweep run of the
// same spec (docs/SHARD.md).
//
// Supervision model:
//  - Work stealing. Remaining cells are partitioned into one contiguous
//    spec-order block per worker slot; an idle worker drains its own
//    block front-to-back and, when empty, steals from the back of the
//    fullest other block (shard.steals).
//  - Leases. A cell is assigned to at most one live worker; a worker is
//    SIGKILLed before its cell is reassigned, so the journals hold at
//    most one trusted record per cell.
//  - Heartbeats. Workers emit liveness lines while simulating; a worker
//    silent past the timeout is classified as heartbeat loss, killed,
//    and its cell reassigned (shard.heartbeat_losses).
//  - Crash classification. Worker death is a typed SimError(kWorker)
//    fault: nonzero exit / signal / protocol violation / heartbeat loss
//    (shard/protocol.hpp WorkerFault).
//  - Bounded retries + quarantine. A cell whose worker dies is re-run on
//    a fresh worker up to `worker_retries` extra times; past that it is
//    a poison cell, reported with status "worker" instead of being
//    retried forever (shard.quarantines). Respawns back off
//    exponentially (backoff_ms, doubling, capped) so a crash-looping
//    configuration cannot fork-bomb the host.
//  - Graceful degradation. If workers cannot be spawned at all, the
//    coordinator runs the remaining cells in-process through the same
//    campaign::execute_cell seam — slower, never wrong.
//
// Crash recovery: every worker appends to its own spec-digest-guarded
// journal (`<base>.w<id>.jsonl`) before reporting a result, and the
// coordinator writes a merged spec-order journal (`<base>.merged.jsonl`)
// on completion. `vltshard --resume` therefore survives a SIGKILL of the
// coordinator itself: it merges whatever the shard journals hold and
// runs only the rest.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "shard/protocol.hpp"
#include "stats/stats.hpp"

namespace vlt::shard {

struct ShardOptions {
  /// Worker process pool size.
  unsigned workers = 4;
  /// Path of the worker binary (a vltsweep with --worker support).
  std::string worker_binary;
  /// Grid and policy flags passed to every worker verbatim (the
  /// coordinator appends the per-worker --worker/--worker-id/--journal/
  /// --heartbeat-ms flags itself).
  std::vector<std::string> worker_args;
  /// Shard-journal base path: workers write `<base>.w<id>.jsonl`, the
  /// merged spec-order journal lands in `<base>.merged.jsonl`. Empty
  /// disables journaling (and with it --resume).
  std::string journal_base = ".vltshard-journal";
  /// Merge existing shard journals before running (coordinator crash
  /// recovery); without it, stale shard journals are removed first.
  bool resume = false;
  /// Extra attempts for a cell whose worker died before it is
  /// quarantined as poison (so a crash-looping cell ends, bounded, with
  /// status "worker").
  unsigned worker_retries = 2;
  /// Worker heartbeat period, and the silence window after which a
  /// worker is declared lost. The timeout must comfortably exceed the
  /// heartbeat period; heartbeats flow even mid-simulation.
  unsigned heartbeat_ms = 250;
  unsigned worker_timeout_ms = 10000;
  /// Respawn backoff base: doubles per consecutive crash, capped at 2s.
  unsigned backoff_ms = 100;
  bool quiet = false;
  /// Per-cell execution policy (cache_dir/force/cell_cycle_limit/
  /// max_retries) — forwarded to workers by the CLI and honored directly
  /// by the in-process fallback.
  campaign::CampaignOptions cell;
  /// Called per completed cell: done, total, key, and how it completed
  /// ("w<id>", "cached", "resumed", "fallback", "quarantined").
  std::function<void(std::size_t, std::size_t, const campaign::RunKey&,
                     const std::string&)>
      progress;
};

class ShardCoordinator {
 public:
  explicit ShardCoordinator(ShardOptions options);

  /// Executes the spec across the worker pool and aggregates in spec
  /// order. Throws SimError(kConfig) for a foreign resume journal or a
  /// worker that resolved a different spec; everything else — crashes,
  /// hangs, protocol garbage, unspawnable workers — is absorbed into
  /// per-cell results and the shard.* counters.
  campaign::RunSet run(const campaign::SweepSpec& spec);

  /// Supervision counters (shard.steals, shard.reassignments,
  /// shard.heartbeat_losses, shard.retries, shard.quarantines, ...),
  /// plus cache.quarantined when a result cache is attached.
  stats::Snapshot stats_snapshot() const { return registry_.snapshot(); }
  const stats::Registry& registry() const { return registry_; }

 private:
  friend class Pool;

  ShardOptions options_;
  stats::Registry registry_;
  stats::Counter workers_spawned_;
  stats::Counter worker_crashes_;
  stats::Counter steals_;
  stats::Counter reassignments_;
  stats::Counter heartbeat_losses_;
  stats::Counter retries_;
  stats::Counter quarantines_;
  stats::Counter fallback_cells_;
  stats::Counter journal_duplicates_;
  std::optional<campaign::ResultCache> cache_;
};

}  // namespace vlt::shard
