// vltckpt — deterministic architectural checkpoint/restore (docs/CKPT.md).
//
// A checkpoint is a versioned, deterministic binary-in-JSON snapshot of
// every stateful machine layer. The document is a flat list of named
// sections ("proc", "mem", "su0", ...), each digested independently with
// the shared FNV-1a (common/digest.hpp); a whole-file digest over the
// section digests makes truncation or torn writes detectable before a
// single field is trusted. Binary payloads (register files, memory
// pages, cache tag arrays) are hex blobs, so the same machine state
// always serializes to the same bytes — the property the byte-identity
// contract (checkpoint → restore → run-to-end equals the uninterrupted
// run) is tested against.
//
// Units implement the Checkpointable seam:
//
//   void save_state(ckpt::Writer&) const;   // externalize all state
//   void restore_state(ckpt::Reader&);      // rebuild it exactly
//
// The writer/reader maintain a current-object stack: the orchestrator
// (machine::Processor) opens one section per unit, and a unit nests its
// sub-components (an SU pushes "l1i", "l1d", "bpred") without knowing
// its own section name. Skip-engine caches, accountant spans, and other
// derived state are rebuilt on restore, never serialized.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "isa/opcode.hpp"

namespace vlt::isa {
class Program;
}

namespace vlt::ckpt {

/// Snapshot format version. Bump on any incompatible layout change;
/// readers reject snapshots from a different schema outright (the
/// machine state is far too entangled for field-level migration).
inline constexpr const char* kSchema = "vltckpt-v1";

class Writer;
class Reader;

/// The seam every stateful layer implements. save_state must emit every
/// bit of state a later tick can observe; restore_state must rebuild it
/// so the resumed run is byte-identical to the uninterrupted one.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;
  virtual void save_state(Writer& w) const = 0;
  virtual void restore_state(Reader& r) = 0;
};

/// Builds the snapshot document section by section.
class Writer {
 public:
  /// Opens a named top-level section; every field written until the
  /// matching end_section lands inside it. Sections may not nest.
  void begin_section(const std::string& name);
  void end_section();

  /// Opens / closes a nested object within the current section.
  void push(const std::string& key);
  void pop();

  void u64(const std::string& key, std::uint64_t v);
  void i64(const std::string& key, std::int64_t v);
  void boolean(const std::string& key, bool v);
  void str(const std::string& key, std::string v);
  /// Hex blob of 64-bit words (16 hex chars per word).
  void blob64(const std::string& key, const std::uint64_t* data,
              std::size_t n);
  /// Hex blob of bytes (2 hex chars per byte).
  void blob8(const std::string& key, const std::uint8_t* data, std::size_t n);
  /// Attaches an arbitrary prebuilt JSON value (arrays of records).
  void set(const std::string& key, Json v);

  /// Resolves a cross-unit completion cell (the vector unit's
  /// scalar_done pointers into SU ROB entries) to a stable textual
  /// reference. Installed by the orchestrator before units save.
  std::function<std::string(const Cycle*)> cycle_ref;

  /// Assembles the final document: schema, sections with per-section
  /// digests, and the whole-file digest. The writer may not be reused.
  Json finish();

 private:
  struct Frame {
    std::string key;
    Json obj = Json::object();
  };
  struct Section {
    std::string name;
    Json body;
  };
  Json& cur();
  std::vector<Frame> stack_;
  std::vector<Section> sections_;
};

/// Reads a digest-validated snapshot document. Every accessor throws
/// SimError(kIo) on a missing or ill-typed field: by the time a Reader
/// exists the digests have matched, so a malformed field is snapshot
/// corruption the digest could not see (i.e. a writer/reader bug), not
/// a recoverable condition.
class Reader {
 public:
  explicit Reader(Json doc);

  /// Enters a named top-level section (throws kIo when absent).
  void enter_section(const std::string& name);
  void exit_section();
  bool has_section(const std::string& name) const;

  void push(const std::string& key);
  void pop();

  std::uint64_t u64(const std::string& key) const;
  std::int64_t i64(const std::string& key) const;
  bool boolean(const std::string& key) const;
  const std::string& str(const std::string& key) const;
  /// Decodes a hex blob into exactly `n` 64-bit words.
  void blob64(const std::string& key, std::uint64_t* out, std::size_t n) const;
  std::vector<std::uint64_t> blob64(const std::string& key) const;
  void blob8(const std::string& key, std::uint8_t* out, std::size_t n) const;
  /// Required structured member (arrays of records).
  const Json& get(const std::string& key) const;

  /// Inverse of Writer::cycle_ref: resolves a textual reference back to
  /// the live completion cell. Installed by the orchestrator before
  /// units restore (SUs restore before the vector unit, so the ROB
  /// entries the references name already exist).
  std::function<Cycle*(const std::string&)> cycle_ref;

  /// Rebinds program pointers on restore: maps a hardware thread id to
  /// the current phase's program for that thread. Programs are rebuilt
  /// deterministically from the workload, never serialized. Installed
  /// by the orchestrator before units restore.
  std::function<const isa::Program*(ThreadId)> program_ref;

 private:
  const Json& cur() const;
  Json doc_;
  const Json* section_ = nullptr;
  std::vector<const Json*> stack_;
};

/// An isa::Instruction packs into two blob words: opcode, registers, and
/// flags in the first; the sign-carrying immediate widened through
/// uint32_t in the second. Both the scalar and vector units serialize
/// in-flight instructions this way.
inline std::uint64_t inst_word0(const isa::Instruction& i) {
  return static_cast<std::uint64_t>(i.op) |
         (static_cast<std::uint64_t>(i.rd) << 16) |
         (static_cast<std::uint64_t>(i.rs1) << 24) |
         (static_cast<std::uint64_t>(i.rs2) << 32) |
         (static_cast<std::uint64_t>(i.flags) << 40);
}
inline std::uint64_t inst_word1(const isa::Instruction& i) {
  return static_cast<std::uint32_t>(i.imm);
}
inline isa::Instruction unpack_inst(std::uint64_t w0, std::uint64_t w1) {
  isa::Instruction i;
  i.op = static_cast<isa::Opcode>(w0 & 0xFFFF);
  i.rd = static_cast<RegIdx>((w0 >> 16) & 0xFF);
  i.rs1 = static_cast<RegIdx>((w0 >> 24) & 0xFF);
  i.rs2 = static_cast<RegIdx>((w0 >> 32) & 0xFF);
  i.flags = static_cast<std::uint8_t>((w0 >> 40) & 0xFF);
  i.imm = static_cast<std::int32_t>(static_cast<std::uint32_t>(w1));
  return i;
}

/// Hex-encodes words as a standalone JSON string value — the same
/// encoding Writer::blob64 uses — for variable-length records built
/// outside the writer stack (arrays of ROB entries and the like).
Json blob64_json(const std::uint64_t* data, std::size_t n);
inline Json blob64_json(const std::vector<std::uint64_t>& words) {
  return blob64_json(words.data(), words.size());
}

/// Decodes a blob64_json value; throws SimError(kIo) — naming `what` —
/// on a non-string value, ragged length, or non-hex character.
std::vector<std::uint64_t> blob64_words(const Json& v, const std::string& what);

/// Serializes `doc` to `path` atomically (write to "<path>.tmp", then
/// rename), so a SIGKILL mid-write leaves the previous snapshot — or no
/// snapshot — but never a torn one. Returns false with `err` set on any
/// filesystem failure.
bool save_file(const std::string& path, const Json& doc, std::string* err);

/// Loads and digest-validates a snapshot. Returns nullopt — with `err`
/// naming the failure — for an unreadable file, a parse error, a schema
/// mismatch, or any digest mismatch (truncation, bit rot, torn write).
/// Callers with a fallback (shard migration, campaign resume) treat
/// nullopt as "run from cycle zero"; vltsim_run --restore treats it as
/// a hard error.
std::optional<Json> load_file(const std::string& path, std::string* err);

/// Digest of one section body, as recorded in the document.
std::uint64_t section_digest(const Json& body);

}  // namespace vlt::ckpt
