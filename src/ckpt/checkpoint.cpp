#include "ckpt/checkpoint.hpp"

#include <cstdio>

#include "common/digest.hpp"
#include "common/log.hpp"

namespace vlt::ckpt {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

void hex_append(std::string& out, std::uint64_t v) {
  for (int i = 15; i >= 0; --i)
    out.push_back(kHexDigits[(v >> (4 * i)) & 0xF]);
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

std::uint64_t parse_hex64(const char* p, const std::string& key) {
  std::uint64_t v = 0;
  for (int i = 0; i < 16; ++i) {
    int n = hex_nibble(p[i]);
    if (n < 0)
      VLT_FAIL(ErrorKind::kIo,
               "checkpoint blob '" + key + "' holds a non-hex character");
    v = (v << 4) | static_cast<std::uint64_t>(n);
  }
  return v;
}

}  // namespace

// --- Writer ---

Json& Writer::cur() {
  VLT_CHECK(!stack_.empty(), "checkpoint write outside any section");
  return stack_.back().obj;
}

void Writer::begin_section(const std::string& name) {
  VLT_CHECK(stack_.empty(), "checkpoint sections may not nest");
  stack_.push_back(Frame{name});
}

void Writer::end_section() {
  VLT_CHECK(stack_.size() == 1, "end_section with nested objects open");
  sections_.push_back(Section{stack_.back().key, std::move(stack_.back().obj)});
  stack_.pop_back();
}

void Writer::push(const std::string& key) {
  VLT_CHECK(!stack_.empty(), "checkpoint push outside any section");
  stack_.push_back(Frame{key});
}

void Writer::pop() {
  VLT_CHECK(stack_.size() >= 2, "checkpoint pop without a matching push");
  Frame done = std::move(stack_.back());
  stack_.pop_back();
  stack_.back().obj.set(done.key, std::move(done.obj));
}

void Writer::u64(const std::string& key, std::uint64_t v) { cur().set(key, v); }
void Writer::i64(const std::string& key, std::int64_t v) { cur().set(key, v); }
void Writer::boolean(const std::string& key, bool v) { cur().set(key, v); }
void Writer::str(const std::string& key, std::string v) {
  cur().set(key, Json(std::move(v)));
}

void Writer::blob64(const std::string& key, const std::uint64_t* data,
                    std::size_t n) {
  std::string hex;
  hex.reserve(n * 16);
  for (std::size_t i = 0; i < n; ++i) hex_append(hex, data[i]);
  cur().set(key, Json(std::move(hex)));
}

void Writer::blob8(const std::string& key, const std::uint8_t* data,
                   std::size_t n) {
  std::string hex;
  hex.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    hex.push_back(kHexDigits[data[i] >> 4]);
    hex.push_back(kHexDigits[data[i] & 0xF]);
  }
  cur().set(key, Json(std::move(hex)));
}

void Writer::set(const std::string& key, Json v) {
  cur().set(key, std::move(v));
}

Json Writer::finish() {
  VLT_CHECK(stack_.empty(), "checkpoint finish with a section still open");
  Json doc = Json::object();
  doc.set("schema", kSchema);
  Json sections = Json::array();
  Digest all;
  all.mix(std::string(kSchema));
  for (Section& s : sections_) {
    std::uint64_t d = section_digest(s.body);
    Json entry = Json::object();
    entry.set("name", s.name);
    entry.set("digest", digest_hex(d));
    entry.set("body", std::move(s.body));
    sections.push_back(std::move(entry));
    all.mix(s.name);
    all.mix(d);
  }
  doc.set("sections", std::move(sections));
  doc.set("digest", digest_hex(all.value()));
  return doc;
}

// --- Reader ---

Reader::Reader(Json doc) : doc_(std::move(doc)) {}

const Json& Reader::cur() const {
  VLT_CHECK(!stack_.empty(), "checkpoint read outside any section");
  return *stack_.back();
}

bool Reader::has_section(const std::string& name) const {
  const Json* sections = doc_.find("sections");
  if (sections == nullptr) return false;
  for (const Json& s : sections->items()) {
    const Json* n = s.find("name");
    if (n != nullptr && n->as_string() == name) return true;
  }
  return false;
}

void Reader::enter_section(const std::string& name) {
  VLT_CHECK(stack_.empty(), "enter_section with a section already open");
  const Json* sections = doc_.find("sections");
  if (sections != nullptr) {
    for (const Json& s : sections->items()) {
      const Json* n = s.find("name");
      const Json* body = s.find("body");
      if (n != nullptr && body != nullptr && n->as_string() == name) {
        section_ = body;
        stack_.push_back(body);
        return;
      }
    }
  }
  VLT_FAIL(ErrorKind::kIo, "checkpoint has no section '" + name + "'");
}

void Reader::exit_section() {
  VLT_CHECK(stack_.size() == 1, "exit_section with nested objects open");
  stack_.clear();
  section_ = nullptr;
}

void Reader::push(const std::string& key) {
  const Json* child = cur().find(key);
  if (child == nullptr || !child->is_object())
    VLT_FAIL(ErrorKind::kIo, "checkpoint missing object '" + key + "'");
  stack_.push_back(child);
}

void Reader::pop() {
  VLT_CHECK(stack_.size() >= 2, "checkpoint pop without a matching push");
  stack_.pop_back();
}

const Json& Reader::get(const std::string& key) const {
  const Json* v = cur().find(key);
  if (v == nullptr)
    VLT_FAIL(ErrorKind::kIo, "checkpoint missing field '" + key + "'");
  return *v;
}

std::uint64_t Reader::u64(const std::string& key) const {
  return get(key).as_uint();
}

std::int64_t Reader::i64(const std::string& key) const {
  return get(key).as_int();
}

bool Reader::boolean(const std::string& key) const {
  return get(key).as_bool();
}

const std::string& Reader::str(const std::string& key) const {
  return get(key).as_string();
}

void Reader::blob64(const std::string& key, std::uint64_t* out,
                    std::size_t n) const {
  const std::string& hex = str(key);
  if (hex.size() != n * 16)
    VLT_FAIL(ErrorKind::kIo,
             "checkpoint blob '" + key + "' holds " +
                 std::to_string(hex.size() / 16) + " words, expected " +
                 std::to_string(n));
  for (std::size_t i = 0; i < n; ++i)
    out[i] = parse_hex64(hex.data() + i * 16, key);
}

std::vector<std::uint64_t> Reader::blob64(const std::string& key) const {
  const std::string& hex = str(key);
  if (hex.size() % 16 != 0)
    VLT_FAIL(ErrorKind::kIo,
             "checkpoint blob '" + key + "' is not a whole number of words");
  std::vector<std::uint64_t> out(hex.size() / 16);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = parse_hex64(hex.data() + i * 16, key);
  return out;
}

void Reader::blob8(const std::string& key, std::uint8_t* out,
                   std::size_t n) const {
  const std::string& hex = str(key);
  if (hex.size() != n * 2)
    VLT_FAIL(ErrorKind::kIo,
             "checkpoint blob '" + key + "' holds " +
                 std::to_string(hex.size() / 2) + " bytes, expected " +
                 std::to_string(n));
  for (std::size_t i = 0; i < n; ++i) {
    int hi = hex_nibble(hex[2 * i]);
    int lo = hex_nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0)
      VLT_FAIL(ErrorKind::kIo,
               "checkpoint blob '" + key + "' holds a non-hex character");
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
}

// --- standalone blobs ---

Json blob64_json(const std::uint64_t* data, std::size_t n) {
  std::string hex;
  hex.reserve(n * 16);
  for (std::size_t i = 0; i < n; ++i) hex_append(hex, data[i]);
  return Json(std::move(hex));
}

std::vector<std::uint64_t> blob64_words(const Json& v,
                                        const std::string& what) {
  if (v.type() != Json::Type::kString)
    VLT_FAIL(ErrorKind::kIo, "checkpoint blob '" + what + "' is not a string");
  const std::string& hex = v.as_string();
  if (hex.size() % 16 != 0)
    VLT_FAIL(ErrorKind::kIo,
             "checkpoint blob '" + what + "' is not a whole number of words");
  std::vector<std::uint64_t> out(hex.size() / 16);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = parse_hex64(hex.data() + i * 16, what);
  return out;
}

// --- file I/O ---

std::uint64_t section_digest(const Json& body) {
  Digest d;
  d.mix(body.dump());
  return d.value();
}

bool save_file(const std::string& path, const Json& doc, std::string* err) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open " + tmp + " for writing";
    return false;
  }
  std::string text = doc.dump();
  text.push_back('\n');
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    if (err != nullptr) *err = "short write to " + tmp;
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (err != nullptr) *err = "cannot rename " + tmp + " to " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<Json> load_file(const std::string& path, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open " + path;
    return std::nullopt;
  }
  std::string text;
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  std::string perr;
  std::optional<Json> doc = Json::parse(
      text.empty() || text.back() != '\n' ? text
                                          : text.substr(0, text.size() - 1),
      &perr);
  if (!doc || !doc->is_object()) {
    if (err != nullptr) *err = path + " does not parse as JSON: " + perr;
    return std::nullopt;
  }
  const Json* schema = doc->find("schema");
  if (schema == nullptr || schema->as_string() != kSchema) {
    if (err != nullptr)
      *err = path + " is not a " + std::string(kSchema) + " snapshot";
    return std::nullopt;
  }
  const Json* sections = doc->find("sections");
  const Json* file_digest = doc->find("digest");
  if (sections == nullptr || !sections->is_array() || file_digest == nullptr) {
    if (err != nullptr) *err = path + " is missing sections or digest";
    return std::nullopt;
  }
  Digest all;
  all.mix(std::string(kSchema));
  for (const Json& s : sections->items()) {
    const Json* name = s.find("name");
    const Json* digest = s.find("digest");
    const Json* body = s.find("body");
    if (name == nullptr || digest == nullptr || body == nullptr) {
      if (err != nullptr) *err = path + " holds a malformed section";
      return std::nullopt;
    }
    std::uint64_t d = section_digest(*body);
    if (digest->as_string() != digest_hex(d)) {
      if (err != nullptr)
        *err = path + " section '" + name->as_string() +
               "' fails its digest (truncated or corrupt snapshot)";
      return std::nullopt;
    }
    all.mix(name->as_string());
    all.mix(d);
  }
  if (file_digest->as_string() != digest_hex(all.value())) {
    if (err != nullptr)
      *err = path + " fails its file digest (truncated or corrupt snapshot)";
    return std::nullopt;
  }
  return doc;
}

}  // namespace vlt::ckpt
