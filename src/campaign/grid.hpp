// Shared CLI-grid resolution: turns the --workloads/--configs/--variants/
// --isa axis lists into a pruned SweepSpec. vltsweep, vltshard, and the
// vltshard worker mode (`vltsweep --worker`) all resolve their grids
// through this one function, which is what guarantees a worker process
// builds the *identical* spec (and therefore the identical spec digest)
// as the coordinator that spawned it — the handshake in docs/SHARD.md
// compares those digests before any cell is assigned.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace vlt::campaign {

/// Raw axis lists exactly as they appear on a CLI, pre-split. Defaults
/// mirror vltsweep's: everything, the paper's base/vlt2/vlt4 variants,
/// the seed ISA.
struct GridRequest {
  std::string workloads = "all";
  std::string configs;  // empty or "all" = every preset
  std::string variants = "base,vlt2,vlt4";
  std::string isas = "vlt";
  /// Tick every cycle instead of event-skipping (timing-neutral, not
  /// part of the config fingerprint; docs/PERF.md).
  bool no_skip = false;
};

/// "a,b,c" -> {"a","b","c"}; empty segments are dropped.
std::vector<std::string> split_csv(const std::string& s);

/// Resolves `req` into a pruned sweep spec. On bad input (unknown
/// workload/config/variant/isa, or a grid with no runnable cells)
/// returns nullopt with a user-facing diagnostic in *err; the caller
/// prefixes its program name and exits 2.
std::optional<SweepSpec> resolve_grid(const GridRequest& req,
                                      std::string* err);

}  // namespace vlt::campaign
