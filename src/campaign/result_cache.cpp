#include "campaign/result_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>

#include "common/log.hpp"

namespace vlt::campaign {

namespace fs = std::filesystem;

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  enabled_ = !ec;
  if (!enabled_)
    std::fprintf(stderr,
                 "vltsim warning: cannot create cache directory %s: %s; "
                 "caching disabled for this run\n",
                 dir_.c_str(), ec.message().c_str());
}

std::string ResultCache::entry_path(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.json",
                static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

std::optional<machine::RunResult> ResultCache::lookup(
    std::uint64_t key) const {
  if (!enabled_) return std::nullopt;
  std::string path = entry_path(key);
  std::optional<machine::RunResult> result;
  {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    std::optional<Json> j = Json::parse(text.str());
    if (j) result = machine::RunResult::from_json(*j);
  }
  if (!result) {
    // Quarantine rather than delete: the bytes stay inspectable, but the
    // entry stops costing a parse on every subsequent campaign.
    std::error_code ec;
    fs::rename(path, path + ".corrupt", ec);
    if (ec) fs::remove(path, ec);
    {
      std::lock_guard<std::mutex> lock(quarantine_mu_);
      quarantined_.inc();
    }
    return std::nullopt;
  }
  return result;
}

void ResultCache::store(std::uint64_t key,
                        const machine::RunResult& result) const {
  if (!enabled_) return;
  std::string path = entry_path(key);
  // Unique temp name per key+thread: concurrent writers of the same key
  // both write the same bytes, so last-rename-wins is harmless.
  std::string tmp = path + ".tmp" +
                    std::to_string(static_cast<unsigned long long>(
                        std::hash<std::thread::id>{}(
                            std::this_thread::get_id())));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;  // unwritable cache degrades to a no-op, not an error
    out << result.to_json().dump(1) << "\n";
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
}

}  // namespace vlt::campaign
