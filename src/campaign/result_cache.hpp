// Content-addressed on-disk result cache for campaign cells.
//
// A cell's cache key digests everything its cycle count depends on: the
// machine-config fingerprint, the variant, the workload's built programs
// (instruction encodings plus each opcode's timing/semantics row from the
// ISA table) and its input memory image. Touching one workload's kernel or
// data therefore invalidates exactly that workload's cells; a config or
// ISA change invalidates everything it affects. No timestamps, no
// manifest: the key IS the validity check.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "common/digest.hpp"
#include "machine/simulator.hpp"
#include "stats/stats.hpp"

namespace vlt::campaign {

/// Streaming FNV-1a digest used for cache keys and fingerprints. The
/// implementation lives in common/digest.hpp so journals, the shard
/// handshake, and checkpoint sections all mix bytes identically.
using Digest = ::vlt::Digest;

class ResultCache {
 public:
  /// Opens (creating if needed) a cache rooted at `dir`. If the directory
  /// cannot be created the cache degrades to disabled — every lookup
  /// misses, every store is a no-op — with a warning on stderr; a bad
  /// cache path must never kill a campaign that can run without it.
  explicit ResultCache(std::string dir);

  /// True when the cache directory exists and is usable.
  bool enabled() const { return enabled_; }

  /// Returns the cached result for `key`, or nullopt on a miss. A
  /// corrupt or unreadable entry counts as a miss and is quarantined
  /// (renamed to "<entry>.corrupt") so later campaigns do not re-parse
  /// it on every run.
  std::optional<machine::RunResult> lookup(std::uint64_t key) const;

  /// Stores `result` under `key` (atomic write-then-rename, so concurrent
  /// sweeps over a shared cache never observe torn entries).
  void store(std::uint64_t key, const machine::RunResult& result) const;

  const std::string& dir() const { return dir_; }

  /// Corrupt entries quarantined (renamed to `.corrupt`) by this cache
  /// instance. Exposed as an instrument so campaign layers can register
  /// it as "cache.quarantined" in a stats::Registry (docs/METRICS.md).
  std::uint64_t quarantined() const { return quarantined_.value(); }
  const stats::Counter* quarantined_counter() const { return &quarantined_; }

 private:
  std::string entry_path(std::uint64_t key) const;

  std::string dir_;
  bool enabled_ = false;
  /// lookup() is const and runs concurrently on campaign worker threads;
  /// the mutex serializes the (rare) quarantine increments.
  mutable std::mutex quarantine_mu_;
  mutable stats::Counter quarantined_;
};

}  // namespace vlt::campaign
