#include "campaign/grid.hpp"

#include <algorithm>

#include "isa/isa.hpp"

namespace vlt::campaign {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::optional<SweepSpec> resolve_grid(const GridRequest& req,
                                      std::string* err) {
  std::vector<std::string> workload_names =
      req.workloads == "all" ? workloads::workload_names()
                             : split_csv(req.workloads);
  for (const std::string& name : workload_names) {
    // find_workload also resolves the fault.* injectors, which "all"
    // deliberately leaves out.
    if (workloads::find_workload(name) == nullptr) {
      if (err != nullptr) *err = "unknown workload '" + name + "'";
      return std::nullopt;
    }
  }

  std::vector<std::string> config_names;
  if (req.configs.empty() || req.configs == "all") {
    // Default grid: every preset that can run vector code (CMT joins in
    // only when an suN variant asks for it).
    config_names = machine::MachineConfig::preset_names();
  } else {
    config_names = split_csv(req.configs);
  }
  std::vector<machine::MachineConfig> configs;
  for (const std::string& name : config_names) {
    std::optional<machine::MachineConfig> c =
        machine::MachineConfig::find(name);
    if (!c) {
      if (err != nullptr) {
        std::string valid;
        for (const std::string& n : machine::MachineConfig::preset_names())
          valid += " " + n;
        *err = "unknown config '" + name + "' (valid:" + valid + ")";
      }
      return std::nullopt;
    }
    configs.push_back(std::move(*c));
  }
  // Timing-neutral (and not part of the config fingerprint), so cached
  // cells from skip-mode runs remain valid hits under --no-skip.
  if (req.no_skip)
    for (machine::MachineConfig& c : configs) c.event_skip = false;

  // The isa axis sweeps by stamping each requested frontend onto a copy
  // of every config; add_grid prunes cells whose workload has no port.
  std::vector<isa::IsaId> isa_ids;
  const std::vector<std::string> isa_list =
      req.isas == "all" ? isa::isa_names() : split_csv(req.isas);
  for (const std::string& name : isa_list) {
    std::optional<isa::IsaId> id = isa::isa_from_name(name);
    if (!id) {
      if (err != nullptr) {
        std::string valid;
        for (const std::string& n : isa::isa_names()) valid += " " + n;
        *err = "unknown isa '" + name + "' (valid:" + valid + ")";
      }
      return std::nullopt;
    }
    if (std::find(isa_ids.begin(), isa_ids.end(), *id) == isa_ids.end())
      isa_ids.push_back(*id);
  }
  if (isa_ids.empty()) {
    if (err != nullptr) *err = "--isa expects at least one frontend";
    return std::nullopt;
  }
  if (isa_ids.size() > 1 || isa_ids[0] != isa::IsaId::kVlt) {
    std::vector<machine::MachineConfig> stamped;
    for (isa::IsaId id : isa_ids)
      for (machine::MachineConfig c : configs) {
        c.isa = id;
        stamped.push_back(std::move(c));
      }
    configs = std::move(stamped);
  }

  std::vector<workloads::Variant> variants;
  for (const std::string& v : split_csv(req.variants)) {
    std::string verr;
    std::optional<workloads::Variant> parsed =
        workloads::Variant::parse(v, &verr);
    if (!parsed) {
      if (err != nullptr) *err = verr;
      return std::nullopt;
    }
    variants.push_back(*parsed);
  }

  SweepSpec spec;
  spec.add_grid(configs, workload_names, variants);
  if (spec.empty()) {
    if (err != nullptr) *err = "the requested grid has no runnable cells";
    return std::nullopt;
  }
  return spec;
}

}  // namespace vlt::campaign
