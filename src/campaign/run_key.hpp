// Typed identity of one sweep cell. Replaces the hand-concatenated
// "workload/config/variant" strings the benches used to key their global
// result maps with.
#pragma once

#include <string>
#include <tuple>

namespace vlt::campaign {

struct RunKey {
  std::string workload;
  std::string config;
  std::string variant;

  std::string to_string() const {
    return workload + "/" + config + "/" + variant;
  }

  friend bool operator==(const RunKey& a, const RunKey& b) {
    return a.workload == b.workload && a.config == b.config &&
           a.variant == b.variant;
  }
  friend bool operator<(const RunKey& a, const RunKey& b) {
    return std::tie(a.workload, a.config, a.variant) <
           std::tie(b.workload, b.config, b.variant);
  }
};

}  // namespace vlt::campaign
