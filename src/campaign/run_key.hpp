// Typed identity of one sweep cell. Replaces the hand-concatenated
// "workload/config/variant" strings the benches used to key their global
// result maps with.
#pragma once

#include <string>
#include <tuple>

namespace vlt::campaign {

struct RunKey {
  std::string workload;
  std::string config;
  std::string variant;
  /// ISA frontend name ("vlt"/"rvv"). Defaults to the seed frontend so
  /// pre-multi-ISA keys (journals, digests) keep their meaning.
  std::string isa = "vlt";

  /// "workload/config/variant", with "/isa" appended only for non-VLT
  /// frontends — keeps every pre-existing key string byte-identical.
  std::string to_string() const {
    std::string s = workload + "/" + config + "/" + variant;
    if (!isa.empty() && isa != "vlt") s += "/" + isa;
    return s;
  }

  friend bool operator==(const RunKey& a, const RunKey& b) {
    return a.workload == b.workload && a.config == b.config &&
           a.variant == b.variant && a.isa == b.isa;
  }
  friend bool operator<(const RunKey& a, const RunKey& b) {
    return std::tie(a.workload, a.config, a.variant, a.isa) <
           std::tie(b.workload, b.config, b.variant, b.isa);
  }
};

}  // namespace vlt::campaign
