// Experiment-campaign engine: declarative sweep specs (workload ×
// MachineConfig × Variant), parallel execution over a host thread pool,
// deterministic aggregation, and a content-addressed on-disk result cache.
//
// Every table and figure of the paper is a cross-product sweep; this layer
// replaces the per-bench register/collect/print scaffolding with one
// engine. Simulator::run is const and self-contained (a fresh Processor
// per run, no shared mutable state), so cells execute concurrently and the
// aggregated RunSet is bit-identical to serial execution regardless of
// thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "campaign/result_cache.hpp"
#include "campaign/run_key.hpp"
#include "machine/simulator.hpp"
#include "workloads/workload.hpp"

namespace vlt::shard {
class ShardCoordinator;  // multi-process campaign execution (docs/SHARD.md)
}

namespace vlt::campaign {

/// One sweep cell: a full machine configuration (not just a preset name,
/// so ablation tweaks and custom machines sweep like presets), a workload,
/// and a variant. The workload is either a registry name or a custom
/// factory (each worker thread instantiates its own copy); either way the
/// cell is identified by RunKey strings, so configs with tweaked
/// parameters must carry a distinguishing name.
struct Cell {
  machine::MachineConfig config;
  std::string workload;
  workloads::Variant variant;
  /// When set, used instead of workloads::make_workload(workload).
  std::function<workloads::WorkloadPtr()> make;

  RunKey key() const {
    return RunKey{workload, config.name, variant.to_string(),
                  isa::isa_name(config.isa)};
  }
};

/// Whether `config` has the hardware contexts/lanes the variant asks for.
/// The grid builder uses this (plus Workload::supports) to prune the
/// cross-product to runnable cells.
bool config_supports(const machine::MachineConfig& config,
                     const workloads::Variant& variant);

/// Declarative sweep specification: an ordered list of cells. Order is
/// the aggregation order, so two specs built the same way produce
/// byte-identical reports.
class SweepSpec {
 public:
  /// Adds one cell unconditionally (the caller vouches it is runnable).
  SweepSpec& add(machine::MachineConfig config, std::string workload,
                 workloads::Variant variant);

  /// Adds a cell running a custom workload built by `make` (e.g. a
  /// non-default problem size). The instance's name() keys the cell.
  SweepSpec& add(machine::MachineConfig config,
                 std::function<workloads::WorkloadPtr()> make,
                 workloads::Variant variant);

  /// Adds the cross-product of configs × workloads × variants, keeping
  /// only cells where the workload supports the variant kind and the
  /// config's ISA frontend, and the config has the required hardware.
  /// Sweeping the isa axis = passing configs with different `isa` fields.
  /// Returns the number of cells added.
  std::size_t add_grid(const std::vector<machine::MachineConfig>& configs,
                       const std::vector<std::string>& workload_names,
                       const std::vector<workloads::Variant>& variants);

  const std::vector<Cell>& cells() const { return cells_; }
  bool empty() const { return cells_.empty(); }
  std::size_t size() const { return cells_.size(); }

 private:
  std::vector<Cell> cells_;
};

struct CampaignOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Result-cache directory; empty = no caching. Only ok results are
  /// cached — failures (and their cycle-budget timeouts) always
  /// re-simulate, so a fixed bug or a raised budget takes effect.
  std::string cache_dir;
  /// Re-simulate even on a cache hit (refreshes the cache).
  bool force = false;
  /// Stop launching new cells after the first failed cell; cells not yet
  /// started finish the sweep as RunStatus::kSkipped. Default: isolate
  /// the failure in its cell and keep sweeping.
  bool fail_fast = false;
  /// Extra simulation attempts per failed cell (the attempt count lands
  /// in RunResult::attempts). The simulator is deterministic, so this
  /// mainly guards host-level flakiness; default off.
  unsigned max_retries = 0;
  /// Overrides MachineConfig::cycle_limit for every cell when set.
  std::optional<Cycle> cell_cycle_limit;
  /// When non-empty, every completed cell is appended to this JSONL
  /// journal (campaign/journal.hpp) so a killed sweep can resume.
  std::string journal_path;
  /// Replay completed cells from journal_path before running; only the
  /// remaining cells execute. Requires journal_path.
  bool resume = false;
  /// Periodic mid-cell checkpoint cadence in simulated cycles (0 = off,
  /// docs/CKPT.md). With a journal, each in-flight cell snapshots its
  /// machine every N cycles to `<journal_path>.cell<I>.ckpt`; a killed
  /// sweep resumed with --resume restores each unfinished cell from its
  /// snapshot instead of re-simulating from cycle zero (stale or foreign
  /// snapshots are detected by digest + identity and fall back to a
  /// from-zero run). Completed cells delete their snapshot. Requires
  /// journal_path; byte-identity of the final report is unaffected.
  Cycle checkpoint_every = 0;
  /// Called after each cell completes (from worker threads, serialized
  /// internally): done count, total, the cell's key, cache hit? (journal
  /// replays count as hits).
  std::function<void(std::size_t, std::size_t, const RunKey&, bool)>
      progress;
};

/// Aggregated results of a campaign, in spec order.
class RunSet {
 public:
  const std::vector<machine::RunResult>& results() const { return results_; }
  std::size_t size() const { return results_.size(); }
  const machine::RunResult& at(std::size_t i) const { return results_[i]; }

  /// Lookup by key; aborts if the key was not part of the sweep (a typo'd
  /// lookup in a report is a programming error, like bench::key was).
  const machine::RunResult& at(const RunKey& key) const;
  const machine::RunResult* find(const RunKey& key) const;
  Cycle cycles(const std::string& workload, const std::string& config,
               const std::string& variant) const {
    return at(RunKey{workload, config, variant}).cycles;
  }

  bool all_verified() const;
  /// True when every cell has RunStatus::kOk (stricter than
  /// all_verified(): a timed-out or skipped cell is unverified AND
  /// not ok).
  bool all_ok() const;
  /// Count of cells with status != ok (including skipped).
  std::size_t failures() const;
  std::size_t cache_hits() const { return cache_hits_; }
  std::size_t cache_misses() const { return results_.size() - cache_hits_; }
  /// Cells replayed from the journal instead of executed (--resume).
  std::size_t resumed() const { return resumed_; }

  /// Full campaign report: {"schema": "vltsweep-v4", "results":
  /// [RunResult...]}. Deterministic bytes for a given spec — the CI
  /// golden diff, the kill/resume byte-identity check, and the threads=1
  /// vs threads=N determinism test compare these directly. `include_wall`
  /// (vltsweep --wall) appends each cell's host wall_ms — opt-in only,
  /// because wall time is nondeterministic and would break those byte
  /// comparisons (0 for cached/replayed cells).
  Json to_json(bool include_wall = false) const;

  /// Flat CSV (one row per cell; phase timings and the VL histogram are
  /// JSON-only). Commas/newlines in the error column are folded to ';'.
  /// `include_wall` adds a trailing host wall_ms column (see to_json).
  std::string to_csv(bool include_wall = false) const;

 private:
  friend class Campaign;
  // The shard coordinator aggregates worker results into a RunSet the
  // same way Campaign's thread pool does (spec-order slots).
  friend class ::vlt::shard::ShardCoordinator;
  std::vector<machine::RunResult> results_;
  std::map<RunKey, std::size_t> index_;
  std::size_t cache_hits_ = 0;
  std::size_t resumed_ = 0;
};

/// Order-sensitive digest of a spec's cell identities; keys the journal
/// header so a journal only ever resumes the sweep that wrote it.
std::uint64_t spec_digest(const SweepSpec& spec);

/// Mid-cell checkpointing for one execute_cell call (docs/CKPT.md).
struct CellCheckpoint {
  /// Snapshot cadence in simulated cycles (0 disables).
  Cycle every = 0;
  /// Snapshot file: written periodically during the run, and consulted
  /// before the first attempt — a digest-valid snapshot matching this
  /// cell's identity resumes the simulation mid-run; anything else
  /// (missing, truncated, foreign) falls back to a from-zero run.
  /// Retry attempts always run from zero (the snapshot may be what is
  /// crashing). Empty disables.
  std::string path;

  bool armed() const { return every > 0 && !path.empty(); }
};

/// Executes one cell under the campaign's fault-isolation policy
/// (SimErrors land in the result's status/error, retried per
/// options.max_retries), consulting and feeding `cache` when non-null.
/// `cache_hit`, when non-null, reports whether the result was served
/// from the cache. This is the scheduling seam every execution engine
/// shares: Campaign::run's thread pool, the vltshard worker protocol
/// (`vltsweep --worker`), and the shard coordinator's in-process
/// fallback all run cells through here, which is what makes a sharded
/// campaign byte-identical to a serial one (docs/SHARD.md). `ckpt`
/// (optional) arms mid-cell checkpointing; restore/resume through it
/// never changes the returned result's bytes.
machine::RunResult execute_cell(const Cell& cell,
                                const CampaignOptions& options,
                                const ResultCache* cache = nullptr,
                                bool* cache_hit = nullptr,
                                const CellCheckpoint* ckpt = nullptr);

class Campaign {
 public:
  explicit Campaign(CampaignOptions options = {})
      : options_(std::move(options)) {}

  /// Executes every cell (thread pool, cache- and journal-aware) and
  /// aggregates in spec order. Each cell is fault-isolated: a SimError
  /// thrown while building or simulating it (unknown workload, tripped
  /// invariant, exceeded cycle budget, ...) lands in that cell's
  /// RunResult::status/error, retried per max_retries, and the sweep
  /// continues — or, with fail_fast, stops launching new cells. Only a
  /// duplicate cell identity or a foreign resume journal still throws:
  /// those poison the whole report, not one cell.
  RunSet run(const SweepSpec& spec) const;

 private:
  CampaignOptions options_;
};

/// Convenience used by the bench drivers: run `spec` honoring the
/// VLTSWEEP_THREADS / VLTSWEEP_CACHE environment variables (so `make
/// bench` farms out without per-bench flag plumbing), abort (vlt::fatal)
/// if any cell fails — a bench must never print numbers from a
/// functionally wrong run.
RunSet run_or_die(const SweepSpec& spec);

}  // namespace vlt::campaign
