#include "campaign/journal.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/digest.hpp"
#include "common/log.hpp"

namespace vlt::campaign {

namespace {

// Journal headers render the sweep's spec digest through the shared
// canonical formatter so they stay comparable with the shard handshake.
std::string spec_hex(std::uint64_t spec) { return digest_hex(spec); }

std::string entry_line(std::size_t cell, const RunKey& key,
                       const machine::RunResult& result) {
  Json j = Json::object();
  j.set("cell", static_cast<std::uint64_t>(cell));
  j.set("key", key.to_string());
  j.set("result", result.to_json());
  return j.dump();
}

}  // namespace

std::map<std::size_t, machine::RunResult> Journal::load(
    const std::string& path, std::uint64_t spec, std::size_t cells) {
  std::map<std::size_t, machine::RunResult> out;
  std::ifstream in(path);
  if (!in) return out;  // nothing to resume

  std::string line;
  if (!std::getline(in, line)) return out;  // empty file: header never made it
  std::optional<Json> header = Json::parse(line);
  const Json* schema =
      header && header->is_object() ? header->find("schema") : nullptr;
  const Json* hspec = header ? header->find("spec") : nullptr;
  const Json* hcells = header ? header->find("cells") : nullptr;
  if (schema == nullptr || schema->as_string() != "vltsweep-journal-v1")
    VLT_FAIL(ErrorKind::kConfig,
             path + " is not a vltsweep journal (bad or missing header)");
  if (hspec == nullptr || hspec->as_string() != spec_hex(spec) ||
      hcells == nullptr || hcells->as_uint() != cells)
    VLT_FAIL(ErrorKind::kConfig,
             "journal " + path +
                 " was written for a different sweep (journal spec " +
                 (hspec != nullptr ? hspec->as_string() : "<missing>") +
                 ", this sweep " + spec_hex(spec) +
                 "); delete the stale journal or rerun without --resume");

  while (std::getline(in, line)) {
    std::optional<Json> j = Json::parse(line);
    if (!j || !j->is_object()) break;  // torn tail from a mid-write kill
    const Json* cell = j->find("cell");
    const Json* result = j->find("result");
    if (cell == nullptr || result == nullptr) break;
    std::size_t index = static_cast<std::size_t>(cell->as_uint());
    if (index >= cells) break;
    std::optional<machine::RunResult> r =
        machine::RunResult::from_json(*result);
    if (!r) break;
    out[index] = std::move(*r);  // last record for an index wins
  }
  return out;
}

std::map<std::size_t, machine::RunResult> Journal::merge(
    const std::vector<std::string>& paths, std::uint64_t spec,
    std::size_t cells, std::size_t* duplicates) {
  std::map<std::size_t, machine::RunResult> out;
  std::size_t dups = 0;
  for (const std::string& path : paths) {
    std::map<std::size_t, machine::RunResult> shard = load(path, spec, cells);
    for (auto& [index, result] : shard) {
      // First record wins; all records for a cell are byte-identical
      // anyway (the simulator is deterministic), so this only matters
      // for the duplicate count.
      if (!out.emplace(index, std::move(result)).second) ++dups;
    }
  }
  if (duplicates != nullptr) *duplicates = dups;
  return out;
}

void Journal::open(const std::string& path, std::uint64_t spec,
                   std::size_t cells,
                   const std::map<std::size_t, machine::RunResult>& resumed,
                   int worker) {
  path_ = path;
  appended_ = 0;
  fail_after_ = 0;
  // Deterministic mid-run journal-failure injection for the guard tests.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* f = std::getenv("VLT_TEST_JOURNAL_FAIL_AFTER"))
    fail_after_ = static_cast<unsigned>(std::strtoul(f, nullptr, 10));
  out_.open(path, std::ios::trunc);
  if (!out_.is_open()) {
    std::fprintf(stderr,
                 "vltsweep warning: cannot write journal %s; "
                 "this sweep will not be resumable\n",
                 path.c_str());
    return;
  }
  Json header = Json::object();
  header.set("schema", "vltsweep-journal-v1");
  header.set("spec", spec_hex(spec));
  header.set("cells", static_cast<std::uint64_t>(cells));
  if (worker >= 0) header.set("worker", static_cast<std::uint64_t>(worker));
  out_ << header.dump() << "\n";
  for (const auto& [index, result] : resumed)
    out_ << entry_line(index,
                       RunKey{result.workload, result.config, result.variant,
                              result.isa},
                       result)
         << "\n";
  out_.flush();
}

void Journal::append(std::size_t cell, const RunKey& key,
                     const machine::RunResult& result) {
  if (!out_.is_open()) return;
  std::string line = entry_line(cell, key, result);
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) return;  // another thread hit the degrade path
  if (fail_after_ != 0 && appended_ >= fail_after_)
    out_.setstate(std::ios::failbit);
  out_ << line << "\n";
  out_.flush();
  if (!out_.good()) {
    // Degrade, never fail the sweep: results already aggregated in
    // memory stay correct; only resumability after this point is lost.
    out_.close();
    std::fprintf(stderr,
                 "vltsweep warning: journal write to %s failed mid-run; "
                 "journaling disabled (cells completed after this point "
                 "cannot be resumed)\n",
                 path_.c_str());
    return;
  }
  ++appended_;
}

}  // namespace vlt::campaign
