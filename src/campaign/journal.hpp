// Append-only campaign journal: one JSONL file recording every completed
// cell of a sweep, so a killed campaign resumes from its last finished
// cell instead of restarting (`vltsweep --resume`).
//
// Layout: a header line identifying the sweep, then one line per
// completed cell, appended and flushed as workers finish:
//
//   {"schema": "vltsweep-journal-v1", "spec": "<hex digest>", "cells": N}
//   {"cell": 0, "key": "mpenc/base/base", "result": {RunResult...}}
//   ...
//
// The spec digest covers the ordered cell identities, so a journal is
// only replayed into the sweep that wrote it. A SIGKILL can tear the
// final line; load() ignores an unparseable tail, and resume rewrites
// the file (header + surviving entries) rather than appending after a
// torn record.
//
// Sharded campaigns (vltshard, docs/SHARD.md) give every worker process
// its own journal — the header then also carries a "worker" id — and the
// coordinator unions them with merge(). Ownership is a lease enforced by
// the coordinator: a cell is assigned to at most one live worker at a
// time and a worker is SIGKILLed before its cell is reassigned, so at
// most one *trusted* record per cell index exists; should a deposed
// worker still land a late record (it finished the cell but the
// coordinator had already moved on), the results are deterministic, so
// merge() just counts the duplicate and keeps one copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/run_key.hpp"
#include "machine/simulator.hpp"

namespace vlt::campaign {

class Journal {
 public:
  Journal() = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Parses the journal at `path` written for a sweep with the given spec
  /// digest and cell count. A missing file yields an empty map (nothing
  /// to resume). A header naming a different sweep throws
  /// SimError(kConfig) — the message names both digests — because
  /// replaying foreign results would corrupt the report. Torn or
  /// malformed entry lines end the replay silently.
  static std::map<std::size_t, machine::RunResult> load(
      const std::string& path, std::uint64_t spec, std::size_t cells);

  /// Unions several (per-shard) journals into one replay map. Missing
  /// files are skipped — a worker that never completed a cell leaves no
  /// journal worth reading — but a journal whose header names a different
  /// sweep throws SimError(kConfig) like load() does. When two shards
  /// recorded the same cell (a deposed worker finished after its lease
  /// was reassigned), the first record wins and `duplicates`, when
  /// non-null, counts the extras.
  static std::map<std::size_t, machine::RunResult> merge(
      const std::vector<std::string>& paths, std::uint64_t spec,
      std::size_t cells, std::size_t* duplicates = nullptr);

  /// Opens `path` for writing: truncates, writes the header, and replays
  /// `resumed` (so the file is whole again after a torn tail). `worker`
  /// >= 0 tags the header with the writing shard's worker id. On IO
  /// failure the journal degrades to disabled with a warning on stderr —
  /// the sweep still runs, it just cannot be resumed.
  void open(const std::string& path, std::uint64_t spec, std::size_t cells,
            const std::map<std::size_t, machine::RunResult>& resumed,
            int worker = -1);

  bool enabled() const { return out_.is_open(); }

  /// Records one completed cell. Thread-safe; the line is flushed before
  /// returning so a kill at any instant loses at most the torn tail. If
  /// the underlying stream fails (directory yanked, disk full), the
  /// journal degrades to disabled with a one-time warning instead of
  /// failing the sweep — the run completes, it just cannot fully resume.
  void append(std::size_t cell, const RunKey& key,
              const machine::RunResult& result);

 private:
  std::ofstream out_;
  std::string path_;
  /// Test hook (VLT_TEST_JOURNAL_FAIL_AFTER): force the stream into a
  /// failed state after this many successful appends, to exercise the
  /// mid-run degrade path deterministically. 0 = disabled.
  unsigned fail_after_ = 0;
  unsigned appended_ = 0;
  std::mutex mu_;
};

}  // namespace vlt::campaign
