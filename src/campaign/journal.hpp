// Append-only campaign journal: one JSONL file recording every completed
// cell of a sweep, so a killed campaign resumes from its last finished
// cell instead of restarting (`vltsweep --resume`).
//
// Layout: a header line identifying the sweep, then one line per
// completed cell, appended and flushed as workers finish:
//
//   {"schema": "vltsweep-journal-v1", "spec": "<hex digest>", "cells": N}
//   {"cell": 0, "key": "mpenc/base/base", "result": {RunResult...}}
//   ...
//
// The spec digest covers the ordered cell identities, so a journal is
// only replayed into the sweep that wrote it. A SIGKILL can tear the
// final line; load() ignores an unparseable tail, and resume rewrites
// the file (header + surviving entries) rather than appending after a
// torn record.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>

#include "campaign/run_key.hpp"
#include "machine/simulator.hpp"

namespace vlt::campaign {

class Journal {
 public:
  Journal() = default;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Parses the journal at `path` written for a sweep with the given spec
  /// digest and cell count. A missing file yields an empty map (nothing
  /// to resume). A header naming a different sweep throws
  /// SimError(kConfig) — replaying foreign results would corrupt the
  /// report. Torn or malformed entry lines end the replay silently.
  static std::map<std::size_t, machine::RunResult> load(
      const std::string& path, std::uint64_t spec, std::size_t cells);

  /// Opens `path` for writing: truncates, writes the header, and replays
  /// `resumed` (so the file is whole again after a torn tail). On IO
  /// failure the journal degrades to disabled with a warning on stderr —
  /// the sweep still runs, it just cannot be resumed.
  void open(const std::string& path, std::uint64_t spec, std::size_t cells,
            const std::map<std::size_t, machine::RunResult>& resumed);

  bool enabled() const { return out_.is_open(); }

  /// Records one completed cell. Thread-safe; the line is flushed before
  /// returning so a kill at any instant loses at most the torn tail.
  void append(std::size_t cell, const RunKey& key,
              const machine::RunResult& result);

 private:
  std::ofstream out_;
  std::mutex mu_;
};

}  // namespace vlt::campaign
