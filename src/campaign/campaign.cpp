#include "campaign/campaign.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "campaign/journal.hpp"
#include "ckpt/checkpoint.hpp"
#include "common/log.hpp"
#include "func/memory.hpp"
#include "isa/isa.hpp"
#include "isa/opcode.hpp"

namespace vlt::campaign {

bool config_supports(const machine::MachineConfig& config,
                     const workloads::Variant& variant) {
  using Kind = workloads::Variant::Kind;
  switch (variant.kind) {
    case Kind::kBase:
      return config.has_vector_unit;
    case Kind::kVectorThreads:
      return config.has_vector_unit &&
             variant.nthreads <= config.max_vector_threads &&
             variant.nthreads <= config.total_smt_slots();
    case Kind::kLaneThreads:
      return config.has_vector_unit && variant.nthreads <= config.vu.lanes;
    case Kind::kSuThreads:
      return variant.nthreads <= config.total_smt_slots();
  }
  return false;
}

SweepSpec& SweepSpec::add(machine::MachineConfig config, std::string workload,
                          workloads::Variant variant) {
  cells_.push_back({std::move(config), std::move(workload), variant, {}});
  return *this;
}

SweepSpec& SweepSpec::add(machine::MachineConfig config,
                          std::function<workloads::WorkloadPtr()> make,
                          workloads::Variant variant) {
  std::string name = make()->name();
  cells_.push_back({std::move(config), std::move(name), variant,
                    std::move(make)});
  return *this;
}

std::size_t SweepSpec::add_grid(
    const std::vector<machine::MachineConfig>& configs,
    const std::vector<std::string>& workload_names,
    const std::vector<workloads::Variant>& variants) {
  std::size_t added = 0;
  for (const std::string& name : workload_names) {
    workloads::WorkloadPtr w = workloads::make_workload(name);
    for (const machine::MachineConfig& config : configs)
      for (const workloads::Variant& variant : variants) {
        if (!w->supports(variant.kind) || !w->supports_isa(config.isa) ||
            !config_supports(config, variant))
          continue;
        add(config, name, variant);
        ++added;
      }
  }
  return added;
}

namespace {

/// Cache key for one cell: machine fingerprint + variant + the workload's
/// actual content (built programs and input image). See result_cache.hpp.
std::uint64_t cell_cache_key(const Cell& cell,
                             const workloads::Workload& workload) {
  Digest d;
  d.mix(std::string("vltsweep-cache-v3"));
  d.mix(cell.config.fingerprint());
  d.mix(cell.variant.to_string());
  d.mix(workload.name());

  func::FuncMemory image;
  workload.init_memory(image);
  d.mix(image.content_hash());

  machine::ParallelProgram prog =
      workload.build(cell.variant, cell.config.isa);
  d.mix(prog.phases.size());
  for (const machine::Phase& phase : prog.phases) {
    d.mix(phase.label);
    d.mix(static_cast<std::uint64_t>(phase.mode));
    d.mix(phase.vlt_opportunity ? 1 : 0);
    d.mix(phase.programs.size());
    for (const isa::Program& p : phase.programs) {
      d.mix(p.size());
      for (const isa::Instruction& inst : p.code()) {
        // Digest the opcode through its ISA-table row, not just its enum
        // value: retiming or re-classifying an instruction invalidates
        // every cached cell that executes it.
        const isa::OpInfo& info = isa::op_info(inst.op);
        d.mix(std::string(info.name));
        d.mix(info.latency);
        d.mix(static_cast<std::uint64_t>(info.fu));
        d.mix(static_cast<std::uint64_t>(info.kind));
        d.mix(info.traits);
        d.mix(inst.rd);
        d.mix(inst.rs1);
        d.mix(inst.rs2);
        d.mix(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(inst.imm)));
        d.mix(inst.flags);
      }
    }
  }
  return d.value();
}

}  // namespace

const machine::RunResult* RunSet::find(const RunKey& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &results_[it->second];
}

const machine::RunResult& RunSet::at(const RunKey& key) const {
  const machine::RunResult* r = find(key);
  VLT_CHECK(r != nullptr, "no result for " + key.to_string() +
                              " in this campaign");
  return *r;
}

bool RunSet::all_verified() const {
  for (const machine::RunResult& r : results_)
    if (!r.verified) return false;
  return true;
}

bool RunSet::all_ok() const {
  for (const machine::RunResult& r : results_)
    if (!r.ok()) return false;
  return true;
}

std::size_t RunSet::failures() const {
  std::size_t n = 0;
  for (const machine::RunResult& r : results_)
    if (!r.ok()) ++n;
  return n;
}

Json RunSet::to_json(bool include_wall) const {
  Json j = Json::object();
  j.set("schema", "vltsweep-v4");
  j.set("cells", static_cast<std::uint64_t>(results_.size()));
  Json arr = Json::array();
  for (const machine::RunResult& r : results_) {
    Json rj = r.to_json();
    if (include_wall) rj.set("wall_ms", r.wall_ms);
    arr.push_back(std::move(rj));
  }
  j.set("results", std::move(arr));
  return j;
}

std::string RunSet::to_csv(bool include_wall) const {
  std::string out =
      "workload,config,variant,isa,status,verified,attempts,cycles,"
      "opportunity_cycles,scalar_insts,vector_insts,element_ops,"
      "pct_vectorization,avg_vl,pct_opportunity,util_busy,util_partly_idle,"
      "util_stalled,util_all_idle,error";
  out += include_wall ? ",wall_ms\n" : "\n";
  char buf[512];
  for (const machine::RunResult& r : results_) {
    std::snprintf(
        buf, sizeof(buf),
        "%s,%s,%s,%s,%s,%d,%u,%llu,%llu,%llu,%llu,%llu,%.10g,%.10g,%.10g,"
        "%llu,%llu,%llu,%llu,",
        r.workload.c_str(), r.config.c_str(), r.variant.c_str(),
        r.isa.c_str(),
        machine::run_status_name(r.status), r.verified ? 1 : 0, r.attempts,
        static_cast<unsigned long long>(r.cycles),
        static_cast<unsigned long long>(r.opportunity_cycles),
        static_cast<unsigned long long>(r.scalar_insts),
        static_cast<unsigned long long>(r.vector_insts),
        static_cast<unsigned long long>(r.element_ops),
        r.pct_vectorization(), r.avg_vl(), r.pct_opportunity(),
        static_cast<unsigned long long>(r.util.busy),
        static_cast<unsigned long long>(r.util.partly_idle),
        static_cast<unsigned long long>(r.util.stalled),
        static_cast<unsigned long long>(r.util.all_idle));
    out += buf;
    std::string error = r.error;
    for (char& c : error)
      if (c == ',' || c == '\n' || c == '\r') c = ';';
    out += error;
    if (include_wall) {
      std::snprintf(buf, sizeof(buf), ",%.3f", r.wall_ms);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

std::uint64_t spec_digest(const SweepSpec& spec) {
  Digest d;
  d.mix(std::string("vltsweep-spec-v1"));
  d.mix(spec.size());
  for (const Cell& cell : spec.cells()) d.mix(cell.key().to_string());
  return d.value();
}

namespace {

/// Simulates one cell under the campaign's fault-isolation policy:
/// SimErrors land in the result's status/error, and each failure is
/// retried up to `max_retries` extra attempts. `ckpt` (optional) arms
/// mid-cell checkpointing: the run snapshots every `ckpt->every`
/// cycles, and the first attempt resumes from an existing digest-valid
/// snapshot matching this cell (retries always run from zero).
machine::RunResult run_cell(const Cell& cell, const CampaignOptions& options,
                            const CellCheckpoint* ckpt) {
  machine::MachineConfig config = cell.config;
  if (options.cell_cycle_limit) config.cycle_limit = *options.cell_cycle_limit;

  machine::RunResult res;
  for (unsigned attempt = 1;; ++attempt) {
    try {
      workloads::WorkloadPtr w =
          cell.make ? cell.make() : workloads::make_workload(cell.workload);
      machine::Simulator sim(config);
      if (ckpt != nullptr && ckpt->armed()) {
        sim.set_checkpoint({kNeverReady, ckpt->every, ckpt->path});
        if (attempt == 1) {
          std::string err;
          std::optional<Json> doc = ckpt::load_file(ckpt->path, &err);
          // A missing, truncated, or foreign snapshot is not an error:
          // it just means this attempt starts from cycle zero.
          if (doc && machine::checkpoint_matches(*doc, cell.workload,
                                                 cell.variant.to_string(),
                                                 config, nullptr))
            sim.set_restore(*std::move(doc));
        }
      }
      res = sim.run(*w, cell.variant);
    } catch (const vlt::SimError& e) {
      res = machine::RunResult{};
      res.status = machine::run_status_from_error(e.kind());
      res.error = e.what();
    }
    // The identifying strings come from the cell, not the run: a cell
    // that failed before Simulator::run still names itself in reports.
    res.workload = cell.workload;
    res.config = cell.config.name;
    res.variant = cell.variant.to_string();
    res.isa = isa::isa_name(cell.config.isa);
    res.attempts = attempt;
    if (res.ok() || attempt > options.max_retries) return res;
  }
}

}  // namespace

machine::RunResult execute_cell(const Cell& cell,
                                const CampaignOptions& options,
                                const ResultCache* cache, bool* cache_hit,
                                const CellCheckpoint* ckpt) {
  if (cache_hit != nullptr) *cache_hit = false;
  std::uint64_t key = 0;
  bool have_key = false;
  if (cache != nullptr) {
    try {
      workloads::WorkloadPtr w =
          cell.make ? cell.make() : workloads::make_workload(cell.workload);
      key = cell_cache_key(cell, *w);
      have_key = true;
    } catch (const vlt::SimError&) {
      // An unconstructable cell fails in run_cell with the right
      // status; it just never touches the cache.
    }
    if (have_key && !options.force) {
      std::optional<machine::RunResult> cached = cache->lookup(key);
      // The cached identifying strings must match the cell's; a hash
      // collision across different cells is theoretically possible
      // and must re-simulate rather than silently cross-fill. Only
      // ok results are trusted from the cache (failures re-run).
      if (cached && cached->ok() && cached->workload == cell.workload &&
          cached->config == cell.config.name &&
          cached->variant == cell.variant.to_string() &&
          cached->isa == isa::isa_name(cell.config.isa)) {
        if (cache_hit != nullptr) *cache_hit = true;
        return *std::move(cached);
      }
    }
  }
  machine::RunResult res = run_cell(cell, options, ckpt);
  if (cache != nullptr && have_key && res.ok()) cache->store(key, res);
  // The snapshot exists to survive a kill mid-cell; once the cell has a
  // result it is dead weight (and a stale-restore hazard for --force).
  if (ckpt != nullptr && ckpt->armed()) std::remove(ckpt->path.c_str());
  return res;
}

RunSet Campaign::run(const SweepSpec& spec) const {
  const std::vector<Cell>& cells = spec.cells();
  RunSet set;
  set.results_.resize(cells.size());

  // Index (and duplicate-check) the spec before any simulation: two cells
  // with one identity would make lookups ambiguous — tweaked configs must
  // carry a distinguishing name — and the error should fire before hours
  // of sweeping, not after.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    bool inserted = set.index_.emplace(cells[i].key(), i).second;
    VLT_CHECK(inserted,
              "duplicate sweep cell " + cells[i].key().to_string());
  }

  std::optional<ResultCache> cache;
  if (!options_.cache_dir.empty()) cache.emplace(options_.cache_dir);

  // Resume: replay completed cells from the journal, then reopen it so
  // the file is whole (header + replayed entries) before workers append.
  std::map<std::size_t, machine::RunResult> resumed;
  Journal journal;
  if (!options_.journal_path.empty()) {
    std::uint64_t digest = spec_digest(spec);
    if (options_.resume)
      resumed = Journal::load(options_.journal_path, digest, cells.size());
    journal.open(options_.journal_path, digest, cells.size(), resumed);
  }

  unsigned threads = options_.threads != 0
                         ? options_.threads
                         : std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  if (cells.size() < threads) threads = static_cast<unsigned>(cells.size());

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> hits{0};
  std::atomic<bool> stop{false};
  std::mutex progress_mu;

  // Each worker claims cells by index and writes into its preallocated
  // slot, so aggregation order is the spec order no matter which thread
  // finishes first — this is what makes threads=N output bit-identical
  // to threads=1.
  auto worker = [&] {
    while (true) {
      std::size_t i = next.fetch_add(1);
      if (i >= cells.size()) return;
      const Cell& cell = cells[i];

      bool hit = false;
      if (auto it = resumed.find(i); it != resumed.end()) {
        // Journal replay: take the recorded result verbatim (including
        // failures) so a resumed sweep reports byte-identically.
        set.results_[i] = it->second;
        hit = true;
      } else if (stop.load(std::memory_order_relaxed)) {
        machine::RunResult& r = set.results_[i];
        r.workload = cell.workload;
        r.config = cell.config.name;
        r.variant = cell.variant.to_string();
        r.isa = isa::isa_name(cell.config.isa);
        r.status = machine::RunStatus::kSkipped;
        r.error = "not executed: fail-fast stopped the campaign";
        r.attempts = 0;
        // Deliberately not journaled: a resume should attempt these.
      } else {
        // Mid-cell checkpoints ride on the journal: same directory, one
        // snapshot per spec slot, deleted when the cell completes.
        CellCheckpoint cell_ckpt;
        if (options_.checkpoint_every > 0 && !options_.journal_path.empty()) {
          cell_ckpt.every = options_.checkpoint_every;
          cell_ckpt.path =
              options_.journal_path + ".cell" + std::to_string(i) + ".ckpt";
        }
        set.results_[i] = execute_cell(
            cell, options_, cache ? &*cache : nullptr, &hit,
            cell_ckpt.armed() ? &cell_ckpt : nullptr);
        if (!hit && !set.results_[i].ok() && options_.fail_fast)
          stop.store(true, std::memory_order_relaxed);
        journal.append(i, cell.key(), set.results_[i]);
      }
      if (hit) hits.fetch_add(1);

      std::size_t completed = done.fetch_add(1) + 1;
      if (options_.progress) {
        std::lock_guard<std::mutex> lock(progress_mu);
        options_.progress(completed, cells.size(), cell.key(), hit);
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  set.cache_hits_ = hits.load();
  set.resumed_ = resumed.size();
  return set;
}

RunSet run_or_die(const SweepSpec& spec) {
  CampaignOptions opts;
  // Read before the worker pool exists; nothing mutates the environment.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* t = std::getenv("VLTSWEEP_THREADS"))
    opts.threads = static_cast<unsigned>(std::strtoul(t, nullptr, 10));
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* c = std::getenv("VLTSWEEP_CACHE")) opts.cache_dir = c;
  try {
    RunSet set = Campaign(opts).run(spec);
    for (const machine::RunResult& r : set.results())
      VLT_CHECK(r.ok(), r.workload + "/" + r.config + "/" + r.variant +
                            " failed [" +
                            machine::run_status_name(r.status) +
                            "]: " + r.error);
    return set;
  } catch (const vlt::SimError& e) {
    // Benches have no use for a partial result set; keep the seed's
    // abort-with-location contract.
    vlt::fatal(e.file(), e.line(), e.message());
  }
}

}  // namespace vlt::campaign
