// Lockstep co-simulation (audit mode): every instruction the timing
// pipelines execute is replayed, in the same global order, on a second,
// independent func::Executor + func::ArchState per thread against a shadow
// copy of memory. Any divergence in PCs, register writes, effective
// addresses, or the final memory image is reported with a precise
// diagnostic. This keeps the execute-at-fetch timing model honest: a
// pipeline that clobbers architectural state, runs a thread with the wrong
// identity, or executes out of program order diverges immediately.
#pragma once

#include <memory>
#include <vector>

#include "audit/sink.hpp"
#include "func/executor.hpp"
#include "func/memory.hpp"
#include "isa/program.hpp"

namespace vlt::audit {

class Lockstep {
 public:
  explicit Lockstep(AuditSink& sink);

  /// Snapshots the workload's initial memory image as the shadow memory.
  /// Call after Workload::init_memory and before the first phase.
  void seed_memory(const func::FuncMemory& initial);

  struct ThreadSpec {
    const isa::Program* program = nullptr;
    ThreadId tid = 0;
    unsigned nthreads = 1;
    unsigned max_vl = 0;
  };

  /// Registers the threads of the next phase; shadow architectural state
  /// starts from reset, mirroring the pipelines' per-phase context reset.
  void begin_phase(const std::vector<ThreadSpec>& threads);

  /// Replays one primary execution step. `primary` / `primary_addrs` /
  /// `primary_state` are the timing pipeline's results for the instruction
  /// at `pc` of thread `tid`; the shadow executes independently and any
  /// mismatch is reported to the sink.
  void on_execute(ThreadId tid, const isa::Instruction& inst,
                  std::uint64_t pc, const func::ExecResult& primary,
                  const std::vector<Addr>& primary_addrs,
                  const func::ArchState& primary_state, Cycle now);

  /// Word-by-word comparison of the shadow memory against the timing
  /// simulation's final memory image (end of run).
  void compare_final_memory(const func::FuncMemory& primary, Cycle now);

  std::uint64_t instructions_replayed() const { return replayed_; }

 private:
  struct Shadow {
    const isa::Program* prog = nullptr;
    func::ArchState arch;
    func::ExecContext ectx;
    std::uint64_t pc = 0;
    bool halted = false;
  };

  Shadow* shadow_for(ThreadId tid, Cycle now);
  void diverged(ThreadId tid, std::uint64_t pc, Cycle now,
                const std::string& what);
  void compare_state(const Shadow& s, const isa::Instruction& inst,
                     const func::ArchState& primary_state, ThreadId tid,
                     std::uint64_t pc, Cycle now, bool full);

  AuditSink* sink_;
  func::FuncMemory shadow_mem_;
  func::Executor exec_;
  std::vector<Shadow> threads_;  // indexed by tid within the phase
  std::vector<Addr> addr_scratch_;
  std::uint64_t replayed_ = 0;
};

}  // namespace vlt::audit
