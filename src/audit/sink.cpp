#include "audit/sink.hpp"

#include <sstream>

#include "common/log.hpp"

namespace vlt::audit {

const char* check_name(Check c) {
  switch (c) {
    case Check::kLaneOccupancy: return "lane-occupancy";
    case Check::kElementAccounting: return "element-accounting";
    case Check::kBarrierProtocol: return "barrier-protocol";
    case Check::kBarrierDeadlock: return "barrier-deadlock";
    case Check::kCacheCounters: return "cache-counters";
    case Check::kCacheTiming: return "cache-timing";
    case Check::kLockstep: return "lockstep";
    case Check::kRunAccounting: return "run-accounting";
    case Check::kQueueBounds: return "queue-bounds";
    case Check::kCycleAccounting: return "cycle-accounting";
  }
  return "unknown";
}

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "audit[" << check_name(check) << "] " << component << " @cycle "
     << cycle << ": " << detail;
  return os.str();
}

void ThrowSink::report(const Violation& v) {
  VLT_FAIL(ErrorKind::kInvariant, v.to_string());
}

}  // namespace vlt::audit
