#include "audit/lockstep.hpp"

#include <cstring>
#include <sstream>

#include "isa/disasm.hpp"

namespace vlt::audit {

Lockstep::Lockstep(AuditSink& sink) : sink_(&sink), exec_(shadow_mem_) {}

void Lockstep::seed_memory(const func::FuncMemory& initial) {
  shadow_mem_.copy_from(initial);
}

void Lockstep::begin_phase(const std::vector<ThreadSpec>& threads) {
  threads_.clear();
  threads_.resize(threads.size());
  for (const ThreadSpec& t : threads) {
    if (t.tid >= threads_.size()) {
      sink_->report({Check::kLockstep, "lockstep", 0,
                     "phase thread ids are not dense: tid " +
                         std::to_string(t.tid) + " of " +
                         std::to_string(threads.size())});
      continue;
    }
    Shadow& s = threads_[t.tid];
    s.prog = t.program;
    s.arch.reset();
    s.ectx = func::ExecContext{t.tid, t.nthreads, t.max_vl, t.program->isa()};
    s.pc = 0;
    s.halted = false;
  }
}

Lockstep::Shadow* Lockstep::shadow_for(ThreadId tid, Cycle now) {
  if (tid < threads_.size() && threads_[tid].prog != nullptr)
    return &threads_[tid];
  sink_->report({Check::kLockstep, "lockstep", now,
                 "execution on a thread the phase never registered: tid " +
                     std::to_string(tid)});
  return nullptr;
}

void Lockstep::diverged(ThreadId tid, std::uint64_t pc, Cycle now,
                        const std::string& what) {
  std::ostringstream os;
  os << "divergence at tid " << tid << " pc " << pc << ": " << what;
  sink_->report({Check::kLockstep, "lockstep", now, os.str()});
}

void Lockstep::compare_state(const Shadow& s, const isa::Instruction& inst,
                             const func::ArchState& primary_state,
                             ThreadId tid, std::uint64_t pc, Cycle now,
                             bool full) {
  // Scalar register file: cheap enough to compare completely every step.
  for (RegIdx r = 0; r < kNumScalarRegs; ++r) {
    if (s.arch.sreg(r) != primary_state.sreg(r)) {
      std::ostringstream os;
      os << "scalar register s" << unsigned(r) << " diverged after '"
         << isa::disassemble(inst) << "': reference 0x" << std::hex
         << s.arch.sreg(r) << " vs pipeline 0x" << primary_state.sreg(r);
      diverged(tid, pc, now, os.str());
      return;
    }
  }
  if (s.arch.vl() != primary_state.vl()) {
    diverged(tid, pc, now,
             "VL diverged: reference " + std::to_string(s.arch.vl()) +
                 " vs pipeline " + std::to_string(primary_state.vl()));
    return;
  }
  // Vector state: compare the written destination every step, and the
  // whole file on full checks (halt / explicit request).
  auto compare_vreg = [&](RegIdx vr) {
    for (unsigned i = 0; i < kMaxVectorLength; ++i) {
      if (s.arch.velem(vr, i) != primary_state.velem(vr, i)) {
        std::ostringstream os;
        os << "vector register v" << unsigned(vr) << "[" << i
           << "] diverged after '" << isa::disassemble(inst)
           << "': reference 0x" << std::hex << s.arch.velem(vr, i)
           << " vs pipeline 0x" << primary_state.velem(vr, i);
        diverged(tid, pc, now, os.str());
        return false;
      }
    }
    return true;
  };
  if (full) {
    for (RegIdx vr = 0; vr < kNumVectorRegs; ++vr)
      if (!compare_vreg(vr)) return;
  } else {
    RegIdx vd;
    if (isa::vector_dst_reg(inst, vd) && !compare_vreg(vd)) return;
  }
  if (isa::writes_mask(inst) &&
      s.arch.mask_bits() != primary_state.mask_bits())
    diverged(tid, pc, now,
             "mask register diverged after '" + isa::disassemble(inst) + "'");
}

void Lockstep::on_execute(ThreadId tid, const isa::Instruction& inst,
                          std::uint64_t pc, const func::ExecResult& primary,
                          const std::vector<Addr>& primary_addrs,
                          const func::ArchState& primary_state, Cycle now) {
  Shadow* sp = shadow_for(tid, now);
  if (sp == nullptr) return;
  Shadow& s = *sp;
  ++replayed_;

  if (s.halted) {
    diverged(tid, pc, now, "pipeline executed past HALT");
    return;
  }
  if (s.pc != pc) {
    diverged(tid, pc, now,
             "control flow diverged: reference pc " + std::to_string(s.pc) +
                 " vs pipeline pc " + std::to_string(pc));
    s.pc = pc;  // resync so one report does not cascade
  }
  if (pc >= s.prog->size()) {
    diverged(tid, pc, now, "pc past the end of " + s.prog->name());
    return;
  }
  const isa::Instruction& ref_inst = s.prog->at(pc);
  if (std::memcmp(&ref_inst, &inst, sizeof(inst)) != 0) {
    diverged(tid, pc, now,
             "instruction mismatch: reference '" + isa::disassemble(ref_inst) +
                 "' vs pipeline '" + isa::disassemble(inst) + "'");
    return;
  }

  s.arch.set_pc(pc);
  func::ExecResult ref = exec_.execute(ref_inst, s.arch, s.ectx, addr_scratch_);

  if (ref.next_pc != primary.next_pc)
    diverged(tid, pc, now,
             "next pc diverged after '" + isa::disassemble(inst) +
                 "': reference " + std::to_string(ref.next_pc) +
                 " vs pipeline " + std::to_string(primary.next_pc));
  if (ref.branch_taken != primary.branch_taken)
    diverged(tid, pc, now,
             "branch direction diverged at '" + isa::disassemble(inst) + "'");
  if (ref.halted != primary.halted)
    diverged(tid, pc, now, "halt state diverged");
  if (ref.elems != primary.elems)
    diverged(tid, pc, now,
             "element count diverged at '" + isa::disassemble(inst) +
                 "': reference " + std::to_string(ref.elems) +
                 " vs pipeline " + std::to_string(primary.elems));
  if (addr_scratch_ != primary_addrs) {
    std::ostringstream os;
    os << "effective addresses diverged at '" << isa::disassemble(inst)
       << "': reference " << addr_scratch_.size() << " addrs vs pipeline "
       << primary_addrs.size();
    for (std::size_t i = 0;
         i < addr_scratch_.size() && i < primary_addrs.size(); ++i) {
      if (addr_scratch_[i] != primary_addrs[i]) {
        os << "; first mismatch at element " << i << ": 0x" << std::hex
           << addr_scratch_[i] << " vs 0x" << primary_addrs[i];
        break;
      }
    }
    diverged(tid, pc, now, os.str());
  }

  compare_state(s, inst, primary_state, tid, pc, now, ref.halted);

  s.pc = ref.next_pc;
  s.halted = ref.halted;
}

void Lockstep::compare_final_memory(const func::FuncMemory& primary,
                                    Cycle now) {
  if (auto diff = shadow_mem_.first_difference(primary))
    sink_->report({Check::kLockstep, "lockstep", now,
                   "final memory image diverged: " + *diff});
}

}  // namespace vlt::audit
