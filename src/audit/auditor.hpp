// Aggregate audit facility owned by a simulation run: holds the sink, the
// lockstep co-simulator, and the run-level conservation counters. The
// machine layer threads a pointer to this object through the processor so
// every component can report into one place. All hooks are observational —
// enabling audit mode never changes a reported cycle count.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "audit/lockstep.hpp"
#include "audit/sink.hpp"
#include "stats/stats.hpp"

namespace vlt::vltctl {
class BarrierController;
}

namespace vlt::audit {

class Auditor {
 public:
  /// `sink` overrides the default throwing sink (tests pass a
  /// RecordingSink); the Auditor does not take ownership of it.
  explicit Auditor(const AuditConfig& cfg, AuditSink* sink = nullptr);

  const AuditConfig& config() const { return cfg_; }
  AuditSink& sink() { return *sink_; }

  /// Sink for dynamic invariant checks, or nullptr when cfg.invariants is
  /// off — components hold this pointer and skip checking entirely on null.
  AuditSink* invariant_sink() {
    return cfg_.invariants ? sink_ : nullptr;
  }

  /// The co-simulator, or nullptr when cfg.lockstep is off.
  Lockstep* lockstep() { return lockstep_.get(); }

  // --- run-level accounting (driven by machine::Simulator) ---

  /// Records thread-management overhead charged outside of phases.
  void note_overhead(Cycle cycles) { overhead_ += cycles; }

  /// Records one completed phase: its cycle count and the vector unit's
  /// cumulative element counter at phase end.
  void note_phase(const std::string& label, Cycle cycles,
                  std::uint64_t element_ops_total);

  /// Deadlock watchdog, polled from the processor's run loop: reports when
  /// a barrier generation has been partially full longer than
  /// cfg.barrier_watchdog cycles.
  void barrier_watchdog(const vltctl::BarrierController& barrier, Cycle now,
                        const std::string& phase_label);

  /// End-of-run reconciliation: RunResult sums must match the per-phase
  /// counters, and the lockstep shadow memory must match the simulated one.
  void finish_run(Cycle total_cycles, Cycle opportunity_cycles,
                  std::uint64_t element_ops, const stats::Histogram& vl_hist,
                  const func::FuncMemory& final_memory);

 private:
  AuditConfig cfg_;
  ThrowSink throw_sink_;
  AuditSink* sink_;
  std::unique_ptr<Lockstep> lockstep_;

  Cycle overhead_ = 0;
  Cycle phase_cycle_sum_ = 0;
  // (label, cumulative element ops at phase end) marks, in phase order.
  std::vector<std::pair<std::string, std::uint64_t>> phase_elem_marks_;
};

}  // namespace vlt::audit
