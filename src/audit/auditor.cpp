#include "audit/auditor.hpp"

#include <sstream>

#include "vltctl/barrier.hpp"

namespace vlt::audit {

Auditor::Auditor(const AuditConfig& cfg, AuditSink* sink)
    : cfg_(cfg), sink_(sink != nullptr ? sink : &throw_sink_) {
  if (cfg_.lockstep) lockstep_ = std::make_unique<Lockstep>(*sink_);
}

void Auditor::note_phase(const std::string& label, Cycle cycles,
                         std::uint64_t element_ops_total) {
  phase_cycle_sum_ += cycles;
  if (cfg_.invariants && !phase_elem_marks_.empty()) {
    sink_->expect(element_ops_total >= phase_elem_marks_.back().second,
                  Check::kElementAccounting, "run", phase_cycle_sum_,
                  "element counter moved backwards across phase '" + label +
                      "'");
  }
  phase_elem_marks_.emplace_back(label, element_ops_total);
}

void Auditor::barrier_watchdog(const vltctl::BarrierController& barrier,
                               Cycle now, const std::string& phase_label) {
  if (!cfg_.invariants) return;
  vltctl::BarrierController::PendingGen p = barrier.oldest_pending();
  if (!p.valid) return;
  if (now - p.first_arrival <= cfg_.barrier_watchdog) return;
  std::ostringstream os;
  os << "barrier deadlock in phase '" << phase_label << "': generation "
     << p.generation << " has " << p.arrivals << "/" << p.expected
     << " arrivals, oldest waiting since cycle " << p.first_arrival << " ("
     << (now - p.first_arrival) << " cycles ago)";
  sink_->report({Check::kBarrierDeadlock, "barrier", now, os.str()});
}

void Auditor::finish_run(Cycle total_cycles, Cycle opportunity_cycles,
                         std::uint64_t element_ops, const stats::Histogram& vl_hist,
                         const func::FuncMemory& final_memory) {
  if (cfg_.invariants) {
    sink_->expect(
        phase_cycle_sum_ + overhead_ == total_cycles, Check::kRunAccounting,
        "run", total_cycles,
        "phase cycles (" + std::to_string(phase_cycle_sum_) +
            ") + overhead (" + std::to_string(overhead_) +
            ") do not sum to the run total (" + std::to_string(total_cycles) +
            ")");
    sink_->expect(opportunity_cycles <= total_cycles, Check::kRunAccounting,
                  "run", total_cycles,
                  "opportunity cycles (" + std::to_string(opportunity_cycles) +
                      ") exceed the run total");
    sink_->expect(
        element_ops == vl_hist.weighted_sum(), Check::kElementAccounting,
        "run", total_cycles,
        "element-op counter (" + std::to_string(element_ops) +
            ") does not match the VL histogram sum (" +
            std::to_string(vl_hist.weighted_sum()) + ")");
    if (!phase_elem_marks_.empty()) {
      sink_->expect(
          phase_elem_marks_.back().second == element_ops,
          Check::kElementAccounting, "run", total_cycles,
          "per-phase element counters sum to " +
              std::to_string(phase_elem_marks_.back().second) +
              " but the vector unit reports " + std::to_string(element_ops));
    }
  }
  if (lockstep_) lockstep_->compare_final_memory(final_memory, total_cycles);
}

}  // namespace vlt::audit
