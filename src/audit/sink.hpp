// Audit reporting: every dynamic invariant the simulator checks in audit
// mode funnels through an AuditSink, so production runs can abort with a
// precise diagnostic while tests capture violations and assert on them.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace vlt::audit {

/// Classes of audited invariants (see docs/CHECKS.md for the catalogue).
enum class Check : std::uint8_t {
  kLaneOccupancy,      // a partition never issues beyond its lane share
  kElementAccounting,  // element/chime counters reconcile across layers
  kBarrierProtocol,    // generations monotone, releases after arrivals
  kBarrierDeadlock,    // arrivals stuck longer than the watchdog allows
  kCacheCounters,      // hit+miss+writeback/occupancy reconciliation
  kCacheTiming,        // completion times never beat the hit latency
  kLockstep,           // timing pipeline diverged from the reference model
  kRunAccounting,      // RunResult sums match per-phase measurements
  kQueueBounds,        // decoupling/store queues within configured capacity
  kCycleAccounting,    // closed-form spans match the per-cycle classifier
};

const char* check_name(Check c);

struct Violation {
  Check check;
  std::string component;  // e.g. "vu", "barrier", "l1d@su0", "lockstep"
  Cycle cycle = 0;        // simulated time of detection
  std::string detail;     // human-readable diagnostic

  std::string to_string() const;
};

/// Receiver of invariant violations. The default sink throws (a corrupted
/// simulation must never report numbers); tests install a recording sink.
class AuditSink {
 public:
  virtual ~AuditSink() = default;
  virtual void report(const Violation& v) = 0;

  /// Convenience: report when `ok` is false.
  void expect(bool ok, Check check, const char* component, Cycle cycle,
              const std::string& detail) {
    if (!ok) report(Violation{check, component, cycle, detail});
  }
};

/// Raises SimError(kInvariant) with the violation diagnostic (production
/// default). Standalone tools die with the diagnostic via their top-level
/// handler; campaign sweeps isolate the failure to the offending cell.
class ThrowSink : public AuditSink {
 public:
  [[noreturn]] void report(const Violation& v) override;
};

/// Records violations for tests to inspect; never aborts.
class RecordingSink : public AuditSink {
 public:
  void report(const Violation& v) override { violations.push_back(v); }

  bool saw(Check c) const {
    for (const Violation& v : violations)
      if (v.check == c) return true;
    return false;
  }

  std::vector<Violation> violations;
};

/// Audit-mode switches carried by MachineConfig. Everything defaults off:
/// audit mode is observational and opt-in, and enabling it must not change
/// a single reported cycle count.
struct AuditConfig {
  bool invariants = false;  // dynamic conservation/protocol checks
  bool lockstep = false;    // reference-model co-simulation
  /// Cycles a barrier generation may sit partially full before the
  /// watchdog declares deadlock and reports (instead of spinning to the
  /// 2e9-cycle phase limit).
  Cycle barrier_watchdog = 2'000'000;

  bool enabled() const { return invariants || lockstep; }

  static AuditConfig full() {
    AuditConfig a;
    a.invariants = true;
    a.lockstep = true;
    return a;
  }
};

}  // namespace vlt::audit
