// Scalar-thread execution on a vector lane (paper §5).
//
// For parallel-but-not-vectorizable code, VLT re-engineers each lane into
// a 2-way in-order processor: a small 4 KB instruction cache plus
// sequencing logic, reusing the lane's 3 arithmetic datapaths and 2 memory
// ports. There is no per-lane data cache — the lane accesses the L2
// directly, tolerating its latency with the existing access-decoupling
// queues (loads are non-blocking; the scoreboard stalls only on use).
// Lane I-cache misses are forwarded to the scalar unit for service, which
// we model as an L2 access plus a forwarding constant. Exceptions remain
// precise by interrupting the SU (not modeled in timing).
#pragma once

#include <deque>
#include <string>

#include "ckpt/checkpoint.hpp"
#include "common/types.hpp"
#include "func/executor.hpp"
#include "isa/program.hpp"
#include "mem/cache.hpp"
#include "mem/l2_cache.hpp"
#include "vltctl/barrier.hpp"

namespace vlt::audit {
class Auditor;
class AuditSink;
class Lockstep;
}  // namespace vlt::audit

namespace vlt::lanecore {

struct LaneCoreParams {
  unsigned width = 2;             // in-order dual issue (paper §5)
  unsigned arith_units = 3;       // the lane's arithmetic datapaths
  unsigned mem_ports = 2;         // the lane's memory ports
  unsigned max_outstanding = 24;  // load decoupling queue (vector-port sized)
  unsigned store_queue = 32;      // store buffer entries (fire and forget)
  std::size_t icache_size = 4 * 1024;  // 4 KB direct-mapped (paper §5)
  unsigned icache_ways = 1;
  unsigned imiss_forward_latency = 4;  // lane -> SU forwarding overhead
  unsigned taken_branch_penalty = 2;   // in-order front-end bubble
};

class LaneCore : public ckpt::Checkpointable {
 public:
  LaneCore(const LaneCoreParams& p, func::FuncMemory& memory,
           mem::L2Cache& l2, vltctl::BarrierController& barrier,
           audit::Auditor* auditor = nullptr);

  void start(const isa::Program& program, ThreadId tid, unsigned nthreads,
             Cycle now);
  void tick(Cycle now);
  bool done() const { return done_; }
  bool active() const { return active_; }

  /// Event-driven skip-ahead hook (docs/PERF.md): earliest cycle > now at
  /// which tick() could change state — a front-end stall expiring, the
  /// scoreboard clearing for the instruction at pc_, the decoupling
  /// queues draining for a barrier/membar, or a known barrier release.
  /// kNeverReady when the lane is done or waiting on a barrier whose
  /// release is not scheduled yet (the completing arrival happens inside
  /// another lane's executed tick, which forces a recompute).
  Cycle next_event(Cycle now) const;

  const func::ArchState& arch_state() const { return arch_; }
  std::uint64_t committed() const { return committed_.value(); }
  std::uint64_t barriers() const { return barriers_.value(); }
  const mem::Cache& icache() const { return icache_; }

  /// Registers this lane's instruments under `prefix` (e.g. "lane3"): the
  /// I-cache ("<prefix>.icache.*"), committed instructions, and barrier
  /// arrivals. The per-tick stall tallies are registered kDiagnostic —
  /// the skip-ahead engine never replays blocked ticks, so they are
  /// engine-dependent and must stay out of serialized snapshots.
  void register_stats(stats::Registry& registry, const std::string& prefix);

  /// Checkpointing (docs/CKPT.md): architectural + sequencing state and
  /// the lane I-cache. The program pointer is rebound through
  /// Reader::program_ref; the committed/barrier counters are
  /// registry-restored; the per-tick stall tallies are diagnostic and
  /// stay out of snapshots.
  void save_state(ckpt::Writer& w) const override;
  void restore_state(ckpt::Reader& r) override;

 private:
  bool issue_one(Cycle now);
  bool scoreboard_ready(const isa::Instruction& inst, Cycle now) const;
  /// Lockstep hook for barrier/membar, which commit without going through
  /// the functional executor: replays them with a synthesized fall-through
  /// result so the co-simulator's program counters stay aligned.
  void synth_lockstep(const isa::Instruction& inst, Cycle now);

  LaneCoreParams params_;
  func::Executor executor_;
  mem::L2Cache* l2_;
  vltctl::BarrierController* barrier_;
  audit::AuditSink* audit_ = nullptr;
  audit::Lockstep* lockstep_ = nullptr;
  mem::Cache icache_;

  bool active_ = false;
  bool done_ = false;
  const isa::Program* prog_ = nullptr;
  func::ArchState arch_;
  func::ExecContext ectx_;

  std::uint64_t pc_ = 0;
  Cycle stall_until_ = 0;         // front-end stall (I-miss, taken branch)
  Addr cur_line_ = ~Addr{0};
  std::array<Cycle, kNumScalarRegs> reg_ready_{};
  std::deque<Cycle> outstanding_;   // completion times of in-flight loads
  std::deque<Cycle> store_queue_;   // completion times of buffered stores

  // Per-cycle issue bookkeeping.
  Cycle cur_cycle_ = ~Cycle{0};
  unsigned issued_this_cycle_ = 0;
  unsigned arith_used_ = 0;
  unsigned mem_used_ = 0;

  // Barrier state.
  bool waiting_barrier_ = false;
  std::uint64_t barrier_gen_ = 0;

  stats::Counter committed_;
  stats::Counter barriers_;
  // Per failed issue attempt, so tick-frequency-dependent (kDiagnostic).
  stats::Counter stall_scoreboard_;
  stats::Counter stall_mem_port_;
  stats::Counter stall_store_queue_;
  stats::Counter stall_load_queue_;
  stats::Counter stall_arith_;
  std::vector<Addr> addr_scratch_;
};

}  // namespace vlt::lanecore
