#include "lanecore/lane_core.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "audit/auditor.hpp"
#include "common/log.hpp"
#include "isa/disasm.hpp"

namespace vlt::lanecore {

using isa::Instruction;
using isa::Opcode;

LaneCore::LaneCore(const LaneCoreParams& p, func::FuncMemory& memory,
                   mem::L2Cache& l2, vltctl::BarrierController& barrier,
                   audit::Auditor* auditor)
    : params_(p),
      executor_(memory),
      l2_(&l2),
      barrier_(&barrier),
      icache_(p.icache_size, p.icache_ways) {
  if (auditor != nullptr) {
    audit_ = auditor->invariant_sink();
    lockstep_ = auditor->lockstep();
    icache_.set_audit(audit_, "lane-icache");
  }
}

void LaneCore::start(const isa::Program& program, ThreadId tid,
                     unsigned nthreads, Cycle now) {
  active_ = true;
  done_ = false;
  prog_ = &program;
  arch_.reset();
  ectx_ = func::ExecContext{tid, nthreads, /*max_vl=*/0, program.isa()};
  pc_ = 0;
  stall_until_ = now;
  cur_line_ = ~Addr{0};
  reg_ready_.fill(0);
  outstanding_.clear();
  store_queue_.clear();
  waiting_barrier_ = false;
  icache_.invalidate_all();  // cold lane I-cache at phase start
}

void LaneCore::synth_lockstep(const Instruction& inst, Cycle now) {
  func::ExecResult res;
  res.next_pc = pc_ + 1;
  static const std::vector<Addr> kNoAddrs;
  lockstep_->on_execute(ectx_.tid, inst, pc_, res, kNoAddrs, arch_, now);
}

bool LaneCore::scoreboard_ready(const Instruction& inst, Cycle now) const {
  isa::RegList srcs = isa::scalar_src_regs(inst);
  for (unsigned i = 0; i < srcs.n; ++i)
    if (reg_ready_[srcs.r[i]] > now) return false;
  RegIdx rd;
  if (isa::scalar_dst_reg(inst, rd) && reg_ready_[rd] > now)
    return false;  // WAW: classic scoreboard stall
  return true;
}

bool LaneCore::issue_one(Cycle now) {
  const Instruction& inst = prog_->at(pc_);
  VLT_CHECK(!isa::is_vector(inst.op),
            "vector instruction reached a lane scalar core");

  // Prune completed memory operations from the decoupling queues.
  while (!outstanding_.empty() && outstanding_.front() <= now)
    outstanding_.pop_front();
  while (!store_queue_.empty() && store_queue_.front() <= now)
    store_queue_.pop_front();

  if (waiting_barrier_) {
    Cycle rel = barrier_->release_time(barrier_gen_);
    if (rel == kNeverReady || rel > now) return false;
    waiting_barrier_ = false;
    if (lockstep_ != nullptr) synth_lockstep(inst, now);
    committed_.inc();
    ++pc_;
    return true;
  }

  if (inst.op == Opcode::kBarrier || inst.op == Opcode::kMembar) {
    if (!outstanding_.empty() || !store_queue_.empty())
      return false;  // drain memory first
    if (inst.op == Opcode::kMembar) {
      if (lockstep_ != nullptr) synth_lockstep(inst, now);
      committed_.inc();
      ++pc_;
      return true;
    }
    barrier_gen_ = barrier_->arrive(now);
    waiting_barrier_ = true;
    barriers_.inc();
    return false;
  }

  if (!scoreboard_ready(inst, now)) {
    stall_scoreboard_.inc();
    return false;
  }

  const isa::OpInfo& info = isa::op_info(inst.op);
  const bool mem_op = isa::is_mem(inst.op);
  const bool store_op = mem_op && isa::is_store(inst.op);
  if (mem_op) {
    if (mem_used_ >= params_.mem_ports) {
      stall_mem_port_.inc();
      return false;
    }
    if (store_op) {
      if (store_queue_.size() >= params_.store_queue) {
        stall_store_queue_.inc();
        return false;
      }
    } else if (outstanding_.size() >= params_.max_outstanding) {
      stall_load_queue_.inc();
      return false;
    }
  } else if (info.fu != isa::FuClass::kNone) {
    if (arith_used_ >= params_.arith_units) {
      stall_arith_.inc();
      return false;
    }
  }

  // I-cache, line granularity; misses are forwarded through the SU.
  Addr iaddr = prog_->inst_addr(pc_);
  Addr line = iaddr / kLineBytes;
  if (line != cur_line_) {
    cur_line_ = line;
    if (!icache_.access(iaddr, false).hit) {
      stall_until_ =
          l2_->access(iaddr, false, now + 1) + params_.imiss_forward_latency;
      return false;
    }
  }

  arch_.set_pc(pc_);
  func::ExecResult res = executor_.execute(inst, arch_, ectx_, addr_scratch_);
  if (lockstep_ != nullptr)
    lockstep_->on_execute(ectx_.tid, inst, pc_, res, addr_scratch_, arch_,
                          now);
  committed_.inc();
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only, env never mutated
  static const bool trace = std::getenv("VLT_LANE_TRACE") != nullptr;
  if (trace && ectx_.tid == 1 && committed_.value() > 2000 && committed_.value() < 2100)
    std::fprintf(stderr, "[lane%u] t=%llu pc=%llu %s\n", ectx_.tid,
                 (unsigned long long)now, (unsigned long long)pc_,
                 isa::disassemble(inst).c_str());

  if (mem_op) {
    ++mem_used_;
    Addr a = addr_scratch_.at(0);
    Cycle done = l2_->access(a, store_op, now + 1) + 1;
    if (store_op) {
      store_queue_.push_back(done);
    } else {
      outstanding_.push_back(done);
      RegIdx rd;
      if (isa::scalar_dst_reg(inst, rd)) reg_ready_[rd] = done;
    }
  } else {
    if (info.fu != isa::FuClass::kNone) ++arith_used_;
    RegIdx rd;
    if (isa::scalar_dst_reg(inst, rd)) reg_ready_[rd] = now + info.latency;
  }

  if (res.halted) {
    done_ = true;
    pc_ = res.next_pc;
    return true;
  }
  if (res.branch_taken) {
    stall_until_ = now + 1 + params_.taken_branch_penalty;
    pc_ = res.next_pc;
    return true;
  }
  pc_ = res.next_pc;
  return true;
}

Cycle LaneCore::next_event(Cycle now) const {
  if (!active_ || done_) return kNeverReady;
  if (stall_until_ > now) return stall_until_;

  if (waiting_barrier_) {
    Cycle rel = barrier_->release_time(barrier_gen_);
    return rel == kNeverReady ? kNeverReady : std::max(now + 1, rel);
  }

  // In-order: only the instruction at pc_ can make progress. Whatever it
  // waits on bounds the skip; structural hazards (ports, width) reset
  // every cycle, so the floor is now + 1.
  const Instruction& inst = prog_->at(pc_);
  Cycle t = now + 1;
  if (inst.op == Opcode::kBarrier || inst.op == Opcode::kMembar) {
    // Both decoupling queues drain front-first; the last completion time
    // empties them.
    for (Cycle d : outstanding_) t = std::max(t, d);
    for (Cycle d : store_queue_) t = std::max(t, d);
    return t;
  }

  isa::RegList srcs = isa::scalar_src_regs(inst);
  for (unsigned i = 0; i < srcs.n; ++i)
    t = std::max(t, reg_ready_[srcs.r[i]]);
  RegIdx rd;
  if (isa::scalar_dst_reg(inst, rd)) t = std::max(t, reg_ready_[rd]);
  if (isa::is_mem(inst.op)) {
    if (isa::is_store(inst.op)) {
      if (store_queue_.size() >= params_.store_queue)
        t = std::max(t, store_queue_.front());
    } else if (outstanding_.size() >= params_.max_outstanding) {
      t = std::max(t, outstanding_.front());
    }
  }
  return t;
}

void LaneCore::tick(Cycle now) {
  if (!active_ || done_) return;
  if (now < stall_until_) return;

  if (now != cur_cycle_) {
    cur_cycle_ = now;
    issued_this_cycle_ = 0;
    arith_used_ = 0;
    mem_used_ = 0;
  }
  while (issued_this_cycle_ < params_.width) {
    if (!issue_one(now)) break;
    ++issued_this_cycle_;
    if (done_ || now < stall_until_) break;
  }

  if (audit_ != nullptr) {
    audit_->expect(outstanding_.size() <= params_.max_outstanding,
                   audit::Check::kQueueBounds, "lane", now,
                   "load decoupling queue holds " +
                       std::to_string(outstanding_.size()) +
                       " entries, capacity " +
                       std::to_string(params_.max_outstanding));
    audit_->expect(store_queue_.size() <= params_.store_queue,
                   audit::Check::kQueueBounds, "lane", now,
                   "store queue holds " + std::to_string(store_queue_.size()) +
                       " entries, capacity " +
                       std::to_string(params_.store_queue));
  }
}

void LaneCore::register_stats(stats::Registry& registry,
                              const std::string& prefix) {
  icache_.register_stats(registry, prefix + ".icache");
  registry.add_counter(prefix + ".committed", &committed_);
  registry.add_counter(prefix + ".barriers", &barriers_);
  registry.add_counter(prefix + ".stall_scoreboard", &stall_scoreboard_,
                       stats::Stability::kDiagnostic);
  registry.add_counter(prefix + ".stall_mem_port", &stall_mem_port_,
                       stats::Stability::kDiagnostic);
  registry.add_counter(prefix + ".stall_store_queue", &stall_store_queue_,
                       stats::Stability::kDiagnostic);
  registry.add_counter(prefix + ".stall_load_queue", &stall_load_queue_,
                       stats::Stability::kDiagnostic);
  registry.add_counter(prefix + ".stall_arith", &stall_arith_,
                       stats::Stability::kDiagnostic);
}

void LaneCore::save_state(ckpt::Writer& w) const {
  w.boolean("active", active_);
  w.boolean("done", done_);
  w.u64("tid", ectx_.tid);
  w.u64("nthreads", ectx_.nthreads);
  w.push("arch");
  arch_.save_state(w);
  w.pop();
  w.u64("pc", pc_);
  w.u64("stall_until", stall_until_);
  w.u64("cur_line", cur_line_);
  w.blob64("reg_ready", reg_ready_.data(), reg_ready_.size());
  std::vector<std::uint64_t> outstanding(outstanding_.begin(),
                                         outstanding_.end());
  w.blob64("outstanding", outstanding.data(), outstanding.size());
  std::vector<std::uint64_t> stores(store_queue_.begin(), store_queue_.end());
  w.blob64("store_queue", stores.data(), stores.size());
  w.u64("cur_cycle", cur_cycle_);
  w.u64("issued_this_cycle", issued_this_cycle_);
  w.u64("arith_used", arith_used_);
  w.u64("mem_used", mem_used_);
  w.boolean("waiting_barrier", waiting_barrier_);
  w.u64("barrier_gen", barrier_gen_);
  w.push("icache");
  icache_.save_state(w);
  w.pop();
}

void LaneCore::restore_state(ckpt::Reader& r) {
  active_ = r.boolean("active");
  done_ = r.boolean("done");
  ThreadId tid = static_cast<ThreadId>(r.u64("tid"));
  unsigned nthreads = static_cast<unsigned>(r.u64("nthreads"));
  if (active_) {
    VLT_CHECK(r.program_ref != nullptr, "lane restore needs a program map");
    prog_ = r.program_ref(tid);
    VLT_CHECK(prog_ != nullptr, "no program for restored lane thread");
    ectx_ = func::ExecContext{tid, nthreads, /*max_vl=*/0, prog_->isa()};
  }
  r.push("arch");
  arch_.restore_state(r);
  r.pop();
  pc_ = r.u64("pc");
  stall_until_ = r.u64("stall_until");
  cur_line_ = r.u64("cur_line");
  r.blob64("reg_ready", reg_ready_.data(), reg_ready_.size());
  std::vector<std::uint64_t> outstanding = r.blob64("outstanding");
  outstanding_.assign(outstanding.begin(), outstanding.end());
  std::vector<std::uint64_t> stores = r.blob64("store_queue");
  store_queue_.assign(stores.begin(), stores.end());
  cur_cycle_ = r.u64("cur_cycle");
  issued_this_cycle_ = static_cast<unsigned>(r.u64("issued_this_cycle"));
  arith_used_ = static_cast<unsigned>(r.u64("arith_used"));
  mem_used_ = static_cast<unsigned>(r.u64("mem_used"));
  waiting_barrier_ = r.boolean("waiting_barrier");
  barrier_gen_ = r.u64("barrier_gen");
  r.push("icache");
  icache_.restore_state(r);
  r.pop();
}

}  // namespace vlt::lanecore
