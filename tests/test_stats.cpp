// vltstat metrics layer: instruments, registry snapshots, the shared
// Figure-4 cycle accountant, the structured-event trace buffer, and the
// schema guarantees RunResult builds on top of them (docs/METRICS.md).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/sink.hpp"
#include "machine/machine_config.hpp"
#include "machine/simulator.hpp"
#include "stats/cycle_accountant.hpp"
#include "stats/stats.hpp"
#include "stats/trace.hpp"
#include "workloads/workload.hpp"

#include "expect_sim_error.hpp"

namespace vlt {
namespace {

using machine::MachineConfig;
using machine::RunResult;
using machine::Simulator;
using stats::CycleAccountant;
using stats::Registry;
using stats::Snapshot;
using stats::Stability;
using stats::TraceBuffer;
using stats::TraceEvent;
using workloads::Variant;

// --- instruments and registry ----------------------------------------------

TEST(StatsRegistry, SnapshotIsNameSortedAndSkipsZeros) {
  stats::Counter hits, misses, untouched;
  stats::Gauge level;
  stats::Histogram vl;
  Registry reg;
  reg.add_counter("z.hits", &hits);
  reg.add_counter("a.misses", &misses);
  reg.add_counter("m.untouched", &untouched);
  reg.add_gauge("g.level", &level);
  reg.add_histogram("h.vl", &vl);

  hits.inc(3);
  misses.inc();
  level.set(-2);
  vl.add(8, 2);

  Snapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);  // zero-valued counter omitted
  EXPECT_EQ(s.counters[0].first, "a.misses");  // name-sorted
  EXPECT_EQ(s.counters[1].first, "z.hits");
  EXPECT_EQ(s.counter("z.hits"), 3u);
  EXPECT_EQ(s.counter("m.untouched"), 0u);  // absence == zero
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].second, -2);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].second.total_weight(), 2u);
}

TEST(StatsRegistry, DiagnosticInstrumentsStayOutOfSnapshots) {
  stats::Counter stable, ticks;
  Registry reg;
  reg.add_counter("core.committed", &stable);
  reg.add_counter("engine.ticks", &ticks, Stability::kDiagnostic);
  stable.inc(7);
  ticks.inc(1000);

  Snapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].first, "core.committed");
  // Raw lookups still see diagnostic instruments.
  EXPECT_EQ(reg.counter_value("engine.ticks"), 1000u);
}

TEST(StatsRegistry, DuplicateAndEmptyNamesAreRejected) {
  stats::Counter c;
  stats::Gauge g;
  Registry reg;
  reg.add_counter("x.hits", &c);
  EXPECT_SIM_ERROR(reg.add_counter("x.hits", &c), "duplicate instrument");
  EXPECT_SIM_ERROR(reg.add_gauge("x.hits", &g), "duplicate instrument");
  EXPECT_SIM_ERROR(reg.add_counter("", &c), "without a name");
}

TEST(StatsRegistry, SnapshotJsonRoundTripsByteIdentically) {
  stats::Counter c;
  stats::Gauge g;
  stats::Histogram h;
  Registry reg;
  reg.add_counter("su0.l1d.misses", &c);
  reg.add_gauge("l2.valid_lines", &g);
  reg.add_histogram("vu.vl", &h);
  c.inc(42);
  g.set(17);
  h.add(8, 5);
  h.add(64, 1);

  Snapshot s = reg.snapshot();
  std::string bytes = s.to_json().dump(1);
  Snapshot back = Snapshot::from_json(s.to_json());
  EXPECT_EQ(back.to_json().dump(1), bytes);
  EXPECT_EQ(back.counter("su0.l1d.misses"), 42u);
}

TEST(StatsRegistry, InvariantsReportThroughTheAuditSink) {
  stats::Counter hits, misses, accesses;
  Registry reg;
  reg.add_counter("c.hits", &hits);
  reg.add_counter("c.misses", &misses);
  reg.add_counter("c.accesses", &accesses);
  reg.add_invariant("c", audit::Check::kCacheCounters,
                    [&]() -> std::optional<std::string> {
                      if (hits.value() + misses.value() != accesses.value())
                        return "hits + misses != accesses";
                      return std::nullopt;
                    });

  audit::RecordingSink sink;
  hits.inc(2);
  misses.inc(1);
  accesses.inc(3);
  reg.check_invariants(sink, 100);
  EXPECT_TRUE(sink.violations.empty());

  accesses.inc();  // break conservation
  reg.check_invariants(sink, 200);
  ASSERT_EQ(sink.violations.size(), 1u);
  EXPECT_TRUE(sink.saw(audit::Check::kCacheCounters));
  EXPECT_EQ(sink.violations[0].component, "c");
  EXPECT_EQ(sink.violations[0].cycle, 200u);
}

// --- cycle accountant ------------------------------------------------------

TEST(CycleAccountantTest, OnIssueSplitsTheChimeRectangle) {
  CycleAccountant acct;
  // VL=13 on 8 lanes: ceil(13/8)=2 cycles x 8 lanes = 16 slots.
  acct.on_issue(13, 16);
  stats::DatapathUtilization u = acct.utilization();
  EXPECT_EQ(u.busy, 13u);
  EXPECT_EQ(u.partly_idle, 3u);
  EXPECT_EQ(u.total(), 16u);
}

TEST(CycleAccountantTest, SpanMatchesPerCycleReplay) {
  // For assorted FU-busy patterns, the closed-form span must charge
  // exactly what ticking the classifier on every cycle charges.
  const Cycle kFuFree[][3] = {
      {0, 0, 0},       // all free the whole span
      {50, 0, 120},    // one FU busy into the span, one past it
      {200, 200, 200}, // all busy past the span end
      {100, 101, 99},  // frees mid-span
  };
  for (const auto& fu_free : kFuFree) {
    for (bool work_waiting : {false, true}) {
      CycleAccountant span_acct, cycle_acct;
      span_acct.account_span(40, 140, fu_free, 3, work_waiting, /*weight=*/2);
      for (Cycle t = 40; t < 140; ++t)
        cycle_acct.account_cycle(t, fu_free, 3, work_waiting, 2);
      stats::DatapathUtilization a = span_acct.utilization();
      stats::DatapathUtilization b = cycle_acct.utilization();
      EXPECT_EQ(a.stalled, b.stalled);
      EXPECT_EQ(a.all_idle, b.all_idle);
    }
  }
}

TEST(CycleAccountantTest, AuditAgreementCheckStaysSilentWhenConsistent) {
  audit::RecordingSink sink;
  CycleAccountant acct;
  acct.set_audit(&sink);
  const Cycle fu_free[3] = {60, 0, 1000};
  acct.account_span(40, 140, fu_free, 3, true, 2);
  EXPECT_TRUE(sink.violations.empty());
}

// --- engine equivalence ----------------------------------------------------

TEST(StatsDeterminism, TwoIdenticalRunsSnapshotIdentically) {
  workloads::WorkloadPtr w = workloads::make_workload("mpenc");
  MachineConfig cfg = MachineConfig::base();
  RunResult a = Simulator(cfg).run(*w, Variant::base());
  RunResult b = Simulator(cfg).run(*w, Variant::base());
  ASSERT_FALSE(a.stats.empty());
  EXPECT_EQ(a.stats.to_json().dump(1), b.stats.to_json().dump(1));
  EXPECT_EQ(a.to_json().dump(1), b.to_json().dump(1));
}

TEST(StatsDeterminism, AccountantAgreesAcrossEnginesOnEveryWorkload) {
  // The tentpole property: the per-cycle oracle (account_cycle) and the
  // skip engine (account_span) must land every Figure-4 lane-cycle in the
  // same bucket — checked here through the serialized snapshot, for all
  // nine workloads.
  for (const std::string& name : workloads::workload_names()) {
    workloads::WorkloadPtr w = workloads::make_workload(name);
    MachineConfig cfg = MachineConfig::base();
    cfg.event_skip = true;
    RunResult skip = Simulator(cfg).run(*w, Variant::base());
    cfg.event_skip = false;
    RunResult oracle = Simulator(cfg).run(*w, Variant::base());
    EXPECT_EQ(skip.stats.to_json().dump(1), oracle.stats.to_json().dump(1))
        << name << " snapshots diverge between engines";
    EXPECT_EQ(skip.util.total(), oracle.util.total()) << name;
    EXPECT_EQ(skip.util.busy, oracle.util.busy) << name;
    EXPECT_EQ(skip.util.stalled, oracle.util.stalled) << name;
    EXPECT_EQ(skip.util.all_idle, oracle.util.all_idle) << name;
  }
}

// --- trace buffer ----------------------------------------------------------

TEST(Trace, RingKeepsTheNewestEvents) {
  TraceBuffer buf(4);
  for (Cycle t = 0; t < 6; ++t)
    buf.record(TraceEvent::Kind::kL2Miss, t, 0, 0x1000 + t);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.recorded(), 6u);
  EXPECT_EQ(buf.dropped(), 2u);
  std::vector<TraceEvent> evs = buf.events();
  ASSERT_EQ(evs.size(), 4u);
  for (std::size_t i = 0; i < evs.size(); ++i)
    EXPECT_EQ(evs[i].cycle, i + 2) << "oldest-first order";
}

TEST(Trace, ChromeExportRoundTripsThroughJson) {
  TraceBuffer buf(16);
  buf.record(TraceEvent::Kind::kVecDispatch, 10, 1, /*vl=*/32);
  buf.record(TraceEvent::Kind::kViqHandoff, 11, 1, /*vl=*/32);
  buf.record(TraceEvent::Kind::kBarrierArrive, 20, 0, /*gen=*/3);
  buf.record(TraceEvent::Kind::kBarrierRelease, 25, 0, /*gen=*/3);
  buf.record(TraceEvent::Kind::kL2Miss, 30, 2, /*addr=*/0xbeef);

  std::string bytes = buf.to_chrome_json().dump(1);
  std::string err;
  std::optional<Json> parsed = Json::parse(bytes, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  const Json* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 5u);
  const Json& first = events->items()[0];
  EXPECT_EQ(first.find("name")->as_string(), "vec_dispatch");
  EXPECT_EQ(first.find("cat")->as_string(), "vu");
  EXPECT_EQ(first.find("ph")->as_string(), "i");
  EXPECT_EQ(first.find("ts")->as_uint(), 10u);
  EXPECT_EQ(first.find("args")->find("vl")->as_uint(), 32u);
  const Json& last = events->items()[4];
  EXPECT_EQ(last.find("name")->as_string(), "l2_miss");
  EXPECT_EQ(last.find("args")->find("addr")->as_uint(), 0xbeefu);
  EXPECT_EQ(parsed->find("vltDropped")->as_uint(), 0u);
}

TEST(Trace, SimulatorRunRecordsVectorAndMemoryEvents) {
  TraceBuffer buf;
  workloads::WorkloadPtr w = workloads::make_workload("mpenc");
  Simulator sim(MachineConfig::base());
  sim.set_trace(&buf);
  RunResult r = sim.run(*w, Variant::base());
  ASSERT_TRUE(r.verified);
  bool saw_dispatch = false, saw_handoff = false, saw_miss = false;
  for (const TraceEvent& e : buf.events()) {
    saw_dispatch |= e.kind == TraceEvent::Kind::kVecDispatch;
    saw_handoff |= e.kind == TraceEvent::Kind::kViqHandoff;
    saw_miss |= e.kind == TraceEvent::Kind::kL2Miss;
  }
  EXPECT_TRUE(saw_dispatch);
  EXPECT_TRUE(saw_handoff);
  EXPECT_TRUE(saw_miss);
  // Tracing is observational: the traced run reports the same bytes as an
  // untraced one.
  RunResult plain = Simulator(MachineConfig::base()).run(*w, Variant::base());
  EXPECT_EQ(r.to_json().dump(1), plain.to_json().dump(1));
}

// --- schema compatibility --------------------------------------------------

TEST(SchemaCompat, V2FixtureParsesWithEmptySnapshotAndRoundTrips) {
  // A vltsweep-v2-era RunResult: no "stats" key. Parsing must yield an
  // empty snapshot, and re-serializing must reproduce the bytes exactly
  // (the property --resume and the result cache rely on).
  const std::string fixture =
      "{\"workload\":\"mpenc\",\"config\":\"base\",\"variant\":\"base\","
      "\"status\":\"ok\",\"verified\":true,\"attempts\":1,\"cycles\":1234,"
      "\"phases\":[{\"label\":\"p0\",\"cycles\":1234}],"
      "\"opportunity_cycles\":1000,\"scalar_insts\":10,\"vector_insts\":4,"
      "\"element_ops\":256,\"metrics\":{\"pct_vectorization\":96.2406015,"
      "\"avg_vl\":64,\"pct_opportunity\":81.03727715},"
      "\"utilization\":{\"busy\":256,\"partly_idle\":0,\"stalled\":10,"
      "\"all_idle\":20},\"vl_histogram\":{\"64\":4}}";
  std::string err;
  std::optional<Json> j = Json::parse(fixture, &err);
  ASSERT_TRUE(j.has_value()) << err;
  std::optional<RunResult> r = RunResult::from_json(*j);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->stats.empty());
  EXPECT_EQ(r->cycles, 1234u);
  EXPECT_EQ(r->to_json().dump(), fixture);
}

TEST(SchemaCompat, V3RunCarriesTheSnapshot) {
  workloads::WorkloadPtr w = workloads::make_workload("mpenc");
  RunResult r = Simulator(MachineConfig::base()).run(*w, Variant::base());
  ASSERT_FALSE(r.stats.empty());
  Json j = r.to_json();
  const Json* stats = j.find("stats");
  ASSERT_NE(stats, nullptr);
  ASSERT_NE(stats->find("counters"), nullptr);
  // Spot-check the naming convention against first-class accessors.
  EXPECT_EQ(r.stats.counter("vu.element_ops"), r.element_ops);
  EXPECT_EQ(r.stats.counter("vu.datapath.busy"), r.util.busy);
  std::optional<RunResult> back = RunResult::from_json(j);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->to_json().dump(1), j.dump(1));
  EXPECT_EQ(back->stats.counter("vu.datapath.busy"), r.util.busy);
}

}  // namespace
}  // namespace vlt
