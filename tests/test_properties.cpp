// Parameterized property sweeps over module invariants, including a
// differential test: random programs run through the functional executor
// must produce exactly the state a host-side interpreter-mirror computes,
// and identical architectural results on every machine configuration.
#include <gtest/gtest.h>

#include <algorithm>

#include "stats/stats.hpp"
#include "common/rng.hpp"
#include "func/executor.hpp"
#include "isa/disasm.hpp"
#include "isa/program.hpp"
#include "machine/processor.hpp"
#include "mem/cache.hpp"
#include "mem/l2_cache.hpp"
#include "vltctl/barrier.hpp"
#include "vltctl/partition.hpp"
#include "workloads/kernel_util.hpp"

namespace vlt {
namespace {

// --- Cache properties over a sweep of geometries ---

struct CacheGeom {
  std::size_t size;
  unsigned ways;
};

class CacheProperty : public ::testing::TestWithParam<CacheGeom> {};

TEST_P(CacheProperty, ProbeAgreesWithAccessHistory) {
  auto [size, ways] = GetParam();
  mem::Cache cache(size, ways);
  Xorshift64 rng(size * 31 + ways);
  for (int i = 0; i < 5000; ++i) {
    Addr a = rng.next_below(1 << 16) * 8;
    bool probed = cache.probe(a);
    bool hit = cache.access(a, rng.next_below(2) == 0).hit;
    EXPECT_EQ(probed, hit);
    EXPECT_TRUE(cache.probe(a));  // present after access
  }
  EXPECT_EQ(cache.hits() + cache.misses(), 5000u);
}

TEST_P(CacheProperty, RepeatedAccessAlwaysHits) {
  auto [size, ways] = GetParam();
  mem::Cache cache(size, ways);
  cache.access(0x1234 & ~7ull, false);
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(cache.access(0x1234 & ~7ull, false).hit);
}

TEST_P(CacheProperty, WorkingSetWithinCapacityNeverEvicts) {
  auto [size, ways] = GetParam();
  mem::Cache cache(size, ways);
  // Touch exactly one line per set (way 0 of each set): fits trivially.
  unsigned sets = cache.num_sets();
  for (unsigned s = 0; s < sets; ++s)
    cache.access(static_cast<Addr>(s) * kLineBytes, false);
  for (unsigned s = 0; s < sets; ++s)
    EXPECT_TRUE(cache.access(static_cast<Addr>(s) * kLineBytes, false).hit);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(CacheGeom{1024, 1}, CacheGeom{1024, 2},
                      CacheGeom{4096, 4}, CacheGeom{16384, 2},
                      CacheGeom{4096, 1}, CacheGeom{65536, 8}));

// --- Lane-partition properties ---

class PartitionProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PartitionProperty, ElementsCoverEveryIndexExactlyOnce) {
  unsigned lanes = GetParam();
  for (unsigned vl : {1u, 5u, 8u, 17u, 64u}) {
    std::vector<int> seen(vl, 0);
    for (unsigned lane = 0; lane < lanes; ++lane)
      for (unsigned e : vltctl::lane_elements(lane, lanes, vl)) ++seen[e];
    for (unsigned e = 0; e < vl; ++e) EXPECT_EQ(seen[e], 1) << "vl=" << vl;
  }
}

TEST_P(PartitionProperty, PartitionConservesLanesAndRegisters) {
  unsigned lanes = GetParam();
  for (const auto& p : vltctl::supported_partitions(lanes)) {
    EXPECT_EQ(p.lanes_per_thread * p.nthreads, lanes);
    EXPECT_EQ(p.max_vl_per_thread * p.nthreads, kMaxVectorLength);
  }
}

INSTANTIATE_TEST_SUITE_P(LaneCounts, PartitionProperty,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

// --- Random scalar programs: executor vs host mirror ----------------------

/// Generates a random straight-line integer program and mirrors its
/// semantics on the host; the executor must match register for register.
class RandomScalarProgram : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomScalarProgram, ExecutorMatchesHostMirror) {
  Xorshift64 rng(GetParam());
  constexpr unsigned kRegs = 16;  // s1..s16
  std::array<std::int64_t, kRegs + 1> host{};

  isa::ProgramBuilder b("random");
  func::FuncMemory mem;
  func::Executor exec(mem);
  func::ArchState st;
  func::ExecContext ctx{0, 1, kMaxVectorLength};
  std::vector<Addr> addrs;

  auto reg = [&] { return static_cast<RegIdx>(1 + rng.next_below(kRegs)); };
  // Seed registers.
  for (unsigned r = 1; r <= kRegs; ++r) {
    auto v = static_cast<std::int64_t>(rng.next_below(1 << 20)) - (1 << 19);
    b.li(static_cast<RegIdx>(r), v);
    host[r] = v;
  }
  for (int n = 0; n < 300; ++n) {
    RegIdx d = reg(), s1 = reg(), s2 = reg();
    switch (rng.next_below(10)) {
      case 0: b.add(d, s1, s2); host[d] = host[s1] + host[s2]; break;
      case 1: b.sub(d, s1, s2); host[d] = host[s1] - host[s2]; break;
      case 2: b.mul(d, s1, s2); host[d] = host[s1] * host[s2]; break;
      case 3:
        b.and_(d, s1, s2);
        host[d] = host[s1] & host[s2];
        break;
      case 4: b.or_(d, s1, s2); host[d] = host[s1] | host[s2]; break;
      case 5: b.xor_(d, s1, s2); host[d] = host[s1] ^ host[s2]; break;
      case 6:
        b.slli(d, s1, 3);
        host[d] = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(host[s1]) << 3);
        break;
      case 7:
        b.srli(d, s1, 5);
        host[d] = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(host[s1]) >> 5);
        break;
      case 8: b.slt(d, s1, s2); host[d] = host[s1] < host[s2]; break;
      case 9:
        b.div(d, s1, s2);
        host[d] = host[s2] == 0 ? 0 : host[s1] / host[s2];
        break;
    }
  }
  b.halt();
  isa::Program p = b.build();

  while (true) {
    const isa::Instruction& inst = p.at(st.pc());
    func::ExecResult r = exec.execute(inst, st, ctx, addrs);
    if (r.halted) break;
    st.set_pc(r.next_pc);
  }
  for (unsigned r = 1; r <= kRegs; ++r)
    EXPECT_EQ(st.sreg_i(static_cast<RegIdx>(r)), host[r]) << "s" << r;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScalarProgram,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// --- The same program produces identical results on every machine ---------

/// A small checksum kernel (scalar + vector mix) must leave the exact same
/// memory image no matter which timing configuration runs it: functional
/// behaviour may never depend on timing.
class ConfigInvariance : public ::testing::TestWithParam<std::string> {};

isa::Program checksum_kernel() {
  isa::ProgramBuilder b("checksum");
  constexpr RegIdx n = 1, vl = 2, scr = 3, inP = 16, outP = 17, acc = 33,
                   t = 34, three = 48;
  b.li(three, 3);
  b.li(inP, 0x70000);
  b.li(outP, 0x78000);
  b.li(acc, 0);
  b.li(n, 300);
  workloads::strip_mine(b, n, vl, scr, {inP, outP}, [&] {
    b.vload(1, inP);
    b.vmul(2, 1, three, isa::kFlagSrc2Scalar);
    b.vstore(2, outP);
    b.vredsum(t, 2);
    b.add(acc, acc, t);
  });
  b.li(t, 0x79000);
  b.store(t, acc);
  b.halt();
  return b.build();
}

TEST_P(ConfigInvariance, SameMemoryImageOnEveryConfig) {
  machine::MachineConfig cfg = machine::MachineConfig::by_name(GetParam());
  if (!cfg.has_vector_unit) GTEST_SKIP() << "vector kernel needs a VU";
  machine::Processor proc(cfg);
  for (unsigned i = 0; i < 300; ++i)
    proc.memory().write_i64(0x70000 + 8 * i, static_cast<std::int64_t>(i) - 150);
  machine::Phase ph;
  ph.mode = machine::PhaseMode::kSerial;
  ph.programs.push_back(checksum_kernel());
  proc.run_phase(ph);

  std::int64_t acc = 0;
  for (unsigned i = 0; i < 300; ++i) {
    std::int64_t want = (static_cast<std::int64_t>(i) - 150) * 3;
    EXPECT_EQ(proc.memory().read_i64(0x78000 + 8 * i), want) << i;
    acc += want;
  }
  EXPECT_EQ(proc.memory().read_i64(0x79000), acc);
}

INSTANTIATE_TEST_SUITE_P(Configs, ConfigInvariance,
                         ::testing::Values("base", "V2-SMT", "V4-SMT",
                                           "V2-CMP", "V4-CMP", "V4-CMT",
                                           "V4-CMP-h"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// --- strip_mine covers every element exactly once, any MAXVL --------------

class StripMineProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(StripMineProperty, TouchesEveryElementOnceUnderClampedVl) {
  unsigned max_vl = GetParam();
  for (unsigned total : {1u, 7u, 16u, 63u, 64u, 65u, 200u}) {
    isa::ProgramBuilder b("strip");
    constexpr RegIdx n = 1, vl = 2, scr = 3, pP = 16, one = 48;
    b.li(one, 1);
    b.li(pP, 0x90000);
    b.li(n, total);
    workloads::strip_mine(b, n, vl, scr, {pP}, [&] {
      b.vload(4, pP);
      b.vadd(4, 4, one, isa::kFlagSrc2Scalar);
      b.vstore(4, pP);
    });
    b.halt();
    isa::Program p = b.build();

    func::FuncMemory mem;
    func::Executor exec(mem);
    func::ArchState st;
    func::ExecContext ctx{0, 1, max_vl};
    std::vector<Addr> addrs;
    while (true) {
      func::ExecResult r = exec.execute(p.at(st.pc()), st, ctx, addrs);
      if (r.halted) break;
      st.set_pc(r.next_pc);
    }
    for (unsigned i = 0; i < total; ++i)
      EXPECT_EQ(mem.read_i64(0x90000 + 8 * i), 1) << "vl=" << max_vl
                                                  << " i=" << i;
    EXPECT_EQ(mem.read_i64(0x90000 + 8 * total), 0);  // no overrun
  }
}

INSTANTIATE_TEST_SUITE_P(MaxVls, StripMineProperty,
                         ::testing::Values(8u, 16u, 32u, 64u));

// --- barrier controller under randomized arrival orders -------------------

class BarrierProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BarrierProperty, RandomArrivalOrdersAlwaysRelease) {
  unsigned nthreads = GetParam();
  Xorshift64 rng(nthreads * 977);
  vltctl::BarrierController bc;
  bc.begin_phase(nthreads, 10);
  for (int gen = 0; gen < 20; ++gen) {
    std::vector<Cycle> arrivals;
    Cycle base = 1000 * (gen + 1);
    for (unsigned t = 0; t < nthreads; ++t)
      arrivals.push_back(base + rng.next_below(500));
    std::vector<std::uint64_t> gens;
    Cycle latest = 0;
    for (Cycle a : arrivals) {
      gens.push_back(bc.arrive(a));
      latest = std::max(latest, a);
    }
    for (std::size_t i = 1; i < gens.size(); ++i) EXPECT_EQ(gens[i], gens[0]);
    EXPECT_EQ(bc.release_time(gens[0]), latest + 10);
  }
  EXPECT_EQ(bc.generations_completed(), 20u);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, BarrierProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

// --- histogram ---------------------------------------------------------------

TEST(Histogram, MeanAndTopKeys) {
  stats::Histogram h;
  h.add(8, 10);
  h.add(16, 5);
  h.add(64, 1);
  EXPECT_EQ(h.total_weight(), 16u);
  EXPECT_NEAR(h.mean(), (8.0 * 10 + 16 * 5 + 64) / 16.0, 1e-12);
  auto top = h.top_keys(2);
  EXPECT_EQ(top, (std::vector<std::uint64_t>{8, 16}));
}

TEST(Histogram, TopKeysAreSortedAscending) {
  stats::Histogram h;
  h.add(64, 3);
  h.add(5, 3);
  h.add(12, 3);
  EXPECT_EQ(h.top_keys(3), (std::vector<std::uint64_t>{5, 12, 64}));
}

TEST(Histogram, ClearResets) {
  stats::Histogram h;
  h.add(4);
  h.clear();
  EXPECT_EQ(h.total_weight(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

// --- deterministic RNG ------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Xorshift64 a(42), c(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), c.next());
}

TEST(Rng, BoundsRespected) {
  Xorshift64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --- L2 timing monotonicity under random streams ----------------------------

TEST(L2Property, CompletionIsNeverBeforeRequestPlusHit) {
  mem::MainMemory memctl({90, 1});
  mem::L2Cache l2({}, memctl);
  Xorshift64 rng(99);
  Cycle now = 0;
  for (int i = 0; i < 5000; ++i) {
    now += rng.next_below(3);
    Addr a = rng.next_below(1 << 18) * 8;
    Cycle done = l2.access(a, rng.next_below(4) == 0, now);
    ASSERT_GE(done, now + 10);
    ASSERT_LE(done, now + 100 + 64);  // miss + worst-case queueing in test
  }
}

}  // namespace
}  // namespace vlt
