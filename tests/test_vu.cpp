// Unit tests for the vector unit: chime execution, issue bandwidth,
// chaining, lane partitioning, and utilization accounting.
#include <gtest/gtest.h>

#include "expect_sim_error.hpp"

#include "mem/l2_cache.hpp"
#include "mem/main_memory.hpp"
#include "vu/vector_unit.hpp"

namespace vlt::vu {
namespace {

using isa::Instruction;
using isa::Opcode;

class VuTest : public ::testing::Test {
 protected:
  VuTest() : main_mem_({90, 4}), l2_({}, main_mem_), vu_(VuParams{}, l2_) {}

  VecDispatch arith(Opcode op, RegIdx vd, RegIdx v1, RegIdx v2, unsigned vl,
                    unsigned vctx = 0) {
    VecDispatch d;
    d.inst = Instruction{op, vd, v1, v2, 0, 0};
    d.vl = vl;
    d.vctx = vctx;
    return d;
  }

  /// Ticks until the context quiesces; returns the quiesce cycle.
  Cycle drain(Cycle start = 0) {
    Cycle now = start;
    while (now < 1'000'000) {
      bool all = true;
      for (unsigned c = 0; c < vu_.num_contexts(); ++c)
        all &= vu_.ctx_quiesced(c, now);
      if (all) return now;
      vu_.tick(now);
      ++now;
    }
    ADD_FAILURE() << "vector unit did not quiesce";
    return now;
  }

  mem::MainMemory main_mem_;
  mem::L2Cache l2_;
  VectorUnit vu_;
};

TEST_F(VuTest, ChimeExecutionTime) {
  // One VL-64 add on 8 lanes occupies its FU for 8 cycles.
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 64), 0));
  Cycle done = drain();
  // start(0) + latency(2) + chime(8) - 1 = 9, quiesce observed at >= 10.
  EXPECT_GE(done, 9u);
  EXPECT_LE(done, 12u);
  EXPECT_EQ(vu_.element_ops(), 64u);
  EXPECT_EQ(vu_.instructions_issued(), 1u);
}

TEST_F(VuTest, IndependentOpsOverlapOnDifferentFus) {
  // An add (VALU0) and a mul (VALU1) of VL 64 run concurrently.
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 64), 0));
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVmul, 4, 5, 6, 64), 0));
  Cycle both = drain();
  EXPECT_LE(both, 16u);  // far less than 2 sequential chimes + latencies
}

TEST_F(VuTest, SameFuSerializes) {
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 64), 0));
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVsub, 4, 5, 6, 64), 0));
  Cycle done = drain();
  EXPECT_GE(done, 17u);  // two 8-cycle chimes back to back on VALU0
}

TEST_F(VuTest, ChainingStartsDependentEarly) {
  // vmul v3 <- ...; vadd v4 <- v3: the add may start latency(4) cycles
  // after the mul starts, not after it completes.
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVmul, 3, 1, 2, 64), 0));
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 4, 3, 3, 64), 0));
  Cycle done = drain();
  // Unchained would be ~ (4+8) + (2+8) = 22+; chained ~ 4 + 2 + 8 = 14ish.
  EXPECT_LE(done, 18u);
}

TEST_F(VuTest, ShortVectorsWastePartOfTheChime) {
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 4), 0));
  drain();
  const DatapathUtilization& u = vu_.utilization();
  EXPECT_EQ(u.busy, 4u);
  EXPECT_EQ(u.partly_idle, 4u);  // chime of 1 cycle x 8 lanes - 4 elems
}

TEST_F(VuTest, VlHistogramTracksIssuedLengths) {
  vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 16), 0);
  vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 16), 0);
  vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 8), 0);
  drain();
  EXPECT_EQ(vu_.vl_histogram().counts().at(16), 2u);
  EXPECT_EQ(vu_.vl_histogram().counts().at(8), 1u);
  EXPECT_NEAR(vu_.vl_histogram().mean(), (16 + 16 + 8) / 3.0, 1e-9);
}

TEST_F(VuTest, ViqBackpressure) {
  for (unsigned i = 0; i < 32; ++i)
    ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 64), 0));
  EXPECT_FALSE(vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 64), 0));
  drain();
  EXPECT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 64), 1000));
}

TEST_F(VuTest, ReductionSignalsScalarCompletion) {
  Cycle done_cell = kNeverReady;
  VecDispatch d = arith(Opcode::kVredsum, 9, 1, 0, 32);
  d.scalar_done = &done_cell;
  ASSERT_TRUE(vu_.try_dispatch(std::move(d), 0));
  drain();
  EXPECT_NE(done_cell, kNeverReady);
  EXPECT_GT(done_cell, 0u);
}

TEST_F(VuTest, PartitioningSplitsLanesAndMaxVl) {
  EXPECT_EQ(vu_.lanes_per_ctx(), 8u);
  EXPECT_EQ(vu_.max_vl_per_ctx(), 64u);
  vu_.configure_contexts(4, 0);
  EXPECT_EQ(vu_.num_contexts(), 4u);
  EXPECT_EQ(vu_.lanes_per_ctx(), 2u);
  EXPECT_EQ(vu_.max_vl_per_ctx(), 16u);
}

TEST_F(VuTest, TwoContextsExecuteConcurrently) {
  vu_.configure_contexts(2, 0);
  // Each context: VL-32 add on 4 lanes = 8-cycle chime.
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 32, 0), 0));
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 32, 1), 0));
  Cycle done = drain();
  EXPECT_LE(done, 14u);  // concurrent, not 2x serial
}

TEST_F(VuTest, UnitStrideLoadFasterThanLargeStride) {
  VecDispatch uload = arith(Opcode::kVload, 1, 16, 0, 64);
  for (unsigned i = 0; i < 64; ++i) uload.addrs.push_back(0x10000 + 8 * i);
  ASSERT_TRUE(vu_.try_dispatch(std::move(uload), 0));
  Cycle t_unit = drain();

  Cycle start = t_unit + 10;
  VecDispatch sload = arith(Opcode::kVloads, 1, 16, 17, 64);
  // Stride of 16 lines maps every element to the same bank.
  for (unsigned i = 0; i < 64; ++i)
    sload.addrs.push_back(0x200000 + static_cast<Addr>(i) * 16 * kLineBytes);
  ASSERT_TRUE(vu_.try_dispatch(std::move(sload), start));
  Cycle t_stride = drain(start);
  EXPECT_GT(t_stride - start, t_unit);  // bank conflicts hurt
}

TEST_F(VuTest, QuiescedAfterReconfigureRoundTrip) {
  vu_.configure_contexts(2, 0);
  vu_.configure_contexts(1, 0);
  EXPECT_TRUE(vu_.ctx_quiesced(0, 0));
}

TEST_F(VuTest, MaskRenameOrdersCompareAndMerge) {
  // vcmplt writes the mask; vmerge must wait for it.
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVmul, 1, 2, 3, 64), 0));
  VecDispatch cmp = arith(Opcode::kVcmplt, 0, 1, 2, 64);
  ASSERT_TRUE(vu_.try_dispatch(std::move(cmp), 0));
  VecDispatch merge = arith(Opcode::kVmerge, 4, 1, 2, 64);
  ASSERT_TRUE(vu_.try_dispatch(std::move(merge), 0));
  Cycle done = drain();
  // mul (chained into cmp) then cmp then merge on VALU0: at least two
  // serialized 8-cycle chimes beyond the mul's chain point.
  EXPECT_GE(done, 20u);
}

TEST_F(VuTest, MaskedOpWaitsForOldDestination) {
  // A masked add reads its old destination: it cannot issue before the
  // instruction producing that destination completes/chains.
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVmul, 5, 1, 2, 64), 0));
  VecDispatch m = arith(Opcode::kVadd, 5, 1, 2, 64);
  m.inst.flags = isa::kFlagMasked;
  ASSERT_TRUE(vu_.try_dispatch(std::move(m), 0));
  Cycle done = drain();
  EXPECT_GE(done, 13u);  // mul chain point (4) + add latency + chime
}

TEST_F(VuTest, NoChainingAblationSlowsDependentChains) {
  // Rebuild the unit with chaining disabled and compare a dependent pair.
  auto run_pair = [&](bool chain) {
    VuParams p;
    p.chaining = chain;
    VectorUnit vu(p, l2_);
    EXPECT_TRUE(vu.try_dispatch(arith(Opcode::kVmul, 3, 1, 2, 64), 0));
    EXPECT_TRUE(vu.try_dispatch(arith(Opcode::kVadd, 4, 3, 3, 64), 0));
    Cycle now = 0;
    while (!vu.ctx_quiesced(0, now) && now < 100000) vu.tick(now), ++now;
    return now;
  };
  Cycle chained = run_pair(true);
  Cycle unchained = run_pair(false);
  EXPECT_GT(unchained, chained);
}

TEST_F(VuTest, GatherFeelsBankConflictsMoreThanUnitStride) {
  // Gather with all offsets in one bank vs a unit-stride load.
  VecDispatch uni = arith(Opcode::kVload, 1, 16, 0, 64);
  for (unsigned i = 0; i < 64; ++i) uni.addrs.push_back(0x40000 + 8 * i);
  ASSERT_TRUE(vu_.try_dispatch(std::move(uni), 0));
  Cycle t_uni = drain();

  Cycle start = t_uni + 5;
  VecDispatch gat = arith(Opcode::kVgather, 1, 16, 2, 64);
  for (unsigned i = 0; i < 64; ++i)
    gat.addrs.push_back(0x400000 + static_cast<Addr>(i) * 16 * kLineBytes);
  ASSERT_TRUE(vu_.try_dispatch(std::move(gat), start));
  Cycle t_gat = drain(start) - start;
  EXPECT_GT(t_gat, t_uni);
}

TEST_F(VuTest, ScatterTracksOutstandingForQuiesce) {
  VecDispatch sc = arith(Opcode::kVscatter, 1, 16, 2, 32);
  for (unsigned i = 0; i < 32; ++i) sc.addrs.push_back(0x50000 + 64 * i);
  ASSERT_TRUE(vu_.try_dispatch(std::move(sc), 0));
  EXPECT_FALSE(vu_.ctx_quiesced(0, 1));
  Cycle done = drain();
  EXPECT_TRUE(vu_.ctx_quiesced(0, done));
}

TEST_F(VuTest, ZeroLengthVectorIsOneCycleChime) {
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 0), 0));
  Cycle done = drain();
  EXPECT_LE(done, 5u);
  EXPECT_EQ(vu_.element_ops(), 0u);
}

TEST_F(VuTest, FourContextsIssueIndependently) {
  vu_.configure_contexts(4, 0);
  for (unsigned c = 0; c < 4; ++c)
    ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 16, c), 0));
  Cycle done = drain();
  // Each context: VL-16 on 2 lanes = 8-cycle chime; all four concurrent.
  EXPECT_LE(done, 16u);
  EXPECT_EQ(vu_.instructions_issued(), 4u);
}

TEST_F(VuTest, ContextsDoNotShareRenameState) {
  vu_.configure_contexts(2, 0);
  // ctx 0 writes v3 (slow mul); ctx 1 reads its own v3 immediately.
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVmul, 3, 1, 2, 32, 0), 0));
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 4, 3, 3, 32, 1), 0));
  // ctx 1's add must not wait for ctx 0's mul: it should finish quickly.
  Cycle now = 0;
  while (!vu_.ctx_quiesced(1, now) && now < 1000) {
    vu_.tick(now);
    ++now;
  }
  EXPECT_LE(now, 16u);
  drain();
}

TEST_F(VuTest, UtilizationLaneCyclesAreConserved) {
  // busy + partly_idle for an instruction equals chime * lanes.
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 37), 0));
  drain();
  const DatapathUtilization& u = vu_.utilization();
  unsigned chime = (37 + 7) / 8;
  EXPECT_EQ(u.busy + u.partly_idle,
            static_cast<std::uint64_t>(chime) * 8);
}

TEST_F(VuTest, ReconfigureWhileBusyThrows) {
  ASSERT_TRUE(vu_.try_dispatch(arith(Opcode::kVadd, 1, 2, 3, 64), 0));
  EXPECT_SIM_ERROR(vu_.configure_contexts(2, 0), "while busy");
  drain();
}

TEST_F(VuTest, OddPartitionThrows) {
  EXPECT_SIM_ERROR(vu_.configure_contexts(3, 0), "divide evenly");
}

}  // namespace
}  // namespace vlt::vu
