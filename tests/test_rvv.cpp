// Unit tests for the multi-ISA frontend layer and the RVV frontend:
// vtype decode, VLMAX/LMUL rules, the vsetvli AVL semantics, unit-stride
// vle64/vse64, per-frontend opcode enforcement in the executor, and the
// isa field's ride through MachineConfig fingerprints, RunKeys, and
// RunResult serialization (schema vltsweep-v4, docs/ISA.md).
#include <gtest/gtest.h>

#include "campaign/run_key.hpp"
#include "func/arch_state.hpp"
#include "func/executor.hpp"
#include "func/memory.hpp"
#include "isa/isa.hpp"
#include "isa/program.hpp"
#include "isa/rvv/rvv.hpp"
#include "machine/machine_config.hpp"
#include "machine/simulator.hpp"

namespace vlt {
namespace {

using isa::Instruction;
using isa::Opcode;

// --- vtype decode ---

TEST(RvvVtype, DecodesE64M1) {
  auto t = isa::rvv::decode_vtype(isa::rvv::kVtypeE64M1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->sew, 64u);
  EXPECT_EQ(t->lmul_num, 1u);
  EXPECT_EQ(t->lmul_den, 1u);
  EXPECT_FALSE(t->ta);
  EXPECT_FALSE(t->ma);
  EXPECT_EQ(t->bits, 0x18u);
}

TEST(RvvVtype, DecodesFractionalLmulAndPolicyBits) {
  // e64mf2 with vta|vma: vlmul=7, vsew=3, vta=1, vma=1.
  auto t = isa::rvv::decode_vtype(0x7u | (3u << 3) | (1u << 6) | (1u << 7));
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->sew, 64u);
  EXPECT_EQ(t->lmul_num, 1u);
  EXPECT_EQ(t->lmul_den, 2u);
  EXPECT_TRUE(t->ta);
  EXPECT_TRUE(t->ma);
}

TEST(RvvVtype, ReservedEncodingsDecodeToNullopt) {
  EXPECT_FALSE(isa::rvv::decode_vtype(4u).has_value());       // vlmul == 4
  EXPECT_FALSE(isa::rvv::decode_vtype(4u << 3).has_value());  // vsew > 3
  EXPECT_FALSE(isa::rvv::decode_vtype(0x100u).has_value());   // high bits
  EXPECT_FALSE(isa::rvv::decode_vtype(isa::rvv::kVtypeVill).has_value());
}

// --- VLMAX under the one-element-per-container model ---

TEST(RvvVlmax, E64M1IsThePartitionMax) {
  EXPECT_EQ(isa::rvv::vlmax(64, isa::rvv::kVtypeE64M1), 64u);
  EXPECT_EQ(isa::rvv::vlmax(16, isa::rvv::kVtypeE64M1), 16u);
}

TEST(RvvVlmax, FractionalLmulScalesDown) {
  EXPECT_EQ(isa::rvv::vlmax(64, 0x7u | (3u << 3)), 32u);  // e64mf2
  EXPECT_EQ(isa::rvv::vlmax(64, 0x6u | (3u << 3)), 16u);  // e64mf4
}

TEST(RvvVlmax, UnsupportedConfigurationsAreVill) {
  EXPECT_EQ(isa::rvv::vlmax(64, 2u << 3), 0u);            // e32m1
  EXPECT_EQ(isa::rvv::vlmax(64, 0x1u | (3u << 3)), 0u);   // e64m2 grouping
  EXPECT_EQ(isa::rvv::vlmax(64, 4u), 0u);                 // reserved vlmul
}

// --- vsetvli semantics through the shared executor ---

struct RvvExecFixture {
  func::FuncMemory mem;
  func::Executor exec{mem};
  func::ArchState st;
  func::ExecContext ctx{0, 1, /*max_vl=*/16, IsaId::kRvv};
  std::vector<Addr> addrs;

  func::ExecResult vsetvli(RegIdx rd, RegIdx rs1, std::uint32_t vtypei) {
    Instruction inst{Opcode::kVsetvli, rd, rs1, 0,
                     static_cast<std::int32_t>(vtypei), 0};
    return exec.execute(inst, st, ctx, addrs);
  }
};

TEST(RvvVsetvli, RegisterAvlClampsToVlmax) {
  RvvExecFixture f;
  f.st.set_sreg(5, 100);
  f.vsetvli(3, 5, isa::rvv::kVtypeE64M1);
  EXPECT_EQ(f.st.vl(), 16u);
  EXPECT_EQ(f.st.sreg(3), 16u);
  EXPECT_EQ(f.st.vtype(), 0x18u);

  f.st.set_sreg(5, 7);
  f.vsetvli(3, 5, isa::rvv::kVtypeE64M1);
  EXPECT_EQ(f.st.vl(), 7u);
  EXPECT_EQ(f.st.sreg(3), 7u);
}

TEST(RvvVsetvli, X0SourceNonX0DestRequestsVlmax) {
  RvvExecFixture f;
  f.vsetvli(4, 0, isa::rvv::kVtypeE64M1);
  EXPECT_EQ(f.st.vl(), 16u);
  EXPECT_EQ(f.st.sreg(4), 16u);
}

TEST(RvvVsetvli, X0X0KeepsVlAndSkipsRdWrite) {
  RvvExecFixture f;
  f.st.set_sreg(5, 9);
  f.vsetvli(3, 5, isa::rvv::kVtypeE64M1);
  ASSERT_EQ(f.st.vl(), 9u);
  f.st.set_sreg(0, 0xDEAD);  // sentinel: rd == x0 must not be written
  f.vsetvli(0, 0, isa::rvv::kVtypeE64M1);
  EXPECT_EQ(f.st.vl(), 9u);
  EXPECT_EQ(f.st.sreg(0), 0xDEADu);
}

TEST(RvvVsetvli, UnsupportedVtypeSetsVill) {
  RvvExecFixture f;
  f.st.set_sreg(5, 8);
  f.vsetvli(3, 5, 2u << 3);  // e32m1: valid RVV, outside the subset
  EXPECT_EQ(f.st.vl(), 0u);
  EXPECT_EQ(f.st.sreg(3), 0u);
  EXPECT_EQ(f.st.vtype(), isa::rvv::kVtypeVill);
}

TEST(RvvVsetvli, AvlIsUnsigned) {
  RvvExecFixture f;
  f.st.set_sreg_i(5, -1);  // unsigned AVL = 2^64-1 -> clamps to VLMAX
  f.vsetvli(3, 5, isa::rvv::kVtypeE64M1);
  EXPECT_EQ(f.st.vl(), 16u);
}

// --- unit-stride vle64/vse64 ---

TEST(RvvMemory, Vle64Vse64Roundtrip) {
  RvvExecFixture f;
  const Addr base = 0x1000;
  for (unsigned i = 0; i < 8; ++i)
    f.mem.write_i64(base + 8 * i, 100 + i);

  f.st.set_sreg(10, base);
  f.st.set_vl(8);
  Instruction vle{Opcode::kVle, 2, 10, 0, 0, 0};
  func::ExecResult r = f.exec.execute(vle, f.st, f.ctx, f.addrs);
  EXPECT_EQ(r.elems, 8u);
  ASSERT_EQ(f.addrs.size(), 8u);
  EXPECT_EQ(f.addrs[0], base);
  EXPECT_EQ(f.addrs[7], base + 56);
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(f.st.velem(2, i), 100 + i);

  f.st.set_sreg(11, base + 0x200);
  Instruction vse{Opcode::kVse, 2, 11, 0, 0, 0};
  r = f.exec.execute(vse, f.st, f.ctx, f.addrs);
  EXPECT_EQ(r.elems, 8u);
  for (unsigned i = 0; i < 8; ++i)
    EXPECT_EQ(f.mem.read_i64(base + 0x200 + 8 * i), 100 + i);
}

// --- per-frontend opcode enforcement ---

TEST(IsaEnforcement, VltSetvlRejectedUnderRvv) {
  RvvExecFixture f;
  f.st.set_sreg(5, 4);
  Instruction setvl{Opcode::kSetvl, 3, 5, 0, 0, 0};
  EXPECT_THROW(f.exec.execute(setvl, f.st, f.ctx, f.addrs), SimError);
}

TEST(IsaEnforcement, RvvOpsRejectedUnderVlt) {
  RvvExecFixture f;
  f.ctx.isa = IsaId::kVlt;
  Instruction vsetvli{Opcode::kVsetvli, 3, 5, 0, 0x18, 0};
  EXPECT_THROW(f.exec.execute(vsetvli, f.st, f.ctx, f.addrs), SimError);
  f.st.set_vl(4);
  Instruction vle{Opcode::kVle, 2, 10, 0, 0, 0};
  EXPECT_THROW(f.exec.execute(vle, f.st, f.ctx, f.addrs), SimError);
}

TEST(IsaFrontends, MasksPartitionTheSetVlAndMemoryFamilies) {
  const isa::IsaFrontend& vlt = isa::frontend(IsaId::kVlt);
  const isa::IsaFrontend& rvv = isa::frontend(IsaId::kRvv);
  EXPECT_TRUE(vlt.has_opcode(Opcode::kSetvl));
  EXPECT_TRUE(vlt.has_opcode(Opcode::kVgather));
  EXPECT_FALSE(vlt.has_opcode(Opcode::kVsetvli));
  EXPECT_FALSE(vlt.has_opcode(Opcode::kVle));
  EXPECT_FALSE(vlt.has_opcode(Opcode::kVse));
  EXPECT_TRUE(rvv.has_opcode(Opcode::kVsetvli));
  EXPECT_TRUE(rvv.has_opcode(Opcode::kVle));
  EXPECT_FALSE(rvv.has_opcode(Opcode::kSetvl));
  EXPECT_FALSE(rvv.has_opcode(Opcode::kSetvlMax));
  EXPECT_FALSE(rvv.has_opcode(Opcode::kVloads));
  EXPECT_FALSE(rvv.has_opcode(Opcode::kVgather));
  // Shared micro-ops belong to both frontends.
  EXPECT_TRUE(vlt.has_opcode(Opcode::kVfma));
  EXPECT_TRUE(rvv.has_opcode(Opcode::kVfma));
}

TEST(IsaFrontends, NamesRoundTrip) {
  EXPECT_STREQ(isa::isa_name(IsaId::kVlt), "vlt");
  EXPECT_STREQ(isa::isa_name(IsaId::kRvv), "rvv");
  EXPECT_EQ(isa::isa_from_name("vlt"), IsaId::kVlt);
  EXPECT_EQ(isa::isa_from_name("rvv"), IsaId::kRvv);
  EXPECT_FALSE(isa::isa_from_name("sse").has_value());
  EXPECT_EQ(isa::isa_names(), (std::vector<std::string>{"vlt", "rvv"}));
}

TEST(IsaFrontends, ProgramCarriesItsIsaTag) {
  isa::ProgramBuilder b("p");
  b.set_isa(IsaId::kRvv);
  b.vsetvli(3, 5, isa::rvv::kVtypeE64M1);
  b.halt();
  isa::Program p = b.build();
  EXPECT_EQ(p.isa(), IsaId::kRvv);
  EXPECT_EQ(isa::ProgramBuilder("q").build().isa(), IsaId::kVlt);
}

// --- isa in fingerprints, run keys, and result serialization ---

TEST(IsaPlumbing, FingerprintSeparatesFrontends) {
  machine::MachineConfig a = machine::MachineConfig::by_name("base");
  machine::MachineConfig b = a;
  b.isa = IsaId::kRvv;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint().rfind("vltcfg2", 0), 0u);
}

TEST(IsaPlumbing, RunKeyAppendsOnlyNonDefaultIsa) {
  campaign::RunKey vlt{"mxm", "base", "base"};
  EXPECT_EQ(vlt.to_string(), "mxm/base/base");
  campaign::RunKey rvv{"mxm", "base", "base", "rvv"};
  EXPECT_EQ(rvv.to_string(), "mxm/base/base/rvv");
  EXPECT_FALSE(vlt == rvv);
  EXPECT_TRUE(rvv < vlt);  // "rvv" sorts before "vlt"
}

TEST(IsaPlumbing, RunResultOmitsDefaultIsaAndParsesV3Documents) {
  machine::RunResult r;
  r.workload = "mxm";
  r.config = "base";
  r.variant = "base";
  r.cycles = 42;
  r.verified = true;
  const std::string v3_bytes = r.to_json().dump(-1);
  EXPECT_EQ(v3_bytes.find("\"isa\""), std::string::npos);

  // A pre-v4 document (no isa member) parses to the default frontend and
  // re-serializes byte-identically.
  std::optional<Json> doc = Json::parse(v3_bytes);
  ASSERT_TRUE(doc.has_value());
  std::optional<machine::RunResult> parsed =
      machine::RunResult::from_json(*doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->isa, "vlt");
  EXPECT_EQ(parsed->to_json().dump(-1), v3_bytes);

  r.isa = "rvv";
  const std::string v4_bytes = r.to_json().dump(-1);
  EXPECT_NE(v4_bytes.find("\"isa\":\"rvv\""), std::string::npos);
  doc = Json::parse(v4_bytes);
  ASSERT_TRUE(doc.has_value());
  parsed = machine::RunResult::from_json(*doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->isa, "rvv");
}

}  // namespace
}  // namespace vlt
