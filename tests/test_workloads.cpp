// Functional verification of every workload on every machine/variant it
// supports: the simulated memory image must match the host-computed golden
// result, and the measured characteristics must sit near Table 4.
//
// Smaller-than-default workload instances are used where the default would
// make the suite slow; correctness is size-independent.
#include <gtest/gtest.h>

#include "expect_sim_error.hpp"

#include "machine/simulator.hpp"
#include "workloads/all_workloads.hpp"
#include "workloads/workload.hpp"

namespace vlt::workloads {
namespace {

using machine::MachineConfig;
using machine::RunResult;
using machine::Simulator;

RunResult run(const Workload& w, const MachineConfig& cfg, Variant v) {
  return Simulator(cfg).run(w, v);
}

RunResult run_base(const std::string& name) {
  WorkloadPtr w = make_workload(name);
  return run(*w, MachineConfig::base(), Variant::base());
}

/// Reduced-size instances keep the multi-variant sweeps fast; correctness
/// is size-independent.
WorkloadPtr make_small(const std::string& name) {
  if (name == "radix") return std::make_unique<RadixWorkload>(2048);
  if (name == "ocean") return std::make_unique<OceanWorkload>(32, 2);
  if (name == "barnes") return std::make_unique<BarnesWorkload>(96);
  return make_workload(name);
}

// --- every workload verifies under the base machine -----------------------

class BaseVerify : public ::testing::TestWithParam<std::string> {};

TEST_P(BaseVerify, GoldenMatch) {
  RunResult r = run_base(GetParam());
  EXPECT_TRUE(r.verified) << r.error;
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.scalar_insts, 0u);
}

TEST_P(BaseVerify, PhaseCyclesSumBelowTotal) {
  RunResult r = run_base(GetParam());
  Cycle sum = 0;
  for (const auto& p : r.phase_cycles) sum += p.cycles;
  EXPECT_LE(sum, r.cycles);  // total additionally counts switch overhead
  EXPECT_FALSE(r.phase_cycles.empty());
}

INSTANTIATE_TEST_SUITE_P(AllApps, BaseVerify,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) { return info.param; });

// --- vector-thread apps verify under every VLT configuration --------------

struct VltCase {
  std::string app;
  std::string config;
  unsigned threads;
};

class VltVerify : public ::testing::TestWithParam<VltCase> {};

TEST_P(VltVerify, GoldenMatch) {
  const VltCase& c = GetParam();
  WorkloadPtr w = make_workload(c.app);
  RunResult r = run(*w, MachineConfig::by_name(c.config),
                    Variant::vector_threads(c.threads));
  EXPECT_TRUE(r.verified) << r.error;
}

std::vector<VltCase> vlt_cases() {
  std::vector<VltCase> out;
  for (const std::string& app : vector_thread_apps()) {
    out.push_back({app, "V2-SMT", 2});
    out.push_back({app, "V2-CMP", 2});
    out.push_back({app, "V2-CMP-h", 2});
    out.push_back({app, "V4-SMT", 4});
    out.push_back({app, "V4-CMT", 4});
    out.push_back({app, "V4-CMP", 4});
    out.push_back({app, "V4-CMP-h", 4});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, VltVerify, ::testing::ValuesIn(vlt_cases()),
                         [](const auto& info) {
                           std::string n =
                               info.param.app + "_" + info.param.config;
                           for (char& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

// --- scalar-thread apps verify on lanes and on the CMT --------------------

class ScalarVerify : public ::testing::TestWithParam<std::string> {};

TEST_P(ScalarVerify, LaneThreadsGoldenMatch) {
  WorkloadPtr w = make_small(GetParam());
  RunResult r = run(*w, MachineConfig::v4_cmt(), Variant::lane_threads(8));
  EXPECT_TRUE(r.verified) << r.error;
}

TEST_P(ScalarVerify, SuThreadsGoldenMatch) {
  WorkloadPtr w = make_small(GetParam());
  RunResult r = run(*w, MachineConfig::cmt(), Variant::su_threads(4));
  EXPECT_TRUE(r.verified) << r.error;
}

TEST_P(ScalarVerify, FewerLaneThreadsAlsoWork) {
  WorkloadPtr w = make_small(GetParam());
  RunResult r = run(*w, MachineConfig::v4_cmt(), Variant::lane_threads(4));
  EXPECT_TRUE(r.verified) << r.error;
}

INSTANTIATE_TEST_SUITE_P(ScalarApps, ScalarVerify,
                         ::testing::ValuesIn(scalar_thread_apps()),
                         [](const auto& info) { return info.param; });

// --- Table 4 characteristics stay in their calibrated bands ---------------

struct Band {
  std::string app;
  double vect_lo, vect_hi;
  double avg_vl_lo, avg_vl_hi;
  double opp_lo, opp_hi;  // negative = no opportunity expected
};

class Table4Band : public ::testing::TestWithParam<Band> {};

TEST_P(Table4Band, Characteristics) {
  const Band& b = GetParam();
  RunResult r = run_base(b.app);
  ASSERT_TRUE(r.verified) << r.error;
  EXPECT_GE(r.pct_vectorization(), b.vect_lo);
  EXPECT_LE(r.pct_vectorization(), b.vect_hi);
  if (b.avg_vl_hi > 0) {
    EXPECT_GE(r.avg_vl(), b.avg_vl_lo);
    EXPECT_LE(r.avg_vl(), b.avg_vl_hi);
  }
  if (b.opp_hi > 0) {
    EXPECT_GE(r.pct_opportunity(), b.opp_lo);
    EXPECT_LE(r.pct_opportunity(), b.opp_hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Bands, Table4Band,
    ::testing::Values(Band{"mxm", 90, 100, 63, 64.5, -1, -1},
                      Band{"sage", 90, 100, 62, 64.5, -1, -1},
                      Band{"mpenc", 60, 85, 9, 15, 70, 92},
                      Band{"trfd", 65, 90, 20, 29, 95, 100},
                      Band{"multprec", 55, 80, 22, 29, 72, 92},
                      Band{"bt", 28, 55, 4.5, 9, 55, 80},
                      Band{"radix", 1, 10, 55, 64.5, 85, 100},
                      Band{"ocean", 0, 0.01, -1, -1, 95, 100},
                      Band{"barnes", 0, 0.01, -1, -1, 95, 100}),
    [](const auto& info) { return info.param.app; });

// --- common vector lengths match the paper's ------------------------------

TEST(CommonVls, MpencShows8And16And64) {
  RunResult r = run_base("mpenc");
  auto top = r.vl_hist.top_keys(3);
  EXPECT_EQ(top, (std::vector<std::uint64_t>{8, 16, 64}));
}

TEST(CommonVls, BtShows5And10And12) {
  RunResult r = run_base("bt");
  auto top = r.vl_hist.top_keys(3);
  EXPECT_EQ(top, (std::vector<std::uint64_t>{5, 10, 12}));
}

TEST(CommonVls, MultprecShows23And24And64) {
  RunResult r = run_base("multprec");
  auto top = r.vl_hist.top_keys(3);
  EXPECT_EQ(top, (std::vector<std::uint64_t>{23, 24, 64}));
}

// --- registry --------------------------------------------------------------

TEST(Registry, AllNineNamesResolve) {
  auto names = workload_names();
  ASSERT_EQ(names.size(), 9u);
  for (const std::string& n : names) {
    WorkloadPtr w = make_workload(n);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), n);
  }
}

TEST(Registry, UnknownNameThrowsConfigError) {
  EXPECT_SIM_ERROR((void)make_workload("no-such-app"), "unknown workload");
}

TEST(Registry, CategoriesPartitionTheApps) {
  auto all = workload_names();
  std::size_t counted = long_vector_apps().size() +
                        vector_thread_apps().size() +
                        scalar_thread_apps().size();
  EXPECT_EQ(counted, all.size());
}

TEST(Registry, SupportsMatchesCategory) {
  for (const std::string& n : vector_thread_apps()) {
    WorkloadPtr w = make_workload(n);
    EXPECT_TRUE(w->supports(Variant::Kind::kVectorThreads)) << n;
    EXPECT_FALSE(w->supports(Variant::Kind::kLaneThreads)) << n;
  }
  for (const std::string& n : scalar_thread_apps()) {
    WorkloadPtr w = make_workload(n);
    EXPECT_TRUE(w->supports(Variant::Kind::kLaneThreads)) << n;
    EXPECT_TRUE(w->supports(Variant::Kind::kSuThreads)) << n;
    EXPECT_FALSE(w->supports(Variant::Kind::kVectorThreads)) << n;
  }
  for (const std::string& n : long_vector_apps()) {
    WorkloadPtr w = make_workload(n);
    EXPECT_TRUE(w->supports(Variant::Kind::kBase)) << n;
    EXPECT_FALSE(w->supports(Variant::Kind::kVectorThreads)) << n;
  }
}

}  // namespace
}  // namespace vlt::workloads
