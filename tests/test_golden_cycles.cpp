// Golden cycle counts for every workload on the paper's key design
// points. These pin the simulator's timing behaviour exactly: any change
// to issue rules, chaining, the memory system, or the VLT runtime that
// moves a number must update this table deliberately (and re-generate
// tests/golden/sweep_small.json, which the CI sweep job diffs against).
#include <gtest/gtest.h>

#include "campaign/campaign.hpp"

namespace vlt {
namespace {

using campaign::Campaign;
using campaign::CampaignOptions;
using campaign::RunSet;
using campaign::SweepSpec;
using machine::MachineConfig;
using workloads::Variant;

struct Golden {
  const char* workload;
  const char* config;
  const char* variant;
  Cycle cycles;
};

// Collected from the seed implementation via
//   vltsweep --workloads all --configs base,V2-CMP,V4-CMP
//            --variants base,vlt2,vlt4 --format csv
constexpr Golden kGolden[] = {
    // All nine workloads, single-threaded on the 8-lane base machine.
    {"mxm", "base", "base", 18988},
    {"sage", "base", "base", 6976},
    {"mpenc", "base", "base", 59235},
    {"trfd", "base", "base", 105699},
    {"multprec", "base", "base", 20014},
    {"bt", "base", "base", 53427},
    {"radix", "base", "base", 454282},
    {"ocean", "base", "base", 364382},
    {"barnes", "base", "base", 140946},
    // Two vector threads (Figure 3 left bars). V2-CMP and V4-CMP give
    // identical timing for 2 threads: the extra SUs of V4-CMP sit idle.
    {"mpenc", "V2-CMP", "vlt-2vt", 37736},
    {"trfd", "V2-CMP", "vlt-2vt", 64545},
    {"multprec", "V2-CMP", "vlt-2vt", 15739},
    {"bt", "V2-CMP", "vlt-2vt", 36626},
    {"mpenc", "V4-CMP", "vlt-2vt", 37736},
    {"trfd", "V4-CMP", "vlt-2vt", 64545},
    {"multprec", "V4-CMP", "vlt-2vt", 15739},
    {"bt", "V4-CMP", "vlt-2vt", 36626},
    // Four vector threads (Figure 3 right bars).
    {"mpenc", "V4-CMP", "vlt-4vt", 29970},
    {"trfd", "V4-CMP", "vlt-4vt", 50559},
    {"multprec", "V4-CMP", "vlt-4vt", 14256},
    {"bt", "V4-CMP", "vlt-4vt", 27799},
};

// The RVV ports lower to micro-ops with identical OpInfo timing traits
// (vsetvli vs setvl, vle64/vse64 vs vload/vstore), so each RVV cell must
// reproduce its VLT sibling's cycle count exactly — the VLT speedups are
// a property of the machine, not of the frontend (docs/ISA.md).
constexpr Golden kGoldenRvv[] = {
    {"mxm", "base", "base", 18988},
    {"radix", "base", "base", 454282},
    {"trfd", "base", "base", 105699},
    {"trfd", "V2-CMP", "vlt-2vt", 64545},
    {"trfd", "V4-CMP", "vlt-4vt", 50559},
};

TEST(GoldenCycles, EveryPinnedCellMatches) {
  SweepSpec spec;
  for (const Golden& g : kGolden)
    spec.add(MachineConfig::by_name(g.config), g.workload,
             *Variant::parse(g.variant));

  CampaignOptions opts;
  opts.threads = 0;  // all hardware threads; determinism is independent
  RunSet results = Campaign(opts).run(spec);
  ASSERT_TRUE(results.all_verified());

  for (const Golden& g : kGolden)
    EXPECT_EQ(results.cycles(g.workload, g.config, g.variant), g.cycles)
        << g.workload << "/" << g.config << "/" << g.variant;
}

TEST(GoldenCycles, RvvCellsMatchTheirVltSiblings) {
  SweepSpec spec;
  for (const Golden& g : kGoldenRvv) {
    MachineConfig cfg = MachineConfig::by_name(g.config);
    cfg.isa = IsaId::kRvv;
    spec.add(std::move(cfg), g.workload, *Variant::parse(g.variant));
  }
  RunSet results = Campaign().run(spec);
  ASSERT_TRUE(results.all_verified());

  for (const Golden& g : kGoldenRvv)
    EXPECT_EQ(results
                  .at(campaign::RunKey{g.workload, g.config, g.variant,
                                       "rvv"})
                  .cycles,
              g.cycles)
        << g.workload << "/" << g.config << "/" << g.variant << "/rvv";
}

// VLT must never slow an application down relative to its own base run
// (the paper's speedups are all >= 1); guard the relation, not just the
// absolute values, so the table above stays self-consistent.
TEST(GoldenCycles, VltSpeedupsAreAboveOne) {
  SweepSpec spec;
  for (const Golden& g : kGolden)
    spec.add(MachineConfig::by_name(g.config), g.workload,
             *Variant::parse(g.variant));
  RunSet results = Campaign().run(spec);

  for (const std::string& app : workloads::vector_thread_apps()) {
    Cycle base = results.cycles(app, "base", "base");
    Cycle vlt2 = results.cycles(app, "V2-CMP", "vlt-2vt");
    Cycle vlt4 = results.cycles(app, "V4-CMP", "vlt-4vt");
    EXPECT_LT(vlt2, base) << app;
    EXPECT_LT(vlt4, vlt2) << app;
  }
}

}  // namespace
}  // namespace vlt
