// Unit tests for the functional layer: sparse memory, architectural state,
// and instruction semantics (including vector length, masking, and the
// VLT max-VL clamp).
#include <gtest/gtest.h>

#include <cmath>

#include "func/executor.hpp"
#include "func/memory.hpp"
#include "isa/program.hpp"

namespace vlt::func {
namespace {

using isa::Instruction;
using isa::Opcode;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecResult run(const Instruction& inst) {
    return exec_.execute(inst, st_, ctx_, addrs_);
  }

  FuncMemory mem_;
  Executor exec_{mem_};
  ArchState st_;
  ExecContext ctx_{0, 1, kMaxVectorLength};
  std::vector<Addr> addrs_;
};

TEST(FuncMemory, ZeroInitialized) {
  FuncMemory mem;
  EXPECT_EQ(mem.read64(0x1000), 0u);
  EXPECT_EQ(mem.allocated_pages(), 0u);
}

TEST(FuncMemory, ReadBackWrites) {
  FuncMemory mem;
  mem.write64(0x2000, 0xDEADBEEFu);
  EXPECT_EQ(mem.read64(0x2000), 0xDEADBEEFu);
  mem.write_f64(0x2008, 3.25);
  EXPECT_EQ(mem.read_f64(0x2008), 3.25);
  mem.write_i64(0x2010, -17);
  EXPECT_EQ(mem.read_i64(0x2010), -17);
}

TEST(FuncMemory, SparsePagesAreIndependent) {
  FuncMemory mem;
  mem.write64(0, 1);
  mem.write64(1ull << 40, 2);
  EXPECT_EQ(mem.read64(0), 1u);
  EXPECT_EQ(mem.read64(1ull << 40), 2u);
  EXPECT_EQ(mem.allocated_pages(), 2u);
}

TEST(FuncMemory, BlockHelpers) {
  FuncMemory mem;
  std::vector<double> vals{1.0, 2.5, -3.0};
  mem.write_block_f64(0x3000, vals);
  EXPECT_EQ(mem.read_block_f64(0x3000, 3), vals);
}

TEST(AddressAllocator, LineAlignment) {
  AddressAllocator alloc(0x1000);
  Addr a = alloc.alloc_words(3);
  Addr b = alloc.alloc_words(1);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % kLineBytes, 0u);
  EXPECT_GE(b, a + 3 * 8);
}

TEST_F(ExecutorTest, ScalarArithmetic) {
  st_.set_sreg_i(1, 20);
  st_.set_sreg_i(2, -6);
  run({Opcode::kAdd, 3, 1, 2, 0, 0});
  EXPECT_EQ(st_.sreg_i(3), 14);
  run({Opcode::kMul, 4, 1, 2, 0, 0});
  EXPECT_EQ(st_.sreg_i(4), -120);
  run({Opcode::kDiv, 5, 1, 2, 0, 0});
  EXPECT_EQ(st_.sreg_i(5), -3);
  run({Opcode::kRem, 6, 1, 2, 0, 0});
  EXPECT_EQ(st_.sreg_i(6), 2);
}

TEST_F(ExecutorTest, DivisionByZeroYieldsZero) {
  st_.set_sreg_i(1, 5);
  st_.set_sreg_i(2, 0);
  run({Opcode::kDiv, 3, 1, 2, 0, 0});
  EXPECT_EQ(st_.sreg_i(3), 0);
}

TEST_F(ExecutorTest, FloatingPoint) {
  st_.set_sreg_f(1, 1.5);
  st_.set_sreg_f(2, 2.0);
  run({Opcode::kFmul, 3, 1, 2, 0, 0});
  EXPECT_EQ(st_.sreg_f(3), 3.0);
  run({Opcode::kFsqrt, 4, 3, 0, 0, 0});
  EXPECT_DOUBLE_EQ(st_.sreg_f(4), std::sqrt(3.0));
  run({Opcode::kFcvtIF, 5, 1, 0, 0, 0});  // int bits of s1 -> double
}

TEST_F(ExecutorTest, LoadStore) {
  st_.set_sreg_i(1, 0x4000);
  st_.set_sreg_i(2, 77);
  run({Opcode::kStore, 0, 1, 2, 8, 0});
  EXPECT_EQ(mem_.read_i64(0x4008), 77);
  EXPECT_EQ(addrs_.size(), 1u);
  EXPECT_EQ(addrs_[0], 0x4008u);
  run({Opcode::kLoad, 3, 1, 0, 8, 0});
  EXPECT_EQ(st_.sreg_i(3), 77);
}

TEST_F(ExecutorTest, BranchSemantics) {
  st_.set_sreg_i(1, 5);
  st_.set_sreg_i(2, 5);
  st_.set_pc(10);
  ExecResult r = run({Opcode::kBeq, 0, 1, 2, 4, 0});
  EXPECT_TRUE(r.branch_taken);
  EXPECT_EQ(r.next_pc, 15u);  // pc + 1 + imm
  r = run({Opcode::kBne, 0, 1, 2, 4, 0});
  EXPECT_FALSE(r.branch_taken);
  EXPECT_EQ(r.next_pc, 11u);
}

TEST_F(ExecutorTest, JalAndJr) {
  st_.set_pc(20);
  ExecResult r = run({Opcode::kJal, 7, 0, 0, 5, 0});
  EXPECT_EQ(st_.sreg(7), 21u);
  EXPECT_EQ(r.next_pc, 26u);
  st_.set_sreg(8, 3);
  st_.set_pc(30);
  r = run({Opcode::kJr, 0, 8, 0, 0, 0});
  EXPECT_EQ(r.next_pc, 3u);
}

TEST_F(ExecutorTest, SetvlClampsToContextMax) {
  ctx_.max_vl = 16;  // e.g. 4 VLT threads on 8 lanes
  st_.set_sreg_i(1, 40);
  run({Opcode::kSetvl, 2, 1, 0, 0, 0});
  EXPECT_EQ(st_.vl(), 16u);
  EXPECT_EQ(st_.sreg_i(2), 16);
  st_.set_sreg_i(1, 7);
  run({Opcode::kSetvl, 2, 1, 0, 0, 0});
  EXPECT_EQ(st_.vl(), 7u);
  run({Opcode::kSetvlMax, 2, 0, 0, 0, 0});
  EXPECT_EQ(st_.vl(), 16u);
}

TEST_F(ExecutorTest, TidAndNthreads) {
  ctx_.tid = 3;
  ctx_.nthreads = 8;
  run({Opcode::kTid, 1, 0, 0, 0, 0});
  run({Opcode::kNthreads, 2, 0, 0, 0, 0});
  EXPECT_EQ(st_.sreg(1), 3u);
  EXPECT_EQ(st_.sreg(2), 8u);
}

TEST_F(ExecutorTest, VectorAddAndScalarForm) {
  st_.set_vl(4);
  for (unsigned i = 0; i < 4; ++i) {
    st_.set_velem_i(1, i, i);
    st_.set_velem_i(2, i, 10 * i);
  }
  run({Opcode::kVadd, 3, 1, 2, 0, 0});
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(st_.velem_i(3, i), 11 * (int)i);

  st_.set_sreg_i(7, 100);
  run({Opcode::kVadd, 4, 1, 7, 0, isa::kFlagSrc2Scalar});
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(st_.velem_i(4, i), 100 + (int)i);
}

TEST_F(ExecutorTest, VectorLengthZeroIsNoop) {
  st_.set_vl(0);
  st_.set_velem_i(3, 0, 42);
  ExecResult r = run({Opcode::kVadd, 3, 1, 2, 0, 0});
  EXPECT_EQ(st_.velem_i(3, 0), 42);
  EXPECT_EQ(r.elems, 0u);
}

TEST_F(ExecutorTest, VfmaAccumulates) {
  st_.set_vl(2);
  st_.set_velem_f(3, 0, 1.0);
  st_.set_velem_f(3, 1, 2.0);
  st_.set_velem_f(1, 0, 3.0);
  st_.set_velem_f(1, 1, 4.0);
  st_.set_sreg_f(7, 0.5);
  run({Opcode::kVfma, 3, 1, 7, 0, isa::kFlagSrc2Scalar});
  EXPECT_EQ(st_.velem_f(3, 0), 2.5);
  EXPECT_EQ(st_.velem_f(3, 1), 4.0);
}

TEST_F(ExecutorTest, MaskedExecution) {
  st_.set_vl(4);
  for (unsigned i = 0; i < 4; ++i) {
    st_.set_velem_i(1, i, i);
    st_.set_velem_i(2, i, 1);
    st_.set_velem_i(3, i, -1);
  }
  st_.set_sreg_i(9, 2);
  run({Opcode::kVcmplt, 0, 1, 9, 0, isa::kFlagSrc2Scalar});  // mask = i < 2
  EXPECT_TRUE(st_.mask(0));
  EXPECT_TRUE(st_.mask(1));
  EXPECT_FALSE(st_.mask(2));
  run({Opcode::kVadd, 3, 1, 2, 0, isa::kFlagMasked});
  EXPECT_EQ(st_.velem_i(3, 0), 1);
  EXPECT_EQ(st_.velem_i(3, 1), 2);
  EXPECT_EQ(st_.velem_i(3, 2), -1);  // untouched
}

TEST_F(ExecutorTest, VmergeSelectsByMask) {
  st_.set_vl(2);
  st_.set_mask(0, true);
  st_.set_mask(1, false);
  st_.set_velem_i(1, 0, 10);
  st_.set_velem_i(1, 1, 11);
  st_.set_velem_i(2, 0, 20);
  st_.set_velem_i(2, 1, 21);
  run({Opcode::kVmerge, 3, 1, 2, 0, 0});
  EXPECT_EQ(st_.velem_i(3, 0), 10);
  EXPECT_EQ(st_.velem_i(3, 1), 21);
}

TEST_F(ExecutorTest, Reductions) {
  st_.set_vl(5);
  for (unsigned i = 0; i < 5; ++i) st_.set_velem_i(1, i, i + 1);
  run({Opcode::kVredsum, 8, 1, 0, 0, 0});
  EXPECT_EQ(st_.sreg_i(8), 15);
  run({Opcode::kVredmax, 8, 1, 0, 0, 0});
  EXPECT_EQ(st_.sreg_i(8), 5);
  run({Opcode::kVredmin, 8, 1, 0, 0, 0});
  EXPECT_EQ(st_.sreg_i(8), 1);
  for (unsigned i = 0; i < 5; ++i) st_.set_velem_f(2, i, 0.5);
  run({Opcode::kVfredsum, 9, 2, 0, 0, 0});
  EXPECT_EQ(st_.sreg_f(9), 2.5);
}

TEST_F(ExecutorTest, VabsdiffForSad) {
  st_.set_vl(3);
  st_.set_velem_i(1, 0, 10);
  st_.set_velem_i(1, 1, 2);
  st_.set_velem_i(1, 2, 5);
  st_.set_velem_i(2, 0, 7);
  st_.set_velem_i(2, 1, 9);
  st_.set_velem_i(2, 2, 5);
  run({Opcode::kVabsdiff, 3, 1, 2, 0, 0});
  EXPECT_EQ(st_.velem_i(3, 0), 3);
  EXPECT_EQ(st_.velem_i(3, 1), 7);
  EXPECT_EQ(st_.velem_i(3, 2), 0);
}

TEST_F(ExecutorTest, UnitStrideVectorMemory) {
  st_.set_vl(4);
  for (unsigned i = 0; i < 4; ++i) mem_.write_i64(0x5000 + 8 * i, 100 + i);
  st_.set_sreg_i(1, 0x5000);
  run({Opcode::kVload, 2, 1, 0, 0, 0});
  EXPECT_EQ(addrs_.size(), 4u);
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(st_.velem_i(2, i), 100 + (int)i);

  st_.set_sreg_i(3, 0x6000);
  run({Opcode::kVstore, 2, 3, 0, 0, 0});
  for (unsigned i = 0; i < 4; ++i)
    EXPECT_EQ(mem_.read_i64(0x6000 + 8 * i), 100 + (int)i);
}

TEST_F(ExecutorTest, StridedVectorMemory) {
  st_.set_vl(3);
  for (unsigned i = 0; i < 3; ++i) mem_.write_i64(0x7000 + 24 * i, i);
  st_.set_sreg_i(1, 0x7000);
  st_.set_sreg_i(2, 24);
  run({Opcode::kVloads, 3, 1, 2, 0, 0});
  for (unsigned i = 0; i < 3; ++i) EXPECT_EQ(st_.velem_i(3, i), (int)i);
  EXPECT_EQ(addrs_[1], 0x7018u);
}

TEST_F(ExecutorTest, GatherScatter) {
  st_.set_vl(3);
  st_.set_sreg_i(1, 0x8000);
  st_.set_velem_i(2, 0, 16);
  st_.set_velem_i(2, 1, 0);
  st_.set_velem_i(2, 2, 8);
  mem_.write_i64(0x8010, 1);
  mem_.write_i64(0x8000, 2);
  mem_.write_i64(0x8008, 3);
  run({Opcode::kVgather, 3, 1, 2, 0, 0});
  EXPECT_EQ(st_.velem_i(3, 0), 1);
  EXPECT_EQ(st_.velem_i(3, 1), 2);
  EXPECT_EQ(st_.velem_i(3, 2), 3);

  run({Opcode::kVscatter, 3, 1, 2, 0, 0});  // writes values back
  EXPECT_EQ(mem_.read_i64(0x8010), 1);
}

TEST_F(ExecutorTest, ViotaAndVbcast) {
  st_.set_vl(4);
  run({Opcode::kViota, 1, 0, 0, 0, 0});
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(st_.velem(1, i), i);
  st_.set_sreg_i(5, 9);
  run({Opcode::kVbcast, 2, 5, 0, 0, 0});
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(st_.velem_i(2, i), 9);
}

TEST_F(ExecutorTest, HaltAndBarrierFlags) {
  EXPECT_TRUE(run({Opcode::kHalt, 0, 0, 0, 0, 0}).halted);
  EXPECT_TRUE(run({Opcode::kBarrier, 0, 0, 0, 0, 0}).is_barrier);
  EXPECT_FALSE(run({Opcode::kNop, 0, 0, 0, 0, 0}).halted);
}

// --- table-driven coverage: every scalar ALU opcode's contract -------------

struct AluCase {
  const char* name;
  isa::Opcode op;
  std::int64_t a, b;
  std::int64_t expect;
  bool imm_form;   // operand b passed through the immediate field
};

class ScalarAluContract : public ::testing::TestWithParam<AluCase> {};

TEST_P(ScalarAluContract, Semantics) {
  const AluCase& c = GetParam();
  FuncMemory mem;
  Executor exec(mem);
  ArchState st;
  ExecContext ctx{0, 1, kMaxVectorLength};
  std::vector<Addr> addrs;
  st.set_sreg_i(1, c.a);
  Instruction inst;
  if (c.imm_form) {
    inst = Instruction{c.op, 3, 1, 0, static_cast<std::int32_t>(c.b), 0};
  } else {
    st.set_sreg_i(2, c.b);
    inst = Instruction{c.op, 3, 1, 2, 0, 0};
  }
  exec.execute(inst, st, ctx, addrs);
  EXPECT_EQ(st.sreg_i(3), c.expect) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, ScalarAluContract,
    ::testing::Values(
        AluCase{"add", Opcode::kAdd, 7, 5, 12, false},
        AluCase{"add_neg", Opcode::kAdd, -7, 5, -2, false},
        AluCase{"addi", Opcode::kAddi, 7, -3, 4, true},
        AluCase{"sub", Opcode::kSub, 7, 5, 2, false},
        AluCase{"mul", Opcode::kMul, -6, 7, -42, false},
        AluCase{"div", Opcode::kDiv, 43, 7, 6, false},
        AluCase{"div_by_zero", Opcode::kDiv, 43, 0, 0, false},
        AluCase{"rem", Opcode::kRem, 43, 7, 1, false},
        AluCase{"rem_by_zero", Opcode::kRem, 43, 0, 0, false},
        AluCase{"and", Opcode::kAnd, 0b1100, 0b1010, 0b1000, false},
        AluCase{"andi", Opcode::kAndi, 0xFF, 0x0F, 0x0F, true},
        AluCase{"or", Opcode::kOr, 0b1100, 0b1010, 0b1110, false},
        AluCase{"ori", Opcode::kOri, 0b1100, 0b0001, 0b1101, true},
        AluCase{"xor", Opcode::kXor, 0b1100, 0b1010, 0b0110, false},
        AluCase{"xori", Opcode::kXori, 0b1100, 0b1111, 0b0011, true},
        AluCase{"sll", Opcode::kSll, 3, 4, 48, false},
        AluCase{"slli", Opcode::kSlli, 3, 4, 48, true},
        AluCase{"srl", Opcode::kSrl, 48, 4, 3, false},
        AluCase{"srli", Opcode::kSrli, 48, 4, 3, true},
        AluCase{"sra_neg", Opcode::kSra, -16, 2, -4, false},
        AluCase{"slt_true", Opcode::kSlt, -1, 0, 1, false},
        AluCase{"slt_false", Opcode::kSlt, 1, 0, 0, false},
        AluCase{"slti", Opcode::kSlti, 3, 9, 1, true},
        AluCase{"seq_true", Opcode::kSeq, 5, 5, 1, false},
        AluCase{"seq_false", Opcode::kSeq, 5, 6, 0, false}),
    [](const auto& info) { return info.param.name; });

// --- table-driven coverage: scalar FP opcode contracts ---------------------

struct FpuCase {
  const char* name;
  isa::Opcode op;
  double a, b;
  double expect;
  bool unary;
};

class ScalarFpuContract : public ::testing::TestWithParam<FpuCase> {};

TEST_P(ScalarFpuContract, Semantics) {
  const FpuCase& c = GetParam();
  FuncMemory mem;
  Executor exec(mem);
  ArchState st;
  ExecContext ctx{0, 1, kMaxVectorLength};
  std::vector<Addr> addrs;
  st.set_sreg_f(1, c.a);
  if (!c.unary) st.set_sreg_f(2, c.b);
  exec.execute(Instruction{c.op, 3, 1, 2, 0, 0}, st, ctx, addrs);
  EXPECT_EQ(st.sreg_f(3), c.expect) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, ScalarFpuContract,
    ::testing::Values(
        FpuCase{"fadd", Opcode::kFadd, 1.5, 2.25, 3.75, false},
        FpuCase{"fsub", Opcode::kFsub, 1.5, 2.25, -0.75, false},
        FpuCase{"fmul", Opcode::kFmul, 1.5, 2.0, 3.0, false},
        FpuCase{"fdiv", Opcode::kFdiv, 3.0, 2.0, 1.5, false},
        FpuCase{"fsqrt", Opcode::kFsqrt, 2.25, 0, 1.5, true},
        FpuCase{"fabs", Opcode::kFabs, -4.5, 0, 4.5, true},
        FpuCase{"fneg", Opcode::kFneg, 4.5, 0, -4.5, true},
        FpuCase{"fmin", Opcode::kFmin, 4.5, -1.0, -1.0, false},
        FpuCase{"fmax", Opcode::kFmax, 4.5, -1.0, 4.5, false}),
    [](const auto& info) { return info.param.name; });

// --- table-driven coverage: elementwise vector opcode contracts ------------

struct VecCase {
  const char* name;
  isa::Opcode op;
  std::int64_t a, b;        // element values replicated across VL
  std::int64_t expect;
  bool fp;                  // interpret as doubles (bit patterns built here)
};

class VectorElemContract : public ::testing::TestWithParam<VecCase> {};

TEST_P(VectorElemContract, SemanticsAtSeveralVls) {
  const VecCase& c = GetParam();
  for (unsigned vl : {1u, 5u, 8u, 64u}) {
    FuncMemory mem;
    Executor exec(mem);
    ArchState st;
    ExecContext ctx{0, 1, kMaxVectorLength};
    std::vector<Addr> addrs;
    st.set_vl(vl);
    for (unsigned i = 0; i < vl; ++i) {
      if (c.fp) {
        st.set_velem_f(1, i, static_cast<double>(c.a));
        st.set_velem_f(2, i, static_cast<double>(c.b));
      } else {
        st.set_velem_i(1, i, c.a);
        st.set_velem_i(2, i, c.b);
      }
    }
    exec.execute(Instruction{c.op, 3, 1, 2, 0, 0}, st, ctx, addrs);
    for (unsigned i = 0; i < vl; ++i) {
      if (c.fp)
        EXPECT_EQ(st.velem_f(3, i), static_cast<double>(c.expect))
            << c.name << " vl=" << vl << " i=" << i;
      else
        EXPECT_EQ(st.velem_i(3, i), c.expect)
            << c.name << " vl=" << vl << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, VectorElemContract,
    ::testing::Values(
        VecCase{"vadd", Opcode::kVadd, 9, -4, 5, false},
        VecCase{"vsub", Opcode::kVsub, 9, -4, 13, false},
        VecCase{"vmul", Opcode::kVmul, 9, -4, -36, false},
        VecCase{"vand", Opcode::kVand, 0b0110, 0b0011, 0b0010, false},
        VecCase{"vor", Opcode::kVor, 0b0110, 0b0011, 0b0111, false},
        VecCase{"vxor", Opcode::kVxor, 0b0110, 0b0011, 0b0101, false},
        VecCase{"vmin", Opcode::kVmin, 9, -4, -4, false},
        VecCase{"vmax", Opcode::kVmax, 9, -4, 9, false},
        VecCase{"vabsdiff", Opcode::kVabsdiff, 3, 11, 8, false},
        VecCase{"vfadd", Opcode::kVfadd, 9, -4, 5, true},
        VecCase{"vfsub", Opcode::kVfsub, 9, -4, 13, true},
        VecCase{"vfmul", Opcode::kVfmul, 9, -4, -36, true},
        VecCase{"vfmin", Opcode::kVfmin, 9, -4, -4, true},
        VecCase{"vfmax", Opcode::kVfmax, 9, -4, 9, true},
        VecCase{"vmov", Opcode::kVmov, 7, 0, 7, false}),
    [](const auto& info) { return info.param.name; });

TEST_F(ExecutorTest, VfdivAndVfsqrtAndVfabsAndVfneg) {
  st_.set_vl(3);
  for (unsigned i = 0; i < 3; ++i) {
    st_.set_velem_f(1, i, -2.25);
    st_.set_velem_f(2, i, 1.5);
  }
  run({Opcode::kVfdiv, 3, 1, 2, 0, 0});
  for (unsigned i = 0; i < 3; ++i) EXPECT_EQ(st_.velem_f(3, i), -1.5);
  run({Opcode::kVfabs, 4, 1, 0, 0, 0});
  for (unsigned i = 0; i < 3; ++i) EXPECT_EQ(st_.velem_f(4, i), 2.25);
  run({Opcode::kVfneg, 5, 1, 0, 0, 0});
  for (unsigned i = 0; i < 3; ++i) EXPECT_EQ(st_.velem_f(5, i), 2.25);
  run({Opcode::kVfsqrt, 6, 4, 0, 0, 0});
  for (unsigned i = 0; i < 3; ++i) EXPECT_EQ(st_.velem_f(6, i), 1.5);
}

TEST_F(ExecutorTest, VectorShiftsTakeScalarAmounts) {
  st_.set_vl(2);
  st_.set_velem_i(1, 0, 3);
  st_.set_velem_i(1, 1, 5);
  st_.set_sreg_i(7, 2);
  run({Opcode::kVsll, 2, 1, 7, 0, isa::kFlagSrc2Scalar});
  EXPECT_EQ(st_.velem_i(2, 0), 12);
  EXPECT_EQ(st_.velem_i(2, 1), 20);
  run({Opcode::kVsrl, 3, 2, 7, 0, isa::kFlagSrc2Scalar});
  EXPECT_EQ(st_.velem_i(3, 0), 3);
  EXPECT_EQ(st_.velem_i(3, 1), 5);
}

TEST_F(ExecutorTest, VfmaVectorVectorForm) {
  st_.set_vl(2);
  st_.set_velem_f(3, 0, 1.0);
  st_.set_velem_f(3, 1, 2.0);
  st_.set_velem_f(1, 0, 3.0);
  st_.set_velem_f(1, 1, 4.0);
  st_.set_velem_f(2, 0, 0.5);
  st_.set_velem_f(2, 1, 0.25);
  run({Opcode::kVfma, 3, 1, 2, 0, 0});
  EXPECT_EQ(st_.velem_f(3, 0), 2.5);
  EXPECT_EQ(st_.velem_f(3, 1), 3.0);
}

TEST_F(ExecutorTest, MaskedStoreSkipsMaskedOffElements) {
  st_.set_vl(4);
  st_.set_sreg_i(1, 0x6100);
  for (unsigned i = 0; i < 4; ++i) {
    st_.set_velem_i(2, i, 100 + i);
    st_.set_mask(i, i % 2 == 0);
    mem_.write_i64(0x6100 + 8 * i, -1);
  }
  run({Opcode::kVstore, 2, 1, 0, 0, isa::kFlagMasked});
  EXPECT_EQ(addrs_.size(), 2u);  // only unmasked elements touch memory
  EXPECT_EQ(mem_.read_i64(0x6100), 100);
  EXPECT_EQ(mem_.read_i64(0x6108), -1);
  EXPECT_EQ(mem_.read_i64(0x6110), 102);
  EXPECT_EQ(mem_.read_i64(0x6118), -1);
}

TEST_F(ExecutorTest, VcmpeqAndFcmplt) {
  st_.set_vl(3);
  st_.set_velem_i(1, 0, 5);
  st_.set_velem_i(1, 1, 6);
  st_.set_velem_i(1, 2, 5);
  st_.set_sreg_i(7, 5);
  run({Opcode::kVcmpeq, 0, 1, 7, 0, isa::kFlagSrc2Scalar});
  EXPECT_TRUE(st_.mask(0));
  EXPECT_FALSE(st_.mask(1));
  EXPECT_TRUE(st_.mask(2));

  st_.set_velem_f(2, 0, 1.0);
  st_.set_velem_f(2, 1, -1.0);
  st_.set_velem_f(2, 2, 0.0);
  st_.set_sreg_f(8, 0.5);
  run({Opcode::kVfcmplt, 0, 2, 8, 0, isa::kFlagSrc2Scalar});
  EXPECT_FALSE(st_.mask(0));
  EXPECT_TRUE(st_.mask(1));
  EXPECT_TRUE(st_.mask(2));
}

}  // namespace
}  // namespace vlt::func
