// Campaign engine: spec expansion, parallel determinism, the result
// cache, the unified parse/serialize API, and the JSON utility it rides
// on.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "campaign/campaign.hpp"
#include "common/json.hpp"

namespace vlt {
namespace {

namespace fs = std::filesystem;
using campaign::Campaign;
using campaign::CampaignOptions;
using campaign::RunKey;
using campaign::RunSet;
using campaign::SweepSpec;
using machine::MachineConfig;
using machine::RunResult;
using workloads::Variant;

// --- Json ---

TEST(Json, DumpIsDeterministicAndOrdered) {
  Json j = Json::object();
  j.set("b", 1u);
  j.set("a", 2u);
  j.set("b", 3u);  // replaces, keeps first-set position
  EXPECT_EQ(j.dump(), "{\"b\":3,\"a\":2}");
}

TEST(Json, RoundTripsThroughParse) {
  Json j = Json::object();
  j.set("str", "line\n\"quoted\"");
  j.set("int", std::int64_t{-5});
  j.set("uint", std::uint64_t{18446744073709551615ull});
  j.set("dbl", 1.5);
  j.set("flag", true);
  Json arr = Json::array();
  arr.push_back(Json());
  arr.push_back(7u);
  j.set("arr", std::move(arr));

  std::optional<Json> back = Json::parse(j.dump(2));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dump(), j.dump());
  EXPECT_EQ(back->find("uint")->as_uint(), 18446744073709551615ull);
  EXPECT_EQ(back->find("int")->as_int(), -5);
  EXPECT_EQ(back->find("str")->as_string(), "line\n\"quoted\"");
}

TEST(Json, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(Json::parse("{\"a\":}", &err).has_value());
  EXPECT_FALSE(Json::parse("[1,]", &err).has_value());
  EXPECT_FALSE(Json::parse("{\"a\":1} trailing", &err).has_value());
  EXPECT_FALSE(Json::parse("\"unterminated", &err).has_value());
  EXPECT_FALSE(err.empty());
}

// --- unified parse API ---

TEST(VariantParse, AcceptsCliAndCanonicalSpellings) {
  EXPECT_EQ(*Variant::parse("base"), Variant::base());
  EXPECT_EQ(*Variant::parse("vlt2"), Variant::vector_threads(2));
  EXPECT_EQ(*Variant::parse("vlt4"), Variant::vector_threads(4));
  EXPECT_EQ(*Variant::parse("vlt-4vt"), Variant::vector_threads(4));
  EXPECT_EQ(*Variant::parse("lanes8"), Variant::lane_threads(8));
  EXPECT_EQ(*Variant::parse("vlt-8lane"), Variant::lane_threads(8));
  EXPECT_EQ(*Variant::parse("su4"), Variant::su_threads(4));
  EXPECT_EQ(*Variant::parse("su-2t"), Variant::su_threads(2));
}

TEST(VariantParse, RoundTripsToString) {
  for (Variant v : {Variant::base(), Variant::vector_threads(2),
                    Variant::lane_threads(8), Variant::su_threads(4)}) {
    std::optional<Variant> parsed = Variant::parse(v.to_string());
    ASSERT_TRUE(parsed.has_value()) << v.to_string();
    EXPECT_EQ(*parsed, v);
  }
}

TEST(VariantParse, RejectsGarbageWithMessage) {
  std::string err;
  EXPECT_FALSE(Variant::parse("vlt", &err).has_value());
  EXPECT_NE(err.find("unknown variant"), std::string::npos);
  EXPECT_FALSE(Variant::parse("vlt0", &err).has_value());
  EXPECT_FALSE(Variant::parse("vlt-4", &err).has_value());
  EXPECT_FALSE(Variant::parse("lanes", &err).has_value());
  EXPECT_FALSE(Variant::parse("su999", &err).has_value());
  EXPECT_FALSE(Variant::parse("", &err).has_value());
}

TEST(ConfigFind, KnownAndUnknownNames) {
  for (const std::string& name : MachineConfig::preset_names()) {
    std::optional<MachineConfig> c = MachineConfig::find(name);
    ASSERT_TRUE(c.has_value()) << name;
    EXPECT_EQ(c->name, name);
  }
  EXPECT_FALSE(MachineConfig::find("V9-XXL").has_value());
}

TEST(ConfigFingerprint, DistinguishesTimingKnobs) {
  MachineConfig a = MachineConfig::base();
  MachineConfig b = MachineConfig::base();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.vu.chaining = false;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b = MachineConfig::base();
  b.l2.banks = 1;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  // The name is cosmetic, not timing-relevant.
  b = MachineConfig::base();
  b.name = "renamed";
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

// --- RunKey / spec expansion ---

TEST(RunKey, OrderingAndFormatting) {
  RunKey a{"bt", "base", "base"};
  RunKey b{"bt", "base", "vlt-2vt"};
  EXPECT_LT(a, b);
  EXPECT_EQ(a.to_string(), "bt/base/base");
  EXPECT_TRUE(a == (RunKey{"bt", "base", "base"}));
}

TEST(SweepSpec, GridPrunesUnsupportedCells) {
  SweepSpec spec;
  // mxm has no vector-thread decomposition; base has one hardware thread.
  std::size_t added = spec.add_grid(
      {MachineConfig::base(), MachineConfig::v4_cmp()}, {"mxm", "mpenc"},
      {Variant::base(), Variant::vector_threads(4)});
  // mxm: base on both configs. mpenc: base on both + vlt4 on V4-CMP.
  EXPECT_EQ(added, 5u);
  EXPECT_EQ(spec.size(), 5u);
}

TEST(ConfigSupports, HardwareLimits) {
  EXPECT_TRUE(campaign::config_supports(MachineConfig::base(),
                                        Variant::base()));
  EXPECT_FALSE(campaign::config_supports(MachineConfig::base(),
                                         Variant::vector_threads(2)));
  EXPECT_TRUE(campaign::config_supports(MachineConfig::v4_cmp(),
                                        Variant::vector_threads(4)));
  EXPECT_FALSE(campaign::config_supports(MachineConfig::v2_cmp(),
                                         Variant::vector_threads(4)));
  // CMT has no vector unit: scalar-unit threads only.
  EXPECT_FALSE(campaign::config_supports(MachineConfig::cmt(),
                                         Variant::base()));
  EXPECT_TRUE(campaign::config_supports(MachineConfig::cmt(),
                                        Variant::su_threads(4)));
  EXPECT_TRUE(campaign::config_supports(MachineConfig::v4_cmt(),
                                        Variant::lane_threads(8)));
  EXPECT_FALSE(campaign::config_supports(MachineConfig::v4_cmt(),
                                         Variant::lane_threads(16)));
}

// --- RunResult serialization ---

TEST(RunResultJson, RoundTripPreservesEveryField) {
  RunResult r = machine::Simulator(MachineConfig::base())
                    .run(*workloads::make_workload("mpenc"), Variant::base());
  ASSERT_TRUE(r.verified);

  std::optional<RunResult> back = RunResult::from_json(r.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->to_json().dump(), r.to_json().dump());
  EXPECT_EQ(back->cycles, r.cycles);
  EXPECT_EQ(back->phase_cycles.size(), r.phase_cycles.size());
  EXPECT_EQ(back->vl_hist.counts(), r.vl_hist.counts());
  EXPECT_DOUBLE_EQ(back->avg_vl(), r.avg_vl());
  EXPECT_EQ(back->util.total(), r.util.total());
}

TEST(RunResultJson, SchemaHasDocumentedFields) {
  RunResult r = machine::Simulator(MachineConfig::base())
                    .run(*workloads::make_workload("mxm"), Variant::base());
  Json j = r.to_json();
  for (const char* key :
       {"workload", "config", "variant", "status", "verified", "attempts",
        "cycles", "phases", "opportunity_cycles", "scalar_insts",
        "vector_insts", "element_ops", "metrics", "utilization",
        "vl_histogram", "stats"})
    EXPECT_NE(j.find(key), nullptr) << key;
  EXPECT_EQ(j.find("status")->as_string(), "ok");
  EXPECT_EQ(j.find("error"), nullptr);  // only present on failures
  EXPECT_NE(j.find("metrics")->find("pct_vectorization"), nullptr);
  EXPECT_NE(j.find("metrics")->find("avg_vl"), nullptr);
  EXPECT_NE(j.find("metrics")->find("pct_opportunity"), nullptr);
  EXPECT_NE(j.find("utilization")->find("busy"), nullptr);
}

TEST(RunResultJson, FromJsonRejectsNonResults) {
  EXPECT_FALSE(RunResult::from_json(Json()).has_value());
  EXPECT_FALSE(RunResult::from_json(*Json::parse("{\"a\":1}")).has_value());
}

// --- campaign execution ---

SweepSpec small_spec() {
  SweepSpec spec;
  spec.add_grid({MachineConfig::base(), MachineConfig::v2_cmp()},
                {"mpenc", "multprec"},
                {Variant::base(), Variant::vector_threads(2)});
  return spec;
}

TEST(Campaign, ParallelAggregationIsBitIdenticalToSerial) {
  CampaignOptions serial;
  serial.threads = 1;
  RunSet a = Campaign(serial).run(small_spec());

  CampaignOptions parallel;
  parallel.threads = 4;  // oversubscribed on small hosts — still identical
  RunSet b = Campaign(parallel).run(small_spec());

  ASSERT_TRUE(a.all_verified());
  EXPECT_EQ(a.to_json().dump(1), b.to_json().dump(1));
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(Campaign, LookupByTypedKey) {
  RunSet set = Campaign().run(small_spec());
  EXPECT_EQ(set.size(), 6u);  // 2 workloads x (base x base, V2-CMP x 2)
  const RunResult& r = set.at({"mpenc", "V2-CMP", "vlt-2vt"});
  EXPECT_EQ(r.workload, "mpenc");
  EXPECT_GT(r.cycles, 0u);
  EXPECT_EQ(set.cycles("mpenc", "V2-CMP", "vlt-2vt"), r.cycles);
  EXPECT_EQ(set.find({"mpenc", "CMT", "su-4t"}), nullptr);
}

class CampaignCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The pid keeps concurrent ctest processes apart: heap addresses
    // alone collide under sanitizer allocators, which are near-
    // deterministic across identical processes.
    dir_ = fs::temp_directory_path() /
           ("vltsweep-cache-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  CampaignOptions cached_opts(unsigned threads = 2) {
    CampaignOptions o;
    o.threads = threads;
    o.cache_dir = dir_.string();
    return o;
  }

  fs::path dir_;
};

TEST_F(CampaignCacheTest, WarmRerunHitsAndIsByteIdentical) {
  RunSet cold = Campaign(cached_opts()).run(small_spec());
  EXPECT_EQ(cold.cache_hits(), 0u);
  EXPECT_EQ(cold.cache_misses(), 6u);

  RunSet warm = Campaign(cached_opts()).run(small_spec());
  EXPECT_EQ(warm.cache_hits(), 6u);
  EXPECT_EQ(warm.cache_misses(), 0u);
  EXPECT_EQ(warm.to_json().dump(1), cold.to_json().dump(1));
}

TEST_F(CampaignCacheTest, SpecChangeInvalidatesOnlyNewCells) {
  Campaign(cached_opts()).run(small_spec());

  SweepSpec extended = small_spec();
  extended.add(MachineConfig::v4_cmp(), "mpenc", Variant::vector_threads(4));
  RunSet set = Campaign(cached_opts()).run(extended);
  EXPECT_EQ(set.cache_hits(), 6u);    // everything from the first sweep
  EXPECT_EQ(set.cache_misses(), 1u);  // only the new cell simulates
}

TEST_F(CampaignCacheTest, ConfigTweakInvalidates) {
  SweepSpec spec;
  spec.add(MachineConfig::base(), "multprec", Variant::base());
  Campaign(cached_opts()).run(spec);

  // Same name, different timing parameters: must miss, not cross-fill.
  MachineConfig tweaked = MachineConfig::base();
  tweaked.l2.banks = 1;
  SweepSpec spec2;
  spec2.add(tweaked, "multprec", Variant::base());
  RunSet set = Campaign(cached_opts()).run(spec2);
  EXPECT_EQ(set.cache_hits(), 0u);
}

TEST_F(CampaignCacheTest, ForceResimulates) {
  SweepSpec spec;
  spec.add(MachineConfig::base(), "multprec", Variant::base());
  Campaign(cached_opts()).run(spec);

  CampaignOptions force = cached_opts();
  force.force = true;
  RunSet set = Campaign(force).run(spec);
  EXPECT_EQ(set.cache_hits(), 0u);
}

TEST_F(CampaignCacheTest, CorruptEntryIsAMissAndGetsQuarantined) {
  SweepSpec spec;
  spec.add(MachineConfig::base(), "multprec", Variant::base());
  RunSet cold = Campaign(cached_opts()).run(spec);

  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::ofstream out(entry.path(), std::ios::trunc);
    out << "{not json";
  }
  RunSet set = Campaign(cached_opts()).run(spec);
  EXPECT_EQ(set.cache_hits(), 0u);
  EXPECT_EQ(set.at(0).cycles, cold.at(0).cycles);

  // The corrupt entry was renamed aside, the fresh result stored in its
  // place; a third sweep hits cleanly instead of re-parsing garbage.
  std::size_t quarantined = 0;
  for (const auto& entry : fs::directory_iterator(dir_))
    if (entry.path().extension() == ".corrupt") ++quarantined;
  EXPECT_EQ(quarantined, 1u);
  RunSet warm = Campaign(cached_opts()).run(spec);
  EXPECT_EQ(warm.cache_hits(), 1u);
}

TEST(Campaign, ProgressCallbackCoversEveryCell) {
  CampaignOptions opts;
  opts.threads = 2;
  std::vector<std::string> seen;
  opts.progress = [&seen](std::size_t done, std::size_t total,
                          const RunKey& key, bool hit) {
    EXPECT_LE(done, total);
    EXPECT_FALSE(hit);
    seen.push_back(key.to_string());
  };
  RunSet set = Campaign(opts).run(small_spec());
  EXPECT_EQ(seen.size(), set.size());
}

}  // namespace
}  // namespace vlt
