// vltlint check suite: each seeded-defect fixture must produce exactly the
// finding its defect class predicts — and only that finding — while every
// stock workload build stays clean. The fixtures double as the living
// specification of what each check fires on (docs/LINT.md).
#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/checks.hpp"
#include "analysis/findings.hpp"
#include "isa/program.hpp"
#include "machine/phase.hpp"
#include "workloads/workload.hpp"

namespace vlt::analysis {
namespace {

using isa::Instruction;
using isa::Opcode;
using isa::ProgramBuilder;
using machine::ParallelProgram;
using machine::Phase;
using machine::PhaseMode;

ParallelProgram wrap(std::vector<isa::Program> programs,
                     PhaseMode mode = PhaseMode::kVectorThreads) {
  ParallelProgram par;
  par.name = "fixture";
  Phase phase;
  phase.label = "p0";
  phase.mode = mode;
  phase.programs = std::move(programs);
  par.phases.push_back(std::move(phase));
  return par;
}

ParallelProgram wrap1(isa::Program prog,
                      PhaseMode mode = PhaseMode::kSerial) {
  std::vector<isa::Program> v;
  v.push_back(std::move(prog));
  return wrap(std::move(v), mode);
}

std::vector<std::string> checks_of(const std::vector<Finding>& fs) {
  std::vector<std::string> out;
  out.reserve(fs.size());
  for (const Finding& f : fs) out.push_back(f.check);
  return out;
}

std::string render(const std::vector<Finding>& fs) {
  std::string s;
  for (const Finding& f : fs) s += f.to_string() + "\n";
  return s;
}

/// Asserts the analysis reports exactly one finding, of `check`, with
/// `severity`.
void expect_single(const ParallelProgram& par, const std::string& check,
                   Severity severity) {
  std::vector<Finding> fs = analyze(par);
  ASSERT_EQ(fs.size(), 1u) << render(fs);
  EXPECT_EQ(fs[0].check, check) << render(fs);
  EXPECT_EQ(fs[0].severity, severity) << render(fs);
}

// --- clean programs produce no findings ------------------------------------

TEST(Lint, CleanStripMineLoopIsQuiet) {
  ProgramBuilder b("clean");
  const RegIdx sN = 1, sA = 2, sV = 3, sT = 4;
  b.li(sN, 100);
  b.li(sA, 0x1000);
  auto loop = b.label();
  auto done = b.label();
  b.bind(loop);
  b.beq(sN, 0, done);
  b.setvl(sV, sN);
  b.vload(10, sA);
  b.vadd(11, 10, 10);
  b.vstore(11, sA);
  b.sub(sN, sN, sV);
  b.slli(sT, sV, 3);
  b.add(sA, sA, sT);
  b.jump(loop);
  b.bind(done);
  b.halt();
  EXPECT_TRUE(analyze(wrap1(b.build())).empty());
}

TEST(Lint, AllStockWorkloadVariantsAreClean) {
  const std::vector<workloads::Variant> sweep = {
      workloads::Variant::base(), workloads::Variant::vector_threads(2),
      workloads::Variant::vector_threads(4),
      workloads::Variant::lane_threads(8),
      workloads::Variant::su_threads(4)};
  for (const std::string& name : workloads::workload_names()) {
    workloads::WorkloadPtr w = workloads::make_workload(name);
    for (const workloads::Variant& v : sweep) {
      if (!w->supports(v.kind)) continue;
      std::vector<Finding> fs = analyze(w->build(v));
      EXPECT_TRUE(fs.empty())
          << name << ":" << v.to_string() << "\n" << render(fs);
    }
  }
}

TEST(Lint, IsaTablesAreClosed) {
  EXPECT_TRUE(check_isa_tables().empty());
}

// --- def-before-use ---------------------------------------------------------

TEST(Lint, ScalarReadBeforeWrite) {
  ProgramBuilder b("ubd");
  b.li(2, 7);
  b.addi(1, 5, 1);  // s5 never written
  b.halt();
  expect_single(wrap1(b.build()), "def-before-use", Severity::kError);
}

TEST(Lint, VectorReadBeforeWrite) {
  ProgramBuilder b("vubd");
  b.setvlmax(1);
  b.vadd(2, 2, 2);  // v2 never written
  b.halt();
  std::vector<Finding> fs = analyze(wrap1(b.build()));
  ASSERT_EQ(fs.size(), 1u) << render(fs);
  EXPECT_EQ(fs[0].check, "def-before-use");
}

TEST(Lint, MaskReadBeforeCompare) {
  ProgramBuilder b("mask");
  b.setvlmax(1);
  b.viota(1);
  b.vmerge(2, 1, 1);  // no compare ever wrote the mask
  b.halt();
  expect_single(wrap1(b.build()), "def-before-use", Severity::kError);
}

TEST(Lint, ZeroingIdiomIsADefNotAUse) {
  ProgramBuilder b("zeroing");
  b.xor_(5, 5, 5);  // idiomatic zeroing of an unwritten register
  b.sub(6, 6, 6);
  b.addi(1, 5, 1);
  b.add(2, 6, 1);
  b.halt();
  EXPECT_TRUE(analyze(wrap1(b.build())).empty());
}

// --- vl-discipline ----------------------------------------------------------

TEST(Lint, VectorOpWithoutSetvl) {
  ProgramBuilder b("novl");
  b.viota(1);  // VL is 0: the op does nothing
  b.halt();
  expect_single(wrap1(b.build()), "vl-discipline", Severity::kError);
}

TEST(Lint, SetvlAboveMvlOutsideLoop) {
  ProgramBuilder b("clamp");
  b.li(1, 100);   // > MVL 64, straight-line: the clamp silently truncates
  b.setvl(2, 1);
  b.viota(3);
  b.halt();
  expect_single(wrap1(b.build()), "vl-discipline", Severity::kWarning);
}

TEST(Lint, StripMineDecrementByStaleVl) {
  ProgramBuilder b("stale");
  const RegIdx sN = 1, sV = 2;
  b.li(sN, 50);
  b.setvl(sV, sN);  // set once, outside the loop
  auto loop = b.label();
  auto done = b.label();
  b.bind(loop);
  b.beq(sN, 0, done);
  b.viota(10);
  b.sub(sN, sN, sV);  // decrements by the stale (pre-loop) VL
  b.jump(loop);
  b.bind(done);
  b.halt();
  expect_single(wrap1(b.build()), "vl-discipline", Severity::kError);
}

// --- barrier protocol -------------------------------------------------------

TEST(Lint, UnbalancedBarrierAcrossThreadlets) {
  ProgramBuilder t0("t0");
  t0.barrier();
  t0.halt();
  ProgramBuilder t1("t1");
  t1.halt();  // never arrives: deadlock
  std::vector<isa::Program> progs;
  progs.push_back(t0.build());
  progs.push_back(t1.build());
  expect_single(wrap(std::move(progs), PhaseMode::kLaneThreads), "barrier",
                Severity::kError);
}

TEST(Lint, BarrierUnderDivergentControlFlow) {
  ProgramBuilder b("divergent");
  auto skip = b.label();
  b.tid(1);
  b.beq(1, 0, skip);
  b.barrier();  // only non-zero tids arrive
  b.bind(skip);
  b.halt();
  std::vector<isa::Program> progs;
  progs.push_back(b.build());
  expect_single(wrap(std::move(progs), PhaseMode::kLaneThreads), "barrier",
                Severity::kError);
}

TEST(Lint, BarrierInLoopIsQuiet) {
  // Loop-varying barrier counts are ordinary (radix runs barriers inside
  // its pass loop); only forward-join divergence is a defect.
  const auto make = [](const std::string& name) {
    ProgramBuilder b(name);
    const RegIdx sI = 1, sN = 2;
    b.li(sI, 0);
    b.li(sN, 4);
    auto loop = b.label();
    auto done = b.label();
    b.bind(loop);
    b.bge(sI, sN, done);
    b.barrier();
    b.addi(sI, sI, 1);
    b.jump(loop);
    b.bind(done);
    b.halt();
    return b.build();
  };
  std::vector<isa::Program> progs;
  progs.push_back(make("t0"));
  progs.push_back(make("t1"));
  // Both threadlets run the same loop; exit counts are loop-dependent, so
  // the conservative analysis stays quiet.
  EXPECT_TRUE(
      analyze(wrap(std::move(progs), PhaseMode::kLaneThreads)).empty());
}

// --- cross-threadlet races --------------------------------------------------

isa::Program store_to(const std::string& name, std::int64_t addr) {
  ProgramBuilder b(name);
  b.li(1, addr);
  b.li(2, 7);
  b.store(1, 2);
  b.halt();
  return b.build();
}

TEST(Lint, OverlappingScalarStoresRace) {
  std::vector<isa::Program> progs;
  progs.push_back(store_to("t0", 0x1000));
  progs.push_back(store_to("t1", 0x1000));
  expect_single(wrap(std::move(progs), PhaseMode::kLaneThreads), "race",
                Severity::kError);
}

TEST(Lint, DisjointStoresDoNotRace) {
  std::vector<isa::Program> progs;
  progs.push_back(store_to("t0", 0x1000));
  progs.push_back(store_to("t1", 0x2000));
  EXPECT_TRUE(
      analyze(wrap(std::move(progs), PhaseMode::kLaneThreads)).empty());
}

TEST(Lint, OverlappingVectorStoresRace) {
  const auto vec_store = [](const std::string& name, std::int64_t addr) {
    ProgramBuilder b(name);
    b.li(1, 32);
    b.setvl(2, 1);
    b.viota(3);
    b.vstore(3, 1, static_cast<std::int32_t>(addr - 32));
    b.halt();
    return b.build();
  };
  std::vector<isa::Program> progs;
  progs.push_back(vec_store("t0", 0x1000));
  progs.push_back(vec_store("t1", 0x1000 + 8));  // 8-byte shift: overlaps
  expect_single(wrap(std::move(progs), PhaseMode::kVectorThreads), "race",
                Severity::kError);
}

TEST(Lint, BarrierSeparatedAccessesDoNotRace) {
  // t0 writes in epoch 0, t1 writes the same bytes in epoch 1: the barrier
  // orders them.
  ProgramBuilder t0("t0");
  t0.li(1, 0x1000);
  t0.li(2, 7);
  t0.store(1, 2);
  t0.barrier();
  t0.halt();
  ProgramBuilder t1("t1");
  t1.barrier();
  t1.li(1, 0x1000);
  t1.li(2, 9);
  t1.store(1, 2);
  t1.halt();
  std::vector<isa::Program> progs;
  progs.push_back(t0.build());
  progs.push_back(t1.build());
  EXPECT_TRUE(
      analyze(wrap(std::move(progs), PhaseMode::kLaneThreads)).empty());
}

// --- regfile and structure --------------------------------------------------

TEST(Lint, WriteToS0) {
  ProgramBuilder b("s0");
  b.li(0, 5);  // s0 is the conventional zero register
  b.halt();
  expect_single(wrap1(b.build()), "regfile", Severity::kError);
}

TEST(Lint, BranchTargetOutsideProgram) {
  std::vector<Instruction> code;
  code.push_back({Opcode::kBeq, 0, 0, 0, /*imm=*/100, 0});  // way past end
  code.push_back({Opcode::kHalt, 0, 0, 0, 0, 0});
  isa::Program prog("badbr", std::move(code), 0x10000000);
  expect_single(wrap1(std::move(prog)), "structure", Severity::kError);
}

TEST(Lint, ExecutionFallsOffEnd) {
  std::vector<Instruction> code;
  code.push_back({Opcode::kLi, 1, 0, 0, 1, 0});  // no halt
  isa::Program prog("felloff", std::move(code), 0x10000000);
  expect_single(wrap1(std::move(prog)), "structure", Severity::kError);
}

TEST(Lint, SerialPhaseWithTwoPrograms) {
  ProgramBuilder a("a");
  a.halt();
  ProgramBuilder b("b");
  b.halt();
  std::vector<isa::Program> progs;
  progs.push_back(a.build());
  progs.push_back(b.build());
  expect_single(wrap(std::move(progs), PhaseMode::kSerial), "structure",
                Severity::kError);
}

TEST(Lint, VectorOpInLaneThreadPhase) {
  ProgramBuilder b("vecinlane");
  b.setvlmax(1);
  b.viota(2);  // lane cores have no vector datapath
  b.halt();
  std::vector<isa::Program> progs;
  progs.push_back(b.build());
  expect_single(wrap(std::move(progs), PhaseMode::kLaneThreads), "structure",
                Severity::kError);
}

// --- fault injectors are flagged -------------------------------------------

TEST(Lint, FaultBarrierInjectorIsFlagged) {
  workloads::WorkloadPtr w = workloads::find_workload("fault.barrier");
  ASSERT_NE(w, nullptr);
  std::vector<Finding> fs =
      analyze(w->build(workloads::Variant::lane_threads(8)));
  ASSERT_FALSE(fs.empty());
  for (const Finding& f : fs) EXPECT_EQ(f.check, "barrier") << render(fs);
}

TEST(Lint, FaultInvariantInjectorIsFlagged) {
  workloads::WorkloadPtr w = workloads::find_workload("fault.invariant");
  ASSERT_NE(w, nullptr);
  std::vector<Finding> fs = analyze(w->build(workloads::Variant::base()));
  ASSERT_EQ(fs.size(), 1u) << render(fs);
  EXPECT_EQ(fs[0].check, "structure");
}

// --- options, suppressions, and the report ---------------------------------

TEST(Lint, OnlyFilterRestrictsChecks) {
  ProgramBuilder b("multi");
  b.li(0, 5);      // regfile
  b.addi(1, 5, 1); // def-before-use
  b.halt();
  AnalysisOptions opts;
  opts.only = {"regfile"};
  std::vector<Finding> fs = analyze(wrap1(b.build()), opts);
  ASSERT_EQ(fs.size(), 1u) << render(fs);
  EXPECT_EQ(fs[0].check, "regfile");
}

TEST(Lint, SuppressionsDropByCheckAndWorkload) {
  Finding f1;
  f1.check = "barrier";
  f1.workload = "fault.barrier";
  Finding f2;
  f2.check = "race";
  f2.workload = "other";

  Suppression by_check;
  ASSERT_TRUE(Suppression::parse("barrier", by_check));
  std::size_t dropped = 0;
  std::vector<Finding> kept =
      apply_suppressions({f1, f2}, {by_check}, &dropped);
  EXPECT_EQ(dropped, 1u);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].check, "race");

  Suppression scoped;
  ASSERT_TRUE(Suppression::parse("barrier@elsewhere", scoped));
  kept = apply_suppressions({f1, f2}, {scoped}, &dropped);
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(kept.size(), 2u);

  Suppression wildcard;
  ASSERT_TRUE(Suppression::parse("*", wildcard));
  kept = apply_suppressions({f1, f2}, {wildcard}, &dropped);
  EXPECT_EQ(dropped, 2u);
  EXPECT_TRUE(kept.empty());
}

TEST(Lint, FindingJsonShape) {
  Finding f;
  f.check = "race";
  f.severity = Severity::kError;
  f.workload = "w";
  f.phase = "p";
  f.thread = 1;
  f.program = "t1";
  f.pc = 3;
  f.message = "m";
  const std::string json = findings_to_json({f}).dump(0);
  EXPECT_NE(json.find("\"check\": \"race\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
}

TEST(Lint, CheckInfosCoverEveryEmittedId) {
  std::vector<std::string> names;
  for (const CheckInfo& c : check_infos()) names.push_back(c.name);
  for (const char* id :
       {"structure", "regfile", "def-before-use", "vl-discipline", "barrier",
        "race", "isa-table", "isa-disasm", "isa-exec"})
    EXPECT_NE(std::find(names.begin(), names.end(), id), names.end()) << id;
}

// --- CFG construction -------------------------------------------------------

TEST(Lint, CfgFindsLoopStructure) {
  ProgramBuilder b("loop");
  const RegIdx sI = 1, sN = 2;
  b.li(sI, 0);
  b.li(sN, 4);
  auto loop = b.label();
  auto done = b.label();
  b.bind(loop);
  b.bge(sI, sN, done);
  b.addi(sI, sI, 1);
  b.jump(loop);
  b.bind(done);
  b.halt();
  isa::Program prog = b.build();
  Cfg cfg = build_cfg(prog);
  ASSERT_EQ(cfg.back_edges.size(), 1u);
  const Cfg::Edge& e = cfg.back_edges[0];
  EXPECT_TRUE(cfg.dominates(e.to, e.from));
  EXPECT_TRUE(cfg.in_loop(e, /*pc of bge*/ 2));
  EXPECT_FALSE(cfg.in_loop(e, /*pc of halt*/ prog.size() - 1));
  EXPECT_TRUE(cfg.bad_branch_pcs.empty());
}

}  // namespace
}  // namespace vlt::analysis
