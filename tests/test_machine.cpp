// Tests for machine configuration presets, thread mapping, the barrier
// controller, and lane partitioning.
#include <gtest/gtest.h>

#include "machine/machine_config.hpp"
#include "vltctl/barrier.hpp"
#include "vltctl/partition.hpp"

namespace vlt {
namespace {

using machine::MachineConfig;

TEST(MachineConfig, BaseMatchesTable3) {
  MachineConfig c = MachineConfig::base();
  ASSERT_EQ(c.sus.size(), 1u);
  EXPECT_EQ(c.sus[0].width, 4u);
  EXPECT_EQ(c.sus[0].rob_size, 64u);
  EXPECT_EQ(c.sus[0].arith_units, 4u);
  EXPECT_EQ(c.sus[0].mem_ports, 2u);
  EXPECT_EQ(c.sus[0].l1_size, 16u * 1024u);
  EXPECT_EQ(c.sus[0].l1_ways, 2u);
  EXPECT_EQ(c.vu.lanes, 8u);
  EXPECT_EQ(c.vu.issue_width, 2u);
  EXPECT_EQ(c.vu.viq_size, 32u);
  EXPECT_EQ(c.vu.window_size, 32u);
  EXPECT_EQ(c.vu.arith_fus, 3u);
  EXPECT_EQ(c.vu.mem_ports, 2u);
  EXPECT_EQ(c.l2.size_bytes, 4u * 1024u * 1024u);
  EXPECT_EQ(c.l2.ways, 4u);
  EXPECT_EQ(c.l2.banks, 16u);
  EXPECT_EQ(c.l2.hit_latency, 10u);
  EXPECT_EQ(c.l2.miss_latency, 100u);
}

TEST(MachineConfig, PresetRoundTripByName) {
  for (const std::string& name : MachineConfig::preset_names()) {
    MachineConfig c = MachineConfig::by_name(name);
    EXPECT_EQ(c.name, name);
  }
}

TEST(MachineConfig, SmtSlotCounts) {
  EXPECT_EQ(MachineConfig::base().total_smt_slots(), 1u);
  EXPECT_EQ(MachineConfig::v2_smt().total_smt_slots(), 2u);
  EXPECT_EQ(MachineConfig::v4_smt().total_smt_slots(), 4u);
  EXPECT_EQ(MachineConfig::v4_cmt().total_smt_slots(), 4u);
  EXPECT_EQ(MachineConfig::v4_cmp_h().total_smt_slots(), 4u);
  EXPECT_EQ(MachineConfig::cmt().total_smt_slots(), 4u);
}

TEST(MachineConfig, V4CmtThreadMappingInterleavesSus) {
  MachineConfig c = MachineConfig::v4_cmt();
  EXPECT_EQ(c.thread_slot(0), (std::pair<unsigned, unsigned>{0, 0}));
  EXPECT_EQ(c.thread_slot(1), (std::pair<unsigned, unsigned>{1, 0}));
  EXPECT_EQ(c.thread_slot(2), (std::pair<unsigned, unsigned>{0, 1}));
  EXPECT_EQ(c.thread_slot(3), (std::pair<unsigned, unsigned>{1, 1}));
}

TEST(MachineConfig, HeterogeneousConfigsUseSmallSecondaries) {
  MachineConfig c = MachineConfig::v4_cmp_h();
  ASSERT_EQ(c.sus.size(), 4u);
  EXPECT_EQ(c.sus[0].width, 4u);
  for (unsigned i = 1; i < 4; ++i) EXPECT_EQ(c.sus[i].width, 2u);
}

TEST(MachineConfig, CmtHasNoVectorUnit) {
  EXPECT_FALSE(MachineConfig::cmt().has_vector_unit);
  EXPECT_TRUE(MachineConfig::v4_cmt().has_vector_unit);
}

TEST(Barrier, ReleasesWhenAllArrive) {
  vltctl::BarrierController bc;
  bc.begin_phase(3, 10);
  auto g0 = bc.arrive(100);
  EXPECT_EQ(bc.release_time(g0), kNeverReady);
  auto g1 = bc.arrive(105);
  auto g2 = bc.arrive(120);
  EXPECT_EQ(g0, g1);
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(bc.release_time(g0), 130u);  // last arrival + latency
}

TEST(Barrier, GenerationsAdvance) {
  vltctl::BarrierController bc;
  bc.begin_phase(2, 5);
  auto a = bc.arrive(10);
  bc.arrive(11);
  auto b = bc.arrive(30);  // same thread's next barrier
  EXPECT_EQ(b, a + 1);
  bc.arrive(31);
  EXPECT_EQ(bc.release_time(b), 36u);
  EXPECT_EQ(bc.generations_completed(), 2u);
}

TEST(Barrier, SingleThreadReleasesImmediately) {
  vltctl::BarrierController bc;
  bc.begin_phase(1, 5);
  auto g = bc.arrive(42);
  EXPECT_EQ(bc.release_time(g), 47u);
}

TEST(Partition, StandardSplits) {
  auto p1 = vltctl::make_partition(8, 1);
  EXPECT_EQ(p1.lanes_per_thread, 8u);
  EXPECT_EQ(p1.max_vl_per_thread, 64u);
  auto p2 = vltctl::make_partition(8, 2);
  EXPECT_EQ(p2.lanes_per_thread, 4u);
  EXPECT_EQ(p2.max_vl_per_thread, 32u);
  auto p4 = vltctl::make_partition(8, 4);
  EXPECT_EQ(p4.lanes_per_thread, 2u);
  EXPECT_EQ(p4.max_vl_per_thread, 16u);
  auto p8 = vltctl::make_partition(8, 8);
  EXPECT_EQ(p8.lanes_per_thread, 1u);
  EXPECT_EQ(p8.max_vl_per_thread, 8u);
}

TEST(Partition, SupportedPartitionsOf8Lanes) {
  auto parts = vltctl::supported_partitions(8);
  ASSERT_EQ(parts.size(), 4u);  // 1, 2, 4, 8 threads
  EXPECT_EQ(parts[3].nthreads, 8u);
}

TEST(Partition, RegisterFileReuseInvariant) {
  // §3.2: per-thread register storage never exceeds what the owned lanes
  // already hold (8 elements per register per lane on the 8-lane machine).
  for (const auto& p : vltctl::supported_partitions(8)) {
    EXPECT_EQ(p.max_vl_per_thread, p.lanes_per_thread * 8)
        << p.nthreads << " threads";
  }
}

TEST(Partition, LaneElementDistribution) {
  auto elems = vltctl::lane_elements(/*lane=*/3, /*lanes=*/8, /*vl=*/20);
  ASSERT_EQ(elems.size(), 3u);  // elements 3, 11, 19
  EXPECT_EQ(elems[0], 3u);
  EXPECT_EQ(elems[2], 19u);
}

}  // namespace
}  // namespace vlt
