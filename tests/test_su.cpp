// Unit tests for the out-of-order scalar unit.
#include <gtest/gtest.h>

#include "func/memory.hpp"
#include "isa/program.hpp"
#include "mem/l2_cache.hpp"
#include "mem/main_memory.hpp"
#include "su/scalar_core.hpp"
#include "vltctl/barrier.hpp"

namespace vlt::su {
namespace {

using isa::ProgramBuilder;

class SuTest : public ::testing::Test {
 protected:
  SuTest() : main_mem_({90, 4}), l2_({}, main_mem_) {}

  /// Runs `prog` on a fresh core until completion; returns cycles taken.
  Cycle run(const isa::Program& prog, SuParams params = SuParams{},
            unsigned nthreads = 1) {
    // Fresh timing state per run: the simulated clock restarts at 0.
    main_mem_ = mem::MainMemory({90, 4});
    l2_ = mem::L2Cache({}, main_mem_);
    core_ = std::make_unique<ScalarCore>(params, mem_, l2_, barrier_, nullptr);
    barrier_.begin_phase(nthreads, 10);
    ThreadAssignment work;
    work.program = &prog;
    core_->start_context(0, work, 0);
    Cycle now = 0;
    while (!core_->all_done()) {
      core_->tick(now);
      ++now;
      EXPECT_LT(now, 1'000'000u) << "runaway program";
      if (now >= 1'000'000u) break;
    }
    return now;
  }

  func::FuncMemory mem_;
  mem::MainMemory main_mem_;
  mem::L2Cache l2_;
  vltctl::BarrierController barrier_;
  std::unique_ptr<ScalarCore> core_;
};

TEST_F(SuTest, RunsStraightLineCode) {
  ProgramBuilder b("straight");
  b.li(1, 5);
  b.li(2, 7);
  b.add(3, 1, 2);
  b.li(4, 0x9000);
  b.store(4, 3);
  b.halt();
  isa::Program p = b.build();
  run(p);
  EXPECT_EQ(mem_.read_i64(0x9000), 12);
  EXPECT_EQ(core_->committed_scalar(), p.size());
}

TEST_F(SuTest, LoopProducesCorrectResult) {
  // sum 1..100 -> mem[0xA000]
  ProgramBuilder b("sum");
  b.li(1, 0);   // i
  b.li(2, 0);   // acc
  b.li(3, 101);
  auto loop = b.label();
  b.bind(loop);
  b.add(2, 2, 1);
  b.addi(1, 1, 1);
  b.blt(1, 3, loop);
  b.li(4, 0xA000);
  b.store(4, 2);
  b.halt();
  run(b.build());
  EXPECT_EQ(mem_.read_i64(0xA000), 5050);
}

TEST_F(SuTest, WiderCoreIsFaster) {
  // Independent chains in a loop (warm I-cache) expose ILP that a 4-way
  // core exploits.
  ProgramBuilder b4("ilp");
  for (int r = 1; r <= 8; ++r) b4.li(r, r);
  b4.li(9, 200);
  auto loop = b4.label();
  b4.bind(loop);
  for (int rep = 0; rep < 4; ++rep)
    for (int r = 1; r <= 8; ++r) b4.addi(r, r, 1);
  b4.addi(9, 9, -1);
  b4.bne(9, 0, loop);
  b4.halt();
  isa::Program p = b4.build();
  Cycle wide = run(p);
  Cycle narrow = run(p, SuParams::two_way());
  EXPECT_LT(wide, narrow);
  EXPECT_GT(static_cast<double>(narrow) / wide, 1.5);
}

TEST_F(SuTest, DependentChainIsLatencyBound) {
  // A single dependent chain gains nothing from width.
  ProgramBuilder b("chain");
  b.li(1, 0);
  for (int rep = 0; rep < 400; ++rep) b.addi(1, 1, 1);
  b.halt();
  isa::Program p = b.build();
  Cycle wide = run(p);
  Cycle narrow = run(p, SuParams::two_way());
  // Both are bound by the 400-cycle chain.
  EXPECT_GE(wide, 400u);
  EXPECT_LT(static_cast<double>(narrow) / wide, 1.2);
}

TEST_F(SuTest, StoreToLoadForwarding) {
  ProgramBuilder b("stl");
  b.li(1, 0xB000);
  b.li(2, 42);
  b.store(1, 2);
  b.load(3, 1);  // must see 42
  b.li(4, 0xB008);
  b.store(4, 3);
  b.halt();
  run(b.build());
  EXPECT_EQ(mem_.read_i64(0xB008), 42);
}

TEST_F(SuTest, MispredictionsSlowExecution) {
  // Data-dependent unpredictable branches vs the same work without them.
  ProgramBuilder taken("pseudo-random-branches");
  taken.li(1, 12345);  // LCG state
  taken.li(5, 0);
  taken.li(6, 400);
  auto loop = taken.label();
  taken.bind(loop);
  taken.mul(1, 1, 1);
  taken.addi(1, 1, 1);
  taken.andi(2, 1, 1);  // pseudo-random bit
  auto skip = taken.label();
  taken.beq(2, 0, skip);
  taken.addi(5, 5, 1);
  taken.bind(skip);
  taken.addi(5, 5, 1);
  taken.li(7, 1);
  taken.add(5, 5, 7);
  taken.addi(6, 6, -1);
  taken.bne(6, 0, loop);
  taken.halt();
  Cycle with_branches = run(taken.build());

  ProgramBuilder flat("no-branches");
  flat.li(1, 12345);
  flat.li(5, 0);
  flat.li(6, 400);
  auto loop2 = flat.label();
  flat.bind(loop2);
  flat.mul(1, 1, 1);
  flat.addi(1, 1, 1);
  flat.andi(2, 1, 1);
  flat.addi(5, 5, 1);
  flat.addi(5, 5, 1);
  flat.li(7, 1);
  flat.add(5, 5, 7);
  flat.addi(6, 6, -1);
  flat.bne(6, 0, loop2);
  flat.halt();
  Cycle without = run(flat.build());

  EXPECT_GT(with_branches, without);
  EXPECT_GT(core_->predictor().lookups(), 0u);
}

TEST_F(SuTest, ColdLoadsPayL2Latency) {
  // A pointer-chase over lines far apart: every load misses L1.
  ProgramBuilder b("chase");
  const int kLoads = 32;
  for (int i = 0; i < kLoads; ++i)
    mem_.write_i64(0x100000 + 4096 * i, 0x100000 + 4096 * (i + 1));
  b.li(1, 0x100000);
  for (int i = 0; i < kLoads; ++i) b.load(1, 1);
  b.halt();
  Cycle t = run(b.build());
  // Each chained load costs at least the L2 miss latency (100).
  EXPECT_GT(t, static_cast<Cycle>(kLoads) * 100);
}

TEST_F(SuTest, SmtRunsTwoThreads) {
  ProgramBuilder b("smt");
  b.tid(1);
  b.slli(2, 1, 3);
  b.li(3, 0xC000);
  b.add(3, 3, 2);
  b.addi(4, 1, 100);
  b.store(3, 4);
  b.halt();
  isa::Program p = b.build();

  SuParams params;
  params.smt_contexts = 2;
  core_ = std::make_unique<ScalarCore>(params, mem_, l2_, barrier_, nullptr);
  barrier_.begin_phase(2, 10);
  for (unsigned t = 0; t < 2; ++t) {
    ThreadAssignment work;
    work.program = &p;
    work.tid = t;
    work.nthreads = 2;
    core_->start_context(t, work, 0);
  }
  Cycle now = 0;
  while (!core_->all_done() && now < 100000) core_->tick(now), ++now;
  EXPECT_EQ(mem_.read_i64(0xC000), 100);
  EXPECT_EQ(mem_.read_i64(0xC008), 101);
}

TEST_F(SuTest, BarrierSynchronizesSmtThreads) {
  // Thread 0 spins briefly then stores; thread 1 loads after the barrier
  // and must observe the store.
  ProgramBuilder b("barrier");
  b.tid(1);
  auto t1 = b.label();
  b.bne(1, 0, t1);  // thread 1 skips the work loop
  b.li(2, 300);     // thread 0: delay loop
  auto spin = b.label();
  b.bind(spin);
  b.addi(2, 2, -1);
  b.bne(2, 0, spin);
  b.li(3, 0xD000);
  b.li(4, 777);
  b.store(3, 4);
  b.bind(t1);
  b.barrier();
  b.li(5, 0xD000);
  b.load(6, 5);
  b.li(7, 0xD100);
  b.slli(8, 1, 3);
  b.add(7, 7, 8);
  b.store(7, 6);
  b.halt();
  isa::Program p = b.build();

  SuParams params;
  params.smt_contexts = 2;
  core_ = std::make_unique<ScalarCore>(params, mem_, l2_, barrier_, nullptr);
  barrier_.begin_phase(2, 10);
  for (unsigned t = 0; t < 2; ++t) {
    ThreadAssignment work;
    work.program = &p;
    work.tid = t;
    work.nthreads = 2;
    core_->start_context(t, work, 0);
  }
  Cycle now = 0;
  while (!core_->all_done() && now < 100000) core_->tick(now), ++now;
  ASSERT_TRUE(core_->all_done());
  // Both threads observed the pre-barrier store.
  EXPECT_EQ(mem_.read_i64(0xD100), 777);
  EXPECT_EQ(mem_.read_i64(0xD108), 777);
}

// --- scalar unit driving a vector unit -------------------------------------

class SuVuTest : public ::testing::Test {
 protected:
  SuVuTest() : main_mem_({90, 4}), l2_({}, main_mem_), vu_({}, l2_) {}

  Cycle run(const isa::Program& prog, unsigned max_vl = kMaxVectorLength) {
    core_ = std::make_unique<ScalarCore>(SuParams{}, mem_, l2_, barrier_,
                                         &vu_);
    barrier_.begin_phase(1, 10);
    ThreadAssignment work;
    work.program = &prog;
    work.max_vl = max_vl;
    core_->start_context(0, work, 0);
    Cycle now = 0;
    while ((!core_->all_done() || !vu_.ctx_quiesced(0, now)) &&
           now < 1'000'000) {
      vu_.tick(now);
      core_->tick(now);
      ++now;
    }
    EXPECT_TRUE(core_->all_done());
    return now;
  }

  func::FuncMemory mem_;
  mem::MainMemory main_mem_;
  mem::L2Cache l2_;
  vltctl::BarrierController barrier_;
  vu::VectorUnit vu_;
  std::unique_ptr<ScalarCore> core_;
};

TEST_F(SuVuTest, VectorKernelRunsToCompletion) {
  for (unsigned i = 0; i < 64; ++i) mem_.write_i64(0x8000 + 8 * i, i);
  ProgramBuilder b("vk");
  b.li(1, 64);
  b.setvl(2, 1);
  b.li(16, 0x8000);
  b.li(17, 0x9000);
  b.li(3, 5);
  b.vload(1, 16);
  b.vmul(2, 1, 3, isa::kFlagSrc2Scalar);
  b.vstore(2, 17);
  b.halt();
  run(b.build());
  for (unsigned i = 0; i < 64; ++i)
    EXPECT_EQ(mem_.read_i64(0x9000 + 8 * i), 5 * static_cast<int>(i));
  EXPECT_EQ(core_->committed_vector(), 3u);
  EXPECT_EQ(vu_.element_ops(), 3u * 64u);
}

TEST_F(SuVuTest, ReductionGatesDependentScalarCode) {
  // The store of the reduction result must wait for the vector unit; a
  // run whose scalar dest is consumed immediately still commits in order
  // and produces the right value.
  for (unsigned i = 0; i < 32; ++i) mem_.write_i64(0x8000 + 8 * i, i + 1);
  ProgramBuilder b("red");
  b.li(1, 32);
  b.setvl(2, 1);
  b.li(16, 0x8000);
  b.vload(1, 16);
  b.vredsum(33, 1);
  b.addi(34, 33, 100);  // depends on the vector->scalar transfer
  b.li(17, 0xA000);
  b.store(17, 34);
  b.halt();
  run(b.build());
  EXPECT_EQ(mem_.read_i64(0xA000), 32 * 33 / 2 + 100);
}

TEST_F(SuVuTest, MembarWaitsForVectorStores) {
  // A scalar load after a membar observes the vector store's data; the
  // membar itself waits until the VU quiesces.
  ProgramBuilder b("mb");
  b.li(1, 8);
  b.setvl(2, 1);
  b.viota(1);
  b.li(16, 0xB000);
  b.vstore(1, 16);
  b.membar();
  b.load(33, 16, 8);  // element 1 == 1
  b.li(17, 0xB100);
  b.store(17, 33);
  b.halt();
  run(b.build());
  EXPECT_EQ(mem_.read_i64(0xB100), 1);
}

TEST_F(SuVuTest, MaxVlClampFollowsContext) {
  // With a 16-element MAXVL (4-thread partition), setvl(64) clamps; the
  // strip-mined loop still covers all elements.
  ProgramBuilder b("clamp");
  constexpr RegIdx n = 1, vl = 2, scr = 3, p = 16, one = 48;
  b.li(one, 1);
  b.li(p, 0xC000);
  b.li(n, 64);
  auto loop = b.label();
  auto done = b.label();
  b.bind(loop);
  b.beq(n, 0, done);
  b.setvl(vl, n);
  b.vload(4, p);
  b.vadd(4, 4, one, isa::kFlagSrc2Scalar);
  b.vstore(4, p);
  b.sub(n, n, vl);
  b.slli(scr, vl, 3);
  b.add(p, p, scr);
  b.jump(loop);
  b.bind(done);
  b.halt();
  run(b.build(), /*max_vl=*/16);
  for (unsigned i = 0; i < 64; ++i)
    EXPECT_EQ(mem_.read_i64(0xC000 + 8 * i), 1) << i;
  // 4 strip iterations of VL 16.
  EXPECT_EQ(vu_.vl_histogram().counts().at(16), 12u);
}

TEST_F(SuVuTest, ViqBackpressureDoesNotDeadlock) {
  // Push far more vector instructions than the VIQ holds.
  ProgramBuilder b("pressure");
  b.li(1, 64);
  b.setvl(2, 1);
  b.li(16, 0x8000);
  for (int i = 0; i < 120; ++i) b.vload(static_cast<RegIdx>(i % 8), 16);
  b.halt();
  Cycle t = run(b.build());
  EXPECT_GT(t, 0u);
  EXPECT_EQ(core_->committed_vector(), 120u);
}

TEST_F(SuTest, StoreBufferLimitsOutstandingMisses) {
  // 64 stores to distinct lines: with a 16-entry store buffer the run
  // must take at least (64-16) serialized line-fill slots on the bus.
  ProgramBuilder b("stores");
  b.li(1, 0x200000);
  for (int i = 0; i < 64; ++i) b.store(1, 2, i * 64);
  b.halt();
  isa::Program p = b.build();
  SuParams tiny;
  tiny.store_buffer = 2;
  Cycle constrained = run(p, tiny);
  SuParams roomy;
  roomy.store_buffer = 64;
  Cycle free_flow = run(p, roomy);
  EXPECT_LT(free_flow, constrained);
}

TEST_F(SuTest, HaltDrainsRob) {
  ProgramBuilder b("drain");
  b.li(1, 0xD000);
  b.li(2, 9);
  b.store(1, 2);
  b.halt();
  run(b.build());
  EXPECT_TRUE(core_->all_done());
  EXPECT_EQ(mem_.read_i64(0xD000), 9);
}

TEST_F(SuTest, FourSmtContextsAllFinish) {
  ProgramBuilder b("smt4");
  b.tid(1);
  b.slli(2, 1, 3);
  b.li(3, 0xE000);
  b.add(3, 3, 2);
  b.li(4, 500);
  auto spin = b.label();
  b.bind(spin);
  b.addi(4, 4, -1);
  b.bne(4, 0, spin);
  b.store(3, 1);
  b.halt();
  isa::Program p = b.build();
  SuParams params;
  params.smt_contexts = 4;
  main_mem_ = mem::MainMemory({90, 4});
  l2_ = mem::L2Cache({}, main_mem_);
  core_ = std::make_unique<ScalarCore>(params, mem_, l2_, barrier_, nullptr);
  barrier_.begin_phase(4, 10);
  for (unsigned t = 0; t < 4; ++t) {
    ThreadAssignment work;
    work.program = &p;
    work.tid = t;
    work.nthreads = 4;
    core_->start_context(t, work, 0);
  }
  Cycle now = 0;
  while (!core_->all_done() && now < 200000) core_->tick(now), ++now;
  ASSERT_TRUE(core_->all_done());
  for (unsigned t = 0; t < 4; ++t)
    EXPECT_EQ(mem_.read_i64(0xE000 + 8 * t), t);
}

TEST_F(SuTest, SmtSharingSlowsEachThreadButHelpsTotal) {
  // One thread on a dedicated core vs two identical threads SMT-sharing:
  // total throughput improves, per-thread latency worsens.
  ProgramBuilder b("mix");
  b.li(1, 800);
  auto loop = b.label();
  b.bind(loop);
  b.addi(2, 2, 1);
  b.addi(3, 3, 1);
  b.addi(4, 4, 1);
  b.addi(5, 5, 2);
  b.addi(1, 1, -1);
  b.bne(1, 0, loop);
  b.halt();
  isa::Program p = b.build();
  Cycle solo = run(p);

  SuParams params;
  params.smt_contexts = 2;
  main_mem_ = mem::MainMemory({90, 4});
  l2_ = mem::L2Cache({}, main_mem_);
  core_ = std::make_unique<ScalarCore>(params, mem_, l2_, barrier_, nullptr);
  barrier_.begin_phase(2, 10);
  for (unsigned t = 0; t < 2; ++t) {
    ThreadAssignment work;
    work.program = &p;
    work.tid = t;
    work.nthreads = 2;
    core_->start_context(t, work, 0);
  }
  Cycle now = 0;
  while (!core_->all_done() && now < 200000) core_->tick(now), ++now;
  ASSERT_TRUE(core_->all_done());
  EXPECT_GT(now, solo);           // each thread individually slower
  EXPECT_LT(now, 2 * solo);       // but better than serializing them
}

}  // namespace
}  // namespace vlt::su
