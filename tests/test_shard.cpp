// vltshard: the coordinator/worker wire protocol, shard-journal merge,
// the kWorker error class, and the coordinator's degraded modes —
// resume-from-journals and in-process fallback (docs/SHARD.md).
#include <gtest/gtest.h>

#include "expect_sim_error.hpp"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "campaign/campaign.hpp"
#include "campaign/journal.hpp"
#include "shard/coordinator.hpp"
#include "shard/protocol.hpp"

namespace vlt {
namespace {

namespace fs = std::filesystem;
using campaign::Campaign;
using campaign::CampaignOptions;
using campaign::Journal;
using campaign::RunSet;
using campaign::SweepSpec;
using machine::MachineConfig;
using machine::RunResult;
using machine::RunStatus;
using shard::Message;
using shard::WorkerFault;
using workloads::Variant;

// --- wire protocol ----------------------------------------------------------

TEST(ShardProtocol, HelloRoundTrips) {
  std::string line = shard::hello_line(3, 4242, 0xdeadbeefcafef00dull, 24);
  std::optional<Message> m = shard::parse_message(line);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, Message::Type::kHello);
  EXPECT_EQ(m->worker, 3);
  EXPECT_EQ(m->pid, 4242);
  EXPECT_EQ(m->spec, "deadbeefcafef00d");
  EXPECT_EQ(m->cells, 24u);
}

TEST(ShardProtocol, HeartbeatRunExitRoundTrip) {
  std::optional<Message> hb = shard::parse_message(shard::heartbeat_line(7));
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->type, Message::Type::kHeartbeat);
  EXPECT_EQ(hb->worker, 7);

  std::optional<Message> run = shard::parse_message(shard::run_line(19));
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->type, Message::Type::kRun);
  EXPECT_EQ(run->cell, 19u);

  std::optional<Message> exit = shard::parse_message(shard::exit_line());
  ASSERT_TRUE(exit.has_value());
  EXPECT_EQ(exit->type, Message::Type::kExit);
}

TEST(ShardProtocol, ResultCarriesTheFullRunResult) {
  RunResult r;
  r.workload = "mpenc";
  r.config = "V4-CMP";
  r.variant = "vlt-4vt";
  r.cycles = 12345;
  r.verified = true;
  r.attempts = 2;
  std::optional<Message> m =
      shard::parse_message(shard::result_line(5, true, r));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, Message::Type::kResult);
  EXPECT_EQ(m->cell, 5u);
  EXPECT_TRUE(m->cached);
  ASSERT_TRUE(m->result.has_value());
  // The protocol must be lossless: a worker-reported result serializes
  // to the same bytes a local run would (the byte-identity contract).
  EXPECT_EQ(m->result->to_json().dump(), r.to_json().dump());
}

TEST(ShardProtocol, RejectsGarbageAndTornLines) {
  EXPECT_FALSE(shard::parse_message("").has_value());
  EXPECT_FALSE(shard::parse_message("not json at all").has_value());
  EXPECT_FALSE(shard::parse_message("{\"type\":\"warp\"}").has_value());
  EXPECT_FALSE(shard::parse_message("{\"type\":\"run\"}").has_value());
  EXPECT_FALSE(shard::parse_message("{\"type\":\"hello\",\"worker\":1}")
                   .has_value());
  // The VLTSHARD_CORRUPT_LINE hook's torn line, verbatim.
  EXPECT_FALSE(
      shard::parse_message("{\"type\":\"result\",\"cell\":3,\"result\":{torn")
          .has_value());
}

TEST(ShardProtocol, FaultNamesAreStable) {
  EXPECT_STREQ(shard::worker_fault_name(WorkerFault::kExit), "exit");
  EXPECT_STREQ(shard::worker_fault_name(WorkerFault::kSignal), "signal");
  EXPECT_STREQ(shard::worker_fault_name(WorkerFault::kProtocol), "protocol");
  EXPECT_STREQ(shard::worker_fault_name(WorkerFault::kHeartbeat),
               "heartbeat");
  EXPECT_STREQ(shard::worker_fault_name(WorkerFault::kSpawn), "spawn");
}

TEST(ShardProtocol, SpecHexIsTheJournalHeaderFormat) {
  EXPECT_EQ(shard::spec_hex(0), "0000000000000000");
  EXPECT_EQ(shard::spec_hex(0xabcull), "0000000000000abc");
}

// --- the kWorker error class ------------------------------------------------

TEST(ShardErrors, WorkerStatusRoundTripsAndMaps) {
  EXPECT_STREQ(machine::run_status_name(RunStatus::kWorker), "worker");
  std::optional<RunStatus> back = machine::run_status_from_name("worker");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, RunStatus::kWorker);
  EXPECT_EQ(machine::run_status_from_error(ErrorKind::kWorker),
            RunStatus::kWorker);
  EXPECT_STREQ(vlt::error_kind_name(ErrorKind::kWorker), "worker");
}

// --- temp-dir fixture -------------------------------------------------------

class ShardFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("vltshard-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

/// Three cheap, healthy cells.
SweepSpec small_spec() {
  SweepSpec spec;
  spec.add(MachineConfig::base(), "multprec", Variant::base());
  spec.add(MachineConfig::base(), "mpenc", Variant::base());
  spec.add(MachineConfig::base(), "trfd", Variant::base());
  return spec;
}

// --- Journal::merge ---------------------------------------------------------

TEST_F(ShardFsTest, MergeUnionsShardJournalsAndCountsDuplicates) {
  SweepSpec spec = small_spec();
  std::uint64_t digest = campaign::spec_digest(spec);
  CampaignOptions opts;
  opts.threads = 1;
  RunSet set = Campaign(opts).run(spec);

  // Shard 0 recorded cells 0 and 1; shard 1 recorded 1 (a deposed
  // worker's late duplicate) and 2.
  std::string w0 = (dir_ / "j.w0.jsonl").string();
  std::string w1 = (dir_ / "j.w1.jsonl").string();
  {
    Journal j0;
    j0.open(w0, digest, spec.size(), {}, 0);
    j0.append(0, spec.cells()[0].key(), set.at(0));
    j0.append(1, spec.cells()[1].key(), set.at(1));
    Journal j1;
    j1.open(w1, digest, spec.size(), {}, 1);
    j1.append(1, spec.cells()[1].key(), set.at(1));
    j1.append(2, spec.cells()[2].key(), set.at(2));
  }

  std::size_t dups = 0;
  std::map<std::size_t, RunResult> merged = Journal::merge(
      {w0, w1, (dir_ / "j.w2.jsonl").string()},  // w2 never existed: skipped
      digest, spec.size(), &dups);
  EXPECT_EQ(dups, 1u);
  ASSERT_EQ(merged.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(merged.at(i).to_json().dump(), set.at(i).to_json().dump());
}

TEST_F(ShardFsTest, MergeRefusesAForeignShardJournal) {
  SweepSpec spec = small_spec();
  std::uint64_t digest = campaign::spec_digest(spec);
  std::string w0 = (dir_ / "j.w0.jsonl").string();
  Journal j0;
  j0.open(w0, digest + 1, spec.size(), {}, 0);  // wrong sweep
  EXPECT_SIM_ERROR((void)Journal::merge({w0}, digest, spec.size()),
                   "different sweep");
}

TEST_F(ShardFsTest, MergeToleratesATornShardTail) {
  SweepSpec spec = small_spec();
  std::uint64_t digest = campaign::spec_digest(spec);
  CampaignOptions opts;
  opts.threads = 1;
  RunSet set = Campaign(opts).run(spec);

  std::string w0 = (dir_ / "j.w0.jsonl").string();
  {
    Journal j0;
    j0.open(w0, digest, spec.size(), {}, 0);
    j0.append(0, spec.cells()[0].key(), set.at(0));
    j0.append(1, spec.cells()[1].key(), set.at(1));
  }
  // SIGKILL mid-append: tear the last line in half.
  std::ifstream in(w0);
  std::string line, kept;
  for (int i = 0; i < 2 && std::getline(in, line); ++i) kept += line + "\n";
  ASSERT_TRUE(std::getline(in, line));
  kept += line.substr(0, line.size() / 2);
  in.close();
  std::ofstream(w0, std::ios::trunc) << kept;

  std::map<std::size_t, RunResult> merged =
      Journal::merge({w0}, digest, spec.size());
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.at(0).to_json().dump(), set.at(0).to_json().dump());
}

// --- coordinator degraded modes (no real worker processes needed) -----------

TEST_F(ShardFsTest, SpawnFailureFallsBackInProcessByteIdentically) {
  SweepSpec spec = small_spec();
  CampaignOptions serial_opts;
  serial_opts.threads = 1;
  std::string golden = Campaign(serial_opts).run(spec).to_json().dump(1);

  ::setenv("VLTSHARD_SPAWN_FAIL", "1", 1);
  shard::ShardOptions opts;
  opts.workers = 2;
  opts.worker_binary = "/no/such/binary";
  opts.journal_base = (dir_ / "shard").string();
  opts.quiet = true;
  shard::ShardCoordinator coordinator(opts);
  RunSet set = coordinator.run(spec);
  ::unsetenv("VLTSHARD_SPAWN_FAIL");

  EXPECT_EQ(set.to_json().dump(1), golden);
  stats::Snapshot snap = coordinator.stats_snapshot();
  EXPECT_EQ(snap.counter("shard.fallback_cells"), spec.size());
  EXPECT_EQ(snap.counter("shard.workers_spawned"), 0u);
  // The fallback journals too: a crash during fallback is resumable.
  EXPECT_TRUE(fs::exists(dir_ / "shard.w0.jsonl"));
  EXPECT_TRUE(fs::exists(dir_ / "shard.merged.jsonl"));
}

TEST_F(ShardFsTest, ResumeReplaysCompletedShardJournalsWithoutSpawning) {
  SweepSpec spec = small_spec();
  std::uint64_t digest = campaign::spec_digest(spec);
  CampaignOptions serial_opts;
  serial_opts.threads = 1;
  RunSet serial = Campaign(serial_opts).run(spec);

  // A killed coordinator left two shard journals covering every cell.
  {
    Journal j0;
    j0.open((dir_ / "shard.w0.jsonl").string(), digest, spec.size(), {}, 0);
    j0.append(0, spec.cells()[0].key(), serial.at(0));
    j0.append(2, spec.cells()[2].key(), serial.at(2));
    Journal j1;
    j1.open((dir_ / "shard.w1.jsonl").string(), digest, spec.size(), {}, 1);
    j1.append(1, spec.cells()[1].key(), serial.at(1));
  }

  shard::ShardOptions opts;
  opts.workers = 2;
  opts.worker_binary = "/no/such/binary";  // must never be needed
  opts.journal_base = (dir_ / "shard").string();
  opts.resume = true;
  opts.quiet = true;
  shard::ShardCoordinator coordinator(opts);
  RunSet set = coordinator.run(spec);

  EXPECT_EQ(set.to_json().dump(1), serial.to_json().dump(1));
  EXPECT_EQ(set.resumed(), 3u);
  EXPECT_EQ(coordinator.stats_snapshot().counter("shard.workers_spawned"),
            0u);
  EXPECT_TRUE(fs::exists(dir_ / "shard.merged.jsonl"));
}

TEST_F(ShardFsTest, ResumeRefusesJournalsFromADifferentGrid) {
  SweepSpec spec = small_spec();
  {
    Journal j0;
    j0.open((dir_ / "shard.w0.jsonl").string(),
            campaign::spec_digest(spec) ^ 0xff, spec.size(), {}, 0);
  }
  shard::ShardOptions opts;
  opts.worker_binary = "/no/such/binary";
  opts.journal_base = (dir_ / "shard").string();
  opts.resume = true;
  opts.quiet = true;
  shard::ShardCoordinator coordinator(opts);
  EXPECT_SIM_ERROR((void)coordinator.run(spec), "different sweep");
}

TEST_F(ShardFsTest, FreshRunRemovesStaleShardJournals) {
  SweepSpec spec = small_spec();
  // A stale journal from a *different* sweep is lying around; a fresh
  // (non-resume) run must clear it, not trip over it.
  {
    Journal j0;
    j0.open((dir_ / "shard.w7.jsonl").string(), 0x1234, 99, {}, 7);
  }
  ::setenv("VLTSHARD_SPAWN_FAIL", "1", 1);  // in-process; no binary needed
  shard::ShardOptions opts;
  opts.worker_binary = "/no/such/binary";
  opts.journal_base = (dir_ / "shard").string();
  opts.quiet = true;
  shard::ShardCoordinator coordinator(opts);
  RunSet set = coordinator.run(spec);
  ::unsetenv("VLTSHARD_SPAWN_FAIL");
  EXPECT_TRUE(set.all_ok());
  EXPECT_FALSE(fs::exists(dir_ / "shard.w7.jsonl"));
}

TEST_F(ShardFsTest, QuarantinedCellSerializesWithWorkerStatus) {
  // The synthesized poison-cell result must round-trip the report schema
  // like any simulated failure.
  RunResult r;
  r.workload = "mpenc";
  r.config = "base";
  r.variant = "base";
  r.status = RunStatus::kWorker;
  r.attempts = 0;
  r.error = "quarantined after 3 worker crashes; last signal fault";
  std::optional<RunResult> back = RunResult::from_json(r.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, RunStatus::kWorker);
  EXPECT_EQ(back->to_json().dump(), r.to_json().dump());
}

}  // namespace
}  // namespace vlt
