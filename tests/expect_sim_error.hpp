// EXPECT_SIM_ERROR(stmt, substr): assert that `stmt` throws vlt::SimError
// with `substr` somewhere in its what() (which is "file:line: message").
//
// This replaces EXPECT_DEATH for simulator self-checks: VLT_CHECK throws
// a typed SimError instead of aborting the process, so the old fork-and-
// match-stderr death tests became plain try/catch — immensely faster, and
// they run unchanged under the sanitizer presets (EXPECT_DEATH and ASan
// never got along).
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"

#define EXPECT_SIM_ERROR(stmt, substr)                                     \
  do {                                                                     \
    bool vlt_sim_error_caught = false;                                     \
    try {                                                                  \
      stmt;                                                                \
    } catch (const ::vlt::SimError& vlt_sim_error) {                       \
      vlt_sim_error_caught = true;                                         \
      EXPECT_NE(std::string(vlt_sim_error.what()).find(substr),            \
                std::string::npos)                                         \
          << "SimError \"" << vlt_sim_error.what()                         \
          << "\" does not mention \"" << (substr) << "\"";                 \
    }                                                                      \
    EXPECT_TRUE(vlt_sim_error_caught)                                      \
        << "expected a vlt::SimError from: " #stmt;                        \
  } while (0)
