// Unit tests for the ISA layer: opcode metadata, dependence analysis,
// the assembler (labels, constant synthesis), and the disassembler.
#include <gtest/gtest.h>

#include "isa/disasm.hpp"
#include "isa/opcode.hpp"
#include "isa/program.hpp"

namespace vlt::isa {
namespace {

TEST(OpcodeTable, EveryOpcodeHasAName) {
  for (std::size_t i = 0; i < kNumOpcodes; ++i) {
    const OpInfo& info = op_info(static_cast<Opcode>(i));
    ASSERT_NE(info.name, nullptr);
    EXPECT_GT(std::string(info.name).size(), 0u);
  }
}

TEST(OpcodeTable, VectorClassification) {
  EXPECT_TRUE(is_vector(Opcode::kVadd));
  EXPECT_TRUE(is_vector(Opcode::kVfredsum));
  EXPECT_TRUE(is_vector(Opcode::kVscatter));
  EXPECT_FALSE(is_vector(Opcode::kAdd));
  EXPECT_FALSE(is_vector(Opcode::kSetvl));  // executes in the scalar unit
  EXPECT_FALSE(is_vector(Opcode::kBarrier));
}

TEST(OpcodeTable, MemClassification) {
  EXPECT_TRUE(is_load(Opcode::kLoad));
  EXPECT_TRUE(is_store(Opcode::kStore));
  EXPECT_TRUE(is_load(Opcode::kVgather));
  EXPECT_TRUE(is_store(Opcode::kVscatter));
  EXPECT_FALSE(is_mem(Opcode::kVfma));
}

TEST(OpcodeTable, LatenciesArePositive) {
  for (std::size_t i = 0; i < kNumOpcodes; ++i)
    EXPECT_GE(op_info(static_cast<Opcode>(i)).latency, 1);
}

TEST(DependenceAnalysis, ScalarAdd) {
  Instruction inst{Opcode::kAdd, 3, 1, 2, 0, 0};
  RegList srcs = scalar_src_regs(inst);
  ASSERT_EQ(srcs.n, 2u);
  EXPECT_EQ(srcs.r[0], 1);
  EXPECT_EQ(srcs.r[1], 2);
  RegIdx rd;
  ASSERT_TRUE(scalar_dst_reg(inst, rd));
  EXPECT_EQ(rd, 3);
  EXPECT_EQ(vector_src_regs(inst).n, 0u);
}

TEST(DependenceAnalysis, VectorScalarForm) {
  // vadd.vs v3, v1, s7: reads vector v1 and scalar s7.
  Instruction inst{Opcode::kVadd, 3, 1, 7, 0, kFlagSrc2Scalar};
  RegList ss = scalar_src_regs(inst);
  ASSERT_EQ(ss.n, 1u);
  EXPECT_EQ(ss.r[0], 7);
  RegList vs = vector_src_regs(inst);
  ASSERT_EQ(vs.n, 1u);
  EXPECT_EQ(vs.r[0], 1);
  RegIdx vd;
  ASSERT_TRUE(vector_dst_reg(inst, vd));
  EXPECT_EQ(vd, 3);
}

TEST(DependenceAnalysis, VfmaReadsItsDestination) {
  Instruction inst{Opcode::kVfma, 4, 1, 2, 0, 0};
  RegList vs = vector_src_regs(inst);
  ASSERT_EQ(vs.n, 3u);
  EXPECT_EQ(vs.r[2], 4);
}

TEST(DependenceAnalysis, MaskedOpReadsOldDestinationAndMask) {
  Instruction inst{Opcode::kVadd, 5, 1, 2, 0, kFlagMasked};
  RegList vs = vector_src_regs(inst);
  ASSERT_EQ(vs.n, 3u);  // v1, v2, old v5
  EXPECT_EQ(vs.r[2], 5);
  EXPECT_TRUE(reads_mask(inst));
}

TEST(DependenceAnalysis, VectorMemoryOperands) {
  Instruction vld{Opcode::kVload, 4, 16, 0, 0, 0};
  EXPECT_EQ(scalar_src_regs(vld).n, 1u);  // base address
  EXPECT_EQ(vector_src_regs(vld).n, 0u);
  RegIdx vd;
  ASSERT_TRUE(vector_dst_reg(vld, vd));
  EXPECT_EQ(vd, 4);

  Instruction vst{Opcode::kVstore, 4, 16, 0, 0, 0};
  EXPECT_FALSE(vector_dst_reg(vst, vd));
  RegList vs = vector_src_regs(vst);
  ASSERT_EQ(vs.n, 1u);  // store data
  EXPECT_EQ(vs.r[0], 4);

  Instruction sc{Opcode::kVscatter, 4, 16, 5, 0, 0};
  RegList scs = vector_src_regs(sc);
  ASSERT_EQ(scs.n, 2u);  // offsets + data
}

TEST(DependenceAnalysis, ReductionWritesScalar) {
  Instruction inst{Opcode::kVfredsum, 9, 1, 0, 0, 0};
  RegIdx rd;
  ASSERT_TRUE(scalar_dst_reg(inst, rd));
  EXPECT_EQ(rd, 9);
  RegIdx vd;
  EXPECT_FALSE(vector_dst_reg(inst, vd));
}

TEST(DependenceAnalysis, CompareWritesMaskOnly) {
  Instruction inst{Opcode::kVcmplt, 0, 1, 2, 0, 0};
  EXPECT_TRUE(writes_mask(inst));
  RegIdx vd;
  EXPECT_FALSE(vector_dst_reg(inst, vd));
}

TEST(ProgramBuilder, BackwardBranchOffsets) {
  ProgramBuilder b("loop");
  auto top = b.label();
  b.li(1, 0);            // 0
  b.bind(top);           // -> pc 1
  b.addi(1, 1, 1);       // 1
  b.blt(1, 2, top);      // 2: taken -> pc = 3 + imm = 1, so imm = -2
  b.halt();              // 3
  Program p = b.build();
  EXPECT_EQ(p.code()[2].imm, -2);
}

TEST(ProgramBuilder, ForwardBranchOffsets) {
  ProgramBuilder b("fwd");
  auto out = b.label();
  b.beq(1, 2, out);  // 0: taken -> pc = 1 + imm
  b.nop();           // 1
  b.nop();           // 2
  b.bind(out);       // -> pc 3, imm = 2
  b.halt();
  Program p = b.build();
  EXPECT_EQ(p.code()[0].imm, 2);
}

TEST(ProgramBuilder, SmallConstantsAreOneInstruction) {
  ProgramBuilder b("li");
  b.li(1, 42);
  b.li(2, -7);
  EXPECT_EQ(b.pc(), 2u);
}

TEST(ProgramBuilder, LargeConstantsSynthesize) {
  ProgramBuilder b("li64");
  b.li(1, 0x123456789All);
  Program p = b.build();
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.code()[0].op, Opcode::kLi);
  EXPECT_EQ(p.code()[1].op, Opcode::kLiHi);
}

TEST(ProgramBuilder, InstructionAddresses) {
  ProgramBuilder b("addr", /*text_base=*/0x1000);
  b.nop();
  b.nop();
  Program p = b.build();
  EXPECT_EQ(p.inst_addr(0), 0x1000u);
  EXPECT_EQ(p.inst_addr(1), 0x1008u);
}

TEST(Disasm, RendersCommonForms) {
  EXPECT_EQ(disassemble(Instruction{Opcode::kAdd, 3, 1, 2, 0, 0}),
            "add s3, s1, s2");
  EXPECT_EQ(disassemble(Instruction{Opcode::kVadd, 3, 1, 2, 0, 0}),
            "vadd v3, v1, v2");
  EXPECT_EQ(
      disassemble(Instruction{Opcode::kVadd, 3, 1, 7, 0, kFlagSrc2Scalar}),
      "vadd.vs v3, v1, s7");
}

TEST(Disasm, WholeProgramListing) {
  ProgramBuilder b("two");
  b.nop();
  b.halt();
  std::string listing = disassemble(b.build());
  EXPECT_NE(listing.find("0:\tnop"), std::string::npos);
  EXPECT_NE(listing.find("1:\thalt"), std::string::npos);
}

}  // namespace
}  // namespace vlt::isa
