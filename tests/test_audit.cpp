// Audit-layer tests: invariant sinks, lockstep co-simulation, the barrier
// watchdog, and the guarantee that audit mode is purely observational
// (bit-identical cycle counts with the auditor on or off).
#include <gtest/gtest.h>

#include "expect_sim_error.hpp"

#include "audit/auditor.hpp"
#include "audit/lockstep.hpp"
#include "audit/sink.hpp"
#include "func/executor.hpp"
#include "func/memory.hpp"
#include "isa/program.hpp"
#include "machine/processor.hpp"
#include "machine/simulator.hpp"
#include "vltctl/barrier.hpp"
#include "workloads/all_workloads.hpp"
#include "workloads/workload.hpp"

namespace vlt {
namespace {

using machine::MachineConfig;
using machine::Phase;
using machine::PhaseMode;
using machine::Processor;
using machine::RunResult;
using machine::Simulator;
using workloads::make_workload;
using workloads::Variant;
using workloads::workload_names;
using workloads::WorkloadPtr;

/// Reduced-size instances keep the two-run (audit off/on) sweeps fast;
/// the invariants are size-independent.
WorkloadPtr make_small(const std::string& name) {
  if (name == "radix") return std::make_unique<workloads::RadixWorkload>(2048);
  if (name == "ocean") return std::make_unique<workloads::OceanWorkload>(32, 2);
  if (name == "barnes") return std::make_unique<workloads::BarnesWorkload>(96);
  return make_workload(name);
}

// --- sink plumbing ---------------------------------------------------------

TEST(AuditSink, ViolationFormatsCheckComponentCycleDetail) {
  audit::Violation v{audit::Check::kLaneOccupancy, "vu", 42, "too many lanes"};
  EXPECT_EQ(v.to_string(), "audit[lane-occupancy] vu @cycle 42: too many lanes");
}

TEST(AuditSink, RecordingSinkCapturesAndFilters) {
  audit::RecordingSink sink;
  sink.expect(true, audit::Check::kCacheCounters, "l2", 1, "fine");
  EXPECT_TRUE(sink.violations.empty());
  sink.expect(false, audit::Check::kCacheCounters, "l2", 2, "broken");
  ASSERT_EQ(sink.violations.size(), 1u);
  EXPECT_TRUE(sink.saw(audit::Check::kCacheCounters));
  EXPECT_FALSE(sink.saw(audit::Check::kLockstep));
}

TEST(AuditSink, ThrowSinkThrowsWithDiagnostic) {
  audit::ThrowSink sink;
  audit::Violation v{audit::Check::kBarrierProtocol, "barrier", 7, "overfill"};
  EXPECT_SIM_ERROR(sink.report(v), "barrier-protocol");
}

TEST(AuditConfig, DefaultsAreOff) {
  audit::AuditConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  EXPECT_TRUE(audit::AuditConfig::full().enabled());
}

// --- shadow-memory comparison ---------------------------------------------

TEST(FuncMemoryDiff, IdenticalImagesHaveNoDifference) {
  func::FuncMemory a;
  a.write64(0x1000, 7);
  a.write64(0x80000, 9);
  func::FuncMemory b;
  b.copy_from(a);
  EXPECT_FALSE(a.first_difference(b).has_value());
  EXPECT_FALSE(b.first_difference(a).has_value());
}

TEST(FuncMemoryDiff, ReportsLowestDifferingWord) {
  func::FuncMemory a;
  func::FuncMemory b;
  a.write64(0x2000, 1);
  a.write64(0x9000, 2);
  b.write64(0x9000, 3);
  auto diff = a.first_difference(b);
  ASSERT_TRUE(diff.has_value());
  // 0x2000 differs (1 vs absent-as-0) and is the lowest address.
  EXPECT_NE(diff->find("0x2000"), std::string::npos) << *diff;
}

TEST(FuncMemoryDiff, AbsentPagesCompareAsZero) {
  func::FuncMemory a;
  func::FuncMemory b;
  a.write64(0x3000, 0);  // allocates a page of zeros
  EXPECT_FALSE(a.first_difference(b).has_value());
}

// --- injected invariant violations ----------------------------------------

TEST(Auditor, ElementCountMismatchIsReported) {
  audit::RecordingSink sink;
  audit::AuditConfig cfg;
  cfg.invariants = true;
  audit::Auditor auditor(cfg, &sink);
  auditor.note_phase("p0", 100, /*element_ops_total=*/50);
  stats::Histogram vl_hist;
  vl_hist.add(10, 5);  // 50 element ops in the histogram
  func::FuncMemory mem;
  // Claim 60 element ops against a histogram recording 50.
  auditor.finish_run(/*total=*/100, /*opportunity=*/0, /*element_ops=*/60,
                     vl_hist, mem);
  EXPECT_TRUE(sink.saw(audit::Check::kElementAccounting));
}

TEST(Auditor, ConsistentRunHasNoViolations) {
  audit::RecordingSink sink;
  audit::AuditConfig cfg;
  cfg.invariants = true;
  audit::Auditor auditor(cfg, &sink);
  auditor.note_overhead(10);
  auditor.note_phase("p0", 40, 50);
  auditor.note_phase("p1", 50, 50);
  stats::Histogram vl_hist;
  vl_hist.add(10, 5);
  func::FuncMemory mem;
  auditor.finish_run(/*total=*/100, /*opportunity=*/90, /*element_ops=*/50,
                     vl_hist, mem);
  EXPECT_TRUE(sink.violations.empty()) << sink.violations[0].to_string();
}

TEST(Auditor, PhaseCycleSumMismatchThrows) {
  audit::AuditConfig cfg;
  cfg.invariants = true;
  audit::Auditor auditor(cfg);  // default throwing sink
  auditor.note_phase("p0", 40, 0);
  stats::Histogram vl_hist;
  func::FuncMemory mem;
  EXPECT_SIM_ERROR(auditor.finish_run(100, 0, 0, vl_hist, mem),
                   "run-accounting");
}

// --- barrier protocol ------------------------------------------------------

TEST(BarrierAudit, ArriveWithoutBeginPhaseThrows) {
  vltctl::BarrierController barrier;
  EXPECT_SIM_ERROR(barrier.arrive(0), "begin_phase");
}

TEST(BarrierAudit, OldestPendingTracksFirstArrival) {
  vltctl::BarrierController barrier;
  barrier.begin_phase(2, 10);
  EXPECT_FALSE(barrier.oldest_pending().valid);
  barrier.arrive(100);
  auto p = barrier.oldest_pending();
  ASSERT_TRUE(p.valid);
  EXPECT_EQ(p.first_arrival, 100u);
  EXPECT_EQ(p.arrivals, 1u);
  EXPECT_EQ(p.expected, 2u);
  barrier.arrive(150);
  EXPECT_FALSE(barrier.oldest_pending().valid);
}

TEST(BarrierAudit, StuckBarrierTripsWatchdogInsteadOfHanging) {
  // Lane-thread phase where thread 0 waits at a barrier thread 1 never
  // reaches: without the watchdog this would spin to the 2e9-cycle
  // budget; with it, the auditor throws a deadlock diagnostic.
  MachineConfig cfg = MachineConfig::v4_cmt();
  cfg.audit.invariants = true;
  cfg.audit.barrier_watchdog = 5'000;

  isa::ProgramBuilder waiter("waiter");
  waiter.barrier();
  waiter.halt();
  isa::ProgramBuilder deserter("deserter");
  deserter.halt();

  Phase phase;
  phase.label = "stuck";
  phase.mode = PhaseMode::kLaneThreads;
  phase.programs.push_back(waiter.build());
  phase.programs.push_back(deserter.build());

  audit::Auditor auditor(cfg.audit);  // throwing sink
  Processor proc(cfg, &auditor);
  EXPECT_SIM_ERROR(proc.run_phase(phase), "deadlock");
}

// --- executor guard --------------------------------------------------------

TEST(ExecutorAudit, VectorOpAboveMaxVlThrows) {
  func::FuncMemory mem;
  func::Executor exec(mem);
  func::ArchState st;
  st.set_vl(8);
  func::ExecContext ctx{0, 1, /*max_vl=*/4};
  isa::Instruction vadd;
  vadd.op = isa::Opcode::kVadd;
  std::vector<Addr> addrs;
  EXPECT_SIM_ERROR(exec.execute(vadd, st, ctx, addrs), "max VL");
}

// --- lockstep unit behaviour ----------------------------------------------

isa::Program tiny_program() {
  isa::ProgramBuilder b("tiny");
  b.li(1, 5);
  b.addi(1, 1, 3);
  b.halt();
  return b.build();
}

TEST(Lockstep, CleanReplayReportsNothing) {
  audit::RecordingSink sink;
  audit::Lockstep ls(sink);
  isa::Program prog = tiny_program();
  ls.begin_phase({{&prog, 0, 1, 0}});

  // Drive a faithful "primary": execute the same program independently.
  func::FuncMemory mem;
  func::Executor exec(mem);
  func::ArchState st;
  func::ExecContext ctx{0, 1, 0};
  std::vector<Addr> addrs;
  std::uint64_t pc = 0;
  for (;;) {
    const isa::Instruction& inst = prog.at(pc);
    st.set_pc(pc);
    func::ExecResult res = exec.execute(inst, st, ctx, addrs);
    ls.on_execute(0, inst, pc, res, addrs, st, pc);
    if (res.halted) break;
    pc = res.next_pc;
  }
  EXPECT_TRUE(sink.violations.empty()) << sink.violations[0].to_string();
  EXPECT_EQ(ls.instructions_replayed(), 3u);
}

TEST(Lockstep, DivergentRegisterIsReported) {
  audit::RecordingSink sink;
  audit::Lockstep ls(sink);
  isa::Program prog = tiny_program();
  ls.begin_phase({{&prog, 0, 1, 0}});

  func::FuncMemory mem;
  func::Executor exec(mem);
  func::ArchState st;
  func::ExecContext ctx{0, 1, 0};
  std::vector<Addr> addrs;
  st.set_pc(0);
  func::ExecResult res = exec.execute(prog.at(0), st, ctx, addrs);
  st.set_sreg(1, 999);  // corrupt the "pipeline" state after execution
  ls.on_execute(0, prog.at(0), 0, res, addrs, st, 0);
  EXPECT_TRUE(sink.saw(audit::Check::kLockstep));
}

TEST(Lockstep, SkippedInstructionIsReported) {
  audit::RecordingSink sink;
  audit::Lockstep ls(sink);
  isa::Program prog = tiny_program();
  ls.begin_phase({{&prog, 0, 1, 0}});

  func::FuncMemory mem;
  func::Executor exec(mem);
  func::ArchState st;
  func::ExecContext ctx{0, 1, 0};
  std::vector<Addr> addrs;
  st.set_pc(1);  // skip the first instruction entirely
  func::ExecResult res = exec.execute(prog.at(1), st, ctx, addrs);
  ls.on_execute(0, prog.at(1), 1, res, addrs, st, 0);
  EXPECT_TRUE(sink.saw(audit::Check::kLockstep));
}

TEST(Lockstep, UnseededMemoryDivergesOnFinalCompare) {
  audit::RecordingSink sink;
  audit::Lockstep ls(sink);
  func::FuncMemory primary;
  primary.write64(0x4000, 0xdead);
  ls.compare_final_memory(primary, 0);
  EXPECT_TRUE(sink.saw(audit::Check::kLockstep));
}

// --- whole-machine co-simulation ------------------------------------------
// Every workload, with invariants + lockstep enabled, must (a) raise no
// violations and (b) produce bit-identical cycle counts to the audit-off
// run: the auditor is observational only.

struct CosimCase {
  std::string app;
  std::string config;
  Variant variant;
  std::string tag;
};

std::vector<CosimCase> cosim_cases() {
  std::vector<CosimCase> out;
  for (const std::string& app : workload_names()) {
    auto w = make_workload(app);
    out.push_back({app, "base", Variant::base(), app + "_base1"});
    if (w->supports(Variant::Kind::kVectorThreads)) {
      out.push_back(
          {app, "V2-SMT", Variant::vector_threads(2), app + "_vt2"});
      out.push_back(
          {app, "V4-SMT", Variant::vector_threads(4), app + "_vt4"});
    }
    if (w->supports(Variant::Kind::kLaneThreads))
      out.push_back({app, "V4-CMT", Variant::lane_threads(4), app + "_lt4"});
  }
  return out;
}

class Cosim : public ::testing::TestWithParam<CosimCase> {};

TEST_P(Cosim, AuditedRunIsCleanAndCycleIdentical) {
  const CosimCase& c = GetParam();
  WorkloadPtr w = make_small(c.app);

  MachineConfig plain = MachineConfig::by_name(c.config);
  RunResult off = Simulator(plain).run(*w, c.variant);
  ASSERT_TRUE(off.verified) << off.error;

  MachineConfig audited = MachineConfig::by_name(c.config);
  audited.audit = audit::AuditConfig::full();
  audit::RecordingSink sink;
  Simulator sim(audited);
  sim.set_audit_sink(&sink);
  RunResult on = sim.run(*w, c.variant);
  ASSERT_TRUE(on.verified) << on.error;

  EXPECT_TRUE(sink.violations.empty())
      << sink.violations.size() << " violations, first: "
      << sink.violations[0].to_string();
  EXPECT_EQ(off.cycles, on.cycles);
  EXPECT_EQ(off.scalar_insts, on.scalar_insts);
  EXPECT_EQ(off.vector_insts, on.vector_insts);
  EXPECT_EQ(off.element_ops, on.element_ops);
}

INSTANTIATE_TEST_SUITE_P(AllApps, Cosim, ::testing::ValuesIn(cosim_cases()),
                         [](const auto& info) { return info.param.tag; });

}  // namespace
}  // namespace vlt
