// Unit tests for the per-lane 2-way in-order scalar cores (paper §5).
#include <gtest/gtest.h>

#include "expect_sim_error.hpp"

#include "func/memory.hpp"
#include "isa/program.hpp"
#include "lanecore/lane_core.hpp"
#include "mem/l2_cache.hpp"
#include "mem/main_memory.hpp"
#include "vltctl/barrier.hpp"

namespace vlt::lanecore {
namespace {

using isa::ProgramBuilder;

class LaneCoreTest : public ::testing::Test {
 protected:
  LaneCoreTest() : main_mem_({90, 4}), l2_({}, main_mem_) {}

  Cycle run(const isa::Program& prog, LaneCoreParams params = {}) {
    // Fresh timing state per run: the simulated clock restarts at 0.
    main_mem_ = mem::MainMemory({90, 4});
    l2_ = mem::L2Cache({}, main_mem_);
    core_ = std::make_unique<LaneCore>(params, mem_, l2_, barrier_);
    barrier_.begin_phase(1, 10);
    core_->start(prog, 0, 1, 0);
    Cycle now = 0;
    while (!core_->done() && now < 1'000'000) core_->tick(now), ++now;
    EXPECT_TRUE(core_->done()) << "lane core did not finish";
    return now;
  }

  func::FuncMemory mem_;
  mem::MainMemory main_mem_;
  mem::L2Cache l2_;
  vltctl::BarrierController barrier_;
  std::unique_ptr<LaneCore> core_;
};

TEST_F(LaneCoreTest, ExecutesStraightLine) {
  ProgramBuilder b("line");
  b.li(1, 6);
  b.li(2, 7);
  b.mul(3, 1, 2);
  b.li(4, 0x9000);
  b.store(4, 3);
  b.halt();
  run(b.build());
  EXPECT_EQ(mem_.read_i64(0x9000), 42);
}

TEST_F(LaneCoreTest, LoopWithLoadsAndStores) {
  for (int i = 0; i < 16; ++i) mem_.write_i64(0x8000 + 8 * i, i);
  ProgramBuilder b("scale");
  b.li(1, 0x8000);
  b.li(2, 0xA000);
  b.li(3, 16);
  auto loop = b.label();
  b.bind(loop);
  b.load(4, 1);
  b.slli(4, 4, 1);  // *2
  b.store(2, 4);
  b.addi(1, 1, 8);
  b.addi(2, 2, 8);
  b.addi(3, 3, -1);
  b.bne(3, 0, loop);
  b.halt();
  run(b.build());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(mem_.read_i64(0xA000 + 8 * i), 2 * i);
}

TEST_F(LaneCoreTest, InOrderStallsOnLoadUse) {
  // load -> use chains pay the L2 latency every iteration.
  ProgramBuilder b("chain");
  for (int i = 0; i < 8; ++i)
    mem_.write_i64(0x100000 + 8192 * i, 0x100000 + 8192 * (i + 1));
  b.li(1, 0x100000);
  for (int i = 0; i < 8; ++i) b.load(1, 1);
  b.halt();
  Cycle t = run(b.build());
  EXPECT_GT(t, 8u * 10u);  // at least 8 L2 hits of 10 cycles
}

TEST_F(LaneCoreTest, NonBlockingLoadsOverlap) {
  // Independent loads overlap their (cold) L2 misses through the
  // decoupling queue; a dependent chase pays each miss serially.
  ProgramBuilder dep("dependent");
  ProgramBuilder indep("independent");
  for (auto* b : {&dep, &indep}) b->li(1, 0x40000);
  // Pointers 8 KB apart: every access is a distinct line (cold miss).
  for (int i = 0; i < 12; ++i)
    mem_.write_i64(0x40000 + 8192 * i, 0x40000 + 8192 * (i + 1));
  for (int i = 0; i < 12; ++i) dep.load(1, 1);
  dep.halt();
  for (int i = 0; i < 12; ++i)
    indep.load(static_cast<RegIdx>(2 + i), 1, 8192 * i);
  indep.halt();
  Cycle t_dep = run(dep.build());
  Cycle t_indep = run(indep.build());
  EXPECT_LT(t_indep * 2, t_dep);
}

TEST_F(LaneCoreTest, DualIssueBeatsSingleIssue) {
  // Independent chains in a loop small enough for the 4 KB lane I-cache.
  ProgramBuilder b("ilp");
  for (int r = 1; r <= 6; ++r) b.li(r, r);
  b.li(7, 300);
  auto loop = b.label();
  b.bind(loop);
  for (int rep = 0; rep < 5; ++rep)
    for (int r = 1; r <= 6; ++r) b.addi(r, r, 1);
  b.addi(7, 7, -1);
  b.bne(7, 0, loop);
  b.halt();
  isa::Program p = b.build();
  Cycle two_way = run(p);
  LaneCoreParams narrow;
  narrow.width = 1;
  Cycle one_way = run(p, narrow);
  EXPECT_GT(static_cast<double>(one_way) / two_way, 1.5);
}

TEST_F(LaneCoreTest, SmallICacheThrashesOnBigLoops) {
  // A loop body larger than 4 KB (512 instructions) misses every pass.
  ProgramBuilder big("bigloop");
  big.li(1, 20);  // iterations
  auto loop = big.label();
  big.bind(loop);
  for (int i = 0; i < 700; ++i) big.addi(2, 2, 1);
  big.addi(1, 1, -1);
  big.bne(1, 0, loop);
  big.halt();
  core_ = std::make_unique<LaneCore>(LaneCoreParams{}, mem_, l2_, barrier_);
  barrier_.begin_phase(1, 10);
  core_->start(big.build(), 0, 1, 0);
  Cycle now = 0;
  while (!core_->done() && now < 2'000'000) core_->tick(now), ++now;
  ASSERT_TRUE(core_->done());
  EXPECT_GT(core_->icache().misses(), 20u * 10u);
}

TEST_F(LaneCoreTest, VectorInstructionIsRejected) {
  ProgramBuilder b("bad");
  b.setvlmax(1);
  b.vadd(1, 2, 3);
  b.halt();
  isa::Program p = b.build();
  EXPECT_SIM_ERROR(run(p), "vector instruction");
}

TEST_F(LaneCoreTest, StoreQueueDecouplesScatteredStores) {
  // 24 stores to distinct cold lines: a deep store queue lets the core
  // run ahead; a single-entry queue serializes on the line fills.
  ProgramBuilder b("scatter");
  b.li(1, 0x300000);
  for (int i = 0; i < 24; ++i) b.store(1, 2, i * 4096);
  b.halt();
  isa::Program p = b.build();
  LaneCoreParams one;
  one.store_queue = 1;
  Cycle serialized = run(p, one);
  LaneCoreParams deep;
  deep.store_queue = 32;
  Cycle decoupled = run(p, deep);
  EXPECT_LT(decoupled * 3, serialized);
}

TEST_F(LaneCoreTest, BarrierDrainsOutstandingStores) {
  // A store followed by a barrier: the barrier arrival must wait for the
  // store's (cold miss) completion, so the total run exceeds the miss
  // latency even though the store itself is fire-and-forget.
  ProgramBuilder b("drain");
  b.li(1, 0x310000);
  b.li(2, 5);
  b.store(1, 2);
  b.barrier();
  b.halt();
  Cycle t = run(b.build());
  EXPECT_GT(t, 100u);  // cold miss is 100 cycles
}

TEST_F(LaneCoreTest, MembarIsALocalDrain) {
  ProgramBuilder b("membar");
  b.li(1, 0x320000);
  b.li(2, 7);
  b.store(1, 2);
  b.membar();
  b.load(3, 1);
  b.li(4, 0x320100);
  b.store(4, 3);
  b.halt();
  run(b.build());
  EXPECT_EQ(mem_.read_i64(0x320100), 7);
}

TEST_F(LaneCoreTest, TidAndNthreadsVisible) {
  ProgramBuilder b("tid");
  b.tid(1);
  b.nthreads(2);
  b.li(3, 0x330000);
  b.store(3, 1);
  b.store(3, 2, 8);
  b.halt();
  isa::Program p = b.build();
  main_mem_ = mem::MainMemory({90, 4});
  l2_ = mem::L2Cache({}, main_mem_);
  core_ = std::make_unique<LaneCore>(LaneCoreParams{}, mem_, l2_, barrier_);
  barrier_.begin_phase(1, 10);
  core_->start(p, /*tid=*/5, /*nthreads=*/8, 0);
  Cycle now = 0;
  while (!core_->done() && now < 100000) core_->tick(now), ++now;
  ASSERT_TRUE(core_->done());
  EXPECT_EQ(mem_.read_i64(0x330000), 5);
  EXPECT_EQ(mem_.read_i64(0x330008), 8);
}

TEST_F(LaneCoreTest, EightCoresShareTheL2WithoutCorruption) {
  // Eight lane cores stream disjoint regions concurrently; all results
  // must be exact despite bank contention.
  mem::MainMemory mm({90, 4});
  mem::L2Cache l2({}, mm);
  vltctl::BarrierController bc;
  bc.begin_phase(8, 10);
  std::vector<std::unique_ptr<LaneCore>> cores;
  std::vector<isa::Program> progs;
  for (unsigned t = 0; t < 8; ++t) {
    ProgramBuilder b("t" + std::to_string(t));
    constexpr RegIdx i = 1, p = 16, v = 33;
    b.li(i, 64);
    b.li(p, static_cast<std::int64_t>(0x400000 + 0x10000 * t));
    auto loop = b.label();
    b.bind(loop);
    b.load(v, p);
    b.addi(v, v, 1);
    b.store(p, v);
    b.addi(p, p, 8);
    b.addi(i, i, -1);
    b.bne(i, 0, loop);
    b.barrier();
    b.halt();
    progs.push_back(b.build());
  }
  for (unsigned t = 0; t < 8; ++t) {
    cores.push_back(
        std::make_unique<LaneCore>(LaneCoreParams{}, mem_, l2, bc));
    cores[t]->start(progs[t], t, 8, 0);
  }
  Cycle now = 0;
  bool all_done = false;
  while (!all_done && now < 500000) {
    all_done = true;
    for (auto& c : cores) {
      c->tick(now);
      all_done &= c->done();
    }
    ++now;
  }
  ASSERT_TRUE(all_done);
  for (unsigned t = 0; t < 8; ++t)
    for (unsigned k = 0; k < 64; ++k)
      EXPECT_EQ(mem_.read_i64(0x400000 + 0x10000 * t + 8 * k), 1);
}

TEST_F(LaneCoreTest, TakenBranchPenaltyIsVisible) {
  // A loop of taken branches vs the unrolled equivalent.
  ProgramBuilder loopy("loopy");
  loopy.li(1, 200);
  auto top = loopy.label();
  loopy.bind(top);
  loopy.addi(2, 2, 1);
  loopy.addi(1, 1, -1);
  loopy.bne(1, 0, top);
  loopy.halt();
  Cycle with_branches = run(loopy.build());
  // 200 taken branches x (1 + penalty 2) dominate: at least 600 cycles.
  EXPECT_GE(with_branches, 600u);
}

}  // namespace
}  // namespace vlt::lanecore
