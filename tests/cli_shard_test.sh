#!/usr/bin/env bash
# End-to-end CLI checks for vltshard (docs/SHARD.md): byte-identity of
# the sharded report against a serial vltsweep run, worker-crash
# recovery, poison-cell quarantine, coordinator kill-then---resume,
# spawn-failure fallback, and worker/coordinator grid-mismatch refusal.
#
#   cli_shard_test.sh <vltshard> <vltsweep>
#
# Registered under ctest from tools/CMakeLists.txt.
set -u

VLTSHARD=$1
VLTSWEEP=$2

TMP=$(mktemp -d "${TMPDIR:-/tmp}/vltshard-cli.XXXXXX")
trap 'rm -rf "$TMP"' EXIT
cd "$TMP"

failures=0
check() { # check <name> <expected-rc> <actual-rc>
  if [ "$2" -ne "$3" ]; then
    echo "FAIL: $1: expected exit $2, got $3" >&2
    failures=$((failures + 1))
  else
    echo "ok: $1 (exit $3)"
  fi
}
expect_grep() { # expect_grep <name> <pattern> <file>
  if ! grep -q "$2" "$3"; then
    echo "FAIL: $1: '$2' not found in $3" >&2
    sed 's/^/    /' "$3" >&2
    failures=$((failures + 1))
  else
    echo "ok: $1"
  fi
}
expect_cmp() { # expect_cmp <name> <file-a> <file-b>
  if cmp -s "$2" "$3"; then
    echo "ok: $1"
  else
    echo "FAIL: $1: $2 and $3 differ" >&2
    diff "$2" "$3" | head -20 >&2
    failures=$((failures + 1))
  fi
}

# Six cells: mpenc,trfd x base,V4-CMP x base,vlt4 (vlt4 only pairs
# with the CMP config, so the 2x2x2 request resolves to 6).
GRID=(--workloads mpenc,trfd --configs base,V4-CMP --variants base,vlt4)
SHARD=("$VLTSHARD" --worker-binary "$VLTSWEEP" "${GRID[@]}"
       --no-cache --backoff-ms 20 --format json)

# --- serial golden ----------------------------------------------------------

"$VLTSWEEP" "${GRID[@]}" --threads 1 --no-cache --no-journal --quiet \
    --out serial.json
check "serial vltsweep golden" 0 $?

# --- plain sharded run is byte-identical ------------------------------------

"${SHARD[@]}" --workers 4 --journal-base plain --quiet \
    --out plain.json --stats-out plain.stats 2> plain.err
check "vltshard plain run" 0 $?
expect_cmp "sharded report is byte-identical to serial" serial.json plain.json
expect_grep "merged journal written" '"schema"' plain.merged.jsonl
expect_grep "workers were spawned" '"shard.workers_spawned": 4' plain.stats

# --- worker killed mid-cell: recovered, still identical ---------------------

VLTSHARD_KILL_WORKER=1 "${SHARD[@]}" --workers 2 --journal-base kw \
    --quiet --out kw.json --stats-out kw.stats 2> kw.err
check "vltshard survives a worker SIGKILL" 0 $?
expect_cmp "report identical after worker crash" serial.json kw.json
expect_grep "crash was counted" '"shard.worker_crashes": 1' kw.stats

# --- torn protocol line: result recovered from the worker journal -----------

VLTSHARD_CORRUPT_LINE=1 "${SHARD[@]}" --workers 2 --journal-base cl \
    --quiet --out cl.json --stats-out cl.stats 2> cl.err
check "vltshard survives a corrupt wire line" 0 $?
expect_cmp "report identical after protocol fault" serial.json cl.json
expect_grep "protocol fault was a crash" '"shard.worker_crashes": 1' cl.stats

# --- hung worker: heartbeat timeout fires, still identical ------------------

VLTSHARD_HANG_WORKER=0 "${SHARD[@]}" --workers 2 --journal-base hw \
    --heartbeat-ms 50 --worker-timeout-ms 700 \
    --quiet --out hw.json --stats-out hw.stats 2> hw.err
check "vltshard reclaims a hung worker" 0 $?
expect_cmp "report identical after hang" serial.json hw.json
expect_grep "heartbeat loss was counted" '"shard.heartbeat_losses": 1' hw.stats

# --- poison cell: quarantined after retries, exit 1 -------------------------

VLTSHARD_KILL_WORKER=cell:trfd/V4-CMP/vlt-4vt "${SHARD[@]}" --workers 2 \
    --journal-base poison --worker-retries 2 \
    --quiet --out poison.json --stats-out poison.stats 2> poison.err
check "poison cell fails the campaign" 1 $?
expect_grep "poison cell quarantined" '"shard.quarantines": 1' poison.stats
expect_grep "quarantined cell has worker status" '"status": "worker"' poison.json
expect_grep "quarantine names the fault" "quarantined after 3 worker crashes" poison.json
healthy=$(grep -c '"status": "ok"' poison.json)
if [ "$healthy" -ne 5 ]; then
  echo "FAIL: expected 5 healthy cells alongside the poison one, got $healthy" >&2
  failures=$((failures + 1))
else
  echo "ok: healthy cells unaffected by the poison cell"
fi

# --- coordinator SIGKILL, then --resume: byte-identical ---------------------

# Poll the shard journals for progress (at least two completed cells on
# disk) before killing the coordinator, so the test is stable on slow
# hosts instead of racing a fixed sleep.
"${SHARD[@]}" --workers 2 --journal-base co --quiet \
    --out co.json > /dev/null 2>&1 &
CO_PID=$!
killed=no
for _ in $(seq 1 600); do
  if ! kill -0 "$CO_PID" 2>/dev/null; then
    break  # finished before we could kill it; resume replays everything
  fi
  done_cells=$(cat co.w*.jsonl 2>/dev/null | grep -c '"key"')
  if [ "$done_cells" -ge 2 ]; then
    kill -9 "$CO_PID" 2>/dev/null && killed=yes
    break
  fi
  sleep 0.05
done
wait "$CO_PID" 2>/dev/null
sleep 1  # orphaned workers see EOF on stdin and exit
if [ "$killed" = yes ]; then
  echo "ok: coordinator killed after $done_cells journaled cells"
  if [ -e co.json ]; then
    echo "FAIL: killed coordinator wrote a report" >&2
    failures=$((failures + 1))
  fi
else
  echo "ok: coordinator finished before the kill (resume replays all)"
fi

"${SHARD[@]}" --workers 2 --journal-base co --resume --quiet \
    --out co-resumed.json 2> co-resume.err
check "vltshard --resume after coordinator kill" 0 $?
expect_cmp "resumed report is byte-identical" serial.json co-resumed.json

# --- resume refuses journals from a different grid: exit 2 ------------------

"$VLTSHARD" --worker-binary "$VLTSWEEP" --workloads multprec \
    --configs base --variants base --no-cache --journal-base co \
    --resume --quiet --out co-foreign.json 2> co-foreign.err
check "vltshard --resume digest mismatch" 2 $?
expect_grep "mismatch names the conflict" "different sweep" co-foreign.err

# --- spawn failure: in-process fallback, still identical --------------------

VLTSHARD_SPAWN_FAIL=1 "${SHARD[@]}" --workers 3 --journal-base sf \
    --quiet --out sf.json --stats-out sf.stats 2> sf.err
check "vltshard falls back when spawning fails" 0 $?
expect_cmp "fallback report is byte-identical" serial.json sf.json
expect_grep "all cells ran in-process" '"shard.fallback_cells": 6' sf.stats
# zero-valued counters are omitted from the snapshot entirely
if grep -q '"shard.workers_spawned"' sf.stats; then
  echo "FAIL: fallback run still spawned workers" >&2
  failures=$((failures + 1))
else
  echo "ok: no workers were spawned"
fi

# --- worker resolving a different grid is refused: exit 2 -------------------

cat > skewed-worker.sh <<EOF
#!/bin/sh
# Malicious/stale worker stand-in: appends a narrower grid so the
# worker resolves a different spec digest than the coordinator.
exec "$VLTSWEEP" "\$@" --workloads multprec --configs base --variants base
EOF
chmod +x skewed-worker.sh

"$VLTSHARD" --worker-binary ./skewed-worker.sh "${GRID[@]}" --no-cache \
    --workers 1 --journal-base skew --quiet \
    --out skew.json 2> skew.err
check "vltshard refuses a grid-mismatched worker" 2 $?
expect_grep "mismatch diagnostic names the worker" \
    "resolved a different sweep" skew.err

# --- done -------------------------------------------------------------------

if [ $failures -ne 0 ]; then
  echo "$failures vltshard CLI check(s) failed" >&2
  exit 1
fi
echo "all vltshard CLI checks passed"
