#!/usr/bin/env bash
# End-to-end CLI checks for the vltguard layer (docs/ERRORS.md): exit
# codes for failed/timeout/unknown cells, fault isolation in vltsweep,
# fail-fast skipping, and kill-then---resume byte-identity.
#
#   cli_guard_test.sh <vltsim_run> <vltsweep>
#
# Registered under ctest from tools/CMakeLists.txt.
set -u

VLTSIM_RUN=$1
VLTSWEEP=$2

TMP=$(mktemp -d "${TMPDIR:-/tmp}/vltguard-cli.XXXXXX")
trap 'rm -rf "$TMP"' EXIT
cd "$TMP"

failures=0
check() { # check <name> <expected-rc> <actual-rc>
  if [ "$2" -ne "$3" ]; then
    echo "FAIL: $1: expected exit $2, got $3" >&2
    failures=$((failures + 1))
  else
    echo "ok: $1 (exit $3)"
  fi
}
expect_grep() { # expect_grep <name> <pattern> <file>
  if ! grep -q "$2" "$3"; then
    echo "FAIL: $1: '$2' not found in $3" >&2
    sed 's/^/    /' "$3" >&2
    failures=$((failures + 1))
  else
    echo "ok: $1"
  fi
}

# --- vltsim_run exit codes -------------------------------------------------

"$VLTSIM_RUN" multprec > run_ok.txt 2>&1
check "vltsim_run ok run" 0 $?
expect_grep "vltsim_run ok status line" "status   : ok" run_ok.txt

"$VLTSIM_RUN" fault.verify > run_verify.txt 2>&1
check "vltsim_run verify failure" 1 $?
expect_grep "verify failure status" "status   : workload-verify" run_verify.txt

"$VLTSIM_RUN" fault.barrier --config V4-CMT --variant lanes4 \
    --cycle-limit 20000 > run_timeout.txt 2>&1
check "vltsim_run timeout" 1 $?
expect_grep "timeout status" "status   : timeout" run_timeout.txt
expect_grep "timeout diagnostic" "cycle budget" run_timeout.txt

"$VLTSIM_RUN" no-such-app > run_unknown.txt 2>&1
check "vltsim_run unknown workload" 2 $?

"$VLTSIM_RUN" fault.invariant --json > run_inv.json 2>&1
check "vltsim_run invariant via json" 1 $?
expect_grep "invariant status in json" '"status": "invariant"' run_inv.json

# --- vltsweep fault isolation ----------------------------------------------

"$VLTSWEEP" --workloads fault.verify,multprec --configs base \
    --variants base --threads 1 --no-cache --no-journal --quiet \
    --out faulty.json 2> faulty.err
check "vltsweep isolates the faulting cell" 1 $?
expect_grep "faulty cell reported" '"status": "workload-verify"' faulty.json
expect_grep "healthy cell survives" '"workload": "multprec"' faulty.json
expect_grep "failure summary" "cells FAILED" faulty.err

"$VLTSWEEP" --workloads fault.verify,multprec,mpenc --configs base \
    --variants base --threads 1 --no-cache --no-journal --quiet \
    --fail-fast --out failfast.json 2> /dev/null
check "vltsweep fail-fast" 1 $?
expect_grep "fail-fast skips the rest" '"status": "skipped"' failfast.json

"$VLTSWEEP" --workloads no-such-app --configs base --variants base \
    > /dev/null 2>&1
check "vltsweep unknown workload" 2 $?

# --- kill mid-sweep, then --resume: byte-identical report ------------------

SWEEP_ARGS=(--workloads mpenc,multprec --configs base,V2-CMP
            --variants base,vlt2 --threads 1 --no-cache
            --format json)

"$VLTSWEEP" "${SWEEP_ARGS[@]}" --no-journal --quiet \
    --out uninterrupted.json
check "vltsweep reference run" 0 $?

# External SIGKILL, timed off the journal itself: poll until the journal
# holds the header plus at least two completed cells, then kill. Polling
# on journal progress (not a fixed sleep, not an in-process hook) is
# what keeps this stable on slow or heavily loaded CI hosts.
"$VLTSWEEP" "${SWEEP_ARGS[@]}" --journal sweep.jsonl \
    --out killed.json > /dev/null 2>&1 &
SWEEP_PID=$!
killed=no
for _ in $(seq 1 600); do
  if ! kill -0 "$SWEEP_PID" 2>/dev/null; then
    break  # finished before we could kill it; resume still works below
  fi
  lines=$(wc -l < sweep.jsonl 2>/dev/null || echo 0)
  if [ "$lines" -ge 3 ]; then
    kill -9 "$SWEEP_PID" 2>/dev/null && killed=yes
    break
  fi
  sleep 0.05
done
wait "$SWEEP_PID" 2>/dev/null
if [ "$killed" = yes ]; then
  echo "ok: sweep killed mid-run after $lines journal lines"
  if [ -e killed.json ]; then
    echo "FAIL: killed sweep wrote a report" >&2
    failures=$((failures + 1))
  fi
else
  echo "ok: sweep finished before the kill (resume degenerates to full replay)"
fi

"$VLTSWEEP" "${SWEEP_ARGS[@]}" --journal sweep.jsonl --resume \
    --out resumed.json 2> resume.err
check "vltsweep --resume" 0 $?
expect_grep "resume replayed cells" "resumed" resume.err
if cmp -s uninterrupted.json resumed.json; then
  echo "ok: resumed report is byte-identical"
else
  echo "FAIL: resumed report differs from uninterrupted run" >&2
  diff uninterrupted.json resumed.json | head -20 >&2
  failures=$((failures + 1))
fi

# --- resume against a foreign journal: exit 2, both digests named ----------

"$VLTSWEEP" --workloads multprec --configs base --variants base \
    --threads 1 --no-cache --journal sweep.jsonl --resume \
    --out mismatch.json 2> mismatch.err
check "vltsweep --resume digest mismatch" 2 $?
expect_grep "mismatch names the conflict" "different sweep" mismatch.err
expect_grep "mismatch names the journal digest" "journal spec" mismatch.err
expect_grep "mismatch names this sweep's digest" "this sweep" mismatch.err
expect_grep "mismatch suggests the fix" "delete the stale journal" mismatch.err
if [ -e mismatch.json ]; then
  echo "FAIL: digest-mismatch resume wrote a report" >&2
  failures=$((failures + 1))
fi

# --- done -------------------------------------------------------------------

if [ $failures -ne 0 ]; then
  echo "$failures CLI guard check(s) failed" >&2
  exit 1
fi
echo "all CLI guard checks passed"
